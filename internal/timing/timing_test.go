package timing

import (
	"math/rand"
	"testing"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

func mapChain(t testing.TB, widths []int, kind logic.Kind) *domino.Block {
	t.Helper()
	n := logic.New("chain")
	var prev logic.NodeID
	var ins []logic.NodeID
	idx := 0
	for range widths {
		_ = idx
		break
	}
	for level, w := range widths {
		var fanins []logic.NodeID
		if level > 0 {
			fanins = append(fanins, prev)
		}
		for len(fanins) < w {
			ins = append(ins, n.AddInput(tname(idx)))
			idx++
			fanins = append(fanins, ins[len(ins)-1])
		}
		prev = n.AddGate(kind, fanins...)
	}
	n.MarkOutput("f", prev)
	r, err := phase.Apply(n, phase.AllPositive(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func tname(i int) string {
	return "t" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

func TestAndSlowerThanOr(t *testing.T) {
	p := DefaultParams()
	and4 := mapChain(t, []int{4}, logic.KindAnd)
	or4 := mapChain(t, []int{4}, logic.KindOr)
	aAnd := Analyze(and4, p)
	aOr := Analyze(or4, p)
	if aAnd.Critical <= aOr.Critical {
		t.Errorf("AND4 (%v) should be slower than OR4 (%v): series stack", aAnd.Critical, aOr.Critical)
	}
}

func TestAnalyzeChainDepth(t *testing.T) {
	p := DefaultParams()
	b := mapChain(t, []int{2, 2, 2}, logic.KindOr)
	a := Analyze(b, p)
	// Three OR2 cells in a chain: two internal (load 1 = one consumer
	// pin) and the output cell (load OutputCap=1). Delay per cell =
	// 1 + 0.5*1/1 = 1.5; critical = 4.5.
	if !close(a.Critical, 4.5) {
		t.Errorf("chain critical = %v, want 4.5", a.Critical)
	}
	// Path = starting input plus the three OR cells.
	if len(a.CriticalPath) != 4 {
		t.Errorf("critical path length = %d, want 4", len(a.CriticalPath))
	}
}

func TestInverterDelaysCount(t *testing.T) {
	// A negative-phase output and an inverted input rail both add the
	// inverter delay.
	n := logic.New("inv")
	a := n.AddInput("a")
	b0 := n.AddInput("b")
	n.MarkOutput("f", n.AddAnd(n.AddNot(a), b0))
	r, err := phase.Apply(n, phase.Assignment{false})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	an := Analyze(blk, p)
	// One AND2 cell (delay 1+0.15+0.5=1.65) fed by an inverted rail
	// (arrival 0.5): critical = 2.15, no output inverter.
	if !close(an.Critical, 2.15) {
		t.Errorf("critical = %v, want 2.15", an.Critical)
	}
	rNeg, err := phase.Apply(n, phase.Assignment{true})
	if err != nil {
		t.Fatal(err)
	}
	blkNeg, err := domino.Map(rNeg, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	anNeg := Analyze(blkNeg, p)
	// Negative phase: block computes ā·b̄ complement = a + b̄... i.e. an
	// OR cell (no series penalty) fed by one inverted rail, plus the
	// output inverter: 0.5 + (1+0.5) + 0.5 = 2.5.
	if !close(anNeg.Critical, 2.5) {
		t.Errorf("negated critical = %v, want 2.5", anNeg.Critical)
	}
}

func TestResizeMeetsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := randomNet(rng, 8, 60, 3)
	r, err := phase.Apply(n, phase.AllPositive(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	before := Analyze(b, p)

	// Establish what is achievable on a sacrificial copy, then demand a
	// target halfway between that and the unsized delay.
	probe, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	best, tightenSteps := Tighten(probe, p)
	if best.Critical >= before.Critical {
		t.Fatalf("Tighten did not speed anything up: %v -> %v", before.Critical, best.Critical)
	}
	if tightenSteps == 0 {
		t.Fatal("Tighten improved with zero steps")
	}
	target := (best.Critical + before.Critical) / 2
	after, steps, err := Resize(b, p, target)
	if err != nil {
		t.Fatalf("Resize: %v (critical %v, target %v)", err, after.Critical, target)
	}
	if after.Critical > target {
		t.Errorf("resize missed target: %v > %v", after.Critical, target)
	}
	if steps == 0 {
		t.Error("resize claims success with zero steps from a failing start")
	}
}

func TestResizeIncreasesPowerAndArea(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	n := randomNet(rng, 8, 80, 3)
	probs := prob.Uniform(n, 0.5)
	r, err := phase.Apply(n, phase.AllPositive(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	estBefore, err := power.Estimate(b, probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	areaBefore := b.Area()
	if _, steps := Tighten(b, p); steps == 0 {
		t.Fatal("Tighten found nothing to improve")
	}
	estAfter, err := power.Estimate(b, probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if estAfter.Total <= estBefore.Total {
		t.Errorf("resizing should raise power: %v -> %v", estBefore.Total, estAfter.Total)
	}
	if b.Area() <= areaBefore {
		t.Errorf("resizing should raise area: %v -> %v", areaBefore, b.Area())
	}
}

func TestResizeImpossibleTarget(t *testing.T) {
	b := mapChain(t, []int{2, 2, 2, 2, 2}, logic.KindAnd)
	p := DefaultParams()
	if _, _, err := Resize(b, p, 0.01); err == nil {
		t.Error("Resize met an impossible target")
	}
}

func TestSlowest(t *testing.T) {
	b := mapChain(t, []int{4, 2}, logic.KindAnd)
	idx, d := Slowest(b, DefaultParams())
	if idx < 0 || d <= 0 {
		t.Errorf("Slowest = %d, %v", idx, d)
	}
	if b.Cells[idx].Width != 4 {
		t.Errorf("slowest cell width = %d, want the AND4", b.Cells[idx].Width)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func randomNet(rng *rand.Rand, numInputs, numGates, numOutputs int) *logic.Network {
	n := logic.New("rand")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(tname(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(4) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddAnd(pick(), pick(), pick()))
		case 2:
			ids = append(ids, n.AddOr(pick(), pick()))
		default:
			ids = append(ids, n.AddAnd(pick(), pick()))
		}
	}
	for i := 0; i < numOutputs; i++ {
		n.MarkOutput(tname(100+i), ids[len(ids)-1-i])
	}
	return n
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(97))
	n := randomNet(rng, 20, 1000, 8)
	r, err := phase.Apply(n, phase.AllPositive(8))
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(blk, p)
	}
}
