package timing

import (
	"math/rand"
	"testing"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
)

func TestSlacksChain(t *testing.T) {
	b := mapChain(t, []int{2, 2, 2}, logic.KindOr)
	p := DefaultParams()
	a := Analyze(b, p)
	rep := Slacks(b, p, a.Critical)
	// At a target equal to the critical delay, the worst slack is zero
	// and every chain cell is critical.
	if rep.WorstSlack < -1e-9 || rep.WorstSlack > 1e-9 {
		t.Errorf("worst slack = %v, want 0", rep.WorstSlack)
	}
	if len(rep.CriticalCells) != 3 {
		t.Errorf("critical cells = %d, want 3", len(rep.CriticalCells))
	}
	// With a relaxed target everything has positive slack.
	relaxed := Slacks(b, p, a.Critical+1)
	if relaxed.WorstSlack < 1-1e-9 {
		t.Errorf("relaxed worst slack = %v, want 1", relaxed.WorstSlack)
	}
	if len(relaxed.CriticalCells) != 0 {
		t.Errorf("relaxed critical cells = %d, want 0", len(relaxed.CriticalCells))
	}
}

func TestSlacksViolatedTarget(t *testing.T) {
	b := mapChain(t, []int{2, 2, 2, 2}, logic.KindAnd)
	p := DefaultParams()
	a := Analyze(b, p)
	rep := Slacks(b, p, a.Critical/2)
	if rep.WorstSlack >= 0 {
		t.Errorf("impossible target has slack %v, want negative", rep.WorstSlack)
	}
}

func TestSlackConsistencyProperty(t *testing.T) {
	// Arrival + slack <= target on output drivers; slack is monotone in
	// the target.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := randomNet(rng, 6+rng.Intn(6), 30+rng.Intn(50), 3)
		r, err := phase.Apply(n, phase.AllPositive(3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := domino.Map(r, domino.DefaultLibrary())
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		a := Analyze(b, p)
		s1 := Slacks(b, p, a.Critical)
		s2 := Slacks(b, p, a.Critical*1.5)
		for _, o := range b.Net.Outputs() {
			if s1.Arrival[o.Driver]+s1.Slack[o.Driver] > a.Critical+1e-9 {
				t.Fatalf("trial %d: arrival+slack exceeds target", trial)
			}
			if s2.Slack[o.Driver] < s1.Slack[o.Driver] {
				t.Fatalf("trial %d: slack not monotone in target", trial)
			}
		}
		if len(s1.CriticalCells) == 0 {
			t.Fatalf("trial %d: no critical cells at exact target", trial)
		}
	}
}
