// Package timing provides the delay model and the transistor-resizing
// pass used by the paper's second experiment (Table 2): after technology
// mapping, cells are resized to meet a clock target, which inflates loads
// and power and can "undo" the optimizations of the phase assignment.
//
// The delay model captures the structural facts the paper's penalty P_i
// encodes: domino AND cells stack transistors in series and get slower
// with width, OR cells do not; every cell slows down with output load and
// speeds up with drive strength (size).
package timing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/domino"
	"repro/internal/logic"
)

// Params are the delay-model coefficients, in arbitrary consistent time
// units.
type Params struct {
	// Intrinsic is the base delay of a minimum-size domino cell.
	Intrinsic float64
	// SeriesDelay is added per series transistor beyond the first (AND
	// stacks only).
	SeriesDelay float64
	// LoadDelay scales the load-dependent term Load/Size.
	LoadDelay float64
	// InverterDelay is the delay of a boundary static inverter.
	InverterDelay float64
	// MaxSize caps the drive strength resizing may assign.
	MaxSize float64
	// SizeStep is the multiplicative upsizing step.
	SizeStep float64
}

// DefaultParams returns the coefficients used across the reproduction.
func DefaultParams() Params {
	return Params{
		Intrinsic:     1.0,
		SeriesDelay:   0.15,
		LoadDelay:     0.5,
		InverterDelay: 0.5,
		MaxSize:       8,
		SizeStep:      1.26, // ~2^(1/3): three steps double the drive
	}
}

// CellDelay returns the delay of one mapped cell under the model.
func CellDelay(c *domino.Cell, p Params) float64 {
	d := p.Intrinsic + p.LoadDelay*c.Load/c.Size
	if c.Kind == logic.KindAnd {
		d += p.SeriesDelay * float64(c.Width-1)
	}
	return d
}

// Analysis holds arrival times for a mapped block.
type Analysis struct {
	// Arrival is the worst arrival time at each Net node's output.
	Arrival []float64
	// Critical is the block's worst output arrival including boundary
	// inverters on both sides.
	Critical float64
	// CriticalOutput is the index of the output where Critical occurs.
	CriticalOutput int
	// CriticalPath lists the Net nodes of the worst path, input to
	// output.
	CriticalPath []logic.NodeID
}

// Analyze computes arrival times of the mapped block. Inverted block
// inputs start at the inverter delay; everything else starts at 0.
func Analyze(b *domino.Block, p Params) *Analysis {
	net := b.Net
	arr := make([]float64, net.NumNodes())
	from := make([]logic.NodeID, net.NumNodes())
	for i := range from {
		from[i] = logic.InvalidNode
	}
	for pos, id := range net.Inputs() {
		if b.Phase.Inputs[pos].Inverted {
			arr[id] = p.InverterDelay
		}
	}
	for i := 0; i < net.NumNodes(); i++ {
		id := logic.NodeID(i)
		node := net.Node(id)
		if len(node.Fanins) == 0 {
			continue
		}
		worst := 0.0
		worstFrom := logic.InvalidNode
		for _, f := range node.Fanins {
			if arr[f] >= worst {
				worst = arr[f]
				worstFrom = f
			}
		}
		var d float64
		if ci := b.CellOf[i]; ci >= 0 {
			d = CellDelay(&b.Cells[ci], p)
		}
		arr[i] = worst + d
		from[i] = worstFrom
	}
	a := &Analysis{Arrival: arr, CriticalOutput: -1}
	for oi, o := range net.Outputs() {
		t := arr[o.Driver]
		if b.Phase.Outputs[oi].Negated {
			t += p.InverterDelay
		}
		if t >= a.Critical {
			a.Critical = t
			a.CriticalOutput = oi
		}
	}
	if a.CriticalOutput >= 0 {
		// Backtrack the worst path.
		var path []logic.NodeID
		id := net.Outputs()[a.CriticalOutput].Driver
		for id != logic.InvalidNode {
			path = append(path, id)
			id = from[id]
		}
		for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
			path[l], path[r] = path[r], path[l]
		}
		a.CriticalPath = path
	}
	return a
}

// Resize upsizes cells on the critical path until the block meets the
// target delay or no further improvement is possible. Each step tries
// critical-path candidates in descending estimated gain-per-area order
// and keeps the first upsizing that actually reduces the critical delay
// (an upsizing can backfire by loading its own drivers, so every move is
// verified by re-analysis and reverted if it did not help). It mutates
// the block's cell sizes (hence loads, area and power) and returns the
// final analysis and the number of committed steps. A target that cannot
// be met returns an error alongside the best analysis achieved.
func Resize(b *domino.Block, p Params, target float64) (*Analysis, int, error) {
	steps := 0
	const maxSteps = 100000
	a := Analyze(b, p)
	for a.Critical > target {
		if steps >= maxSteps {
			return a, steps, fmt.Errorf("timing: resize exceeded %d steps", maxSteps)
		}
		if !improveOnce(b, p, &a) {
			return a, steps, fmt.Errorf("timing: cannot meet target %.3f (best %.3f)", target, a.Critical)
		}
		steps++
	}
	return a, steps, nil
}

// Tighten resizes for maximum speed: it keeps committing improving moves
// until none exists, returning the best analysis achieved and the number
// of steps. It is how the Table 2 flow derives a realistic, feasible
// clock target.
func Tighten(b *domino.Block, p Params) (*Analysis, int) {
	steps := 0
	a := Analyze(b, p)
	for improveOnce(b, p, &a) {
		steps++
	}
	return a, steps
}

// improveOnce tries to strictly reduce the critical delay by one
// verified upsizing move. On success it updates *a and returns true.
func improveOnce(b *domino.Block, p Params, a **Analysis) bool {
	type cand struct {
		ci   int
		gain float64
	}
	var cands []cand
	for _, node := range (*a).CriticalPath {
		ci := b.CellOf[node]
		if ci < 0 {
			continue
		}
		cell := &b.Cells[ci]
		if cell.Size*p.SizeStep > p.MaxSize {
			continue
		}
		before := CellDelay(cell, p)
		after := p.Intrinsic + p.LoadDelay*cell.Load/(cell.Size*p.SizeStep)
		if cell.Kind == logic.KindAnd {
			after += p.SeriesDelay * float64(cell.Width-1)
		}
		cost := cell.Area * cell.Size * (p.SizeStep - 1)
		if cost <= 0 {
			continue
		}
		cands = append(cands, cand{ci, (before - after) / cost})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
	for _, c := range cands {
		old := b.Cells[c.ci].Size
		b.Cells[c.ci].Size *= p.SizeStep
		b.RecomputeLoads()
		na := Analyze(b, p)
		if na.Critical < (*a).Critical-1e-12 {
			*a = na
			return true
		}
		b.Cells[c.ci].Size = old
		b.RecomputeLoads()
	}
	return false
}

// TargetFromBaseline derives a clock target the way the Table 2 flow
// does: a slack factor applied to a baseline critical delay (e.g. the
// minimum-area synthesis at minimum sizes).
func TargetFromBaseline(baseline float64, slackFactor float64) float64 {
	return baseline * slackFactor
}

// Slowest returns the index and delay of the slowest cell in the block,
// a diagnostic used in reports.
func Slowest(b *domino.Block, p Params) (int, float64) {
	worst, idx := math.Inf(-1), -1
	for ci := range b.Cells {
		if d := CellDelay(&b.Cells[ci], p); d > worst {
			worst, idx = d, ci
		}
	}
	return idx, worst
}
