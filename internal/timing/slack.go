package timing

import (
	"sort"

	"repro/internal/domino"
	"repro/internal/logic"
)

// SlackReport extends arrival analysis with required times and slacks
// against a target clock — the standard STA view used to judge which
// cells the resizer should touch and how much margin a synthesis has.
type SlackReport struct {
	*Analysis
	Target float64
	// Required is the latest allowed arrival per Net node; Slack is
	// Required − Arrival.
	Required []float64
	Slack    []float64
	// WorstSlack is the minimum slack over output drivers (negative when
	// the target is violated).
	WorstSlack float64
	// CriticalCells lists cell indexes with slack below epsilon, sorted
	// by ascending slack.
	CriticalCells []int
}

// Slacks computes required times and slacks for the block under the
// given target clock.
func Slacks(b *domino.Block, p Params, target float64) *SlackReport {
	a := Analyze(b, p)
	net := b.Net
	num := net.NumNodes()
	req := make([]float64, num)
	inf := target + 1e18
	for i := range req {
		req[i] = inf
	}
	// Outputs must arrive by target (minus the boundary inverter delay
	// for negated outputs).
	for oi, o := range net.Outputs() {
		t := target
		if b.Phase.Outputs[oi].Negated {
			t -= p.InverterDelay
		}
		if t < req[o.Driver] {
			req[o.Driver] = t
		}
	}
	// Backward sweep: a driver must arrive early enough for each
	// consumer to meet its requirement.
	for i := num - 1; i >= 0; i-- {
		id := logic.NodeID(i)
		var d float64
		if ci := b.CellOf[i]; ci >= 0 {
			d = CellDelay(&b.Cells[ci], p)
		}
		for _, f := range net.Fanins(id) {
			if r := req[i] - d; r < req[f] {
				req[f] = r
			}
		}
	}
	rep := &SlackReport{
		Analysis: a,
		Target:   target,
		Required: req,
		Slack:    make([]float64, num),
	}
	rep.WorstSlack = inf
	for i := 0; i < num; i++ {
		rep.Slack[i] = req[i] - a.Arrival[i]
	}
	for _, o := range net.Outputs() {
		if s := rep.Slack[o.Driver]; s < rep.WorstSlack {
			rep.WorstSlack = s
		}
	}
	const eps = 1e-9
	for ci := range b.Cells {
		if rep.Slack[b.Cells[ci].Node] <= eps {
			rep.CriticalCells = append(rep.CriticalCells, ci)
		}
	}
	sort.Slice(rep.CriticalCells, func(x, y int) bool {
		return rep.Slack[b.Cells[rep.CriticalCells[x]].Node] < rep.Slack[b.Cells[rep.CriticalCells[y]].Node]
	})
	return rep
}
