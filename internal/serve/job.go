package serve

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/report"
)

// Job states, in lifecycle order. A job is "done" once every circuit has
// a row; per-circuit failures are isolated into their rows (the corpus
// contract), so there is no job-level failed state — a malformed
// submission is rejected with 4xx before a job exists.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// jobCircuit is one submitted circuit: its bytes, its submitted
// (archive-relative) path, and its content-addressed cache key.
type jobCircuit struct {
	relPath string // submitted name; becomes the row's path field
	name    string // base name without extension; becomes the row's name
	format  corpus.Format
	data    []byte
	key     [32]byte
	cached  *cachedResult // non-nil when resolved from the cache at submit
}

// job is one submission's lifecycle: circuits in deterministic
// (path-sorted) order, rows accumulating as a contiguous prefix of
// serialized JSONL lines, and a broadcast channel for streamers.
type job struct {
	id        string
	timed     bool
	cfg       flow.Config
	cfgJSON   []byte // canonical config encoding (cache-key input)
	circuits  []jobCircuit
	submitted time.Time

	// ctx is the job's cancellation scope: RunCorpus executes under it,
	// so cancelling (DELETE /v1/jobs/{id}, or a rows stream opened with
	// ?cancel=1 disconnecting) trips the per-circuit budget tokens and
	// the running flow unwinds cooperatively. cancel is called with the
	// cancellation cause, and unconditionally when the job finishes.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	state     string
	cancelled bool
	slots     []*flow.CorpusRow // filled out of order by cache hits + OnRow
	lines     [][]byte          // serialized rows, always a contiguous prefix
	next      int               // emission frontier into slots
	failed    int
	cacheHits int
	wallSec   float64
	notify    chan struct{} // closed and replaced on every append / state change
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: job id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

func newJob(circuits []jobCircuit, cfg flow.Config, cfgJSON []byte, timed bool) *job {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &job{
		id:        newJobID(),
		timed:     timed,
		cfg:       cfg,
		cfgJSON:   cfgJSON,
		circuits:  circuits,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		slots:     make([]*flow.CorpusRow, len(circuits)),
		notify:    make(chan struct{}),
	}
}

// requestCancel cancels a not-yet-done job with the given cause and
// reports whether this call was the one that cancelled it (for the
// cancellation counter — later calls and calls on done jobs are no-ops).
func (j *job) requestCancel(cause error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.cancelled {
		return false
	}
	j.cancelled = true
	j.cancel(cause)
	j.broadcast()
	return true
}

// unfilledSlots returns the indices still missing a row — after a
// cancelled RunCorpus returns, these are the circuits that never ran.
func (j *job) unfilledSlots() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var idx []int
	for i, s := range j.slots {
		if s == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// broadcast wakes every waiting streamer. Callers hold j.mu.
func (j *job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *job) setState(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.broadcast()
}

// fill records circuit i's finished row and emits every newly contiguous
// row as a JSONL line — the same frontier discipline flow.RunCorpus uses
// for OnRow, extended here so cache hits (filled at submit) and flow
// rows (filled as they complete) interleave back into index order.
func (j *job) fill(i int, row *flow.CorpusRow) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.slots[i] = row
	for j.next < len(j.slots) && j.slots[j.next] != nil {
		r := j.slots[j.next]
		line, err := json.Marshal(report.NewCorpusRecord(r))
		if err != nil { // cannot happen for CorpusRecord; keep the frontier moving
			line = []byte(fmt.Sprintf(`{"index":%d,"error":%q}`, r.Index, err.Error()))
		}
		j.lines = append(j.lines, append(line, '\n'))
		if r.Err != "" {
			j.failed++
		}
		j.next++
	}
	j.broadcast()
}

// finish marks the job done. All slots must already be filled. The
// job's context is released unconditionally so no cancel arrangement
// outlives the job.
func (j *job) finish() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.wallSec = time.Since(j.submitted).Seconds()
	j.cancel(nil)
	j.broadcast()
}

// status is the GET /v1/jobs/{id} projection.
type jobStatus struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Timed      bool    `json:"timed"`
	Cancelled  bool    `json:"cancelled,omitempty"`
	Circuits   int     `json:"circuits"`
	Completed  int     `json:"completed"`
	Failed     int     `json:"failed"`
	CacheHits  int     `json:"cache_hits"`
	Submitted  string  `json:"submitted_at"`
	WallSec    float64 `json:"wall_seconds,omitempty"`
	RowsURL    string  `json:"rows_url"`
	SchemaVers int     `json:"schema_version"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:         j.id,
		State:      j.state,
		Timed:      j.timed,
		Cancelled:  j.cancelled,
		Circuits:   len(j.circuits),
		Completed:  j.next,
		Failed:     j.failed,
		CacheHits:  j.cacheHits,
		Submitted:  j.submitted.UTC().Format(time.RFC3339Nano),
		WallSec:    j.wallSec,
		RowsURL:    "/v1/jobs/" + j.id + "/rows",
		SchemaVers: report.CorpusSchemaVersion,
	}
}

// cachedCorpusRow reattaches submission metadata to a cached result.
func cachedCorpusRow(index int, c jobCircuit, hit *cachedResult) *flow.CorpusRow {
	return &flow.CorpusRow{
		Index:       index,
		Name:        c.name,
		Path:        c.relPath,
		Format:      hit.format,
		Sequential:  hit.sequential,
		Row:         hit.row,
		SeqRow:      hit.seqRow,
		Err:         hit.errText,
		Engine:      hit.engine,
		BudgetTrips: hit.budgetTrips,
		// WallSec ~0: a cache hit does no flow work. Wall-clock is
		// outside the deterministic row contract either way.
	}
}

// submitError carries an HTTP status through the parsing helpers.
type submitError struct {
	status int
	msg    string
}

func (e *submitError) Error() string { return e.msg }

func badRequest(format string, args ...any) *submitError {
	return &submitError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// parseConfig strictly decodes a JSON flow.Config (unknown fields are
// rejected so typos fail loudly instead of silently running defaults)
// and validates its ranges, so an impossible configuration is a
// structured 400 naming the offending field instead of a mid-job
// failure. An empty body means the zero config — all defaults.
func parseConfig(raw []byte) (flow.Config, error) {
	var cfg flow.Config
	if len(bytes.TrimSpace(raw)) == 0 {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, badRequest("bad config JSON: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, badRequest("invalid config: %v", err)
	}
	return cfg, nil
}

// expandSubmission turns an uploaded body into its circuit list. The
// file name decides the container: .tar, .tar.gz/.tgz, and .zip are
// expanded (members that are not .blif/.pla are skipped, like
// corpus.Discover); anything else must itself be a .blif/.pla circuit.
// Circuits are sorted by archive-relative path — the job's deterministic
// row order, mirroring the corpus engine's path-sorted discovery.
func expandSubmission(name string, data []byte) ([]jobCircuit, error) {
	var circuits []jobCircuit
	lower := strings.ToLower(name)
	switch {
	case strings.HasSuffix(lower, ".tar"), strings.HasSuffix(lower, ".tar.gz"), strings.HasSuffix(lower, ".tgz"):
		var r io.Reader = bytes.NewReader(data)
		if !strings.HasSuffix(lower, ".tar") {
			gz, err := gzip.NewReader(r)
			if err != nil {
				return nil, badRequest("bad gzip stream: %v", err)
			}
			defer gz.Close()
			r = gz
		}
		tr := tar.NewReader(r)
		for {
			hdr, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, badRequest("bad tar archive: %v", err)
			}
			if hdr.Typeflag != tar.TypeReg {
				continue
			}
			member, err := io.ReadAll(tr)
			if err != nil {
				return nil, badRequest("bad tar archive: %v", err)
			}
			c, ok, err := memberCircuit(hdr.Name, member)
			if err != nil {
				return nil, err
			}
			if ok {
				circuits = append(circuits, c)
			}
		}
	case strings.HasSuffix(lower, ".zip"):
		zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, badRequest("bad zip archive: %v", err)
		}
		for _, zf := range zr.File {
			if zf.FileInfo().IsDir() {
				continue
			}
			rc, err := zf.Open()
			if err != nil {
				return nil, badRequest("bad zip member %s: %v", zf.Name, err)
			}
			member, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return nil, badRequest("bad zip member %s: %v", zf.Name, err)
			}
			c, ok, err := memberCircuit(zf.Name, member)
			if err != nil {
				return nil, err
			}
			if ok {
				circuits = append(circuits, c)
			}
		}
	default:
		c, ok, err := memberCircuit(name, data)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, badRequest("%s: unrecognized extension (want .blif, .pla, .tar, .tar.gz, .tgz, or .zip)", name)
		}
		circuits = append(circuits, c)
	}
	if len(circuits) == 0 {
		return nil, badRequest("submission contains no .blif/.pla circuits")
	}
	sort.Slice(circuits, func(i, k int) bool { return circuits[i].relPath < circuits[k].relPath })
	for i := 1; i < len(circuits); i++ {
		if circuits[i].relPath == circuits[i-1].relPath {
			return nil, badRequest("duplicate circuit path %s in submission", circuits[i].relPath)
		}
	}
	return circuits, nil
}

// memberCircuit classifies one file: (circuit, true) for .blif/.pla,
// (zero, false) for other extensions, error for unusable paths. Paths
// are normalized and must stay local — the spool directory is the
// containment boundary.
func memberCircuit(name string, data []byte) (jobCircuit, bool, error) {
	rel := path.Clean(strings.ReplaceAll(name, "\\", "/"))
	f, ok := corpus.FormatOf(rel)
	if !ok {
		return jobCircuit{}, false, nil
	}
	if rel == "" || rel == "." || path.IsAbs(rel) || !filepath.IsLocal(filepath.FromSlash(rel)) {
		return jobCircuit{}, false, badRequest("unusable circuit path %q", name)
	}
	base := path.Base(rel)
	return jobCircuit{
		relPath: rel,
		name:    strings.TrimSuffix(base, path.Ext(base)),
		format:  f,
		data:    data,
	}, true, nil
}
