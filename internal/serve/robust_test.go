package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/blif"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/power"
)

// waitStatus polls GET /v1/jobs/{id} until pred accepts the status (or
// the deadline passes).
func waitStatus(t *testing.T, base, id string, pred func(jobStatus) bool) jobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the expected status; last: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func deleteJob(t *testing.T, base, id string) jobStatus {
	t.Helper()
	req, err := http.NewRequest("DELETE", base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	return decodeStatus(t, resp)
}

// TestConfigValidationRejections: impossible configurations are a
// structured 400 at the submit boundary, and the error body names the
// offending field — table-driven over the range checks flow.Config
// .Validate performs.
func TestConfigValidationRejections(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name  string
		cfg   string
		field string
	}{
		{"negative SimShards", `{"SimShards":-1}`, "SimShards"},
		{"negative SimVectors", `{"SimVectors":-5}`, "SimVectors"},
		{"negative Workers", `{"Workers":-2}`, "Workers"},
		{"InputProb above 1", `{"InputProb":1.5}`, "InputProb"},
		{"InputProb negative", `{"InputProb":-0.25}`, "InputProb"},
		{"unknown SimKernel", `{"SimKernel":9}`, "SimKernel"},
		{"oversized SimBlockWords", `{"SimBlockWords":99}`, "SimBlockWords"},
		{"unknown SearchStrategy", `{"SearchStrategy":12}`, "SearchStrategy"},
		{"unknown PhaseScoring", `{"PhaseScoring":7}`, "PhaseScoring"},
		{"unknown EstOpts.Method", `{"EstOpts":{"Method":42}}`, "EstOpts.Method"},
		{"negative BDDNodeBudget", `{"BDDNodeBudget":-1}`, "BDDNodeBudget"},
		{"negative SimVectorBudget", `{"SimVectorBudget":-8}`, "SimVectorBudget"},
		{"negative AnnealSteps", `{"AnnealSteps":-3}`, "AnnealSteps"},
	}
	for _, c := range cases {
		resp := postRaw(t, ts.URL, "c.blif", []byte(tinyBLIF), c.cfg, "")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", c.name, body)
			continue
		}
		if !strings.Contains(e.Error, c.field) {
			t.Errorf("%s: error %q does not name field %q", c.name, e.Error, c.field)
		}
	}
}

// TestCancelRunningJob: DELETE /v1/jobs/{id} on a job pinned in the sim
// loop cancels it through the cooperative budget token — the job reaches
// done with timed-out (uncached) rows instead of wedging the worker.
func TestCancelRunningJob(t *testing.T) {
	s, ts := testServer(t, Options{FaultInjection: true, FlowWorkers: 1})
	st := decodeStatus(t, postRaw(t, ts.URL, "fault-slow.blif", []byte(tinyBLIF), testCfgJSON, ""))
	waitStatus(t, ts.URL, st.ID, func(s jobStatus) bool { return s.State == StateRunning })
	del := deleteJob(t, ts.URL, st.ID)
	if !del.Cancelled {
		t.Errorf("DELETE response not marked cancelled: %+v", del)
	}
	waitStatus(t, ts.URL, st.ID, func(s jobStatus) bool { return s.State == StateDone })
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || !recs[0].TimedOut || recs[0].Error == "" {
		t.Fatalf("cancelled job should yield a timed-out row, got %+v", recs)
	}
	if n := s.m.jobsCancelled.Load(); n != 1 {
		t.Errorf("jobsCancelled = %d, want 1", n)
	}
	// Cancelling a done job is a no-op.
	deleteJob(t, ts.URL, st.ID)
	if n := s.m.jobsCancelled.Load(); n != 1 {
		t.Errorf("second DELETE bumped jobsCancelled to %d", n)
	}
}

// TestCancelQueuedJob: a job cancelled while still waiting in the queue
// never enters the flow; the worker answers its slots with cancellation
// rows and the job completes normally.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Options{JobWorkers: 1})
	s.beforeJob = func(*job) { <-release }
	stA := decodeStatus(t, postRaw(t, ts.URL, "a.blif", []byte(tinyBLIF), testCfgJSON, ""))
	stB := decodeStatus(t, postRaw(t, ts.URL, "b.blif", []byte(tinyBLIF+"\n"), testCfgJSON, ""))
	del := deleteJob(t, ts.URL, stB.ID)
	if !del.Cancelled {
		t.Errorf("queued job not marked cancelled: %+v", del)
	}
	close(release)
	waitStatus(t, ts.URL, stA.ID, func(s jobStatus) bool { return s.State == StateDone })
	waitStatus(t, ts.URL, stB.ID, func(s jobStatus) bool { return s.State == StateDone })
	recsA := fetchRows(t, ts.URL, stA.ID)
	if len(recsA) != 1 || recsA[0].Error != "" {
		t.Fatalf("uncancelled job should complete cleanly, got %+v", recsA)
	}
	recsB := fetchRows(t, ts.URL, stB.ID)
	if len(recsB) != 1 || !recsB[0].TimedOut ||
		!strings.Contains(recsB[0].Error, "cancelled by client") {
		t.Fatalf("cancelled queued job should yield cancellation rows, got %+v", recsB)
	}
	if s.FlowRuns() != 1 {
		t.Errorf("cancelled queued job entered the flow (%d runs, want 1)", s.FlowRuns())
	}
}

// TestRowsStreamDisconnectCancels: a rows stream opened with ?cancel=1
// owns the job — the client going away cancels it.
func TestRowsStreamDisconnectCancels(t *testing.T) {
	s, ts := testServer(t, Options{FaultInjection: true, FlowWorkers: 1})
	st := decodeStatus(t, postRaw(t, ts.URL, "fault-slow.blif", []byte(tinyBLIF), testCfgJSON, ""))
	waitStatus(t, ts.URL, st.ID, func(s jobStatus) bool { return s.State == StateRunning })

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+st.ID+"/rows?cancel=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // simulate the client going away mid-stream
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fin := waitStatus(t, ts.URL, st.ID, func(s jobStatus) bool { return s.State == StateDone })
	if !fin.Cancelled {
		t.Errorf("disconnect did not cancel the job: %+v", fin)
	}
	if n := s.m.jobsCancelled.Load(); n != 1 {
		t.Errorf("jobsCancelled = %d, want 1", n)
	}
}

// TestBudgetDegradedRowCachedWithEngine: a fault-injected circuit that
// blows its BDD node budget completes on a fallback engine with a
// non-error row; the row records the engine and budget trips, is
// cacheable (deterministic), and the cache round-trips both fields.
func TestBudgetDegradedRowCachedWithEngine(t *testing.T) {
	s, ts := testServer(t, Options{FaultInjection: true, FlowWorkers: 1})
	st := decodeStatus(t, postRaw(t, ts.URL, "fault-bddblow.blif", []byte(tinyBLIF), testCfgJSON, ""))
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("degraded circuit should complete without error, got %+v", recs)
	}
	if recs[0].Engine == "" || recs[0].BudgetTrips == 0 {
		t.Fatalf("degraded row must record engine and trips, got %+v", recs[0])
	}
	st2 := decodeStatus(t, postRaw(t, ts.URL, "fault-bddblow.blif", []byte(tinyBLIF), testCfgJSON, ""))
	recs2 := fetchRows(t, ts.URL, st2.ID)
	if runs := s.FlowRuns(); runs != 1 {
		t.Errorf("degraded row was not served from cache (%d flow runs, want 1)", runs)
	}
	if recs2[0].Engine != recs[0].Engine || recs2[0].BudgetTrips != recs[0].BudgetTrips {
		t.Errorf("cache dropped degradation metadata: first %+v, cached %+v", recs[0], recs2[0])
	}

	// The metrics endpoint reflects the degradation counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"dominod_jobs_cancelled_total 0",
		"dominod_budget_trips_total",
		"dominod_rows_reordered_total",
		"dominod_rows_degraded_depth_total",
		"dominod_rows_degraded_mc_total",
		"dominod_rows_timed_out_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestExactSiftedRowCachedAndCounted: a circuit whose unsifted exact
// build blows the node budget but fits after in-place reordering is
// rescued by the exact-sifted stage over the HTTP surface — the row
// records the engine, the dominod_rows_reordered_total counter tracks
// it, and a resubmission is served from the content-addressed cache
// with the engine intact (rescue is deterministic, so it caches).
func TestExactSiftedRowCachedAndCounted(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "sifted", Inputs: 20, Outputs: 4, Gates: 100, Seed: 0x5AA11})
	model, err := blif.WriteString(&blif.Model{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(flow.Config{
		SimVectors:    256,
		EstOpts:       power.Options{Method: power.Exact},
		BDDNodeBudget: 200, // between the sifted and unsifted peak node counts
	})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := testServer(t, Options{FlowWorkers: 1})
	st := decodeStatus(t, postRaw(t, ts.URL, "sifted.blif", []byte(model), string(cfgJSON), ""))
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("sifted circuit should complete without error, got %+v", recs)
	}
	if recs[0].Engine != flow.EngineExactSifted {
		t.Fatalf("engine = %q, want %q", recs[0].Engine, flow.EngineExactSifted)
	}
	if recs[0].BudgetTrips != 1 {
		t.Errorf("budget trips = %d, want 1 (only the unsifted stage trips)", recs[0].BudgetTrips)
	}
	if n := s.m.rowsReordered.Load(); n != 1 {
		t.Errorf("rowsReordered = %d after first run, want 1", n)
	}

	// Resubmit: served from cache, engine preserved, counter still bumps
	// (it counts emitted rows, cache hits included, like rowsTotal).
	st2 := decodeStatus(t, postRaw(t, ts.URL, "sifted.blif", []byte(model), string(cfgJSON), ""))
	recs2 := fetchRows(t, ts.URL, st2.ID)
	if runs := s.FlowRuns(); runs != 1 {
		t.Errorf("rescued row was not served from cache (%d flow runs, want 1)", runs)
	}
	if recs2[0].Engine != flow.EngineExactSifted || recs2[0].BudgetTrips != recs[0].BudgetTrips {
		t.Errorf("cache dropped rescue metadata: first %+v, cached %+v", recs[0], recs2[0])
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dominod_rows_reordered_total 2") {
		t.Error("/metrics does not report dominod_rows_reordered_total 2 after resubmit")
	}
}
