package serve

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/power"
	"repro/internal/sim"
)

// Fault-injection circuit-name prefixes, active only under
// Options.FaultInjection. Each one maps a submitted circuit onto a
// hostile behavior the daemon must survive: the chaos smoke
// (dominod -faultsmoke) submits a mix of these alongside healthy
// circuits and asserts the service stays live, drains cleanly, and
// leaks no goroutines.
const (
	// faultPanicPrefix panics inside the per-circuit configuration hook
	// — the corpus engine must isolate it into an error row.
	faultPanicPrefix = "fault-panic"
	// faultSlowPrefix inflates the measurement vector count so the
	// circuit runs until the per-circuit timeout cancels it — the
	// goroutine-leak scenario before cooperative cancellation.
	faultSlowPrefix = "fault-slow"
	// faultBDDBlowPrefix forces exact BDD probabilities under a node
	// budget far too small for any real circuit, driving the row down
	// the degradation chain.
	faultBDDBlowPrefix = "fault-bddblow"
)

// faultConfigure is the per-circuit Configure hook installed by
// Options.FaultInjection.
func faultConfigure(c *corpus.Circuit, base flow.Config) flow.Config {
	switch name := c.Entry.Name; {
	case strings.HasPrefix(name, faultPanicPrefix):
		panic("fault injection: configured panic in " + name)
	case strings.HasPrefix(name, faultSlowPrefix):
		// The scalar kernel plus an absurd vector count pins the circuit
		// in the sim loop, which polls cancellation per window — the
		// timeout must be what ends it.
		base.SimVectors = 1 << 30
		base.SimKernel = sim.KernelScalar
	case strings.HasPrefix(name, faultBDDBlowPrefix):
		base.EstOpts.Method = power.Exact
		base.BDDNodeBudget = 8
	}
	return base
}
