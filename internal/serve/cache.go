package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/flow"
)

// CacheKey content-addresses one circuit's flow result: the SHA-256 of
// (canonical configuration JSON, flow selector, file bytes). Because a
// corpus row is a pure function of exactly those inputs (the corpus
// determinism contract, internal/README.md), a key collision-free cache
// lookup is always a correct answer — no invalidation is ever needed.
//
// The configuration is hashed in its flow.Config.Canonical() form, so
// zero-valued and explicitly-defaulted configurations key identically
// and the pure wall-clock knobs (Workers, SimKernel) do not key at all.
// The timed flag is part of the key because the untimed (Table 1) and
// timed (Table 2) flows produce different rows from the same file.
func CacheKey(cfg flow.Config, timed bool, fileBytes []byte) ([32]byte, error) {
	cfgJSON, err := canonicalConfigJSON(cfg)
	if err != nil {
		return [32]byte{}, err
	}
	return keyFromCanonical(cfgJSON, timed, fileBytes), nil
}

// canonicalConfigJSON is the deterministic byte form of a configuration:
// encoding/json marshals struct fields in declaration order, so the
// canonicalized struct has exactly one encoding.
func canonicalConfigJSON(cfg flow.Config) ([]byte, error) {
	b, err := json.Marshal(cfg.Canonical())
	if err != nil {
		return nil, fmt.Errorf("serve: canonicalize config: %w", err)
	}
	return b, nil
}

// keyFromCanonical hashes a precomputed canonical config encoding — the
// per-job fast path (one config encoding, many files). The 0x00
// separator cannot occur inside JSON text, so the framing is
// unambiguous.
func keyFromCanonical(cfgJSON []byte, timed bool, fileBytes []byte) [32]byte {
	h := sha256.New()
	h.Write(cfgJSON)
	sel := []byte{0, 't', 0}
	if !timed {
		sel[1] = 'u'
	}
	h.Write(sel)
	h.Write(fileBytes)
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// cachedResult is the deterministic portion of one corpus row — the
// fields that are a pure function of (config, file bytes). Submission
// metadata (index, submitted path, wall-clock) is reattached per job.
type cachedResult struct {
	sequential bool
	row        *flow.Row
	seqRow     *flow.SequentialRow
	errText    string
	format     string
	// engine and budgetTrips record the degradation-chain stage that
	// produced the row. Budget trips are deterministic (per-build node
	// caps, pre-shard vector clamps), so degraded rows are cacheable —
	// unlike timeouts.
	engine      string
	budgetTrips int
}

// rowCache is the content-addressed result cache: a bounded map from
// CacheKey to the immutable flow result, evicted FIFO. Values are
// shared, never mutated.
type rowCache struct {
	mu      sync.Mutex
	max     int
	entries map[[32]byte]*cachedResult
	order   [][32]byte // insertion order, for FIFO eviction
}

func newRowCache(max int) *rowCache {
	return &rowCache{max: max, entries: make(map[[32]byte]*cachedResult)}
}

func (c *rowCache) get(key [32]byte) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	return r, ok
}

// put stores a completed row's deterministic portion. Rows flagged
// TimedOut are refused: whether a circuit beats its timeout depends on
// machine load, so caching one would freeze a non-deterministic outcome.
func (c *rowCache) put(key [32]byte, r *flow.CorpusRow) {
	if r.TimedOut || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = &cachedResult{
		sequential:  r.Sequential,
		row:         r.Row,
		seqRow:      r.SeqRow,
		errText:     r.Err,
		format:      r.Format,
		engine:      r.Engine,
		budgetTrips: r.BudgetTrips,
	}
	c.order = append(c.order, key)
}

// len reports the resident entry count (metrics).
func (c *rowCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
