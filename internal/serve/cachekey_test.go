package serve

import (
	"reflect"
	"testing"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/timing"
)

var keyFile = []byte(".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")

func mustKey(t *testing.T, cfg flow.Config, timed bool, data []byte) [32]byte {
	t.Helper()
	k, err := CacheKey(cfg, timed, data)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCanonicalCoversEveryConfigField is the totality gate: every
// flow.Config field must be classified as either semantic (part of the
// cache key) or pure wall-clock (erased by Canonical). Adding a field to
// flow.Config without deciding which it is fails this test — the
// decision is what keeps content addressing correct as the config
// grows.
func TestCanonicalCoversEveryConfigField(t *testing.T) {
	semantic := map[string]bool{
		"Lib": true, "InputProb": true, "SimVectors": true, "SimSeed": true,
		"EstOpts": true, "MaxPairs": true, "ExhaustiveLimit": true,
		"Timing": true, "Slack": true, "Resynthesize": true,
		"MaxCollapseSupport": true, "SimShards": true, "PhaseScoring": true,
		"SearchStrategy": true, "SearchRestarts": true, "SearchSeed": true,
		"AnnealSteps": true,
		// Budgets are semantic: tripping one changes which engine produced
		// the row (CorpusRow.Engine) and the row's values — deterministically.
		"BDDNodeBudget": true, "SimVectorBudget": true,
		// The reorder mode changes the variable order exact probabilities
		// are computed under and which degradation stage a budgeted row
		// lands on, so it is part of the key.
		"BDDReorder": true,
	}
	// Wall-clock knobs never change any result (the concurrency and
	// packing contracts in internal/README.md), so Canonical must erase
	// them — asserted field by field below.
	wallclock := map[string]bool{"Workers": true, "SimKernel": true, "SimBlockWords": true}

	typ := reflect.TypeOf(flow.Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if semantic[name] == wallclock[name] {
			t.Errorf("flow.Config field %q is not classified as semantic or wall-clock: "+
				"decide whether it changes rows and update Canonical plus this test", name)
		}
	}
	canon := reflect.ValueOf(flow.Config{Workers: 7, SimKernel: sim.KernelScalar, SimBlockWords: 4}.Canonical())
	for name := range wallclock {
		if !canon.FieldByName(name).IsZero() {
			t.Errorf("Canonical() keeps wall-clock field %q; the key would fragment on it", name)
		}
	}
}

// TestCacheKeyZeroVsDefault: the zero config and the explicitly
// spelled-out defaults are the same semantics, so they must share a key.
func TestCacheKeyZeroVsDefault(t *testing.T) {
	lib := domino.DefaultLibrary()
	tp := timing.DefaultParams()
	spelled := flow.Config{
		Lib:                &lib,
		InputProb:          0.5,
		SimVectors:         4096,
		ExhaustiveLimit:    12,
		Timing:             &tp,
		Slack:              1.25,
		MaxCollapseSupport: 14,
		SearchRestarts:     3,
		EstOpts:            power.Options{Depth: 4, MaxFrontier: 16},
	}
	if mustKey(t, flow.Config{}, false, keyFile) != mustKey(t, spelled, false, keyFile) {
		t.Error("zero config and spelled-out defaults key differently")
	}
}

// TestCacheKeyWallclockInvariant: knobs that by contract never change
// results must not fragment the key.
func TestCacheKeyWallclockInvariant(t *testing.T) {
	base := mustKey(t, flow.Config{}, false, keyFile)
	for _, cfg := range []flow.Config{
		{Workers: 1}, {Workers: 8},
		{SimKernel: sim.KernelWide}, {SimKernel: sim.KernelScalar},
		{Workers: 3, SimKernel: sim.KernelScalar},
		{SimKernel: sim.KernelBlocked, SimBlockWords: 4},
		{SimBlockWords: 8},
	} {
		if mustKey(t, cfg, false, keyFile) != base {
			t.Errorf("wall-clock variation %+v changed the key", cfg)
		}
	}
}

// TestCacheKeySemanticChanges: every semantic knob (and the flow
// selector, and the file bytes) must move the key.
func TestCacheKeySemanticChanges(t *testing.T) {
	lib := domino.DefaultLibrary()
	lib.MaxSeries = 3
	tp := timing.DefaultParams()
	tp.Intrinsic = 2
	mutations := map[string]flow.Config{
		"InputProb":          {InputProb: 0.25},
		"SimVectors":         {SimVectors: 8192},
		"SimSeed":            {SimSeed: 1},
		"EstOpts.Method":     {EstOpts: power.Options{Method: power.Approximate}},
		"EstOpts.Depth":      {EstOpts: power.Options{Method: power.LimitedDepth, Depth: 6}},
		"MaxPairs":           {MaxPairs: 5},
		"ExhaustiveLimit":    {ExhaustiveLimit: 4},
		"Slack":              {Slack: 1.5},
		"Resynthesize":       {Resynthesize: true},
		"MaxCollapseSupport": {MaxCollapseSupport: 10},
		"SimShards":          {SimShards: 4},
		"PhaseScoring":       {PhaseScoring: flow.ScoreNaive},
		"SearchStrategy":     {SearchStrategy: phase.StrategyAnneal},
		"SearchRestarts":     {SearchRestarts: 9},
		"SearchSeed":         {SearchSeed: 42},
		"AnnealSteps":        {AnnealSteps: 100},
		"Lib":                {Lib: &lib},
		"Timing":             {Timing: &tp},
		"BDDNodeBudget":      {BDDNodeBudget: 5000},
		"SimVectorBudget":    {SimVectorBudget: 1024},
		"BDDReorder":         {BDDReorder: flow.ReorderOff},
		"EstOpts.MCVectors":  {EstOpts: power.Options{Method: power.MonteCarlo, MCVectors: 4096}},
		"EstOpts.MCSeed":     {EstOpts: power.Options{Method: power.MonteCarlo, MCSeed: 7}},
	}
	base := mustKey(t, flow.Config{}, false, keyFile)
	keys := map[[32]byte]string{base: "base"}
	for name, cfg := range mutations {
		k := mustKey(t, cfg, false, keyFile)
		if prev, dup := keys[k]; dup {
			t.Errorf("semantic change %q keys identically to %q", name, prev)
			continue
		}
		keys[k] = name
	}
	if k := mustKey(t, flow.Config{}, true, keyFile); keys[k] != "" {
		t.Error("timed flow selector does not change the key")
	}
	other := append(append([]byte{}, keyFile...), '\n')
	if k := mustKey(t, flow.Config{}, false, other); keys[k] != "" {
		t.Error("file bytes do not change the key")
	}
}

// TestCacheKeyCanonicalIdempotent: canonicalization is a projection —
// applying it twice (or submitting an already-canonical config) cannot
// move the key.
func TestCacheKeyCanonicalIdempotent(t *testing.T) {
	cfgs := []flow.Config{
		{},
		{SimVectors: 512, Workers: 4, SearchStrategy: phase.StrategyBranchBound},
		{InputProb: 0.3, SimShards: 2, EstOpts: power.Options{Method: power.Exact}},
	}
	for _, cfg := range cfgs {
		if mustKey(t, cfg, false, keyFile) != mustKey(t, cfg.Canonical(), false, keyFile) {
			t.Errorf("key(%+v) differs from key of its canonical form", cfg)
		}
	}
}
