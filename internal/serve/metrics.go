package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics is the daemon's counter set, exposed in Prometheus text
// exposition format on GET /metrics. Everything is a plain atomic — no
// client-library dependency.
type metrics struct {
	jobsSubmitted    atomic.Int64 // accepted submissions (includes fully cached)
	jobsCompleted    atomic.Int64 // jobs that reached the done state
	jobsFailedRows   atomic.Int64 // completed jobs with >= 1 error row
	jobsRunning      atomic.Int64 // gauge
	rejectedBusy     atomic.Int64 // 429: queue full
	rejectedDraining atomic.Int64 // 503: drain in progress
	rowsTotal        atomic.Int64 // rows emitted (cache hits included)
	rowsFailed       atomic.Int64 // rows with a non-empty error
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	flowRuns         atomic.Int64 // times the flow was actually entered (RunCorpus calls)
	jobsCancelled    atomic.Int64 // DELETE /v1/jobs/{id} or ?cancel=1 disconnects that took effect
	rowsTimedOut     atomic.Int64 // rows whose error was a timeout/cancellation
	rowsDegradedBDD  atomic.Int64 // rows completed on the depth-weighted fallback stage
	rowsDegradedMC   atomic.Int64 // rows completed on the Monte-Carlo fallback stage
	rowsReordered    atomic.Int64 // rows rescued exactly by the reorder-and-retry stage
	budgetTrips      atomic.Int64 // resource-budget trips summed over emitted rows
}

// write renders the counter set. queued/cacheLen/draining/uptime are
// snapshots the server computes at scrape time.
func (m *metrics) write(w io.Writer, queued, cacheLen int, draining bool, uptime time.Duration) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("dominod_jobs_submitted_total", "accepted job submissions", m.jobsSubmitted.Load())
	counter("dominod_jobs_completed_total", "jobs that reached the done state", m.jobsCompleted.Load())
	counter("dominod_jobs_with_failed_rows_total", "completed jobs containing at least one error row", m.jobsFailedRows.Load())
	counter("dominod_jobs_rejected_busy_total", "submissions rejected 429 (queue full)", m.rejectedBusy.Load())
	counter("dominod_jobs_rejected_draining_total", "submissions rejected 503 (draining)", m.rejectedDraining.Load())
	gauge("dominod_jobs_queued", "jobs waiting in the bounded queue", float64(queued))
	gauge("dominod_jobs_running", "jobs currently executing", float64(m.jobsRunning.Load()))
	counter("dominod_jobs_cancelled_total", "jobs cancelled by DELETE or a ?cancel=1 stream disconnect", m.jobsCancelled.Load())
	rows := m.rowsTotal.Load()
	counter("dominod_rows_total", "result rows emitted (cache hits included)", rows)
	counter("dominod_rows_failed_total", "result rows carrying an error", m.rowsFailed.Load())
	counter("dominod_rows_timed_out_total", "result rows whose error was a timeout or cancellation", m.rowsTimedOut.Load())
	counter("dominod_rows_reordered_total", "rows rescued exactly by the BDD reorder-and-retry stage", m.rowsReordered.Load())
	counter("dominod_rows_degraded_depth_total", "rows completed on the depth-weighted fallback engine", m.rowsDegradedBDD.Load())
	counter("dominod_rows_degraded_mc_total", "rows completed on the Monte-Carlo fallback engine", m.rowsDegradedMC.Load())
	counter("dominod_budget_trips_total", "resource-budget trips (BDD node caps, sim vector clamps) summed over rows", m.budgetTrips.Load())
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	counter("dominod_cache_hits_total", "circuits served from the content-addressed cache", hits)
	counter("dominod_cache_misses_total", "circuits that had to run the flow", misses)
	gauge("dominod_cache_entries", "resident cache entries", float64(cacheLen))
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	gauge("dominod_cache_hit_rate", "cache hits / (hits + misses) since start", rate)
	counter("dominod_flow_runs_total", "times flow.RunCorpus was entered", m.flowRuns.Load())
	secs := uptime.Seconds()
	gauge("dominod_uptime_seconds", "seconds since the daemon started", secs)
	rps := 0.0
	if secs > 0 {
		rps = float64(rows) / secs
	}
	gauge("dominod_rows_per_second", "rows emitted per second of uptime", rps)
	d := 0.0
	if draining {
		d = 1
	}
	gauge("dominod_draining", "1 while a graceful drain is in progress", d)
}
