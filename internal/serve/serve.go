// Package serve is the synthesis-as-a-service layer: a long-running HTTP
// daemon (cmd/dominod) wrapping flow.RunCorpus. Clients POST a BLIF/PLA
// file or a tar/zip archive plus a JSON flow.Config to /v1/jobs, poll
// GET /v1/jobs/{id}, and stream report.CorpusRecord JSONL rows from
// GET /v1/jobs/{id}/rows — in deterministic index order, while later
// circuits are still running.
//
// Three properties make the service cheap to operate, all inherited from
// the corpus determinism contract (internal/README.md):
//
//   - Content-addressed caching. A corpus row is a pure function of
//     (file bytes, canonicalized configuration, flow selector), so
//     results are cached under CacheKey — the SHA-256 of exactly those
//     inputs — and identical resubmissions are answered without
//     re-entering the flow. No invalidation exists because none is
//     needed. Timeout/cancellation rows, the one documented
//     non-deterministic outcome, are never cached.
//   - Bounded queue with backpressure. Submissions beyond QueueDepth are
//     rejected with 429 and a Retry-After hint instead of accumulating
//     unbounded state; fully cached submissions bypass the queue and
//     complete at submit time.
//   - Graceful drain and real cancellation. On Drain (SIGTERM in the
//     daemon) the server stops accepting work (503, /readyz not ready),
//     finishes every queued and running job, and only then lets the
//     process exit. Per-circuit timeouts, DELETE /v1/jobs/{id}, and
//     client disconnects from ?cancel=1 row streams all cancel through
//     the cooperative budget token the flow polls (internal/budget), so
//     the worker goroutine exits — nothing is abandoned and the
//     goroutine count stays flat under sustained timeouts.
//
// See docs/api.md for the endpoint reference and docs/architecture.md
// for how the service sits on the synthesis pipeline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/report"
)

// Options parameterizes a Server. The zero value is completed by
// defaults: a 64-deep queue, one job at a time with per-job circuit
// parallelism, a 4096-entry cache, 64 MiB uploads.
type Options struct {
	// QueueDepth bounds the pending-job queue; a submission that finds
	// it full is rejected with 429 + Retry-After (default 64).
	QueueDepth int
	// JobWorkers is how many jobs execute concurrently (default 1:
	// parallelism then lives inside the job, at the circuit grain).
	JobWorkers int
	// FlowWorkers is the per-job circuit concurrency, i.e.
	// flow.CorpusConfig.Workers (0 = GOMAXPROCS). Each circuit's own
	// flow is pinned to a single worker, exactly like cmd/dominoflow, so
	// JobWorkers x FlowWorkers is the box's circuit concurrency.
	FlowWorkers int
	// CircuitTimeout caps one circuit's wall-clock (0 = none) via the
	// corpus engine's cooperative cancellation: the circuit's goroutine
	// observes the tripped budget token and exits.
	CircuitTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache (0 =
	// default 4096; negative disables caching).
	CacheEntries int
	// MaxUploadBytes bounds one submission body (default 64 MiB).
	MaxUploadBytes int64
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds retained job metadata; the oldest *done* jobs are
	// evicted beyond it (default 16384).
	MaxJobs int
	// FaultInjection, when set, interprets magic circuit-name prefixes
	// (fault-panic, fault-slow, fault-bddblow) as per-circuit fault
	// configurations — the chaos-smoke harness (dominod -faultsmoke) and
	// the robustness tests use it to drive hostile work through the real
	// flow. Never enable it on a real service.
	FaultInjection bool
}

func (o *Options) defaults() {
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.JobWorkers == 0 {
		o.JobWorkers = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 16384
	}
}

// Server is the dominod service core: the bounded job queue, its worker
// pool, the content-addressed cache, and the HTTP surface. Create with
// NewServer, attach Handler() to an http.Server, call Start, and Drain
// on shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *rowCache
	m     metrics
	start time.Time

	queue    chan *job
	submitMu sync.Mutex // serializes queue sends against Drain's close
	draining atomic.Bool
	workers  sync.WaitGroup

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for MaxJobs eviction

	// beforeJob, when non-nil, runs in the worker immediately before a
	// job executes — a test hook for holding the queue in a known state.
	beforeJob func(*job)
}

// NewServer builds a Server; call Start to launch its workers.
func NewServer(opts Options) *Server {
	opts.defaults()
	s := &Server{
		opts:  opts,
		cache: newRowCache(opts.CacheEntries),
		start: time.Now(),
		queue: make(chan *job, opts.QueueDepth),
		jobs:  make(map[string]*job),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the job workers.
func (s *Server) Start() {
	for i := 0; i < s.opts.JobWorkers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				if s.beforeJob != nil {
					s.beforeJob(j)
				}
				s.runJob(j)
			}
		}()
	}
}

// Drain is the graceful shutdown: stop accepting submissions (they get
// 503, /readyz reports not-ready), let the workers finish every queued
// and running job, then return. Idempotent; the daemon calls it from its
// SIGTERM/SIGINT handler before shutting the http.Server down, so row
// streams of the final jobs complete too.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.submitMu.Lock()
	close(s.queue)
	s.submitMu.Unlock()
	s.workers.Wait()
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// FlowRuns reports how many times the flow has been entered — the
// counter the cache e2e tests and the smoke harness assert on.
func (s *Server) FlowRuns() int64 { return s.m.flowRuns.Load() }

// lookupJob returns a registered job.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// registerJob records a job, evicting the oldest done jobs past MaxJobs.
func (s *Server) registerJob(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			old, ok := s.jobs[id]
			if !ok {
				continue
			}
			old.mu.Lock()
			done := old.state == StateDone
			old.mu.Unlock()
			if done {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted { // everything retained is still live; let it ride
			break
		}
	}
}

func (s *Server) unregisterJob(id string) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	delete(s.jobs, id)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/jobs: parse the submission, resolve
// cache hits, and either finish the job on the spot (every circuit hit)
// or enqueue it — rejecting with 429 + Retry-After when the bounded
// queue is full, or 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	name, data, cfgRaw, timed, serr := readSubmission(w, r, s.opts.MaxUploadBytes)
	if serr != nil {
		writeError(w, serr.status, "%s", serr.msg)
		return
	}
	cfg, err := parseConfig(cfgRaw)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	circuits, err := expandSubmission(name, data)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	cfgJSON, err := canonicalConfigJSON(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := newJob(circuits, cfg, cfgJSON, timed)

	// Resolve the cache before touching the queue: hits fill their slots
	// immediately, and a fully cached job never occupies a queue slot.
	misses := 0
	for i := range j.circuits {
		c := &j.circuits[i]
		c.key = keyFromCanonical(cfgJSON, timed, c.data)
		if hit, ok := s.cache.get(c.key); ok {
			c.cached = hit
			j.cacheHits++
			s.m.cacheHits.Add(1)
		} else {
			misses++
			s.m.cacheMisses.Add(1)
		}
	}

	if misses == 0 {
		s.registerJob(j)
		s.m.jobsSubmitted.Add(1)
		s.fillCachedSlots(j)
		s.finishJob(j)
		writeJSON(w, http.StatusOK, j.status())
		return
	}

	s.submitMu.Lock()
	if s.draining.Load() {
		s.submitMu.Unlock()
		s.m.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	s.registerJob(j)
	select {
	case s.queue <- j:
		s.submitMu.Unlock()
	default:
		s.submitMu.Unlock()
		s.unregisterJob(j.id)
		s.m.rejectedBusy.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d pending); retry after %v", s.opts.QueueDepth, s.opts.RetryAfter)
		return
	}
	s.m.jobsSubmitted.Add(1)
	s.fillCachedSlots(j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// errStatus maps an error to its HTTP status: submitErrors carry their
// own, anything else is a 400.
func errStatus(err error) int {
	var se *submitError
	if errors.As(err, &se) {
		return se.status
	}
	return http.StatusBadRequest
}

// fillCachedSlots emits every cache-hit row. Misses stay nil; the
// frontier advances as the flow fills them.
func (s *Server) fillCachedSlots(j *job) {
	for i := range j.circuits {
		if c := &j.circuits[i]; c.cached != nil {
			row := cachedCorpusRow(i, *c, c.cached)
			s.countRow(row)
			j.fill(i, row)
		}
	}
}

// countRow tracks row-level metrics at emission time.
func (s *Server) countRow(row *flow.CorpusRow) {
	s.m.rowsTotal.Add(1)
	if row.Err != "" {
		s.m.rowsFailed.Add(1)
	}
	if row.TimedOut {
		s.m.rowsTimedOut.Add(1)
	}
	switch row.Engine {
	case flow.EngineExactSifted:
		s.m.rowsReordered.Add(1)
	case flow.EngineDepthWeighted:
		s.m.rowsDegradedBDD.Add(1)
	case flow.EngineMonteCarlo:
		s.m.rowsDegradedMC.Add(1)
	}
	if row.BudgetTrips > 0 {
		s.m.budgetTrips.Add(int64(row.BudgetTrips))
	}
}

// finishJob finalizes metrics and state for a job whose slots are full.
func (s *Server) finishJob(j *job) {
	j.finish()
	s.m.jobsCompleted.Add(1)
	j.mu.Lock()
	failed := j.failed
	j.mu.Unlock()
	if failed > 0 {
		s.m.jobsFailedRows.Add(1)
	}
}

// runJob executes a job's cache misses through flow.RunCorpus: spool the
// miss bytes to a temp directory, run them as a sub-corpus, and remap
// each finished row back to its global index (submitted path restored,
// spool path never leaks). Every failure mode ends with a finished job —
// spool errors become error rows, and per-circuit flow failures are
// already isolated by the corpus engine.
func (s *Server) runJob(j *job) {
	s.m.jobsRunning.Add(1)
	defer s.m.jobsRunning.Add(-1)

	// A job cancelled while still queued never enters the flow: its
	// unfilled slots become cancellation rows and the job completes, so
	// streams and drain see a normal done state.
	if j.ctx.Err() != nil {
		s.fillCancelledSlots(j)
		s.finishJob(j)
		return
	}
	j.setState(StateRunning)

	type miss struct{ global int }
	var entries []corpus.Entry
	var misses []miss
	spool, err := os.MkdirTemp("", "dominod-"+j.id+"-")
	if err == nil {
		defer os.RemoveAll(spool)
		for i := range j.circuits {
			c := &j.circuits[i]
			if c.cached != nil {
				continue
			}
			p := filepath.Join(spool, filepath.FromSlash(c.relPath))
			if err = os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				break
			}
			if err = os.WriteFile(p, c.data, 0o644); err != nil {
				break
			}
			entries = append(entries, corpus.Entry{Path: p, Name: c.name, Format: c.format})
			misses = append(misses, miss{global: i})
		}
	}
	if err != nil {
		// Spool failure: answer every unfilled slot with an error row
		// rather than wedging the job.
		for i := range j.circuits {
			if j.circuits[i].cached == nil {
				row := &flow.CorpusRow{
					Index: i, Name: j.circuits[i].name, Path: j.circuits[i].relPath,
					Format: j.circuits[i].format.String(),
					Err:    fmt.Sprintf("serve: spool: %v", err),
				}
				s.countRow(row)
				j.fill(i, row)
			}
		}
		s.finishJob(j)
		return
	}

	// Each circuit's own flow runs single-worker (the dominoflow
	// convention): concurrency lives at the circuit and job grains.
	base := j.cfg
	base.Workers = 1
	cc := flow.CorpusConfig{
		Base:    base,
		Timed:   j.timed,
		Workers: s.opts.FlowWorkers,
		Timeout: s.opts.CircuitTimeout,
		OnRow: func(r *flow.CorpusRow) {
			g := misses[r.Index].global
			row := *r
			row.Index = g
			row.Path = j.circuits[g].relPath
			s.cache.put(j.circuits[g].key, &row)
			s.countRow(&row)
			j.fill(g, &row)
		},
	}
	if s.opts.FaultInjection {
		cc.Configure = faultConfigure
	}
	s.m.flowRuns.Add(1)
	// RunCorpus runs under the job's context: cancellation trips the
	// per-circuit budget tokens, running circuits unwind into
	// cancellation rows, and circuits that never started are answered
	// below — the job always reaches done with every slot filled.
	_, _ = flow.RunCorpus(j.ctx, entries, cc)
	if j.ctx.Err() != nil {
		s.fillCancelledSlots(j)
	}
	s.finishJob(j)
}

// fillCancelledSlots answers every still-unfilled slot of a cancelled
// job with a cancellation row (TimedOut set, so nothing is cached).
func (s *Server) fillCancelledSlots(j *job) {
	cause := context.Cause(j.ctx)
	if cause == nil {
		cause = context.Canceled
	}
	for _, i := range j.unfilledSlots() {
		c := &j.circuits[i]
		row := &flow.CorpusRow{
			Index: i, Name: c.name, Path: c.relPath, Format: c.format.String(),
			Err: cause.Error(), TimedOut: true,
		}
		s.countRow(row)
		j.fill(i, row)
	}
}

// handleCancel implements DELETE /v1/jobs/{id}: cancel a queued or
// running job. Running circuits unwind cooperatively into cancellation
// rows; circuits that never started are answered with cancellation rows
// when the worker reaches the job. Cancelling a done job is a no-op.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return
	}
	if j.requestCancel(errors.New("cancelled by client")) {
		s.m.jobsCancelled.Add(1)
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleRows implements GET /v1/jobs/{id}/rows: stream the job's JSONL
// rows in index order, flushing each batch, and hold the connection open
// until the job completes (or the client goes away). A finished job's
// rows remain fetchable for as long as the job is retained. With
// ?cancel=1 the stream owns the job: the client disconnecting before
// the job is done cancels it, so abandoned interactive sessions release
// their compute.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return
	}
	cancelOnDisconnect := false
	if q := r.URL.Query().Get("cancel"); q != "" {
		if v, err := strconv.ParseBool(q); err == nil {
			cancelOnDisconnect = v
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Dominod-Schema-Version", strconv.Itoa(report.CorpusSchemaVersion))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers to the wire now: a ?cancel=1 client must be
		// able to open the stream (and later disconnect) while the job is
		// still running and no rows exist to force a flush.
		flusher.Flush()
	}
	cursor := 0
	for {
		j.mu.Lock()
		lines := j.lines[cursor:]
		done := j.state == StateDone
		wait := j.notify
		j.mu.Unlock()
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		cursor += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			if cancelOnDisconnect {
				if j.requestCancel(errors.New("rows stream client disconnected")) {
					s.m.jobsCancelled.Add(1)
				}
			}
			return
		}
	}
}

// handleHealthz: liveness — the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz: readiness — accepting new work. Draining flips it.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	fmt.Fprintf(w, "ok (queue %d/%d)\n", len(s.queue), s.opts.QueueDepth)
}

// handleMetrics: Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.write(w, len(s.queue), s.cache.len(), s.draining.Load(), time.Since(s.start))
}

// readSubmission extracts (file name, file bytes, config JSON, timed)
// from a request. Two shapes are accepted:
//
//   - multipart/form-data: a "file" part (file name from the part),
//     optional "config" part or value, optional "timed" value;
//   - raw body: the file bytes, name from the ?name= query parameter,
//     config from the X-Dominod-Config header, timed from ?timed=.
func readSubmission(w http.ResponseWriter, r *http.Request, maxBytes int64) (name string, data, cfgRaw []byte, timed bool, serr *submitError) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	if q := r.URL.Query().Get("timed"); q != "" {
		t, err := strconv.ParseBool(q)
		if err != nil {
			return "", nil, nil, false, badRequest("bad timed value %q", q)
		}
		timed = t
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "multipart/") {
		if err := r.ParseMultipartForm(maxBytes); err != nil {
			return "", nil, nil, false, uploadError(err)
		}
		files := r.MultipartForm.File["file"]
		if len(files) != 1 {
			return "", nil, nil, false, badRequest("want exactly one \"file\" part, got %d", len(files))
		}
		fh := files[0]
		f, err := fh.Open()
		if err != nil {
			return "", nil, nil, false, badRequest("bad file part: %v", err)
		}
		defer f.Close()
		data, err = io.ReadAll(f)
		if err != nil {
			return "", nil, nil, false, uploadError(err)
		}
		// config may arrive as a form value (-F config='{...}') or as an
		// attached file part (-F config=@cfg.json).
		if vs := r.MultipartForm.Value["config"]; len(vs) > 0 {
			cfgRaw = []byte(vs[0])
		} else if cf := r.MultipartForm.File["config"]; len(cf) > 0 {
			cfgF, err := cf[0].Open()
			if err != nil {
				return "", nil, nil, false, badRequest("bad config part: %v", err)
			}
			defer cfgF.Close()
			if cfgRaw, err = io.ReadAll(cfgF); err != nil {
				return "", nil, nil, false, uploadError(err)
			}
		}
		if vs := r.MultipartForm.Value["timed"]; len(vs) > 0 {
			t, err := strconv.ParseBool(vs[0])
			if err != nil {
				return "", nil, nil, false, badRequest("bad timed value %q", vs[0])
			}
			timed = t
		}
		return fh.Filename, data, cfgRaw, timed, nil
	}
	name = r.URL.Query().Get("name")
	if name == "" {
		return "", nil, nil, false, badRequest("raw submissions need a ?name= query parameter (or use multipart/form-data)")
	}
	var err error
	data, err = io.ReadAll(r.Body)
	if err != nil {
		return "", nil, nil, false, uploadError(err)
	}
	cfgRaw = []byte(r.Header.Get("X-Dominod-Config"))
	return name, data, cfgRaw, timed, nil
}

// uploadError maps body-read failures: MaxBytesReader overflow becomes
// 413, everything else 400.
func uploadError(err error) *submitError {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &submitError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("submission too large: %v", err)}
	}
	return badRequest("reading submission: %v", err)
}
