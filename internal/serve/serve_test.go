package serve

import (
	"archive/tar"
	"archive/zip"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/report"
)

// Tiny circuits (the corpus-test idiom: <= 3 outputs keeps every search
// exhaustive-feasible and fast), covering both formats plus the latched
// sequential path.
const tinyBLIF = `.model comb
.inputs a b c d
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names c d g
10 1
01 1
.end
`

const tinySeqBLIF = `.model counter
.inputs en
.outputs q0
.latch n0 q0 0
.names en q0 n0
10 1
01 1
.end
`

const tinyPLA = `.i 3
.o 2
.ilb x y z
.ob p q
11- 10
-11 01
1-1 11
.e
`

const testCfgJSON = `{"SimVectors":128,"SimShards":2}`

func testConfig() flow.Config {
	return flow.Config{SimVectors: 128, SimShards: 2, Workers: 1}
}

// testServer stands up a Server over httptest with fast-test options.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.FlowWorkers == 0 {
		opts.FlowWorkers = 2
	}
	s := NewServer(opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postRaw(t *testing.T, base, name string, body []byte, cfgJSON string, extraQuery string) *http.Response {
	t.Helper()
	url := base + "/v1/jobs?name=" + name + extraQuery
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if cfgJSON != "" {
		req.Header.Set("X-Dominod-Config", cfgJSON)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) jobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// fetchRows blocks until the job's stream completes, returning parsed
// records.
func fetchRows(t *testing.T, base, id string) []report.CorpusRecord {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rows: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dominod-Schema-Version"); got != fmt.Sprint(report.CorpusSchemaVersion) {
		t.Fatalf("schema version header %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var recs []report.CorpusRecord
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" {
			continue
		}
		var r report.CorpusRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func tarOf(t *testing.T, files map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	// Deterministic member order (not that it matters: the server sorts).
	var names []string
	for n := range files {
		names = append(names, n)
	}
	for _, n := range names {
		data := []byte(files[n])
		if err := tw.WriteHeader(&tar.Header{Name: n, Mode: 0o644, Size: int64(len(data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSubmitSingleFileMatchesDirectFlow: a raw single-file submission
// streams exactly the rows flow.RunCorpus produces for the same bytes
// and configuration (wall-clock excepted).
func TestSubmitSingleFileMatchesDirectFlow(t *testing.T) {
	_, ts := testServer(t, Options{})
	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	if st.State == "" || st.ID == "" {
		t.Fatalf("bad status %+v", st)
	}
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 {
		t.Fatalf("got %d rows, want 1", len(recs))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "comb.blif")
	if err := os.WriteFile(path, []byte(tinyBLIF), 0o644); err != nil {
		t.Fatal(err)
	}
	direct, err := flow.RunCorpus(context.Background(),
		[]corpus.Entry{{Path: path, Name: "comb", Format: corpus.FormatBLIF}},
		flow.CorpusConfig{Base: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	want := report.NewCorpusRecord(direct[0])
	want.Path = "comb.blif"
	got := recs[0]
	want.WallSec = got.WallSec
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("served row != direct row:\n  http:   %s\n  direct: %s", gb, wb)
	}
}

// TestArchiveSubmission: a tar mixing BLIF (combinational + latched),
// PLA, and a skippable member runs as one job with path-sorted rows.
func TestArchiveSubmission(t *testing.T) {
	_, ts := testServer(t, Options{})
	archive := tarOf(t, map[string]string{
		"z/comb.blif":  tinyBLIF,
		"counter.blif": tinySeqBLIF,
		"two.pla":      tinyPLA,
		"README.txt":   "not a circuit\n",
	})
	st := decodeStatus(t, postRaw(t, ts.URL, "batch.tar", archive, testCfgJSON, ""))
	if st.Circuits != 3 {
		t.Fatalf("job has %d circuits, want 3 (README skipped)", st.Circuits)
	}
	recs := fetchRows(t, ts.URL, st.ID)
	var paths, formats []string
	for _, r := range recs {
		paths = append(paths, r.Path)
		formats = append(formats, r.Format)
		if r.Error != "" {
			t.Errorf("%s: unexpected error row: %s", r.Path, r.Error)
		}
	}
	wantPaths := []string{"counter.blif", "two.pla", "z/comb.blif"}
	wantFormats := []string{"blif", "pla", "blif"}
	if fmt.Sprint(paths) != fmt.Sprint(wantPaths) || fmt.Sprint(formats) != fmt.Sprint(wantFormats) {
		t.Errorf("rows %v %v, want %v %v", paths, formats, wantPaths, wantFormats)
	}
	if !recs[0].Sequential || recs[0].FFs != 1 {
		t.Errorf("counter.blif should be a sequential row with 1 FF, got %+v", recs[0])
	}
}

// TestCacheHitSecondSubmission is the end-to-end cache test: the second
// identical submission completes at submit time, reports full cache
// hits, does NOT re-enter the flow, and serves identical rows.
func TestCacheHitSecondSubmission(t *testing.T) {
	s, ts := testServer(t, Options{})
	first := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	firstRows := fetchRows(t, ts.URL, first.ID)
	if runs := s.FlowRuns(); runs != 1 {
		t.Fatalf("flow entered %d times after first submission, want 1", runs)
	}

	resp := postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit status %d, want 200", resp.StatusCode)
	}
	second := decodeStatus(t, resp)
	if second.State != StateDone || second.CacheHits != 1 {
		t.Fatalf("cached resubmit: %+v, want done with 1 hit", second)
	}
	if runs := s.FlowRuns(); runs != 1 {
		t.Errorf("cached resubmit re-entered the flow (%d runs)", runs)
	}
	secondRows := fetchRows(t, ts.URL, second.ID)
	if len(secondRows) != 1 {
		t.Fatalf("cached job has %d rows", len(secondRows))
	}
	a, b := firstRows[0], secondRows[0]
	b.WallSec = a.WallSec
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Errorf("cached row differs:\n  first:  %s\n  second: %s", ab, bb)
	}
}

// TestCacheHitAcrossWallclockKnobs: resubmitting with different Workers
// / SimKernel — pure wall-clock knobs — still hits; a semantic change
// misses.
func TestCacheHitAcrossWallclockKnobs(t *testing.T) {
	s, ts := testServer(t, Options{})
	fetchRows(t, ts.URL, decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, "")).ID)
	if runs := s.FlowRuns(); runs != 1 {
		t.Fatalf("setup: %d flow runs", runs)
	}
	wallclock := `{"SimVectors":128,"SimShards":2,"Workers":8,"SimKernel":2}`
	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), wallclock, ""))
	if st.State != StateDone || s.FlowRuns() != 1 {
		t.Errorf("wall-clock knob variation missed the cache: %+v, %d runs", st, s.FlowRuns())
	}
	semantic := `{"SimVectors":256,"SimShards":2}`
	st = decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), semantic, ""))
	fetchRows(t, ts.URL, st.ID)
	if runs := s.FlowRuns(); runs != 2 {
		t.Errorf("semantic config change should re-run the flow, got %d runs", runs)
	}
}

// TestPartialCacheHit: an archive whose members are partly cached runs
// only the misses but still streams every row in index order.
func TestPartialCacheHit(t *testing.T) {
	s, ts := testServer(t, Options{})
	fetchRows(t, ts.URL, decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, "")).ID)

	archive := tarOf(t, map[string]string{"comb.blif": tinyBLIF, "two.pla": tinyPLA})
	st := decodeStatus(t, postRaw(t, ts.URL, "batch.tar", archive, testCfgJSON, ""))
	if st.CacheHits != 1 {
		t.Fatalf("partial submission reports %d hits, want 1", st.CacheHits)
	}
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 2 || recs[0].Path != "comb.blif" || recs[1].Path != "two.pla" {
		t.Fatalf("bad rows %+v", recs)
	}
	if runs := s.FlowRuns(); runs != 2 {
		t.Errorf("%d flow runs, want 2 (one per submission with misses)", runs)
	}
}

// TestBackpressure429: with a held worker and a 1-deep queue, the third
// concurrent job draws 429 + Retry-After; releasing the worker drains
// the queue.
func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(Options{QueueDepth: 1, JobWorkers: 1, FlowWorkers: 1})
	s.beforeJob = func(*job) { <-release }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})

	ids := make([]string, 0, 2)
	var got429 *http.Response
	for i := 0; i < 3; i++ {
		cfg := fmt.Sprintf(`{"SimVectors":128,"SimSeed":%d}`, i+1)
		resp := postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), cfg, "")
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, decodeStatus(t, resp).ID)
	}
	if got429 == nil {
		t.Fatal("no 429 after overfilling the queue")
	}
	if got429.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	got429.Body.Close()
	if len(ids) != 2 {
		t.Errorf("accepted %d jobs before 429, want 2 (1 running + 1 queued)", len(ids))
	}
	close(release)
	for _, id := range ids {
		fetchRows(t, ts.URL, id)
	}
}

// TestGracefulDrain: drain completes the in-flight job, flips readyz,
// and rejects new submissions with 503 — while finished jobs stay
// queryable.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(Options{QueueDepth: 4, JobWorkers: 1, FlowWorkers: 1})
	s.beforeJob = func(*job) { <-release }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close() })

	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Drain flips the flag before blocking on workers.
	deadline := time.After(5 * time.Second)
	for !s.Draining() {
		select {
		case <-deadline:
			t.Fatal("drain flag never flipped")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	reject := postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), `{"SimSeed":99}`, "")
	reject.Body.Close()
	if reject.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain: %d, want 503", reject.StatusCode)
	}

	close(release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || recs[0].Error != "" {
		t.Errorf("in-flight job after drain: %+v", recs)
	}
	// healthz stays live through and after the drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain: %d", resp.StatusCode)
	}
}

// TestRowsStreamWaitsForCompletion: a rows request opened while the job
// is still held delivers the rows once the job runs, rather than
// returning an empty body.
func TestRowsStreamWaitsForCompletion(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(Options{QueueDepth: 4, JobWorkers: 1, FlowWorkers: 1})
	s.beforeJob = func(*job) { <-release }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})

	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	type result struct {
		recs []report.CorpusRecord
	}
	got := make(chan result, 1)
	go func() {
		got <- result{fetchRows(t, ts.URL, st.ID)}
	}()
	select {
	case <-got:
		t.Fatal("rows stream completed while the job was still held")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case r := <-got:
		if len(r.recs) != 1 {
			t.Errorf("streamed %d rows, want 1", len(r.recs))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rows stream never completed")
	}
}

// TestTimeoutRowsNotCached: a timed-out row is the documented
// non-deterministic outcome — resubmitting must re-run the flow, not
// replay the timeout.
func TestTimeoutRowsNotCached(t *testing.T) {
	s, ts := testServer(t, Options{CircuitTimeout: time.Nanosecond, FlowWorkers: 1})
	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || !recs[0].TimedOut || recs[0].Error == "" {
		t.Fatalf("expected a timed-out row, got %+v", recs)
	}
	st2 := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	fetchRows(t, ts.URL, st2.ID)
	if runs := s.FlowRuns(); runs != 2 {
		t.Errorf("timed-out row was served from cache (%d flow runs, want 2)", runs)
	}
}

// TestSubmitRejections: malformed submissions are rejected up front with
// the right statuses; no job is created.
func TestSubmitRejections(t *testing.T) {
	_, ts := testServer(t, Options{MaxUploadBytes: 1 << 16})
	emptyTar := tarOf(t, nil)
	dupTar := func() []byte {
		var buf bytes.Buffer
		tw := tar.NewWriter(&buf)
		for i := 0; i < 2; i++ {
			data := []byte(tinyBLIF)
			tw.WriteHeader(&tar.Header{Name: "same.blif", Mode: 0o644, Size: int64(len(data))})
			tw.Write(data)
		}
		tw.Close()
		return buf.Bytes()
	}()
	escapeTar := func() []byte {
		var buf bytes.Buffer
		tw := tar.NewWriter(&buf)
		data := []byte(tinyBLIF)
		tw.WriteHeader(&tar.Header{Name: "../escape.blif", Mode: 0o644, Size: int64(len(data))})
		tw.Write(data)
		tw.Close()
		return buf.Bytes()
	}()
	cases := []struct {
		name     string
		fileName string
		body     []byte
		cfg      string
		want     int
	}{
		{"unknown extension", "circuit.v", []byte("module m; endmodule"), "", 400},
		{"no name", "", []byte(tinyBLIF), "", 400},
		{"bad config JSON", "c.blif", []byte(tinyBLIF), "{", 400},
		{"unknown config field", "c.blif", []byte(tinyBLIF), `{"NoSuchKnob":1}`, 400},
		{"empty archive", "e.tar", emptyTar, "", 400},
		{"duplicate members", "d.tar", dupTar, "", 400},
		{"path escape", "esc.tar", escapeTar, "", 400},
		{"oversize", "big.blif", bytes.Repeat([]byte{'x'}, 1<<17), "", 413},
	}
	for _, c := range cases {
		resp := postRaw(t, ts.URL, c.fileName, c.body, c.cfg, "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	if resp := postRaw(t, ts.URL, "x.blif", []byte(tinyBLIF), "", "&timed=maybe"); resp.StatusCode != 400 {
		resp.Body.Close()
		t.Errorf("bad timed value: status %d, want 400", resp.StatusCode)
	}
}

// TestZipSubmission: the zip container works like tar.
func TestZipSubmission(t *testing.T) {
	_, ts := testServer(t, Options{})
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	f, err := zw.Create("comb.blif")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(tinyBLIF))
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, postRaw(t, ts.URL, "one.zip", buf.Bytes(), testCfgJSON, ""))
	recs := fetchRows(t, ts.URL, st.ID)
	if len(recs) != 1 || recs[0].Path != "comb.blif" || recs[0].Error != "" {
		t.Errorf("zip rows: %+v", recs)
	}
}

// TestMetricsAndStatusEndpoints: the observability surface reports the
// counters the service contract names.
func TestMetricsAndStatusEndpoints(t *testing.T) {
	_, ts := testServer(t, Options{})
	st := decodeStatus(t, postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, ""))
	fetchRows(t, ts.URL, st.ID)
	postRaw(t, ts.URL, "comb.blif", []byte(tinyBLIF), testCfgJSON, "").Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"dominod_jobs_submitted_total 2",
		"dominod_cache_hits_total 1",
		"dominod_cache_misses_total 1",
		"dominod_cache_hit_rate 0.5",
		"dominod_flow_runs_total 1",
		"dominod_rows_total 2",
		"dominod_jobs_completed_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	status := decodeStatus(t, func() *http.Response {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}())
	if status.State != StateDone || status.Completed != 1 || status.SchemaVers != report.CorpusSchemaVersion {
		t.Errorf("status: %+v", status)
	}
	if r, _ := http.Get(ts.URL + "/v1/jobs/nope"); r.StatusCode != 404 {
		t.Errorf("unknown job: %d, want 404", r.StatusCode)
	}
}
