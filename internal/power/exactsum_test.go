package power

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum computes the exact sum of the multiset with math/big at a
// precision wide enough (whole float64 range + headroom) that every Add
// is exact, then rounds once to float64 — the reference for Round().
func bigSum(terms []float64) float64 {
	acc := new(big.Float).SetPrec(2400)
	t := new(big.Float).SetPrec(2400)
	for _, x := range terms {
		t.SetFloat64(x)
		acc.Add(acc, t)
	}
	f, _ := acc.Float64()
	return f
}

// randTerm draws floats across sign and a wide (but finite) exponent
// range, including subnormals and exact powers of two.
func randTerm(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return math.Ldexp(1, rng.Intn(300)-150) // exact powers of two
	case 2:
		return math.Ldexp(rng.Float64(), -1060) // deep subnormal territory
	case 3:
		return math.Ldexp(rng.Float64(), 900) // huge
	}
	x := rng.NormFloat64() * math.Ldexp(1, rng.Intn(80)-40)
	return x
}

// TestExactAccMatchesBigFloat pins Round against the big.Float oracle
// over random multisets, including sign mixes and extreme exponents.
func TestExactAccMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		terms := make([]float64, n)
		acc := newExactAcc()
		for i := range terms {
			terms[i] = randTerm(rng)
			if rng.Intn(4) == 0 {
				terms[i] = -terms[i]
			}
			acc.Add(terms[i])
		}
		want := bigSum(terms)
		if got := acc.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: Round() = %v (%x), big.Float = %v (%x), terms %v",
				trial, got, math.Float64bits(got), want, math.Float64bits(want), terms)
		}
		// Round must not perturb the value: rounding twice agrees.
		if got2 := acc.Round(); got2 != want {
			t.Fatalf("trial %d: second Round() = %v != %v", trial, got2, want)
		}
	}
}

// TestExactAccOrderAndRemovalIndependence is the property the score
// state rests on: any interleaving of adds and exact removals that ends
// at the same multiset rounds to the identical float64.
func TestExactAccOrderAndRemovalIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		terms := make([]float64, n)
		for i := range terms {
			terms[i] = randTerm(rng)
		}
		// Reference: straight fold.
		ref := newExactAcc()
		for _, x := range terms {
			ref.Add(x)
		}
		want := ref.Round()

		// Shuffled fold with spurious add/remove churn.
		acc := newExactAcc()
		perm := rng.Perm(n)
		for _, i := range perm {
			acc.Add(terms[i])
			if rng.Intn(3) == 0 {
				j := rng.Intn(n)
				acc.Add(terms[j])
				acc.Sub(terms[j])
			}
		}
		if got := acc.Round(); got != want {
			t.Fatalf("trial %d: churned sum %v != straight %v", trial, got, want)
		}
		// Removing everything returns to exact zero.
		for _, x := range terms {
			acc.Sub(x)
		}
		if got := acc.Round(); got != 0 {
			t.Fatalf("trial %d: emptied accumulator rounds to %v, want 0", trial, got)
		}
	}
}

// TestExactAccNegativeAndCancellation covers signed totals and massive
// cancellation, where running float sums lose everything.
func TestExactAccNegativeAndCancellation(t *testing.T) {
	acc := newExactAcc()
	acc.Add(1e300)
	acc.Add(3.5)
	acc.Sub(1e300)
	if got := acc.Round(); got != 3.5 {
		t.Fatalf("cancellation: %v, want 3.5", got)
	}
	acc.Sub(10)
	if got := acc.Round(); got != -6.5 {
		t.Fatalf("negative total: %v, want -6.5", got)
	}
	acc.Reset()
	if got := acc.Round(); got != 0 {
		t.Fatalf("reset: %v, want 0", got)
	}
	// Tie-to-even: 1 + 2^-53 rounds down to 1, 1 + 2^-52 + 2^-53 rounds
	// up to 1 + 2^-51.
	acc.Add(1)
	acc.Add(math.Ldexp(1, -53))
	if got := acc.Round(); got != 1 {
		t.Fatalf("tie-to-even down: %x, want 1", math.Float64bits(got))
	}
	acc.Add(math.Ldexp(1, -52))
	want := 1 + math.Ldexp(1, -51)
	if got := acc.Round(); got != want {
		t.Fatalf("tie-to-even up: %v, want %v", got, want)
	}
}

// TestExactAccRenormStress forces many same-limb adds past the renorm
// threshold bound logic (scaled down via direct renorm calls).
func TestExactAccRenormStress(t *testing.T) {
	acc := newExactAcc()
	terms := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		x := float64(i%97) * 0.001
		terms = append(terms, x)
		acc.Add(x)
		if i%577 == 0 {
			acc.renorm()
		}
	}
	if got, want := acc.Round(), bigSum(terms); got != want {
		t.Fatalf("stress sum %v != %v", got, want)
	}
}
