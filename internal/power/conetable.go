// Cone-cached phase scoring.
//
// The exhaustive and greedy phase searches used to rebuild the block —
// Apply, technology mapping, and a full probability pass — for every one
// of the 2^k candidate assignments, although each output cone's logic and
// probabilities depend only on that output's own phase bit. The ConeTable
// precomputes both phases of every cone once and reduces scoring an
// assignment to summing a few signature-gated cached constants.
//
// Construction ("2k cone syntheses in one pass"): the original network is
// cloned with every primary output listed twice, and phase.Apply runs
// once with the first copies positive and the second copies negative.
// Because Apply memoizes block nodes per (original node, polarity), the
// resulting "union block" contains exactly one node for every
// (node, polarity) any cone can ever demand, and the block any mask
// produces is precisely the union block's subgraph induced by its
// outputs' cones — domino.Map's width legalization splits each gate from
// its own fanin list only, so the correspondence survives mapping. One
// probability pass over the mapped union block (the same engines Estimate
// uses; every engine is a pure function of a node's fanin cone) then
// prices every cell of every cone in both phases.
//
// Folding: every term of Estimate's Σ S·C·(1+P) + boundary-inverter sum
// is gated by the presence of exactly one union-block element —
//
//	cell self load (wire)          gated by the cell,
//	pin load c→f (one input cap)   gated by the consumer c (whose
//	                               presence implies its fanin f's),
//	output cap and output-inverter gated by (output, phase) selection,
//	inverted-rail wire load        gated by the rail
//
// — and an element is present iff any cone demanding it is selected: a
// pure OR over phase bits, encoded as a (positive, negated) bitmask pair
// over the k outputs. Terms with the same signature are pre-summed, so
//
//	score(mask) = Σ_g  K_g · [ (~mask ∧ pos_g) ∨ (mask ∧ neg_g) ≠ 0 ]
//
// — a handful of word ops per distinct demand signature, with zero
// allocations and zero branching on the block structure. Private cones
// degenerate to one signature per (output, phase) — the paper's pairwise
// cost-function decomposition — while shared logic just contributes
// signatures with more than one demanding cone. The score equals
// Estimate's Report.Total on the Apply'd block up to float summation
// order, and because the active constants are folded through an exact
// accumulator (see exactsum.go) the rounded score is an
// order-independent, bit-identical pure function of the assignment for
// any worker count — and equal, bit-for-bit, to what the incremental
// ScoreState reaches by any flip path (see scorestate.go).
package power

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/prob"
)

// ConeTable is the precomputed signature-gated constant table scoring
// phase assignments without synthesis. Build it once per (network,
// library, input probabilities, engine options) and hand it to
// phase.ExhaustiveScored / SearchOptions.Scorer / PowerOptions.Scorer.
// It implements phase.StateScorer and phase.BoundScorer: NewState mints
// the O(Δ)-per-flip incremental scorer behind the search strategies,
// NewBound the admissible prefix bound behind exact branch-and-bound.
//
// The table is immutable after construction; ScoreAssignment on the
// table itself uses one embedded scratch buffer and is for sequential
// callers — concurrent searches Fork (cheap: one small buffer).
type ConeTable struct {
	k     int
	words int // ceil(k/64), ≥ 1

	// Signature groups in first-insertion (canonical) order; pos/neg are
	// flattened at stride words. Group g is active under a mask iff some
	// demanding cone is selected: (~mask & pos_g) | (mask & neg_g) ≠ 0.
	pos []uint64
	neg []uint64
	gk  []float64
	// gl/gp are each constant's precomposed exact-accumulator pieces
	// (decomposePieces of gk[g], 3 per group), so neither full rescores
	// nor incremental flips decompose floats on the scoring hot path.
	gl []int32
	gp []int64

	exact    bool
	numCells int
	self     *coneScorer

	// idx is the per-bit group index behind NewState/NewBound, built
	// lazily once and shared immutably by every state.
	idxOnce sync.Once
	idx     *flipIndex
}

// NewConeTable precomputes the cone table for a phase-ready network (no
// XORs; see phase.Apply) under the given library, original-input
// probabilities, and probability-engine options. All engines Estimate
// supports are valid here — Exact/Auto, Approximate, and LimitedDepth are
// all pure functions of a node's fanin cone, so per-node values computed
// on the union block equal those of any per-mask block.
func NewConeTable(n *logic.Network, lib domino.Library, inputProbs []float64, opts Options) (*ConeTable, error) {
	if len(inputProbs) != n.NumInputs() {
		return nil, fmt.Errorf("power: %d input probs for %d inputs", len(inputProbs), n.NumInputs())
	}
	k := n.NumOutputs()
	words := (k + 63) / 64
	if words == 0 {
		words = 1
	}

	// Union network: every output twice, second copies to be negated.
	union := n.Clone()
	for _, o := range n.Outputs() {
		name := o.Name + "__coneneg"
		for union.OutputByName(name) >= 0 {
			name += "_"
		}
		union.MarkOutput(name, o.Driver)
	}
	asg := make(phase.Assignment, 2*k)
	for j := k; j < 2*k; j++ {
		asg[j] = true
	}
	res, err := phase.Apply(union, asg)
	if err != nil {
		return nil, fmt.Errorf("power: cone table union synthesis: %w", err)
	}
	blk, err := domino.Map(res, lib)
	if err != nil {
		return nil, fmt.Errorf("power: cone table union mapping: %w", err)
	}
	net := blk.Net

	nodeProbs, exact, err := blockNodeProbs(nil, blk, inputProbs, opts)
	if err != nil {
		return nil, err
	}

	t := &ConeTable{
		k:        k,
		words:    words,
		exact:    exact,
		numCells: len(blk.Cells),
	}

	// Per-node demand signatures over the union block: sig[node] has bit
	// i of the pos (neg) half set iff output i's positive (negated) cone
	// demands the node. Union output j < k is output j positive, j ≥ k
	// is output j−k negated.
	sigPos := make([]uint64, net.NumNodes()*words)
	sigNeg := make([]uint64, net.NumNodes()*words)
	for j, o := range net.Outputs() {
		i, sig := j, sigPos
		if j >= k {
			i, sig = j-k, sigNeg
		}
		w, bit := i>>6, uint64(1)<<uint(i&63)
		cone := net.FaninCone(o.Driver)
		for node, in := range cone {
			if in {
				sig[node*words+w] |= bit
			}
		}
	}

	// Switching prices per node: cells carry S·(1+P); inverted input
	// rails carry their static inverter switching.
	sw := make([]float64, net.NumNodes())     // S·(1+P) for cells
	railSw := make([]float64, net.NumNodes()) // inverter switching for inverted rails
	isCell := make([]bool, net.NumNodes())
	isRail := make([]bool, net.NumNodes())
	for ci := range blk.Cells {
		cell := &blk.Cells[ci]
		sw[cell.Node] = prob.DominoSwitching(nodeProbs[cell.Node]) * (1 + cell.Penalty)
		isCell[cell.Node] = true
	}
	for pos, id := range net.Inputs() {
		bi := blk.Phase.Inputs[pos]
		if !bi.Inverted {
			continue
		}
		railSw[id] = prob.BoundaryInputInverterSwitching(inputProbs[bi.InputPos])
		isRail[id] = true
	}

	// Fold every cost term into its gating signature, in canonical
	// order. groupIndex interns signatures; gk accumulates.
	groupIndex := make(map[string]int)
	keyBuf := make([]byte, 2*words*8)
	addTerm := func(sp, sn []uint64, v float64) {
		if v == 0 {
			return
		}
		for w := 0; w < words; w++ {
			binary.LittleEndian.PutUint64(keyBuf[w*8:], sp[w])
			binary.LittleEndian.PutUint64(keyBuf[(words+w)*8:], sn[w])
		}
		if g, ok := groupIndex[string(keyBuf)]; ok {
			t.gk[g] += v
			return
		}
		groupIndex[string(keyBuf)] = len(t.gk)
		t.pos = append(t.pos, sp...)
		t.neg = append(t.neg, sn...)
		t.gk = append(t.gk, v)
	}
	nodeSig := func(node logic.NodeID) ([]uint64, []uint64) {
		return sigPos[int(node)*words : (int(node)+1)*words], sigNeg[int(node)*words : (int(node)+1)*words]
	}

	// 1. Wire loads, gated by the loaded element itself.
	if lib.WireCap != 0 {
		for i := 0; i < net.NumNodes(); i++ {
			id := logic.NodeID(i)
			sp, sn := nodeSig(id)
			if isCell[i] {
				addTerm(sp, sn, sw[i]*lib.WireCap)
			} else if isRail[i] {
				addTerm(sp, sn, railSw[i]*lib.WireCap)
			}
		}
	}
	// 2. Pin loads: consumer c's pins price its fanins, gated by c
	// (c present ⇒ every fanin of c present).
	for ci := range blk.Cells {
		c := blk.Cells[ci].Node
		sp, sn := nodeSig(c)
		for _, f := range net.Fanins(c) {
			if isCell[f] {
				addTerm(sp, sn, sw[f]*lib.InputCap)
			} else if isRail[f] {
				addTerm(sp, sn, railSw[f]*lib.InputCap)
			}
		}
	}
	// 3. Boundary terms, gated by the (output, phase) singleton — which
	// is exactly the selected cone's signature restricted to itself.
	single := make([]uint64, words)
	zero := make([]uint64, words)
	for j, o := range net.Outputs() {
		i := j
		neg := false
		if j >= k {
			i, neg = j-k, true
		}
		for w := range single {
			single[w] = 0
		}
		single[i>>6] = uint64(1) << uint(i&63)
		sp, sn := single, zero
		if neg {
			sp, sn = zero, single
		}
		d := o.Driver
		if isCell[d] {
			addTerm(sp, sn, sw[d]*lib.OutputCap)
		} else if isRail[d] {
			addTerm(sp, sn, railSw[d]*lib.OutputCap)
		}
		if neg {
			addTerm(sp, sn, prob.BoundaryOutputInverterSwitching(nodeProbs[d])*lib.OutputCap)
		}
	}

	t.gl = make([]int32, len(t.gk))
	t.gp = make([]int64, 3*len(t.gk))
	for g, v := range t.gk {
		if v == 0 {
			continue // interning never stores zero constants
		}
		l, p0, p1, p2 := decomposePieces(v)
		t.gl[g] = int32(l)
		t.gp[3*g], t.gp[3*g+1], t.gp[3*g+2] = p0, p1, p2
	}

	t.self = newConeScorer(t)
	return t, nil
}

// addGroup folds +K_g into the accumulator from the precomposed pieces.
func (t *ConeTable) addGroup(acc *exactAcc, g int32) {
	p := t.gp[3*g:]
	acc.addPieces(int(t.gl[g]), p[0], p[1], p[2])
}

// subGroup folds −K_g into the accumulator.
func (t *ConeTable) subGroup(acc *exactAcc, g int32) {
	p := t.gp[3*g:]
	acc.addPieces(int(t.gl[g]), -p[0], -p[1], -p[2])
}

// Exact reports whether the cached probabilities came from the exact
// (BDD) engine — mirrors Report.ExactProbs.
func (t *ConeTable) Exact() bool { return t.exact }

// Outputs returns the number of primary outputs (phase bits) scored.
func (t *ConeTable) Outputs() int { return t.k }

// MappedCells returns the number of domino cells in the mapped union
// block — the synthesis footprint the table was priced from (≈ 2× one
// block's).
func (t *ConeTable) MappedCells() int { return t.numCells }

// Groups returns the number of distinct demand signatures — the per-mask
// arithmetic is O(Groups + k). Private cones yield ≤ 2k groups; sharing
// adds one group per distinct subset of cones demanding common logic.
func (t *ConeTable) Groups() int { return len(t.gk) }

// ScoreAssignment scores one phase assignment against the cached cones.
// It uses the table's embedded scratch and is therefore for sequential
// use; concurrent searches must Fork.
func (t *ConeTable) ScoreAssignment(asg phase.Assignment) (float64, error) {
	return t.self.ScoreAssignment(asg)
}

// Fork returns an independent scorer over the shared immutable table.
// Fork is safe to call concurrently (phase.AssignmentScorer contract).
func (t *ConeTable) Fork() phase.AssignmentScorer { return newConeScorer(t) }

// coneScorer carries one scoring stream's mask buffer and exact
// accumulator. ScoreAssignment never allocates.
type coneScorer struct {
	t       *ConeTable
	maskBuf []uint64
	acc     *exactAcc
}

func newConeScorer(t *ConeTable) *coneScorer {
	return &coneScorer{t: t, maskBuf: make([]uint64, t.words), acc: newExactAcc()}
}

// Fork lets a forked scorer be forked again (it only needs the table).
func (s *coneScorer) Fork() phase.AssignmentScorer { return newConeScorer(s.t) }

// NewState and NewBound delegate to the shared table, so a forked
// scorer still advertises the incremental fast paths
// (phase.StateScorer / phase.BoundScorer).
func (s *coneScorer) NewState() phase.ScoreState { return s.t.NewState() }

// NewBound implements phase.BoundScorer on forked scorers.
func (s *coneScorer) NewBound() phase.PrefixBound { return s.t.NewBound() }

// ScoreAssignment folds the signature-gated constants under the
// assignment's phase mask into an exact accumulator and returns the
// correctly rounded sum. Exact summation makes the score independent of
// fold order, so it is a bit-identical pure function of the assignment —
// shared with the incremental ScoreState, whose flip paths add and
// remove the very same constants — which is the property that keeps
// every sharded search deterministic at any worker count.
func (s *coneScorer) ScoreAssignment(asg phase.Assignment) (float64, error) {
	t := s.t
	if len(asg) != t.k {
		return 0, fmt.Errorf("power: assignment for %d outputs, cone table has %d", len(asg), t.k)
	}
	for w := range s.maskBuf {
		s.maskBuf[w] = 0
	}
	for i, neg := range asg {
		if neg {
			s.maskBuf[i>>6] |= uint64(1) << uint(i&63)
		}
	}
	s.acc.Reset()
	if t.words == 1 {
		m := s.maskBuf[0]
		pos, neg := t.pos, t.neg
		for g := range t.gk {
			if (^m&pos[g])|(m&neg[g]) != 0 {
				t.addGroup(s.acc, int32(g))
			}
		}
		return s.acc.Round(), nil
	}
	W := t.words
	for g := range t.gk {
		base := g * W
		for w := 0; w < W; w++ {
			if (^s.maskBuf[w]&t.pos[base+w])|(s.maskBuf[w]&t.neg[base+w]) != 0 {
				t.addGroup(s.acc, int32(g))
				break
			}
		}
	}
	return s.acc.Round(), nil
}
