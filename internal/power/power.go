// Package power estimates the power of a mapped domino block with the
// paper's model (Section 4.2):
//
//	P = Σ_i S_i · C_i · (1 + P_i)
//
// where S_i is the switching probability of cell i (equal to its signal
// probability for domino gates, Property 2.1), C_i its output load and
// P_i the gate-type penalty (zero in the paper's experiments, so the
// objective degenerates to weighted switching activity). Boundary static
// inverters are accounted with the static models of internal/prob.
package power

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/domino"
	"repro/internal/order"
	"repro/internal/phase"
	"repro/internal/prob"
)

// Method selects the signal-probability engine.
type Method int

// Probability engines.
const (
	// Auto uses Exact up to AutoExactInputLimit block inputs, then
	// Approximate.
	Auto Method = iota
	// Exact computes probabilities on BDDs built with the paper's
	// reverse-topological variable order.
	Exact
	// Approximate uses correlation-free propagation.
	Approximate
	// LimitedDepth uses bounded reconvergence analysis (Costa et al. [6])
	// with Options.Depth and Options.MaxFrontier.
	LimitedDepth
	// MonteCarlo estimates probabilities by bit-parallel random
	// simulation (Options.MCVectors vectors, Options.MCSeed). It builds
	// no BDDs, so it can never trip the BDD node budget — the engine of
	// last resort in the flow's degradation chain. Deterministic given
	// (MCVectors, MCSeed).
	MonteCarlo
)

// AutoExactInputLimit is the input-count threshold above which Auto
// falls back to approximate probabilities.
const AutoExactInputLimit = 24

// Options configures estimation.
type Options struct {
	Method Method
	// Order overrides the BDD variable order for Exact: a permutation of
	// the *original* primary-input variables (nil = the paper's
	// reverse-topological heuristic mapped onto them).
	Order []int
	// Depth and MaxFrontier parameterize LimitedDepth (defaults 4 and
	// 16).
	Depth       int
	MaxFrontier int
	// MCVectors and MCSeed parameterize MonteCarlo (default 2048
	// vectors, seed 0). Both are semantic: they change the estimated
	// probabilities deterministically.
	MCVectors int
	MCSeed    int64
	// Budget is the cancellation/resource token every engine runs
	// under: exact and limited-depth builds honor its BDD node cap and
	// cancellation, MonteCarlo polls cancellation per window. Excluded
	// from JSON so it never fragments content-addressed cache keys.
	Budget *budget.T `json:"-"`
	// Reorder enables in-place dynamic variable reordering (sifting) in
	// the exact engine's BDD manager: builds reorder themselves when
	// live nodes double or cross the budget-fraction point (see
	// bdd.Manager.SetAutoReorder). Reordering is deterministic but
	// semantic — probability summation order changes with the DAG shape
	// — so the flow derives it from Config.BDDReorder (which *is* part
	// of the content-addressed key) and overrides whatever is set here;
	// like Budget it is excluded from JSON.
	Reorder bool `json:"-"`
}

// Report breaks down the estimated power of a block.
type Report struct {
	// Domino is the Σ S·C·(1+P) over domino cells.
	Domino float64
	// InputInverters and OutputInverters cover the boundary static
	// inverters.
	InputInverters  float64
	OutputInverters float64
	// Total is the sum of the three components.
	Total float64
	// PerCell holds each domino cell's contribution, parallel to
	// Block.Cells.
	PerCell []float64
	// NodeProbs holds the signal probability of every Block.Net node.
	NodeProbs []float64
	// ExactProbs reports whether NodeProbs came from the exact engine.
	ExactProbs bool
}

// blockNodeProbs runs the configured probability engine over a mapped
// block's network and reports whether the exact engine was used. It is
// the cone-granular piece of Estimate: every value it returns is a pure
// function of a node's fanin cone (BDDs are canonical per function,
// Approximate and LimitedDepth propagate strictly fanin-local state), so
// a node shared by several output cones carries the same probability in
// any block that contains it — the invariant the cone table's
// precompute-once/score-many decomposition rests on. mgr, when non-nil,
// is reset and reused by the exact engine (see bdd.BuildNetworkLitsIn).
func blockNodeProbs(mgr *bdd.Manager, b *domino.Block, inputProbs []float64, opts Options) ([]float64, bool, error) {
	net := b.Net
	blockProbs := b.Phase.BlockInputProbs(inputProbs)
	if len(blockProbs) != net.NumInputs() {
		return nil, false, fmt.Errorf("power: block input mismatch: %d probs, %d inputs", len(blockProbs), net.NumInputs())
	}
	numVars := len(inputProbs)
	exact := opts.Method == Exact || (opts.Method == Auto && numVars <= AutoExactInputLimit)
	if exact || opts.Method == MonteCarlo {
		// Build over the *original* primary inputs: block input rails
		// carrying a complemented signal become complemented literals of
		// the same variable, so the shared-variable correlation between
		// a signal and its inverted rail is exact (BDDs) or sampled from
		// the same random word (MonteCarlo).
		lits := make([]bdd.InputLit, len(b.Phase.Inputs))
		for pos, bi := range b.Phase.Inputs {
			lits[pos] = bdd.InputLit{Var: bi.InputPos, Neg: bi.Inverted}
		}
		if opts.Method == MonteCarlo {
			nodeProbs, err := prob.MonteCarloLits(net, numVars, lits, inputProbs, opts.MCVectors, opts.MCSeed, opts.Budget)
			if err != nil {
				return nil, false, err
			}
			return nodeProbs, false, nil
		}
		if mgr == nil && (opts.Budget != nil || opts.Reorder) {
			// The exact engine must build under the token (and/or with
			// auto-reorder armed); materialize the manager here so both
			// can be attached.
			mgr = bdd.New(numVars)
		}
		if mgr != nil {
			mgr.SetBudget(opts.Budget)
			mgr.SetAutoReorder(opts.Reorder)
		}
		ord := opts.Order
		if ord == nil {
			ord = mapOrderToVars(order.ReverseTopological(net), lits, numVars)
		}
		nodeProbs, err := prob.ExactLitsIn(mgr, net, numVars, lits, inputProbs, ord)
		if err != nil {
			return nil, false, err
		}
		return nodeProbs, true, nil
	}
	if opts.Method == LimitedDepth {
		depth := opts.Depth
		if depth <= 0 {
			depth = 4
		}
		nodeProbs, err := prob.LimitedDepthBudget(net, blockProbs, depth, opts.MaxFrontier, opts.Budget)
		if err != nil {
			return nil, false, err
		}
		return nodeProbs, false, nil
	}
	return prob.Approximate(net, blockProbs), false, nil
}

// Estimate computes the power report of a mapped block given the original
// primary-input probabilities (indexed by original input position).
func Estimate(b *domino.Block, inputProbs []float64, opts Options) (*Report, error) {
	return estimateIn(nil, b, inputProbs, opts)
}

// estimateIn is Estimate with an optional reusable BDD manager for the
// exact engine.
func estimateIn(mgr *bdd.Manager, b *domino.Block, inputProbs []float64, opts Options) (*Report, error) {
	net := b.Net
	nodeProbs, exact, err := blockNodeProbs(mgr, b, inputProbs, opts)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		PerCell:    make([]float64, len(b.Cells)),
		NodeProbs:  nodeProbs,
		ExactProbs: exact,
	}
	for ci := range b.Cells {
		cell := &b.Cells[ci]
		s := prob.DominoSwitching(nodeProbs[cell.Node])
		p := s * cell.Load * (1 + cell.Penalty)
		rep.PerCell[ci] = p
		rep.Domino += p
	}
	loads := b.NodeLoads()
	for pos, id := range net.Inputs() {
		bi := b.Phase.Inputs[pos]
		if !bi.Inverted {
			continue
		}
		s := prob.BoundaryInputInverterSwitching(inputProbs[bi.InputPos])
		rep.InputInverters += s * loads[id]
	}
	lib := b.Library()
	for i, bo := range b.Phase.Outputs {
		if !bo.Negated {
			continue
		}
		driver := net.Outputs()[i].Driver
		s := prob.BoundaryOutputInverterSwitching(nodeProbs[driver])
		rep.OutputInverters += s * lib.OutputCap
	}
	rep.Total = rep.Domino + rep.InputInverters + rep.OutputInverters
	return rep, nil
}

// mapOrderToVars converts a block-input-position order into an order over
// the shared original-input variables: variables are ranked by the first
// appearance of any of their rails in the input order, and variables with
// no rail in the block are appended.
func mapOrderToVars(inputOrder []int, lits []bdd.InputLit, numVars int) []int {
	seen := make([]bool, numVars)
	out := make([]int, 0, numVars)
	for _, pos := range inputOrder {
		v := lits[pos].Var
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for v := 0; v < numVars; v++ {
		if !seen[v] {
			out = append(out, v)
		}
	}
	return out
}

// Evaluator adapts Estimate into a phase.Evaluator: it maps each
// candidate synthesis with the given library and scores it by estimated
// total power. This is the objective the MinPower loop minimizes.
//
// The returned closure is safe for concurrent use on distinct Results —
// each call maps its own block and builds its own probability state
// (including any BDD manager), sharing only the immutable lib and
// inputProbs — so it may be passed to phase.ExhaustiveParallel or any
// search running with Workers > 1.
func Evaluator(lib domino.Library, inputProbs []float64, opts Options) phase.Evaluator {
	return func(r *phase.Result) (float64, error) {
		b, err := domino.Map(r, lib)
		if err != nil {
			return 0, err
		}
		rep, err := Estimate(b, inputProbs, opts)
		if err != nil {
			return 0, err
		}
		return rep.Total, nil
	}
}

// Estimator is Estimate with retained state: one BDD manager is created
// lazily and recycled (bdd.Manager.Reset) across calls of the exact
// engine, so sequential estimation loops — the MinPower trial loop, the
// naive exhaustive baseline — stop allocating a fresh forest per
// candidate. Unlike the Evaluator closure, an Estimator is NOT safe for
// concurrent use; keep one per goroutine (they share nothing).
type Estimator struct {
	lib        domino.Library
	inputProbs []float64
	opts       Options
	mgr        *bdd.Manager
}

// NewEstimator returns an estimator over a fixed library, input
// probability vector, and engine options.
func NewEstimator(lib domino.Library, inputProbs []float64, opts Options) *Estimator {
	return &Estimator{lib: lib, inputProbs: inputProbs, opts: opts}
}

// Estimate is power.Estimate reusing the estimator's BDD manager.
func (e *Estimator) Estimate(b *domino.Block) (*Report, error) {
	if e.mgr == nil {
		e.mgr = bdd.New(len(e.inputProbs))
	}
	return estimateIn(e.mgr, b, e.inputProbs, e.opts)
}

// Evaluate maps and scores one phase candidate; it is a phase.Evaluator
// method value for sequential searches (MinPower, MinPowerGroups).
func (e *Estimator) Evaluate(r *phase.Result) (float64, error) {
	b, err := domino.Map(r, e.lib)
	if err != nil {
		return 0, err
	}
	rep, err := e.Estimate(b)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}

// SwitchingOnly computes the unweighted total switching of a block (all
// loads and penalties treated as 1) — the Figure 5 metric. It shares the
// probability engine selection with Estimate.
func SwitchingOnly(b *domino.Block, inputProbs []float64, opts Options) (float64, error) {
	rep, err := Estimate(b, inputProbs, opts)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for ci := range b.Cells {
		total += prob.DominoSwitching(rep.NodeProbs[b.Cells[ci].Node])
	}
	for pos := range b.Net.Inputs() {
		bi := b.Phase.Inputs[pos]
		if bi.Inverted {
			total += prob.BoundaryInputInverterSwitching(inputProbs[bi.InputPos])
		}
	}
	for i, bo := range b.Phase.Outputs {
		if bo.Negated {
			total += prob.BoundaryOutputInverterSwitching(rep.NodeProbs[b.Net.Outputs()[i].Driver])
		}
	}
	return total, nil
}

// CellSwitching returns the switching probability of each domino cell,
// parallel to Block.Cells, using the requested engine.
func CellSwitching(b *domino.Block, inputProbs []float64, opts Options) ([]float64, error) {
	rep, err := Estimate(b, inputProbs, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(b.Cells))
	for ci := range b.Cells {
		out[ci] = prob.DominoSwitching(rep.NodeProbs[b.Cells[ci].Node])
	}
	return out, nil
}
