package power

import (
	"math"
	"testing"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/prob"
)

func figure5Network() *logic.Network {
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	f := n.AddOr(n.AddNot(x), n.AddNot(y))
	g := n.AddOr(x, y)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	return n
}

func mapFig5(t testing.TB, asg phase.Assignment) *domino.Block {
	t.Helper()
	r, err := phase.Apply(figure5Network(), asg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSwitchingOnlyMatchesFigure5(t *testing.T) {
	probs := []float64{0.9, 0.9, 0.9, 0.9}
	left := mapFig5(t, phase.Assignment{true, false})
	right := mapFig5(t, phase.Assignment{false, true})
	ls, err := SwitchingOnly(left, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SwitchingOnly(right, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ls, 4.4019) {
		t.Errorf("left total switching = %v, want 4.4019", ls)
	}
	if !almost(rs, 1.1219) {
		t.Errorf("right total switching = %v, want 1.1219", rs)
	}
}

func TestEstimateComponents(t *testing.T) {
	probs := []float64{0.9, 0.9, 0.9, 0.9}
	right := mapFig5(t, phase.Assignment{false, true})
	rep, err := Estimate(right, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactProbs {
		t.Error("expected exact probabilities")
	}
	// Block: A=āb̄ (p=.01), B=c̄+d̄ (p=.19) each feeding 2 cells (load 2);
	// f=A+B (p=.1981), ḡ=A·B (p=.0019) each driving OutputCap=1.
	wantDomino := 0.01*2 + 0.19*2 + 0.1981*1 + 0.0019*1
	if !almost(rep.Domino, wantDomino) {
		t.Errorf("Domino = %v, want %v", rep.Domino, wantDomino)
	}
	// Four input inverters each switching .18, each driving one cell pin
	// (load 1).
	if !almost(rep.InputInverters, 4*0.18*1) {
		t.Errorf("InputInverters = %v, want %v", rep.InputInverters, 4*0.18)
	}
	// Output inverter on ḡ: switching .0019 × OutputCap 1.
	if !almost(rep.OutputInverters, 0.0019) {
		t.Errorf("OutputInverters = %v, want 0.0019", rep.OutputInverters)
	}
	if !almost(rep.Total, rep.Domino+rep.InputInverters+rep.OutputInverters) {
		t.Error("Total != sum of components")
	}
	if len(rep.PerCell) != right.DominoCellCount() {
		t.Errorf("PerCell length %d", len(rep.PerCell))
	}
	sum := 0.0
	for _, p := range rep.PerCell {
		sum += p
	}
	if !almost(sum, rep.Domino) {
		t.Error("PerCell does not sum to Domino")
	}
}

func TestApproximateVsExactOnTreeBlock(t *testing.T) {
	// Tree-structured blocks have no reconvergence, so both engines must
	// agree exactly.
	n := logic.New("tree")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	n.MarkOutput("f", n.AddOr(n.AddAnd(a, b), n.AddAnd(c, d)))
	r, err := phase.Apply(n, phase.AllPositive(1))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	probs := []float64{0.3, 0.6, 0.2, 0.8}
	ex, err := Estimate(blk, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Estimate(blk, probs, Options{Method: Approximate})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ex.Total, ap.Total) {
		t.Errorf("exact %v != approximate %v on a tree", ex.Total, ap.Total)
	}
	if ap.ExactProbs {
		t.Error("approximate report claims exact probs")
	}
}

func TestAutoMethodSelection(t *testing.T) {
	probs := []float64{0.9, 0.9, 0.9, 0.9}
	blk := mapFig5(t, phase.Assignment{false, true})
	rep, err := Estimate(blk, probs, Options{Method: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactProbs {
		t.Error("Auto should pick exact for 4 inputs")
	}
	// A wide interface must fall back to approximate.
	n := logic.New("wide")
	var ids []logic.NodeID
	for i := 0; i < AutoExactInputLimit+1; i++ {
		ids = append(ids, n.AddInput(wname(i)))
	}
	n.MarkOutput("f", n.AddOr(ids...))
	r, err := phase.Apply(n, phase.AllPositive(1))
	if err != nil {
		t.Fatal(err)
	}
	wblk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	wrep, err := Estimate(wblk, prob.Uniform(n, 0.5), Options{Method: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if wrep.ExactProbs {
		t.Error("Auto should fall back to approximate beyond the input limit")
	}
}

func TestLimitedDepthMethod(t *testing.T) {
	// On the tree block all three engines agree; LimitedDepth must land
	// between Approximate and Exact in general and exactly here.
	n := logic.New("tree")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	n.MarkOutput("f", n.AddOr(n.AddAnd(a, b), n.AddAnd(c, d)))
	r, err := phase.Apply(n, phase.AllPositive(1))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	probs := []float64{0.3, 0.6, 0.2, 0.8}
	ex, err := Estimate(blk, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := Estimate(blk, probs, Options{Method: LimitedDepth, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ex.Total, ld.Total) {
		t.Errorf("limited depth %v != exact %v on a tree", ld.Total, ex.Total)
	}
	if ld.ExactProbs {
		t.Error("limited-depth report claims exact probs")
	}
}

func TestEvaluatorAdapterMatchesEstimate(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	lib := domino.DefaultLibrary()
	eval := Evaluator(lib, probs, Options{Method: Exact})
	r, err := phase.Apply(n, phase.Assignment{false, true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval(r)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(r, lib)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Estimate(blk, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, rep.Total) {
		t.Errorf("Evaluator = %v, Estimate = %v", got, rep.Total)
	}
}

func TestAndPenaltyRaisesPower(t *testing.T) {
	n := logic.New("pen")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	n.MarkOutput("f", n.AddAnd(a, b, c, d))
	r, err := phase.Apply(n, phase.AllPositive(1))
	if err != nil {
		t.Fatal(err)
	}
	probs := prob.Uniform(n, 0.9)
	flat := domino.DefaultLibrary()
	penal := flat
	penal.AndPenalty = 0.5
	b1, err := domino.Map(r, flat)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := domino.Map(r, penal)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Estimate(b1, probs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(b2, probs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Total <= r1.Total {
		t.Errorf("AND penalty did not raise power: %v vs %v", r2.Total, r1.Total)
	}
}

func TestCellSwitching(t *testing.T) {
	probs := []float64{0.9, 0.9, 0.9, 0.9}
	blk := mapFig5(t, phase.Assignment{true, false})
	sw, err := CellSwitching(blk, probs, Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	// Cells implement X=a+b (.99), Y=cd (.81), X·Y (.8019), X+Y (.9981).
	want := map[float64]bool{0.99: true, 0.81: true, 0.8019: true, 0.9981: true}
	for _, s := range sw {
		found := false
		for w := range want {
			if almost(s, w) {
				found = true
				delete(want, w)
				break
			}
		}
		if !found {
			t.Errorf("unexpected cell switching %v", s)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing cell switchings: %v", want)
	}
}

func wname(i int) string {
	return "w" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}
