// Incremental cone-table scoring.
//
// The cone table prices an assignment as Σ K_g over active signature
// groups, where group g is active iff any demanding cone is selected:
// (~mask ∧ pos_g) ∨ (mask ∧ neg_g) ≠ 0. Flipping one phase bit can only
// change the activity of groups whose signature mentions that bit, so a
// ScoreState keeps, per group, the *count* of currently selected
// demanding (output, phase) pairs and, per bit, the list of groups whose
// pos/neg signature contains the bit. Flip(bit) then walks just those
// lists — O(groups touching bit) — adjusting counts and adding/removing
// K_g from an exact accumulator whenever a count crosses zero. Because
// the accumulator is exact and order-independent (see exactsum.go), the
// rounded score after any flip path equals ScoreAssignment of the
// reached assignment bit-for-bit — the incremental contract every
// search strategy's determinism rests on.
//
// The BoundState extends the same per-bit index to branch-and-bound:
// bits are *decided* (not flipped) in descending bit order, and the
// accumulator tracks an admissible lower bound — forced-active groups
// plus the negative-constant slack of still-undetermined ones — that
// becomes the exact score at full depth.
package power

import (
	"fmt"
	"math/bits"

	"repro/internal/phase"
)

// flipIndex is the per-bit CSR index over signature groups: for every
// phase bit, which groups mention it on the positive (demanded when the
// output keeps positive phase) and negative side. Built once per table,
// in canonical group order, and shared immutably by all states.
//
// Groups whose pos and neg signatures share a bit are active under
// EVERY mask (whichever phase that output takes, one of its cones
// demands the element — shared input rails are the archetype): they are
// excluded from the per-bit lists entirely and contribute a constant.
// touch[g] == 0 marks such a group.
type flipIndex struct {
	posOff, negOff []int32
	pos, neg       []int32
	// touch[g] is the total number of (bit, side) occurrences of group
	// g in the lists — the BoundState's initial undecided count — and 0
	// for always-active (constant) groups.
	touch []int32
}

// constantGroup reports whether group g is active under every mask.
func constantGroup(t *ConeTable, g int) bool {
	base := g * t.words
	for w := 0; w < t.words; w++ {
		if t.pos[base+w]&t.neg[base+w] != 0 {
			return true
		}
	}
	return false
}

func buildFlipIndex(t *ConeTable) *flipIndex {
	k, words, groups := t.k, t.words, len(t.gk)
	idx := &flipIndex{
		posOff: make([]int32, k+1),
		negOff: make([]int32, k+1),
		touch:  make([]int32, groups),
	}
	isConst := make([]bool, groups)
	for g := 0; g < groups; g++ {
		isConst[g] = constantGroup(t, g)
	}
	count := func(sig []uint64, off []int32) {
		for g := 0; g < groups; g++ {
			if isConst[g] {
				continue
			}
			base := g * words
			for w := 0; w < words; w++ {
				v := sig[base+w]
				for v != 0 {
					b := w<<6 + bits.TrailingZeros64(v)
					v &= v - 1
					off[b+1]++
					idx.touch[g]++
				}
			}
		}
	}
	count(t.pos, idx.posOff)
	count(t.neg, idx.negOff)
	for b := 0; b < k; b++ {
		idx.posOff[b+1] += idx.posOff[b]
		idx.negOff[b+1] += idx.negOff[b]
	}
	idx.pos = make([]int32, idx.posOff[k])
	idx.neg = make([]int32, idx.negOff[k])
	fillPos := append([]int32(nil), idx.posOff[:k]...)
	fillNeg := append([]int32(nil), idx.negOff[:k]...)
	fill := func(sig []uint64, list []int32, next []int32) {
		for g := 0; g < groups; g++ {
			if isConst[g] {
				continue
			}
			base := g * words
			for w := 0; w < words; w++ {
				v := sig[base+w]
				for v != 0 {
					b := w<<6 + bits.TrailingZeros64(v)
					v &= v - 1
					list[next[b]] = int32(g)
					next[b]++
				}
			}
		}
	}
	fill(t.pos, idx.pos, fillPos)
	fill(t.neg, idx.neg, fillNeg)
	return idx
}

// index returns the lazily built shared flip index.
func (t *ConeTable) index() *flipIndex {
	t.idxOnce.Do(func() { t.idx = buildFlipIndex(t) })
	return t.idx
}

// ScoreState is the cone table's incremental scorer: a mutable phase
// assignment whose Flip reprices only the signature groups touching the
// flipped bit, with the running total held in an exact accumulator so
// Score always equals ScoreAssignment of the current assignment
// bit-for-bit. Not safe for concurrent use; mint one per goroutine with
// NewState.
type ScoreState struct {
	t       *ConeTable
	idx     *flipIndex
	cnt     []int32 // selected demanding pairs per group
	acc     *exactAcc
	asg     []bool
	maskBuf []uint64
	score   float64
}

// NewState mints an independent incremental scorer over the shared
// immutable table (the phase.StateScorer contract; safe to call
// concurrently). The state starts empty — call Set before Flip.
func (t *ConeTable) NewState() phase.ScoreState {
	return &ScoreState{
		t:       t,
		idx:     t.index(),
		cnt:     make([]int32, len(t.gk)),
		acc:     newExactAcc(),
		asg:     make([]bool, t.k),
		maskBuf: make([]uint64, t.words),
	}
}

// Set loads a full assignment and returns its score (= ScoreAssignment,
// bit-for-bit).
func (s *ScoreState) Set(asg phase.Assignment) (float64, error) {
	t := s.t
	if len(asg) != t.k {
		return 0, fmt.Errorf("power: assignment for %d outputs, cone table has %d", len(asg), t.k)
	}
	copy(s.asg, asg)
	for w := range s.maskBuf {
		s.maskBuf[w] = 0
	}
	for i, neg := range asg {
		if neg {
			s.maskBuf[i>>6] |= uint64(1) << uint(i&63)
		}
	}
	s.acc.Reset()
	W := t.words
	for g := range t.gk {
		base := g * W
		c := int32(0)
		for w := 0; w < W; w++ {
			c += int32(bits.OnesCount64(^s.maskBuf[w]&t.pos[base+w]) + bits.OnesCount64(s.maskBuf[w]&t.neg[base+w]))
		}
		s.cnt[g] = c
		if c > 0 {
			t.addGroup(s.acc, int32(g))
		}
	}
	s.score = s.acc.Round()
	return s.score, nil
}

// Flip toggles output bit's phase and returns the updated score. Cost is
// O(groups whose signature mentions bit): each touched group's demand
// count moves by one, and only zero crossings touch the accumulator.
func (s *ScoreState) Flip(bit int) float64 {
	idx, cnt, t := s.idx, s.cnt, s.t
	nowNeg := !s.asg[bit]
	s.asg[bit] = nowNeg
	// Positive-side demands are selected while the output keeps positive
	// phase: turning negative deselects them (and vice versa); the
	// negative side mirrors.
	if nowNeg {
		for _, g := range idx.pos[idx.posOff[bit]:idx.posOff[bit+1]] {
			if cnt[g]--; cnt[g] == 0 {
				t.subGroup(s.acc, g)
			}
		}
		for _, g := range idx.neg[idx.negOff[bit]:idx.negOff[bit+1]] {
			if cnt[g]++; cnt[g] == 1 {
				t.addGroup(s.acc, g)
			}
		}
	} else {
		for _, g := range idx.pos[idx.posOff[bit]:idx.posOff[bit+1]] {
			if cnt[g]++; cnt[g] == 1 {
				t.addGroup(s.acc, g)
			}
		}
		for _, g := range idx.neg[idx.negOff[bit]:idx.negOff[bit+1]] {
			if cnt[g]--; cnt[g] == 0 {
				t.subGroup(s.acc, g)
			}
		}
	}
	s.score = s.acc.Round()
	return s.score
}

// Score returns the current total.
func (s *ScoreState) Score() float64 { return s.score }

// Err implements phase.ScoreState; the cone-table state cannot fail
// after a successful Set.
func (s *ScoreState) Err() error { return nil }

// BoundState is the cone table's admissible prefix bound for
// branch-and-bound (phase.PrefixBound). Bits are decided in descending
// bit order; the bound is
//
//	Σ K_g over groups forced active by decided bits
//	  + Σ min(K_g, 0) over groups still undetermined
//
// which every completion's exact score dominates (an undetermined group
// contributes either 0 or K_g ≥ min(K_g, 0); a forced group contributes
// exactly K_g; a dead group 0). Both sums live in one exact
// accumulator — activation of a non-negative group adds K_g, death of a
// negative group removes its slack — so the bound is exact arithmetic
// and, at full depth, IS the assignment's score bit-for-bit. Rounding
// is monotone, so the rounded bound never exceeds any completion's
// rounded score: pruning on it can never cut the true winner.
type BoundState struct {
	t         *ConeTable
	idx       *flipIndex
	act       []int32 // decided occurrences that activate the group
	remaining []int32 // undecided (bit, side) occurrences
	acc       *exactAcc
	negs      []bool // decided values, for Undo
	depth     int
}

// NewBound mints an independent prefix-bound state (the
// phase.BoundScorer contract; safe to call concurrently).
func (t *ConeTable) NewBound() phase.PrefixBound {
	idx := t.index()
	b := &BoundState{
		t:         t,
		idx:       idx,
		act:       make([]int32, len(t.gk)),
		remaining: append([]int32(nil), idx.touch...),
		acc:       newExactAcc(),
		negs:      make([]bool, t.k),
	}
	for g, v := range t.gk {
		if idx.touch[g] == 0 {
			// Always-active group: its constant joins the bound exactly.
			b.acc.Add(v)
		} else if v < 0 {
			b.acc.Add(v)
		}
	}
	return b
}

// Decide fixes the next undecided bit (descending bit order: bit k−1
// first) to the given phase and returns the admissible lower bound over
// all completions.
func (b *BoundState) Decide(neg bool) float64 {
	bit := b.t.k - 1 - b.depth
	idx, gk := b.idx, b.t.gk
	actList := idx.pos[idx.posOff[bit]:idx.posOff[bit+1]]
	othList := idx.neg[idx.negOff[bit]:idx.negOff[bit+1]]
	if neg {
		actList, othList = othList, actList
	}
	for _, g := range actList {
		b.remaining[g]--
		if b.act[g]++; b.act[g] == 1 && gk[g] >= 0 {
			b.t.addGroup(b.acc, g)
		}
	}
	for _, g := range othList {
		if b.remaining[g]--; b.remaining[g] == 0 && b.act[g] == 0 && gk[g] < 0 {
			// Dead group: it can no longer be activated, so its negative
			// slack leaves the bound.
			b.t.subGroup(b.acc, g)
		}
	}
	b.negs[b.depth] = neg
	b.depth++
	return b.acc.Round()
}

// Undo reverts the most recent Decide.
func (b *BoundState) Undo() {
	b.depth--
	neg := b.negs[b.depth]
	bit := b.t.k - 1 - b.depth
	idx, gk := b.idx, b.t.gk
	actList := idx.pos[idx.posOff[bit]:idx.posOff[bit+1]]
	othList := idx.neg[idx.negOff[bit]:idx.negOff[bit+1]]
	if neg {
		actList, othList = othList, actList
	}
	// Reverse of Decide's operation order.
	for _, g := range othList {
		if b.remaining[g] == 0 && b.act[g] == 0 && gk[g] < 0 {
			b.t.addGroup(b.acc, g)
		}
		b.remaining[g]++
	}
	for _, g := range actList {
		b.remaining[g]++
		if b.act[g]--; b.act[g] == 0 && gk[g] >= 0 {
			b.t.subGroup(b.acc, g)
		}
	}
}
