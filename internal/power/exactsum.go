// Exact float64 accumulation.
//
// The incremental score state updates a running total by adding and
// removing signature-group constants in whatever order a search flips
// phase bits, yet must reproduce ScoreAssignment's full fold bit-for-bit
// (that equality is what makes every strategy's winner a pure function
// of the assignment, independent of flip path, shard geometry, or worker
// count). Ordinary float64 addition is not associative, so a running
// float total cannot deliver that. exactAcc instead keeps the sum as an
// exact fixed-point integer — a "long accumulator" over 32-bit limbs
// spanning the entire float64 exponent range — in which adding or
// removing any finite float64 is exact and therefore order-independent.
// Round() returns the correctly rounded (nearest-even) float64 of the
// exact sum, so two states holding the same multiset of terms round to
// the identical float no matter how they got there.
package power

import (
	"fmt"
	"math"
	"math/bits"
)

const (
	// accLimbs × 32 bits must cover 2^-1074 (smallest subnormal LSB)
	// through 2^1024·2^29 (largest magnitude times the carry headroom
	// accRenormEvery allows): bias 1088 + 1024 + 29 < 70·32 = 2240.
	accLimbs = 70
	// accBias is the bit position of 2^0 inside the accumulator: limb i
	// bit b holds weight 2^(32i + b − accBias). A multiple of 32.
	accBias = 1088
	// accRenormEvery bounds how many raw adds may pile into one limb
	// before carries are propagated; each add contributes < 2^32 per
	// limb, so 2^29 adds stay well inside int64.
	accRenormEvery = 1 << 29
)

// exactAcc is an exact signed fixed-point accumulator for float64 terms.
// The zero value is ready to use (empty window, value 0). It is not safe
// for concurrent use.
type exactAcc struct {
	limb [accLimbs]int64
	// [lo, hi] is the window of possibly-nonzero limbs; lo > hi means
	// the value is exactly zero. Keeping the window tight is what makes
	// Round O(window) instead of O(accLimbs) — score terms share a
	// narrow exponent band, so the window is a handful of limbs.
	lo, hi int
	adds   int
}

// newExactAcc returns an empty accumulator.
func newExactAcc() *exactAcc { return &exactAcc{lo: accLimbs, hi: -1} }

// Reset empties the accumulator (value 0) without releasing storage.
func (a *exactAcc) Reset() {
	for i := a.lo; i <= a.hi; i++ {
		a.limb[i] = 0
	}
	a.lo, a.hi = accLimbs, -1
	a.adds = 0
}

// Add adds x (±) to the exact sum. x must be finite.
func (a *exactAcc) Add(x float64) { a.add(x, 1) }

// Sub subtracts x from the exact sum. x must be finite.
func (a *exactAcc) Sub(x float64) { a.add(x, -1) }

func (a *exactAcc) add(x float64, sign int64) {
	if x == 0 {
		return
	}
	l, p0, p1, p2 := decomposePieces(x)
	a.addPieces(l, sign*p0, sign*p1, sign*p2)
}

// decomposePieces splits a finite nonzero float64 into its signed
// accumulator limb pieces: x = (p0 + p1·2^32 + p2·2^64) · 2^(32l − accBias).
// States precompose their constants once so the hot path skips this.
func decomposePieces(x float64) (l int, p0, p1, p2 int64) {
	bits := math.Float64bits(x)
	sign := int64(1)
	if bits&(1<<63) != 0 {
		sign = -1
	}
	exp := int(bits >> 52 & 0x7ff)
	mant := bits & (1<<52 - 1)
	switch exp {
	case 0x7ff:
		panic(fmt.Sprintf("power: exactAcc: non-finite term %v", x))
	case 0:
		exp = 1 // subnormal: same LSB weight, no implicit bit
	default:
		mant |= 1 << 52
	}
	// Value = mant · 2^(exp−1075); LSB bit position inside the
	// accumulator:
	p := exp - 1075 + accBias
	l = p >> 5
	off := uint(p & 31)
	wlo := mant << off
	whi := mant >> (64 - off) // off==0 → shift by 64 → 0 (Go semantics)
	return l, sign * int64(wlo&0xffffffff), sign * int64(wlo>>32), sign * int64(whi)
}

// addPieces folds one decomposed term (possibly negated as a whole)
// into limbs l, l+1, l+2.
func (a *exactAcc) addPieces(l int, p0, p1, p2 int64) {
	a.limb[l] += p0
	a.limb[l+1] += p1
	a.limb[l+2] += p2
	if l < a.lo {
		a.lo = l
	}
	if l+2 > a.hi {
		a.hi = l + 2
	}
	if a.adds++; a.adds >= accRenormEvery {
		a.renorm()
	}
}

// renorm propagates carries so every limb in the window lies in
// [0, 2^32) — except the top accumulator limb, which stays signed and
// therefore carries the overall sign. It then retightens the window.
func (a *exactAcc) renorm() {
	var carry int64
	hi := a.hi
	for i := a.lo; i < accLimbs-1; i++ {
		if i > hi && carry == 0 {
			break
		}
		t := a.limb[i] + carry
		a.limb[i] = t & 0xffffffff
		carry = t >> 32
		if i > hi && a.limb[i] != 0 {
			hi = i
		}
	}
	if carry != 0 {
		a.limb[accLimbs-1] += carry
		hi = accLimbs - 1
	}
	// Retighten: masking and carries may have zeroed boundary limbs.
	lo := a.lo
	for lo <= hi && a.limb[lo] == 0 {
		lo++
	}
	for hi >= lo && a.limb[hi] == 0 {
		hi--
	}
	if lo > hi {
		lo, hi = accLimbs, -1
	}
	a.lo, a.hi = lo, hi
	a.adds = 0
}

// Round returns the exact sum correctly rounded to the nearest float64
// (ties to even). The receiver's value is unchanged (it is renormalized
// in place, which preserves it).
func (a *exactAcc) Round() float64 {
	a.renorm()
	if a.hi < 0 {
		return 0
	}
	neg := a.limb[a.hi] < 0
	if neg {
		// Negate in place, renormalize back to canonical non-negative
		// limbs, round the magnitude, and restore the receiver.
		a.negate()
		m := a.roundMagnitude()
		a.negate()
		return -m
	}
	return a.roundMagnitude()
}

func (a *exactAcc) negate() {
	for i := a.lo; i <= a.hi; i++ {
		a.limb[i] = -a.limb[i]
	}
	a.renorm()
}

// limbAt reads a canonical limb, padding the window with zeros.
func (a *exactAcc) limbAt(i int) uint64 {
	if i < a.lo || i < 0 {
		return 0
	}
	return uint64(a.limb[i])
}

// roundMagnitude rounds the (canonical, non-negative) limbs to float64.
// A float64 significand plus guard spans at most 86 bits, so the top
// four limbs (a 128-bit window anchored at the highest set bit) hold
// the significand, guard, and most of the sticky; lower limbs only
// contribute to sticky.
func (a *exactAcc) roundMagnitude() float64 {
	hi := a.hi
	if hi < 0 {
		return 0
	}
	A := uint64(a.limb[hi])<<32 | a.limbAt(hi-1)
	B := a.limbAt(hi-2)<<32 | a.limbAt(hi-3)
	// AB is the 128-bit window A·2^64 + B; its bit 0 sits at global bit
	// (hi−3)·32 (weight 2^((hi−3)·32 − accBias)).
	base := (hi - 3) * 32
	msb := base + 64 + bits.Len64(A) - 1
	// The significand's LSB sits 52 below the MSB, but never below the
	// smallest subnormal weight (bit accBias−1074): stopping there keeps
	// subnormal results single-rounded.
	lsb := msb - 52
	if min := accBias - 1074; lsb < min {
		lsb = min
	}
	s := uint(lsb - base) // LSB's position inside AB; 12 ≤ s ≤ 127
	var m uint64
	var guard, sticky bool
	if s >= 64 {
		m = A >> (s - 64)
		if s == 64 {
			guard = B>>63 != 0
			sticky = B&(1<<63-1) != 0
		} else {
			guard = A>>(s-65)&1 != 0
			sticky = A&(1<<(s-65)-1) != 0 || B != 0
		}
	} else {
		m = A<<(64-s) | B>>s
		guard = B>>(s-1)&1 != 0
		sticky = B&(1<<(s-1)-1) != 0
	}
	if guard && !sticky {
		for i := a.lo; i <= hi-4; i++ {
			if a.limb[i] != 0 {
				sticky = true
				break
			}
		}
	}
	if guard && (sticky || m&1 == 1) {
		m++
	}
	e := lsb - accBias
	// Direct float assembly for the common normal case; Ldexp covers
	// subnormal, overflow, and the rounded-up-to-2^53 edge.
	if n := bits.Len64(m); n > 0 && n <= 53 {
		if be := e + n - 1; be >= -1022 && be <= 1023 {
			frac := m << uint(53-n)
			return math.Float64frombits(uint64(be+1023)<<52 | frac&(1<<52-1))
		}
	}
	return math.Ldexp(float64(m), e)
}
