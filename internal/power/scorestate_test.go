package power_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
)

// stateCases is the incremental-contract case matrix: every probability
// engine, shared/private/inverted-rail cones, and a penalized
// fractional-cap library — the same surfaces the cone-table exactness
// test covers.
func stateCases() []struct {
	name string
	net  *logic.Network
	lib  domino.Library
	opts power.Options
} {
	type tc = struct {
		name string
		net  *logic.Network
		lib  domino.Library
		opts power.Options
	}
	var cases []tc
	for _, m := range []struct {
		name string
		opts power.Options
	}{
		{"auto", power.Options{}},
		{"approx", power.Options{Method: power.Approximate}},
		{"depth", power.Options{Method: power.LimitedDepth, Depth: 3}},
	} {
		cases = append(cases,
			tc{"shared/" + m.name, sharedConeNet(), domino.DefaultLibrary(), m.opts},
			tc{"rails/" + m.name, invertedRailNet(), domino.DefaultLibrary(), m.opts},
			tc{"private/" + m.name, privateConesNet(), domino.DefaultLibrary(), m.opts},
			tc{"shared/fancy/" + m.name, sharedConeNet(), fancyLibrary(), m.opts},
		)
	}
	for _, p := range []gen.Params{
		{Name: "st6", Inputs: 10, Outputs: 6, Gates: 70, Seed: 101, OrProb: 0.6},
		{Name: "st9", Inputs: 12, Outputs: 9, Gates: 100, Seed: 103, OrProb: 0.45},
	} {
		net := gen.Generate(p).Optimize()
		cases = append(cases,
			tc{p.Name + "/auto", net, domino.DefaultLibrary(), power.Options{}},
			tc{p.Name + "/fancy/approx", net, fancyLibrary(), power.Options{Method: power.Approximate}})
	}
	return cases
}

// TestScoreStateFlipMatchesScoreAssignment is the incremental contract:
// after ANY sequence of flips (and mid-sequence Sets), the state's score
// equals ScoreAssignment of the reached assignment bit-for-bit — not
// within a tolerance. This is what lets every strategy treat flip-path
// scores as pure functions of the assignment.
func TestScoreStateFlipMatchesScoreAssignment(t *testing.T) {
	for _, c := range stateCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			probs := testProbs(c.net)
			table, err := power.NewConeTable(c.net, c.lib, probs, c.opts)
			if err != nil {
				t.Fatalf("NewConeTable: %v", err)
			}
			k := c.net.NumOutputs()
			rng := rand.New(rand.NewSource(int64(k) * 7919))
			st := table.NewState()
			asg := make(phase.Assignment, k)
			if _, err := st.Set(asg); err != nil {
				t.Fatalf("Set: %v", err)
			}
			for step := 0; step < 600; step++ {
				var got float64
				if step%97 == 42 {
					// Mid-sequence Set to a random assignment.
					for i := range asg {
						asg[i] = rng.Intn(2) == 1
					}
					got, err = st.Set(asg)
					if err != nil {
						t.Fatalf("step %d: Set: %v", step, err)
					}
				} else {
					bit := rng.Intn(k)
					asg[bit] = !asg[bit]
					got = st.Flip(bit)
				}
				want, err := table.ScoreAssignment(asg)
				if err != nil {
					t.Fatalf("step %d: ScoreAssignment: %v", step, err)
				}
				if got != want {
					t.Fatalf("step %d (%s): state score %v != ScoreAssignment %v (bit-for-bit contract)",
						step, asg, got, want)
				}
				if st.Score() != got {
					t.Fatalf("step %d: Score() %v != last flip %v", step, st.Score(), got)
				}
			}
		})
	}
}

// TestScoreStateIndependence pins that states minted from one table
// (including via forked scorers) do not interfere.
func TestScoreStateIndependence(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "ind", Inputs: 10, Outputs: 6, Gates: 60, Seed: 7, OrProb: 0.5}).Optimize()
	probs := testProbs(net)
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fork, ok := table.Fork().(phase.StateScorer)
	if !ok {
		t.Fatal("forked cone scorer does not advertise StateScorer")
	}
	if _, ok := table.Fork().(phase.BoundScorer); !ok {
		t.Fatal("forked cone scorer does not advertise BoundScorer")
	}
	s1, s2 := table.NewState(), fork.NewState()
	k := net.NumOutputs()
	a1, a2 := make(phase.Assignment, k), make(phase.Assignment, k)
	if _, err := s1.Set(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Set(a2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 200; step++ {
		bit := rng.Intn(k)
		if step%2 == 0 {
			a1[bit] = !a1[bit]
			s1.Flip(bit)
		} else {
			a2[bit] = !a2[bit]
			s2.Flip(bit)
		}
		w1, _ := table.ScoreAssignment(a1)
		w2, _ := table.ScoreAssignment(a2)
		if s1.Score() != w1 || s2.Score() != w2 {
			t.Fatalf("step %d: interleaved states drifted: (%v,%v) != (%v,%v)",
				step, s1.Score(), s2.Score(), w1, w2)
		}
	}
}

// TestScoreStateMultiWord covers the >64-output (multi-word signature)
// path with a 70-output network.
func TestScoreStateMultiWord(t *testing.T) {
	n := logic.New("wide70")
	ins := make([]logic.NodeID, 12)
	for i := range ins {
		ins[i] = n.AddInput(fmt.Sprintf("i%02d", i))
	}
	rng := rand.New(rand.NewSource(11))
	for o := 0; o < 70; o++ {
		a, b := ins[rng.Intn(len(ins))], ins[rng.Intn(len(ins))]
		g := n.AddOr(a, n.AddNot(b))
		if o%3 == 0 {
			g = n.AddAnd(g, ins[rng.Intn(len(ins))])
		}
		n.MarkOutput(fmt.Sprintf("o%02d", o), g)
	}
	net := n.Optimize()
	k := net.NumOutputs()
	if k <= 64 {
		t.Fatalf("twin has %d outputs, want > 64", k)
	}
	probs := testProbs(net)
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{Method: power.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	st := table.NewState()
	asg := make(phase.Assignment, k)
	if _, err := st.Set(asg); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 400; step++ {
		bit := rng.Intn(k)
		asg[bit] = !asg[bit]
		got := st.Flip(bit)
		want, err := table.ScoreAssignment(asg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("step %d bit %d: %v != %v", step, bit, got, want)
		}
	}
}

// TestBoundStateAdmissibleAndExact drives random Decide/Undo walks: the
// bound at any prefix must not exceed the score of any random
// completion of that prefix, must be reproducible after undo/redo, and
// at full depth must equal ScoreAssignment bit-for-bit.
func TestBoundStateAdmissibleAndExact(t *testing.T) {
	for _, c := range stateCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			probs := testProbs(c.net)
			table, err := power.NewConeTable(c.net, c.lib, probs, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			k := c.net.NumOutputs()
			rng := rand.New(rand.NewSource(int64(k) + 1))
			pb := table.NewBound()
			asg := make(phase.Assignment, k)
			for trial := 0; trial < 30; trial++ {
				depth := rng.Intn(k + 1)
				bounds := make([]float64, 0, depth)
				for d := 0; d < depth; d++ {
					neg := rng.Intn(2) == 1
					asg[k-1-d] = neg
					bounds = append(bounds, pb.Decide(neg))
				}
				// Admissible: no completion scores below the bound.
				if depth > 0 {
					bound := bounds[depth-1]
					for completion := 0; completion < 20; completion++ {
						for i := 0; i < k-depth; i++ {
							asg[i] = rng.Intn(2) == 1
						}
						score, err := table.ScoreAssignment(asg)
						if err != nil {
							t.Fatal(err)
						}
						if score < bound {
							t.Fatalf("trial %d: completion %s scores %v below bound %v",
								trial, asg, score, bound)
						}
					}
				}
				// Extend to full depth: the bound becomes the exact score.
				for d := depth; d < k; d++ {
					neg := rng.Intn(2) == 1
					asg[k-1-d] = neg
					bounds = append(bounds, pb.Decide(neg))
				}
				want, err := table.ScoreAssignment(asg)
				if err != nil {
					t.Fatal(err)
				}
				if got := bounds[k-1]; got != want {
					t.Fatalf("trial %d: full-depth bound %v != ScoreAssignment %v", trial, got, want)
				}
				// Bounds are monotone nondecreasing along the prefix when
				// no negative constants exist (default libraries).
				for d := 1; d < k; d++ {
					if bounds[d] < bounds[d-1]-1e-12 && c.lib.AndPenalty >= 0 {
						t.Fatalf("trial %d: bound regressed %v -> %v at depth %d",
							trial, bounds[d-1], bounds[d], d)
					}
				}
				// Undo everything; redoing the same walk must reproduce the
				// same bounds (state fully restored).
				for d := 0; d < k; d++ {
					pb.Undo()
				}
				for d := 0; d < k; d++ {
					if got := pb.Decide(asg[k-1-d]); got != bounds[d] {
						t.Fatalf("trial %d: redo bound at depth %d: %v != %v", trial, d, got, bounds[d])
					}
				}
				for d := 0; d < k; d++ {
					pb.Undo()
				}
			}
		})
	}
}
