package power_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
)

// relClose reports |a-b| within tol relative to their magnitude. Scores
// computed from cached cone terms reproduce the naive estimate term for
// term, but float summation order (and, for the exact engine, the BDD
// variable order the per-mask block derives) differs, so equality is up
// to rounding.
func relClose(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// sharedConeNet is the canonical shared-logic trap: both outputs see H
// (and through it G), so a naive "sum of independently synthesized
// cones" would double-count G's load pin from the shared H — the block
// builds H once when the phases agree. The cone table must reproduce the
// real block's sharing, not the duplicated sum.
func sharedConeNet() *logic.Network {
	n := logic.New("shared")
	a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("c")
	d, e := n.AddInput("d"), n.AddInput("e")
	g := n.AddAnd(a, b)
	h := n.AddAnd(g, c)
	n.MarkOutput("o1", n.AddOr(h, d))
	n.MarkOutput("o2", n.AddAnd(h, e))
	return n
}

// invertedRailNet forces inverted input rails and inverter-heavy cones
// in both phases, including an output that is a bare inverted input.
func invertedRailNet() *logic.Network {
	n := logic.New("rails")
	a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("c")
	nb := n.AddNot(b)
	n.MarkOutput("o1", n.AddNot(n.AddAnd(a, nb)))
	n.MarkOutput("o2", n.AddOr(nb, c))
	n.MarkOutput("o3", n.AddNot(a))
	return n
}

// privateConesNet has disjoint cones — the pure per-cone sum case.
func privateConesNet() *logic.Network {
	n := logic.New("private")
	a, b := n.AddInput("a"), n.AddInput("b")
	c, d := n.AddInput("c"), n.AddInput("d")
	n.MarkOutput("o1", n.AddAnd(a, n.AddNot(b)))
	n.MarkOutput("o2", n.AddOr(n.AddNot(c), d))
	return n
}

func testProbs(n *logic.Network) []float64 {
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = 0.15 + 0.7*float64(i%7)/6
	}
	return probs
}

// fancyLibrary exercises every cost term the default unit-cap library
// zeroes or makes exact: wire load, non-unit caps, AND penalties.
func fancyLibrary() domino.Library {
	lib := domino.DefaultLibrary()
	lib.WireCap = 0.3
	lib.InputCap = 1.7
	lib.OutputCap = 2.1
	lib.AndPenalty = 0.25
	return lib
}

// TestConeTableMatchesNaiveAllMasks is the cone-table exactness
// property: over handcrafted shared/private/inverted-rail networks and
// random networks up to k = 10 outputs, the cached-cone score of every
// one of the 2^k assignments matches the naive Apply + Map + Estimate
// score, for every probability engine and for both the unit-cap and a
// fractional-cap library.
func TestConeTableMatchesNaiveAllMasks(t *testing.T) {
	type tc struct {
		name string
		net  *logic.Network
		lib  domino.Library
		opts power.Options
	}
	var cases []tc
	for _, m := range []struct {
		name string
		opts power.Options
	}{
		{"auto", power.Options{}},
		{"approx", power.Options{Method: power.Approximate}},
		{"depth", power.Options{Method: power.LimitedDepth, Depth: 3}},
	} {
		cases = append(cases,
			tc{"shared/" + m.name, sharedConeNet(), domino.DefaultLibrary(), m.opts},
			tc{"rails/" + m.name, invertedRailNet(), domino.DefaultLibrary(), m.opts},
			tc{"private/" + m.name, privateConesNet(), domino.DefaultLibrary(), m.opts},
			tc{"shared/fancy/" + m.name, sharedConeNet(), fancyLibrary(), m.opts},
		)
	}
	for _, p := range []gen.Params{
		{Name: "rnd4", Inputs: 8, Outputs: 4, Gates: 40, Seed: 11, OrProb: 0.6},
		{Name: "rnd6", Inputs: 10, Outputs: 6, Gates: 70, Seed: 23, OrProb: 0.4},
		{Name: "rnd8", Inputs: 12, Outputs: 8, Gates: 90, Seed: 37, OrProb: 0.55},
	} {
		net := gen.Generate(p).Optimize()
		cases = append(cases,
			tc{p.Name + "/auto", net, domino.DefaultLibrary(), power.Options{}},
			tc{p.Name + "/fancy/approx", net, fancyLibrary(), power.Options{Method: power.Approximate}},
		)
	}
	// One k=10 sweep on the cheap engine keeps the full-mask property
	// affordable at the satellite's upper width.
	cases = append(cases, tc{"rnd10/approx",
		gen.Generate(gen.Params{Name: "rnd10", Inputs: 14, Outputs: 10, Gates: 110, Seed: 51, OrProb: 0.5}).Optimize(),
		domino.DefaultLibrary(), power.Options{Method: power.Approximate}})

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			probs := testProbs(c.net)
			table, err := power.NewConeTable(c.net, c.lib, probs, c.opts)
			if err != nil {
				t.Fatalf("NewConeTable: %v", err)
			}
			eval := power.Evaluator(c.lib, probs, c.opts)
			k := c.net.NumOutputs()
			asg := make(phase.Assignment, k)
			for mask := 0; mask < 1<<uint(k); mask++ {
				for i := 0; i < k; i++ {
					asg[i] = mask&(1<<uint(i)) != 0
				}
				got, err := table.ScoreAssignment(asg)
				if err != nil {
					t.Fatalf("mask %d: ScoreAssignment: %v", mask, err)
				}
				res, err := phase.Apply(c.net, asg)
				if err != nil {
					t.Fatalf("mask %d: Apply: %v", mask, err)
				}
				want, err := eval(res)
				if err != nil {
					t.Fatalf("mask %d: naive eval: %v", mask, err)
				}
				if !relClose(got, want, 1e-9) {
					t.Fatalf("mask %d (%s): cone-table score %v != naive %v", mask, asg, got, want)
				}
			}
		})
	}
}

// TestConeTableForkDeterminism pins the scorer purity contract: forked
// scorers, interleaved arbitrarily, return bit-identical scores to the
// table's own sequential stream.
func TestConeTableForkDeterminism(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "fork", Inputs: 10, Outputs: 6, Gates: 60, Seed: 7, OrProb: 0.5}).Optimize()
	probs := testProbs(net)
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := table.Fork(), table.Fork()
	k := net.NumOutputs()
	asg := make(phase.Assignment, k)
	for mask := 0; mask < 1<<uint(k); mask++ {
		for i := 0; i < k; i++ {
			asg[i] = mask&(1<<uint(i)) != 0
		}
		want, err := table.ScoreAssignment(asg)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave: f1 scores everything, f2 only every third mask, so
		// their internal epochs diverge — results must not.
		got1, err := f1.ScoreAssignment(asg)
		if err != nil {
			t.Fatal(err)
		}
		if got1 != want {
			t.Fatalf("mask %d: fork1 %v != table %v", mask, got1, want)
		}
		if mask%3 == 0 {
			got2, err := f2.ScoreAssignment(asg)
			if err != nil {
				t.Fatal(err)
			}
			if got2 != want {
				t.Fatalf("mask %d: fork2 %v != table %v", mask, got2, want)
			}
		}
	}
}

// TestExhaustiveScoredWorkerInvariance is the search-level determinism
// property: the scored exhaustive search returns the bit-identical
// (assignment, score) for workers 1, 2, and 8, and its winner scores the
// same as the naive exhaustive winner.
func TestExhaustiveScoredWorkerInvariance(t *testing.T) {
	for _, p := range []gen.Params{
		{Name: "wi6", Inputs: 10, Outputs: 6, Gates: 70, Seed: 91, OrProb: 0.6},
		{Name: "wi10", Inputs: 14, Outputs: 10, Gates: 110, Seed: 17, OrProb: 0.45},
	} {
		net := gen.Generate(p).Optimize()
		probs := testProbs(net)
		opts := power.Options{Method: power.Approximate}
		lib := domino.DefaultLibrary()
		table, err := power.NewConeTable(net, lib, probs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wantAsg phase.Assignment
		var wantScore float64
		for _, workers := range []int{1, 2, 8} {
			asg, res, score, err := phase.ExhaustiveScored(net, table, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", p.Name, workers, err)
			}
			if res == nil || !reflect.DeepEqual(res.Assignment, asg) {
				t.Fatalf("%s workers=%d: result/assignment mismatch", p.Name, workers)
			}
			if wantAsg == nil {
				wantAsg, wantScore = asg, score
				continue
			}
			if !reflect.DeepEqual(asg, wantAsg) || score != wantScore {
				t.Errorf("%s workers=%d: winner drifted: (%s, %v) != (%s, %v)",
					p.Name, workers, asg, score, wantAsg, wantScore)
			}
		}
		// Cross-check the winner against the naive exhaustive search.
		nAsg, _, nScore, err := phase.ExhaustiveParallel(net, power.Evaluator(lib, probs, opts), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(nAsg, wantAsg) {
			t.Errorf("%s: scored winner %s != naive winner %s", p.Name, wantAsg, nAsg)
		}
		if !relClose(wantScore, nScore, 1e-9) {
			t.Errorf("%s: scored winner power %v != naive %v", p.Name, wantScore, nScore)
		}
	}
}

// TestMinPowerWithScorerMatchesNaive runs the paper's pairwise heuristic
// with and without the cone-table scorer; both paths must commit to the
// same assignment at (rounding-)equal power.
func TestMinPowerWithScorerMatchesNaive(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "mp", Inputs: 10, Outputs: 5, Gates: 60, Seed: 5, OrProb: 0.6}).Optimize()
	probs := testProbs(net)
	lib := domino.DefaultLibrary()
	opts := power.Options{}
	table, err := power.NewConeTable(net, lib, probs, opts)
	if err != nil {
		t.Fatal(err)
	}
	nAsg, _, nPow, nTrace, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Evaluate:   power.Evaluator(lib, probs, opts),
	})
	if err != nil {
		t.Fatal(err)
	}
	sAsg, _, sPow, sTrace, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Scorer:     table,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sAsg, nAsg) {
		t.Errorf("scored MinPower assignment %s != naive %s", sAsg, nAsg)
	}
	if !relClose(sPow, nPow, 1e-9) {
		t.Errorf("scored MinPower power %v != naive %v", sPow, nPow)
	}
	if len(sTrace) != len(nTrace) {
		t.Errorf("trace length %d != naive %d", len(sTrace), len(nTrace))
	}

	// The grouped extension must accept the scorer too.
	gAsg, _, gPow, _, err := phase.MinPowerGroups(net, phase.PowerOptions{
		InputProbs: probs,
		Scorer:     table,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ngAsg, _, ngPow, _, err := phase.MinPowerGroups(net, phase.PowerOptions{
		InputProbs: probs,
		Evaluate:   power.Evaluator(lib, probs, opts),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gAsg, ngAsg) || !relClose(gPow, ngPow, 1e-9) {
		t.Errorf("scored MinPowerGroups (%s, %v) != naive (%s, %v)", gAsg, gPow, ngAsg, ngPow)
	}
}

// TestConeTableSingleOutput covers the k=1 edge (mask space {+,-}).
func TestConeTableSingleOutput(t *testing.T) {
	n := logic.New("one")
	a, b := n.AddInput("a"), n.AddInput("b")
	n.MarkOutput("o", n.AddNot(n.AddOr(a, n.AddNot(b))))
	probs := []float64{0.9, 0.2}
	lib := domino.DefaultLibrary()
	table, err := power.NewConeTable(n, lib, probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := power.Evaluator(lib, probs, power.Options{})
	for _, neg := range []bool{false, true} {
		asg := phase.Assignment{neg}
		got, err := table.ScoreAssignment(asg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := phase.Apply(n, asg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval(res)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(got, want, 1e-9) {
			t.Errorf("phase %v: %v != %v", neg, got, want)
		}
	}
}
