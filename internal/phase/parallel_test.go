package phase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// sequentialExhaustive is the plain single-goroutine reference loop the
// seed implementation used; the parallel search must reproduce its
// (assignment, score) bit-for-bit at every worker count.
func sequentialExhaustive(n *logic.Network, eval Evaluator) (Assignment, float64, error) {
	k := n.NumOutputs()
	var bestAsg Assignment
	best := 0.0
	have := false
	for mask := 0; mask < 1<<uint(k); mask++ {
		asg := maskAssignment(mask, k)
		res, err := Apply(n, asg)
		if err != nil {
			return nil, 0, err
		}
		score, err := eval(res)
		if err != nil {
			return nil, 0, err
		}
		if !have || score < best {
			best, bestAsg, have = score, asg, true
		}
	}
	return bestAsg, best, nil
}

func assignmentsEqual(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExhaustiveParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := randomNoXorNetwork(rng, 3+rng.Intn(4), 10+rng.Intn(40), 2+rng.Intn(5))
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = 0.1 + 0.8*rng.Float64()
		}
		for _, eval := range []struct {
			name string
			fn   Evaluator
		}{{"area", AreaEvaluator}, {"switching", switchingEvaluator(probs)}} {
			wantAsg, wantScore, err := sequentialExhaustive(n, eval.fn)
			if err != nil {
				t.Fatalf("trial %d %s: sequential: %v", trial, eval.name, err)
			}
			for _, workers := range []int{1, 2, 3, 8} {
				asg, res, score, err := ExhaustiveParallel(n, eval.fn, workers)
				if err != nil {
					t.Fatalf("trial %d %s workers=%d: %v", trial, eval.name, workers, err)
				}
				if score != wantScore {
					t.Errorf("trial %d %s workers=%d: score %v != sequential %v",
						trial, eval.name, workers, score, wantScore)
				}
				if !assignmentsEqual(asg, wantAsg) {
					t.Errorf("trial %d %s workers=%d: assignment %s != sequential %s",
						trial, eval.name, workers, asg, wantAsg)
				}
				if res == nil {
					t.Fatalf("trial %d %s workers=%d: nil result", trial, eval.name, workers)
				}
			}
		}
	}
}

func TestExhaustiveParallelTieBreaksToLowestMask(t *testing.T) {
	// A constant evaluator makes every one of the 2^k assignments tie; the
	// winner must be mask 0 (all positive) at every worker count.
	rng := rand.New(rand.NewSource(73))
	n := randomNoXorNetwork(rng, 4, 20, 6)
	flat := func(*Result) (float64, error) { return 42, nil }
	for _, workers := range []int{1, 2, 5, 16} {
		asg, _, score, err := ExhaustiveParallel(n, flat, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if score != 42 {
			t.Errorf("workers=%d: score = %v", workers, score)
		}
		if !assignmentsEqual(asg, AllPositive(6)) {
			t.Errorf("workers=%d: tie broke to %s, want %s (lowest mask)", workers, asg, AllPositive(6))
		}
	}
}

func TestExhaustiveParallelPropagatesEvalError(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	n := randomNoXorNetwork(rng, 3, 12, 4)
	boom := func(r *Result) (float64, error) {
		if r.OutputInverterCount() > 0 {
			return 0, fmt.Errorf("evaluator rejected %s", r.Assignment)
		}
		return 1, nil
	}
	for _, workers := range []int{1, 4} {
		if _, _, _, err := ExhaustiveParallel(n, boom, workers); err == nil {
			t.Errorf("workers=%d: evaluator error swallowed", workers)
		}
	}
}

func TestGreedyDescentWorkersInvariant(t *testing.T) {
	// The greedy path (forced by ExhaustiveLimit 1) must return the same
	// (assignment, score) for every worker count at a fixed seed.
	rng := rand.New(rand.NewSource(83))
	n := randomNoXorNetwork(rng, 6, 50, 5)
	base := SearchOptions{ExhaustiveLimit: 1, Restarts: 4, Seed: 11}
	wantAsg, _, wantScore, err := MinArea(n, base)
	if err != nil {
		t.Fatalf("workers=default: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		opts := base
		opts.Workers = workers
		asg, _, score, err := MinArea(n, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if score != wantScore || !assignmentsEqual(asg, wantAsg) {
			t.Errorf("workers=%d: (%s, %v) != (%s, %v)", workers, asg, score, wantAsg, wantScore)
		}
	}
}
