package phase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/prob"
)

// TestQuickApplyEquivalence drives phase.Apply with testing/quick over
// seeded random networks and assignments: the reconstruction (block +
// boundary inverters) must always equal the original function, and the
// block must always be inverter-free.
func TestQuickApplyEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNoXorNetwork(rng, 2+rng.Intn(5), 1+rng.Intn(40), 1+rng.Intn(5))
		asg := make(Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		r, err := Apply(n, asg)
		if err != nil {
			return false
		}
		if r.Block.HasInverters() {
			return false
		}
		eq, err := logic.Equivalent(n, r.Reconstructed())
		return err == nil && eq
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickProperty41 verifies the paper's Property 4.1 on the block:
// flipping one output's phase complements the signal probability of
// every node in the non-shared part of its fanin cone. We check the
// strongest observable consequence: the block output driver's
// probability complements exactly.
func TestQuickProperty41(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNoXorNetwork(rng, 2+rng.Intn(4), 1+rng.Intn(25), 1+rng.Intn(3))
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = rng.Float64()
		}
		asg := make(Assignment, n.NumOutputs())
		flipped := asg.Clone()
		k := rng.Intn(len(flipped))
		flipped[k] = !flipped[k]

		pBase, err := outputProb(n, asg, k, probs)
		if err != nil {
			return false
		}
		pFlip, err := outputProb(n, flipped, k, probs)
		if err != nil {
			return false
		}
		diff := pFlip - (1 - pBase)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// outputProb returns the exact signal probability of block output k's
// driver under the given assignment, computed over the original primary
// inputs (correlated rails).
func outputProb(n *logic.Network, asg Assignment, k int, probs []float64) (float64, error) {
	r, err := Apply(n, asg)
	if err != nil {
		return 0, err
	}
	blockProbs, err := prob.Exact(r.Block, r.BlockInputProbs(probs), nil)
	if err != nil {
		return 0, err
	}
	// The blocks here are built from networks whose inverters feed from
	// distinct rails; prob.Exact over block inputs is exact as long as no
	// input appears in both polarities. Detect that case and fall back to
	// the literal-correlated engine.
	seen := map[int]int{}
	for _, bi := range r.Inputs {
		seen[bi.InputPos]++
	}
	for _, c := range seen {
		if c > 1 {
			return correlatedOutputProb(r, probs, k)
		}
	}
	return blockProbs[r.Block.Outputs()[k].Driver], nil
}

func correlatedOutputProb(r *Result, probs []float64, k int) (float64, error) {
	lits := make([]bdd.InputLit, len(r.Inputs))
	for pos, bi := range r.Inputs {
		lits[pos] = bdd.InputLit{Var: bi.InputPos, Neg: bi.Inverted}
	}
	nodeProbs, err := prob.ExactLits(r.Block, len(probs), lits, probs, nil)
	if err != nil {
		return 0, err
	}
	return nodeProbs[r.Block.Outputs()[k].Driver], nil
}
