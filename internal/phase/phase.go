// Package phase implements output phase assignment for domino synthesis —
// the paper's core contribution.
//
// Domino logic is non-inverting, so a block must be synthesized without
// internal inverters. Following Puri et al. [15], inverters are removed by
// choosing a phase for every primary output (positive = no inverter at the
// output boundary, negative = one static inverter at the boundary) and
// pushing the remaining inverters back to the primary inputs with De
// Morgan's law. Conflicting polarity demands on shared logic ("trapped
// inverters") force duplication. Apply performs this construction; MinArea
// reproduces the minimum-area baseline ("MA" in the paper's tables) and
// MinPower the paper's pairwise cost-function heuristic ("MP").
package phase

import (
	"fmt"

	"repro/internal/logic"
)

// Assignment selects a phase per primary output: false = positive phase
// (block drives the output directly), true = negative phase (block
// computes the complement; a static inverter at the boundary restores the
// output value). Note, as the paper stresses, phase is about inverter
// placement, not about implementing a different function.
type Assignment []bool

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// String renders the assignment as a +/- string in output order.
func (a Assignment) String() string {
	b := make([]byte, len(a))
	for i, neg := range a {
		if neg {
			b[i] = '-'
		} else {
			b[i] = '+'
		}
	}
	return string(b)
}

// AllPositive returns the all-positive-phase assignment for n outputs.
func AllPositive(n int) Assignment { return make(Assignment, n) }

// BlockInput describes one input of the inverter-free block.
type BlockInput struct {
	// InputPos is the position of the source primary input in the
	// original network's Inputs().
	InputPos int
	// Inverted reports whether this block input carries the complement of
	// the source input, supplied by a static inverter at the block's
	// input boundary.
	Inverted bool
}

// BlockOutput describes one output of the inverter-free block.
type BlockOutput struct {
	// OutputIdx is the index of the corresponding original primary
	// output.
	OutputIdx int
	// Negated reports whether the block computes the complement of the
	// original output, i.e. the output was assigned negative phase and a
	// static inverter at the output boundary restores it.
	Negated bool
}

// Result is the outcome of applying a phase assignment: an inverter-free
// block plus boundary metadata.
type Result struct {
	Original   *logic.Network
	Assignment Assignment
	// Block is the inverter-free network implementing every output in its
	// assigned phase. Block inputs correspond 1:1 to Inputs; block
	// outputs correspond 1:1 to Outputs.
	Block   *logic.Network
	Inputs  []BlockInput
	Outputs []BlockOutput
}

// InputInverterCount returns the number of static inverters required at
// the block's input boundary.
func (r *Result) InputInverterCount() int {
	c := 0
	for _, bi := range r.Inputs {
		if bi.Inverted {
			c++
		}
	}
	return c
}

// OutputInverterCount returns the number of static inverters required at
// the block's output boundary.
func (r *Result) OutputInverterCount() int {
	c := 0
	for _, bo := range r.Outputs {
		if bo.Negated {
			c++
		}
	}
	return c
}

// BlockInputProbs maps original input probabilities (by input position)
// to block input probabilities, complementing where the block input is
// inverted.
func (r *Result) BlockInputProbs(inputProbs []float64) []float64 {
	out := make([]float64, len(r.Inputs))
	for i, bi := range r.Inputs {
		p := inputProbs[bi.InputPos]
		if bi.Inverted {
			p = 1 - p
		}
		out[i] = p
	}
	return out
}

// Apply pushes inverters out of the network under the given phase
// assignment and returns the inverter-free block. The network must be an
// AND/OR/NOT/BUF/CONST network (run logic.Network.DecomposeXor first if
// needed).
//
// The construction builds, for every (node, polarity) pair demanded by
// the outputs, one block node, memoized so shared logic with compatible
// polarity demands is shared and conflicting demands are duplicated —
// exactly the trapped-inverter duplication of the paper's Figure 4.
func Apply(n *logic.Network, asg Assignment) (*Result, error) {
	if len(asg) != n.NumOutputs() {
		return nil, fmt.Errorf("phase: assignment for %d outputs, network has %d", len(asg), n.NumOutputs())
	}
	if n.CountKind(logic.KindXor) > 0 {
		return nil, fmt.Errorf("phase: network contains XOR gates; DecomposeXor first")
	}
	block := logic.New(n.Name + "_domino")
	r := &Result{
		Original:   n,
		Assignment: asg.Clone(),
		Block:      block,
	}

	inputPos := make(map[logic.NodeID]int, n.NumInputs())
	for pos, id := range n.Inputs() {
		inputPos[id] = pos
	}

	// memo[2*id+pol] is the block node implementing original node id in
	// the requested polarity (pol 0 = positive, 1 = complemented).
	memo := make(map[int64]logic.NodeID)

	var build func(id logic.NodeID, neg bool) logic.NodeID
	build = func(id logic.NodeID, neg bool) logic.NodeID {
		key := int64(id) << 1
		if neg {
			key |= 1
		}
		if v, ok := memo[key]; ok {
			return v
		}
		node := n.Node(id)
		var res logic.NodeID
		switch node.Kind {
		case logic.KindInput:
			pos := inputPos[id]
			name := node.Name
			if neg {
				name += "_bar"
			}
			res = block.AddInput(name)
			r.Inputs = append(r.Inputs, BlockInput{InputPos: pos, Inverted: neg})
		case logic.KindConst0:
			res = block.AddConst(neg)
		case logic.KindConst1:
			res = block.AddConst(!neg)
		case logic.KindBuf:
			res = build(node.Fanins[0], neg)
		case logic.KindNot:
			res = build(node.Fanins[0], !neg)
		case logic.KindAnd, logic.KindOr:
			kind := node.Kind
			if neg {
				// De Morgan: the complemented gate becomes its dual over
				// complemented fanins.
				if kind == logic.KindAnd {
					kind = logic.KindOr
				} else {
					kind = logic.KindAnd
				}
			}
			fs := make([]logic.NodeID, len(node.Fanins))
			for i, f := range node.Fanins {
				fs[i] = build(f, neg)
			}
			res = block.AddGate(kind, fs...)
		default:
			panic(fmt.Sprintf("phase: unexpected kind %s", node.Kind))
		}
		memo[key] = res
		return res
	}

	for idx, o := range n.Outputs() {
		neg := asg[idx]
		driver := build(o.Driver, neg)
		block.MarkOutput(o.Name, driver)
		r.Outputs = append(r.Outputs, BlockOutput{OutputIdx: idx, Negated: neg})
	}
	if block.HasInverters() {
		return nil, fmt.Errorf("phase: internal error: block still has inverters")
	}
	if err := block.Validate(); err != nil {
		return nil, fmt.Errorf("phase: invalid block: %w", err)
	}
	return r, nil
}

// Reconstructed builds a plain network with the original interface from
// the block: input-boundary inverters feed the inverted block inputs and
// output-boundary inverters restore negative-phase outputs. It is the
// functional-equivalence witness used by the test suite (the
// reconstruction must be equivalent to the original network).
func (r *Result) Reconstructed() *logic.Network {
	n := r.Original
	out := logic.New(n.Name + "_reconstructed")
	// Original inputs.
	origIn := make([]logic.NodeID, n.NumInputs())
	for pos, id := range n.Inputs() {
		origIn[pos] = out.AddInput(n.Node(id).Name)
	}
	// Block inputs in terms of original inputs.
	blockIn := make([]logic.NodeID, len(r.Inputs))
	for i, bi := range r.Inputs {
		if bi.Inverted {
			blockIn[i] = out.AddNot(origIn[bi.InputPos])
		} else {
			blockIn[i] = origIn[bi.InputPos]
		}
	}
	// Copy block gates.
	remap := make([]logic.NodeID, r.Block.NumNodes())
	inPos := make(map[logic.NodeID]int, len(r.Inputs))
	for pos, id := range r.Block.Inputs() {
		inPos[id] = pos
	}
	for i := 0; i < r.Block.NumNodes(); i++ {
		id := logic.NodeID(i)
		node := r.Block.Node(id)
		switch node.Kind {
		case logic.KindInput:
			remap[i] = blockIn[inPos[id]]
		case logic.KindConst0:
			remap[i] = out.AddConst(false)
		case logic.KindConst1:
			remap[i] = out.AddConst(true)
		default:
			fs := make([]logic.NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			remap[i] = out.AddGate(node.Kind, fs...)
		}
	}
	// Outputs, restoring polarity.
	for bi, bo := range r.Outputs {
		driver := remap[r.Block.Outputs()[bi].Driver]
		if bo.Negated {
			driver = out.AddNot(driver)
		}
		out.MarkOutput(n.Outputs()[bo.OutputIdx].Name, driver)
	}
	return out
}
