package phase

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/prob"
)

// switchingEvaluator builds the Figure 5 total-switching objective with
// exact probabilities, used as the power measure in these tests.
func switchingEvaluator(inputProbs []float64) Evaluator {
	return func(r *Result) (float64, error) {
		blockProbs, err := prob.Exact(r.Block, r.BlockInputProbs(inputProbs), nil)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for i := 0; i < r.Block.NumNodes(); i++ {
			k := r.Block.Kind(logic.NodeID(i))
			if k.IsGate() && k != logic.KindBuf {
				total += prob.DominoSwitching(blockProbs[i])
			}
		}
		for _, bi := range r.Inputs {
			if bi.Inverted {
				total += prob.BoundaryInputInverterSwitching(inputProbs[bi.InputPos])
			}
		}
		for i, bo := range r.Outputs {
			if bo.Negated {
				total += prob.BoundaryOutputInverterSwitching(blockProbs[r.Block.Outputs()[i].Driver])
			}
		}
		return total, nil
	}
}

func TestExhaustiveFindsFigure5Optimum(t *testing.T) {
	// With p(inputs)=0.9 the right-hand realization of Figure 5 (f
	// positive, g negative) is the 2-output optimum.
	n := figure5Network()
	eval := switchingEvaluator(prob.Uniform(n, 0.9))
	asg, res, score, err := Exhaustive(n, eval)
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if asg[0] != false || asg[1] != true {
		t.Errorf("optimum assignment = %s, want +- (f positive, g negative)", asg)
	}
	if !almost(score, 1.1219) {
		t.Errorf("optimum switching = %v, want 1.1219", score)
	}
	if res == nil || res.Block.GateCount() != 4 {
		t.Error("optimum result malformed")
	}
}

func TestExhaustiveRefusesWideInterfaces(t *testing.T) {
	n := logic.New("wide")
	a := n.AddInput("a")
	for i := 0; i < 21; i++ {
		n.MarkOutput(nameFor("o", i), n.AddBuf(a))
	}
	if _, _, _, err := Exhaustive(n, AreaEvaluator); err == nil {
		t.Error("Exhaustive accepted 21 outputs")
	}
}

func TestMinAreaMatchesExhaustiveOnSmallCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := randomNoXorNetwork(rng, 3+rng.Intn(4), 5+rng.Intn(25), 2+rng.Intn(3))
		_, _, exhScore, err := Exhaustive(n, AreaEvaluator)
		if err != nil {
			t.Fatalf("Exhaustive: %v", err)
		}
		_, _, maScore, err := MinArea(n, SearchOptions{})
		if err != nil {
			t.Fatalf("MinArea: %v", err)
		}
		if maScore != exhScore {
			t.Errorf("trial %d: MinArea %v != exhaustive %v", trial, maScore, exhScore)
		}
	}
}

func TestMinAreaGreedyPath(t *testing.T) {
	// Force the greedy path with a low exhaustive limit and check the
	// result is a valid synthesis no worse than all-positive.
	rng := rand.New(rand.NewSource(47))
	n := randomNoXorNetwork(rng, 6, 40, 4)
	allPos, err := Apply(n, AllPositive(4))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := AreaEvaluator(allPos)
	asg, res, score, err := MinArea(n, SearchOptions{ExhaustiveLimit: 1, Restarts: 2, Seed: 7})
	if err != nil {
		t.Fatalf("MinArea greedy: %v", err)
	}
	if score > base {
		t.Errorf("greedy result %v worse than all-positive %v", score, base)
	}
	eq, err := logic.Equivalent(n, res.Reconstructed())
	if err != nil || !eq {
		t.Errorf("greedy MinArea broke function (asg %s): %v %v", asg, eq, err)
	}
}

func TestMinPowerImprovesOrMatchesInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		n := randomNoXorNetwork(rng, 3+rng.Intn(4), 10+rng.Intn(30), 2+rng.Intn(4))
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = 0.1 + 0.8*rng.Float64()
		}
		eval := switchingEvaluator(probs)
		initial := AllPositive(n.NumOutputs())
		initRes, err := Apply(n, initial)
		if err != nil {
			t.Fatal(err)
		}
		initPower, err := eval(initRes)
		if err != nil {
			t.Fatal(err)
		}
		asg, res, power, trace, err := MinPower(n, PowerOptions{
			InputProbs: probs,
			Evaluate:   eval,
		})
		if err != nil {
			t.Fatalf("trial %d: MinPower: %v", trial, err)
		}
		if power > initPower+1e-12 {
			t.Errorf("trial %d: MinPower %v worse than initial %v", trial, power, initPower)
		}
		eq, err := logic.Equivalent(n, res.Reconstructed())
		if err != nil || !eq {
			t.Errorf("trial %d: MinPower broke function (asg %s): %v %v", trial, asg, eq, err)
		}
		// Every committed step must have strictly decreased power.
		last := initPower
		for _, s := range trace {
			if s.Committed {
				if s.Power >= last {
					t.Errorf("trial %d: committed step did not decrease power: %v -> %v", trial, last, s.Power)
				}
				last = s.Power
			}
		}
	}
}

func TestMinPowerFindsFigure5Optimum(t *testing.T) {
	// With only two outputs the pairwise heuristic degenerates to trying
	// the best K combination; on the Figure 5 example it must reach the
	// right-hand realization.
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	asg, _, power, trace, err := MinPower(n, PowerOptions{
		InputProbs: probs,
		Evaluate:   switchingEvaluator(probs),
	})
	if err != nil {
		t.Fatalf("MinPower: %v", err)
	}
	if asg[0] != false || asg[1] != true {
		t.Errorf("MinPower assignment = %s, want +-", asg)
	}
	if !almost(power, 1.1219) {
		t.Errorf("MinPower power = %v, want 1.1219", power)
	}
	if len(trace) == 0 {
		t.Error("empty trace")
	}
}

func TestMinPowerRespectsInitialAssignment(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	initial := Assignment{true, true}
	_, _, _, _, err := MinPower(n, PowerOptions{
		InputProbs: probs,
		Evaluate:   switchingEvaluator(probs),
		Initial:    initial,
	})
	if err != nil {
		t.Fatalf("MinPower: %v", err)
	}
	if initial[0] != true || initial[1] != true {
		t.Error("MinPower mutated the caller's initial assignment")
	}
}

func TestMinPowerSingleOutput(t *testing.T) {
	n := logic.New("one")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddAnd(a, b))
	probs := prob.Uniform(n, 0.5)
	asg, _, _, trace, err := MinPower(n, PowerOptions{
		InputProbs: probs,
		Evaluate:   switchingEvaluator(probs),
	})
	if err != nil {
		t.Fatalf("MinPower: %v", err)
	}
	if len(asg) != 1 || len(trace) != 0 {
		t.Errorf("single output: asg=%v trace=%v", asg, trace)
	}
}

func TestMinPowerMaxPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	n := randomNoXorNetwork(rng, 5, 30, 4)
	probs := prob.Uniform(n, 0.5)
	eval := switchingEvaluator(probs)
	_, _, capped, traceCapped, err := MinPower(n, PowerOptions{
		InputProbs: probs, Evaluate: eval, MaxPairs: 2,
	})
	if err != nil {
		t.Fatalf("MinPower capped: %v", err)
	}
	if len(traceCapped) > 2 {
		t.Errorf("MaxPairs=2 but %d steps traced", len(traceCapped))
	}
	_, _, full, _, err := MinPower(n, PowerOptions{InputProbs: probs, Evaluate: eval})
	if err != nil {
		t.Fatalf("MinPower full: %v", err)
	}
	if full > capped+1e-12 {
		t.Errorf("full search (%v) worse than capped (%v)", full, capped)
	}
}

func TestConeStatsCostFunction(t *testing.T) {
	// Hand-check K on a tiny synthesis: two disjoint outputs, overlap 0.
	n := logic.New("k")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddBuf(a))
	n.MarkOutput("g", n.AddAnd(a, b))
	r, err := Apply(n, AllPositive(2))
	if err != nil {
		t.Fatal(err)
	}
	inputProbs := []float64{0.9, 0.5}
	st, err := blockConeStats(r, inputProbs, func(blk *logic.Network, in []float64) ([]float64, error) {
		return prob.Approximate(blk, in), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// f's block cone: just input a (p=.9) -> |D|=1, A=.9.
	// g's block cone: a, b, and-gate -> |D|=3, A=(0.9+0.5+0.45)/3.
	if st.size[0] != 1 || st.size[1] != 3 {
		t.Fatalf("cone sizes = %v", st.size)
	}
	if !almost(st.avg[0], 0.9) {
		t.Errorf("A_f = %v", st.avg[0])
	}
	wantAg := (0.9 + 0.5 + 0.45) / 3
	if !almost(st.avg[1], wantAg) {
		t.Errorf("A_g = %v, want %v", st.avg[1], wantAg)
	}
	// Overlap: f cone {a}, g cone {a,b,and}: 1/(1+3)=0.25.
	if got := st.o(0, 1); !almost(got, 0.25) {
		t.Errorf("O(f,g) = %v, want 0.25", got)
	}
	// K(i+,j+) = 1*.9 + 3*Ag + .5*.25*(.9+Ag)
	want := 0.9 + 3*wantAg + 0.125*(0.9+wantAg)
	if got := st.k(0, 1, RetainRetain); !almost(got, want) {
		t.Errorf("K(+,+) = %v, want %v", got, want)
	}
	// K(i-,j+) flips Ai.
	want = 0.1 + 3*wantAg + 0.125*(0.1+wantAg)
	if got := st.k(0, 1, InvertRetain); !almost(got, want) {
		t.Errorf("K(-,+) = %v, want %v", got, want)
	}
}

func BenchmarkApply(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	n := randomNoXorNetwork(rng, 20, 1000, 10)
	asg := make(Assignment, n.NumOutputs())
	for i := range asg {
		asg[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(n, asg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinPowerSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	n := randomNoXorNetwork(rng, 8, 60, 4)
	probs := prob.Uniform(n, 0.5)
	eval := switchingEvaluator(probs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := MinPower(n, PowerOptions{InputProbs: probs, Evaluate: eval}); err != nil {
			b.Fatal(err)
		}
	}
}
