package phase

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/prob"
)

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("combinations = %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("combinations = %v, want %v", got, want)
		}
	}
	if len(combinations(5, 3)) != 10 {
		t.Error("C(5,3) != 10")
	}
	if len(combinations(3, 3)) != 1 {
		t.Error("C(3,3) != 1")
	}
}

func TestGroupCostMatchesPairK(t *testing.T) {
	// For groups of size 2, groupCost must equal the pairwise K exactly.
	n := figure5Network()
	r, err := Apply(n, AllPositive(2))
	if err != nil {
		t.Fatal(err)
	}
	probs := prob.Uniform(n, 0.9)
	st, err := blockConeStats(r, probs, func(b *logic.Network, in []float64) ([]float64, error) {
		return prob.Approximate(b, in), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		combo Combo
		mask  uint32
	}{
		{RetainRetain, 0b00},
		{InvertRetain, 0b01},
		{RetainInvert, 0b10},
		{InvertInvert, 0b11},
	}
	for _, c := range cases {
		pair := st.k(0, 1, c.combo)
		group := groupCost(st, []int{0, 1}, c.mask)
		if !almost(pair, group) {
			t.Errorf("combo %s: pair K %v != group K %v", c.combo, pair, group)
		}
	}
}

func TestMinPowerGroupsPairsMatchesFigure5(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	asg, _, power, trace, err := MinPowerGroups(n, PowerOptions{
		InputProbs: probs,
		Evaluate:   switchingEvaluator(probs),
	}, 2)
	if err != nil {
		t.Fatalf("MinPowerGroups: %v", err)
	}
	if asg[0] != false || asg[1] != true {
		t.Errorf("assignment = %s, want +-", asg)
	}
	if !almost(power, 1.1219) {
		t.Errorf("power = %v, want 1.1219", power)
	}
	if len(trace) == 0 {
		t.Error("empty trace")
	}
}

func TestMinPowerGroupsTriplesNoWorseThanPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := randomNoXorNetwork(rng, 3+rng.Intn(4), 15+rng.Intn(25), 3+rng.Intn(2))
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = 0.1 + 0.8*rng.Float64()
		}
		eval := switchingEvaluator(probs)
		_, _, p2, _, err := MinPowerGroups(n, PowerOptions{InputProbs: probs, Evaluate: eval}, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, _, p3, _, err := MinPowerGroups(n, PowerOptions{InputProbs: probs, Evaluate: eval}, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Triples explore a superset of joint moves from the same start;
		// with the greedy commit rule they are not formally dominant, but
		// across seeds they must be at least competitive. Assert no
		// catastrophic regression (>20% worse).
		if p3 > p2*1.2+1e-9 {
			t.Errorf("trial %d: triples (%v) much worse than pairs (%v)", trial, p3, p2)
		}
	}
}

func TestMinPowerGroupsWholeSetIsGreedyExhaustive(t *testing.T) {
	// Group size = all outputs: the paper says the heuristic "essentially
	// reduces to a greedily ordered exhaustive search" — it must find the
	// global optimum on the Figure 5 example.
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	eval := switchingEvaluator(probs)
	_, _, pw, _, err := MinPowerGroups(n, PowerOptions{InputProbs: probs, Evaluate: eval}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, exh, err := Exhaustive(n, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pw, exh) {
		t.Errorf("whole-set groups %v != exhaustive %v", pw, exh)
	}
}

func TestMinPowerGroupsFunctionalCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		n := randomNoXorNetwork(rng, 3+rng.Intn(3), 10+rng.Intn(20), 3)
		probs := prob.Uniform(n, 0.5)
		_, res, _, _, err := MinPowerGroups(n, PowerOptions{
			InputProbs: probs,
			Evaluate:   switchingEvaluator(probs),
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(n, res.Reconstructed())
		if err != nil || !eq {
			t.Fatalf("trial %d: groups broke function (%v %v)", trial, eq, err)
		}
	}
}

func TestMinPowerGroupsRejectsBadSize(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.5)
	if _, _, _, _, err := MinPowerGroups(n, PowerOptions{InputProbs: probs, Evaluate: switchingEvaluator(probs)}, 1); err == nil {
		t.Error("accepted group size 1")
	}
}

func BenchmarkMinPowerGroups3(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	n := randomNoXorNetwork(rng, 8, 50, 5)
	probs := prob.Uniform(n, 0.5)
	eval := switchingEvaluator(probs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := MinPowerGroups(n, PowerOptions{InputProbs: probs, Evaluate: eval}, 3); err != nil {
			b.Fatal(err)
		}
	}
}
