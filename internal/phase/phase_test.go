package phase

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/prob"
)

// figure5Network builds the two-output example of the paper's Figures 3-5:
//
//	f = not(a+b) + not(c·d)   (= the complement of (a+b)(cd))
//	g = (a+b) + (c·d)
//
// written with explicit internal inverters, as technology-independent
// synthesis would produce it.
func figure5Network() *logic.Network {
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	f := n.AddOr(n.AddNot(x), n.AddNot(y))
	g := n.AddOr(x, y)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	return n
}

// totalSwitching computes the Figure 5 switching metric of a synthesis:
// every domino gate switches with its signal probability, input-boundary
// static inverters switch 2p(1−p), output-boundary inverters switch with
// the driving block output's probability. Exact probabilities via BDDs.
func totalSwitching(t testing.TB, r *Result, inputProbs []float64) (domino, inInv, outInv float64) {
	t.Helper()
	blockProbs, err := prob.Exact(r.Block, r.BlockInputProbs(inputProbs), nil)
	if err != nil {
		t.Fatalf("prob.Exact: %v", err)
	}
	for i := 0; i < r.Block.NumNodes(); i++ {
		k := r.Block.Kind(logic.NodeID(i))
		if k.IsGate() && k != logic.KindBuf {
			domino += prob.DominoSwitching(blockProbs[i])
		}
	}
	for _, bi := range r.Inputs {
		if bi.Inverted {
			inInv += prob.BoundaryInputInverterSwitching(inputProbs[bi.InputPos])
		}
	}
	for i, bo := range r.Outputs {
		if bo.Negated {
			outInv += prob.BoundaryOutputInverterSwitching(blockProbs[r.Block.Outputs()[i].Driver])
		}
	}
	return domino, inInv, outInv
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFigure5LeftRealization(t *testing.T) {
	// Left of Figure 5: f negative, g positive. No input inverters, the
	// block computes X=a+b, Y=cd, f̄=X·Y, g=X+Y; switching 3.6 in the
	// block and .8019 at the output inverter.
	n := figure5Network()
	r, err := Apply(n, Assignment{true, false})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := r.Block.GateCount(); got != 4 {
		t.Errorf("left block gate count = %d, want 4\n%s", got, r.Block)
	}
	if r.InputInverterCount() != 0 {
		t.Errorf("left input inverters = %d, want 0", r.InputInverterCount())
	}
	if r.OutputInverterCount() != 1 {
		t.Errorf("left output inverters = %d, want 1", r.OutputInverterCount())
	}
	probs := prob.Uniform(n, 0.9)
	domino, inInv, outInv := totalSwitching(t, r, probs)
	if !almost(domino, 3.6) {
		t.Errorf("left domino switching = %v, want 3.6 (paper)", domino)
	}
	if !almost(inInv, 0) {
		t.Errorf("left input inverter switching = %v, want 0", inInv)
	}
	if !almost(outInv, 0.8019) {
		t.Errorf("left output inverter switching = %v, want .8019 (paper)", outInv)
	}
}

func TestFigure5RightRealization(t *testing.T) {
	// Right of Figure 5: f positive, g negative. Four input inverters
	// (.72 total), block computes A=āb̄, B=c̄+d̄, f=A+B, ḡ=A·B (switching
	// .40), output inverter .0019.
	n := figure5Network()
	r, err := Apply(n, Assignment{false, true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := r.Block.GateCount(); got != 4 {
		t.Errorf("right block gate count = %d, want 4\n%s", got, r.Block)
	}
	if r.InputInverterCount() != 4 {
		t.Errorf("right input inverters = %d, want 4", r.InputInverterCount())
	}
	if r.OutputInverterCount() != 1 {
		t.Errorf("right output inverters = %d, want 1", r.OutputInverterCount())
	}
	probs := prob.Uniform(n, 0.9)
	domino, inInv, outInv := totalSwitching(t, r, probs)
	if !almost(domino, 0.40) {
		t.Errorf("right domino switching = %v, want .40 (paper)", domino)
	}
	if !almost(inInv, 0.72) {
		t.Errorf("right input inverter switching = %v, want .72 (paper)", inInv)
	}
	if !almost(outInv, 0.0019) {
		t.Errorf("right output inverter switching = %v, want .0019 (paper)", outInv)
	}
}

func TestFigure5SeventyFivePercent(t *testing.T) {
	// The paper's headline claim for this example: the second realization
	// has ~75% fewer transitions than the first.
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	left, err := Apply(n, Assignment{true, false})
	if err != nil {
		t.Fatal(err)
	}
	right, err := Apply(n, Assignment{false, true})
	if err != nil {
		t.Fatal(err)
	}
	ld, li, lo := totalSwitching(t, left, probs)
	rd, ri, ro := totalSwitching(t, right, probs)
	leftTotal := ld + li + lo
	rightTotal := rd + ri + ro
	if !almost(leftTotal, 4.4019) {
		t.Errorf("left total = %v, want 4.4019", leftTotal)
	}
	if !almost(rightTotal, 1.1219) {
		t.Errorf("right total = %v, want 1.1219", rightTotal)
	}
	saving := 1 - rightTotal/leftTotal
	if saving < 0.74 || saving > 0.76 {
		t.Errorf("saving = %.4f, want ~0.75 (paper: 75%% fewer transitions)", saving)
	}
}

func TestApplyProducesInverterFreeEquivalentBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		n := randomNoXorNetwork(rng, 2+rng.Intn(5), 1+rng.Intn(30), 1+rng.Intn(4))
		asg := make(Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		r, err := Apply(n, asg)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if r.Block.HasInverters() {
			t.Fatalf("trial %d: block has inverters", trial)
		}
		rec := r.Reconstructed()
		eq, err := logic.Equivalent(n, rec)
		if err != nil {
			t.Fatalf("trial %d: Equivalent: %v", trial, err)
		}
		if !eq {
			t.Fatalf("trial %d: phase assignment %s changed function\noriginal:\n%s\nblock:\n%s",
				trial, asg, n, r.Block)
		}
	}
}

func TestApplyRejectsXor(t *testing.T) {
	n := logic.New("x")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddXor(a, b))
	if _, err := Apply(n, Assignment{false}); err == nil {
		t.Error("Apply accepted XOR network")
	}
}

func TestApplyRejectsWrongAssignmentLength(t *testing.T) {
	n := figure5Network()
	if _, err := Apply(n, Assignment{false}); err == nil {
		t.Error("Apply accepted wrong-length assignment")
	}
}

func TestTrappedInverterDuplication(t *testing.T) {
	// Figure 4: conflicting phases on outputs sharing logic force
	// duplication. f and g share (a+b); assigning f positive and g
	// negative demands both polarities of the shared gate.
	n := logic.New("fig4")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	x := n.AddOr(a, b)
	f := n.AddAnd(x, c)
	g := n.AddAnd(x, b)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)

	same, err := Apply(n, Assignment{false, false})
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := Apply(n, Assignment{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if sameCount, conflictCount := same.Block.GateCount(), conflict.Block.GateCount(); conflictCount <= sameCount {
		t.Errorf("conflicting phases should duplicate logic: same=%d conflict=%d", sameCount, conflictCount)
	}
}

func TestAssignmentString(t *testing.T) {
	if got := (Assignment{false, true, false}).String(); got != "+-+" {
		t.Errorf("String = %q, want \"+-+\"", got)
	}
}

func randomNoXorNetwork(rng *rand.Rand, numInputs, numGates, numOutputs int) *logic.Network {
	n := logic.New("rand")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(nameFor("i", i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(5) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddBuf(pick()))
		case 2:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 3:
			ids = append(ids, n.AddOr(pick(), pick()))
		default:
			ids = append(ids, n.AddOr(pick(), pick(), pick()))
		}
	}
	if numOutputs > len(ids) {
		numOutputs = len(ids)
	}
	for i := 0; i < numOutputs; i++ {
		n.MarkOutput(nameFor("o", i), ids[len(ids)-1-i])
	}
	return n
}

func nameFor(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))
}
