package phase

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/budget"
	"repro/internal/logic"
	"repro/internal/par"
)

// searchOutcome is one restart/chain result, reduced in start order.
type searchOutcome struct {
	asg   Assignment
	score float64
}

// reduceOutcomes folds restart results in start order, earlier starts
// winning ties — the rule that makes every restart-parallel search match
// its sequential run exactly.
func reduceOutcomes(outcomes []searchOutcome) searchOutcome {
	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.score < best.score {
			best = o
		}
	}
	return best
}

// descendState runs first-improvement hill climbing over single output
// flips on an incremental state until no flip improves. asg is mutated
// to the reached local minimum; the final score is returned. Each trial
// flip costs one Flip (O(Δ) on the cone-table state) instead of a full
// rescore.
func descendState(st ScoreState, asg Assignment, score float64, tok *budget.T) (float64, error) {
	improved := true
	for improved {
		// One cancellation poll per sweep bounds the latency at k flips.
		if err := tok.Err(); err != nil {
			return 0, err
		}
		improved = false
		//dominolint:budget-ok bounded at k O(1) flips per sweep; the enclosing loop polls once per sweep
		for i := range asg {
			if s := st.Flip(i); s < score {
				asg[i] = !asg[i]
				score = s
				improved = true
			} else {
				st.Flip(i) // revert
			}
		}
	}
	return score, nil
}

// greedyStarts generates the canonical restart set: the base start (the
// all-positive assignment, or Initial when set) plus Restarts random
// draws from the seeded rng, in a fixed order regardless of worker
// count.
func greedyStarts(k int, opts SearchOptions) []Assignment {
	rng := rand.New(rand.NewSource(opts.Seed))
	starts := make([]Assignment, 0, opts.Restarts+1)
	if len(opts.Initial) == k {
		starts = append(starts, opts.Initial.Clone())
	} else {
		starts = append(starts, AllPositive(k))
	}
	for restart := 0; restart < opts.Restarts; restart++ {
		asg := make(Assignment, k)
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		starts = append(starts, asg)
	}
	return starts
}

// greedySearch is multi-restart first-improvement descent — the
// historical wide-interface fallback, rebuilt on ScoreState so a trial
// flip reprices only what it touches. Starts are generated up front in
// a fixed order, descended concurrently, and reduced in start order
// with earlier starts winning ties, so the outcome matches a sequential
// run of the same starts exactly, at any worker count. Only the winner
// is synthesized.
func greedySearch(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	opts.defaults()
	k := n.NumOutputs()
	starts := greedyStarts(k, opts)
	scorer := opts.searchScorer(n)
	outcomes, err := par.Map(context.Background(), len(starts), opts.Workers,
		func(ctx context.Context, s int) (searchOutcome, error) {
			if err := pollCancel(ctx, opts.Budget); err != nil {
				return searchOutcome{}, err
			}
			st := newState(scorer)
			asg := starts[s]
			score, err := st.Set(asg)
			if err != nil {
				return searchOutcome{}, err
			}
			score, err = descendState(st, asg, score, opts.Budget)
			if err != nil {
				return searchOutcome{}, err
			}
			if err := st.Err(); err != nil {
				return searchOutcome{}, err
			}
			return searchOutcome{asg: asg, score: score}, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}
	best := reduceOutcomes(outcomes)
	res, err := Apply(n, best.asg)
	if err != nil {
		return nil, nil, 0, err
	}
	return best.asg, res, best.score, nil
}

// annealSearch is seeded simulated annealing over single-bit flips:
// Restarts+1 independent chains (chain 0 starts all-positive — or from
// SearchOptions.Initial when set — and the rest from their own seeded
// rng), each running AnnealSteps proposals under
// a geometric cooling schedule calibrated from the chain's own probe of
// per-flip |Δscore|, followed by a greedy polish of the best visited
// assignment. Each proposal costs one Flip.
//
// Determinism: chain c's rng is seeded as Seed + c·annealSeedStride and
// consumed in a fixed order, chains run concurrently but reduce in
// chain order (earlier chains win ties), so the outcome is a pure
// function of (Seed, Restarts, AnnealSteps, scorer) — never of Workers.
func annealSearch(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	opts.defaults()
	k := n.NumOutputs()
	if k == 0 {
		return nil, nil, 0, fmt.Errorf("phase: network has no outputs")
	}
	steps := opts.AnnealSteps
	if steps <= 0 {
		steps = 400 * k
	}
	chains := opts.Restarts + 1
	scorer := opts.searchScorer(n)

	const annealSeedStride = 0x9E3779B97F4A7C15 >> 1 // fixed odd-ish stride keeps chain seeds distinct
	outcomes, err := par.Map(context.Background(), chains, opts.Workers,
		func(ctx context.Context, c int) (searchOutcome, error) {
			rng := rand.New(rand.NewSource(opts.Seed + int64(c)*annealSeedStride))
			st := newState(scorer)
			asg := make(Assignment, k)
			if c > 0 {
				for i := range asg {
					asg[i] = rng.Intn(2) == 1
				}
			} else if len(opts.Initial) == k {
				copy(asg, opts.Initial)
			}
			cur, err := st.Set(asg)
			if err != nil {
				return searchOutcome{}, err
			}
			best := cur
			bestAsg := asg.Clone()

			// Calibrate the starting temperature from the mean |Δ| of the
			// k single-bit probes (flip + revert leaves cur exact — the
			// incremental contract guarantees the score returns
			// bit-identically).
			sum := 0.0
			for i := 0; i < k; i++ {
				d := st.Flip(i) - cur
				st.Flip(i)
				sum += math.Abs(d)
			}
			t := 2 * sum / float64(k)
			if t <= 0 {
				t = 1e-9
			}
			alpha := math.Pow(1e-3, 1/float64(steps))

			for step := 0; step < steps; step++ {
				if step&0xff == 0 {
					if err := pollCancel(ctx, opts.Budget); err != nil {
						return searchOutcome{}, err
					}
				}
				bit := rng.Intn(k)
				next := st.Flip(bit)
				d := next - cur
				if d <= 0 || rng.Float64() < math.Exp(-d/t) {
					asg[bit] = !asg[bit]
					cur = next
					if cur < best {
						best = cur
						copy(bestAsg, asg)
					}
				} else {
					st.Flip(bit) // reject: revert
				}
				t *= alpha
			}

			// Greedy polish: descend the best visited assignment to its
			// local minimum.
			score, err := st.Set(bestAsg)
			if err != nil {
				return searchOutcome{}, err
			}
			score, err = descendState(st, bestAsg, score, opts.Budget)
			if err != nil {
				return searchOutcome{}, err
			}
			if err := st.Err(); err != nil {
				return searchOutcome{}, err
			}
			return searchOutcome{asg: bestAsg, score: score}, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}
	best := reduceOutcomes(outcomes)
	res, err := Apply(n, best.asg)
	if err != nil {
		return nil, nil, 0, err
	}
	return best.asg, res, best.score, nil
}
