package phase

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/par"
)

// grayMask returns the i-th mask of the reflected gray-code walk.
func grayMask(i int) int { return i ^ (i >> 1) }

// grayBest is one shard's winner; mask is the candidate's plain (not
// gray-counter) mask value, the shared tie-break key.
type grayBest struct {
	mask  int
	score float64
	ok    bool
}

func (b grayBest) better(o grayBest) bool {
	if !b.ok {
		return false
	}
	if !o.ok {
		return true
	}
	if b.score != o.score {
		return b.score < o.score
	}
	return b.mask < o.mask
}

// grayExhaustive enumerates all 2^k assignments along the reflected
// gray-code walk: consecutive candidates differ in exactly one phase
// bit, so each costs one ScoreState.Flip instead of a full rescore.
//
// Determinism contract: scores are pure functions of the assignment
// (the incremental contract), each shard walks a contiguous counter
// range of the same fixed gray sequence, and winners reduce under
// "lowest score, then lowest mask" — the identical total order of the
// ascending-mask reference scan. The returned (assignment, score) is
// therefore bit-identical to ExhaustiveScored's for every worker count
// and shard geometry.
func grayExhaustive(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	if opts.Scorer == nil {
		return nil, nil, 0, fmt.Errorf("phase: gray-code exhaustive search requires a scorer")
	}
	k := n.NumOutputs()
	if err := checkMaskWidth(k); err != nil {
		return nil, nil, 0, err
	}
	total := 1 << uint(k)
	w := par.Workers(opts.Workers)
	ranges := par.SplitRange(total, w*4)
	bests, err := par.Map(context.Background(), len(ranges), w,
		func(ctx context.Context, s int) (grayBest, error) {
			st := newState(opts.Scorer)
			buf := make(Assignment, k)
			lo, hi := ranges[s][0], ranges[s][1]
			buf.SetMask(grayMask(lo))
			score, err := st.Set(buf)
			if err != nil {
				return grayBest{}, err
			}
			best := grayBest{mask: grayMask(lo), score: score, ok: true}
			for c := lo + 1; c < hi; c++ {
				if c&0xfff == 0 {
					if err := pollCancel(ctx, opts.Budget); err != nil {
						return grayBest{}, err
					}
				}
				// gray(c−1) and gray(c) differ in bit tz(c).
				score = st.Flip(bits.TrailingZeros(uint(c)))
				if mask := grayMask(c); score < best.score || (score == best.score && mask < best.mask) {
					best = grayBest{mask: mask, score: score, ok: true}
				}
			}
			if err := st.Err(); err != nil {
				return grayBest{}, err
			}
			return best, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}
	var best grayBest
	for _, b := range bests {
		if b.better(best) {
			best = b
		}
	}
	if !best.ok {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search produced no candidate")
	}
	asg := maskAssignment(best.mask, k)
	res, err := Apply(n, asg)
	if err != nil {
		return nil, nil, 0, err
	}
	return asg, res, best.score, nil
}
