package phase

import (
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/logic"
	"repro/internal/prob"
)

// Combo identifies one of the four phase combinations the paper's cost
// function K ranks for an output pair (Section 4.1). Following the
// paper's notation, '+' means retaining the output's current phase and
// '-' means inverting it — not absolute polarity.
type Combo uint8

// The four pair combinations.
const (
	RetainRetain Combo = iota // K(i+, j+)
	RetainInvert              // K(i+, j-)
	InvertRetain              // K(i-, j+)
	InvertInvert              // K(i-, j-)
)

// String renders the combo in the paper's notation.
func (c Combo) String() string {
	switch c {
	case RetainRetain:
		return "(i+,j+)"
	case RetainInvert:
		return "(i+,j-)"
	case InvertRetain:
		return "(i-,j+)"
	case InvertInvert:
		return "(i-,j-)"
	}
	return "(?)"
}

// Step records one iteration of the MinPower heuristic for reporting and
// tests.
type Step struct {
	I, J      int   // output indexes of the pair tried
	Combo     Combo // chosen combination
	K         float64
	Power     float64 // measured power of the candidate synthesis
	Committed bool
}

// ProbFn computes per-node signal probabilities of a block network given
// its input probabilities. The default is prob.Approximate; flows wanting
// exactness pass a BDD-based closure.
type ProbFn func(block *logic.Network, blockInputProbs []float64) ([]float64, error)

// PowerOptions configures MinPower.
type PowerOptions struct {
	// InputProbs gives the signal probability of each original primary
	// input (by position). Required.
	InputProbs []float64
	// Evaluate measures the power of a candidate synthesis. Required
	// unless Scorer is set.
	Evaluate Evaluator
	// Scorer, when set, scores candidate assignments directly from
	// per-cone precomputed state (see power.ConeTable) instead of
	// synthesizing and estimating every trial; Apply then runs only on
	// committed assignments. Scorer takes precedence over Evaluate for
	// all candidate scoring.
	Scorer AssignmentScorer
	// Initial is the starting assignment (default all-positive).
	Initial Assignment
	// Probs computes block node probabilities for the cost function
	// (default prob.Approximate).
	Probs ProbFn
	// MaxPairs bounds the candidate pair set for very wide interfaces; 0
	// means all pairs. When bounded, pairs with the largest cone overlap
	// are kept, since those are the ones whose phase interaction matters.
	MaxPairs int
	// Strategy, when not StrategyAuto, replaces the pairwise heuristic
	// with the selected search strategy (gray-code exhaustive, exact
	// branch-and-bound, annealing, or multi-restart greedy) run over
	// Scorer — or over Evaluate through a synthesize-and-score adapter
	// when no Scorer is set. The step trace is then empty. Initial seeds
	// the heuristic strategies' first start; the exact strategies ignore
	// it (their result does not depend on a starting point).
	Strategy SearchStrategy
	// SearchWorkers, SearchSeed, SearchRestarts, and AnnealSteps
	// parameterize the strategy path (see the SearchOptions fields of the
	// same names); all are ignored under StrategyAuto.
	SearchWorkers  int
	SearchSeed     int64
	SearchRestarts int
	AnnealSteps    int
	// Budget is the cancellation/budget token the search polls — per
	// candidate pair on the pairwise heuristic, at each strategy's own
	// bounded interval on the strategy path.
	Budget *budget.T
}

// scoreResult scores an already synthesized assignment under the
// options' objective (Scorer wins over Evaluate).
func (o *PowerOptions) scoreResult(res *Result) (float64, error) {
	if o.Scorer != nil {
		return o.Scorer.ScoreAssignment(res.Assignment)
	}
	return o.Evaluate(res)
}

// scoreCandidate scores a trial assignment; the Result is synthesized
// only on the evaluator path (nil otherwise — commit paths Apply lazily).
func (o *PowerOptions) scoreCandidate(n *logic.Network, asg Assignment) (float64, *Result, error) {
	if o.Scorer != nil {
		score, err := o.Scorer.ScoreAssignment(asg)
		return score, nil, err
	}
	res, err := Apply(n, asg)
	if err != nil {
		return 0, nil, err
	}
	score, err := o.Evaluate(res)
	return score, res, err
}

// MinPower runs the paper's power-driven phase assignment heuristic:
//
//  1. start from an arbitrary assignment;
//  2. for every candidate output pair compute the cost K of the four
//     phase combinations from cone sizes |D|, average cone probabilities
//     A (flipped per Property 4.1 for the inverted options) and the
//     overlap penalty O(i,j);
//  3. synthesize the minimum-cost combination and measure its power;
//  4. commit if power decreased, and in either case retire the pair;
//  5. repeat until no candidate pairs remain.
//
// It returns the final assignment, its synthesis, its measured power and
// the step trace.
func MinPower(n *logic.Network, opts PowerOptions) (Assignment, *Result, float64, []Step, error) {
	if len(opts.InputProbs) != n.NumInputs() {
		return nil, nil, 0, nil, fmt.Errorf("phase: %d input probs for %d inputs", len(opts.InputProbs), n.NumInputs())
	}
	if opts.Evaluate == nil && opts.Scorer == nil {
		return nil, nil, 0, nil, fmt.Errorf("phase: PowerOptions.Evaluate or Scorer is required")
	}
	if opts.Strategy != StrategyAuto {
		asg, res, score, err := Search(n, SearchOptions{
			Strategy:    opts.Strategy,
			Scorer:      opts.Scorer,
			Eval:        opts.Evaluate,
			Initial:     opts.Initial,
			Workers:     opts.SearchWorkers,
			Seed:        opts.SearchSeed,
			Restarts:    opts.SearchRestarts,
			AnnealSteps: opts.AnnealSteps,
			Budget:      opts.Budget,
		})
		return asg, res, score, nil, err
	}
	probFn := opts.Probs
	if probFn == nil {
		probFn = func(block *logic.Network, in []float64) ([]float64, error) {
			return prob.Approximate(block, in), nil
		}
	}
	k := n.NumOutputs()
	current := opts.Initial.Clone()
	if current == nil {
		current = AllPositive(k)
	}
	if len(current) != k {
		return nil, nil, 0, nil, fmt.Errorf("phase: initial assignment length %d, want %d", len(current), k)
	}
	res, err := Apply(n, current)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	power, err := opts.scoreResult(res)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	var trace []Step
	if k < 2 {
		return current, res, power, trace, nil
	}

	type pairKey struct{ i, j int }
	remaining := make(map[pairKey]bool)
	if opts.MaxPairs > 0 {
		for _, pk := range topOverlapPairs(res.Block, opts.MaxPairs) {
			remaining[pairKey{pk[0], pk[1]}] = true
		}
	} else {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				remaining[pairKey{i, j}] = true
			}
		}
	}

	// ranked lists pair/combo candidates for the *current* synthesis in
	// ascending K; recomputed after every commit (an uncommitted trial
	// leaves the circuit, hence every K, unchanged).
	type cand struct {
		i, j  int
		combo Combo
		k     float64
	}
	rank := func() ([]cand, error) {
		stats, err := blockConeStats(res, opts.InputProbs, probFn)
		if err != nil {
			return nil, err
		}
		cands := make([]cand, 0, len(remaining))
		//dominolint:nondet-ok candidates are fully ordered by the total (k,i,j,combo) sort below, so collection order cannot reach a result
		for pk := range remaining {
			for combo := RetainRetain; combo <= InvertInvert; combo++ {
				cands = append(cands, cand{pk.i, pk.j, combo, stats.k(pk.i, pk.j, combo)})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].k != cands[b].k {
				return cands[a].k < cands[b].k
			}
			// Deterministic tie-break.
			if cands[a].i != cands[b].i {
				return cands[a].i < cands[b].i
			}
			if cands[a].j != cands[b].j {
				return cands[a].j < cands[b].j
			}
			return cands[a].combo < cands[b].combo
		})
		return cands, nil
	}

	cands, err := rank()
	if err != nil {
		return nil, nil, 0, nil, err
	}
	pos := 0
	for len(remaining) > 0 {
		if err := opts.Budget.Err(); err != nil {
			return nil, nil, 0, nil, err
		}
		// Find the best-ranked candidate whose pair is still live.
		for pos < len(cands) && !remaining[pairKey{cands[pos].i, cands[pos].j}] {
			pos++
		}
		if pos >= len(cands) {
			break
		}
		c := cands[pos]
		delete(remaining, pairKey{c.i, c.j})

		candidate := current.Clone()
		if c.combo == InvertRetain || c.combo == InvertInvert {
			candidate[c.i] = !candidate[c.i]
		}
		if c.combo == RetainInvert || c.combo == InvertInvert {
			candidate[c.j] = !candidate[c.j]
		}
		step := Step{I: c.i, J: c.j, Combo: c.combo, K: c.k}
		if c.combo == RetainRetain {
			// Retaining both phases is a no-op synthesis; it can never
			// strictly decrease power, so record and move on.
			step.Power = power
			trace = append(trace, step)
			continue
		}
		cPower, cRes, err := opts.scoreCandidate(n, candidate)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		step.Power = cPower
		if cPower < power {
			step.Committed = true
			if cRes == nil {
				// Scored path: synthesize only now that we commit (the
				// re-rank below needs the block's cones).
				if cRes, err = Apply(n, candidate); err != nil {
					return nil, nil, 0, nil, err
				}
			}
			current, res, power = candidate, cRes, cPower
			// The circuit changed: probabilities, cones and overlaps are
			// stale. Re-rank the surviving pairs.
			cands, err = rank()
			if err != nil {
				return nil, nil, 0, nil, err
			}
			pos = 0
		}
		trace = append(trace, step)
	}
	return current, res, power, trace, nil
}

// coneStats caches per-output cone metrics of one synthesized block and
// evaluates the paper's cost function
//
//	K(i±, j±) = |Di|·Ai± + |Dj|·Aj± + 0.5·O(i,j)·(Ai± + Aj±)
//
// where A+ = A (retain) and A− = 1−A (invert, by Property 4.1).
type coneStats struct {
	size    []int       // |Di| per output
	avg     []float64   // Ai per output
	cones   [][]bool    // Di membership per output
	overlap [][]float64 // O(i,j), computed lazily
}

func blockConeStats(res *Result, inputProbs []float64, probFn ProbFn) (*coneStats, error) {
	block := res.Block
	probs, err := probFn(block, res.BlockInputProbs(inputProbs))
	if err != nil {
		return nil, err
	}
	nOut := block.NumOutputs()
	st := &coneStats{
		size:  make([]int, nOut),
		avg:   make([]float64, nOut),
		cones: block.OutputCones(),
	}
	for i, cone := range st.cones {
		sum, cnt := 0.0, 0
		for id, in := range cone {
			if in {
				sum += probs[id]
				cnt++
			}
		}
		st.size[i] = cnt
		if cnt > 0 {
			st.avg[i] = sum / float64(cnt)
		}
	}
	st.overlap = make([][]float64, nOut)
	return st, nil
}

func (st *coneStats) o(i, j int) float64 {
	if st.overlap[i] == nil {
		st.overlap[i] = make([]float64, len(st.size))
		for k := range st.overlap[i] {
			st.overlap[i][k] = -1
		}
	}
	if st.overlap[i][j] < 0 {
		st.overlap[i][j] = logic.ConeOverlap(st.cones[i], st.cones[j])
	}
	return st.overlap[i][j]
}

func (st *coneStats) k(i, j int, combo Combo) float64 {
	ai, aj := st.avg[i], st.avg[j]
	if combo == InvertRetain || combo == InvertInvert {
		ai = 1 - ai
	}
	if combo == RetainInvert || combo == InvertInvert {
		aj = 1 - aj
	}
	return float64(st.size[i])*ai + float64(st.size[j])*aj + 0.5*st.o(i, j)*(ai+aj)
}

// topOverlapPairs returns up to max output index pairs with the largest
// cone overlap in the given block.
func topOverlapPairs(block *logic.Network, max int) [][2]int {
	cones := block.OutputCones()
	type scored struct {
		p [2]int
		o float64
	}
	var all []scored
	for i := 0; i < len(cones); i++ {
		for j := i + 1; j < len(cones); j++ {
			all = append(all, scored{[2]int{i, j}, logic.ConeOverlap(cones[i], cones[j])})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].o != all[b].o {
			return all[a].o > all[b].o
		}
		if all[a].p[0] != all[b].p[0] {
			return all[a].p[0] < all[b].p[0]
		}
		return all[a].p[1] < all[b].p[1]
	})
	if len(all) > max {
		all = all[:max]
	}
	out := make([][2]int, len(all))
	for i, s := range all {
		out[i] = s.p
	}
	return out
}
