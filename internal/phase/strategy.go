// Pluggable search strategies.
//
// PR 3 reduced the cost of *scoring* one phase assignment (the cone
// table); this layer reduces the cost of *exploring* the assignment
// space. Every strategy is driven through one pair of abstractions:
//
//   - ScoreState: a mutable scoring position where Flip(bit) reprices
//     only what the flipped phase bit touches (O(Δ) on the cone table's
//     state) and always returns a score bit-identical to the owning
//     scorer's ScoreAssignment — the incremental contract that makes a
//     strategy's outcome a pure function of the visited assignments,
//     independent of flip path, shard geometry, or worker count.
//   - PrefixBound: an admissible lower bound over all completions of a
//     partially decided assignment, used by the exact branch-and-bound.
//
// Scorers advertise support via StateScorer / BoundScorer (power's
// ConeTable implements both); plain AssignmentScorers and raw
// Evaluators are adapted via full-rescore shims so every strategy works
// with every objective, merely without the O(Δ) fast path.
package phase

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// SearchStrategy selects how a phase search explores the assignment
// space. The zero value keeps each entry point's historical behavior.
type SearchStrategy int

// Strategies.
const (
	// StrategyAuto is the historical dispatch: exhaustive search up to
	// SearchOptions.ExhaustiveLimit outputs, multi-restart greedy descent
	// beyond (and, in PowerOptions, the paper's pairwise heuristic).
	StrategyAuto SearchStrategy = iota
	// StrategyExhaustive enumerates all 2^k assignments in gray-code
	// order so each candidate costs one Flip instead of a full rescore.
	// Exact; usable up to 62 outputs in principle, 2^k time in practice.
	StrategyExhaustive
	// StrategyBranchBound is an exact best-assignment search pruning with
	// the scorer's admissible prefix bound. It returns the bit-identical
	// (assignment, score) of StrategyExhaustive at any worker count and
	// has no 2^k mask-arithmetic ceiling, so it reaches well past k = 20
	// whenever the bound bites. Requires a BoundScorer.
	StrategyBranchBound
	// StrategyAnneal is seeded simulated annealing over single-bit flips
	// (multi-chain, greedy-polished). Deterministic for a fixed
	// (Seed, Restarts, AnnealSteps); works at any k.
	StrategyAnneal
	// StrategyGreedy is multi-restart first-improvement descent over
	// single-bit flips — the historical fallback, now O(Δ) per trial
	// flip on an incremental scorer.
	StrategyGreedy
)

// String names the strategy as the CLI flags spell it.
func (s SearchStrategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyBranchBound:
		return "bb"
	case StrategyAnneal:
		return "anneal"
	case StrategyGreedy:
		return "greedy"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy resolves a CLI spelling to a strategy.
func ParseStrategy(name string) (SearchStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return StrategyAuto, nil
	case "exhaustive", "gray", "ex":
		return StrategyExhaustive, nil
	case "bb", "branchbound", "branch-and-bound", "bnb":
		return StrategyBranchBound, nil
	case "anneal", "sa", "annealing":
		return StrategyAnneal, nil
	case "greedy", "descent":
		return StrategyGreedy, nil
	}
	return 0, fmt.Errorf("phase: unknown search strategy %q (want auto, exhaustive, bb, anneal, or greedy)", name)
}

// ScoreState is a mutable scoring position over one scorer's precomputed
// state. Strategies own at most one state per goroutine; states are not
// safe for concurrent use.
//
// Contract: after any Set/Flip sequence, Score() (and each Flip return)
// is bit-identical to ScoreAssignment of the current assignment — the
// incremental-score determinism contract property-tested in
// internal/power. The cone-table state meets it by keeping the total in
// an exact accumulator, so the rounded score is independent of the path
// that reached the assignment.
type ScoreState interface {
	// Set loads a full assignment and returns its score.
	Set(asg Assignment) (float64, error)
	// Flip toggles output bit's phase and returns the updated score. On
	// the cone-table state this reprices only the signature groups whose
	// demand mentions bit — O(groups touching bit) — and cannot fail;
	// rescoring adapters record failures in Err.
	Flip(bit int) float64
	// Score returns the current total.
	Score() float64
	// Err returns the first error any Flip encountered (always nil for
	// the cone-table state). Strategies check it at descent boundaries.
	Err() error
}

// StateScorer is an AssignmentScorer that can mint incremental
// ScoreStates. NewState must be safe to call concurrently (the Fork
// contract); the states it returns are independent.
type StateScorer interface {
	AssignmentScorer
	NewState() ScoreState
}

// PrefixBound tracks an admissible lower bound while phase bits are
// fixed one at a time in descending bit order (bit k−1 first — the
// order that makes depth-first leaves appear in ascending mask order).
// Decide fixes the next undecided bit; at full depth the bound IS the
// exact score of the completed assignment, bit-identical to
// ScoreAssignment. A PrefixBound is single-goroutine state.
type PrefixBound interface {
	// Decide fixes the next bit (false = positive phase, true =
	// negative) and returns a lower bound on the score of every
	// completion of the decided prefix.
	Decide(neg bool) float64
	// Undo reverts the most recent Decide.
	Undo()
}

// BoundScorer is an AssignmentScorer whose precomputed state supports
// admissible prefix bounds — what StrategyBranchBound requires.
// NewBound must be safe to call concurrently.
type BoundScorer interface {
	AssignmentScorer
	NewBound() PrefixBound
}

// evalScorer adapts a synthesize-and-evaluate objective into an
// AssignmentScorer so every strategy can run without a precomputed
// scorer (each ScoreAssignment pays a full Apply + eval).
type evalScorer struct {
	n    *logic.Network
	eval Evaluator
}

func (e *evalScorer) ScoreAssignment(asg Assignment) (float64, error) {
	res, err := Apply(e.n, asg)
	if err != nil {
		return 0, err
	}
	return e.eval(res)
}

// Fork shares the network and evaluator; the stock evaluators are safe
// for concurrent use on distinct Results (see package docs), which is
// exactly how forked scorers call them.
func (e *evalScorer) Fork() AssignmentScorer { return &evalScorer{n: e.n, eval: e.eval} }

// rescoreState adapts any AssignmentScorer to the ScoreState interface
// by fully rescoring after every flip — correct for every scorer,
// without the O(Δ) fast path. One remembered score makes the
// flip-then-revert idiom every strategy uses cost a single evaluation,
// matching the historical greedy descent's free boolean revert.
type rescoreState struct {
	sc        AssignmentScorer
	asg       Assignment
	score     float64
	prevBit   int // bit of the immediately preceding Flip, -1 = none
	prevScore float64
	err       error
}

func (r *rescoreState) Set(asg Assignment) (float64, error) {
	r.asg = append(r.asg[:0], asg...)
	r.prevBit = -1
	s, err := r.sc.ScoreAssignment(r.asg)
	if err != nil && r.err == nil {
		r.err = err
	}
	r.score = s
	// A Flip failure stays sticky across Set — Err reports the FIRST
	// error so a strategy's end-of-descent check cannot miss a failed
	// evaluation that steered the walk.
	return s, err
}

func (r *rescoreState) Flip(bit int) float64 {
	r.asg[bit] = !r.asg[bit]
	if bit == r.prevBit {
		// Inverse of the immediately preceding flip: the remembered score
		// is exactly what rescoring would return (ScoreAssignment is a
		// pure function), so restore it for free.
		r.score, r.prevBit = r.prevScore, -1
		return r.score
	}
	prev := r.score
	s, err := r.sc.ScoreAssignment(r.asg)
	if err != nil && r.err == nil {
		r.err = err
	}
	r.prevBit, r.prevScore = bit, prev
	r.score = s
	return s
}

func (r *rescoreState) Score() float64 { return r.score }
func (r *rescoreState) Err() error     { return r.err }

// searchScorer resolves the options' objective into an AssignmentScorer:
// the configured Scorer, or the Eval adapter.
func (o *SearchOptions) searchScorer(n *logic.Network) AssignmentScorer {
	if o.Scorer != nil {
		return o.Scorer
	}
	return &evalScorer{n: n, eval: o.Eval}
}

// newState mints an incremental state: the scorer's native state when
// it has one (NewState is itself the concurrency-safe mint), a
// rescoring adapter over a fork otherwise. Call with the shared scorer,
// once per goroutine.
func newState(sc AssignmentScorer) ScoreState {
	if ss, ok := sc.(StateScorer); ok {
		return ss.NewState()
	}
	return &rescoreState{sc: sc.Fork(), prevBit: -1}
}

// checkMaskWidth guards every 2^k enumeration: int mask arithmetic
// (1 << k, gray counters, tie-break masks) holds at most 62 phase bits,
// so wider interfaces get an explicit error instead of a silent
// overflow/wrap.
func checkMaskWidth(k int) error {
	if k >= 63 {
		return fmt.Errorf("phase: %d outputs is too large for exhaustive enumeration (int mask arithmetic holds at most 62 phase bits); use the branch-and-bound, annealing, or greedy strategies", k)
	}
	return nil
}

// Search runs the configured strategy and returns the chosen assignment
// with its synthesized Result and score. With a Scorer, only the winning
// assignment is ever synthesized; Eval-only objectives pay a full
// Apply + eval per candidate through the rescoring adapter (fine for
// greedy, expensive for annealing's proposal counts). StrategyAuto
// reproduces MinArea's historical dispatch; the other strategies run
// unconditionally.
//
// Determinism: every strategy's (assignment, score) is bit-identical
// for any Workers value. Exhaustive and branch-and-bound additionally
// return the bit-identical winner of the ascending-mask reference scan
// (ExhaustiveScored) under the shared "lowest score, then lowest mask"
// total order.
func Search(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	opts.defaults()
	if opts.Initial != nil && len(opts.Initial) != n.NumOutputs() {
		return nil, nil, 0, fmt.Errorf("phase: initial assignment length %d, want %d", len(opts.Initial), n.NumOutputs())
	}
	switch opts.Strategy {
	case StrategyAuto:
		if n.NumOutputs() <= opts.ExhaustiveLimit {
			if opts.Scorer != nil {
				if _, ok := opts.Scorer.(StateScorer); ok {
					return grayExhaustive(n, opts)
				}
				return exhaustiveScored(n, opts.Scorer, opts.Workers, opts.Budget)
			}
			return exhaustiveParallel(n, opts.Eval, opts.Workers, opts.Budget)
		}
		return greedySearch(n, opts)
	case StrategyExhaustive:
		if opts.Scorer == nil {
			// Without a scorer the gray walk has no incremental state to
			// exploit; the sharded ascending scan is the same winner.
			return exhaustiveParallel(n, opts.Eval, opts.Workers, opts.Budget)
		}
		return grayExhaustive(n, opts)
	case StrategyBranchBound:
		return branchBoundSearch(n, opts)
	case StrategyAnneal:
		return annealSearch(n, opts)
	case StrategyGreedy:
		return greedySearch(n, opts)
	}
	return nil, nil, 0, fmt.Errorf("phase: unknown search strategy %d", int(opts.Strategy))
}
