package phase_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
)

// twinTable builds a prepared twin and its cone table.
func twinTable(t *testing.T, p gen.Params) (*logic.Network, *power.ConeTable, []float64) {
	t.Helper()
	net := gen.Generate(p).Optimize()
	probs := make([]float64, net.NumInputs())
	for i := range probs {
		probs[i] = 0.15 + 0.7*float64(i%7)/6
	}
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{Method: power.Approximate})
	if err != nil {
		t.Fatalf("NewConeTable: %v", err)
	}
	return net, table, probs
}

// exhaustibleTwins is the k ≤ 12 matrix of the branch-and-bound
// exactness satellite.
var exhaustibleTwins = []gen.Params{
	{Name: "bb4", Inputs: 8, Outputs: 4, Gates: 40, Seed: 211, OrProb: 0.6},
	{Name: "bb6", Inputs: 10, Outputs: 6, Gates: 70, Seed: 223, OrProb: 0.45},
	{Name: "bb8", Inputs: 12, Outputs: 8, Gates: 90, Seed: 227, OrProb: 0.55},
	{Name: "bb10", Inputs: 14, Outputs: 10, Gates: 110, Seed: 229, OrProb: 0.5},
	{Name: "bb12", Inputs: 18, Outputs: 12, Gates: 130, Seed: 233, OrProb: 0.6},
}

// TestBranchBoundAndGrayMatchExhaustiveScored is the exactness
// satellite: for every k ≤ 12 twin and workers ∈ {1, 2, 8}, both the
// gray-code exhaustive strategy and branch-and-bound return the
// bit-identical (assignment, score) of the ascending-mask reference
// scan (ExhaustiveScored).
func TestBranchBoundAndGrayMatchExhaustiveScored(t *testing.T) {
	for _, p := range exhaustibleTwins {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			net, table, _ := twinTable(t, p)
			refAsg, _, refScore, err := phase.ExhaustiveScored(net, table, 1)
			if err != nil {
				t.Fatalf("ExhaustiveScored: %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, strat := range []phase.SearchStrategy{phase.StrategyExhaustive, phase.StrategyBranchBound} {
					asg, res, score, err := phase.Search(net, phase.SearchOptions{
						Strategy: strat,
						Scorer:   table,
						Workers:  workers,
					})
					if err != nil {
						t.Fatalf("%v workers=%d: %v", strat, workers, err)
					}
					if score != refScore {
						t.Errorf("%v workers=%d: score %v != reference %v (bit-identical contract)",
							strat, workers, score, refScore)
					}
					if !reflect.DeepEqual(asg, refAsg) {
						t.Errorf("%v workers=%d: assignment %s != reference %s", strat, workers, asg, refAsg)
					}
					if res == nil || !reflect.DeepEqual(res.Assignment, asg) {
						t.Errorf("%v workers=%d: result/assignment mismatch", strat, workers)
					}
				}
			}
		})
	}
}

// TestSearchMaskWidthGuard is the overflow satellite: enumeration-based
// searches must reject k ≥ 63 with an explicit error instead of
// silently wrapping 1 << k, while the mask-free strategies still run.
func TestSearchMaskWidthGuard(t *testing.T) {
	n := logic.New("wide63")
	a := n.AddInput("a")
	b := n.AddInput("b")
	for i := 0; i < 63; i++ {
		g := n.AddOr(a, b)
		if i%2 == 0 {
			g = n.AddAnd(g, a)
		}
		n.MarkOutput(fmt.Sprintf("o%02d", i), g)
	}
	if _, _, _, err := phase.ExhaustiveParallel(n, phase.AreaEvaluator, 1); err == nil {
		t.Fatal("ExhaustiveParallel accepted 63 outputs")
	} else if !strings.Contains(err.Error(), "62 phase bits") {
		t.Fatalf("ExhaustiveParallel error %q does not name the mask-width limit", err)
	}
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = 0.5
	}
	table, err := power.NewConeTable(n, domino.DefaultLibrary(), probs, power.Options{Method: power.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := phase.ExhaustiveScored(n, table, 1); err == nil {
		t.Fatal("ExhaustiveScored accepted 63 outputs")
	} else if !strings.Contains(err.Error(), "62 phase bits") {
		t.Fatalf("ExhaustiveScored error %q does not name the mask-width limit", err)
	}
	if _, _, _, err := phase.Search(n, phase.SearchOptions{Strategy: phase.StrategyExhaustive, Scorer: table}); err == nil {
		t.Fatal("gray-code exhaustive accepted 63 outputs")
	} else if !strings.Contains(err.Error(), "62 phase bits") {
		t.Fatalf("gray error %q does not name the mask-width limit", err)
	}
	// The mask-free heuristic strategies handle the same width fine
	// (branch-and-bound is also mask-free, but exact: its worst case is
	// exponential, so it is exercised at enumeration-checkable widths in
	// the tests above instead).
	for _, strat := range []phase.SearchStrategy{phase.StrategyGreedy, phase.StrategyAnneal} {
		asg, _, _, err := phase.Search(n, phase.SearchOptions{
			Strategy: strat, Scorer: table, AnnealSteps: 500, Restarts: 1,
		})
		if err != nil {
			t.Errorf("%v at 63 outputs: %v", strat, err)
		} else if len(asg) != 63 {
			t.Errorf("%v returned %d-output assignment", strat, len(asg))
		}
	}
}

// TestAnnealDeterministicAndWorkerInvariant pins the annealing
// determinism contract: a fixed (Seed, Restarts, AnnealSteps) yields one
// (assignment, score) at every worker count, never worse than the
// all-positive start.
func TestAnnealDeterministicAndWorkerInvariant(t *testing.T) {
	net, table, _ := twinTable(t, gen.Params{Name: "an16", Inputs: 22, Outputs: 16, Gates: 170, Seed: 307, OrProb: 0.6})
	base, err := table.ScoreAssignment(phase.AllPositive(net.NumOutputs()))
	if err != nil {
		t.Fatal(err)
	}
	var wantAsg phase.Assignment
	var wantScore float64
	for _, workers := range []int{1, 2, 8} {
		asg, _, score, err := phase.Search(net, phase.SearchOptions{
			Strategy: phase.StrategyAnneal,
			Scorer:   table,
			Workers:  workers,
			Seed:     42,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if score > base {
			t.Errorf("workers=%d: anneal score %v worse than all-positive %v", workers, score, base)
		}
		if wantAsg == nil {
			wantAsg, wantScore = asg, score
			continue
		}
		if !reflect.DeepEqual(asg, wantAsg) || score != wantScore {
			t.Errorf("workers=%d: (%s, %v) != (%s, %v)", workers, asg, score, wantAsg, wantScore)
		}
	}
	// A different seed is allowed to land elsewhere, but must still be
	// deterministic for itself.
	a1, _, s1, err := phase.Search(net, phase.SearchOptions{Strategy: phase.StrategyAnneal, Scorer: table, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a2, _, s2, err := phase.Search(net, phase.SearchOptions{Strategy: phase.StrategyAnneal, Scorer: table, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) || s1 != s2 {
		t.Errorf("same-seed anneal runs diverged: (%s, %v) != (%s, %v)", a1, s1, a2, s2)
	}
}

// TestStrategiesWithoutScorer drives every strategy through the
// Eval-adapter fallback on a small network: no incremental scorer, but
// the searches must still run and agree with the exhaustive optimum
// where they are exact.
func TestStrategiesWithoutScorer(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "ev5", Inputs: 9, Outputs: 5, Gates: 50, Seed: 401, OrProb: 0.55}).Optimize()
	refAsg, _, refScore, err := phase.ExhaustiveParallel(net, phase.AreaEvaluator, 1)
	if err != nil {
		t.Fatal(err)
	}
	asg, _, score, err := phase.Search(net, phase.SearchOptions{Strategy: phase.StrategyExhaustive})
	if err != nil {
		t.Fatalf("exhaustive fallback: %v", err)
	}
	if score != refScore || !reflect.DeepEqual(asg, refAsg) {
		t.Errorf("exhaustive fallback (%s, %v) != (%s, %v)", asg, score, refAsg, refScore)
	}
	for _, strat := range []phase.SearchStrategy{phase.StrategyGreedy, phase.StrategyAnneal} {
		asg, res, score, err := phase.Search(net, phase.SearchOptions{
			Strategy: strat, AnnealSteps: 300, Restarts: 2, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%v fallback: %v", strat, err)
		}
		if res == nil || len(asg) != net.NumOutputs() {
			t.Fatalf("%v fallback returned malformed result", strat)
		}
		if score > refScore && score-refScore > refScore {
			t.Errorf("%v fallback score %v implausibly worse than optimum %v", strat, score, refScore)
		}
	}
	// Branch-and-bound genuinely needs prefix bounds.
	if _, _, _, err := phase.Search(net, phase.SearchOptions{Strategy: phase.StrategyBranchBound}); err == nil {
		t.Error("branch-and-bound accepted a boundless objective")
	}
}

// TestMinPowerStrategyDelegation: PowerOptions.Strategy routes MinPower
// through the strategy path, whose exact searches must agree with the
// reference scan.
func TestMinPowerStrategyDelegation(t *testing.T) {
	net, table, probs := twinTable(t, gen.Params{Name: "mpd", Inputs: 12, Outputs: 8, Gates: 90, Seed: 409, OrProb: 0.5})
	refAsg, _, refScore, err := phase.ExhaustiveScored(net, table, 1)
	if err != nil {
		t.Fatal(err)
	}
	asg, res, score, trace, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Scorer:     table,
		Strategy:   phase.StrategyBranchBound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if score != refScore || !reflect.DeepEqual(asg, refAsg) {
		t.Errorf("delegated MinPower (%s, %v) != reference (%s, %v)", asg, score, refAsg, refScore)
	}
	if res == nil || len(trace) != 0 {
		t.Errorf("delegated MinPower: res=%v trace=%v", res, trace)
	}
}

// TestAnnealBeatsMinPowerOnWide32 is the ISSUE 4 acceptance gate: on
// the 32-output twin — where 2^32 enumeration is infeasible — seeded
// annealing over the cone table must strictly beat the paper's pairwise
// MinPower heuristic.
func TestAnnealBeatsMinPowerOnWide32(t *testing.T) {
	c := gen.Wide32()
	net := c.Net.Optimize()
	probs := make([]float64, net.NumInputs())
	for i := range probs {
		probs[i] = 0.5
	}
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, mpScore, _, err := phase.MinPower(net, phase.PowerOptions{InputProbs: probs, Scorer: table})
	if err != nil {
		t.Fatal(err)
	}
	_, _, aScore, err := phase.Search(net, phase.SearchOptions{
		Strategy: phase.StrategyAnneal,
		Scorer:   table,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(aScore < mpScore) {
		t.Errorf("annealing score %v does not strictly beat the MinPower heuristic %v on wide32", aScore, mpScore)
	}
}

// TestStrategyInitialStart pins that PowerOptions.Initial /
// SearchOptions.Initial seeds the heuristic strategies' first start.
// The twin is chosen so default greedy (all-positive + seed-0 restarts)
// misses the exhaustive optimum; seeded with the optimum — a fixed
// point of first-improvement descent, and the earliest start, so it
// wins every tie — greedy must return it bit-identically.
func TestStrategyInitialStart(t *testing.T) {
	net, table, probs := twinTable(t, gen.Params{Name: "init8", Inputs: 12, Outputs: 8, Gates: 90, Seed: 433, OrProb: 0.5})
	optAsg, _, optScore, err := phase.ExhaustiveScored(net, table, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, defScore, err := phase.Search(net, phase.SearchOptions{
		Strategy: phase.StrategyGreedy, Scorer: table, Seed: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if defScore <= optScore {
		t.Fatalf("twin no longer separates greedy (%v) from the optimum (%v); pick another seed", defScore, optScore)
	}
	asg, _, score, _, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Scorer:     table,
		Strategy:   phase.StrategyGreedy,
		Initial:    optAsg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if score != optScore || !reflect.DeepEqual(asg, optAsg) {
		t.Errorf("Initial-seeded greedy (%s, %v) != optimum (%s, %v): Initial was ignored",
			asg, score, optAsg, optScore)
	}
}

// TestParseStrategyRoundTrip covers the CLI spellings.
func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []phase.SearchStrategy{
		phase.StrategyAuto, phase.StrategyExhaustive, phase.StrategyBranchBound,
		phase.StrategyAnneal, phase.StrategyGreedy,
	} {
		got, err := phase.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := phase.ParseStrategy("quantum"); err == nil {
		t.Error("ParseStrategy accepted nonsense")
	}
}

// TestRescoreStateStickyError pins the adapter's Err contract: a Flip
// failure stays visible through a later successful Set.
func TestRescoreStateStickyError(t *testing.T) {
	n := logic.New("sticky")
	a, b := n.AddInput("a"), n.AddInput("b")
	n.MarkOutput("o1", n.AddAnd(a, b))
	n.MarkOutput("o2", n.AddOr(a, b))
	calls := 0
	eval := func(r *phase.Result) (float64, error) {
		calls++
		if r.Assignment[0] && !r.Assignment[1] {
			return 0, fmt.Errorf("injected failure")
		}
		return float64(calls), nil
	}
	// Greedy with an evaluator that fails on one assignment must surface
	// the failure even though later evaluations succeed.
	_, _, _, err := phase.Search(n, phase.SearchOptions{
		Strategy: phase.StrategyGreedy, Eval: eval, Restarts: 1, Seed: 3,
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("failed evaluation was swallowed: err = %v", err)
	}
}

// TestSearchRejectsWrongLengthInitial pins that a mismatched Initial is
// an error on the strategy path, matching the StrategyAuto MinPower
// validation, rather than being silently replaced by all-positive.
func TestSearchRejectsWrongLengthInitial(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "wl", Inputs: 8, Outputs: 4, Gates: 40, Seed: 443, OrProb: 0.5}).Optimize()
	for _, strat := range []phase.SearchStrategy{phase.StrategyGreedy, phase.StrategyAnneal} {
		_, _, _, err := phase.Search(net, phase.SearchOptions{
			Strategy: strat, Initial: phase.AllPositive(net.NumOutputs() + 1),
		})
		if err == nil || !strings.Contains(err.Error(), "initial assignment length") {
			t.Errorf("%v accepted a wrong-length Initial: err = %v", strat, err)
		}
	}
}
