package phase

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/par"
)

// Evaluator scores a synthesized block; lower is better. MinArea uses a
// cell-count evaluator, MinPower a power estimate.
type Evaluator func(*Result) (float64, error)

// AreaEvaluator scores a result by block gate count plus boundary
// inverters — the standard-cell count proxy used for the "MA" baseline.
func AreaEvaluator(r *Result) (float64, error) {
	return float64(r.Block.GateCount() + r.InputInverterCount() + r.OutputInverterCount()), nil
}

// maskAssignment expands mask bit i into the phase of output i.
func maskAssignment(mask, k int) Assignment {
	asg := make(Assignment, k)
	for i := 0; i < k; i++ {
		asg[i] = mask&(1<<uint(i)) != 0
	}
	return asg
}

// candidate is one scored assignment; Mask is its position in the
// enumeration order and the tie-break key (lowest mask wins).
type candidate struct {
	Mask  int
	Asg   Assignment
	Res   *Result
	Score float64
}

// better reports whether c beats incumbent under the search's total
// order: strictly lower score, or equal score at a lower mask. A nil
// incumbent always loses.
func (c *candidate) better(incumbent *candidate) bool {
	if incumbent == nil {
		return true
	}
	if c.Score != incumbent.Score {
		return c.Score < incumbent.Score
	}
	return c.Mask < incumbent.Mask
}

// scanMasks evaluates masks [lo, hi) in ascending order and returns the
// best candidate of the range. ctx aborts the scan between masks.
func scanMasks(ctx context.Context, n *logic.Network, eval Evaluator, k, lo, hi int) (*candidate, error) {
	var best *candidate
	for mask := lo; mask < hi; mask++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		asg := maskAssignment(mask, k)
		res, err := Apply(n, asg)
		if err != nil {
			return nil, err
		}
		score, err := eval(res)
		if err != nil {
			return nil, err
		}
		c := &candidate{Mask: mask, Asg: asg, Res: res, Score: score}
		if c.better(best) {
			best = c
		}
	}
	return best, nil
}

// Exhaustive tries every one of the 2^k phase assignments (k = number of
// outputs, at most 20) and returns the best assignment under eval,
// together with its Result and score. Ties are broken toward the lowest
// mask (the assignment earliest in enumeration order).
func Exhaustive(n *logic.Network, eval Evaluator) (Assignment, *Result, float64, error) {
	return ExhaustiveParallel(n, eval, 1)
}

// ExhaustiveParallel is Exhaustive with the 2^k assignment space sharded
// across a bounded worker pool. The evaluator must be safe for concurrent
// use on distinct Results (the stock AreaEvaluator and power.Evaluator
// are: each call builds its own block and probability state).
//
// Determinism contract: the returned (assignment, score) is bit-identical
// to Exhaustive's for every worker count — shards cover contiguous mask
// ranges, each range scans in ascending mask order, and the per-shard
// winners are reduced in shard order under the same "lowest mask wins on
// equal score" rule, so scheduling can never change the outcome.
func ExhaustiveParallel(n *logic.Network, eval Evaluator, workers int) (Assignment, *Result, float64, error) {
	k := n.NumOutputs()
	if k > 20 {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search over %d outputs is infeasible", k)
	}
	total := 1 << uint(k)
	w := par.Workers(workers)
	// Oversplit so uneven Apply/eval costs load-balance; the shard
	// geometry affects wall-clock only, never the reduced result.
	ranges := par.SplitRange(total, w*4)
	bests, err := par.Map(context.Background(), len(ranges), w,
		func(ctx context.Context, s int) (*candidate, error) {
			return scanMasks(ctx, n, eval, k, ranges[s][0], ranges[s][1])
		})
	if err != nil {
		return nil, nil, 0, err
	}
	var best *candidate
	for _, c := range bests {
		if c != nil && c.better(best) {
			best = c
		}
	}
	if best == nil {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search produced no candidate")
	}
	return best.Asg, best.Res, best.Score, nil
}

// SearchOptions configures MinArea's search.
type SearchOptions struct {
	// ExhaustiveLimit: exhaustive search is used when the output count is
	// at most this (default 12).
	ExhaustiveLimit int
	// Restarts is the number of random restarts for the greedy descent
	// used beyond the exhaustive limit (default 3, plus the all-positive
	// start).
	Restarts int
	// Seed drives the random restarts.
	Seed int64
	// Eval overrides the objective (default AreaEvaluator).
	Eval Evaluator
	// Workers bounds the search's worker pool (0 = GOMAXPROCS, 1 =
	// sequential). The result is identical for every worker count; Eval
	// must be safe for concurrent use on distinct Results when > 1.
	Workers int
}

func (o *SearchOptions) defaults() {
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 12
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Eval == nil {
		o.Eval = AreaEvaluator
	}
}

// MinArea finds a phase assignment minimizing cell count, the baseline
// "MA" flow of the paper (Puri et al. [15] report an exact algorithm; we
// use exhaustive search where feasible — it is exact — and greedy descent
// with restarts beyond that).
func MinArea(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	opts.defaults()
	if n.NumOutputs() <= opts.ExhaustiveLimit {
		return ExhaustiveParallel(n, opts.Eval, opts.Workers)
	}
	return greedyDescent(n, opts)
}

// greedyDescent performs first-improvement hill climbing over single
// output flips, restarted from random assignments. The starts (the
// all-positive assignment plus opts.Restarts random draws from the seeded
// rng) are generated up front in a fixed order and descended concurrently
// on the option's worker pool; the winner is reduced in start order with
// earlier starts winning ties, so the outcome matches a sequential run of
// the same starts exactly.
func greedyDescent(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	k := n.NumOutputs()

	descend := func(asg Assignment) (Assignment, *Result, float64, error) {
		res, err := Apply(n, asg)
		if err != nil {
			return nil, nil, 0, err
		}
		score, err := opts.Eval(res)
		if err != nil {
			return nil, nil, 0, err
		}
		improved := true
		for improved {
			improved = false
			for i := 0; i < k; i++ {
				asg[i] = !asg[i]
				cand, err := Apply(n, asg)
				if err != nil {
					return nil, nil, 0, err
				}
				cScore, err := opts.Eval(cand)
				if err != nil {
					return nil, nil, 0, err
				}
				if cScore < score {
					score, res = cScore, cand
					improved = true
				} else {
					asg[i] = !asg[i] // revert
				}
			}
		}
		return asg, res, score, nil
	}

	starts := make([]Assignment, 0, opts.Restarts+1)
	starts = append(starts, AllPositive(k))
	for restart := 0; restart < opts.Restarts; restart++ {
		asg := make(Assignment, k)
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		starts = append(starts, asg)
	}

	type outcome struct {
		asg   Assignment
		res   *Result
		score float64
	}
	outcomes, err := par.Map(context.Background(), len(starts), opts.Workers,
		func(_ context.Context, s int) (outcome, error) {
			asg, res, score, err := descend(starts[s])
			return outcome{asg, res, score}, err
		})
	if err != nil {
		return nil, nil, 0, err
	}
	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.score < best.score {
			best = o
		}
	}
	return best.asg, best.res, best.score, nil
}
