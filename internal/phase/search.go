package phase

import (
	"context"
	"fmt"

	"repro/internal/budget"
	"repro/internal/logic"
	"repro/internal/par"
)

// pollCancel is the searches' shared cancellation poll: the shard
// context (par.Map's first-error propagation) plus the caller's budget
// token (per-circuit timeouts, client disconnects), each one cheap
// atomic check. Every strategy polls it at a bounded interval — per
// mask in the scans, per subtree batch in branch-and-bound, per sweep
// or proposal batch in the heuristics.
func pollCancel(ctx context.Context, tok *budget.T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return tok.Err()
}

// Evaluator scores a synthesized block; lower is better. MinArea uses a
// cell-count evaluator, MinPower a power estimate.
type Evaluator func(*Result) (float64, error)

// AssignmentScorer scores a phase assignment directly — without
// synthesizing a Result — from state precomputed once per network (see
// power.ConeTable for the power instance). Searches that accept one call
// Apply only on the assignments they keep, which is what turns the
// 2^k·(Apply+Estimate) exhaustive search into 2k cone evaluations plus
// cheap arithmetic per mask.
//
// ScoreAssignment must be a pure function of the assignment: the same
// assignment always yields the bit-identical score, regardless of call
// order — that is what keeps sharded searches deterministic. A scorer
// value is not required to be safe for concurrent use; Fork returns an
// independently usable scorer sharing the same immutable precomputed
// state (Fork itself must be safe to call concurrently).
type AssignmentScorer interface {
	ScoreAssignment(asg Assignment) (float64, error)
	Fork() AssignmentScorer
}

// AreaEvaluator scores a result by block gate count plus boundary
// inverters — the standard-cell count proxy used for the "MA" baseline.
func AreaEvaluator(r *Result) (float64, error) {
	return float64(r.Block.GateCount() + r.InputInverterCount() + r.OutputInverterCount()), nil
}

// SetMask expands mask bit i into the phase of output i, reusing the
// receiver — the per-mask Assignment allocation this avoids used to
// dominate scored-search shard time. Masks hold at most 62 phase bits
// (see the enumeration guard in the exhaustive searches).
func (a Assignment) SetMask(mask int) {
	for i := range a {
		a[i] = mask&(1<<uint(i)) != 0
	}
}

// maskAssignment expands mask bit i into the phase of output i.
func maskAssignment(mask, k int) Assignment {
	asg := make(Assignment, k)
	asg.SetMask(mask)
	return asg
}

// candidate is one scored assignment; Mask is its position in the
// enumeration order and the tie-break key (lowest mask wins).
type candidate struct {
	Mask  int
	Asg   Assignment
	Res   *Result
	Score float64
}

// better reports whether c beats incumbent under the search's total
// order: strictly lower score, or equal score at a lower mask. A nil
// incumbent always loses.
func (c *candidate) better(incumbent *candidate) bool {
	if incumbent == nil {
		return true
	}
	if c.Score != incumbent.Score {
		return c.Score < incumbent.Score
	}
	return c.Mask < incumbent.Mask
}

// scanMasks evaluates masks [lo, hi) in ascending order and returns the
// best candidate of the range. ctx aborts the scan between masks. One
// assignment buffer serves the whole range (Apply clones it into every
// Result it returns).
func scanMasks(ctx context.Context, n *logic.Network, eval Evaluator, k, lo, hi int, tok *budget.T) (*candidate, error) {
	var best *candidate
	buf := make(Assignment, k)
	for mask := lo; mask < hi; mask++ {
		if err := pollCancel(ctx, tok); err != nil {
			return nil, err
		}
		buf.SetMask(mask)
		res, err := Apply(n, buf)
		if err != nil {
			return nil, err
		}
		score, err := eval(res)
		if err != nil {
			return nil, err
		}
		c := &candidate{Mask: mask, Asg: res.Assignment, Res: res, Score: score}
		if c.better(best) {
			best = c
		}
	}
	return best, nil
}

// Exhaustive tries every one of the 2^k phase assignments (k = number of
// outputs, at most 20) and returns the best assignment under eval,
// together with its Result and score. Ties are broken toward the lowest
// mask (the assignment earliest in enumeration order).
func Exhaustive(n *logic.Network, eval Evaluator) (Assignment, *Result, float64, error) {
	return ExhaustiveParallel(n, eval, 1)
}

// ExhaustiveParallel is Exhaustive with the 2^k assignment space sharded
// across a bounded worker pool. The evaluator must be safe for concurrent
// use on distinct Results (the stock AreaEvaluator and power.Evaluator
// are: each call builds its own block and probability state).
//
// Determinism contract: the returned (assignment, score) is bit-identical
// to Exhaustive's for every worker count — shards cover contiguous mask
// ranges, each range scans in ascending mask order, and the per-shard
// winners are reduced in shard order under the same "lowest mask wins on
// equal score" rule, so scheduling can never change the outcome.
func ExhaustiveParallel(n *logic.Network, eval Evaluator, workers int) (Assignment, *Result, float64, error) {
	return exhaustiveParallel(n, eval, workers, nil)
}

// exhaustiveParallel is ExhaustiveParallel under an optional
// cancellation/budget token (polled per mask).
func exhaustiveParallel(n *logic.Network, eval Evaluator, workers int, tok *budget.T) (Assignment, *Result, float64, error) {
	k := n.NumOutputs()
	if err := checkMaskWidth(k); err != nil {
		return nil, nil, 0, err
	}
	if k > 20 {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search over %d outputs is infeasible", k)
	}
	total := 1 << uint(k)
	w := par.Workers(workers)
	// Oversplit so uneven Apply/eval costs load-balance; the shard
	// geometry affects wall-clock only, never the reduced result.
	ranges := par.SplitRange(total, w*4)
	bests, err := par.Map(context.Background(), len(ranges), w,
		func(ctx context.Context, s int) (*candidate, error) {
			return scanMasks(ctx, n, eval, k, ranges[s][0], ranges[s][1], tok)
		})
	if err != nil {
		return nil, nil, 0, err
	}
	var best *candidate
	//dominolint:budget-ok reduction over per-shard winners, bounded by the shard count; every shard scan polled per mask
	for _, c := range bests {
		if c != nil && c.better(best) {
			best = c
		}
	}
	if best == nil {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search produced no candidate")
	}
	return best.Asg, best.Res, best.Score, nil
}

// scoredBest is one shard's winner in a scored exhaustive scan.
type scoredBest struct {
	mask  int
	score float64
	ok    bool
}

// ExhaustiveScored is ExhaustiveParallel scoring each mask through an
// AssignmentScorer instead of synthesizing it: every shard forks the
// scorer once, reuses one assignment buffer across its whole mask range,
// and only the overall winning mask performs a real Apply to materialize
// the returned Result.
//
// The determinism contract matches ExhaustiveParallel's: ascending-mask
// shard scans, shard-order reduction, lowest mask wins score ties — and
// because ScoreAssignment is a pure function of the assignment, the
// returned (assignment, score) is bit-identical for every worker count.
func ExhaustiveScored(n *logic.Network, scorer AssignmentScorer, workers int) (Assignment, *Result, float64, error) {
	return exhaustiveScored(n, scorer, workers, nil)
}

// exhaustiveScored is ExhaustiveScored under an optional
// cancellation/budget token (polled per mask).
func exhaustiveScored(n *logic.Network, scorer AssignmentScorer, workers int, tok *budget.T) (Assignment, *Result, float64, error) {
	if scorer == nil {
		return nil, nil, 0, fmt.Errorf("phase: ExhaustiveScored requires a scorer")
	}
	k := n.NumOutputs()
	if err := checkMaskWidth(k); err != nil {
		return nil, nil, 0, err
	}
	if k > 20 {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search over %d outputs is infeasible", k)
	}
	total := 1 << uint(k)
	w := par.Workers(workers)
	ranges := par.SplitRange(total, w*4)
	bests, err := par.Map(context.Background(), len(ranges), w,
		func(ctx context.Context, s int) (scoredBest, error) {
			sc := scorer.Fork()
			buf := make(Assignment, k)
			var best scoredBest
			for mask := ranges[s][0]; mask < ranges[s][1]; mask++ {
				if err := pollCancel(ctx, tok); err != nil {
					return scoredBest{}, err
				}
				buf.SetMask(mask)
				score, err := sc.ScoreAssignment(buf)
				if err != nil {
					return scoredBest{}, err
				}
				// Ascending scan + strict < keeps the lowest tied mask.
				if !best.ok || score < best.score {
					best = scoredBest{mask: mask, score: score, ok: true}
				}
			}
			return best, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}
	var best scoredBest
	//dominolint:budget-ok reduction over per-shard winners, bounded by the shard count; every shard scan polled per mask
	for _, b := range bests {
		if b.ok && (!best.ok || b.score < best.score) {
			best = b
		}
	}
	if !best.ok {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search produced no candidate")
	}
	asg := maskAssignment(best.mask, k)
	res, err := Apply(n, asg)
	if err != nil {
		return nil, nil, 0, err
	}
	return asg, res, best.score, nil
}

// SearchOptions configures Search (and its MinArea alias).
type SearchOptions struct {
	// Strategy selects the search implementation (see SearchStrategy).
	// The zero value, StrategyAuto, keeps the historical dispatch:
	// exhaustive up to ExhaustiveLimit outputs, greedy descent beyond.
	Strategy SearchStrategy
	// ExhaustiveLimit: under StrategyAuto, exhaustive search is used when
	// the output count is at most this (default 12).
	ExhaustiveLimit int
	// Restarts is the number of random restarts for the greedy descent
	// (default 3, plus the all-positive start) and, for StrategyAnneal,
	// the number of extra annealing chains.
	Restarts int
	// Initial, when non-nil, replaces the all-positive assignment as the
	// first greedy start / annealing chain's start. The exact strategies
	// (exhaustive, branch-and-bound) ignore it — their result does not
	// depend on a starting point.
	Initial Assignment
	// Seed drives the random restarts and annealing chains.
	Seed int64
	// AnnealSteps is the proposal count per annealing chain (default
	// 400·k).
	AnnealSteps int
	// Eval overrides the objective (default AreaEvaluator).
	Eval Evaluator
	// Scorer, when set, overrides Eval: candidate assignments are scored
	// directly (no per-candidate Apply) and only kept assignments are
	// synthesized. Scorers implementing StateScorer additionally give
	// every strategy O(Δ)-per-flip incremental scoring, and BoundScorers
	// unlock StrategyBranchBound.
	Scorer AssignmentScorer
	// Workers bounds the search's worker pool (0 = GOMAXPROCS, 1 =
	// sequential). The result is identical for every worker count; Eval
	// must be safe for concurrent use on distinct Results when > 1.
	Workers int
	// Budget is the cancellation/budget token every strategy polls at a
	// bounded interval (per candidate mask, subtree, or proposal
	// batch). A cancelled token aborts the search with its error. Nil
	// means never cancelled. It does not alter results while live.
	Budget *budget.T
}

func (o *SearchOptions) defaults() {
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 12
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Eval == nil {
		o.Eval = AreaEvaluator
	}
}

// MinArea finds a phase assignment minimizing cell count, the baseline
// "MA" flow of the paper (Puri et al. [15] report an exact algorithm; we
// use exhaustive search where feasible — it is exact — and greedy descent
// with restarts beyond that). Despite the name it is a generic search
// driver: SearchOptions.Eval or .Scorer swaps in any objective and
// SearchOptions.Strategy any of the pluggable searches — MinArea is
// Search under its historical name.
func MinArea(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	return Search(n, opts)
}
