package phase

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
)

// Evaluator scores a synthesized block; lower is better. MinArea uses a
// cell-count evaluator, MinPower a power estimate.
type Evaluator func(*Result) (float64, error)

// AreaEvaluator scores a result by block gate count plus boundary
// inverters — the standard-cell count proxy used for the "MA" baseline.
func AreaEvaluator(r *Result) (float64, error) {
	return float64(r.Block.GateCount() + r.InputInverterCount() + r.OutputInverterCount()), nil
}

// Exhaustive tries every one of the 2^k phase assignments (k = number of
// outputs, at most 20) and returns the best assignment under eval,
// together with its Result and score.
func Exhaustive(n *logic.Network, eval Evaluator) (Assignment, *Result, float64, error) {
	k := n.NumOutputs()
	if k > 20 {
		return nil, nil, 0, fmt.Errorf("phase: exhaustive search over %d outputs is infeasible", k)
	}
	var bestAsg Assignment
	var bestRes *Result
	best := 0.0
	for mask := 0; mask < 1<<uint(k); mask++ {
		asg := make(Assignment, k)
		for i := 0; i < k; i++ {
			asg[i] = mask&(1<<uint(i)) != 0
		}
		res, err := Apply(n, asg)
		if err != nil {
			return nil, nil, 0, err
		}
		score, err := eval(res)
		if err != nil {
			return nil, nil, 0, err
		}
		if bestRes == nil || score < best {
			best, bestRes, bestAsg = score, res, asg
		}
	}
	return bestAsg, bestRes, best, nil
}

// SearchOptions configures MinArea's search.
type SearchOptions struct {
	// ExhaustiveLimit: exhaustive search is used when the output count is
	// at most this (default 12).
	ExhaustiveLimit int
	// Restarts is the number of random restarts for the greedy descent
	// used beyond the exhaustive limit (default 3, plus the all-positive
	// start).
	Restarts int
	// Seed drives the random restarts.
	Seed int64
	// Eval overrides the objective (default AreaEvaluator).
	Eval Evaluator
}

func (o *SearchOptions) defaults() {
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 12
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Eval == nil {
		o.Eval = AreaEvaluator
	}
}

// MinArea finds a phase assignment minimizing cell count, the baseline
// "MA" flow of the paper (Puri et al. [15] report an exact algorithm; we
// use exhaustive search where feasible — it is exact — and greedy descent
// with restarts beyond that).
func MinArea(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	opts.defaults()
	if n.NumOutputs() <= opts.ExhaustiveLimit {
		return Exhaustive(n, opts.Eval)
	}
	return greedyDescent(n, opts)
}

// greedyDescent performs first-improvement hill climbing over single
// output flips, restarted from random assignments.
func greedyDescent(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	k := n.NumOutputs()

	descend := func(asg Assignment) (Assignment, *Result, float64, error) {
		res, err := Apply(n, asg)
		if err != nil {
			return nil, nil, 0, err
		}
		score, err := opts.Eval(res)
		if err != nil {
			return nil, nil, 0, err
		}
		improved := true
		for improved {
			improved = false
			for i := 0; i < k; i++ {
				asg[i] = !asg[i]
				cand, err := Apply(n, asg)
				if err != nil {
					return nil, nil, 0, err
				}
				cScore, err := opts.Eval(cand)
				if err != nil {
					return nil, nil, 0, err
				}
				if cScore < score {
					score, res = cScore, cand
					improved = true
				} else {
					asg[i] = !asg[i] // revert
				}
			}
		}
		return asg, res, score, nil
	}

	bestAsg, bestRes, best, err := descend(AllPositive(k))
	if err != nil {
		return nil, nil, 0, err
	}
	for restart := 0; restart < opts.Restarts; restart++ {
		asg := make(Assignment, k)
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		cAsg, cRes, cScore, err := descend(asg)
		if err != nil {
			return nil, nil, 0, err
		}
		if cScore < best {
			bestAsg, bestRes, best = cAsg, cRes, cScore
		}
	}
	return bestAsg, bestRes, best, nil
}
