package phase

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/par"
)

// atomicMinFloat is a lock-free monotone-decreasing float64: the shared
// incumbent bound of the parallel branch-and-bound. Because it is only
// ever used with a STRICT > comparison for pruning, any momentarily
// stale value merely prunes less — the search outcome never depends on
// the timing of updates (see the determinism argument on
// branchBoundSearch).
type atomicMinFloat struct{ bits atomic.Uint64 }

func (m *atomicMinFloat) store(x float64) { m.bits.Store(math.Float64bits(x)) }
func (m *atomicMinFloat) load() float64   { return math.Float64frombits(m.bits.Load()) }
func (m *atomicMinFloat) min(x float64) {
	for {
		cur := m.bits.Load()
		if x >= math.Float64frombits(cur) {
			return
		}
		if m.bits.CompareAndSwap(cur, math.Float64bits(x)) {
			return
		}
	}
}

// bbBest is one subtree's winner. Assignments (not int masks) carry the
// tie-break so branch-and-bound has no 2^k mask-arithmetic ceiling.
type bbBest struct {
	asg   Assignment
	score float64
	ok    bool
}

// branchBoundSearch is the exact search: depth-first over phase bits in
// descending bit order (bit k−1 first, positive before negative), pruned
// by the scorer's admissible PrefixBound. Requires a BoundScorer
// (power.ConeTable); at full depth the bound IS the exact score, so
// leaves cost nothing beyond the incremental Decide work.
//
// Determinism and exactness contract:
//
//   - Descending-bit/positive-first DFS visits leaves in ascending mask
//     order, so keeping the first strict improvement reproduces the
//     ascending scan's "lowest mask wins ties" rule.
//   - The search is seeded with the all-positive assignment (mask 0, the
//     lowest mask of all), and subtrees prune on bound ≥ local incumbent:
//     pruned completions score no better than an already-kept candidate
//     at a lower mask, so they could never have won.
//   - Shards are the 2^s subtrees of the first s decided bits, reduced
//     in subtree (= ascending mask-range) order. The shared cross-shard
//     incumbent prunes only on STRICT bound >, which can never eliminate
//     a candidate tied with the eventual winner, so scheduling cannot
//     change the outcome: the returned (assignment, score) is
//     bit-identical to StrategyExhaustive / ExhaustiveScored at every
//     worker count.
func branchBoundSearch(n *logic.Network, opts SearchOptions) (Assignment, *Result, float64, error) {
	scorer := opts.Scorer
	bs, ok := scorer.(BoundScorer)
	if !ok {
		return nil, nil, 0, fmt.Errorf("phase: branch-and-bound requires a scorer with admissible prefix bounds (power.ConeTable); got %T", scorer)
	}
	k := n.NumOutputs()
	seedAsg := AllPositive(k)
	seedScore, err := scorer.ScoreAssignment(seedAsg)
	if err != nil {
		return nil, nil, 0, err
	}
	if k == 0 {
		res, err := Apply(n, seedAsg)
		return seedAsg, res, seedScore, err
	}

	// Subtree shards: the first s decided bits. Oversplit like the other
	// sharded searches so uneven pruning load-balances.
	w := par.Workers(opts.Workers)
	s := 0
	for 1<<uint(s) < w*4 && s < k && s < 10 {
		s++
	}
	var shared atomicMinFloat
	shared.store(seedScore)

	results, err := par.Map(context.Background(), 1<<uint(s), w,
		func(ctx context.Context, sub int) (bbBest, error) {
			if err := pollCancel(ctx, opts.Budget); err != nil {
				return bbBest{}, err
			}
			pb := bs.NewBound()
			asg := make(Assignment, k)
			best := bbBest{score: seedScore} // phantom incumbent: the seed
			// Fix the subtree prefix: subtree index bit s−1−d drives
			// decided bit k−1−d, so subtree order is ascending mask-range
			// order.
			bound := 0.0
			for d := 0; d < s; d++ {
				neg := sub>>(uint(s-1-d))&1 == 1
				asg[k-1-d] = neg
				bound = pb.Decide(neg)
			}
			if bound >= best.score || bound > shared.load() {
				return bbBest{}, nil
			}
			var rec func(d int) error
			rec = func(d int) error {
				if d == k {
					// Full depth: the bound is the exact score.
					if bound < best.score {
						best = bbBest{asg: asg.Clone(), score: bound, ok: true}
						shared.min(bound)
					}
					return nil
				}
				if d&7 == 0 {
					if err := pollCancel(ctx, opts.Budget); err != nil {
						return err
					}
				}
				bit := k - 1 - d
				for _, neg := range [2]bool{false, true} {
					asg[bit] = neg
					bound = pb.Decide(neg)
					if bound < best.score && !(bound > shared.load()) {
						if err := rec(d + 1); err != nil {
							return err
						}
					}
					pb.Undo()
				}
				asg[bit] = false
				return nil
			}
			if err := rec(s); err != nil {
				return bbBest{}, err
			}
			return best, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}

	// Reduce in subtree order; the seed candidate (mask 0) wins all ties
	// since no mask is lower.
	winner := bbBest{asg: seedAsg, score: seedScore, ok: true}
	for _, b := range results {
		if b.ok && b.score < winner.score {
			winner = b
		}
	}
	res, err := Apply(n, winner.asg)
	if err != nil {
		return nil, nil, 0, err
	}
	return winner.asg, res, winner.score, nil
}
