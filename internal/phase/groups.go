package phase

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/prob"
)

// The paper notes (Section 4.1) that the pairwise cost function K "can be
// extended to capture a greater degree of interaction between phase
// assignments by extending the definition of the cost function K to more
// than a pair of outputs", degenerating to greedily-ordered exhaustive
// search when the group is the whole output set. MinPowerGroups
// implements that extension for arbitrary group sizes:
//
//	K(group, mask) = Σ_i |D_i|·A_i± + 0.5·Σ_{i<j} O(i,j)·(A_i± + A_j±)
//
// where bit k of mask selects inverting group[k]'s current phase and A±
// follows Property 4.1.

// GroupStep records one iteration of the grouped heuristic.
type GroupStep struct {
	Outputs   []int
	Mask      uint32 // bit k set = invert Outputs[k]
	K         float64
	Power     float64
	Committed bool
}

// MinPowerGroups runs the grouped variant of the minimum-power heuristic.
// groupSize 2 reproduces MinPower's search space; larger sizes explore
// joint flips at combinatorial cost (C(outputs, size) groups, 2^size
// combos each).
func MinPowerGroups(n *logic.Network, opts PowerOptions, groupSize int) (Assignment, *Result, float64, []GroupStep, error) {
	if groupSize < 2 {
		return nil, nil, 0, nil, fmt.Errorf("phase: group size must be >= 2")
	}
	if len(opts.InputProbs) != n.NumInputs() {
		return nil, nil, 0, nil, fmt.Errorf("phase: %d input probs for %d inputs", len(opts.InputProbs), n.NumInputs())
	}
	if opts.Evaluate == nil && opts.Scorer == nil {
		return nil, nil, 0, nil, fmt.Errorf("phase: PowerOptions.Evaluate or Scorer is required")
	}
	probFn := opts.Probs
	if probFn == nil {
		probFn = func(block *logic.Network, in []float64) ([]float64, error) {
			return prob.Approximate(block, in), nil
		}
	}
	k := n.NumOutputs()
	if groupSize > k {
		groupSize = k
	}
	current := opts.Initial.Clone()
	if current == nil {
		current = AllPositive(k)
	}
	res, err := Apply(n, current)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	power, err := opts.scoreResult(res)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	var trace []GroupStep
	if k < 2 {
		return current, res, power, trace, nil
	}

	groups := combinations(k, groupSize)
	remaining := make(map[string]bool, len(groups))
	for _, g := range groups {
		remaining[groupKey(g)] = true
	}

	type cand struct {
		group []int
		mask  uint32
		k     float64
	}
	rank := func() ([]cand, error) {
		stats, err := blockConeStats(res, opts.InputProbs, probFn)
		if err != nil {
			return nil, err
		}
		var cands []cand
		for _, g := range groups {
			if !remaining[groupKey(g)] {
				continue
			}
			for mask := uint32(0); mask < 1<<uint(len(g)); mask++ {
				cands = append(cands, cand{g, mask, groupCost(stats, g, mask)})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].k != cands[b].k {
				return cands[a].k < cands[b].k
			}
			ka, kb := groupKey(cands[a].group), groupKey(cands[b].group)
			if ka != kb {
				return ka < kb
			}
			return cands[a].mask < cands[b].mask
		})
		return cands, nil
	}

	cands, err := rank()
	if err != nil {
		return nil, nil, 0, nil, err
	}
	pos := 0
	for len(remaining) > 0 {
		for pos < len(cands) && !remaining[groupKey(cands[pos].group)] {
			pos++
		}
		if pos >= len(cands) {
			break
		}
		c := cands[pos]
		delete(remaining, groupKey(c.group))
		step := GroupStep{Outputs: c.group, Mask: c.mask, K: c.k}
		if c.mask == 0 {
			step.Power = power
			trace = append(trace, step)
			continue
		}
		candidate := current.Clone()
		for bit, oi := range c.group {
			if c.mask&(1<<uint(bit)) != 0 {
				candidate[oi] = !candidate[oi]
			}
		}
		cPower, cRes, err := opts.scoreCandidate(n, candidate)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		step.Power = cPower
		if cPower < power {
			step.Committed = true
			if cRes == nil {
				if cRes, err = Apply(n, candidate); err != nil {
					return nil, nil, 0, nil, err
				}
			}
			current, res, power = candidate, cRes, cPower
			cands, err = rank()
			if err != nil {
				return nil, nil, 0, nil, err
			}
			pos = 0
		}
		trace = append(trace, step)
	}
	return current, res, power, trace, nil
}

// groupCost evaluates the generalized K for a group under a flip mask.
func groupCost(st *coneStats, group []int, mask uint32) float64 {
	a := make([]float64, len(group))
	total := 0.0
	for bit, oi := range group {
		ai := st.avg[oi]
		if mask&(1<<uint(bit)) != 0 {
			ai = 1 - ai
		}
		a[bit] = ai
		total += float64(st.size[oi]) * ai
	}
	for x := 0; x < len(group); x++ {
		for y := x + 1; y < len(group); y++ {
			total += 0.5 * st.o(group[x], group[y]) * (a[x] + a[y])
		}
	}
	return total
}

// combinations enumerates all size-g subsets of 0..n-1 in lexicographic
// order.
func combinations(n, g int) [][]int {
	var out [][]int
	idx := make([]int, g)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance.
		i := g - 1
		for i >= 0 && idx[i] == n-g+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < g; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func groupKey(g []int) string {
	b := make([]byte, 0, len(g)*3)
	for _, v := range g {
		b = append(b, byte(v>>8), byte(v), ',')
	}
	return string(b)
}
