package sop

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/verify"
)

func TestFactorIntoSimple(t *testing.T) {
	// ab + ac factors as a(b + c): 2 gates instead of 3.
	c := NewCover(3)
	c.Add(cubeFromString(t, "11-"))
	c.Add(cubeFromString(t, "1-1"))
	n := logic.New("fct")
	ins := []logic.NodeID{n.AddInput("a"), n.AddInput("b"), n.AddInput("c")}
	root, err := FactorInto(c, n, ins)
	if err != nil {
		t.Fatal(err)
	}
	n.MarkOutput("f", root)
	if got := n.GateCount(); got != 2 {
		t.Errorf("factored gate count = %d, want 2 (a·(b+c))\n%s", got, n)
	}
	for mask := 0; mask < 8; mask++ {
		asg := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if n.EvalOutputs(asg)[0] != c.Eval(asg) {
			t.Fatalf("factor changed function at %v", asg)
		}
	}
}

func TestFactorIntoEdgeCases(t *testing.T) {
	n := logic.New("edge")
	ins := []logic.NodeID{n.AddInput("a")}
	empty := NewCover(1)
	r, err := FactorInto(empty, n, ins)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind(r) != logic.KindConst0 {
		t.Error("empty cover must factor to constant 0")
	}
	taut := NewCover(1)
	taut.Add(NewCube(1))
	r2, err := FactorInto(taut, n, ins)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind(r2) != logic.KindConst1 {
		t.Error("tautology must factor to constant 1")
	}
}

func TestFactorPreservesFunctionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		vars := 3 + rng.Intn(5)
		c := NewCover(vars)
		for k := 0; k < 1+rng.Intn(12); k++ {
			cube := NewCube(vars)
			for v := 0; v < vars; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = cube.WithLiteral(v, Pos)
				case 1:
					cube = cube.WithLiteral(v, Neg)
				}
			}
			c.Add(cube)
		}
		n := logic.New("p")
		ins := make([]logic.NodeID, vars)
		for v := range ins {
			ins[v] = n.AddInput(inName(v))
		}
		root, err := FactorInto(c, n, ins)
		if err != nil {
			t.Fatal(err)
		}
		n.MarkOutput("f", root)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		asg := make([]bool, vars)
		for mask := 0; mask < 1<<uint(vars); mask++ {
			for v := 0; v < vars; v++ {
				asg[v] = mask&(1<<uint(v)) != 0
			}
			if n.EvalOutputs(asg)[0] != c.Eval(asg) {
				t.Fatalf("trial %d: factor wrong at %v", trial, asg)
			}
		}
	}
}

func TestFactorNetworkPreservesAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	shrunk := 0
	for trial := 0; trial < 10; trial++ {
		n := gen.Generate(gen.Params{
			Name: "fn", Inputs: 8 + rng.Intn(6), Outputs: 2 + rng.Intn(3),
			Gates: 40 + rng.Intn(60), Seed: int64(trial * 3), OrProb: 0.6,
		})
		f, err := FactorNetwork(n, 12)
		if err != nil {
			t.Fatalf("trial %d: FactorNetwork: %v", trial, err)
		}
		if err := verify.Check(n, f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if f.NumNodes() < n.NumNodes() {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Error("resynthesis never shrank any circuit (suspicious)")
	}
}

func inName(i int) string {
	return "f" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}
