package sop

import (
	"fmt"

	"repro/internal/logic"
)

// FactorInto builds a multi-level factored realization of the cover into
// an existing network, returning the driving node. It uses recursive
// literal division (the core of Brayton-style quick factoring): the most
// frequent literal L splits the cover as
//
//	cover = L·quotient + remainder
//
// and both parts are factored recursively. The result typically has far
// fewer literals than the flat two-level form, which matters downstream:
// the domino mapper packs the factored AND/OR trees into width-limited
// cells.
//
// inputs maps cover variables to existing network nodes.
func FactorInto(c *Cover, n *logic.Network, inputs []logic.NodeID) (logic.NodeID, error) {
	if len(inputs) != c.NumVars {
		return logic.InvalidNode, fmt.Errorf("sop: %d input nodes for %d vars", len(inputs), c.NumVars)
	}
	invCache := make(map[int]logic.NodeID)
	lit := func(v int, l Literal) logic.NodeID {
		if l == Pos {
			return inputs[v]
		}
		if id, ok := invCache[v]; ok {
			return id
		}
		id := n.AddNot(inputs[v])
		invCache[v] = id
		return id
	}
	var rec func(cubes []Cube) logic.NodeID
	rec = func(cubes []Cube) logic.NodeID {
		if len(cubes) == 0 {
			return n.AddConst(false)
		}
		// Single cube: an AND of its literals.
		if len(cubes) == 1 {
			var lits []logic.NodeID
			cube := cubes[0]
			for v := 0; v < c.NumVars; v++ {
				if l := cube.Literal(v); l != DontCare {
					lits = append(lits, lit(v, l))
				}
			}
			switch len(lits) {
			case 0:
				return n.AddConst(true)
			case 1:
				return lits[0]
			default:
				return n.AddAnd(lits...)
			}
		}
		// Most frequent literal.
		bestVar, bestLit, bestCount := -1, DontCare, 1
		for v := 0; v < c.NumVars; v++ {
			pos, neg := 0, 0
			for _, cube := range cubes {
				switch cube.Literal(v) {
				case Pos:
					pos++
				case Neg:
					neg++
				}
			}
			if pos > bestCount {
				bestVar, bestLit, bestCount = v, Pos, pos
			}
			if neg > bestCount {
				bestVar, bestLit, bestCount = v, Neg, neg
			}
		}
		if bestVar < 0 {
			// No shared literal: plain OR of cube ANDs.
			var terms []logic.NodeID
			for _, cube := range cubes {
				terms = append(terms, rec([]Cube{cube}))
			}
			return n.AddOr(terms...)
		}
		var quotient, remainder []Cube
		for _, cube := range cubes {
			if cube.Literal(bestVar) == bestLit {
				quotient = append(quotient, cube.WithLiteral(bestVar, DontCare))
			} else {
				remainder = append(remainder, cube)
			}
		}
		q := rec(quotient)
		l := lit(bestVar, bestLit)
		var term logic.NodeID
		if isConstTrue(n, q) {
			term = l
		} else {
			term = n.AddAnd(l, q)
		}
		if len(remainder) == 0 {
			return term
		}
		return n.AddOr(term, rec(remainder))
	}
	return rec(c.Cubes), nil
}

func isConstTrue(n *logic.Network, id logic.NodeID) bool {
	return n.Kind(id) == logic.KindConst1
}

// FactorNetwork rebuilds every output whose support is at most
// maxSupport as a factored form of its minimized irredundant cover —
// collapse followed by refactor, the classic resynthesis move. Larger
// cones are copied structurally.
func FactorNetwork(n *logic.Network, maxSupport int) (*logic.Network, error) {
	covers, keep, err := coversOf(n, maxSupport)
	if err != nil {
		return nil, err
	}
	out := logic.New(n.Name)
	inIDs := make([]logic.NodeID, n.NumInputs())
	for pos, id := range n.Inputs() {
		inIDs[pos] = out.AddInput(n.Node(id).Name)
	}
	remap := make([]logic.NodeID, n.NumNodes())
	for i := range remap {
		remap[i] = logic.InvalidNode
	}
	for pos, id := range n.Inputs() {
		remap[id] = inIDs[pos]
	}
	var copyRec func(id logic.NodeID) logic.NodeID
	copyRec = func(id logic.NodeID) logic.NodeID {
		if remap[id] != logic.InvalidNode {
			return remap[id]
		}
		node := n.Node(id)
		var res logic.NodeID
		switch node.Kind {
		case logic.KindConst0:
			res = out.AddConst(false)
		case logic.KindConst1:
			res = out.AddConst(true)
		default:
			fs := make([]logic.NodeID, len(node.Fanins))
			for i, f := range node.Fanins {
				fs[i] = copyRec(f)
			}
			res = out.AddGate(node.Kind, fs...)
		}
		remap[id] = res
		return res
	}
	for oi, o := range n.Outputs() {
		if keep[oi] {
			out.MarkOutput(o.Name, copyRec(o.Driver))
			continue
		}
		driver, err := FactorInto(covers[oi], out, inIDs)
		if err != nil {
			return nil, err
		}
		out.MarkOutput(o.Name, driver)
	}
	return out.Optimize(), nil
}

// coversOf computes minimized covers for outputs within the support
// bound; keep[oi] marks outputs left structural.
func coversOf(n *logic.Network, maxSupport int) ([]*Cover, []bool, error) {
	covers := make([]*Cover, n.NumOutputs())
	keep := make([]bool, n.NumOutputs())
	for oi := range n.Outputs() {
		cover, err := FromNetworkOutput(n, oi)
		if err != nil {
			return nil, nil, err
		}
		support := 0
		seen := make([]bool, n.NumInputs())
		for _, cube := range cover.Cubes {
			for v := 0; v < cover.NumVars; v++ {
				if cube.Literal(v) != DontCare && !seen[v] {
					seen[v] = true
					support++
				}
			}
		}
		if support > maxSupport {
			keep[oi] = true
			continue
		}
		cover.Minimize()
		covers[oi] = cover
	}
	return covers, keep, nil
}
