package sop

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// FromBDD extracts an irredundant sum-of-products cover for the function
// f using the Minato-Morreale ISOP algorithm. Variables of the returned
// cover are the manager's variable indexes 0..NumVars-1.
func FromBDD(m *bdd.Manager, f bdd.Ref) *Cover {
	cover := NewCover(m.NumVars())
	isop(m, f, f, NewCube(m.NumVars()), cover)
	return cover
}

// isop computes an SOP g with L ≤ g ≤ U, accumulating cubes (prefixed by
// the partial cube built so far) into cover, and returns the BDD of g.
func isop(m *bdd.Manager, L, U bdd.Ref, prefix Cube, cover *Cover) bdd.Ref {
	if L == bdd.False {
		return bdd.False
	}
	if U == bdd.True {
		cover.Add(prefix.Clone())
		return bdd.True
	}
	// Top variable of L and U in the manager's order.
	v := topSharedVar(m, L, U)
	L0 := m.Restrict(L, v, false)
	L1 := m.Restrict(L, v, true)
	U0 := m.Restrict(U, v, false)
	U1 := m.Restrict(U, v, true)

	// Cubes that must contain the negative literal of v: the part of L0
	// not coverable under U1.
	g0 := isop(m, m.And(L0, m.Not(U1)), U0, prefix.WithLiteral(v, Neg), cover)
	// Cubes that must contain the positive literal of v.
	g1 := isop(m, m.And(L1, m.Not(U0)), U1, prefix.WithLiteral(v, Pos), cover)
	// Remaining onset, coverable without mentioning v.
	Lrem := m.Or(m.And(L0, m.Not(g0)), m.And(L1, m.Not(g1)))
	gd := isop(m, Lrem, m.And(U0, U1), prefix, cover)

	x := m.Var(v)
	nx := m.NVar(v)
	return m.Or(m.Or(m.And(nx, g0), m.And(x, g1)), gd)
}

// topSharedVar returns the variable with the smallest level among the
// supports of L and U. Both are non-terminal in at least one argument by
// the callers' checks.
func topSharedVar(m *bdd.Manager, L, U bdd.Ref) int {
	best := -1
	bestLevel := m.NumVars()
	for _, f := range []bdd.Ref{L, U} {
		for _, v := range m.Support(f) {
			if l := m.LevelOf(v); l < bestLevel {
				bestLevel = l
				best = v
			}
		}
	}
	if best < 0 {
		panic("sop: topSharedVar on terminals")
	}
	return best
}

// FromNetworkOutput extracts an irredundant cover for one primary output
// of a combinational network, over variables indexed by input position.
func FromNetworkOutput(n *logic.Network, outputIdx int) (*Cover, error) {
	if outputIdx < 0 || outputIdx >= n.NumOutputs() {
		return nil, fmt.Errorf("sop: output index %d out of range", outputIdx)
	}
	nb, err := bdd.BuildNetwork(n, nil)
	if err != nil {
		return nil, err
	}
	f := nb.NodeRefs[n.Outputs()[outputIdx].Driver]
	return FromBDD(nb.Manager, f), nil
}

// ToNetwork elaborates the cover as an AND/OR/NOT network whose inputs
// are named by the given names (length NumVars) and whose single output
// carries outName.
func (c *Cover) ToNetwork(name string, inputNames []string, outName string) (*logic.Network, error) {
	if len(inputNames) != c.NumVars {
		return nil, fmt.Errorf("sop: %d input names for %d vars", len(inputNames), c.NumVars)
	}
	n := logic.New(name)
	ins := make([]logic.NodeID, c.NumVars)
	for i, nm := range inputNames {
		ins[i] = n.AddInput(nm)
	}
	if len(c.Cubes) == 0 {
		n.MarkOutput(outName, n.AddConst(false))
		return n, nil
	}
	invCache := make(map[int]logic.NodeID)
	inv := func(v int) logic.NodeID {
		if id, ok := invCache[v]; ok {
			return id
		}
		id := n.AddNot(ins[v])
		invCache[v] = id
		return id
	}
	var cubes []logic.NodeID
	for _, cube := range c.Cubes {
		var lits []logic.NodeID
		for v := 0; v < c.NumVars; v++ {
			switch cube.Literal(v) {
			case Pos:
				lits = append(lits, ins[v])
			case Neg:
				lits = append(lits, inv(v))
			}
		}
		switch len(lits) {
		case 0:
			cubes = append(cubes, n.AddConst(true))
		case 1:
			cubes = append(cubes, lits[0])
		default:
			cubes = append(cubes, n.AddAnd(lits...))
		}
	}
	if len(cubes) == 1 {
		n.MarkOutput(outName, cubes[0])
	} else {
		n.MarkOutput(outName, n.AddOr(cubes...))
	}
	return n, nil
}

// CollapseOutput rebuilds one output of a network from its irredundant
// two-level cover — the collapse/refactor move of technology-independent
// synthesis. Only sensible for outputs with modest support; callers
// bound that.
func CollapseOutput(n *logic.Network, outputIdx int) (*logic.Network, error) {
	cover, err := FromNetworkOutput(n, outputIdx)
	if err != nil {
		return nil, err
	}
	cover.Minimize()
	names := make([]string, n.NumInputs())
	for i, id := range n.Inputs() {
		names[i] = n.Node(id).Name
	}
	return cover.ToNetwork(n.Name+"_collapsed", names, n.Outputs()[outputIdx].Name)
}
