package sop

import (
	"repro/internal/bdd"
	"repro/internal/logic"
)

// CollapseNetwork rebuilds every output whose support is at most
// maxSupport from its minimized irredundant cover, keeping larger cones
// structurally intact. It is the collapse/refactor pass of technology-
// independent synthesis: redundant multi-level structure inside small
// cones is replaced by clean two-level logic, which the phase assigner
// and domino mapper then re-decompose.
func CollapseNetwork(n *logic.Network, maxSupport int) (*logic.Network, error) {
	nb, err := bdd.BuildNetwork(n, nil)
	if err != nil {
		return nil, err
	}
	m := nb.Manager

	out := logic.New(n.Name)
	inIDs := make([]logic.NodeID, n.NumInputs())
	for pos, id := range n.Inputs() {
		inIDs[pos] = out.AddInput(n.Node(id).Name)
	}
	// Copier for outputs kept structural.
	remap := make([]logic.NodeID, n.NumNodes())
	for i := range remap {
		remap[i] = logic.InvalidNode
	}
	for pos, id := range n.Inputs() {
		remap[id] = inIDs[pos]
	}
	var copyRec func(id logic.NodeID) logic.NodeID
	copyRec = func(id logic.NodeID) logic.NodeID {
		if remap[id] != logic.InvalidNode {
			return remap[id]
		}
		node := n.Node(id)
		var res logic.NodeID
		switch node.Kind {
		case logic.KindConst0:
			res = out.AddConst(false)
		case logic.KindConst1:
			res = out.AddConst(true)
		default:
			fs := make([]logic.NodeID, len(node.Fanins))
			for i, f := range node.Fanins {
				fs[i] = copyRec(f)
			}
			res = out.AddGate(node.Kind, fs...)
		}
		remap[id] = res
		return res
	}

	invCache := make(map[int]logic.NodeID)
	inv := func(v int) logic.NodeID {
		if id, ok := invCache[v]; ok {
			return id
		}
		id := out.AddNot(inIDs[v])
		invCache[v] = id
		return id
	}

	for _, o := range n.Outputs() {
		f := nb.NodeRefs[o.Driver]
		sup := m.Support(f)
		if len(sup) > maxSupport {
			out.MarkOutput(o.Name, copyRec(o.Driver))
			continue
		}
		cover := FromBDD(m, f)
		cover.Minimize()
		var driver logic.NodeID
		switch {
		case f == bdd.False:
			driver = out.AddConst(false)
		case f == bdd.True:
			driver = out.AddConst(true)
		default:
			var cubes []logic.NodeID
			for _, cube := range cover.Cubes {
				var lits []logic.NodeID
				for v := 0; v < cover.NumVars; v++ {
					switch cube.Literal(v) {
					case Pos:
						lits = append(lits, inIDs[v])
					case Neg:
						lits = append(lits, inv(v))
					}
				}
				switch len(lits) {
				case 0:
					lits = append(lits, out.AddConst(true))
					cubes = append(cubes, lits[0])
				case 1:
					cubes = append(cubes, lits[0])
				default:
					cubes = append(cubes, out.AddAnd(lits...))
				}
			}
			if len(cubes) == 1 {
				driver = cubes[0]
			} else {
				driver = out.AddOr(cubes...)
			}
		}
		out.MarkOutput(o.Name, driver)
	}
	return out.Optimize(), nil
}
