// Package sop implements two-level sum-of-products covers: cubes over a
// fixed variable set, cover simplification (containment, distance-1
// merging, irredundancy via tautology checking) and exact irredundant
// cover extraction from BDDs with the Minato-Morreale ISOP algorithm.
//
// The paper's flow begins with "standard technology independent
// synthesis"; this package supplies the two-level half of that substrate
// (the BLIF reader consumes covers, the collapse/refactor pass in
// internal/flow can rebuild small cones through ISOP).
package sop

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is the polarity of one variable within a cube.
type Literal uint8

// Literal values.
const (
	// DontCare: the variable does not appear in the cube.
	DontCare Literal = iota
	// Pos: the positive literal.
	Pos
	// Neg: the negative literal.
	Neg
)

// Cube is a conjunction of literals over NumVars variables, stored two
// bits per variable.
type Cube struct {
	numVars int
	words   []uint64
}

// NewCube returns the all-don't-care (tautology) cube over numVars
// variables.
func NewCube(numVars int) Cube {
	return Cube{numVars: numVars, words: make([]uint64, (numVars+31)/32)}
}

// NumVars returns the variable count of the cube's space.
func (c Cube) NumVars() int { return c.numVars }

func (c Cube) slot(v int) (int, uint) {
	return v / 32, uint(v%32) * 2
}

// Literal returns the polarity of variable v in the cube.
func (c Cube) Literal(v int) Literal {
	w, s := c.slot(v)
	return Literal((c.words[w] >> s) & 3)
}

// WithLiteral returns a copy of the cube with variable v set to the
// given literal.
func (c Cube) WithLiteral(v int, lit Literal) Cube {
	out := c.Clone()
	w, s := out.slot(v)
	out.words[w] &^= 3 << s
	out.words[w] |= uint64(lit) << s
	return out
}

// Clone returns a copy.
func (c Cube) Clone() Cube {
	return Cube{numVars: c.numVars, words: append([]uint64(nil), c.words...)}
}

// LiteralCount returns the number of non-don't-care literals.
func (c Cube) LiteralCount() int {
	n := 0
	for v := 0; v < c.numVars; v++ {
		if c.Literal(v) != DontCare {
			n++
		}
	}
	return n
}

// Contains reports whether c covers d (every assignment in d is in c).
func (c Cube) Contains(d Cube) bool {
	for v := 0; v < c.numVars; v++ {
		lc := c.Literal(v)
		if lc == DontCare {
			continue
		}
		if d.Literal(v) != lc {
			return false
		}
	}
	return true
}

// Distance returns the number of variables where c and d have opposite
// literals. Distance 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	n := 0
	for v := 0; v < c.numVars; v++ {
		lc, ld := c.Literal(v), d.Literal(v)
		if (lc == Pos && ld == Neg) || (lc == Neg && ld == Pos) {
			n++
		}
	}
	return n
}

// Eval evaluates the cube under a complete assignment.
func (c Cube) Eval(assignment []bool) bool {
	for v := 0; v < c.numVars; v++ {
		switch c.Literal(v) {
		case Pos:
			if !assignment[v] {
				return false
			}
		case Neg:
			if assignment[v] {
				return false
			}
		}
	}
	return true
}

// String renders the cube in PLA row style ('1', '0', '-').
func (c Cube) String() string {
	b := make([]byte, c.numVars)
	for v := 0; v < c.numVars; v++ {
		switch c.Literal(v) {
		case Pos:
			b[v] = '1'
		case Neg:
			b[v] = '0'
		default:
			b[v] = '-'
		}
	}
	return string(b)
}

// Cover is a disjunction of cubes.
type Cover struct {
	NumVars int
	Cubes   []Cube
}

// NewCover returns an empty (constant-0) cover.
func NewCover(numVars int) *Cover { return &Cover{NumVars: numVars} }

// Add appends a cube.
func (c *Cover) Add(cube Cube) {
	if cube.numVars != c.NumVars {
		panic(fmt.Sprintf("sop: cube over %d vars added to %d-var cover", cube.numVars, c.NumVars))
	}
	c.Cubes = append(c.Cubes, cube)
}

// Eval evaluates the cover under a complete assignment.
func (c *Cover) Eval(assignment []bool) bool {
	for _, cube := range c.Cubes {
		if cube.Eval(assignment) {
			return true
		}
	}
	return false
}

// LiteralCount returns the total literal count, the classic two-level
// cost measure.
func (c *Cover) LiteralCount() int {
	n := 0
	for _, cube := range c.Cubes {
		n += cube.LiteralCount()
	}
	return n
}

// Clone returns a deep copy.
func (c *Cover) Clone() *Cover {
	out := NewCover(c.NumVars)
	for _, cube := range c.Cubes {
		out.Add(cube.Clone())
	}
	return out
}

// String renders the cover as PLA rows joined by newlines, cubes sorted
// for stable output.
func (c *Cover) String() string {
	rows := make([]string, len(c.Cubes))
	for i, cube := range c.Cubes {
		rows[i] = cube.String()
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// removeContained drops cubes covered by another single cube.
func (c *Cover) removeContained() {
	var out []Cube
	for i, ci := range c.Cubes {
		contained := false
		for j, cj := range c.Cubes {
			if i == j {
				continue
			}
			if cj.Contains(ci) && !(ci.Contains(cj) && j > i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, ci)
		}
	}
	c.Cubes = out
}

// mergeAdjacent repeatedly merges distance-1 cube pairs that differ in
// exactly the polarity of one variable and agree elsewhere
// (x·a + x̄·a = a).
func (c *Cover) mergeAdjacent() bool {
	changed := false
	for {
		merged := false
	outer:
		for i := 0; i < len(c.Cubes); i++ {
			for j := i + 1; j < len(c.Cubes); j++ {
				v, ok := mergeVar(c.Cubes[i], c.Cubes[j])
				if !ok {
					continue
				}
				nc := c.Cubes[i].WithLiteral(v, DontCare)
				c.Cubes[i] = nc
				c.Cubes = append(c.Cubes[:j], c.Cubes[j+1:]...)
				merged, changed = true, true
				break outer
			}
		}
		if !merged {
			return changed
		}
	}
}

// mergeVar reports the single variable in which a and b have opposite
// polarity while agreeing on every other literal.
func mergeVar(a, b Cube) (int, bool) {
	v := -1
	for i := 0; i < a.numVars; i++ {
		la, lb := a.Literal(i), b.Literal(i)
		if la == lb {
			continue
		}
		if (la == Pos && lb == Neg) || (la == Neg && lb == Pos) {
			if v >= 0 {
				return -1, false
			}
			v = i
			continue
		}
		return -1, false
	}
	if v < 0 {
		return -1, false
	}
	return v, true
}

// Minimize simplifies the cover: containment removal, adjacency merging
// and irredundancy (each cube must cover a minterm no other cube
// covers, checked by cofactor tautology). The result is equivalent to
// the input.
func (c *Cover) Minimize() {
	c.removeContained()
	for c.mergeAdjacent() {
		c.removeContained()
	}
	c.irredundant()
}

// irredundant removes cubes covered by the union of the others.
func (c *Cover) irredundant() {
	for i := 0; i < len(c.Cubes); {
		rest := &Cover{NumVars: c.NumVars}
		for j, cube := range c.Cubes {
			if j != i {
				rest.Cubes = append(rest.Cubes, cube)
			}
		}
		if rest.covers(c.Cubes[i]) {
			c.Cubes = append(c.Cubes[:i], c.Cubes[i+1:]...)
		} else {
			i++
		}
	}
}

// covers reports whether the cover contains every minterm of cube: the
// cover cofactored against the cube must be a tautology.
func (c *Cover) covers(cube Cube) bool {
	cof := &Cover{NumVars: c.NumVars}
	for _, ci := range c.Cubes {
		if r, ok := cofactor(ci, cube); ok {
			cof.Cubes = append(cof.Cubes, r)
		}
	}
	return cof.tautology(0)
}

// cofactor computes ci / cube (the cofactor of a cube against another);
// ok is false when they do not intersect.
func cofactor(ci, cube Cube) (Cube, bool) {
	out := ci.Clone()
	for v := 0; v < ci.numVars; v++ {
		li, lc := ci.Literal(v), cube.Literal(v)
		if lc == DontCare {
			continue
		}
		switch {
		case li == DontCare:
			// unconstrained; stays don't care
		case li == lc:
			out = out.WithLiteral(v, DontCare)
		default:
			return Cube{}, false
		}
	}
	return out, true
}

// tautology checks whether the cover is identically true by recursive
// Shannon splitting with unate shortcuts.
func (c *Cover) tautology(fromVar int) bool {
	if len(c.Cubes) == 0 {
		return false
	}
	// A row of all don't-cares is a tautology.
	for _, cube := range c.Cubes {
		if cube.LiteralCount() == 0 {
			return true
		}
	}
	// Find a binate splitting variable; if the cover is unate it is a
	// tautology only via the all-dontcare row already checked.
	v := -1
	for i := fromVar; i < c.NumVars; i++ {
		hasPos, hasNeg := false, false
		for _, cube := range c.Cubes {
			switch cube.Literal(i) {
			case Pos:
				hasPos = true
			case Neg:
				hasNeg = true
			}
		}
		if hasPos && hasNeg {
			v = i
			break
		}
		if hasPos || hasNeg {
			if v < 0 {
				v = i
			}
		}
	}
	if v < 0 {
		return false
	}
	pos := c.cofactorVar(v, true)
	neg := c.cofactorVar(v, false)
	return pos.tautology(v+1) && neg.tautology(v+1)
}

// cofactorVar cofactors the cover against a single variable value.
func (c *Cover) cofactorVar(v int, val bool) *Cover {
	out := &Cover{NumVars: c.NumVars}
	for _, cube := range c.Cubes {
		switch cube.Literal(v) {
		case DontCare:
			out.Cubes = append(out.Cubes, cube)
		case Pos:
			if val {
				out.Cubes = append(out.Cubes, cube.WithLiteral(v, DontCare))
			}
		case Neg:
			if !val {
				out.Cubes = append(out.Cubes, cube.WithLiteral(v, DontCare))
			}
		}
	}
	return out
}
