package sop

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/verify"
)

func TestCollapseNetworkPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := gen.Generate(gen.Params{
			Name: "cn", Inputs: 8 + rng.Intn(8), Outputs: 2 + rng.Intn(4),
			Gates: 30 + rng.Intn(60), Seed: int64(trial), OrProb: 0.6,
		})
		c, err := CollapseNetwork(n, 10)
		if err != nil {
			t.Fatalf("trial %d: CollapseNetwork: %v", trial, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if err := verify.Check(n, c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCollapseNetworkKeepsBigCones(t *testing.T) {
	// With maxSupport 0 nothing collapses; the result is a structural
	// copy (post-Optimize).
	n := gen.Generate(gen.Params{Name: "keep", Inputs: 10, Outputs: 3, Gates: 40, Seed: 9})
	c, err := CollapseNetwork(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(n, c); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseNetworkRemovesRedundancy(t *testing.T) {
	// Build a network with heavy redundancy in a small cone: the
	// consensus-laden function from the irredundancy test, duplicated.
	n := logic.New("redund")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	ab := n.AddAnd(a, b)
	nac := n.AddAnd(n.AddNot(a), c)
	cons := n.AddAnd(b, c)
	f := n.AddOr(ab, nac, cons)
	g := n.AddOr(n.AddAnd(a, b), n.AddAnd(b, n.AddBuf(a))) // = ab duplicated
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	col, err := CollapseNetwork(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(n, col); err != nil {
		t.Fatal(err)
	}
	if col.GateCount() >= n.GateCount() {
		t.Errorf("collapse did not shrink: %d -> %d", n.GateCount(), col.GateCount())
	}
}
