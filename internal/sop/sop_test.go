package sop

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/logic"
)

func cubeFromString(t testing.TB, s string) Cube {
	t.Helper()
	c := NewCube(len(s))
	for i, ch := range s {
		switch ch {
		case '1':
			c = c.WithLiteral(i, Pos)
		case '0':
			c = c.WithLiteral(i, Neg)
		case '-':
		default:
			t.Fatalf("bad cube char %q", ch)
		}
	}
	return c
}

func TestCubeBasics(t *testing.T) {
	c := cubeFromString(t, "1-0")
	if c.Literal(0) != Pos || c.Literal(1) != DontCare || c.Literal(2) != Neg {
		t.Fatalf("literals wrong: %s", c)
	}
	if c.LiteralCount() != 2 {
		t.Errorf("LiteralCount = %d", c.LiteralCount())
	}
	if c.String() != "1-0" {
		t.Errorf("String = %q", c.String())
	}
	if !c.Eval([]bool{true, false, false}) {
		t.Error("eval true case failed")
	}
	if c.Eval([]bool{true, true, true}) {
		t.Error("eval false case passed")
	}
}

func TestCubeContainsDistance(t *testing.T) {
	big := cubeFromString(t, "1--")
	small := cubeFromString(t, "110")
	if !big.Contains(small) {
		t.Error("1-- must contain 110")
	}
	if small.Contains(big) {
		t.Error("110 must not contain 1--")
	}
	a := cubeFromString(t, "10-")
	b := cubeFromString(t, "01-")
	if a.Distance(b) != 2 {
		t.Errorf("distance = %d, want 2", a.Distance(b))
	}
	if a.Distance(big) != 0 {
		t.Errorf("distance to overlapping = %d, want 0", a.Distance(big))
	}
}

func TestMergeAdjacent(t *testing.T) {
	// x·y + x·ȳ = x
	c := NewCover(2)
	c.Add(cubeFromString(t, "11"))
	c.Add(cubeFromString(t, "10"))
	c.Minimize()
	if len(c.Cubes) != 1 || c.Cubes[0].String() != "1-" {
		t.Errorf("merge failed: %s", c)
	}
}

func TestMinimizeIrredundant(t *testing.T) {
	// ab + āc + bc: the consensus term bc is redundant.
	c := NewCover(3)
	c.Add(cubeFromString(t, "11-"))
	c.Add(cubeFromString(t, "0-1"))
	c.Add(cubeFromString(t, "-11"))
	before := c.Clone()
	c.Minimize()
	if len(c.Cubes) != 2 {
		t.Errorf("irredundant left %d cubes, want 2:\n%s", len(c.Cubes), c)
	}
	// Equivalence over all assignments.
	for m := 0; m < 8; m++ {
		asg := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		if before.Eval(asg) != c.Eval(asg) {
			t.Fatalf("Minimize changed function at %v", asg)
		}
	}
}

func TestTautology(t *testing.T) {
	c := NewCover(2)
	c.Add(cubeFromString(t, "1-"))
	c.Add(cubeFromString(t, "0-"))
	if !c.tautology(0) {
		t.Error("x + x̄ is a tautology")
	}
	d := NewCover(2)
	d.Add(cubeFromString(t, "1-"))
	d.Add(cubeFromString(t, "-1"))
	if d.tautology(0) {
		t.Error("x + y is not a tautology")
	}
}

func TestMinimizePreservesFunctionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		vars := 2 + rng.Intn(5)
		c := NewCover(vars)
		for k := 0; k < 1+rng.Intn(10); k++ {
			cube := NewCube(vars)
			for v := 0; v < vars; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = cube.WithLiteral(v, Pos)
				case 1:
					cube = cube.WithLiteral(v, Neg)
				}
			}
			c.Add(cube)
		}
		before := c.Clone()
		c.Minimize()
		if len(c.Cubes) > len(before.Cubes) {
			t.Fatalf("trial %d: Minimize grew the cover", trial)
		}
		asg := make([]bool, vars)
		for m := 0; m < 1<<uint(vars); m++ {
			for v := 0; v < vars; v++ {
				asg[v] = m&(1<<uint(v)) != 0
			}
			if before.Eval(asg) != c.Eval(asg) {
				t.Fatalf("trial %d: Minimize changed function at %v\nbefore:\n%s\nafter:\n%s",
					trial, asg, before, c)
			}
		}
	}
}

func TestISOPFromBDD(t *testing.T) {
	m := bdd.New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	cover := FromBDD(m, f)
	// ISOP of ab + āc is exactly those two cubes.
	if len(cover.Cubes) != 2 {
		t.Errorf("ISOP cubes = %d, want 2:\n%s", len(cover.Cubes), cover)
	}
	asg := make([]bool, 3)
	for mask := 0; mask < 8; mask++ {
		for v := 0; v < 3; v++ {
			asg[v] = mask&(1<<uint(v)) != 0
		}
		if cover.Eval(asg) != m.Eval(f, asg) {
			t.Fatalf("ISOP wrong at %v", asg)
		}
	}
}

func TestISOPMatchesBDDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		vars := 3 + rng.Intn(4)
		m := bdd.New(vars)
		f := randomRef(rng, m)
		cover := FromBDD(m, f)
		asg := make([]bool, vars)
		for mask := 0; mask < 1<<uint(vars); mask++ {
			for v := 0; v < vars; v++ {
				asg[v] = mask&(1<<uint(v)) != 0
			}
			if cover.Eval(asg) != m.Eval(f, asg) {
				t.Fatalf("trial %d: ISOP differs from BDD at %v", trial, asg)
			}
		}
		// Irredundancy: Minimize must not drop cubes (they are already
		// irredundant) though it may merge.
		n := len(cover.Cubes)
		cover.Minimize()
		if len(cover.Cubes) > n {
			t.Fatalf("trial %d: minimize grew ISOP", trial)
		}
	}
}

func randomRef(rng *rand.Rand, m *bdd.Manager) bdd.Ref {
	refs := []bdd.Ref{}
	for v := 0; v < m.NumVars(); v++ {
		refs = append(refs, m.Var(v))
	}
	for i := 0; i < 12; i++ {
		x := refs[rng.Intn(len(refs))]
		y := refs[rng.Intn(len(refs))]
		switch rng.Intn(4) {
		case 0:
			refs = append(refs, m.And(x, y))
		case 1:
			refs = append(refs, m.Or(x, y))
		case 2:
			refs = append(refs, m.Xor(x, y))
		default:
			refs = append(refs, m.Not(x))
		}
	}
	return refs[len(refs)-1]
}

func TestToNetworkRoundTrip(t *testing.T) {
	c := NewCover(3)
	c.Add(cubeFromString(t, "11-"))
	c.Add(cubeFromString(t, "0-1"))
	net, err := c.ToNetwork("rt", []string{"a", "b", "c"}, "f")
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		asg := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if net.EvalOutputs(asg)[0] != c.Eval(asg) {
			t.Fatalf("ToNetwork differs at %v", asg)
		}
	}
}

func TestCollapseOutput(t *testing.T) {
	// A redundant multi-level realization collapses to something small
	// and equivalent.
	n := logic.New("red")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	ab := n.AddAnd(a, b)
	nac := n.AddAnd(n.AddNot(a), c)
	cons := n.AddAnd(b, c) // consensus, redundant
	n.MarkOutput("f", n.AddOr(ab, nac, cons))
	collapsed, err := CollapseOutput(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := logic.Equivalent(n, collapsed)
	if err != nil || !eq {
		t.Fatalf("collapse changed function: %v %v", eq, err)
	}
	if collapsed.GateCount() >= n.GateCount() {
		t.Errorf("collapse did not shrink: %d -> %d gates", n.GateCount(), collapsed.GateCount())
	}
}

func TestEmptyCover(t *testing.T) {
	c := NewCover(2)
	net, err := c.ToNetwork("zero", []string{"a", "b"}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if net.EvalOutputs([]bool{true, true})[0] {
		t.Error("empty cover must be constant 0")
	}
	c.Minimize()
	if len(c.Cubes) != 0 {
		t.Error("minimize invented cubes")
	}
}

func BenchmarkMinimize(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	build := func() *Cover {
		c := NewCover(10)
		for k := 0; k < 40; k++ {
			cube := NewCube(10)
			for v := 0; v < 10; v++ {
				switch rng.Intn(3) {
				case 0:
					cube = cube.WithLiteral(v, Pos)
				case 1:
					cube = cube.WithLiteral(v, Neg)
				}
			}
			c.Add(cube)
		}
		return c
	}
	covers := make([]*Cover, b.N)
	for i := range covers {
		covers[i] = build()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covers[i].Minimize()
	}
}

func BenchmarkISOP(b *testing.B) {
	m := bdd.New(14)
	rng := rand.New(rand.NewSource(19))
	f := bdd.False
	for i := 0; i < 30; i++ {
		cube := bdd.True
		for v := 0; v < 14; v++ {
			switch rng.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(v))
			case 1:
				cube = m.And(cube, m.NVar(v))
			}
		}
		f = m.Or(f, cube)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromBDD(m, f)
	}
}
