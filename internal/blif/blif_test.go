package blif

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

const smallBLIF = `
# a tiny combinational model
.model small
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a b g # XOR as on-set cover
01 1
10 1
.end
`

func TestParseSmall(t *testing.T) {
	m, err := ParseString(smallBLIF)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	n := m.Network
	if n.Name != "small" {
		t.Errorf("model name = %q", n.Name)
	}
	if n.NumInputs() != 3 || n.NumOutputs() != 2 {
		t.Fatalf("interface = %d in, %d out; want 3, 2", n.NumInputs(), n.NumOutputs())
	}
	// f = (a·b) + c, g = a⊕b.
	cases := []struct {
		in   [3]bool
		f, g bool
	}{
		{[3]bool{false, false, false}, false, false},
		{[3]bool{true, true, false}, true, false},
		{[3]bool{false, false, true}, true, false},
		{[3]bool{true, false, false}, false, true},
		{[3]bool{false, true, true}, true, true},
	}
	for _, c := range cases {
		outs := n.EvalOutputs(c.in[:])
		if outs[0] != c.f || outs[1] != c.g {
			t.Errorf("eval(%v) = f:%v g:%v, want f:%v g:%v", c.in, outs[0], outs[1], c.f, c.g)
		}
	}
}

func TestParseOffsetCover(t *testing.T) {
	m, err := ParseString(`
.model off
.inputs a b
.outputs f
.names a b f
11 0
.end
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	// f is the complement of a·b (NAND).
	n := m.Network
	cases := []struct {
		a, b, f bool
	}{
		{false, false, true}, {true, false, true}, {false, true, true}, {true, true, false},
	}
	for _, c := range cases {
		if got := n.EvalOutputs([]bool{c.a, c.b})[0]; got != c.f {
			t.Errorf("NAND(%v,%v) = %v, want %v", c.a, c.b, got, c.f)
		}
	}
}

func TestParseConstants(t *testing.T) {
	m, err := ParseString(`
.model consts
.inputs a
.outputs one zero buf
.names one
1
.names zero
.names a buf
1 1
.end
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	outs := m.Network.EvalOutputs([]bool{false})
	if outs[0] != true || outs[1] != false || outs[2] != false {
		t.Errorf("constants wrong: %v", outs)
	}
	outs = m.Network.EvalOutputs([]bool{true})
	if outs[2] != true {
		t.Errorf("buffer wrong: %v", outs)
	}
}

func TestParseLatch(t *testing.T) {
	m, err := ParseString(`
.model seq
.inputs x
.outputs y
.latch ns q 1
.names x q ns
11 1
.names q y
1 1
.end
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(m.Latches) != 1 {
		t.Fatalf("latches = %d, want 1", len(m.Latches))
	}
	l := m.Latches[0]
	if l.Input != "ns" || l.Output != "q" || l.Init != 1 {
		t.Errorf("latch = %+v", l)
	}
	// q is a pseudo-input, ns a pseudo-output.
	if m.Network.InputByName("q") == logic.InvalidNode {
		t.Error("latch output q not a pseudo-input")
	}
	if m.Network.OutputByName("ns") < 0 {
		t.Error("latch input ns not a pseudo-output")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no model", ".inputs a\n.end"},
		{"undriven", ".model m\n.inputs a\n.outputs f\n.end"},
		{"mixed cover", ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end"},
		{"bad width", ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end"},
		{"cycle", ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end"},
		{"double def", ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end"},
		{"bad directive", ".model m\n.banana\n.end"},
		{"row outside names", ".model m\n.inputs a\n11 1\n.end"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: expected error, got none", c.name)
		}
	}
}

func TestLineContinuation(t *testing.T) {
	m, err := ParseString(".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if m.Network.NumInputs() != 2 {
		t.Errorf("continuation lost an input: %d", m.Network.NumInputs())
	}
}

func TestTrailingContinuationAtEOF(t *testing.T) {
	// A '\' continuation on the file's last line used to be dropped
	// wholesale (pending was never flushed after the scan loop), so the
	// continued directive silently vanished from the model.
	m, err := ParseString(".model m\n.inputs a b\n.names a b f\n11 1\n.outputs f \\")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if m.Network.NumOutputs() != 1 {
		t.Fatalf("continued .outputs at EOF lost: %d outputs, want 1", m.Network.NumOutputs())
	}
	if m.Network.OutputByName("f") < 0 {
		t.Error("output f missing")
	}

	// A continued cover row at EOF flushes to a malformed row ("11" with
	// two declared inputs) and must error rather than parse to a
	// constant-0 cover.
	if _, err := ParseString(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 \\"); err == nil {
		t.Error("truncated continued cover row at EOF accepted")
	}
}

func TestExdcSectionSkipped(t *testing.T) {
	// .exdc used to reset only `current`, merging the don't-care
	// section's .names covers into the main model — here faking a
	// "signal f defined twice" error.
	m, err := ParseString(`
.model m
.inputs a b
.outputs f
.names a b f
11 1
.exdc
.names a f
1 1
.end
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	// f must be the main model's a·b, not the don't-care cover's a.
	cases := []struct {
		a, b, f bool
	}{
		{false, false, false}, {true, false, false}, {false, true, false}, {true, true, true},
	}
	for _, c := range cases {
		if got := m.Network.EvalOutputs([]bool{c.a, c.b})[0]; got != c.f {
			t.Errorf("f(%v,%v) = %v, want %v (exdc cover leaked into model)", c.a, c.b, got, c.f)
		}
	}
}

func TestExdcCoverDoesNotCorruptModel(t *testing.T) {
	// An .exdc section that redefines an internal signal must not
	// replace the main model's cover for it.
	m, err := ParseString(`
.model m
.inputs a b
.outputs f
.names a b t
11 1
.names t f
1 1
.exdc
.names a b t
-- 1
.end
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got := m.Network.EvalOutputs([]bool{false, false})[0]; got {
		t.Error("f(0,0) = true: .exdc tautology cover replaced the model's t")
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := ParseString(smallBLIF)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text, err := WriteString(m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	m2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	eq, err := logic.Equivalent(m.Network, m2.Network)
	if err != nil {
		t.Fatalf("equivalent: %v", err)
	}
	if !eq {
		t.Fatalf("round trip changed function:\n%s", text)
	}
}

func TestRoundTripGateKinds(t *testing.T) {
	n := logic.New("kinds")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	n.MarkOutput("and3", n.AddAnd(a, b, c))
	n.MarkOutput("or3", n.AddOr(a, b, c))
	n.MarkOutput("xor3", n.AddXor(a, b, c))
	n.MarkOutput("inv", n.AddNot(a))
	n.MarkOutput("buf", n.AddBuf(b))
	n.MarkOutput("k1", n.AddConst(true))
	n.MarkOutput("k0", n.AddConst(false))
	m := &Model{Network: n}
	text, err := WriteString(m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	m2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	eq, err := logic.Equivalent(n, m2.Network)
	if err != nil || !eq {
		t.Fatalf("round trip changed function (%v, %v):\n%s", eq, err, text)
	}
}

func TestRoundTripLatches(t *testing.T) {
	src := ".model seq\n.inputs x\n.outputs y\n.latch ns q 1\n.names x q ns\n11 1\n.names q y\n1 1\n.end\n"
	m, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text, err := WriteString(m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(text, ".latch ns q 1") {
		t.Errorf("latch lost in round trip:\n%s", text)
	}
	m2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(m2.Latches) != 1 {
		t.Errorf("latches = %d after round trip", len(m2.Latches))
	}
}

func TestSignalNames(t *testing.T) {
	m, err := ParseString(smallBLIF)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	names := SignalNames(m)
	want := map[string]bool{"a": true, "b": true, "c": true, "f": true, "g": true, "t1": true}
	for _, nm := range names {
		if !want[nm] {
			t.Errorf("unexpected signal name %q", nm)
		}
		delete(want, nm)
	}
	for nm := range want {
		t.Errorf("missing signal name %q", nm)
	}
}

func TestWriteWideXorFails(t *testing.T) {
	n := logic.New("widexor")
	var ins []logic.NodeID
	for i := 0; i < 17; i++ {
		ins = append(ins, n.AddInput("x"+string(rune('a'+i))))
	}
	n.MarkOutput("f", n.AddXor(ins...))
	var b strings.Builder
	if err := Write(&b, &Model{Network: n}); err == nil {
		t.Error("Write accepted a 17-input XOR (2^17 cover rows)")
	}
}

func TestParseCommentOnlyAndBlankLines(t *testing.T) {
	m, err := ParseString("# header\n\n.model m\n# mid\n.inputs a\n.outputs f\n.names a f\n1 1\n\n.end\n# trailing\n")
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if m.Network.NumInputs() != 1 {
		t.Error("comments broke parsing")
	}
}
