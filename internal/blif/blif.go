// Package blif reads and writes a practical subset of the Berkeley Logic
// Interchange Format (BLIF), the lingua franca of the MCNC benchmark suite
// the paper evaluates on.
//
// Supported constructs: .model, .inputs, .outputs, .names (single-output
// SOP covers), .latch (D flip-flops with optional initial value), .end,
// '\' line continuation and '#' comments. Covers are converted into
// AND/OR/NOT networks; latches are returned separately so the sequential
// layer (internal/seq) can attach them.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Latch describes one .latch directive: a D flip-flop from Input to
// Output with the given initial value (0, 1, or 2/3 for don't-care, which
// we normalize to 0).
type Latch struct {
	Input  string
	Output string
	Init   int
}

// Model is a parsed BLIF model: a combinational network plus latch
// descriptions. Latch outputs appear as primary inputs of the network and
// latch inputs as primary outputs, in keeping with the standard
// combinational view of a sequential circuit.
type Model struct {
	Network *logic.Network
	Latches []Latch
}

type cover struct {
	output string
	inputs []string
	rows   []coverRow
}

type coverRow struct {
	pattern string // over inputs: '0', '1', '-'
	value   byte   // '0' or '1'
}

// Parse reads a BLIF model from r. Only the first .model in the stream is
// parsed.
func Parse(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var name string
	var inputs, outputs []string
	var latches []Latch
	var covers []*cover
	var current *cover
	seenEnd := false
	inExdc := false

	lineNo := 0
	process := func(line string) error {
		fields := strings.Fields(line)
		if inExdc && fields[0] != ".end" {
			// The external-don't-care section describes flexibility, not
			// the model: its .names covers (and any other construct) must
			// not merge into the main network. Skip wholesale until .end.
			return nil
		}
		switch fields[0] {
		case ".model":
			if name != "" {
				return fmt.Errorf("blif: line %d: multiple .model", lineNo)
			}
			if len(fields) > 1 {
				name = fields[1]
			} else {
				name = "unnamed"
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			current = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			current = nil
		case ".latch":
			if len(fields) < 3 {
				return fmt.Errorf("blif: line %d: .latch needs input and output", lineNo)
			}
			l := Latch{Input: fields[1], Output: fields[2]}
			// Optional trailing fields: [type control] [init].
			if len(fields) >= 4 {
				last := fields[len(fields)-1]
				switch last {
				case "0":
					l.Init = 0
				case "1":
					l.Init = 1
				case "2", "3":
					l.Init = 0
				}
			}
			latches = append(latches, l)
			current = nil
		case ".names":
			if len(fields) < 2 {
				return fmt.Errorf("blif: line %d: .names needs at least an output", lineNo)
			}
			c := &cover{
				output: fields[len(fields)-1],
				inputs: append([]string(nil), fields[1:len(fields)-1]...),
			}
			covers = append(covers, c)
			current = c
		case ".end":
			seenEnd = true
			inExdc = false
			current = nil
		case ".exdc":
			inExdc = true
			current = nil
		case ".wire_load_slope", ".default_input_arrival", ".clock":
			// Recognized-but-ignored extensions.
			current = nil
		default:
			if strings.HasPrefix(fields[0], ".") {
				return fmt.Errorf("blif: line %d: unsupported directive %s", lineNo, fields[0])
			}
			if current == nil {
				return fmt.Errorf("blif: line %d: cover row outside .names", lineNo)
			}
			// Cover row: "<pattern> <value>" or just "<value>" for
			// constant covers.
			switch len(fields) {
			case 1:
				if len(current.inputs) != 0 {
					return fmt.Errorf("blif: line %d: pattern missing", lineNo)
				}
				current.rows = append(current.rows, coverRow{value: fields[0][0]})
			case 2:
				if len(fields[0]) != len(current.inputs) {
					return fmt.Errorf("blif: line %d: pattern width %d, want %d", lineNo, len(fields[0]), len(current.inputs))
				}
				current.rows = append(current.rows, coverRow{pattern: fields[0], value: fields[1][0]})
			default:
				return fmt.Errorf("blif: line %d: malformed cover row", lineNo)
			}
		}
		return nil
	}

	var pending string
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""
		if line == "" {
			continue
		}
		if err := process(line); err != nil {
			return nil, err
		}
		if seenEnd {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	// A '\' on the file's last line accumulates into pending with no
	// following line to terminate it; flush the continued content instead
	// of silently dropping the whole directive.
	if pending != "" && !seenEnd {
		if line := strings.TrimSpace(pending); line != "" {
			if err := process(line); err != nil {
				return nil, err
			}
		}
	}
	if name == "" {
		return nil, fmt.Errorf("blif: no .model found")
	}
	return build(name, inputs, outputs, latches, covers)
}

// ParseString parses a BLIF model held in a string.
func ParseString(s string) (*Model, error) { return Parse(strings.NewReader(s)) }

func build(name string, inputs, outputs []string, latches []Latch, covers []*cover) (*Model, error) {
	n := logic.New(name)
	signal := make(map[string]logic.NodeID)

	for _, in := range inputs {
		if _, dup := signal[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %s", in)
		}
		signal[in] = n.AddInput(in)
	}
	// Latch outputs are pseudo-inputs of the combinational network.
	for _, l := range latches {
		if _, dup := signal[l.Output]; dup {
			return nil, fmt.Errorf("blif: latch output %s collides", l.Output)
		}
		signal[l.Output] = n.AddInput(l.Output)
	}

	// Covers may be declared in any order; elaborate on demand.
	coverOf := make(map[string]*cover, len(covers))
	for _, c := range covers {
		if _, dup := coverOf[c.output]; dup {
			return nil, fmt.Errorf("blif: signal %s defined twice", c.output)
		}
		coverOf[c.output] = c
	}

	visiting := make(map[string]bool)
	var elaborate func(sig string) (logic.NodeID, error)
	elaborate = func(sig string) (logic.NodeID, error) {
		if id, ok := signal[sig]; ok {
			return id, nil
		}
		c, ok := coverOf[sig]
		if !ok {
			return logic.InvalidNode, fmt.Errorf("blif: undriven signal %s", sig)
		}
		if visiting[sig] {
			return logic.InvalidNode, fmt.Errorf("blif: combinational cycle through %s", sig)
		}
		visiting[sig] = true
		defer delete(visiting, sig)
		faninIDs := make([]logic.NodeID, len(c.inputs))
		for i, in := range c.inputs {
			id, err := elaborate(in)
			if err != nil {
				return logic.InvalidNode, err
			}
			faninIDs[i] = id
		}
		id, err := elaborateCover(n, c, faninIDs)
		if err != nil {
			return logic.InvalidNode, err
		}
		// A trivial cover (e.g. a one-literal buffer) can collapse onto
		// an existing node; wrap it so naming this signal cannot clobber
		// the name of the node it aliases.
		if n.Node(id).Name != "" {
			id = n.AddBuf(id)
		}
		n.SetName(id, sig)
		signal[sig] = id
		return id, nil
	}

	for _, out := range outputs {
		id, err := elaborate(out)
		if err != nil {
			return nil, err
		}
		n.MarkOutput(out, id)
	}
	// Latch inputs (next-state functions) are pseudo-outputs.
	for _, l := range latches {
		id, err := elaborate(l.Input)
		if err != nil {
			return nil, err
		}
		if n.OutputByName(l.Input) < 0 {
			n.MarkOutput(l.Input, id)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("blif: built invalid network: %w", err)
	}
	return &Model{Network: n, Latches: latches}, nil
}

// elaborateCover converts one SOP cover into gates. BLIF covers list
// either the on-set (value '1') or the off-set (value '0'); mixing is not
// allowed. Off-set covers produce the complement of the listed cubes.
func elaborateCover(n *logic.Network, c *cover, fanins []logic.NodeID) (logic.NodeID, error) {
	if len(c.rows) == 0 {
		// Empty cover is constant 0.
		return n.AddConst(false), nil
	}
	value := c.rows[0].value
	for _, r := range c.rows {
		if r.value != value {
			return logic.InvalidNode, fmt.Errorf("blif: cover for %s mixes on-set and off-set", c.output)
		}
	}
	if len(c.inputs) == 0 {
		return n.AddConst(value == '1'), nil
	}
	var cubes []logic.NodeID
	for _, r := range c.rows {
		var lits []logic.NodeID
		for i, ch := range []byte(r.pattern) {
			switch ch {
			case '1':
				lits = append(lits, fanins[i])
			case '0':
				lits = append(lits, n.AddNot(fanins[i]))
			case '-':
				// Unused literal.
			default:
				return logic.InvalidNode, fmt.Errorf("blif: bad pattern char %q in cover for %s", ch, c.output)
			}
		}
		switch len(lits) {
		case 0:
			// A row of all '-' makes the cover a tautology.
			lits = append(lits, n.AddConst(true))
		}
		if len(lits) == 1 {
			cubes = append(cubes, lits[0])
		} else {
			cubes = append(cubes, n.AddAnd(lits...))
		}
	}
	var sum logic.NodeID
	if len(cubes) == 1 {
		sum = cubes[0]
	} else {
		sum = n.AddOr(cubes...)
	}
	if value == '0' {
		sum = n.AddNot(sum)
	}
	return sum, nil
}

// Write serializes a model to BLIF. Internal nodes get synthetic names
// (n<id>) unless they carry one. Gates are written as minimal covers:
// AND/OR/NOT/BUF/XOR become equivalent .names blocks.
func Write(w io.Writer, m *Model) error {
	n := m.Network
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Name)

	latchOut := make(map[string]bool, len(m.Latches))
	for _, l := range m.Latches {
		latchOut[l.Output] = true
	}
	fmt.Fprint(bw, ".inputs")
	for _, id := range n.Inputs() {
		if latchOut[n.Node(id).Name] {
			continue
		}
		fmt.Fprintf(bw, " %s", n.Node(id).Name)
	}
	fmt.Fprintln(bw)

	latchIn := make(map[string]bool, len(m.Latches))
	for _, l := range m.Latches {
		latchIn[l.Input] = true
	}
	fmt.Fprint(bw, ".outputs")
	for _, o := range n.Outputs() {
		// Latch inputs are pseudo-outputs added by Parse; they are
		// declared via .latch, not .outputs.
		if latchIn[o.Name] {
			continue
		}
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)

	for _, l := range m.Latches {
		fmt.Fprintf(bw, ".latch %s %s %d\n", l.Input, l.Output, l.Init)
	}

	nodeName := func(id logic.NodeID) string {
		node := n.Node(id)
		if node.Name != "" {
			return node.Name
		}
		return fmt.Sprintf("n%d", id)
	}

	for i := 0; i < n.NumNodes(); i++ {
		id := logic.NodeID(i)
		node := n.Node(id)
		switch node.Kind {
		case logic.KindInput:
			continue
		case logic.KindConst0:
			fmt.Fprintf(bw, ".names %s\n", nodeName(id))
		case logic.KindConst1:
			fmt.Fprintf(bw, ".names %s\n1\n", nodeName(id))
		case logic.KindBuf:
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", nodeName(node.Fanins[0]), nodeName(id))
		case logic.KindNot:
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", nodeName(node.Fanins[0]), nodeName(id))
		case logic.KindAnd:
			writeHeader(bw, n, node, nodeName, id)
			fmt.Fprintf(bw, "%s 1\n", strings.Repeat("1", len(node.Fanins)))
		case logic.KindOr:
			writeHeader(bw, n, node, nodeName, id)
			for j := range node.Fanins {
				row := make([]byte, len(node.Fanins))
				for k := range row {
					row[k] = '-'
				}
				row[j] = '1'
				fmt.Fprintf(bw, "%s 1\n", row)
			}
		case logic.KindXor:
			writeHeader(bw, n, node, nodeName, id)
			// Enumerate odd-parity rows; XOR fanin counts are small in
			// practice (Balance first if not).
			k := len(node.Fanins)
			if k > 16 {
				return fmt.Errorf("blif: XOR with %d fanins too wide to serialize", k)
			}
			for m := 0; m < 1<<uint(k); m++ {
				if parity(m) {
					row := make([]byte, k)
					for j := 0; j < k; j++ {
						if m&(1<<uint(j)) != 0 {
							row[j] = '1'
						} else {
							row[j] = '0'
						}
					}
					fmt.Fprintf(bw, "%s 1\n", row)
				}
			}
		}
	}
	// Outputs driven by differently-named nodes need an alias buffer.
	for _, o := range n.Outputs() {
		if nodeName(o.Driver) != o.Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", nodeName(o.Driver), o.Name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, n *logic.Network, node *logic.Node, nodeName func(logic.NodeID) string, id logic.NodeID) {
	fmt.Fprint(bw, ".names")
	for _, f := range node.Fanins {
		fmt.Fprintf(bw, " %s", nodeName(f))
	}
	fmt.Fprintf(bw, " %s\n", nodeName(id))
}

func parity(m int) bool {
	p := false
	for m != 0 {
		p = !p
		m &= m - 1
	}
	return p
}

// WriteString serializes a model to a string.
func WriteString(m *Model) (string, error) {
	var b strings.Builder
	if err := Write(&b, m); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SignalNames returns the sorted list of all named signals in a model's
// network, for diagnostics.
func SignalNames(m *Model) []string {
	var names []string
	n := m.Network
	for i := 0; i < n.NumNodes(); i++ {
		if name := n.Node(logic.NodeID(i)).Name; name != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
