//go:build !race

package blif_test

const raceEnabled = false
