package blif_test

import (
	"testing"

	"repro/internal/blif"
	"repro/internal/gen"
	"repro/internal/verify"
)

// TestWriteParseRoundTripTwins is the property test backing the corpus
// engine: serializing any synthetic twin to BLIF and parsing it back
// must preserve the network function exactly (proved by BDD-based CEC,
// not sampling) and the interface in name and order.
func TestWriteParseRoundTripTwins(t *testing.T) {
	for _, c := range gen.KnownCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if (testing.Short() || raceEnabled) && c.Net.GateCount() > 500 {
				t.Skip("large twin skipped in -short/-race mode")
			}
			t.Parallel() // the two big-BDD twins dominate; overlap them
			text, err := blif.WriteString(&blif.Model{Network: c.Net})
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			m, err := blif.ParseString(text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if got, want := m.Network.NumInputs(), c.Net.NumInputs(); got != want {
				t.Fatalf("inputs = %d, want %d", got, want)
			}
			if got, want := m.Network.NumOutputs(), c.Net.NumOutputs(); got != want {
				t.Fatalf("outputs = %d, want %d", got, want)
			}
			for pos, id := range c.Net.Inputs() {
				if got := m.Network.Node(m.Network.Inputs()[pos]).Name; got != c.Net.Node(id).Name {
					t.Fatalf("input %d renamed: %q vs %q", pos, got, c.Net.Node(id).Name)
				}
			}
			for idx, o := range c.Net.Outputs() {
				if got := m.Network.Outputs()[idx].Name; got != o.Name {
					t.Fatalf("output %d renamed: %q vs %q", idx, got, o.Name)
				}
			}
			res, err := verify.Equivalent(c.Net, m.Network)
			if err != nil {
				t.Fatalf("cec: %v", err)
			}
			if !res.Equivalent {
				t.Fatalf("round trip changed output %q", res.FailingOutput)
			}
		})
	}
}
