//go:build race

package blif_test

// raceEnabled skips the big-BDD round-trip twins under the race
// detector, where exact CEC of the 200+-input twins is minutes, not
// seconds. The plain `go test` run still proves them.
const raceEnabled = true
