// Package budget provides the cooperative cancellation and
// resource-budget token threaded through every compute engine (bdd,
// prob, sim, phase, power) by internal/flow. A token is one cheap
// atomic word the hot loops poll at bounded intervals — per
// unique-table insert batch in the BDD manager, per simulation window
// in the sim kernels, per candidate or subtree in the phase searches —
// so a per-circuit timeout or a client disconnect becomes a real exit
// of the worker goroutine instead of abandonment.
//
// On top of cancellation the token carries two resource budgets:
//
//   - a BDD node budget capping the node count of any single BDD build
//     (exceeding it trips the token with ErrBDDNodes, which the flow's
//     degradation chain turns into a retry on a cheaper estimator);
//   - a sim vector budget clamping the Monte-Carlo vectors a single
//     measurement may spend (a pure min, applied before the run starts,
//     so it is independent of worker count and shard order).
//
// Both budgets are deterministic: whether a build trips depends only on
// the circuit and the semantic config, never on timing or concurrency,
// which is what lets budget-degraded rows stay cacheable.
//
// All methods are safe on a nil *T (no budget, never cancelled), so
// engines can poll unconditionally.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Sentinel causes for a tripped token. Match with errors.Is: every
// error a tripped token produces wraps exactly one of these.
var (
	// ErrCancelled is the cause when the token was cancelled — by the
	// attached context (timeout, client disconnect) or an explicit
	// Cancel call.
	ErrCancelled = errors.New("cancelled")
	// ErrBDDNodes is the cause when a single BDD build exceeded the
	// node budget. The flow treats it as "retry on a cheaper engine",
	// not as a failure.
	ErrBDDNodes = errors.New("BDD node budget exceeded")
)

// T is one cancellation/budget token. The zero value is not meaningful;
// use New. A nil *T is a valid "unlimited, never cancelled" token.
type T struct {
	err           atomic.Pointer[error] // set once; non-nil after trip/cancel
	maxBDDNodes   int
	maxSimVectors int
	bddTrips      atomic.Int64
	simTrips      atomic.Int64
}

// New returns a token with the given budgets. Zero (or negative)
// disables the corresponding budget; New(0, 0) is a pure cancellation
// token.
func New(maxBDDNodes, maxSimVectors int) *T {
	if maxBDDNodes < 0 {
		maxBDDNodes = 0
	}
	if maxSimVectors < 0 {
		maxSimVectors = 0
	}
	return &T{maxBDDNodes: maxBDDNodes, maxSimVectors: maxSimVectors}
}

// AttachContext arranges for the token to be cancelled when ctx is
// done, and returns a stop function releasing that arrangement (call it
// when the attempt finishes; it does not un-cancel the token). A
// context that is already done cancels the token synchronously, so work
// started after an expired deadline is guaranteed to observe it at its
// first poll rather than racing the cancellation goroutine.
func (t *T) AttachContext(ctx context.Context) (stop func()) {
	if t == nil || ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if ctx.Err() != nil {
		t.Cancel(context.Cause(ctx))
		return func() {}
	}
	cancel := context.AfterFunc(ctx, func() { t.Cancel(context.Cause(ctx)) })
	return func() { cancel() }
}

// Cancel trips the token with ErrCancelled, recording cause (may be
// nil). Only the first trip of a token sticks.
func (t *T) Cancel(cause error) {
	if t == nil {
		return
	}
	err := error(ErrCancelled)
	if cause != nil {
		err = fmt.Errorf("%w: %w", ErrCancelled, cause)
	}
	t.err.CompareAndSwap(nil, &err)
}

// Err returns the trip cause, or nil while the token is live. This is
// the poll the hot loops issue: one atomic pointer load.
func (t *T) Err() error {
	if t == nil {
		return nil
	}
	if p := t.err.Load(); p != nil {
		return *p
	}
	return nil
}

// MaxBDDNodes returns the per-build BDD node cap, 0 if unlimited.
func (t *T) MaxBDDNodes() int {
	if t == nil {
		return 0
	}
	return t.maxBDDNodes
}

// TripBDD records a BDD node-budget trip and returns the error the
// build should surface. It does not cancel the token: the flow retries
// the circuit on a cheaper engine under the same token, so cancellation
// polls must keep returning nil.
func (t *T) TripBDD() error {
	if t == nil {
		return fmt.Errorf("%w", ErrBDDNodes)
	}
	t.bddTrips.Add(1)
	return fmt.Errorf("%w (max %d nodes)", ErrBDDNodes, t.maxBDDNodes)
}

// CapSimVectors clamps a requested vector count to the sim vector
// budget, recording a trip when the clamp bites. With no budget (or a
// nil token) it returns vectors unchanged.
func (t *T) CapSimVectors(vectors int) int {
	if t == nil || t.maxSimVectors <= 0 || vectors <= t.maxSimVectors {
		return vectors
	}
	t.simTrips.Add(1)
	return t.maxSimVectors
}

// BDDTrips returns how many builds tripped the node budget.
func (t *T) BDDTrips() int {
	if t == nil {
		return 0
	}
	return int(t.bddTrips.Load())
}

// SimTrips returns how many measurements were clamped by the vector
// budget.
func (t *T) SimTrips() int {
	if t == nil {
		return 0
	}
	return int(t.simTrips.Load())
}

// Trips returns the total budget trips (BDD + sim) recorded so far.
func (t *T) Trips() int {
	return t.BDDTrips() + t.SimTrips()
}
