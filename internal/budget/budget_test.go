package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenIsUnlimited(t *testing.T) {
	var tok *T
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token Err = %v", err)
	}
	if got := tok.CapSimVectors(1 << 20); got != 1<<20 {
		t.Fatalf("nil token clamped vectors to %d", got)
	}
	if tok.MaxBDDNodes() != 0 || tok.Trips() != 0 {
		t.Fatal("nil token reports a budget or trips")
	}
	tok.Cancel(nil) // must not panic
	stop := tok.AttachContext(context.Background())
	stop()
	if err := tok.TripBDD(); !errors.Is(err, ErrBDDNodes) {
		t.Fatalf("nil token TripBDD = %v", err)
	}
}

func TestCancelSticksAndWrapsCause(t *testing.T) {
	tok := New(0, 0)
	cause := errors.New("client went away")
	tok.Cancel(cause)
	tok.Cancel(errors.New("second cause ignored"))
	err := tok.Err()
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want wrap of ErrCancelled and cause", err)
	}
}

func TestAttachContext(t *testing.T) {
	tok := New(0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	stop := tok.AttachContext(ctx)
	defer stop()
	if tok.Err() != nil {
		t.Fatal("token tripped before context cancellation")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for tok.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("token never observed context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tok.Err(), ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", tok.Err())
	}
}

func TestBudgets(t *testing.T) {
	tok := New(100, 512)
	if tok.MaxBDDNodes() != 100 {
		t.Fatalf("MaxBDDNodes = %d", tok.MaxBDDNodes())
	}
	if got := tok.CapSimVectors(256); got != 256 || tok.SimTrips() != 0 {
		t.Fatalf("under-budget clamp: got %d, trips %d", got, tok.SimTrips())
	}
	if got := tok.CapSimVectors(4096); got != 512 || tok.SimTrips() != 1 {
		t.Fatalf("over-budget clamp: got %d, trips %d", got, tok.SimTrips())
	}
	if err := tok.TripBDD(); !errors.Is(err, ErrBDDNodes) {
		t.Fatalf("TripBDD = %v", err)
	}
	// Budget trips do not cancel the token: the degradation chain keeps
	// running cheaper engines under it.
	if tok.Err() != nil {
		t.Fatalf("budget trip cancelled the token: %v", tok.Err())
	}
	if tok.Trips() != 2 || tok.BDDTrips() != 1 {
		t.Fatalf("Trips = %d, BDDTrips = %d", tok.Trips(), tok.BDDTrips())
	}
}
