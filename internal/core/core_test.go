package core

import (
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
)

func testNet() *logic.Network {
	return gen.Generate(gen.Params{Name: "coretest", Inputs: 10, Outputs: 4, Gates: 50, Seed: 0xC04E, OrProb: 0.7})
}

func TestSynthesizeMinPower(t *testing.T) {
	r, err := Synthesize(testNet(), Options{Objective: MinPower, Vectors: 2048})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if r.Cells <= 0 || r.Area <= 0 {
		t.Errorf("cells %d, area %v", r.Cells, r.Area)
	}
	if r.MeasuredPower <= 0 || r.EstimatedPower <= 0 {
		t.Errorf("powers: est %v meas %v", r.EstimatedPower, r.MeasuredPower)
	}
	if r.Block.Net.HasInverters() {
		t.Error("mapped block has inverters")
	}
	// The synthesis must be functionally correct.
	eq, err := logic.Equivalent(r.Phase.Original, r.Phase.Reconstructed())
	if err != nil || !eq {
		t.Errorf("function changed: %v %v", eq, err)
	}
}

func TestCompareObjectives(t *testing.T) {
	ma, mp, err := Compare(testNet(), Options{Vectors: 2048})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if mp.Cells < ma.Cells {
		t.Errorf("MP (%d cells) beat MA (%d cells) on area — MA search is broken", mp.Cells, ma.Cells)
	}
	if mp.EstimatedPower > ma.EstimatedPower+1e-9 {
		t.Errorf("MP estimate (%v) worse than MA estimate (%v)", mp.EstimatedPower, ma.EstimatedPower)
	}
}

func TestSynthesizeExhaustivePower(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "tiny", Inputs: 8, Outputs: 3, Gates: 30, Seed: 3, OrProb: 0.7})
	exh, err := Synthesize(net, Options{Objective: ExhaustivePower, Vectors: 1024})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	mp, err := Synthesize(net, Options{Objective: MinPower, Vectors: 1024})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if mp.EstimatedPower < exh.EstimatedPower-1e-9 {
		t.Errorf("heuristic (%v) beat exhaustive (%v): exhaustive search broken", mp.EstimatedPower, exh.EstimatedPower)
	}
}

func TestSynthesizeWithTimingTarget(t *testing.T) {
	base, err := Synthesize(testNet(), Options{Objective: MinArea, Vectors: 512})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(testNet(), Options{Objective: MinArea, Vectors: 512, TimingTarget: base.CriticalDelay * 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if r.MetTiming && r.CriticalDelay > base.CriticalDelay*0.95 {
		t.Errorf("claimed timing met at %v > target %v", r.CriticalDelay, base.CriticalDelay*0.95)
	}
}

func TestSynthesizeRejectsBadProbs(t *testing.T) {
	if _, err := Synthesize(testNet(), Options{InputProbs: []float64{0.5}}); err == nil {
		t.Error("accepted wrong-length probability vector")
	}
}

func TestSynthesizePerInputProbs(t *testing.T) {
	net := testNet()
	probs := make([]float64, net.NumInputs())
	for i := range probs {
		probs[i] = 0.9
	}
	r, err := Synthesize(net, Options{InputProbs: probs, Vectors: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeasuredPower <= 0 {
		t.Error("no power measured")
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	r, err := Synthesize(testNet(), Options{Objective: MinPower, Vectors: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Re-applying the returned assignment must give the same block size.
	res, err := phase.Apply(r.Phase.Original, r.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.GateCount() != r.Phase.Block.GateCount() {
		t.Error("assignment does not reproduce the block")
	}
}

func TestSynthesizeLibraryOverride(t *testing.T) {
	lib := domino.DefaultLibrary()
	lib.MaxSeries = 2
	lib.MaxParallel = 2
	r, err := Synthesize(testNet(), Options{Objective: MinArea, Vectors: 256, Library: &lib})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Block.Cells {
		if c.Width > 2 {
			t.Fatalf("library override ignored: width %d cell", c.Width)
		}
	}
}

func TestSynthesizeSearchStrategies(t *testing.T) {
	net := testNet()
	// Branch-and-bound under ExhaustivePower must reproduce the default
	// exhaustive scan's estimate; annealing under MinPower must run and
	// be no worse than the all-positive baseline implied by MA's space.
	ref, err := Synthesize(net, Options{Objective: ExhaustivePower, Vectors: 1024})
	if err != nil {
		t.Fatalf("reference exhaustive: %v", err)
	}
	bb, err := Synthesize(net, Options{
		Objective: ExhaustivePower, SearchStrategy: phase.StrategyBranchBound, Vectors: 1024,
	})
	if err != nil {
		t.Fatalf("branch-and-bound: %v", err)
	}
	if bb.EstimatedPower != ref.EstimatedPower {
		t.Errorf("branch-and-bound estimate %v != exhaustive %v", bb.EstimatedPower, ref.EstimatedPower)
	}
	an, err := Synthesize(net, Options{
		Objective: MinPower, SearchStrategy: phase.StrategyAnneal, SearchSeed: 5, AnnealSteps: 400, Vectors: 1024,
	})
	if err != nil {
		t.Fatalf("anneal MinPower: %v", err)
	}
	if an.EstimatedPower < ref.EstimatedPower-1e-9 {
		t.Errorf("anneal estimate %v beat the exhaustive optimum %v", an.EstimatedPower, ref.EstimatedPower)
	}
}
