// Package core is the top-level API of the reproduction: one-call access
// to the paper's flow — phase assignment for low-power domino synthesis —
// with sensible defaults, plus re-exports of the option types a caller
// tunes.
//
// The pipeline behind Synthesize:
//
//	logic.Network (with inverters, from code or BLIF)
//	  → technology-independent cleanup (logic.Optimize, XOR decomposition)
//	  → output phase assignment (phase.MinArea / phase.MinPower /
//	    phase.Exhaustive, per Objective)
//	  → domino mapping (domino.Map) under a width-limited cell library
//	  → power estimation (power.Estimate, BDD-exact or approximate)
//	  → Monte-Carlo measurement (sim.Run)
//	  → optional timing resize (timing.Resize)
//
// Lower-level control lives in the respective internal packages; this
// package only composes them.
package core

import (
	"fmt"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Objective selects the phase-assignment goal.
type Objective int

// Synthesis objectives.
const (
	// MinPower runs the paper's pairwise-cost power heuristic ("MP").
	MinPower Objective = iota
	// MinArea runs the Puri-style minimum-area baseline ("MA").
	MinArea
	// ExhaustivePower searches all 2^outputs assignments for minimum
	// power (feasible up to 20 outputs).
	ExhaustivePower
)

// Options configures Synthesize. The zero value uses the defaults the
// reproduction's experiments use: input probability 0.5, the default
// domino library, auto-selected probability engine, 4096 measurement
// vectors.
type Options struct {
	Objective Objective
	// InputProb applies one signal probability to every primary input;
	// InputProbs (when non-nil) gives per-input probabilities instead.
	InputProb  float64
	InputProbs []float64
	// Library overrides the domino cell library.
	Library *domino.Library
	// Vectors is the Monte-Carlo measurement cycle count.
	Vectors int
	// Seed drives measurement vector generation.
	Seed int64
	// TimingTarget, when positive, resizes the mapped block to this
	// critical delay after mapping.
	TimingTarget float64
	// MaxPairs caps the MinPower pair set (0 = all).
	MaxPairs int
	// Workers bounds the worker pool used by the exhaustive phase search
	// and the Monte-Carlo measurement (0 = GOMAXPROCS, 1 = sequential).
	// Workers never changes results — only wall-clock.
	Workers int
	// SimShards splits the measurement vector budget into independently
	// seeded streams simulated concurrently (see sim.Config.Shards).
	// Results are a pure function of (Seed, Vectors, SimShards); 0 keeps
	// the single-stream sequential measurement.
	SimShards int
	// SimKernel selects the measurement engine (see sim.Kernel); the
	// zero value is the bit-parallel one. Like Workers, it never changes
	// results — only wall-clock.
	SimKernel sim.Kernel
	// SimBlockWords sets the blocked kernel's block size in 64-lane
	// words (see sim.Config.BlockWords); 0 means the kernel default.
	// Like SimKernel, it never changes results — only wall-clock.
	SimBlockWords int
	// PhaseScoring selects the candidate-scoring engine of the
	// power-driven phase searches (see flow.PhaseScoring; the zero value
	// precomputes the cone table and scores assignments from cached
	// per-cone terms, synthesizing only kept candidates).
	PhaseScoring flow.PhaseScoring
	// SearchStrategy selects the search strategy of the power-driven
	// objectives (see phase.SearchStrategy). Under MinPower the zero
	// value keeps the paper's pairwise heuristic; under ExhaustivePower
	// it keeps the sharded exhaustive scan. StrategyBranchBound stays
	// exact past the 2^k enumeration limit; StrategyAnneal and
	// StrategyGreedy trade exactness for arbitrary output counts.
	SearchStrategy phase.SearchStrategy
	// SearchSeed drives the random restarts/chains of the greedy and
	// annealing strategies; SearchRestarts sets how many beyond the
	// first (0 = default 3); AnnealSteps overrides the per-chain
	// proposal count (0 = 400·outputs).
	SearchSeed     int64
	SearchRestarts int
	AnnealSteps    int
}

// Result bundles the synthesized implementation and its measurements.
type Result struct {
	// Assignment is the chosen output phase assignment.
	Assignment phase.Assignment
	// Phase carries the inverter-free block and boundary metadata.
	Phase *phase.Result
	// Block is the mapped domino implementation.
	Block *domino.Block
	// Cells is the standard-cell count (domino cells + boundary
	// inverters); Area the sized area.
	Cells int
	Area  float64
	// EstimatedPower is the model power Σ S·C·(1+P); MeasuredPower the
	// Monte-Carlo measurement in the same units.
	EstimatedPower float64
	MeasuredPower  float64
	// CriticalDelay is the post-flow critical path delay; MetTiming
	// reports whether TimingTarget (if any) was met.
	CriticalDelay float64
	MetTiming     bool
}

// Synthesize runs the full flow on a network and returns the implemented
// block with its measurements. The input network may contain inverters
// and XOR gates; it is cleaned and decomposed first.
func Synthesize(net *logic.Network, opts Options) (*Result, error) {
	if opts.InputProb == 0 {
		opts.InputProb = 0.5
	}
	if opts.Vectors == 0 {
		opts.Vectors = 4096
	}
	lib := domino.DefaultLibrary()
	if opts.Library != nil {
		lib = *opts.Library
	}
	prepared := flow.Prepare(net)
	probs := opts.InputProbs
	if probs == nil {
		probs = make([]float64, prepared.NumInputs())
		for i := range probs {
			probs[i] = opts.InputProb
		}
	}
	if len(probs) != prepared.NumInputs() {
		return nil, fmt.Errorf("core: %d input probs for %d inputs", len(probs), prepared.NumInputs())
	}

	// The power objectives score candidates from the cone table unless
	// the naive per-candidate synthesize-and-estimate path is requested.
	var scorer phase.AssignmentScorer
	if opts.Objective != MinArea && opts.PhaseScoring != flow.ScoreNaive {
		table, tErr := power.NewConeTable(prepared, lib, probs, power.Options{})
		if tErr != nil {
			return nil, fmt.Errorf("core: cone table: %w", tErr)
		}
		scorer = table
	}

	var asg phase.Assignment
	var res *phase.Result
	var err error
	switch opts.Objective {
	case MinPower:
		popts := phase.PowerOptions{
			InputProbs:     probs,
			Scorer:         scorer,
			MaxPairs:       opts.MaxPairs,
			Strategy:       opts.SearchStrategy,
			SearchWorkers:  opts.Workers,
			SearchSeed:     opts.SearchSeed,
			SearchRestarts: opts.SearchRestarts,
			AnnealSteps:    opts.AnnealSteps,
		}
		if scorer == nil {
			popts.Evaluate = power.NewEstimator(lib, probs, power.Options{}).Evaluate
		}
		asg, res, _, _, err = phase.MinPower(prepared, popts)
	case MinArea:
		asg, res, _, err = phase.MinArea(prepared, phase.SearchOptions{
			Workers: opts.Workers,
			Eval: func(r *phase.Result) (float64, error) {
				b, mErr := domino.Map(r, lib)
				if mErr != nil {
					return 0, mErr
				}
				return float64(b.CellCount()), nil
			},
		})
	case ExhaustivePower:
		switch {
		case opts.SearchStrategy != phase.StrategyAuto:
			asg, res, _, err = phase.Search(prepared, phase.SearchOptions{
				Strategy:    opts.SearchStrategy,
				Scorer:      scorer,
				Eval:        power.Evaluator(lib, probs, power.Options{}),
				Workers:     opts.Workers,
				Seed:        opts.SearchSeed,
				Restarts:    opts.SearchRestarts,
				AnnealSteps: opts.AnnealSteps,
			})
		case scorer != nil:
			asg, res, _, err = phase.ExhaustiveScored(prepared, scorer, opts.Workers)
		default:
			asg, res, _, err = phase.ExhaustiveParallel(prepared, power.Evaluator(lib, probs, power.Options{}), opts.Workers)
		}
	default:
		return nil, fmt.Errorf("core: unknown objective %d", opts.Objective)
	}
	if err != nil {
		return nil, err
	}

	block, err := domino.Map(res, lib)
	if err != nil {
		return nil, err
	}
	out := &Result{Assignment: asg, Phase: res, Block: block, MetTiming: true}

	tp := timing.DefaultParams()
	if opts.TimingTarget > 0 {
		a, _, rErr := timing.Resize(block, tp, opts.TimingTarget)
		out.CriticalDelay = a.Critical
		out.MetTiming = rErr == nil
	} else {
		out.CriticalDelay = timing.Analyze(block, tp).Critical
	}

	est, err := power.Estimate(block, probs, power.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(block, sim.Config{
		Vectors: opts.Vectors, Seed: opts.Seed, InputProbs: probs,
		Shards: opts.SimShards, Workers: opts.Workers, Kernel: opts.SimKernel,
		BlockWords: opts.SimBlockWords,
	})
	if err != nil {
		return nil, err
	}
	out.EstimatedPower = est.Total
	out.MeasuredPower = rep.Total
	out.Cells = block.CellCount()
	out.Area = block.Area()
	return out, nil
}

// Compare synthesizes the same network under the minimum-area and
// minimum-power objectives and returns both results — the paper's MA/MP
// experiment for one circuit.
func Compare(net *logic.Network, opts Options) (ma, mp *Result, err error) {
	o := opts
	o.Objective = MinArea
	ma, err = Synthesize(net, o)
	if err != nil {
		return nil, nil, err
	}
	o.Objective = MinPower
	mp, err = Synthesize(net, o)
	if err != nil {
		return nil, nil, err
	}
	return ma, mp, nil
}
