package core

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
)

// TestSynthesizeParallelRaceRegression drives the full pipeline with a
// multi-worker pool on every objective. Its job is to give `go test
// -race` something to bite on: any shared-state hazard in the parallel
// phase search or the sharded simulator surfaces here.
func TestSynthesizeParallelRaceRegression(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "racereg", Inputs: 12, Outputs: 6, Gates: 80, Seed: 0xACE, OrProb: 0.65})
	for _, obj := range []Objective{MinPower, MinArea, ExhaustivePower} {
		r, err := Synthesize(net, Options{
			Objective: obj, Vectors: 2048, Workers: 8, SimShards: 8,
		})
		if err != nil {
			t.Fatalf("objective %d: %v", obj, err)
		}
		if r.Cells <= 0 || r.MeasuredPower <= 0 {
			t.Errorf("objective %d: cells %d, measured %v", obj, r.Cells, r.MeasuredPower)
		}
	}
}

// TestSynthesizeKernelInvariant pins the kernel contract at the top of
// the stack: swapping the scalar measurement engine for the bit-parallel
// one must not change a single field of the synthesis result.
func TestSynthesizeKernelInvariant(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "kernreg", Inputs: 10, Outputs: 5, Gates: 60, Seed: 0xBEA7, OrProb: 0.6})
	for _, obj := range []Objective{MinArea, MinPower} {
		var want *Result
		for _, k := range []sim.Kernel{sim.KernelScalar, sim.KernelWide, sim.KernelAuto} {
			r, err := Synthesize(net, Options{
				Objective: obj, Vectors: 1500, Seed: 7, Workers: 4, SimShards: 4, SimKernel: k,
			})
			if err != nil {
				t.Fatalf("objective %d kernel=%d: %v", obj, k, err)
			}
			if want == nil {
				want = r
				continue
			}
			if !reflect.DeepEqual(r, want) {
				t.Errorf("objective %d kernel=%d: result drifted: %+v vs %+v", obj, k, r, want)
			}
		}
	}
}

// TestSynthesizeWorkersInvariant pins the determinism contract at the top
// of the stack: for a fixed (Seed, Vectors, SimShards), the Workers knob
// must not change a single field of the result.
func TestSynthesizeWorkersInvariant(t *testing.T) {
	net := gen.Generate(gen.Params{Name: "detreg", Inputs: 10, Outputs: 5, Gates: 60, Seed: 0xDEE, OrProb: 0.6})
	for _, obj := range []Objective{MinArea, ExhaustivePower} {
		var want *Result
		for _, workers := range []int{1, 2, 8} {
			r, err := Synthesize(net, Options{
				Objective: obj, Vectors: 1024, Seed: 3, Workers: workers, SimShards: 4,
			})
			if err != nil {
				t.Fatalf("objective %d workers=%d: %v", obj, workers, err)
			}
			if want == nil {
				want = r
				continue
			}
			if !reflect.DeepEqual(r.Assignment, want.Assignment) {
				t.Errorf("objective %d workers=%d: assignment %s != %s", obj, workers, r.Assignment, want.Assignment)
			}
			if r.MeasuredPower != want.MeasuredPower || r.EstimatedPower != want.EstimatedPower ||
				r.Cells != want.Cells || r.Area != want.Area {
				t.Errorf("objective %d workers=%d: measurements drifted: %+v vs %+v", obj, workers, r, want)
			}
		}
	}
}
