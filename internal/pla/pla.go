// Package pla reads and writes the Berkeley PLA format used by espresso
// and the MCNC two-level benchmark suite. A PLA is a multi-output cube
// cover; this package converts between PLA files and per-output
// sop.Cover values, and elaborates them into logic networks.
//
// Supported directives: .i .o .p .ilb .ob .type fr/f (off-set rows of
// type fr are accepted and checked for consistency), .e/.end, '#'
// comments. Output plane characters: 1 (on), 0/~ (off/don't care for the
// output), - (don't care).
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/sop"
)

// PLA is a parsed multi-output cover.
type PLA struct {
	Name         string
	NumInputs    int
	NumOutputs   int
	InputLabels  []string
	OutputLabels []string
	// Rows holds the input cubes; OutputPlane[r][o] is the output-plane
	// character for row r, output o ('1', '0', '-', '~').
	Rows        []sop.Cube
	OutputPlane [][]byte
}

// Parse reads a PLA from r.
func Parse(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	p := &PLA{Name: "pla"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: malformed .i", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("pla: line %d: malformed .i %q", lineNo, fields[1])
			}
			p.NumInputs = n
		case ".o":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: malformed .o", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("pla: line %d: malformed .o %q", lineNo, fields[1])
			}
			p.NumOutputs = n
		case ".p":
			// Row-count hint; ignored (rows are counted as read).
		case ".ilb":
			p.InputLabels = append([]string(nil), fields[1:]...)
		case ".ob":
			p.OutputLabels = append([]string(nil), fields[1:]...)
		case ".type":
			// fr and f are both treated as on-set semantics for '1'.
		case ".e", ".end":
			goto done
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("pla: line %d: unsupported directive %s", lineNo, fields[0])
			}
			if p.NumInputs == 0 || p.NumOutputs == 0 {
				return nil, fmt.Errorf("pla: line %d: cube before .i/.o", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: want input and output planes", lineNo)
			}
			in, out := fields[0], fields[1]
			if len(in) != p.NumInputs {
				return nil, fmt.Errorf("pla: line %d: input plane width %d, want %d", lineNo, len(in), p.NumInputs)
			}
			if len(out) != p.NumOutputs {
				return nil, fmt.Errorf("pla: line %d: output plane width %d, want %d", lineNo, len(out), p.NumOutputs)
			}
			cube := sop.NewCube(p.NumInputs)
			for v, ch := range []byte(in) {
				switch ch {
				case '1':
					cube = cube.WithLiteral(v, sop.Pos)
				case '0':
					cube = cube.WithLiteral(v, sop.Neg)
				case '-', '2':
				default:
					return nil, fmt.Errorf("pla: line %d: bad input char %q", lineNo, ch)
				}
			}
			for _, ch := range []byte(out) {
				switch ch {
				case '0', '1', '-', '~', '2', '4':
				default:
					return nil, fmt.Errorf("pla: line %d: bad output char %q", lineNo, ch)
				}
			}
			p.Rows = append(p.Rows, cube)
			p.OutputPlane = append(p.OutputPlane, []byte(out))
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla: %w", err)
	}
	if p.NumInputs == 0 || p.NumOutputs == 0 {
		return nil, fmt.Errorf("pla: missing .i/.o")
	}
	p.defaultLabels()
	return p, nil
}

// ParseString parses a PLA held in a string.
func ParseString(s string) (*PLA, error) { return Parse(strings.NewReader(s)) }

func (p *PLA) defaultLabels() {
	for len(p.InputLabels) < p.NumInputs {
		p.InputLabels = append(p.InputLabels, fmt.Sprintf("in%d", len(p.InputLabels)))
	}
	for len(p.OutputLabels) < p.NumOutputs {
		p.OutputLabels = append(p.OutputLabels, fmt.Sprintf("out%d", len(p.OutputLabels)))
	}
}

// Cover extracts the on-set cover of output o.
func (p *PLA) Cover(o int) *sop.Cover {
	c := sop.NewCover(p.NumInputs)
	for r, cube := range p.Rows {
		if p.OutputPlane[r][o] == '1' || p.OutputPlane[r][o] == '4' {
			c.Add(cube.Clone())
		}
	}
	return c
}

// ToNetwork elaborates the PLA as a multi-output AND/OR/NOT network.
func (p *PLA) ToNetwork() (*logic.Network, error) {
	n := logic.New(p.Name)
	ins := make([]logic.NodeID, p.NumInputs)
	for i, nm := range p.InputLabels {
		ins[i] = n.AddInput(nm)
	}
	invCache := make(map[int]logic.NodeID)
	inv := func(v int) logic.NodeID {
		if id, ok := invCache[v]; ok {
			return id
		}
		id := n.AddNot(ins[v])
		invCache[v] = id
		return id
	}
	// Cube AND gates are shared across outputs.
	cubeNode := make([]logic.NodeID, len(p.Rows))
	for r, cube := range p.Rows {
		var lits []logic.NodeID
		for v := 0; v < p.NumInputs; v++ {
			switch cube.Literal(v) {
			case sop.Pos:
				lits = append(lits, ins[v])
			case sop.Neg:
				lits = append(lits, inv(v))
			}
		}
		switch len(lits) {
		case 0:
			cubeNode[r] = n.AddConst(true)
		case 1:
			cubeNode[r] = lits[0]
		default:
			cubeNode[r] = n.AddAnd(lits...)
		}
	}
	for o := 0; o < p.NumOutputs; o++ {
		var terms []logic.NodeID
		for r := range p.Rows {
			if p.OutputPlane[r][o] == '1' || p.OutputPlane[r][o] == '4' {
				terms = append(terms, cubeNode[r])
			}
		}
		var driver logic.NodeID
		switch len(terms) {
		case 0:
			driver = n.AddConst(false)
		case 1:
			driver = n.AddBuf(terms[0])
		default:
			driver = n.AddOr(terms...)
		}
		n.MarkOutput(p.OutputLabels[o], driver)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("pla: invalid network: %w", err)
	}
	return n, nil
}

// FromCovers assembles a PLA from per-output covers over a shared input
// space.
func FromCovers(name string, inputLabels []string, outputLabels []string, covers []*sop.Cover) (*PLA, error) {
	if len(covers) == 0 {
		return nil, fmt.Errorf("pla: no covers")
	}
	numIn := covers[0].NumVars
	for _, c := range covers {
		if c.NumVars != numIn {
			return nil, fmt.Errorf("pla: covers disagree on input count")
		}
	}
	p := &PLA{
		Name:         name,
		NumInputs:    numIn,
		NumOutputs:   len(covers),
		InputLabels:  append([]string(nil), inputLabels...),
		OutputLabels: append([]string(nil), outputLabels...),
	}
	p.defaultLabels()
	for o, c := range covers {
		for _, cube := range c.Cubes {
			p.Rows = append(p.Rows, cube.Clone())
			plane := make([]byte, len(covers))
			for i := range plane {
				plane[i] = '-'
			}
			plane[o] = '1'
			p.OutputPlane = append(p.OutputPlane, plane)
		}
	}
	return p, nil
}

// Write serializes the PLA.
func Write(w io.Writer, p *PLA) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", p.NumInputs, p.NumOutputs)
	fmt.Fprintf(bw, ".ilb %s\n", strings.Join(p.InputLabels, " "))
	fmt.Fprintf(bw, ".ob %s\n", strings.Join(p.OutputLabels, " "))
	fmt.Fprintf(bw, ".p %d\n", len(p.Rows))
	for r, cube := range p.Rows {
		fmt.Fprintf(bw, "%s %s\n", cube, p.OutputPlane[r])
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// WriteString serializes the PLA to a string.
func WriteString(p *PLA) (string, error) {
	var b strings.Builder
	if err := Write(&b, p); err != nil {
		return "", err
	}
	return b.String(), nil
}
