package pla

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/sop"
)

const sample = `
# 2-bit adder sum bits, espresso style
.i 3
.o 2
.ilb a b cin
.ob sum carry
.p 5
11- -1
1-1 -1
-11 -1
10- 1-   # not a real adder row; exercise mixed planes
001 1-
.e
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sample)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if p.NumInputs != 3 || p.NumOutputs != 2 {
		t.Fatalf("interface %d/%d", p.NumInputs, p.NumOutputs)
	}
	if len(p.Rows) != 5 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	if p.InputLabels[2] != "cin" || p.OutputLabels[1] != "carry" {
		t.Errorf("labels wrong: %v %v", p.InputLabels, p.OutputLabels)
	}
	carry := p.Cover(1)
	if len(carry.Cubes) != 3 {
		t.Errorf("carry cubes = %d, want 3", len(carry.Cubes))
	}
}

func TestToNetworkSemantics(t *testing.T) {
	p, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.ToNetwork()
	if err != nil {
		t.Fatalf("ToNetwork: %v", err)
	}
	// carry = ab + a·cin + b·cin (majority).
	cases := []struct {
		in    [3]bool
		carry bool
	}{
		{[3]bool{false, false, false}, false},
		{[3]bool{true, true, false}, true},
		{[3]bool{true, false, true}, true},
		{[3]bool{false, true, true}, true},
		{[3]bool{true, false, false}, false},
	}
	for _, c := range cases {
		if got := n.EvalOutputs(c.in[:])[1]; got != c.carry {
			t.Errorf("carry(%v) = %v, want %v", c.in, got, c.carry)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no io", "11 1\n.e"},
		{"bad width", ".i 2\n.o 1\n111 1\n.e"},
		{"bad char", ".i 2\n.o 1\nxx 1\n.e"},
		{"bad out width", ".i 2\n.o 2\n11 1\n.e"},
		{"bad directive", ".i 2\n.o 1\n.banana\n.e"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	n1, err := p.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := p2.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := logic.Equivalent(n1, n2)
	if err != nil || !eq {
		t.Fatalf("round trip changed function (%v %v):\n%s", eq, err, text)
	}
}

func TestFromCovers(t *testing.T) {
	a := sop.NewCover(2)
	a.Add(sop.NewCube(2).WithLiteral(0, sop.Pos).WithLiteral(1, sop.Pos))
	b := sop.NewCover(2)
	b.Add(sop.NewCube(2).WithLiteral(0, sop.Neg))
	p, err := FromCovers("fc", []string{"x", "y"}, []string{"and", "notx"}, []*sop.Cover{a, b})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	outs := n.EvalOutputs([]bool{true, true})
	if outs[0] != true || outs[1] != false {
		t.Errorf("FromCovers semantics wrong: %v", outs)
	}
	outs = n.EvalOutputs([]bool{false, true})
	if outs[0] != false || outs[1] != true {
		t.Errorf("FromCovers semantics wrong: %v", outs)
	}
	text, err := WriteString(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, ".ob and notx") {
		t.Errorf("labels lost:\n%s", text)
	}
}

func TestDefaultLabels(t *testing.T) {
	p, err := ParseString(".i 2\n.o 1\n11 1\n.e")
	if err != nil {
		t.Fatal(err)
	}
	if p.InputLabels[0] != "in0" || p.OutputLabels[0] != "out0" {
		t.Errorf("default labels: %v %v", p.InputLabels, p.OutputLabels)
	}
}

func TestMalformedIODirectives(t *testing.T) {
	// fmt.Sscanf errors on .i/.o used to be ignored, leaving
	// NumInputs/NumOutputs at 0 and surfacing later as a misleading
	// "cube before .i/.o" (or "missing .i/.o") at the wrong line.
	cases := []struct {
		name, src, wantAt string
	}{
		{"non-numeric .i", ".i abc\n.o 1\n1 1\n.e", "line 1"},
		{"non-numeric .o", ".i 1\n.o xyz\n1 1\n.e", "line 2"},
		{"trailing garbage .i", ".i 2x\n.o 1\n11 1\n.e", "line 1"},
		{"zero .i", ".i 0\n.o 1\n 1\n.e", "line 1"},
		{"negative .o", ".i 1\n.o -3\n1 1\n.e", "line 2"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("%s: expected error, got none", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantAt) {
			t.Errorf("%s: error %q does not point at %s", c.name, err, c.wantAt)
		}
	}
}
