package logic

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomBlockNet builds a random DAG over all gate kinds, including
// constants, wide gates, and Buf/Not chains, for blocked-eval
// cross-checking.
func randomBlockNet(rng *rand.Rand, inputs, gates, outputs int) *Network {
	n := New("blk")
	ids := make([]NodeID, 0, inputs+gates+2)
	for i := 0; i < inputs; i++ {
		ids = append(ids, n.AddInput(fmt.Sprintf("bin%d", i)))
	}
	ids = append(ids, n.AddConst(false), n.AddConst(true))
	pick := func() NodeID { return ids[rng.Intn(len(ids))] }
	for g := 0; g < gates; g++ {
		switch rng.Intn(6) {
		case 0:
			ids = append(ids, n.AddBuf(pick()))
		case 1:
			ids = append(ids, n.AddNot(pick()))
		case 2:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 3:
			ids = append(ids, n.AddOr(pick(), pick()))
		case 4:
			ids = append(ids, n.AddXor(pick(), pick()))
		default:
			fan := []NodeID{pick(), pick(), pick()}
			if rng.Intn(2) == 0 {
				fan = append(fan, pick())
			}
			if rng.Intn(2) == 0 {
				ids = append(ids, n.AddAnd(fan...))
			} else {
				ids = append(ids, n.AddOr(fan...))
			}
		}
	}
	for i := 0; i < outputs; i++ {
		n.MarkOutput(fmt.Sprintf("bout%d", i), ids[len(ids)-1-i])
	}
	return n
}

// TestEvalWideBlockedMatchesEvalWide checks the blocked evaluator
// column by column against EvalWide for every supported block size: word
// j of every node's block must equal the EvalWide word for that window's
// inputs.
func TestEvalWideBlockedMatchesEvalWide(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB10C))
	for trial := 0; trial < 20; trial++ {
		n := randomBlockNet(rng, 2+rng.Intn(10), 5+rng.Intn(80), 1+rng.Intn(4))
		nin := n.NumInputs()
		for _, bw := range []int{1, 2, 3, 4, 5, 8} {
			in := make([]uint64, nin*bw)
			for i := range in {
				in[i] = rng.Uint64()
			}
			blocked := n.EvalWideBlocked(in, bw, nil)
			wideIn := make([]uint64, nin)
			scratch := make([]uint64, n.NumNodes())
			for j := 0; j < bw; j++ {
				for i := 0; i < nin; i++ {
					wideIn[i] = in[i*bw+j]
				}
				wide := n.EvalWide(wideIn, scratch)
				for id := 0; id < n.NumNodes(); id++ {
					if blocked[id*bw+j] != wide[id] {
						t.Fatalf("trial %d bw=%d word %d node %d: blocked %#x, wide %#x",
							trial, bw, j, id, blocked[id*bw+j], wide[id])
					}
				}
			}
		}
	}
}

// TestEvalWideBlockedScratchReuse pins the scratch contract: a reused
// buffer must give the same words as a fresh allocation, and the result
// aliases the provided scratch when it is large enough.
func TestEvalWideBlockedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := randomBlockNet(rng, 6, 40, 2)
	const bw = 4
	in := make([]uint64, n.NumInputs()*bw)
	for i := range in {
		in[i] = rng.Uint64()
	}
	fresh := n.EvalWideBlocked(in, bw, nil)
	scratch := make([]uint64, n.NumNodes()*bw)
	for i := range scratch {
		scratch[i] = ^uint64(0) // garbage must not leak through
	}
	reused := n.EvalWideBlocked(in, bw, scratch)
	if &reused[0] != &scratch[0] {
		t.Fatalf("result does not alias the provided scratch")
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("word %d: fresh %#x, reused %#x", i, fresh[i], reused[i])
		}
	}
}

// TestBlockedEvalGatingMatchesStateless drives the gated evaluator
// through a sequence of input blocks designed to trigger skips — blocks
// repeat wholesale, repeat on a subset of inputs, or change completely —
// and requires every output to stay identical to the stateless
// EvalWideBlocked. This is the gating invariant under test: a skipped
// gate's words are provably unchanged, so gating can never alter a
// value, only avoid recomputing it.
func TestBlockedEvalGatingMatchesStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6A7E))
	for trial := 0; trial < 10; trial++ {
		n := randomBlockNet(rng, 3+rng.Intn(8), 10+rng.Intn(60), 1+rng.Intn(3))
		nin := n.NumInputs()
		for _, bw := range []int{1, 3, 8} {
			ev := n.NewBlockedEval(bw)
			in := make([]uint64, nin*bw)
			for i := range in {
				in[i] = rng.Uint64()
			}
			for step := 0; step < 12; step++ {
				switch rng.Intn(3) {
				case 0:
					// Repeat the previous block unchanged.
				case 1:
					// Change a single input's block.
					i := rng.Intn(nin)
					for j := 0; j < bw; j++ {
						in[i*bw+j] = rng.Uint64()
					}
				default:
					for i := range in {
						in[i] = rng.Uint64()
					}
				}
				got := ev.Eval(in)
				want := n.EvalWideBlocked(in, bw, nil)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d bw=%d step %d word %d: gated %#x, stateless %#x",
							trial, bw, step, i, got[i], want[i])
					}
				}
			}
			gates := 0
			for id := 0; id < n.NumNodes(); id++ {
				if n.Kind(NodeID(id)).IsGate() {
					gates++
				}
			}
			if total := ev.GateEvals() + ev.GateSkips(); total != int64(gates*12) {
				t.Errorf("trial %d bw=%d: evals %d + skips %d != gates %d × 12 steps",
					trial, bw, ev.GateEvals(), ev.GateSkips(), gates)
			}
		}
	}
}

// TestBlockedEvalSkipsOnRepeatedInputs checks that gating actually
// fires: after the warm-up call, re-evaluating the identical input block
// must skip every gate.
func TestBlockedEvalSkipsOnRepeatedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := randomBlockNet(rng, 8, 60, 3)
	const bw = 8
	ev := n.NewBlockedEval(bw)
	in := make([]uint64, n.NumInputs()*bw)
	for i := range in {
		in[i] = rng.Uint64()
	}
	ev.Eval(in)
	if ev.GateSkips() != 0 {
		t.Fatalf("first call skipped %d gates; nothing to compare against yet", ev.GateSkips())
	}
	evalsAfterWarmup := ev.GateEvals()
	ev.Eval(in)
	if ev.GateEvals() != evalsAfterWarmup {
		t.Errorf("identical repeat re-evaluated %d gates", ev.GateEvals()-evalsAfterWarmup)
	}
	if ev.GateSkips() != evalsAfterWarmup {
		t.Errorf("identical repeat skipped %d gates, want all %d", ev.GateSkips(), evalsAfterWarmup)
	}
}

func BenchmarkEvalWideBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := randomBlockNet(rng, 24, 400, 8)
	const bw = 8
	in := make([]uint64, n.NumInputs()*bw)
	for i := range in {
		in[i] = rng.Uint64()
	}
	scratch := make([]uint64, n.NumNodes()*bw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.EvalWideBlocked(in, bw, scratch)
	}
}
