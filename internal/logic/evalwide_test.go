package logic

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomWideNet builds a random network exercising every node kind,
// including constants, buffers, and wide n-ary gates.
func randomWideNet(rng *rand.Rand, numInputs, numGates int) *Network {
	n := New("wide")
	var ids []NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(fmt.Sprintf("in%d", i)))
	}
	ids = append(ids, n.AddConst(false), n.AddConst(true))
	pick := func() NodeID { return ids[rng.Intn(len(ids))] }
	for g := 0; g < numGates; g++ {
		switch rng.Intn(6) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddBuf(pick()))
		case 2:
			ids = append(ids, n.AddAnd(pick(), pick(), pick()))
		case 3:
			ids = append(ids, n.AddOr(pick(), pick()))
		case 4:
			ids = append(ids, n.AddXor(pick(), pick(), pick()))
		default:
			ids = append(ids, n.AddAnd(pick()))
		}
	}
	n.MarkOutput("f", ids[len(ids)-1])
	return n
}

// TestEvalWideMatchesEval drives 64 random assignments through the
// scalar evaluator and the packed lanes of one EvalWide call: every lane
// of every node must agree.
func TestEvalWideMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(0xEA7))
	for trial := 0; trial < 20; trial++ {
		n := randomWideNet(rng, 1+rng.Intn(10), 1+rng.Intn(60))
		inWords := make([]uint64, n.NumInputs())
		for i := range inWords {
			inWords[i] = rng.Uint64()
		}
		wide := n.EvalWide(inWords, nil)
		inVals := make([]bool, n.NumInputs())
		scratch := make([]bool, n.NumNodes())
		for k := 0; k < 64; k++ {
			for i := range inVals {
				inVals[i] = inWords[i]&(1<<uint(k)) != 0
			}
			vals := n.Eval(inVals, scratch)
			for id := 0; id < n.NumNodes(); id++ {
				want := vals[id]
				got := wide[id]&(1<<uint(k)) != 0
				if want != got {
					t.Fatalf("trial %d lane %d node %d (%s): wide=%v scalar=%v",
						trial, k, id, n.Kind(NodeID(id)), got, want)
				}
			}
		}
	}
}

// TestEvalWideScratchReuse checks the scratch-slice contract matches
// Eval's: a reused scratch must not leak stale lane values.
func TestEvalWideScratchReuse(t *testing.T) {
	n := New("reuse")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddAnd(a, b))
	scratch := make([]uint64, n.NumNodes())
	for i := range scratch {
		scratch[i] = ^uint64(0)
	}
	got := n.EvalWide([]uint64{0xF0F0, 0xFF00}, scratch)
	if want := uint64(0xF000); got[2] != want {
		t.Fatalf("AND word = %#x, want %#x", got[2], want)
	}
	got2 := n.EvalWide([]uint64{0, 0}, got)
	if got2[2] != 0 {
		t.Fatalf("stale scratch leaked: %#x", got2[2])
	}
}

func BenchmarkEvalWide(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := randomWideNet(rng, 24, 800)
	inWords := make([]uint64, n.NumInputs())
	for i := range inWords {
		inWords[i] = rng.Uint64()
	}
	scratch := make([]uint64, n.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.EvalWide(inWords, scratch)
	}
}
