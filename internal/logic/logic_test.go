package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// buildExample returns the running example from the paper's Figure 3:
// f = not(a+b) or (c·d), g = (a+b) or (c·d), with explicit inverters.
func buildExample(t testing.TB) *Network {
	t.Helper()
	n := New("fig3")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	ab := n.AddOr(a, b)
	cd := n.AddAnd(c, d)
	nab := n.AddNot(ab)
	f := n.AddOr(nab, cd)
	g := n.AddOr(ab, cd)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return n
}

func TestNetworkBasics(t *testing.T) {
	n := buildExample(t)
	if got, want := n.NumInputs(), 4; got != want {
		t.Errorf("NumInputs = %d, want %d", got, want)
	}
	if got, want := n.NumOutputs(), 2; got != want {
		t.Errorf("NumOutputs = %d, want %d", got, want)
	}
	if got, want := n.NumNodes(), 9; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	if !n.HasInverters() {
		t.Error("HasInverters = false, want true")
	}
	if got := n.InputByName("c"); n.Kind(got) != KindInput || n.Node(got).Name != "c" {
		t.Errorf("InputByName(c) resolved to wrong node %d", got)
	}
	if got := n.InputByName("zz"); got != InvalidNode {
		t.Errorf("InputByName(zz) = %d, want InvalidNode", got)
	}
	if got := n.OutputByName("g"); got != 1 {
		t.Errorf("OutputByName(g) = %d, want 1", got)
	}
	if got := n.OutputByName("zz"); got != -1 {
		t.Errorf("OutputByName(zz) = %d, want -1", got)
	}
}

func TestEval(t *testing.T) {
	n := buildExample(t)
	cases := []struct {
		in   [4]bool // a b c d
		f, g bool
	}{
		{[4]bool{false, false, false, false}, true, false},
		{[4]bool{true, false, false, false}, false, true},
		{[4]bool{false, false, true, true}, true, true},
		{[4]bool{true, true, true, true}, true, true},
		{[4]bool{false, true, true, false}, false, true},
	}
	for _, c := range cases {
		outs := n.EvalOutputs(c.in[:])
		if outs[0] != c.f || outs[1] != c.g {
			t.Errorf("Eval(%v): got f=%v g=%v, want f=%v g=%v", c.in, outs[0], outs[1], c.f, c.g)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	n := buildExample(t)
	lv := n.Levels()
	// Inputs at level 0, or(a,b)/and(c,d) at 1, not at 2, f at 3, g at 2.
	if lv[4] != 1 || lv[5] != 1 {
		t.Errorf("first-level gates: got %d,%d want 1,1", lv[4], lv[5])
	}
	if got, want := n.Depth(), 3; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
}

func TestFanoutCounts(t *testing.T) {
	n := buildExample(t)
	counts := n.FanoutCounts()
	ab := NodeID(4) // or(a,b)
	if counts[ab] != 2 {
		t.Errorf("fanout of or(a,b) = %d, want 2 (not + g)", counts[ab])
	}
	cd := NodeID(5)
	if counts[cd] != 2 {
		t.Errorf("fanout of and(c,d) = %d, want 2 (f + g)", counts[cd])
	}
}

func TestFaninCone(t *testing.T) {
	n := buildExample(t)
	fIdx := n.Outputs()[0].Driver
	cone := n.FaninCone(fIdx)
	count := 0
	for _, b := range cone {
		if b {
			count++
		}
	}
	// f's cone: a,b,c,d, or(a,b), and(c,d), not, f = 8 nodes.
	if count != 8 {
		t.Errorf("f cone size = %d, want 8", count)
	}
	if got := n.ConeSize(fIdx); got != 8 {
		t.Errorf("ConeSize = %d, want 8", got)
	}
}

func TestConeOverlap(t *testing.T) {
	n := buildExample(t)
	cones := n.OutputCones()
	got := ConeOverlap(cones[0], cones[1])
	// f cone: 8 nodes, g cone: 7 nodes, intersection: a,b,c,d,or,and = 6.
	want := 6.0 / 15.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ConeOverlap = %v, want %v", got, want)
	}
	if ConeOverlap(cones[0], cones[0]) != 0.5 {
		t.Errorf("self overlap should be 0.5")
	}
}

func TestFanoutConeSizes(t *testing.T) {
	n := buildExample(t)
	sizes := n.FanoutConeSizes()
	// Output f (node 7) and g (node 8) have fanout cone just themselves.
	if sizes[7] != 1 || sizes[8] != 1 {
		t.Errorf("output fanout cones = %d,%d, want 1,1", sizes[7], sizes[8])
	}
	// a reaches or(a,b), not, f, g and itself = 5.
	if sizes[0] != 5 {
		t.Errorf("fanout cone of a = %d, want 5", sizes[0])
	}
	// c reaches and(c,d), f, g and itself = 4.
	if sizes[2] != 4 {
		t.Errorf("fanout cone of c = %d, want 4", sizes[2])
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildExample(t)
	c := n.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	c.AddInput("extra")
	c.MarkOutput("h", 0)
	if n.NumInputs() != 4 || n.NumOutputs() != 2 {
		t.Error("mutating clone affected original")
	}
	eq, err := Equivalent(n, buildExample(t))
	if err != nil || !eq {
		t.Errorf("Equivalent(n, rebuilt) = %v, %v, want true", eq, err)
	}
}

func TestValidateCatchesArity(t *testing.T) {
	n := New("bad")
	a := n.AddInput("a")
	n.AddNot(a)
	// Corrupt: force a second fanin onto the NOT node.
	n.nodes[1].Fanins = append(n.nodes[1].Fanins, a)
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted NOT with two fanins")
	}
}

func TestRebuildDropsDangling(t *testing.T) {
	n := buildExample(t)
	// Add dangling logic.
	x := n.AddAnd(0, 1)
	n.AddNot(x)
	r := n.Rebuild()
	if r.NumNodes() != 9 {
		t.Errorf("Rebuild kept %d nodes, want 9", r.NumNodes())
	}
	eq, err := Equivalent(n, r)
	if err != nil || !eq {
		t.Errorf("Rebuild changed function: %v, %v", eq, err)
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	n := New("const")
	a := n.AddInput("a")
	one := n.AddConst(true)
	zero := n.AddConst(false)
	n.MarkOutput("and1", n.AddAnd(a, one))           // = a
	n.MarkOutput("and0", n.AddAnd(a, zero))          // = 0
	n.MarkOutput("or0", n.AddOr(a, zero))            // = a
	n.MarkOutput("or1", n.AddOr(a, one))             // = 1
	n.MarkOutput("aa", n.AddAnd(a, a))               // = a
	n.MarkOutput("axa", n.AddXor(a, a))              // = 0
	n.MarkOutput("axnota", n.AddXor(a, n.AddNot(a))) // = 1
	na := n.AddNot(a)
	n.MarkOutput("contradiction", n.AddAnd(a, na)) // = 0
	n.MarkOutput("tautology", n.AddOr(a, na))      // = 1
	n.MarkOutput("dblneg", n.AddNot(n.AddNot(a)))  // = a

	o := n.Optimize()
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	eq, err := Equivalent(n, o)
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if !eq {
		t.Fatal("Optimize changed function")
	}
	// Everything should fold away: only input a, const0, const1 and one
	// inverter (for nothing, actually even that should be gone).
	if o.GateCount() != 0 {
		t.Errorf("Optimize left %d gates, want 0\n%s", o.GateCount(), o)
	}
}

func TestOptimizeCSE(t *testing.T) {
	n := New("cse")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddAnd(a, b)
	y := n.AddAnd(b, a) // same function, different fanin order
	n.MarkOutput("x", x)
	n.MarkOutput("y", y)
	o := n.Optimize()
	if got := o.CountKind(KindAnd); got != 1 {
		t.Errorf("CSE left %d AND gates, want 1", got)
	}
}

// randomNetwork builds a random AND/OR/NOT/XOR network for property tests.
func randomNetwork(rng *rand.Rand, numInputs, numGates int) *Network {
	n := New("rand")
	ids := make([]NodeID, 0, numInputs+numGates)
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(inputName(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() NodeID { return ids[rng.Intn(len(ids))] }
		var id NodeID
		switch rng.Intn(6) {
		case 0:
			id = n.AddNot(pick())
		case 1:
			id = n.AddXor(pick(), pick())
		case 2, 3:
			id = n.AddAnd(pick(), pick())
			if rng.Intn(3) == 0 {
				id = n.AddAnd(id, pick(), pick())
			}
		default:
			id = n.AddOr(pick(), pick())
			if rng.Intn(3) == 0 {
				id = n.AddOr(id, pick(), pick())
			}
		}
		ids = append(ids, id)
	}
	// Mark the last few nodes as outputs.
	numOut := 1 + rng.Intn(4)
	for i := 0; i < numOut; i++ {
		n.MarkOutput(outputName(i), ids[len(ids)-1-i])
	}
	return n
}

func inputName(i int) string  { return "i" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func outputName(i int) string { return "o" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestOptimizePreservesFunctionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(6), 1+rng.Intn(30))
		o := n.Optimize()
		if err := o.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v\n%s", trial, err, o)
		}
		eq, err := Equivalent(n, o)
		if err != nil {
			t.Fatalf("trial %d: Equivalent: %v", trial, err)
		}
		if !eq {
			t.Fatalf("trial %d: Optimize changed function\nbefore:\n%s\nafter:\n%s", trial, n, o)
		}
		if o.NumNodes() > n.NumNodes() {
			t.Fatalf("trial %d: Optimize grew network %d -> %d", trial, n.NumNodes(), o.NumNodes())
		}
	}
}

func TestDecomposeXorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(5), 1+rng.Intn(25))
		d := n.DecomposeXor()
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v", trial, err)
		}
		if d.CountKind(KindXor) != 0 {
			t.Fatalf("trial %d: DecomposeXor left XOR gates", trial)
		}
		eq, err := Equivalent(n, d)
		if err != nil || !eq {
			t.Fatalf("trial %d: DecomposeXor changed function (%v, %v)", trial, eq, err)
		}
	}
}

func TestBalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := New("wide")
		var ids []NodeID
		for i := 0; i < 9; i++ {
			ids = append(ids, n.AddInput(inputName(i)))
		}
		n.MarkOutput("w", n.AddAnd(ids...))
		n.MarkOutput("v", n.AddOr(ids[:7]...))
		maxFanin := 2 + rng.Intn(3)
		b := n.Balance(maxFanin)
		if err := b.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		for i := 0; i < b.NumNodes(); i++ {
			if len(b.Fanins(NodeID(i))) > maxFanin {
				t.Fatalf("Balance(%d) left node with %d fanins", maxFanin, len(b.Fanins(NodeID(i))))
			}
		}
		eq, err := Equivalent(n, b)
		if err != nil || !eq {
			t.Fatalf("Balance changed function (%v, %v)", eq, err)
		}
	}
}

func TestTruthTables(t *testing.T) {
	n := New("tt")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("and", n.AddAnd(a, b))
	n.MarkOutput("or", n.AddOr(a, b))
	n.MarkOutput("xor", n.AddXor(a, b))
	tt := n.TruthTables()
	if tt[0][0] != 0b1000 {
		t.Errorf("AND table = %b, want 1000", tt[0][0])
	}
	if tt[1][0] != 0b1110 {
		t.Errorf("OR table = %b, want 1110", tt[1][0])
	}
	if tt[2][0] != 0b0110 {
		t.Errorf("XOR table = %b, want 0110", tt[2][0])
	}
}

func BenchmarkOptimize(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := randomNetwork(rng, 16, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Optimize()
	}
}

func BenchmarkFanoutConeSizes(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n := randomNetwork(rng, 16, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.FanoutConeSizes()
	}
}

func TestStringDump(t *testing.T) {
	n := buildExample(t)
	s := n.String()
	for _, want := range []string{"network fig3", "input", "or", "and", "not", "outputs: f="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	n := New("p")
	a := n.AddInput("a")
	expectPanic("duplicate input", func() { n.AddInput("a") })
	expectPanic("empty and", func() { n.AddAnd() })
	expectPanic("fanin out of range", func() { n.AddNot(NodeID(99)) })
	expectPanic("AddGate buf arity", func() { n.AddGate(KindBuf, a, a) })
	expectPanic("AddGate input kind", func() { n.AddGate(KindInput) })
	expectPanic("Balance maxFanin", func() { n.Balance(1) })
	n.MarkOutput("f", a)
	expectPanic("duplicate output", func() { n.MarkOutput("f", a) })
	expectPanic("bad output driver", func() { n.MarkOutput("g", NodeID(99)) })
	expectPanic("bad SetOutputDriver", func() { n.SetOutputDriver(0, NodeID(99)) })
	expectPanic("eval arity", func() { n.Eval(nil, nil) })
	expectPanic("cone length mismatch", func() { ConeOverlap(make([]bool, 1), make([]bool, 2)) })
}

func TestTruthTablesTooWide(t *testing.T) {
	n := New("wide")
	for i := 0; i < 21; i++ {
		n.AddInput(inputName(i))
	}
	defer func() {
		if recover() == nil {
			t.Error("TruthTables accepted 21 inputs")
		}
	}()
	n.TruthTables()
}

func TestEquivalentInterfaceMismatches(t *testing.T) {
	a := New("a")
	a.MarkOutput("f", a.AddInput("x"))
	b := New("b")
	xb := b.AddInput("x")
	b.AddInput("y")
	b.MarkOutput("f", xb)
	if _, err := Equivalent(a, b); err == nil {
		t.Error("accepted input count mismatch")
	}
	c := New("c")
	xc := c.AddInput("x")
	c.MarkOutput("g", xc)
	if _, err := Equivalent(a, c); err == nil {
		t.Error("accepted output name mismatch")
	}
	d := New("d")
	d.MarkOutput("f", d.AddInput("z"))
	if _, err := Equivalent(a, d); err == nil {
		t.Error("accepted input name mismatch")
	}
}

func TestEquivalentSampledFindsDifference(t *testing.T) {
	a := New("a")
	x := a.AddInput("x")
	y := a.AddInput("y")
	a.MarkOutput("f", a.AddAnd(x, y))
	b := New("b")
	x2 := b.AddInput("x")
	y2 := b.AddInput("y")
	b.MarkOutput("f", b.AddOr(x2, y2))
	eq, err := EquivalentSampled(a, b, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("sampled check missed AND vs OR")
	}
}

func TestSetNameAndKindString(t *testing.T) {
	n := New("k")
	a := n.AddInput("a")
	g := n.AddBuf(a)
	n.SetName(g, "buffed")
	if n.Node(g).Name != "buffed" {
		t.Error("SetName failed")
	}
	for k := KindInput; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty String", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}
