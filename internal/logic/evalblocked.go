package logic

import "fmt"

// MaxBlockWords is the largest supported evaluation block: 8 words of 64
// lanes each, 512 packed assignments per blocked call. The cap keeps the
// per-gate accumulator a fixed-size stack array.
const MaxBlockWords = 8

// Word-block primitives. Every slice has length bw (the callers slice
// exactly); each returns the OR of all changed destination bits so the
// gated evaluator gets its change test for free.

func blkCopyDiff(dst, a []uint64) uint64 {
	var d uint64
	a = a[:len(dst)]
	for j := range dst {
		v := a[j]
		d |= dst[j] ^ v
		dst[j] = v
	}
	return d
}

func blkNotDiff(dst, a []uint64) uint64 {
	var d uint64
	a = a[:len(dst)]
	for j := range dst {
		v := ^a[j]
		d |= dst[j] ^ v
		dst[j] = v
	}
	return d
}

func blkAnd2Diff(dst, a, b []uint64) uint64 {
	var d uint64
	a = a[:len(dst)]
	b = b[:len(dst)]
	for j := range dst {
		v := a[j] & b[j]
		d |= dst[j] ^ v
		dst[j] = v
	}
	return d
}

func blkOr2Diff(dst, a, b []uint64) uint64 {
	var d uint64
	a = a[:len(dst)]
	b = b[:len(dst)]
	for j := range dst {
		v := a[j] | b[j]
		d |= dst[j] ^ v
		dst[j] = v
	}
	return d
}

func blkXor2Diff(dst, a, b []uint64) uint64 {
	var d uint64
	a = a[:len(dst)]
	b = b[:len(dst)]
	for j := range dst {
		v := a[j] ^ b[j]
		d |= dst[j] ^ v
		dst[j] = v
	}
	return d
}

func blkAndInto(t, a []uint64) {
	a = a[:len(t)]
	for j := range t {
		t[j] &= a[j]
	}
}

func blkOrInto(t, a []uint64) {
	a = a[:len(t)]
	for j := range t {
		t[j] |= a[j]
	}
}

func blkXorInto(t, a []uint64) {
	a = a[:len(t)]
	for j := range t {
		t[j] ^= a[j]
	}
}

// evalBlockedNode recomputes node i's bw-word block in words and returns
// the OR of the changed destination bits. t is the caller's bw-word
// accumulator for gates wider than two fanins.
func evalBlockedNode(node *Node, words []uint64, i, bw int, t []uint64) uint64 {
	dst := words[i*bw : (i+1)*bw]
	fan := node.Fanins
	blk := func(f NodeID) []uint64 { return words[int(f)*bw : (int(f)+1)*bw] }
	switch node.Kind {
	case KindBuf:
		return blkCopyDiff(dst, blk(fan[0]))
	case KindNot:
		return blkNotDiff(dst, blk(fan[0]))
	case KindAnd:
		if len(fan) == 2 {
			return blkAnd2Diff(dst, blk(fan[0]), blk(fan[1]))
		}
		copy(t, blk(fan[0]))
		for _, f := range fan[1:] {
			blkAndInto(t, blk(f))
		}
		return blkCopyDiff(dst, t)
	case KindOr:
		if len(fan) == 2 {
			return blkOr2Diff(dst, blk(fan[0]), blk(fan[1]))
		}
		copy(t, blk(fan[0]))
		for _, f := range fan[1:] {
			blkOrInto(t, blk(f))
		}
		return blkCopyDiff(dst, t)
	case KindXor:
		if len(fan) == 2 {
			return blkXor2Diff(dst, blk(fan[0]), blk(fan[1]))
		}
		copy(t, blk(fan[0]))
		for _, f := range fan[1:] {
			blkXorInto(t, blk(f))
		}
		return blkCopyDiff(dst, t)
	}
	return 0
}

func checkBlockWords(bw int) {
	if bw < 1 || bw > MaxBlockWords {
		panic(fmt.Sprintf("logic: block of %d words (want 1..%d)", bw, MaxBlockWords))
	}
}

// EvalWideBlocked evaluates the network for bw blocked words of 64
// packed assignments each — up to 512 lanes per call. The layout is
// flat and node-major: word j of node id lives at index id*bw+j, and
// inputWords is parallel to Inputs() in the same [input][bw] layout
// (input i's word j at i*bw+j). Lane k of word j is assignment j*64+k.
// Blocking amortizes the per-gate dispatch of EvalWide over bw words
// and keeps each gate's operands in adjacent cache lines. The words
// slice may be reused across calls by passing it as scratch (pass nil
// to allocate), exactly as with Eval and EvalWide.
func (n *Network) EvalWideBlocked(inputWords []uint64, bw int, scratch []uint64) []uint64 {
	checkBlockWords(bw)
	if len(inputWords) != len(n.inputs)*bw {
		panic(fmt.Sprintf("logic: EvalWideBlocked got %d input words, want %d×%d",
			len(inputWords), len(n.inputs), bw))
	}
	words := scratch
	if cap(words) < len(n.nodes)*bw {
		words = make([]uint64, len(n.nodes)*bw)
	}
	words = words[:len(n.nodes)*bw]
	for i, id := range n.inputs {
		copy(words[int(id)*bw:(int(id)+1)*bw], inputWords[i*bw:(i+1)*bw])
	}
	var tmp [MaxBlockWords]uint64
	t := tmp[:bw]
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			// Already set.
		case KindConst0:
			for j := i * bw; j < (i+1)*bw; j++ {
				words[j] = 0
			}
		case KindConst1:
			for j := i * bw; j < (i+1)*bw; j++ {
				words[j] = ^uint64(0)
			}
		default:
			evalBlockedNode(node, words, i, bw, t)
		}
	}
	return words
}

// BlockedEval is the stateful, activity-gated form of EvalWideBlocked:
// it keeps every node's previous block of words and skips re-evaluating
// a gate when none of its fanin blocks changed since the last call — in
// which case the gate's words are provably identical too, so the stale
// block stands. On low-activity inputs (probabilities near 0 or 1,
// where packed words repeat block over block) this removes most gate
// work; on dense inputs it degrades to one extra flag test per gate.
// The skip test itself rides on the XOR diffs the change tracking
// already computes, so gating adds no per-word passes.
//
// The returned slice aliases the internal state and is valid until the
// next Eval call. A BlockedEval is not safe for concurrent use.
type BlockedEval struct {
	net     *Network
	bw      int
	words   []uint64
	changed []bool
	started bool
	// evals and skips count per-gate-per-block decisions (gate kinds
	// only: Buf, Not, And, Or, Xor).
	evals int64
	skips int64
}

// NewBlockedEval allocates gated evaluation state for blocks of bw
// words (1 ≤ bw ≤ MaxBlockWords).
func (n *Network) NewBlockedEval(bw int) *BlockedEval {
	checkBlockWords(bw)
	return &BlockedEval{
		net:     n,
		bw:      bw,
		words:   make([]uint64, len(n.nodes)*bw),
		changed: make([]bool, len(n.nodes)),
	}
}

// BlockWords returns the configured words-per-block.
func (e *BlockedEval) BlockWords() int { return e.bw }

// GateEvals and GateSkips return the cumulative gating counters: how
// many per-gate block evaluations ran and how many were skipped because
// no fanin block changed. Their sum is gates × Eval calls.
func (e *BlockedEval) GateEvals() int64 { return e.evals }

// GateSkips returns the skipped-gate count; see GateEvals.
func (e *BlockedEval) GateSkips() int64 { return e.skips }

// Eval evaluates one block of inputWords (the EvalWideBlocked layout)
// with activity gating and returns the node words, node-major. The
// first call evaluates everything (there is no previous block to be
// equal to); it is counted entirely as evals.
func (e *BlockedEval) Eval(inputWords []uint64) []uint64 {
	n := e.net
	bw := e.bw
	if len(inputWords) != len(n.inputs)*bw {
		panic(fmt.Sprintf("logic: BlockedEval got %d input words, want %d×%d",
			len(inputWords), len(n.inputs), bw))
	}
	words := e.words
	started := e.started
	for i, id := range n.inputs {
		d := blkCopyDiff(words[int(id)*bw:(int(id)+1)*bw], inputWords[i*bw:(i+1)*bw])
		e.changed[id] = d != 0 || !started
	}
	var tmp [MaxBlockWords]uint64
	t := tmp[:bw]
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			// Change flag already set above.
		case KindConst0, KindConst1:
			if !started {
				v := uint64(0)
				if node.Kind == KindConst1 {
					v = ^uint64(0)
				}
				for j := i * bw; j < (i+1)*bw; j++ {
					words[j] = v
				}
			}
			e.changed[i] = !started
		default:
			if started {
				any := false
				for _, f := range node.Fanins {
					if e.changed[f] {
						any = true
						break
					}
				}
				if !any {
					// Gating invariant: identical fanin blocks mean the
					// stale output block is already the correct value.
					e.changed[i] = false
					e.skips++
					continue
				}
			}
			e.evals++
			d := evalBlockedNode(node, words, i, bw, t)
			e.changed[i] = d != 0 || !started
		}
	}
	e.started = true
	return words
}
