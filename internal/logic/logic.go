// Package logic implements the Boolean logic network substrate used by the
// domino phase-assignment flow.
//
// A Network is a directed acyclic graph of gates. Nodes are created in
// topological order (every fanin must already exist), which keeps all
// downstream traversals trivially linear and makes the structure cheap to
// validate. Networks are the common currency of the whole reproduction:
// the BLIF reader produces them, the phase assigner rewrites them, the
// domino mapper consumes them and the simulator executes them.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Network. IDs are dense indexes
// into the Network's node table.
type NodeID int32

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Kind enumerates the gate types a Network can hold.
type Kind uint8

// Node kinds. And/Or/Xor are n-ary (at least one fanin); Not and Buf are
// unary. Const0/Const1 and Input have no fanins.
const (
	KindInput Kind = iota
	KindConst0
	KindConst1
	KindBuf
	KindNot
	KindAnd
	KindOr
	KindXor
	numKinds
)

// String returns a short lower-case mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst0:
		return "const0"
	case KindConst1:
		return "const1"
	case KindBuf:
		return "buf"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindXor:
		return "xor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsGate reports whether the kind is a logic gate (has fanins), as opposed
// to an input or constant.
func (k Kind) IsGate() bool {
	switch k {
	case KindBuf, KindNot, KindAnd, KindOr, KindXor:
		return true
	}
	return false
}

// Node is a single vertex of the network DAG.
type Node struct {
	Kind   Kind
	Fanins []NodeID
	// Name is optional; inputs and named internal signals carry one.
	Name string
}

// Output is a named primary output of a network. Several outputs may refer
// to the same driver node.
type Output struct {
	Name   string
	Driver NodeID
}

// Network is a combinational Boolean network. The zero value is not usable;
// call New.
type Network struct {
	// Name labels the network (model name in BLIF terms).
	Name string

	nodes   []Node
	inputs  []NodeID
	outputs []Output

	inputIndex  map[string]NodeID
	outputIndex map[string]int
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{
		Name:        name,
		inputIndex:  make(map[string]NodeID),
		outputIndex: make(map[string]int),
	}
}

// NumNodes returns the total number of nodes, including inputs and
// constants.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumInputs returns the number of primary inputs.
func (n *Network) NumInputs() int { return len(n.inputs) }

// NumOutputs returns the number of primary outputs.
func (n *Network) NumOutputs() int { return len(n.outputs) }

// Node returns the node with the given id. The returned value aliases the
// internal table; callers must not mutate Fanins.
func (n *Network) Node(id NodeID) *Node {
	return &n.nodes[id]
}

// Kind returns the kind of node id.
func (n *Network) Kind(id NodeID) Kind { return n.nodes[id].Kind }

// Fanins returns the fanin list of node id. The slice aliases internal
// storage.
func (n *Network) Fanins(id NodeID) []NodeID { return n.nodes[id].Fanins }

// Inputs returns the primary input node ids in creation order. The slice
// aliases internal storage.
func (n *Network) Inputs() []NodeID { return n.inputs }

// Outputs returns the primary outputs in creation order. The slice aliases
// internal storage.
func (n *Network) Outputs() []Output { return n.outputs }

// InputByName returns the input node with the given name, or InvalidNode.
func (n *Network) InputByName(name string) NodeID {
	if id, ok := n.inputIndex[name]; ok {
		return id
	}
	return InvalidNode
}

// OutputByName returns the output index with the given name, or -1.
func (n *Network) OutputByName(name string) int {
	if i, ok := n.outputIndex[name]; ok {
		return i
	}
	return -1
}

func (n *Network) add(node Node) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	return id
}

func (n *Network) checkFanins(kind Kind, fanins []NodeID) {
	for _, f := range fanins {
		if f < 0 || int(f) >= len(n.nodes) {
			panic(fmt.Sprintf("logic: %s fanin %d out of range [0,%d)", kind, f, len(n.nodes)))
		}
	}
}

// AddInput creates a new primary input with the given name. Names must be
// unique among inputs.
func (n *Network) AddInput(name string) NodeID {
	if _, dup := n.inputIndex[name]; dup {
		panic(fmt.Sprintf("logic: duplicate input %q", name))
	}
	id := n.add(Node{Kind: KindInput, Name: name})
	n.inputs = append(n.inputs, id)
	n.inputIndex[name] = id
	return id
}

// AddConst creates a constant node with the given value.
func (n *Network) AddConst(value bool) NodeID {
	k := KindConst0
	if value {
		k = KindConst1
	}
	return n.add(Node{Kind: k})
}

// AddBuf creates a buffer of a.
func (n *Network) AddBuf(a NodeID) NodeID {
	n.checkFanins(KindBuf, []NodeID{a})
	return n.add(Node{Kind: KindBuf, Fanins: []NodeID{a}})
}

// AddNot creates an inverter of a.
func (n *Network) AddNot(a NodeID) NodeID {
	n.checkFanins(KindNot, []NodeID{a})
	return n.add(Node{Kind: KindNot, Fanins: []NodeID{a}})
}

// AddAnd creates an n-ary AND of the given fanins (at least one).
func (n *Network) AddAnd(fanins ...NodeID) NodeID {
	return n.addNary(KindAnd, fanins)
}

// AddOr creates an n-ary OR of the given fanins (at least one).
func (n *Network) AddOr(fanins ...NodeID) NodeID {
	return n.addNary(KindOr, fanins)
}

// AddXor creates an n-ary XOR of the given fanins (at least one).
func (n *Network) AddXor(fanins ...NodeID) NodeID {
	return n.addNary(KindXor, fanins)
}

// AddGate creates a gate of the given kind. It dispatches to the typed
// constructors and panics on non-gate kinds.
func (n *Network) AddGate(kind Kind, fanins ...NodeID) NodeID {
	switch kind {
	case KindBuf:
		if len(fanins) != 1 {
			panic("logic: buf takes exactly one fanin")
		}
		return n.AddBuf(fanins[0])
	case KindNot:
		if len(fanins) != 1 {
			panic("logic: not takes exactly one fanin")
		}
		return n.AddNot(fanins[0])
	case KindAnd, KindOr, KindXor:
		return n.addNary(kind, fanins)
	default:
		panic(fmt.Sprintf("logic: AddGate of non-gate kind %s", kind))
	}
}

func (n *Network) addNary(kind Kind, fanins []NodeID) NodeID {
	if len(fanins) == 0 {
		panic(fmt.Sprintf("logic: %s requires at least one fanin", kind))
	}
	n.checkFanins(kind, fanins)
	fs := make([]NodeID, len(fanins))
	copy(fs, fanins)
	return n.add(Node{Kind: kind, Fanins: fs})
}

// SetName attaches a name to an internal node. It does not affect input or
// output name indexes.
func (n *Network) SetName(id NodeID, name string) { n.nodes[id].Name = name }

// MarkOutput declares node driver as the primary output called name.
// Output names must be unique.
func (n *Network) MarkOutput(name string, driver NodeID) int {
	if _, dup := n.outputIndex[name]; dup {
		panic(fmt.Sprintf("logic: duplicate output %q", name))
	}
	if driver < 0 || int(driver) >= len(n.nodes) {
		panic(fmt.Sprintf("logic: output %q driver %d out of range", name, driver))
	}
	idx := len(n.outputs)
	n.outputs = append(n.outputs, Output{Name: name, Driver: driver})
	n.outputIndex[name] = idx
	return idx
}

// SetOutputDriver repoints an existing output at a new driver node.
func (n *Network) SetOutputDriver(idx int, driver NodeID) {
	if driver < 0 || int(driver) >= len(n.nodes) {
		panic(fmt.Sprintf("logic: output %d driver %d out of range", idx, driver))
	}
	n.outputs[idx].Driver = driver
}

// TopoOrder returns all node ids in topological order. Because nodes are
// created fanins-first, this is simply 0..NumNodes-1.
func (n *Network) TopoOrder() []NodeID {
	order := make([]NodeID, len(n.nodes))
	for i := range order {
		order[i] = NodeID(i)
	}
	return order
}

// FanoutCounts returns, for every node, the number of fanin references to
// it plus the number of outputs it drives.
func (n *Network) FanoutCounts() []int {
	counts := make([]int, len(n.nodes))
	for i := range n.nodes {
		for _, f := range n.nodes[i].Fanins {
			counts[f]++
		}
	}
	for _, o := range n.outputs {
		counts[o.Driver]++
	}
	return counts
}

// FanoutLists returns, for every node, the list of node ids that use it as
// a fanin. Output references are not included; use FanoutCounts for that.
func (n *Network) FanoutLists() [][]NodeID {
	lists := make([][]NodeID, len(n.nodes))
	for i := range n.nodes {
		for _, f := range n.nodes[i].Fanins {
			lists[f] = append(lists[f], NodeID(i))
		}
	}
	return lists
}

// GateCount returns the number of logic gates (excluding inputs, constants
// and buffers).
func (n *Network) GateCount() int {
	c := 0
	for i := range n.nodes {
		k := n.nodes[i].Kind
		if k.IsGate() && k != KindBuf {
			c++
		}
	}
	return c
}

// CountKind returns the number of nodes of the given kind.
func (n *Network) CountKind(k Kind) int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].Kind == k {
			c++
		}
	}
	return c
}

// HasInverters reports whether the network contains any NOT node.
func (n *Network) HasInverters() bool { return n.CountKind(KindNot) > 0 }

// Validate checks structural invariants: fanin ordering (DAG by
// construction), fanin arities per kind, and index consistency. It returns
// a descriptive error for the first violation found.
func (n *Network) Validate() error {
	for i := range n.nodes {
		node := &n.nodes[i]
		for _, f := range node.Fanins {
			if f < 0 || int(f) >= len(n.nodes) {
				return fmt.Errorf("node %d: fanin %d out of range", i, f)
			}
			if int(f) >= i {
				return fmt.Errorf("node %d: fanin %d not strictly earlier (cycle or disorder)", i, f)
			}
		}
		switch node.Kind {
		case KindInput, KindConst0, KindConst1:
			if len(node.Fanins) != 0 {
				return fmt.Errorf("node %d: %s must have no fanins", i, node.Kind)
			}
		case KindBuf, KindNot:
			if len(node.Fanins) != 1 {
				return fmt.Errorf("node %d: %s must have exactly one fanin, has %d", i, node.Kind, len(node.Fanins))
			}
		case KindAnd, KindOr, KindXor:
			if len(node.Fanins) < 1 {
				return fmt.Errorf("node %d: %s must have at least one fanin", i, node.Kind)
			}
		default:
			return fmt.Errorf("node %d: unknown kind %d", i, node.Kind)
		}
	}
	for name, id := range n.inputIndex {
		if id < 0 || int(id) >= len(n.nodes) || n.nodes[id].Kind != KindInput {
			return fmt.Errorf("input index %q points at non-input node %d", name, id)
		}
	}
	for name, idx := range n.outputIndex {
		if idx < 0 || idx >= len(n.outputs) || n.outputs[idx].Name != name {
			return fmt.Errorf("output index %q inconsistent", name)
		}
	}
	for _, o := range n.outputs {
		if o.Driver < 0 || int(o.Driver) >= len(n.nodes) {
			return fmt.Errorf("output %q driver %d out of range", o.Name, o.Driver)
		}
	}
	return nil
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := New(n.Name)
	c.nodes = make([]Node, len(n.nodes))
	for i := range n.nodes {
		c.nodes[i] = n.nodes[i]
		if len(n.nodes[i].Fanins) > 0 {
			c.nodes[i].Fanins = append([]NodeID(nil), n.nodes[i].Fanins...)
		}
	}
	c.inputs = append([]NodeID(nil), n.inputs...)
	c.outputs = append([]Output(nil), n.outputs...)
	for k, v := range n.inputIndex {
		c.inputIndex[k] = v
	}
	for k, v := range n.outputIndex {
		c.outputIndex[k] = v
	}
	return c
}

// String returns a compact human-readable dump of the network, one node
// per line, for debugging and golden tests.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s: %d nodes, %d inputs, %d outputs\n",
		n.Name, len(n.nodes), len(n.inputs), len(n.outputs))
	for i := range n.nodes {
		node := &n.nodes[i]
		fmt.Fprintf(&b, "  %4d %-6s", i, node.Kind)
		if len(node.Fanins) > 0 {
			parts := make([]string, len(node.Fanins))
			for j, f := range node.Fanins {
				parts[j] = fmt.Sprint(f)
			}
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, ","))
		}
		if node.Name != "" {
			fmt.Fprintf(&b, " %q", node.Name)
		}
		b.WriteByte('\n')
	}
	outs := make([]string, len(n.outputs))
	for i, o := range n.outputs {
		outs[i] = fmt.Sprintf("%s=%d", o.Name, o.Driver)
	}
	sort.Strings(outs)
	fmt.Fprintf(&b, "  outputs: %s\n", strings.Join(outs, " "))
	return b.String()
}

// Levels returns the topological level of every node: inputs and constants
// are level 0, a gate is 1 + max level of its fanins.
func (n *Network) Levels() []int {
	lv := make([]int, len(n.nodes))
	for i := range n.nodes {
		node := &n.nodes[i]
		if len(node.Fanins) == 0 {
			lv[i] = 0
			continue
		}
		max := 0
		for _, f := range node.Fanins {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[i] = max + 1
	}
	return lv
}

// Depth returns the maximum topological level among output drivers.
func (n *Network) Depth() int {
	lv := n.Levels()
	d := 0
	for _, o := range n.outputs {
		if lv[o.Driver] > d {
			d = lv[o.Driver]
		}
	}
	return d
}
