package logic

import "math/bits"

// FaninCone returns the set of node ids in the transitive fanin of root,
// including root itself and any inputs/constants reached. The result is a
// boolean membership slice of length NumNodes.
func (n *Network) FaninCone(root NodeID) []bool {
	in := make([]bool, len(n.nodes))
	n.markCone(root, in)
	return in
}

func (n *Network) markCone(root NodeID, in []bool) {
	// Iterative DFS: networks can be deep and Go stacks, while growable,
	// make recursion needlessly slow for the hot cone computations the
	// phase assigner performs per output pair.
	stack := []NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if in[id] {
			continue
		}
		in[id] = true
		stack = append(stack, n.nodes[id].Fanins...)
	}
}

// ConeSize returns the number of nodes in the transitive fanin cone of
// root (including root).
func (n *Network) ConeSize(root NodeID) int {
	in := n.FaninCone(root)
	c := 0
	for _, b := range in {
		if b {
			c++
		}
	}
	return c
}

// OutputCones returns, for each primary output, its transitive fanin cone
// as a membership slice.
func (n *Network) OutputCones() [][]bool {
	cones := make([][]bool, len(n.outputs))
	for i, o := range n.outputs {
		cones[i] = n.FaninCone(o.Driver)
	}
	return cones
}

// ConeOverlap computes the paper's overlap measure for two cones given as
// membership slices:
//
//	O(i,j) = |Di ∩ Dj| / (|Di| + |Dj|)
//
// It represents the worst-case duplication penalty for incompatible phase
// assignments of outputs i and j (Section 4.1). The result is in [0, 0.5].
func ConeOverlap(di, dj []bool) float64 {
	if len(di) != len(dj) {
		panic("logic: cone length mismatch")
	}
	inter, si, sj := 0, 0, 0
	for k := range di {
		if di[k] {
			si++
		}
		if dj[k] {
			sj++
		}
		if di[k] && dj[k] {
			inter++
		}
	}
	if si+sj == 0 {
		return 0
	}
	return float64(inter) / float64(si+sj)
}

// FanoutCone returns the set of node ids in the transitive fanout of root,
// including root itself.
func (n *Network) FanoutCone(root NodeID) []bool {
	lists := n.FanoutLists()
	in := make([]bool, len(n.nodes))
	stack := []NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if in[id] {
			continue
		}
		in[id] = true
		stack = append(stack, lists[id]...)
	}
	return in
}

// FanoutConeSizes returns, for every node, the cardinality of its
// transitive fanout cone (including the node itself). This is the quantity
// the paper's BDD variable-ordering heuristic sorts gates by (Section
// 4.2.2, principle 2).
//
// Computed by a reverse topological sweep over fanout bitsets; O(N·M/64)
// words touched where M is node count, which is fine at the circuit sizes
// this reproduction targets.
func (n *Network) FanoutConeSizes() []int {
	num := len(n.nodes)
	words := (num + 63) / 64
	// coneBits[i] holds the fanout cone of node i as a bitset.
	coneBits := make([][]uint64, num)
	lists := n.FanoutLists()
	sizes := make([]int, num)
	for i := num - 1; i >= 0; i-- {
		bs := make([]uint64, words)
		bs[i/64] |= 1 << (uint(i) % 64)
		for _, fo := range lists[i] {
			fb := coneBits[fo]
			for w := range bs {
				bs[w] |= fb[w]
			}
		}
		coneBits[i] = bs
		c := 0
		for _, w := range bs {
			c += bits.OnesCount64(w)
		}
		sizes[i] = c
	}
	return sizes
}
