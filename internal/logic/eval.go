package logic

import (
	"fmt"
	"math/rand"
)

// Eval evaluates the network for a single input assignment given as a
// slice parallel to Inputs(). It returns one value per node; output values
// can be extracted via Outputs()[i].Driver. The values slice may be reused
// across calls by passing it as scratch (pass nil to allocate).
func (n *Network) Eval(inputValues []bool, scratch []bool) []bool {
	if len(inputValues) != len(n.inputs) {
		panic(fmt.Sprintf("logic: Eval got %d input values, want %d", len(inputValues), len(n.inputs)))
	}
	values := scratch
	if cap(values) < len(n.nodes) {
		values = make([]bool, len(n.nodes))
	}
	values = values[:len(n.nodes)]
	for i, id := range n.inputs {
		values[id] = inputValues[i]
	}
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			// Already set.
		case KindConst0:
			values[i] = false
		case KindConst1:
			values[i] = true
		case KindBuf:
			values[i] = values[node.Fanins[0]]
		case KindNot:
			values[i] = !values[node.Fanins[0]]
		case KindAnd:
			v := true
			for _, f := range node.Fanins {
				v = v && values[f]
			}
			values[i] = v
		case KindOr:
			v := false
			for _, f := range node.Fanins {
				v = v || values[f]
			}
			values[i] = v
		case KindXor:
			v := false
			for _, f := range node.Fanins {
				v = v != values[f]
			}
			values[i] = v
		}
	}
	return values
}

// EvalWide evaluates the network for 64 packed input assignments at once.
// inputWords is parallel to Inputs(): bit k of inputWords[i] is the value
// of input i under assignment k, and bit k of the returned per-node words
// is that node's value under assignment k — one gate evaluation per
// machine word instead of per vector, the classic word-level bit-parallel
// simulation trick. Lanes are fully independent; callers simulating fewer
// than 64 assignments mask the surplus lanes when consuming the result.
// The words slice may be reused across calls by passing it as scratch
// (pass nil to allocate).
func (n *Network) EvalWide(inputWords []uint64, scratch []uint64) []uint64 {
	if len(inputWords) != len(n.inputs) {
		panic(fmt.Sprintf("logic: EvalWide got %d input words, want %d", len(inputWords), len(n.inputs)))
	}
	words := scratch
	if cap(words) < len(n.nodes) {
		words = make([]uint64, len(n.nodes))
	}
	words = words[:len(n.nodes)]
	for i, id := range n.inputs {
		words[id] = inputWords[i]
	}
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			// Already set.
		case KindConst0:
			words[i] = 0
		case KindConst1:
			words[i] = ^uint64(0)
		case KindBuf:
			words[i] = words[node.Fanins[0]]
		case KindNot:
			words[i] = ^words[node.Fanins[0]]
		case KindAnd:
			v := ^uint64(0)
			for _, f := range node.Fanins {
				v &= words[f]
			}
			words[i] = v
		case KindOr:
			v := uint64(0)
			for _, f := range node.Fanins {
				v |= words[f]
			}
			words[i] = v
		case KindXor:
			v := uint64(0)
			for _, f := range node.Fanins {
				v ^= words[f]
			}
			words[i] = v
		}
	}
	return words
}

// EvalOutputs evaluates the network and returns just the output values in
// output order.
func (n *Network) EvalOutputs(inputValues []bool) []bool {
	values := n.Eval(inputValues, nil)
	outs := make([]bool, len(n.outputs))
	for i, o := range n.outputs {
		outs[i] = values[o.Driver]
	}
	return outs
}

// TruthTables enumerates all 2^k input assignments (k = NumInputs, which
// must be <= 20) and returns, per output, the truth table as a bit-packed
// slice: bit m of word m/64 is the output value under input minterm m,
// where input i contributes bit i of m.
func (n *Network) TruthTables() [][]uint64 {
	k := len(n.inputs)
	if k > 20 {
		panic(fmt.Sprintf("logic: TruthTables on %d inputs (max 20)", k))
	}
	rows := 1 << uint(k)
	words := (rows + 63) / 64
	tables := make([][]uint64, len(n.outputs))
	for i := range tables {
		tables[i] = make([]uint64, words)
	}
	inVals := make([]bool, k)
	scratch := make([]bool, len(n.nodes))
	for m := 0; m < rows; m++ {
		for i := 0; i < k; i++ {
			inVals[i] = m&(1<<uint(i)) != 0
		}
		values := n.Eval(inVals, scratch)
		for oi, o := range n.outputs {
			if values[o.Driver] {
				tables[oi][m/64] |= 1 << (uint(m) % 64)
			}
		}
	}
	return tables
}

// EquivalentSampled compares two networks on `samples` random input
// vectors (matched by input/output names). It is the equivalence check
// for networks too wide for the exhaustive Equivalent; a true result is
// probabilistic evidence, a false result is a definite counterexample.
func EquivalentSampled(a, b *Network, samples int, seed int64) (bool, error) {
	if len(a.inputs) != len(b.inputs) {
		return false, fmt.Errorf("input count mismatch: %d vs %d", len(a.inputs), len(b.inputs))
	}
	if len(a.outputs) != len(b.outputs) {
		return false, fmt.Errorf("output count mismatch: %d vs %d", len(a.outputs), len(b.outputs))
	}
	perm := make([]int, len(a.inputs))
	for i, id := range a.inputs {
		name := a.nodes[id].Name
		bid := b.InputByName(name)
		if bid == InvalidNode {
			return false, fmt.Errorf("input %q missing in second network", name)
		}
		for j, bj := range b.inputs {
			if bj == bid {
				perm[i] = j
			}
		}
	}
	if samples <= 0 {
		samples = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	aIn := make([]bool, len(a.inputs))
	bIn := make([]bool, len(b.inputs))
	aScratch := make([]bool, len(a.nodes))
	bScratch := make([]bool, len(b.nodes))
	for s := 0; s < samples; s++ {
		for i := range aIn {
			v := rng.Intn(2) == 1
			aIn[i] = v
			bIn[perm[i]] = v
		}
		av := a.Eval(aIn, aScratch)
		bv := b.Eval(bIn, bScratch)
		for _, ao := range a.outputs {
			oi := b.OutputByName(ao.Name)
			if oi < 0 {
				return false, fmt.Errorf("output %q missing in second network", ao.Name)
			}
			if av[ao.Driver] != bv[b.outputs[oi].Driver] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Equivalent reports whether two networks with identical input and output
// interfaces compute the same functions, by exhaustive truth-table
// comparison. Both must have <= 20 inputs. Inputs are matched by name, and
// outputs are matched by name, so node ordering differences do not matter.
func Equivalent(a, b *Network) (bool, error) {
	if len(a.inputs) != len(b.inputs) {
		return false, fmt.Errorf("input count mismatch: %d vs %d", len(a.inputs), len(b.inputs))
	}
	if len(a.outputs) != len(b.outputs) {
		return false, fmt.Errorf("output count mismatch: %d vs %d", len(a.outputs), len(b.outputs))
	}
	// Map b's input order onto a's by name.
	perm := make([]int, len(a.inputs))
	for i, id := range a.inputs {
		name := a.nodes[id].Name
		bid := b.InputByName(name)
		if bid == InvalidNode {
			return false, fmt.Errorf("input %q missing in second network", name)
		}
		for j, bj := range b.inputs {
			if bj == bid {
				perm[i] = j
			}
		}
	}
	k := len(a.inputs)
	if k > 20 {
		return false, fmt.Errorf("too many inputs for exhaustive check: %d", k)
	}
	rows := 1 << uint(k)
	aIn := make([]bool, k)
	bIn := make([]bool, k)
	aScratch := make([]bool, len(a.nodes))
	bScratch := make([]bool, len(b.nodes))
	for m := 0; m < rows; m++ {
		for i := 0; i < k; i++ {
			v := m&(1<<uint(i)) != 0
			aIn[i] = v
			bIn[perm[i]] = v
		}
		av := a.Eval(aIn, aScratch)
		bv := b.Eval(bIn, bScratch)
		for _, ao := range a.outputs {
			oi := b.OutputByName(ao.Name)
			if oi < 0 {
				return false, fmt.Errorf("output %q missing in second network", ao.Name)
			}
			if av[ao.Driver] != bv[b.outputs[oi].Driver] {
				return false, nil
			}
		}
	}
	return true, nil
}
