package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Rebuild copies the reachable part of the network (transitive fanin of
// the outputs) into a fresh network, dropping dangling nodes. Inputs are
// always preserved, even if unused, so that network interfaces stay
// stable across optimization passes.
func (n *Network) Rebuild() *Network {
	keep := make([]bool, len(n.nodes))
	for _, o := range n.outputs {
		n.markCone(o.Driver, keep)
	}
	out := New(n.Name)
	remap := make([]NodeID, len(n.nodes))
	for i := range remap {
		remap[i] = InvalidNode
	}
	// Inputs first, preserving order.
	for _, id := range n.inputs {
		remap[id] = out.AddInput(n.nodes[id].Name)
	}
	for i := range n.nodes {
		id := NodeID(i)
		if !keep[i] || n.nodes[i].Kind == KindInput {
			continue
		}
		node := &n.nodes[i]
		var nid NodeID
		switch node.Kind {
		case KindConst0:
			nid = out.AddConst(false)
		case KindConst1:
			nid = out.AddConst(true)
		default:
			fs := make([]NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			nid = out.AddGate(node.Kind, fs...)
		}
		if node.Name != "" {
			out.SetName(nid, node.Name)
		}
		remap[id] = nid
	}
	for _, o := range n.outputs {
		out.MarkOutput(o.Name, remap[o.Driver])
	}
	return out
}

// signature is a structural hash key: kind plus canonicalized fanin list.
func signature(kind Kind, fanins []NodeID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", kind)
	if kind == KindAnd || kind == KindOr || kind == KindXor {
		fs := append([]NodeID(nil), fanins...)
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		for _, f := range fs {
			fmt.Fprintf(&b, "%d,", f)
		}
	} else {
		for _, f := range fanins {
			fmt.Fprintf(&b, "%d,", f)
		}
	}
	return b.String()
}

// Optimize runs the technology-independent cleanup pipeline used before
// phase assignment: constant propagation, double-inverter and buffer
// elimination, duplicate-fanin simplification, structural hashing (common
// subexpression elimination) and a dead-node sweep. The result computes
// the same functions (see TestOptimizePreservesFunction).
func (n *Network) Optimize() *Network {
	out := New(n.Name)
	remap := make([]NodeID, len(n.nodes))
	// polarity tracking: simplification may express a node as the
	// complement of another; inverted[i] reports whether remap[i] must be
	// complemented. We materialize inverters lazily via notOf.
	hash := make(map[string]NodeID)
	var const0, const1 NodeID = InvalidNode, InvalidNode
	getConst := func(v bool) NodeID {
		if v {
			if const1 == InvalidNode {
				const1 = out.AddConst(true)
			}
			return const1
		}
		if const0 == InvalidNode {
			const0 = out.AddConst(false)
		}
		return const0
	}
	notCache := make(map[NodeID]NodeID)
	notOf := func(a NodeID) NodeID {
		switch out.nodes[a].Kind {
		case KindConst0:
			return getConst(true)
		case KindConst1:
			return getConst(false)
		case KindNot:
			return out.nodes[a].Fanins[0]
		}
		if v, ok := notCache[a]; ok {
			return v
		}
		v := out.AddNot(a)
		notCache[a] = v
		notCache[v] = a
		return v
	}
	hashedGate := func(kind Kind, fanins ...NodeID) NodeID {
		sig := signature(kind, fanins)
		if v, ok := hash[sig]; ok {
			return v
		}
		v := out.AddGate(kind, fanins...)
		hash[sig] = v
		return v
	}

	isConst := func(id NodeID) (bool, bool) {
		switch out.nodes[id].Kind {
		case KindConst0:
			return true, false
		case KindConst1:
			return true, true
		}
		return false, false
	}

	for _, id := range n.inputs {
		remap[id] = out.AddInput(n.nodes[id].Name)
	}
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.Kind == KindInput {
			continue
		}
		switch node.Kind {
		case KindConst0:
			remap[i] = getConst(false)
		case KindConst1:
			remap[i] = getConst(true)
		case KindBuf:
			remap[i] = remap[node.Fanins[0]]
		case KindNot:
			remap[i] = notOf(remap[node.Fanins[0]])
		case KindAnd, KindOr:
			// Identity/absorbing constants, duplicate removal,
			// complement detection (a·ā=0, a+ā=1).
			identity := node.Kind == KindAnd // AND identity is 1, absorber 0
			var fs []NodeID
			seen := make(map[NodeID]bool)
			absorbed := false
			for _, f := range node.Fanins {
				rf := remap[f]
				if c, v := isConst(rf); c {
					if v == identity {
						continue // identity element, drop
					}
					absorbed = true
					break
				}
				if seen[rf] {
					continue
				}
				seen[rf] = true
				fs = append(fs, rf)
			}
			switch {
			case absorbed:
				remap[i] = getConst(!identity)
			case len(fs) == 0:
				remap[i] = getConst(identity)
			case len(fs) == 1:
				remap[i] = fs[0]
			default:
				// Complement pair check.
				comp := false
				for _, f := range fs {
					if out.nodes[f].Kind == KindNot && seen[out.nodes[f].Fanins[0]] {
						comp = true
						break
					}
				}
				if comp {
					remap[i] = getConst(!identity)
				} else {
					remap[i] = hashedGate(node.Kind, fs...)
				}
			}
		case KindXor:
			// Pairs cancel; constants fold into a parity flip.
			flip := false
			count := make(map[NodeID]int)
			var order []NodeID
			for _, f := range node.Fanins {
				rf := remap[f]
				if c, v := isConst(rf); c {
					if v {
						flip = !flip
					}
					continue
				}
				// Normalize complemented fanins: x̄ ⊕ y = x ⊕ y ⊕ 1.
				if out.nodes[rf].Kind == KindNot {
					flip = !flip
					rf = out.nodes[rf].Fanins[0]
				}
				if count[rf] == 0 {
					order = append(order, rf)
				}
				count[rf]++
			}
			var fs []NodeID
			for _, f := range order {
				if count[f]%2 == 1 {
					fs = append(fs, f)
				}
			}
			var v NodeID
			switch len(fs) {
			case 0:
				v = getConst(false)
			case 1:
				v = fs[0]
			default:
				v = hashedGate(KindXor, fs...)
			}
			if flip {
				v = notOf(v)
			}
			remap[i] = v
		}
		if node.Name != "" && remap[i] != InvalidNode && out.nodes[remap[i]].Name == "" {
			out.SetName(remap[i], node.Name)
		}
	}
	for _, o := range n.outputs {
		out.MarkOutput(o.Name, remap[o.Driver])
	}
	return out.Rebuild()
}

// DecomposeXor rewrites every XOR gate into AND/OR/NOT form:
// a⊕b = (a·b̄)+(ā·b), applied left-to-right for n-ary gates. Phase
// assignment requires a unate-friendly AND/OR/NOT network, so this pass
// runs before it.
func (n *Network) DecomposeXor() *Network {
	out := New(n.Name)
	remap := make([]NodeID, len(n.nodes))
	for _, id := range n.inputs {
		remap[id] = out.AddInput(n.nodes[id].Name)
	}
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			continue
		case KindConst0:
			remap[i] = out.AddConst(false)
		case KindConst1:
			remap[i] = out.AddConst(true)
		case KindXor:
			acc := remap[node.Fanins[0]]
			for _, f := range node.Fanins[1:] {
				b := remap[f]
				na := out.AddNot(acc)
				nb := out.AddNot(b)
				acc = out.AddOr(out.AddAnd(acc, nb), out.AddAnd(na, b))
			}
			remap[i] = acc
		default:
			fs := make([]NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			remap[i] = out.AddGate(node.Kind, fs...)
		}
		if node.Name != "" {
			out.SetName(remap[i], node.Name)
		}
	}
	for _, o := range n.outputs {
		out.MarkOutput(o.Name, remap[o.Driver])
	}
	return out
}

// Balance decomposes every n-ary gate into a balanced tree of gates with
// at most maxFanin fanins (maxFanin >= 2). Buffers and inverters pass
// through unchanged.
func (n *Network) Balance(maxFanin int) *Network {
	if maxFanin < 2 {
		panic("logic: Balance maxFanin must be >= 2")
	}
	out := New(n.Name)
	remap := make([]NodeID, len(n.nodes))
	for _, id := range n.inputs {
		remap[id] = out.AddInput(n.nodes[id].Name)
	}
	var split func(kind Kind, fs []NodeID) NodeID
	split = func(kind Kind, fs []NodeID) NodeID {
		if len(fs) <= maxFanin {
			return out.AddGate(kind, fs...)
		}
		// Group into ceil(len/maxFanin) chunks, recurse.
		var groups []NodeID
		for start := 0; start < len(fs); start += maxFanin {
			end := start + maxFanin
			if end > len(fs) {
				end = len(fs)
			}
			chunk := fs[start:end]
			if len(chunk) == 1 {
				groups = append(groups, chunk[0])
			} else {
				groups = append(groups, out.AddGate(kind, chunk...))
			}
		}
		return split(kind, groups)
	}
	for i := range n.nodes {
		node := &n.nodes[i]
		switch node.Kind {
		case KindInput:
			continue
		case KindConst0:
			remap[i] = out.AddConst(false)
		case KindConst1:
			remap[i] = out.AddConst(true)
		case KindAnd, KindOr, KindXor:
			fs := make([]NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			remap[i] = split(node.Kind, fs)
		default:
			fs := make([]NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			remap[i] = out.AddGate(node.Kind, fs...)
		}
		if node.Name != "" {
			out.SetName(remap[i], node.Name)
		}
	}
	for _, o := range n.outputs {
		out.MarkOutput(o.Name, remap[o.Driver])
	}
	return out
}
