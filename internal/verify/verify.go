// Package verify implements BDD-based combinational equivalence checking
// (CEC). The reproduction's correctness story leans on it: phase
// assignment, domino mapping and the technology-independent rewrites all
// claim functional preservation, and for networks too wide for exhaustive
// truth tables (the benchmark twins have up to 235 inputs) canonical
// BDDs over a shared variable order decide equivalence exactly.
package verify

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/logic"
	"repro/internal/order"
)

// Result of an equivalence check.
type Result struct {
	Equivalent bool
	// FailingOutput names the first mismatching output when not
	// equivalent.
	FailingOutput string
	// Counterexample is an input assignment (by first network's input
	// order) witnessing the mismatch, when not equivalent.
	Counterexample []bool
	// Nodes is the shared BDD size used for the proof, a cost indicator.
	Nodes int
}

// Equivalent checks two combinational networks for functional equality.
// Inputs and outputs are matched by name. The BDD variable order is the
// paper's reverse-topological heuristic computed on the first network
// (a good order for one is typically good for both, since the second is
// a rewrite of the first in every use in this repository).
func Equivalent(a, b *logic.Network) (*Result, error) {
	if a.NumInputs() != b.NumInputs() {
		return nil, fmt.Errorf("verify: input count mismatch: %d vs %d", a.NumInputs(), b.NumInputs())
	}
	if a.NumOutputs() != b.NumOutputs() {
		return nil, fmt.Errorf("verify: output count mismatch: %d vs %d", a.NumOutputs(), b.NumOutputs())
	}
	// Shared variable space: variable index = position in a's inputs.
	varOfName := make(map[string]int, a.NumInputs())
	for pos, id := range a.Inputs() {
		varOfName[a.Node(id).Name] = pos
	}
	bLits := make([]bdd.InputLit, b.NumInputs())
	for pos, id := range b.Inputs() {
		v, ok := varOfName[b.Node(id).Name]
		if !ok {
			return nil, fmt.Errorf("verify: input %q missing in first network", b.Node(id).Name)
		}
		bLits[pos] = bdd.InputLit{Var: v}
	}

	ord := order.ReverseTopological(a)
	nbA, err := bdd.BuildNetwork(a, ord)
	if err != nil {
		return nil, err
	}
	// Build b inside the same manager via Transfer? Simpler: build b
	// with the same variable space and order in a second manager, then
	// compare by transferring into a's manager (refs are canonical per
	// manager).
	nbB, err := bdd.BuildNetworkLits(b, a.NumInputs(), bLits, ord)
	if err != nil {
		return nil, err
	}

	res := &Result{Equivalent: true}
	for _, oa := range a.Outputs() {
		oi := b.OutputByName(oa.Name)
		if oi < 0 {
			return nil, fmt.Errorf("verify: output %q missing in second network", oa.Name)
		}
		fa := nbA.NodeRefs[oa.Driver]
		fbSrc := nbB.NodeRefs[b.Outputs()[oi].Driver]
		fb := bdd.Transfer(nbB.Manager, fbSrc, nbA.Manager, nil)
		if fa != fb {
			res.Equivalent = false
			res.FailingOutput = oa.Name
			res.Counterexample = counterexample(nbA.Manager, fa, fb, a.NumInputs())
			break
		}
	}
	res.Nodes = nbA.Manager.Size()
	return res, nil
}

// counterexample finds an assignment where fa != fb by satisfying
// fa XOR fb.
func counterexample(m *bdd.Manager, fa, fb bdd.Ref, numVars int) []bool {
	diff := m.Xor(fa, fb)
	assignment := make([]bool, numVars)
	// Walk to the True terminal preferring the branch that keeps the
	// function satisfiable.
	r := diff
	for r != bdd.True && r != bdd.False {
		// Try hi first.
		sup := m.Support(r)
		if len(sup) == 0 {
			break
		}
		v := sup[0]
		hi := m.Restrict(r, v, true)
		if hi != bdd.False {
			assignment[v] = true
			r = hi
		} else {
			r = m.Restrict(r, v, false)
		}
	}
	return assignment
}

// Check is a convenience wrapper returning a plain error on mismatch or
// interface problems, for use in tests and flows.
func Check(a, b *logic.Network) error {
	res, err := Equivalent(a, b)
	if err != nil {
		return err
	}
	if !res.Equivalent {
		return fmt.Errorf("verify: networks differ at output %q (counterexample %v)",
			res.FailingOutput, res.Counterexample)
	}
	return nil
}
