package verify

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
)

func TestEquivalentIdentity(t *testing.T) {
	n := gen.Generate(gen.Params{Name: "id", Inputs: 30, Outputs: 6, Gates: 120, Seed: 1})
	res, err := Equivalent(n, n.Clone())
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if !res.Equivalent {
		t.Error("network not equivalent to its clone")
	}
}

func TestEquivalentAfterOptimize(t *testing.T) {
	// Optimize is a rewrite; CEC must prove it for a 30-input circuit,
	// beyond truth-table reach.
	n := gen.Generate(gen.Params{Name: "opt", Inputs: 30, Outputs: 8, Gates: 200, Seed: 2})
	if err := Check(n, n.Optimize()); err != nil {
		t.Errorf("Optimize broke function: %v", err)
	}
}

func TestEquivalentAfterPhaseAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := flow.Prepare(gen.Generate(gen.Params{
			Name: "ph", Inputs: 25 + rng.Intn(10), Outputs: 3 + rng.Intn(5),
			Gates: 80 + rng.Intn(120), Seed: int64(trial), OrProb: 0.6,
		}))
		asg := make(phase.Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		r, err := phase.Apply(n, asg)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(n, r.Reconstructed()); err != nil {
			t.Errorf("trial %d: phase assignment %s broke function: %v", trial, asg, err)
		}
	}
}

func TestDetectsDifference(t *testing.T) {
	a := logic.New("a")
	x := a.AddInput("x")
	y := a.AddInput("y")
	a.MarkOutput("f", a.AddAnd(x, y))
	b := logic.New("b")
	x2 := b.AddInput("x")
	y2 := b.AddInput("y")
	b.MarkOutput("f", b.AddOr(x2, y2))
	res, err := Equivalent(a, b)
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if res.Equivalent {
		t.Fatal("AND declared equivalent to OR")
	}
	if res.FailingOutput != "f" {
		t.Errorf("failing output = %q", res.FailingOutput)
	}
	// The counterexample must actually distinguish them.
	va := a.EvalOutputs(res.Counterexample)
	vb := b.EvalOutputs(res.Counterexample)
	if va[0] == vb[0] {
		t.Errorf("counterexample %v does not distinguish the networks", res.Counterexample)
	}
}

func TestDetectsSubtleDifference(t *testing.T) {
	// Two big networks differing in exactly one deep gate.
	build := func(flip bool) *logic.Network {
		n := logic.New("big")
		var ids []logic.NodeID
		for i := 0; i < 24; i++ {
			ids = append(ids, n.AddInput(name(i)))
		}
		rng := rand.New(rand.NewSource(9))
		for g := 0; g < 150; g++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			if g == 97 && flip {
				ids = append(ids, n.AddOr(a, b))
			} else if g == 97 {
				ids = append(ids, n.AddAnd(a, b))
			} else if rng.Intn(2) == 0 {
				ids = append(ids, n.AddAnd(a, b))
			} else {
				ids = append(ids, n.AddOr(a, b))
			}
		}
		n.MarkOutput("f", ids[len(ids)-1])
		return n
	}
	res, err := Equivalent(build(false), build(true))
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if res.Equivalent {
		// The flipped gate may be functionally redundant for the output;
		// verify by sampling before declaring a bug.
		eq, sErr := logic.EquivalentSampled(build(false), build(true), 1<<14, 1)
		if sErr != nil || !eq {
			t.Error("CEC missed a real difference")
		}
	} else if res.FailingOutput != "f" {
		t.Errorf("failing output = %q", res.FailingOutput)
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a := logic.New("a")
	a.MarkOutput("f", a.AddInput("x"))
	b := logic.New("b")
	xb := b.AddInput("x")
	b.AddInput("y")
	b.MarkOutput("f", xb)
	if _, err := Equivalent(a, b); err == nil {
		t.Error("accepted input count mismatch")
	}
}

func name(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

func BenchmarkCEC(b *testing.B) {
	n := gen.Generate(gen.Params{Name: "cec", Inputs: 40, Outputs: 10, Gates: 400, Seed: 5})
	o := n.Optimize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Check(n, o); err != nil {
			b.Fatal(err)
		}
	}
}
