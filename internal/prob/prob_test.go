package prob

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/logic"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestExactFigure5Probabilities(t *testing.T) {
	// The paper's Figure 5 numbers at input probability 0.9:
	// p(a+b) = .99, p(cd) = .81, p((a+b)+(cd)) = .9981,
	// p((a+b)·(cd)) = .8019, complements .0019 and .1981.
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	ab := n.AddOr(a, b)
	cd := n.AddAnd(c, d)
	g := n.AddOr(ab, cd)
	f := n.AddAnd(ab, cd)
	ng := n.AddNot(g)
	nf := n.AddNot(f)
	n.MarkOutput("g", g)
	n.MarkOutput("f", f)
	n.MarkOutput("ng", ng)
	n.MarkOutput("nf", nf)

	p, err := Exact(n, Uniform(n, 0.9), nil)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	checks := []struct {
		name string
		id   logic.NodeID
		want float64
	}{
		{"a+b", ab, 0.99},
		{"cd", cd, 0.81},
		{"(a+b)+(cd)", g, 0.9981},
		{"(a+b)(cd)", f, 0.8019},
		{"not g", ng, 0.0019},
		{"not f", nf, 0.1981},
	}
	for _, c := range checks {
		if !almost(p[c.id], c.want) {
			t.Errorf("p(%s) = %v, want %v", c.name, p[c.id], c.want)
		}
	}
}

func TestExactHandlesReconvergence(t *testing.T) {
	// f = a·ā must have probability 0 exactly; the approximate engine
	// gets this wrong (p(a)·(1−p(a))), which is the point of using BDDs.
	n := logic.New("reconv")
	a := n.AddInput("a")
	na := n.AddNot(a)
	f := n.AddAnd(a, na)
	n.MarkOutput("f", f)
	p, err := Exact(n, Uniform(n, 0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p[f] != 0 {
		t.Errorf("exact p(a·ā) = %v, want 0", p[f])
	}
	ap := Approximate(n, Uniform(n, 0.5))
	if almost(ap[f], 0) {
		t.Errorf("approximate should be wrong here, got exact 0")
	}
	if !almost(ap[f], 0.25) {
		t.Errorf("approximate p = %v, want 0.25 under independence", ap[f])
	}
}

func TestApproximateMatchesExactOnTrees(t *testing.T) {
	// On fanout-free (tree) networks the independence assumption holds.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := logic.New("tree")
		// Build a random binary tree over 8 fresh inputs.
		var build func(depth int) logic.NodeID
		inputCount := 0
		build = func(depth int) logic.NodeID {
			if depth == 0 {
				id := n.AddInput(treeInputName(inputCount))
				inputCount++
				return id
			}
			l := build(depth - 1)
			r := build(depth - 1)
			switch rng.Intn(3) {
			case 0:
				return n.AddAnd(l, r)
			case 1:
				return n.AddOr(l, r)
			default:
				return n.AddXor(l, r)
			}
		}
		root := build(3)
		n.MarkOutput("f", root)
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = rng.Float64()
		}
		exact, err := Exact(n, probs, nil)
		if err != nil {
			t.Fatal(err)
		}
		approx := Approximate(n, probs)
		if math.Abs(exact[root]-approx[root]) > 1e-9 {
			t.Fatalf("trial %d: tree mismatch exact=%v approx=%v", trial, exact[root], approx[root])
		}
	}
}

func treeInputName(i int) string {
	return "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestComplementProperty(t *testing.T) {
	// Property 4.1: complementing an output complements every node
	// probability in its cone. Verified at the output here; the phase
	// package tests the cone-wide version.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := logic.New("prop41")
		var ids []logic.NodeID
		for i := 0; i < 5; i++ {
			ids = append(ids, n.AddInput(treeInputName(i)))
		}
		for g := 0; g < 15; g++ {
			pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
			switch rng.Intn(3) {
			case 0:
				ids = append(ids, n.AddAnd(pick(), pick()))
			case 1:
				ids = append(ids, n.AddOr(pick(), pick()))
			default:
				ids = append(ids, n.AddNot(pick()))
			}
		}
		root := ids[len(ids)-1]
		inv := n.AddNot(root)
		n.MarkOutput("f", root)
		n.MarkOutput("nf", inv)
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p, err := Exact(n, probs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p[inv]-(1-p[root])) > 1e-9 {
			t.Fatalf("trial %d: p(f̄) = %v, 1−p(f) = %v", trial, p[inv], 1-p[root])
		}
	}
}

func TestSwitchingModels(t *testing.T) {
	if DominoSwitching(0.3) != 0.3 {
		t.Error("domino switching must equal signal probability")
	}
	if !almost(StaticSwitching(0.5), 0.5) {
		t.Error("static switching at p=0.5 must be 0.5")
	}
	if !almost(StaticSwitching(0.9), 0.18) {
		t.Errorf("static switching at p=0.9 = %v, want 0.18 (Figure 5)", StaticSwitching(0.9))
	}
	if !almost(BoundaryInputInverterSwitching(0.9), 0.18) {
		t.Error("input boundary inverter model wrong")
	}
	if !almost(BoundaryOutputInverterSwitching(0.0019), 0.0019) {
		t.Error("output boundary inverter model wrong")
	}
}

func TestFigure2Curves(t *testing.T) {
	domino, static := Figure2Curves(10)
	if len(domino) != 11 || len(static) != 11 {
		t.Fatalf("lengths = %d, %d", len(domino), len(static))
	}
	// Domino is linear and reaches 1.0; static peaks at 0.5 with value 0.5.
	if domino[10].S != 1.0 {
		t.Error("domino curve must reach 1.0 at p=1")
	}
	if static[10].S != 0 || static[0].S != 0 {
		t.Error("static curve must be 0 at both ends")
	}
	if !almost(static[5].S, 0.5) {
		t.Error("static curve must peak at 0.5")
	}
	// For p > 0.5 domino switches more than static — the asymmetry the
	// phase assignment exploits.
	for i := 6; i <= 10; i++ {
		if domino[i].S <= static[i].S {
			t.Errorf("at p=%v: domino %v <= static %v", domino[i].P, domino[i].S, static[i].S)
		}
	}
}

func TestUniform(t *testing.T) {
	n := logic.New("u")
	n.AddInput("a")
	n.AddInput("b")
	u := Uniform(n, 0.25)
	if len(u) != 2 || u[0] != 0.25 || u[1] != 0.25 {
		t.Errorf("Uniform = %v", u)
	}
}

func BenchmarkExact(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	n := logic.New("bench")
	var ids []logic.NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, n.AddInput(treeInputName(i)))
	}
	for g := 0; g < 800; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(3) {
		case 0:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 1:
			ids = append(ids, n.AddOr(pick(), pick()))
		default:
			ids = append(ids, n.AddNot(pick()))
		}
	}
	n.MarkOutput("f", ids[len(ids)-1])
	probs := Uniform(n, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(n, probs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	n := logic.New("e")
	n.AddInput("a")
	if _, err := Exact(n, []float64{0.5, 0.5}, nil); err == nil {
		t.Error("Exact accepted wrong-length probs")
	}
	if _, err := ExactLits(n, 1, nil, []float64{0.5, 0.5}, nil); err == nil {
		t.Error("ExactLits accepted wrong-length var probs")
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("Approximate arity", func() { Approximate(n, []float64{0.5, 0.5}) })
	expectPanic("Figure2Curves steps", func() { Figure2Curves(0) })
	expectPanic("LimitedDepth arity", func() { LimitedDepth(n, []float64{0.5, 0.5}, 2, 0) })
}

func TestExactLitsCorrelatedRails(t *testing.T) {
	// A block with x and x̄ as separate inputs: over the shared variable
	// the AND of the two rails is exactly 0.
	blk := logic.New("rails")
	x := blk.AddInput("x")
	xb := blk.AddInput("x_bar")
	f := blk.AddAnd(x, xb)
	blk.MarkOutput("f", f)
	lits := []bdd.InputLit{{Var: 0}, {Var: 0, Neg: true}}
	probs, err := ExactLits(blk, 1, lits, []float64{0.7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if probs[f] != 0 {
		t.Errorf("p(x·x̄) = %v, want 0 with correlated rails", probs[f])
	}
}
