package prob

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/logic"
)

// Monte-Carlo signal-probability estimation: the engine of last resort
// in the flow's degradation chain. It builds no BDDs at all — node
// probabilities are estimated by bit-parallel random simulation
// (logic.EvalWide over 64-cycle windows of packed Bernoulli draws, the
// same dyadic-expansion generator internal/sim uses), so its cost is
// O(vectors × gates) regardless of how pathological the circuit's BDDs
// are, and it can never trip the BDD node budget. Results are a pure
// function of (network, lits, varProbs, vectors, seed): deterministic,
// worker-count independent, and therefore cacheable like every other
// engine's rows.

// mcBernoulliBits mirrors internal/sim's generator resolution;
// duplicated rather than imported to keep prob free of a sim
// dependency (the two streams need not match — only determinism and
// the marginal probabilities matter here).
const mcBernoulliBits = 30

// mcPollWindows is how many 64-cycle windows pass between cancellation
// polls of the budget token.
const mcPollWindows = 16

func mcBernoulliWord(rng *rand.Rand, p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	q := uint32(p*(1<<mcBernoulliBits) + 0.5)
	if p <= 0 || q == 0 {
		return 0
	}
	if q >= 1<<mcBernoulliBits {
		return ^uint64(0)
	}
	tz := uint(bits.TrailingZeros32(q))
	q >>= tz
	w := uint64(0)
	for j := uint(0); j < mcBernoulliBits-tz; j++ {
		r := rng.Uint64()
		if q&1 == 1 {
			w |= r
		} else {
			w &= r
		}
		q >>= 1
	}
	return w
}

// MonteCarloLits estimates the probability of every node of n over an
// external variable space, mirroring ExactLitsIn's interface: input
// position p of the network is the literal lits[p] (nil lits is the
// identity mapping, requiring numVars == NumInputs), and varProbs gives
// the Bernoulli probability of each variable. Because two inputs
// mapped to the same variable draw from the same random word, rail
// correlation is respected exactly as in the exact engine.
//
// vectors defaults to 2048 when non-positive. tok, when non-nil, is
// polled every mcPollWindows windows for cancellation.
func MonteCarloLits(n *logic.Network, numVars int, lits []bdd.InputLit, varProbs []float64, vectors int, seed int64, tok *budget.T) ([]float64, error) {
	if lits != nil && len(lits) != n.NumInputs() {
		return nil, fmt.Errorf("prob: %d literals for %d inputs", len(lits), n.NumInputs())
	}
	if lits == nil && numVars != n.NumInputs() {
		return nil, fmt.Errorf("prob: identity literals need %d vars, got %d", n.NumInputs(), numVars)
	}
	if len(varProbs) != numVars {
		return nil, fmt.Errorf("prob: %d var probs for %d vars", len(varProbs), numVars)
	}
	if vectors <= 0 {
		vectors = 2048
	}
	rng := rand.New(rand.NewSource(seed))
	varWords := make([]uint64, numVars)
	inWords := make([]uint64, n.NumInputs())
	scratch := make([]uint64, n.NumNodes())
	counts := make([]int64, n.NumNodes())
	for done, win := 0, 0; done < vectors; win++ {
		if tok != nil && win%mcPollWindows == 0 {
			if err := tok.Err(); err != nil {
				return nil, err
			}
		}
		width := vectors - done
		if width > 64 {
			width = 64
		}
		mask := ^uint64(0) >> (64 - uint(width))
		for v := range varWords {
			varWords[v] = mcBernoulliWord(rng, varProbs[v])
		}
		for pos := range inWords {
			if lits == nil {
				inWords[pos] = varWords[pos]
			} else if lits[pos].Neg {
				inWords[pos] = ^varWords[lits[pos].Var]
			} else {
				inWords[pos] = varWords[lits[pos].Var]
			}
		}
		values := n.EvalWide(inWords, scratch)
		for i, w := range values {
			counts[i] += int64(bits.OnesCount64(w & mask))
		}
		done += width
	}
	p := make([]float64, n.NumNodes())
	for i, c := range counts {
		p[i] = float64(c) / float64(vectors)
	}
	return p, nil
}
