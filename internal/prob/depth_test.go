package prob

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestLimitedDepthCatchesLocalReconvergence(t *testing.T) {
	// f = a·ā: Approximate gets 0.25, any depth >= 2 must get the exact 0.
	n := logic.New("reconv")
	a := n.AddInput("a")
	f := n.AddAnd(a, n.AddNot(a))
	n.MarkOutput("f", f)
	probs := Uniform(n, 0.5)
	ap := Approximate(n, probs)
	if !almost(ap[f], 0.25) {
		t.Fatalf("approximate = %v, want 0.25", ap[f])
	}
	ld := LimitedDepth(n, probs, 2, 0)
	if ld[f] != 0 {
		t.Errorf("limited depth = %v, want exact 0", ld[f])
	}
}

func TestLimitedDepthZeroIsApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := randomReconvNet(rng, 6, 30)
	probs := Uniform(n, 0.5)
	ap := Approximate(n, probs)
	ld := LimitedDepth(n, probs, 0, 0)
	for i := range ap {
		if !almost(ap[i], ld[i]) {
			t.Fatalf("node %d: depth-0 %v != approximate %v", i, ld[i], ap[i])
		}
	}
}

func TestLimitedDepthConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		n := randomReconvNet(rng, 5, 25)
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = 0.2 + 0.6*rng.Float64()
		}
		exact, err := Exact(n, probs, nil)
		if err != nil {
			t.Fatal(err)
		}
		errAt := func(depth int) float64 {
			ld := LimitedDepth(n, probs, depth, 64)
			worst := 0.0
			for i := range exact {
				if d := math.Abs(exact[i] - ld[i]); d > worst {
					worst = d
				}
			}
			return worst
		}
		e1 := errAt(1)
		eBig := errAt(100)
		if eBig > 1e-9 {
			t.Fatalf("trial %d: unlimited depth not exact (err %v)", trial, eBig)
		}
		if e1 < -1e-12 {
			t.Fatalf("impossible")
		}
		// Depth-100 must never be worse than depth-1 on the worst node.
		if eBig > e1+1e-12 {
			t.Fatalf("trial %d: error grew with depth: %v -> %v", trial, e1, eBig)
		}
	}
}

func TestLimitedDepthFrontierCap(t *testing.T) {
	// A wide cone exceeding the frontier cap must fall back gracefully.
	n := logic.New("wide")
	var ins []logic.NodeID
	for i := 0; i < 24; i++ {
		ins = append(ins, n.AddInput(treeInputName(i)))
	}
	f := n.AddOr(ins...)
	n.MarkOutput("f", f)
	probs := Uniform(n, 0.5)
	ld := LimitedDepth(n, probs, 3, 8)
	ap := Approximate(n, probs)
	if !almost(ld[f], ap[f]) {
		t.Errorf("capped frontier should match approximate: %v vs %v", ld[f], ap[f])
	}
}

func randomReconvNet(rng *rand.Rand, numInputs, numGates int) *logic.Network {
	n := logic.New("reconv")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(treeInputName(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(4) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 2:
			ids = append(ids, n.AddOr(pick(), pick()))
		default:
			ids = append(ids, n.AddXor(pick(), pick()))
		}
	}
	n.MarkOutput("f", ids[len(ids)-1])
	return n
}

func BenchmarkLimitedDepth(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	n := randomReconvNet(rng, 20, 800)
	probs := Uniform(n, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LimitedDepth(n, probs, 4, 16)
	}
}
