package prob

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/logic"
)

// LimitedDepth estimates signal probabilities with bounded reconvergence
// analysis, after Costa, Monteiro & Devadas [6] (cited by the paper):
// each node's probability is computed exactly over a local BDD of its
// fanin cone truncated `depth` levels back; the truncation frontier is
// treated as independent pseudo-inputs carrying their previously
// computed probabilities. depth 0 degenerates to Approximate; growing
// depth converges to Exact while keeping per-node cost bounded.
//
// maxFrontier caps the local support (BDD variable count); nodes whose
// frontier exceeds it fall back to the correlation-free formula. Pass 0
// for the default of 16.
func LimitedDepth(n *logic.Network, inputProbs []float64, depth, maxFrontier int) []float64 {
	p, err := LimitedDepthBudget(n, inputProbs, depth, maxFrontier, nil)
	if err != nil {
		// Unreachable with a nil token: only the token can abort.
		panic(err)
	}
	return p
}

// LimitedDepthBudget is LimitedDepth under a cancellation/budget token:
// the token is polled once per node, and each node's local cone build
// runs under the token's BDD node budget (local BDDs are small by
// construction, but a hostile depth/frontier combination can still blow
// up). A tripped budget or cancellation aborts with the token's error.
func LimitedDepthBudget(n *logic.Network, inputProbs []float64, depth, maxFrontier int, tok *budget.T) ([]float64, error) {
	if len(inputProbs) != n.NumInputs() {
		panic(fmt.Sprintf("prob: %d input probs for %d inputs", len(inputProbs), n.NumInputs()))
	}
	if maxFrontier <= 0 {
		maxFrontier = 16
	}
	if depth <= 0 {
		return Approximate(n, inputProbs), nil
	}
	p := make([]float64, n.NumNodes())
	inPos := make(map[logic.NodeID]int, n.NumInputs())
	for pos, id := range n.Inputs() {
		inPos[id] = pos
	}
	levels := n.Levels()

	for i := 0; i < n.NumNodes(); i++ {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		id := logic.NodeID(i)
		node := n.Node(id)
		switch node.Kind {
		case logic.KindInput:
			p[i] = inputProbs[inPos[id]]
			continue
		case logic.KindConst0:
			p[i] = 0
			continue
		case logic.KindConst1:
			p[i] = 1
			continue
		}
		// Collect the local cone: walk fanins until the level difference
		// exceeds depth, registering frontier nodes.
		frontier := make(map[logic.NodeID]int) // node -> local var index
		var frontierOrder []logic.NodeID
		inCone := make(map[logic.NodeID]bool)
		overflow := false
		var collect func(logic.NodeID)
		collect = func(u logic.NodeID) {
			if overflow || inCone[u] {
				return
			}
			if _, isFrontier := frontier[u]; isFrontier {
				return
			}
			uk := n.Node(u).Kind
			atFrontier := uk == logic.KindInput || uk == logic.KindConst0 || uk == logic.KindConst1 ||
				levels[id]-levels[u] > depth
			if atFrontier {
				if len(frontier) >= maxFrontier {
					overflow = true
					return
				}
				frontier[u] = len(frontierOrder)
				frontierOrder = append(frontierOrder, u)
				return
			}
			inCone[u] = true
			for _, f := range n.Node(u).Fanins {
				collect(f)
			}
		}
		for _, f := range node.Fanins {
			collect(f)
		}
		if overflow {
			p[i] = localApprox(n, id, p)
			continue
		}
		// Build the local BDD bottom-up over the cone. Cone BDDs are
		// tiny (≤ maxFrontier variables, depth-capped), so hint the
		// manager small instead of paying circuit-scale tables per node.
		m := bdd.NewSized(len(frontierOrder), 4*(len(inCone)+len(frontierOrder)+1))
		m.SetBudget(tok)
		refs := make(map[logic.NodeID]bdd.Ref, len(inCone)+len(frontier))
		buildErr := bdd.CatchInterrupt(func() {
			for u, v := range frontier {
				refs[u] = m.Var(v)
			}
			var build func(logic.NodeID) bdd.Ref
			build = func(u logic.NodeID) bdd.Ref {
				if r, ok := refs[u]; ok {
					return r
				}
				un := n.Node(u)
				var r bdd.Ref
				switch un.Kind {
				case logic.KindBuf:
					r = build(un.Fanins[0])
				case logic.KindNot:
					r = m.Not(build(un.Fanins[0]))
				case logic.KindAnd:
					r = bdd.True
					for _, f := range un.Fanins {
						r = m.And(r, build(f))
					}
				case logic.KindOr:
					r = bdd.False
					for _, f := range un.Fanins {
						r = m.Or(r, build(f))
					}
				case logic.KindXor:
					r = bdd.False
					for _, f := range un.Fanins {
						r = m.Xor(r, build(f))
					}
				default:
					panic(fmt.Sprintf("prob: unexpected kind %s in cone", un.Kind))
				}
				refs[u] = r
				return r
			}
			// The node itself.
			var root bdd.Ref
			switch node.Kind {
			case logic.KindBuf:
				root = build(node.Fanins[0])
			case logic.KindNot:
				root = m.Not(build(node.Fanins[0]))
			case logic.KindAnd:
				root = bdd.True
				for _, f := range node.Fanins {
					root = m.And(root, build(f))
				}
			case logic.KindOr:
				root = bdd.False
				for _, f := range node.Fanins {
					root = m.Or(root, build(f))
				}
			case logic.KindXor:
				root = bdd.False
				for _, f := range node.Fanins {
					root = m.Xor(root, build(f))
				}
			}
			varProbs := make([]float64, len(frontierOrder))
			for v, u := range frontierOrder {
				varProbs[v] = p[u]
			}
			p[i] = m.Probability(root, varProbs)
		})
		if buildErr != nil {
			return nil, buildErr
		}
	}
	return p, nil
}

// localApprox applies the correlation-free formula to a single node from
// already-computed fanin probabilities.
func localApprox(n *logic.Network, id logic.NodeID, p []float64) float64 {
	node := n.Node(id)
	switch node.Kind {
	case logic.KindBuf:
		return p[node.Fanins[0]]
	case logic.KindNot:
		return 1 - p[node.Fanins[0]]
	case logic.KindAnd:
		v := 1.0
		for _, f := range node.Fanins {
			v *= p[f]
		}
		return v
	case logic.KindOr:
		v := 1.0
		for _, f := range node.Fanins {
			v *= 1 - p[f]
		}
		return 1 - v
	case logic.KindXor:
		v := 0.0
		for _, f := range node.Fanins {
			pf := p[f]
			v = v*(1-pf) + (1-v)*pf
		}
		return v
	}
	return 0
}
