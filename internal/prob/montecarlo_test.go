package prob

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/logic"
)

func mcTestNet() *logic.Network {
	n := logic.New("mc")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	n.MarkOutput("f", n.AddOr(n.AddAnd(a, b), n.AddXor(b, c)))
	return n
}

// TestMonteCarloDeterministic: same (vectors, seed) → identical
// probabilities; a different seed moves them.
func TestMonteCarloDeterministic(t *testing.T) {
	n := mcTestNet()
	probs := []float64{0.5, 0.3, 0.7}
	a, err := MonteCarloLits(n, 3, nil, probs, 4096, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloLits(n, 3, nil, probs, 4096, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: %v vs %v on identical seeds", i, a[i], b[i])
		}
	}
	c, err := MonteCarloLits(n, 3, nil, probs, 4096, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not move any estimate")
	}
}

// TestMonteCarloMatchesExact: estimates converge on the exact BDD
// probabilities, including rail correlation through shared literals.
func TestMonteCarloMatchesExact(t *testing.T) {
	n := mcTestNet()
	// Input positions 1 and 2 are the true and complemented rails of
	// variable 1: correlation the naive estimator would miss.
	lits := []bdd.InputLit{{Var: 0}, {Var: 1}, {Var: 1, Neg: true}}
	varProbs := []float64{0.5, 0.25}
	exact, err := ExactLitsIn(nil, n, 2, lits, varProbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloLits(n, 2, lits, varProbs, 1<<16, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if d := math.Abs(exact[i] - mc[i]); d > 0.02 {
			t.Errorf("node %d: exact %.4f, mc %.4f (|Δ| = %.4f)", i, exact[i], mc[i], d)
		}
	}
}

// TestMonteCarloCancellation: a cancelled token aborts the run.
func TestMonteCarloCancellation(t *testing.T) {
	n := mcTestNet()
	tok := budget.New(0, 0)
	tok.Cancel(nil)
	if _, err := MonteCarloLits(n, 3, nil, []float64{0.5, 0.5, 0.5}, 1<<20, 1, tok); !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}
