// Package prob computes signal and switching probabilities for
// combinational networks, the quantities at the heart of the paper's
// power model (Section 2).
//
// Signal probability p of a node is the probability its logical output is
// 1 under independent Bernoulli primary inputs. For a domino gate the
// switching probability equals the signal probability (Property 2.1): the
// gate discharges in evaluation exactly when its output is 1, and must
// then precharge. For a static CMOS gate under the temporal-independence
// assumption the switching probability is 2p(1−p): a transition happens
// when consecutive cycles disagree. Figure 2 of the paper contrasts the
// two curves; this package exposes both models.
package prob

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// Uniform returns an input-probability vector assigning p to every
// primary input of n.
func Uniform(n *logic.Network, p float64) []float64 {
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = p
	}
	return probs
}

// Exact computes the exact signal probability of every network node via
// BDDs built under the given variable order (nil = natural). inputProbs
// is indexed by input position. The cost is linear in the shared BDD size,
// which is why the paper pairs this computation with the variable-ordering
// heuristic of internal/order.
func Exact(n *logic.Network, inputProbs []float64, ord []int) ([]float64, error) {
	if len(inputProbs) != n.NumInputs() {
		return nil, fmt.Errorf("prob: %d input probs for %d inputs", len(inputProbs), n.NumInputs())
	}
	nb, err := bdd.BuildNetwork(n, ord)
	if err != nil {
		return nil, err
	}
	return nb.Manager.ProbabilityMany(nb.NodeRefs, inputProbs), nil
}

// ExactLits computes exact node probabilities when the network's inputs
// are literals over a shared variable space: input position p is the
// literal lits[p] over numVars variables with probabilities varProbs.
// This is how a domino block is analyzed faithfully: its true and
// complemented input rails are correlated literals of the same primary
// input, not independent signals.
func ExactLits(n *logic.Network, numVars int, lits []bdd.InputLit, varProbs []float64, ord []int) ([]float64, error) {
	return ExactLitsIn(nil, n, numVars, lits, varProbs, ord)
}

// ExactLitsIn is ExactLits computing on an existing BDD manager (reset
// and reused; see bdd.BuildNetworkLitsIn) so sequential callers — the
// per-cone cone-table precompute, the reusable power estimator — avoid
// allocating a fresh forest per network. A nil manager allocates one.
func ExactLitsIn(m *bdd.Manager, n *logic.Network, numVars int, lits []bdd.InputLit, varProbs []float64, ord []int) ([]float64, error) {
	if len(varProbs) != numVars {
		return nil, fmt.Errorf("prob: %d var probs for %d vars", len(varProbs), numVars)
	}
	nb, err := bdd.BuildNetworkLitsIn(m, n, numVars, lits, ord)
	if err != nil {
		return nil, err
	}
	return nb.Manager.ProbabilityMany(nb.NodeRefs, varProbs), nil
}

// Approximate computes signal probabilities with the correlation-free
// (tree) assumption: every gate's fanins are treated as independent. It
// is exact on fanout-free networks and a fast, biased estimate otherwise;
// the flow uses it as a cross-check and as a cheap prefilter.
func Approximate(n *logic.Network, inputProbs []float64) []float64 {
	if len(inputProbs) != n.NumInputs() {
		panic(fmt.Sprintf("prob: %d input probs for %d inputs", len(inputProbs), n.NumInputs()))
	}
	p := make([]float64, n.NumNodes())
	inPos := make(map[logic.NodeID]int, n.NumInputs())
	for pos, id := range n.Inputs() {
		inPos[id] = pos
	}
	for i := 0; i < n.NumNodes(); i++ {
		id := logic.NodeID(i)
		node := n.Node(id)
		switch node.Kind {
		case logic.KindInput:
			p[i] = inputProbs[inPos[id]]
		case logic.KindConst0:
			p[i] = 0
		case logic.KindConst1:
			p[i] = 1
		case logic.KindBuf:
			p[i] = p[node.Fanins[0]]
		case logic.KindNot:
			p[i] = 1 - p[node.Fanins[0]]
		case logic.KindAnd:
			v := 1.0
			for _, f := range node.Fanins {
				v *= p[f]
			}
			p[i] = v
		case logic.KindOr:
			v := 1.0
			for _, f := range node.Fanins {
				v *= 1 - p[f]
			}
			p[i] = 1 - v
		case logic.KindXor:
			v := 0.0
			for _, f := range node.Fanins {
				pf := p[f]
				v = v*(1-pf) + (1-v)*pf
			}
			p[i] = v
		}
	}
	return p
}

// DominoSwitching returns the switching probability of a domino gate with
// signal probability p (Property 2.1: S = p, at both the dynamic node and
// the buffered output).
func DominoSwitching(p float64) float64 { return p }

// StaticSwitching returns the per-cycle switching probability of a static
// CMOS gate with signal probability p under temporal independence:
// S = 2p(1−p).
func StaticSwitching(p float64) float64 { return 2 * p * (1 - p) }

// BoundaryInputInverterSwitching returns the switching probability of a
// static inverter at a domino block *input* boundary. Its input is an
// ordinary (static) primary signal with probability p, so it switches
// like a static gate: 2p(1−p). These are the ".18" inverters of the
// paper's Figure 5 at p = 0.9.
func BoundaryInputInverterSwitching(p float64) float64 { return StaticSwitching(p) }

// BoundaryOutputInverterSwitching returns the switching probability of a
// static inverter at a domino block *output* boundary. Its input is a
// domino output which makes a monotonic transition with probability equal
// to its signal probability p and is precharged back every cycle, so the
// inverter switches with probability p — exactly the driving domino
// gate's switching. These are the ".0019"/".8019" inverters of Figure 5.
func BoundaryOutputInverterSwitching(pDriver float64) float64 { return pDriver }

// CurvePoint is one sample of a switching-vs-signal-probability curve.
type CurvePoint struct {
	P float64 // signal probability
	S float64 // switching probability
}

// Figure2Curves samples the domino and static switching curves the paper
// plots in Figure 2, at steps+1 evenly spaced probabilities in [0,1].
func Figure2Curves(steps int) (domino, static []CurvePoint) {
	if steps < 1 {
		panic("prob: steps must be >= 1")
	}
	for i := 0; i <= steps; i++ {
		p := float64(i) / float64(steps)
		domino = append(domino, CurvePoint{p, DominoSwitching(p)})
		static = append(static, CurvePoint{p, StaticSwitching(p)})
	}
	return domino, static
}
