package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance is 4; sample variance 32/7.
	if !almost(r.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero value not neutral")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Error("single observation wrong")
	}
}

func TestConfidenceShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.NormFloat64())
	}
	ci1 := small.Confidence(Z95)
	ci2 := large.Confidence(Z95)
	if (ci2.High - ci2.Low) >= (ci1.High - ci1.Low) {
		t.Error("interval did not shrink with more samples")
	}
	if ci1.Low > ci1.Mean || ci1.High < ci1.Mean {
		t.Error("interval does not bracket the mean")
	}
}

func TestConfidenceCoverage(t *testing.T) {
	// ~95% of intervals from N(0,1) samples must contain 0.
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		var r Running
		for i := 0; i < 200; i++ {
			r.Add(rng.NormFloat64())
		}
		ci := r.Confidence(Z95)
		if ci.Low <= 0 && 0 <= ci.High {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("coverage = %.3f, want ~0.95", rate)
	}
}

func TestMergeMatchesSequentialProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var all, a, b Running
		na := rng.Intn(50)
		nb := 1 + rng.Intn(50)
		for i := 0; i < na; i++ {
			x := rng.Float64() * 10
			all.Add(x)
			a.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.Float64() * 10
			all.Add(x)
			b.Add(x)
		}
		m := Merge(a, b)
		return m.N() == all.N() &&
			almost(m.Mean(), all.Mean(), 1e-9) &&
			almost(m.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliCI(t *testing.T) {
	ci := BernoulliCI(50, 100, Z95)
	if !almost(ci.Mean, 0.5, 1e-12) {
		t.Errorf("mean = %v", ci.Mean)
	}
	if ci.Low >= 0.5 || ci.High <= 0.5 {
		t.Error("interval degenerate")
	}
	edge := BernoulliCI(0, 100, Z95)
	if edge.Low != 0 {
		t.Error("low not clamped at 0")
	}
	if z := BernoulliCI(0, 0, Z95); z.Mean != 0 {
		t.Error("n=0 not neutral")
	}
}
