// Package stats provides the running statistics the Monte-Carlo
// measurement layer reports: Welford-style mean/variance accumulation
// and normal-approximation confidence intervals, so simulated power
// numbers carry error bars instead of bare point estimates.
package stats

import "math"

// Running accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean, Low, High float64
}

// Confidence returns the normal-approximation interval at the given z
// score (1.96 ≈ 95%, 2.58 ≈ 99%).
func (r *Running) Confidence(z float64) Interval {
	se := r.StdErr()
	return Interval{Mean: r.mean, Low: r.mean - z*se, High: r.mean + z*se}
}

// Z95 and Z99 are the usual two-sided normal quantiles.
const (
	Z95 = 1.959963984540054
	Z99 = 2.5758293035489004
)

// Merge combines two accumulators (Chan et al. parallel variance).
func Merge(a, b Running) Running {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	n := a.n + b.n
	d := b.mean - a.mean
	mean := a.mean + d*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	return Running{n: n, mean: mean, m2: m2}
}

// BernoulliCI returns the normal-approximation confidence interval for a
// proportion observed k times out of n — used for per-cell switching
// frequencies.
func BernoulliCI(k, n int64, z float64) Interval {
	if n == 0 {
		return Interval{}
	}
	p := float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	return Interval{Mean: p, Low: math.Max(0, p-z*se), High: math.Min(1, p+z*se)}
}
