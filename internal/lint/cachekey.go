package lint

import (
	"go/ast"
	"go/token"
	"reflect"
	"strings"
)

// Field-doc markers. Every flow.Config field must state its cache-key
// class in its doc comment; the analyzer cross-checks the wall-clock
// set against the zero-erasures in Canonical(), so the doc, the code,
// and the content-address key can never drift apart.
const (
	markerSemantic  = "Cache-key: semantic"
	markerWallClock = "Cache-key: wall-clock"
)

// CacheKey turns the serve cache-key reflection test into a build-time
// contract on package flow: every Config field must (1) carry exactly
// one `Cache-key: semantic.` / `Cache-key: wall-clock.` doc marker,
// (2) carry a json tag naming the field (so the canonical JSON the
// cache hashes cannot be renamed silently), and (3) be zero-erased in
// Canonical() iff it is marked wall-clock. Deleting an erase line —
// say `c.SimBlockWords = 0` — fails the build.
var CacheKey = &Analyzer{
	Name:      "cachekey",
	Directive: "cachekey-ok",
	Doc: "every flow.Config field must be classified semantic or " +
		"wall-clock (doc marker + json tag), and Canonical() must erase " +
		"exactly the wall-clock set",
	Run: runCacheKey,
}

func runCacheKey(pass *Pass) error {
	if !pkgScope(pass, "flow") {
		return nil
	}
	var cfg *ast.StructType
	var cfgPos token.Pos
	var canonical *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "Config" {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						cfg = st
						cfgPos = ts.Pos()
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "Canonical" && d.Recv != nil && recvIsConfig(d) {
					canonical = d
				}
			}
		}
	}
	if cfg == nil {
		return nil // fixture or future split: no Config here
	}
	if canonical == nil {
		pass.Reportf(cfgPos, "Config has no Canonical() method: the content-addressed "+
			"cache key is undefined without it")
		return nil
	}

	erased := canonicalErasures(canonical)

	for _, field := range cfg.Fields.List {
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "embedded Config field cannot be classified "+
				"semantic-or-wall-clock; name it")
			continue
		}
		doc := field.Doc.Text()
		sem := strings.Contains(doc, markerSemantic)
		wall := strings.Contains(doc, markerWallClock)
		for _, name := range field.Names {
			switch {
			case sem && wall:
				pass.Reportf(name.Pos(), "Config field %s is marked both %q and %q; pick one",
					name.Name, markerSemantic, markerWallClock)
			case !sem && !wall:
				pass.Reportf(name.Pos(), "Config field %s is not classified: its doc comment "+
					"must state %q (part of the cache key) or %q (erased by Canonical)",
					name.Name, markerSemantic+".", markerWallClock)
			case wall && !erased[name.Name]:
				pass.Reportf(name.Pos(), "Config field %s is marked wall-clock but Canonical() "+
					"does not zero it: the cache key would fragment on a knob that never "+
					"changes results", name.Name)
			case sem && erased[name.Name]:
				pass.Reportf(name.Pos(), "Config field %s is marked semantic but Canonical() "+
					"zeroes it: distinct semantics would collide on one cache key", name.Name)
			}
			checkJSONTag(pass, field, name.Name)
		}
	}
	return nil
}

// canonicalErasures collects the Config fields the Canonical body
// assigns a zero literal to (`c.Workers = 0`, `c.Lib = nil`, ...) —
// the "explicitly erased" wall-clock set. Non-zero assignments (the
// default fills like `c.SearchRestarts = 3`) are not erasures.
func canonicalErasures(fn *ast.FuncDecl) map[string]bool {
	recv := ""
	if len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		recv = fn.Recv.List[0].Names[0].Name
	}
	erased := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != recv {
				continue // nested assignment like c.EstOpts.Depth: a default fill
			}
			if isZeroExpr(as.Rhs[i]) {
				erased[sel.Sel.Name] = true
			}
		}
		return true
	})
	return erased
}

func recvIsConfig(fn *ast.FuncDecl) bool {
	if len(fn.Recv.List) == 0 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Config"
}

// isZeroExpr reports whether e is a zero literal: 0, 0.0, "", nil,
// false, or a conversion of one (T(0)).
func isZeroExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		switch v.Value {
		case "0", "0.0", `""`, "``", "0x0":
			return true
		}
	case *ast.Ident:
		return v.Name == "nil" || v.Name == "false"
	case *ast.CallExpr:
		if len(v.Args) == 1 {
			return isZeroExpr(v.Args[0])
		}
	}
	return false
}

// checkJSONTag enforces a json tag whose name equals the field name, so
// the canonical JSON that serve.CacheKey hashes is pinned in the source
// and cannot change byte layout through a silent rename.
func checkJSONTag(pass *Pass, field *ast.Field, name string) {
	if field.Tag == nil {
		pass.Reportf(field.Pos(), "Config field %s has no json tag: the cache key hashes "+
			"the canonical JSON, so the wire name must be pinned as `json:%q`", name, name)
		return
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	jt, ok := tag.Lookup("json")
	if !ok {
		pass.Reportf(field.Tag.Pos(), "Config field %s has a struct tag but no json key: "+
			"pin the wire name as `json:%q`", name, name)
		return
	}
	jsonName, _, _ := strings.Cut(jt, ",")
	if jsonName != name {
		pass.Reportf(field.Tag.Pos(), "Config field %s json tag names %q: renaming the wire "+
			"field silently changes every cache key; keep `json:%q`", name, jsonName, name)
	}
}
