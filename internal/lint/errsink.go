package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSink flags discarded error returns in the parser packages
// (internal/blif, internal/pla) — the exact class of the PR 5 bugs
// where swallowed fmt.Sscanf errors turned malformed headers into
// misleading downstream failures. Every discard is a finding: a bare
// call statement whose callee returns an error, and a blank `_` in the
// error position of an assignment (including an explicit `_ = f()`);
// intentional discards carry //dominolint:errsink-ok with the reason.
//
// One pattern is allowed without a directive: a discarded write whose
// destination is a *bufio.Writer (fmt.Fprintf(bw, ...) or a method on
// bw). bufio latches the first write error and re-surfaces it from
// Flush — "all subsequent writes, and Flush, will return the error" —
// so the serializers that end in `return bw.Flush()` lose nothing.
var ErrSink = &Analyzer{
	Name:      "errsink",
	Directive: "errsink-ok",
	Doc: "discarded error returns in internal/blif and internal/pla " +
		"(the swallowed-Sscanf bug class); handle the error or annotate " +
		"//dominolint:errsink-ok <reason>",
	Run: runErrSink,
}

func runErrSink(pass *Pass) error {
	if !pkgScope(pass, "blif", "pla") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, s.Call)
			case *ast.GoStmt:
				checkDiscardedCall(pass, s.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a call statement whose result set includes
// an error that nothing receives.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	if isBufioLatchedWrite(pass, call) {
		return
	}
	for _, t := range resultTypes(pass, call) {
		if isErrorType(t) {
			pass.Reportf(call.Pos(), "error result of %s is discarded: a swallowed parse "+
				"error resurfaces as a misleading failure later; handle it or annotate "+
				"//dominolint:errsink-ok <reason>", exprString(call.Fun))
			return
		}
	}
}

// checkBlankError reports a blank identifier bound to an error value in
// an assignment, covering both `n, _ := f()` and `_ = f()`.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	var rhsTypes []types.Type
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			rhsTypes = resultTypes(pass, call)
		}
	} else if len(as.Rhs) == len(as.Lhs) {
		for _, r := range as.Rhs {
			if tv, ok := pass.TypesInfo.Types[r]; ok {
				rhsTypes = append(rhsTypes, tv.Type)
			} else {
				rhsTypes = append(rhsTypes, nil)
			}
		}
	}
	if len(rhsTypes) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || rhsTypes[i] == nil {
			continue
		}
		if isErrorType(rhsTypes[i]) {
			pass.Reportf(id.Pos(), "error assigned to the blank identifier: a swallowed "+
				"parse error resurfaces as a misleading failure later; handle it or "+
				"annotate //dominolint:errsink-ok <reason>")
		}
	}
}

// resultTypes returns the call's result types (nil-safe, one element
// for single-result calls).
func resultTypes(pass *Pass, call *ast.CallExpr) []types.Type {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := range out {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// isBufioLatchedWrite reports whether call is a write whose errors are
// latched by a *bufio.Writer destination: fmt.Fprint/Fprintf/Fprintln
// with a *bufio.Writer first argument, or a method call on a
// *bufio.Writer receiver. Those errors re-surface from Flush.
func isBufioLatchedWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil {
		return isBufioWriterPtr(sig.Recv().Type())
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
			return isBufioWriterPtr(tv.Type)
		}
	}
	return false
}

func isBufioWriterPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil && obj.Pkg().Path() == "bufio"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
