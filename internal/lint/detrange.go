package lint

import (
	"go/ast"
	"go/types"
)

// detRangeScope is the set of row-producing packages: everything whose
// output feeds the bit-identical-rows contract (flow rows, report
// tables, served JSONL, phase/power winners, corpus entry order). A map
// iteration whose order leaks into any of those outputs breaks
// determinism at some worker count or run, so it poisons the
// content-addressed cache.
var detRangeScope = []string{"flow", "report", "serve", "phase", "power", "corpus"}

// DetRange flags `range` over a map in row-producing packages. The only
// allowed raw map range is a pure key/value collection loop (every
// statement an append) — the canonical collect-sort-iterate pattern —
// because its effect is order-insensitive once the collected slice is
// sorted. Anything else needs the keys sorted first or a
// //dominolint:nondet-ok directive stating why the order cannot reach a
// row.
var DetRange = &Analyzer{
	Name:      "detrange",
	Directive: "nondet-ok",
	Doc: "range over a map in a row-producing package (flow, report, " +
		"serve, phase, power, corpus) is nondeterministic; sort the keys " +
		"first, collect-then-sort, or annotate //dominolint:nondet-ok",
	Run: runDetRange,
}

func runDetRange(pass *Pass) error {
	if !pkgScope(pass, detRangeScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectLoop(rs.Body) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s: iteration order is nondeterministic "+
				"and this package produces rows; sort the keys first or annotate "+
				"//dominolint:nondet-ok <reason>", exprString(rs.X))
			return true
		})
	}
	return nil
}

// isCollectLoop reports whether every statement of a range body is an
// append assignment (`s = append(s, ...)`) — the collect half of the
// collect-sort-iterate pattern, whose effect is independent of
// iteration order once the slice is sorted.
func isCollectLoop(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}
