package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseOne parses src and returns the directive table.
func parseOne(t *testing.T, src string) map[int][]directive {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return parseDirectives(fset, []*ast.File{f})
}

func TestParseDirectives(t *testing.T) {
	src := `package p

func f() {
	a := 1 //dominolint:nondet-ok the reason text
	b := 2 //dominolint:budget-ok
	c := 3 // dominolint:walltime-ok spaced means prose, not a directive
	d := 4 //dominolint:unknown-name some reason
	_, _, _, _ = a, b, c, d
}
`
	byLine := parseOne(t, src)
	if len(byLine) != 3 {
		t.Fatalf("want 3 directive lines, got %d: %v", len(byLine), byLine)
	}
	if d := byLine[4][0]; d.name != "nondet-ok" || d.reason != "the reason text" || !d.wellFormed() {
		t.Errorf("line 4: %+v", d)
	}
	if d := byLine[5][0]; d.name != "budget-ok" || d.reason != "" || d.wellFormed() {
		t.Errorf("line 5 should parse but be malformed (missing reason): %+v", d)
	}
	if _, ok := byLine[6]; ok {
		t.Errorf("spaced comment on line 6 must not parse as a directive")
	}
	if d := byLine[7][0]; d.name != "unknown-name" || d.wellFormed() {
		t.Errorf("line 7 should parse but be malformed (unknown name): %+v", d)
	}
}

func TestSuppressedCoversSameAndPreviousLine(t *testing.T) {
	src := `package p

func f(m map[string]int) {
	//dominolint:nondet-ok reason above
	x := len(m)
	y := len(m) //dominolint:nondet-ok reason beside
	_ = x
	_ = y
}
`
	byLine := parseOne(t, src)
	if !suppressed(byLine, "nondet-ok", 5) {
		t.Error("directive on the previous line must suppress")
	}
	if !suppressed(byLine, "nondet-ok", 6) {
		t.Error("directive on the same line must suppress")
	}
	// A directive covers its own line and the next one only.
	if suppressed(byLine, "nondet-ok", 8) {
		t.Error("directive must not leak two lines down")
	}
	if suppressed(byLine, "budget-ok", 5) {
		t.Error("a directive only suppresses its own analyzer")
	}
	if suppressed(byLine, "", 5) {
		t.Error("the empty directive name never suppresses")
	}
}
