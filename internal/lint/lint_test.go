package lint

import (
	"path/filepath"
	"testing"
)

func TestDetRangeFixture(t *testing.T)   { RunFixture(t, DetRange, "detrange/flow") }
func TestBudgetPollFixture(t *testing.T) { RunFixture(t, BudgetPoll, "budgetpoll/sim") }
func TestWallTimeFixture(t *testing.T)   { RunFixture(t, WallTime, "walltime/power") }
func TestErrSinkFixture(t *testing.T)    { RunFixture(t, ErrSink, "errsink/blif") }

func TestCacheKeyFixtures(t *testing.T) {
	RunFixture(t, CacheKey, "cachekey/good/flow")
	RunFixture(t, CacheKey, "cachekey/bad/flow")
	RunFixture(t, CacheKey, "cachekey/nocanon/flow")
}

func TestDirectiveFixture(t *testing.T) { RunFixture(t, DirectiveAnalyzer, "directive/flow") }

// TestSuiteOutOfScope: the full suite over a package outside every
// scope reports nothing even though each violation pattern is present.
func TestSuiteOutOfScope(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), "nonscope/other")
	if err != nil {
		t.Fatal(err)
	}
	if findings := CheckPackage(pkg, Suite()); len(findings) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", findings)
	}
}

// TestSeededFixtureFails proves the CI seeded-violation gate can fire:
// the loader path `dominolint -dir` uses (LoadDir) must surface the
// deliberate violations in testdata/src/seeded/flow.
func TestSeededFixtureFails(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "seeded", "flow"))
	if err != nil {
		t.Fatal(err)
	}
	findings := CheckPackage(pkg, Suite())
	if len(findings) < 2 {
		t.Fatalf("seeded fixture should trip walltime and detrange, got %v", findings)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	for _, want := range []string{"walltime", "detrange"} {
		if byAnalyzer[want] == 0 {
			t.Errorf("seeded fixture did not trip %s: %v", want, findings)
		}
	}
}

// TestDirectiveNamesMatchSuite keeps the knownDirectives table and the
// Analyzer.Directive fields from drifting apart: a directive name the
// suite does not own would be reported as unknown, and an analyzer
// whose directive the table misses could never be suppressed.
func TestDirectiveNamesMatchSuite(t *testing.T) {
	fromSuite := map[string]string{}
	for _, a := range Suite() {
		if a.Directive != "" {
			fromSuite[a.Directive] = a.Name
		}
	}
	if len(fromSuite) != len(knownDirectives) {
		t.Errorf("suite declares %d directives, knownDirectives has %d", len(fromSuite), len(knownDirectives))
	}
	for name, analyzer := range knownDirectives {
		if fromSuite[name] != analyzer {
			t.Errorf("knownDirectives[%q] = %q, suite says %q", name, analyzer, fromSuite[name])
		}
	}
}
