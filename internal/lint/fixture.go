package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture loader mirrors x/tools' analysistest: packages live under
// a GOPATH-style root (testdata/src), their import path is their
// directory relative to that root, and `// want "regex"` comments in
// the sources state the expected findings line by line. It is also what
// `dominolint -dir` uses, so the CI seeded-violation gate exercises the
// same loader as the analyzer tests.

// fixtureImporter resolves imports first against the fixture root, then
// the standard library via the shared source importer.
type fixtureImporter struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

func newFixtureImporter(root string) *fixtureImporter {
	fset := token.NewFileSet()
	return &fixtureImporter{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*Package),
	}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, err := fi.load(path); err == nil {
		return pkg.Types, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return fi.std.Import(path)
}

// load parses and type-checks the fixture package at root/path. A
// missing directory returns an os.IsNotExist error so Import can fall
// back to the standard library.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	pkg := &Package{Path: path, Fset: fi.fset, Files: files, Types: tpkg, Info: info}
	fi.cache[path] = pkg
	return pkg, nil
}

// LoadFixture loads the package at root/path (GOPATH-style fixture
// layout; path also becomes the package's import path, so its last
// element selects analyzer scope).
func LoadFixture(root, path string) (*Package, error) {
	return newFixtureImporter(root).load(path)
}

// LoadDir loads dir as a fixture package. When dir sits under a "src"
// ancestor the import path is taken relative to it (so sibling fixture
// imports resolve); otherwise the directory base alone is the path.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path := filepath.Dir(abs), filepath.Base(abs)
	for p := filepath.Dir(abs); ; {
		parent := filepath.Dir(p)
		if filepath.Base(p) == "src" {
			root = p
			rel, err := filepath.Rel(p, abs)
			if err != nil {
				return nil, err
			}
			path = filepath.ToSlash(rel)
			break
		}
		if parent == p {
			break
		}
		p = parent
	}
	return LoadFixture(root, path)
}

// wantRE extracts the quoted expectations of a `// want "re" "re"`
// comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture loads testdata/src/<path> relative to the caller and
// checks the analyzer's surviving findings against the fixture's
// `// want "regex"` comments: every finding must match an expectation
// on its line, and every expectation must be matched by a finding.
func RunFixture(t testing.TB, a *Analyzer, path string) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), path)
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}
	findings := CheckPackage(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	want := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read fixture source: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				want[key{name, i + 1}] = append(want[key{name, i + 1}], re)
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range want {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		ok := false
		for i, re := range want[k] {
			if re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s", f)
		}
	}
	var keys []key
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range want[k] {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
