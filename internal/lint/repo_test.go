package lint

import (
	"testing"
)

// TestRepoFlowCacheKeyContract runs the cachekey analyzer over the real
// repro/internal/flow package: every Config field classified, every
// wire name pinned, Canonical erasing exactly the wall-clock set.
// Deleting an erase line (say `c.SimBlockWords = 0`) fails this test
// and `make lint` alike.
func TestRepoFlowCacheKeyContract(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the real flow package; skipped under -short")
	}
	pkgs, err := LoadPackages("", []string{"repro/internal/flow"})
	if err != nil {
		t.Fatalf("load repro/internal/flow: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if findings := CheckPackage(pkgs[0], []*Analyzer{CacheKey}); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
