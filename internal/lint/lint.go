// Package lint is dominolint: a static-analysis suite that enforces
// this repository's determinism, cache-key, and budget contracts at
// build time instead of test time. It is a self-hosted, API-compatible
// subset of golang.org/x/tools/go/analysis (the container this repo
// grows in has no module network access, so the x/tools dependency is
// stubbed by a stdlib-only framework; the Analyzer/Pass shapes match
// go/analysis so the suite can be rebased onto the real multichecker
// when the dependency becomes vendorable).
//
// The suite (see Suite) contains five domain analyzers plus the
// directive checker:
//
//   - detrange: flags `range` over a map in the row-producing packages
//     (flow, report, serve, phase, power, corpus) unless the loop is a
//     pure key-collection (`keys = append(keys, k)`) that feeds a sort,
//     or the site carries a //dominolint:nondet-ok directive.
//   - cachekey: makes flow.Config field classification a build-time
//     contract — every field must carry a `Cache-key: semantic.` or
//     `Cache-key: wall-clock` doc marker and a json tag naming the
//     field, and the wall-clock set must exactly equal the fields
//     zero-erased in Canonical().
//   - budgetpoll: a loop in bdd/sim/phase whose enclosing function
//     receives a *budget.T must reference the token inside the loop
//     body (the PR 8 "hot loops poll at bounded intervals" contract).
//   - walltime: forbids time.Now/time.Since and the global math/rand
//     state in packages that feed cached rows; the documented WallSec
//     sites carry //dominolint:walltime-ok directives.
//   - errsink: flags discarded error returns in internal/blif and
//     internal/pla (the PR 5 swallowed-Sscanf bug class).
//
// Findings are suppressed by a directive comment on the offending line
// or the line above:
//
//	//dominolint:<name> <reason>
//
// where <name> is the analyzer's directive name (nondet-ok,
// cachekey-ok, budget-ok, walltime-ok, errsink-ok) and <reason> is
// mandatory prose. Malformed directives — unknown name, missing
// reason — are themselves findings (the directive analyzer), so a typo
// can never silently disable a contract.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and documentation.
	Name string
	// Doc is the one-paragraph contract statement.
	Doc string
	// Directive is the //dominolint:<Directive> name that suppresses
	// this analyzer's findings ("" = not suppressible).
	Directive string
	// Run reports findings on one package via pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run over one package. The shape mirrors
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding before directive filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is one reported violation with its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Suite returns the full dominolint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DirectiveAnalyzer,
		DetRange,
		CacheKey,
		BudgetPoll,
		WallTime,
		ErrSink,
	}
}

// pkgScope reports whether the package under analysis is one of the
// named scope packages. Scope is matched on the last import-path
// element (repro/internal/flow matches "flow"), which also lets the
// fixture packages under testdata/src/<analyzer>/<name> select scope by
// their final element.
func pkgScope(pass *Pass, names ...string) bool {
	path := pass.Pkg.Path()
	last := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		last = path[i+1:]
	}
	for _, n := range names {
		if last == n {
			return true
		}
	}
	return false
}

// exprString renders a (short) expression for a finding message.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

// isBudgetToken reports whether t is *budget.T — a pointer to the named
// type T declared in a package whose path's last element is "budget"
// (matching both repro/internal/budget and the fixture package).
func isBudgetToken(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "T" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "budget" || strings.HasSuffix(path, "/budget")
}
