package lint

import (
	"go/ast"
	"go/types"
)

// BudgetPoll enforces the PR 8 cooperative-cancellation contract on the
// engine packages (bdd, sim, phase): when a function receives a
// *budget.T parameter, every loop in it must reference the token
// somewhere inside the loop — a direct poll (tok.Err()), a helper call
// (pollCancel(ctx, tok)), or passing it down to the callee doing the
// polling. A loop with no reference at all is exactly the "future hot
// loop that forgot to poll" the contract exists for; a provably bounded
// loop can be annotated //dominolint:budget-ok with the bound as the
// reason.
var BudgetPoll = &Analyzer{
	Name:      "budgetpoll",
	Directive: "budget-ok",
	Doc: "a loop in bdd/sim/phase whose enclosing function receives a " +
		"*budget.T must reference the token inside the loop body (poll, " +
		"helper, or pass-down), or carry //dominolint:budget-ok <bound>",
	Run: runBudgetPoll,
}

func runBudgetPoll(pass *Pass) error {
	if !pkgScope(pass, "bdd", "sim", "phase") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			var tokens []types.Object
			var name string
			for _, field := range fn.Type.Params.List {
				for _, id := range field.Names {
					obj := pass.TypesInfo.Defs[id]
					if obj != nil && isBudgetToken(obj.Type()) {
						tokens = append(tokens, obj)
						name = id.Name
					}
				}
			}
			if len(tokens) == 0 {
				continue
			}
			checkLoops(pass, fn.Body, tokens, name)
		}
	}
	return nil
}

// checkLoops reports every for/range statement under root whose subtree
// never mentions one of the token objects. Outer loops are satisfied by
// a reference anywhere inside them (including in a nested loop), so the
// finding lands on the innermost loop that actually forgot.
func checkLoops(pass *Pass, root ast.Node, tokens []types.Object, name string) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return true
		}
		if !referencesAny(pass, n, tokens) {
			pass.Reportf(n.Pos(), "loop never references the *budget.T parameter %q: a hot "+
				"loop that does not poll cannot be cancelled and ignores its budget; "+
				"poll it (or annotate //dominolint:budget-ok <why the loop is bounded>)", name)
		}
		return true
	})
}

// referencesAny reports whether any identifier under n resolves to one
// of the objects.
func referencesAny(pass *Pass, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		for _, o := range objs {
			if use == o {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
