package lint

import (
	"go/ast"
	"go/types"
)

// wallTimeScope is every package whose computation reaches a cached
// row: the engines, the flow, the parsers/generators feeding them, and
// the report layer. internal/serve is deliberately out of scope — its
// queue timing, Retry-After arithmetic, and drain deadlines are
// legitimately wall-clock and never enter row bytes (rows are produced
// by flow under this contract).
var wallTimeScope = []string{
	"bdd", "blif", "core", "corpus", "domino", "flow", "gen", "logic",
	"order", "par", "phase", "pla", "power", "prob", "report", "seq",
	"sgraph", "sim", "sop", "stats", "timing", "verify",
}

// rngConstructors are the deterministic math/rand entry points: they
// build an explicitly seeded generator, which is how every engine in
// this repo derives reproducible streams. Everything else in math/rand
// reads the global, ambient-seeded state and is forbidden in scope.
var rngConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// WallTime forbids ambient nondeterminism — time.Now, time.Since, and
// the global math/rand state — in packages that feed cached rows. Two
// runs of the same canonical config over the same bytes must produce
// bit-identical rows; a wall-clock read or an unseeded random draw in
// the compute path breaks that silently. The documented WallSec
// stamping sites carry //dominolint:walltime-ok directives.
var WallTime = &Analyzer{
	Name:      "walltime",
	Directive: "walltime-ok",
	Doc: "time.Now/time.Since and global math/rand are forbidden in " +
		"packages that feed cached rows; seeded rand.New(rand.NewSource(..)) " +
		"streams are fine, documented wall-clock sites carry " +
		"//dominolint:walltime-ok",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	if !pkgScope(pass, wallTimeScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Uint64) are seeded state
			}
			switch fn.Pkg().Path() {
			case "time":
				if name := fn.Name(); name == "Now" || name == "Since" {
					pass.Reportf(call.Pos(), "time.%s in a row-feeding package: wall-clock "+
						"values must never reach cached rows; compute them in the caller or "+
						"annotate //dominolint:walltime-ok <reason>", name)
				}
			case "math/rand", "math/rand/v2":
				if !rngConstructors[fn.Name()] {
					pass.Reportf(call.Pos(), "global math/rand.%s in a row-feeding package: "+
						"ambient random state is nondeterministic across runs; draw from an "+
						"explicitly seeded rand.New(rand.NewSource(seed)) stream", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
