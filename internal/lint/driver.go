package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// CheckPackage runs the analyzers over one package and returns the
// findings that survive directive filtering, sorted by position.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	byLine := parseDirectives(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed(byLine, a.Directive, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer error: %v", err),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// listedPackage is the subset of `go list -json` output the driver
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// LoadPackages enumerates the packages matching the patterns with
// `go list` (run in dir; "" = current directory), then parses and
// type-checks each against a shared source importer. Test files are
// not loaded: the contracts the suite enforces are about production
// code, and the runtime tests are themselves a verification layer.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: lp.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
