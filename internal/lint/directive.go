package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix is the exact comment prefix that marks a dominolint
// directive. Following the //go: convention, a space after the slashes
// (`// dominolint:`) makes the line prose, not a directive — only the
// exact prefix is parsed, so doc comments may mention directives
// freely.
const directivePrefix = "//dominolint:"

// knownDirectives maps directive names to the analyzer they suppress.
// Kept in sync with the Analyzer.Directive fields by
// TestDirectiveNamesMatchSuite.
var knownDirectives = map[string]string{
	"nondet-ok":   "detrange",
	"cachekey-ok": "cachekey",
	"budget-ok":   "budgetpoll",
	"walltime-ok": "walltime",
	"errsink-ok":  "errsink",
}

// A directive is one parsed //dominolint: comment.
type directive struct {
	pos    token.Pos
	line   int
	name   string // directive name, possibly unknown
	reason string // mandatory justification; "" = malformed
}

// wellFormed reports whether the directive can suppress findings: a
// known name plus a non-empty reason. Malformed directives never
// suppress anything (and are themselves findings), so a typo cannot
// silently disable a contract.
func (d directive) wellFormed() bool {
	_, ok := knownDirectives[d.name]
	return ok && d.reason != ""
}

// parseDirectives extracts every //dominolint: comment from the files,
// keyed by file line.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[int][]directive {
	byLine := make(map[int][]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				// A reason ends where a further comment begins, so a
				// trailing marker (like a fixture's `// want`) is not
				// mistaken for justification prose.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				name, reason, _ := strings.Cut(rest, " ")
				d := directive{
					pos:    c.Pos(),
					line:   fset.Position(c.Pos()).Line,
					name:   strings.TrimSpace(name),
					reason: strings.TrimSpace(reason),
				}
				byLine[d.line] = append(byLine[d.line], d)
			}
		}
	}
	return byLine
}

// suppressed reports whether a finding of the analyzer with directive
// name dirName at the given line is covered by a well-formed directive
// on the same line or the line immediately above.
func suppressed(byLine map[int][]directive, dirName string, line int) bool {
	if dirName == "" {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == dirName && d.wellFormed() {
				return true
			}
		}
	}
	return false
}

// DirectiveAnalyzer reports malformed //dominolint: directives: an
// unknown analyzer name or a missing reason. Its findings are not
// themselves suppressible.
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc: "malformed //dominolint: directives (unknown analyzer name or " +
		"missing reason) are findings, so a typo never silently disables " +
		"a contract",
	Run: runDirective,
}

func runDirective(pass *Pass) error {
	byLine := parseDirectives(pass.Fset, pass.Files)
	lines := make([]int, 0, len(byLine))
	for l := range byLine {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	for _, l := range lines {
		for _, d := range byLine[l] {
			if _, ok := knownDirectives[d.name]; !ok {
				known := make([]string, 0, len(knownDirectives))
				for n := range knownDirectives {
					known = append(known, n)
				}
				sort.Strings(known)
				pass.Reportf(d.pos, "unknown dominolint directive %q (known: %s)",
					d.name, strings.Join(known, ", "))
				continue
			}
			if d.reason == "" {
				pass.Reportf(d.pos, "dominolint directive %q is missing its reason: "+
					"write //dominolint:%s <why this site is exempt>", d.name, d.name)
			}
		}
	}
	return nil
}
