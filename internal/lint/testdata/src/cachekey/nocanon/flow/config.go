// Package flow is the missing-Canonical cachekey fixture.
package flow

// Config has no Canonical method, so the cache key is undefined.
type Config struct { // want "Config has no Canonical\(\) method"
	// Seed drives results.
	// Cache-key: semantic.
	Seed int64 `json:"Seed"`
}
