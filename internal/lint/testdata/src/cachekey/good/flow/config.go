// Package flow is the passing cachekey fixture: every field classified,
// every wire name pinned, Canonical erasing exactly the wall-clock set.
package flow

// Config is the fixture twin of flow.Config.
type Config struct {
	// Seed drives results.
	// Cache-key: semantic.
	Seed int64 `json:"Seed"`
	// Workers never changes results.
	// Cache-key: wall-clock (erased by Canonical).
	Workers int `json:"Workers"`
}

// Canonical erases the wall-clock knobs.
func (c Config) Canonical() Config {
	if c.Seed == 0 {
		c.Seed = 1 // a default fill, not an erasure
	}
	c.Workers = 0
	return c
}
