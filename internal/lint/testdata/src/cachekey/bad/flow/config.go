// Package flow is the failing cachekey fixture: one field per way the
// classification contract can break.
package flow

// Config exhibits every violation class.
type Config struct {
	Unclassified int `json:"Unclassified"` // want "not classified"
	// NoTag is semantic but unpinned on the wire.
	// Cache-key: semantic.
	NoTag int // want "has no json tag"
	// NotErased claims wall-clock but Canonical keeps it.
	// Cache-key: wall-clock (erased by Canonical).
	NotErased int `json:"NotErased"` // want "marked wall-clock but Canonical\(\) does not zero it"
	// Erased claims semantic but Canonical zeroes it.
	// Cache-key: semantic.
	Erased int `json:"Erased"` // want "marked semantic but Canonical\(\) zeroes it"
	// Renamed pins the wrong wire name.
	// Cache-key: semantic.
	Renamed int `json:"renamed_wire"` // want "json tag names \"renamed_wire\""
	// Acknowledged is wall-clock, unerased, but suppressed by directive.
	// Cache-key: wall-clock (erased by Canonical).
	//dominolint:cachekey-ok fixture demonstrates suppression of the erase cross-check
	Acknowledged int `json:"Acknowledged"`
}

// Canonical erases the wrong set.
func (c Config) Canonical() Config {
	c.Erased = 0
	return c
}
