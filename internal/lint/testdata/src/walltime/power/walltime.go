// Package power is the walltime fixture: its path ends in "power", a
// row-feeding scope package.
package power

import (
	"math/rand"
	"time"
)

// Ambient reads the wall clock and the global random state.
func Ambient() float64 {
	t := time.Now()                     // want "time.Now in a row-feeding package"
	d := time.Since(t)                  // want "time.Since in a row-feeding package"
	return d.Seconds() + rand.Float64() // want "global math/rand.Float64"
}

// Seeded draws from an explicitly seeded stream: allowed.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Stamped is a documented wall-clock site.
func Stamped() int64 {
	return time.Now().UnixNano() //dominolint:walltime-ok fixture twin of the documented WallSec stamping site
}

// Elapsed measures without ambient reads: allowed.
func Elapsed(a, b time.Time) time.Duration { return b.Sub(a) }
