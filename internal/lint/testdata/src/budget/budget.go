// Package budget is the fixture twin of repro/internal/budget: the
// budgetpoll analyzer matches *budget.T by the package path's last
// element, so fixtures import this stub instead of the real token.
package budget

// T is the fixture cancellation/budget token.
type T struct{}

// Err is the poll.
func (t *T) Err() error { return nil }
