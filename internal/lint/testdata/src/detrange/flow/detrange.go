// Package flow is the detrange fixture: its path ends in "flow", a
// row-producing scope package.
package flow

import "sort"

// Sum folds map iteration order into its result.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // want "range over map m: iteration order is nondeterministic"
		s += v
	}
	return s
}

// SortedKeys is the allowed collect-sort-iterate pattern: the map range
// only appends, the later slice range is not a map range.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// Suppressed carries a well-formed directive.
func Suppressed(m map[string]int) int {
	s := 0
	//dominolint:nondet-ok integer addition is commutative and the sum is the only observable
	for _, v := range m {
		s += v
	}
	return s
}

// MalformedDirectiveDoesNotSuppress: a directive without a reason never
// silences a finding.
func MalformedDirectiveDoesNotSuppress(m map[string]int) int {
	s := 0
	//dominolint:nondet-ok
	for _, v := range m { // want "range over map m"
		s += v
	}
	return s
}

// SliceRange is never a finding.
func SliceRange(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
