// Package flow is the directive-parser fixture: malformed directives
// are themselves findings.
package flow

// Known covers well-formed directives (no findings).
func Known(m map[string]int) int {
	s := 0
	//dominolint:nondet-ok commutative sum, order cannot be observed
	for _, v := range m {
		s += v
	}
	return s
}

// Unknown uses a name no analyzer owns.
func Unknown() {
	x := 1 //dominolint:frobnicate because reasons // want "unknown dominolint directive \"frobnicate\""
	_ = x
}

// MissingReason omits the mandatory justification.
func MissingReason() {
	y := 2 //dominolint:nondet-ok // want "missing its reason"
	_ = y
}

// Bare has neither name nor reason.
func Bare() {
	z := 3 //dominolint: // want "unknown dominolint directive"
	_ = z
}

// Prose mentions a directive with a space after the slashes, which is
// documentation, not a directive: // dominolint:nondet-ok is prose.
func Prose() {}
