// Package blif is the errsink fixture: its path ends in "blif", a
// parser scope package.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Swallow is the PR 5 bug class in miniature.
func Swallow(s string) int {
	var n int
	fmt.Sscanf(s, "%d", &n) // want "error result of fmt.Sscanf is discarded"
	v, _ := strconv.Atoi(s) // want "error assigned to the blank identifier"
	return n + v
}

// ExplicitBlank is still a finding: the discard must carry a reason.
func ExplicitBlank(f func() error) {
	_ = f() // want "error assigned to the blank identifier"
}

// Suppressed carries a well-formed directive.
func Suppressed(s string) {
	var n int
	fmt.Sscanf(s, "%d", &n) //dominolint:errsink-ok fixture demonstrates an acknowledged discard
}

// Handled is never a finding.
func Handled(s string) (int, error) {
	return strconv.Atoi(s)
}

// WriteLatched uses the bufio latch pattern: intermediate write errors
// re-surface from Flush, so the discards are allowed without directives.
func WriteLatched(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "header %d\n", 1)
	bw.WriteString("body\n")
	return bw.Flush()
}
