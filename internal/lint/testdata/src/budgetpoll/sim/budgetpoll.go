// Package sim is the budgetpoll fixture: its path ends in "sim", an
// engine scope package.
package sim

import "budget"

// HotLoop forgets to poll in its first loop and polls in its second.
func HotLoop(n int, tok *budget.T) error {
	acc := 0
	for i := 0; i < n; i++ { // want "never references the \*budget.T parameter"
		acc += i
	}
	for i := 0; i < n; i++ {
		if err := tok.Err(); err != nil {
			return err
		}
		acc += i
	}
	_ = acc
	return nil
}

// PassDown satisfies the contract by handing the token to the callee.
func PassDown(n int, tok *budget.T) {
	for i := 0; i < n; i++ {
		helper(tok)
	}
}

func helper(tok *budget.T) { _ = tok.Err() }

// Bounded carries a well-formed directive naming the bound.
func Bounded(tok *budget.T) int {
	s := 0
	//dominolint:budget-ok bounded at 8 words per block, no calls inside
	for i := 0; i < 8; i++ {
		s += i
	}
	_ = tok
	return s
}

// NoToken has no *budget.T parameter, so its loops are out of scope.
func NoToken(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// RangeForgets covers the range-statement form.
func RangeForgets(xs []int, tok *budget.T) int {
	s := 0
	for _, v := range xs { // want "never references the \*budget.T parameter"
		s += v
	}
	_ = tok.Err()
	return s
}
