// Package flow is the deliberately broken fixture behind the CI
// seeded-violation gate (`make lintgate`): `dominolint -dir` over this
// directory must exit non-zero, proving the lint gate actually fails
// builds. Do not "fix" these violations.
package flow

import "time"

// Stamp leaks wall-clock into a row-feeding package.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Sum folds map iteration order into a result.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
