// Package other is out of every analyzer's scope: the full suite must
// report nothing here despite each violation pattern being present.
package other

import (
	"fmt"
	"math/rand"
	"time"

	"budget"
)

// Everything violates every contract — out of scope, so no findings.
func Everything(m map[string]int, tok *budget.T) int {
	s := 0
	for _, v := range m {
		s += v
	}
	for i := 0; i < 4; i++ {
		s += i
	}
	var n int
	fmt.Sscanf("1", "%d", &n)
	_ = time.Now()
	return s + n + int(rand.Int63())
}
