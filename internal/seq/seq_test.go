package seq

import (
	"math"
	"testing"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/sgraph"
)

// toggleCircuit: one flip-flop with q' = ¬q (divide-by-two counter).
func toggleCircuit(t testing.TB) *Circuit {
	t.Helper()
	n := logic.New("toggle")
	q := n.AddInput("q")
	en := n.AddInput("en")
	nq := n.AddNot(q)
	// q' = en ? ¬q : q  = en·¬q + ¬en·q
	nen := n.AddNot(en)
	next := n.AddOr(n.AddAnd(en, nq), n.AddAnd(nen, q))
	n.MarkOutput("next", next)
	n.MarkOutput("out", q)
	c, err := New(n, []int{0}, []int{0}, []string{"q"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestSGraphSelfLoop(t *testing.T) {
	c := toggleCircuit(t)
	g := c.SGraph()
	if !g.HasEdge(0, 0) {
		t.Error("toggle FF must have an s-graph self-loop")
	}
	cut := c.Cut(sgraph.DefaultOptions())
	if len(cut) != 1 || cut[0] != 0 {
		t.Errorf("cut = %v, want [0]", cut)
	}
}

func TestToggleSteadyState(t *testing.T) {
	c := toggleCircuit(t)
	p, probs, err := c.SteadyStateProbs(SteadyOptions{
		InputProbs: []float64{0, 0.5}, // position 0 is the FF, ignored
	})
	if err != nil {
		t.Fatalf("SteadyStateProbs: %v", err)
	}
	// Steady state of a toggle with en at 0.5: p(q)=0.5 is the fixed
	// point (0.5·0.5 + 0.5·0.5 = 0.5).
	oi := p.Block.OutputByName("ns_q")
	if oi < 0 {
		t.Fatal("partition lacks ns_q output")
	}
	got := probs[p.Block.Outputs()[oi].Driver]
	if math.Abs(got-0.5) > 1e-6 {
		t.Errorf("steady p(q') = %v, want 0.5", got)
	}
}

// shiftRegister builds a 3-stage shift register: q0' = in, q1' = q0,
// q2' = q1, out = q2. Its s-graph is acyclic, so the cut is empty and
// probabilities are exact.
func shiftRegister(t testing.TB) *Circuit {
	t.Helper()
	n := logic.New("shift")
	q0 := n.AddInput("q0")
	q1 := n.AddInput("q1")
	q2 := n.AddInput("q2")
	in := n.AddInput("in")
	n.MarkOutput("d0", n.AddBuf(in))
	n.MarkOutput("d1", n.AddBuf(q0))
	n.MarkOutput("d2", n.AddBuf(q1))
	n.MarkOutput("out", n.AddBuf(q2))
	c, err := New(n, []int{0, 1, 2}, []int{0, 1, 2}, []string{"q0", "q1", "q2"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestShiftRegisterAcyclic(t *testing.T) {
	c := shiftRegister(t)
	cut := c.Cut(sgraph.DefaultOptions())
	if len(cut) != 0 {
		t.Errorf("shift register cut = %v, want empty", cut)
	}
	p, probs, err := c.SteadyStateProbs(SteadyOptions{
		InputProbs: []float64{0, 0, 0, 0.3}, // in at position 3
	})
	if err != nil {
		t.Fatalf("SteadyStateProbs: %v", err)
	}
	if got := p.PseudoInputCount(); got != 0 {
		t.Errorf("pseudo inputs = %d, want 0", got)
	}
	// The block expands out = q2 <- q1 <- q0 <- in, so p(out)=p(in)=0.3.
	oi := p.Block.OutputByName("out")
	got := probs[p.Block.Outputs()[oi].Driver]
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("p(out) = %v, want 0.3", got)
	}
}

func TestPartitionRejectsBrokenCut(t *testing.T) {
	c := toggleCircuit(t)
	if _, err := c.Partition(nil); err == nil {
		t.Error("empty cut on cyclic circuit must fail")
	}
}

// figure7Circuit builds a two-FF circuit where cutting one FF yields a
// block with fewer pseudo-inputs than cutting the other — the point of
// Figure 7's "ideal partitioning".
func figure7Circuit(t testing.TB) *Circuit {
	t.Helper()
	n := logic.New("fig7")
	qa := n.AddInput("qa")
	qb := n.AddInput("qb")
	x := n.AddInput("x")
	y := n.AddInput("y")
	// qa' = qb·x, qb' = qa + y: a 2-cycle between the FFs.
	n.MarkOutput("da", n.AddAnd(qb, x))
	n.MarkOutput("db", n.AddOr(qa, y))
	n.MarkOutput("z", n.AddAnd(qa, qb))
	c, err := New(n, []int{0, 1}, []int{0, 1}, []string{"qa", "qb"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestFigure7PartitionChoices(t *testing.T) {
	c := figure7Circuit(t)
	pa, err := c.Partition([]int{0})
	if err != nil {
		t.Fatalf("Partition(qa): %v", err)
	}
	pb, err := c.Partition([]int{1})
	if err != nil {
		t.Fatalf("Partition(qb): %v", err)
	}
	if pa.PseudoInputCount() != 1 || pb.PseudoInputCount() != 1 {
		t.Errorf("pseudo counts = %d, %d, want 1, 1", pa.PseudoInputCount(), pb.PseudoInputCount())
	}
	// Both are valid; a full cut (both FFs) has more pseudo-inputs —
	// the non-ideal partitioning of Figure 7.
	pFull, err := c.Partition([]int{0, 1})
	if err != nil {
		t.Fatalf("Partition(both): %v", err)
	}
	if pFull.PseudoInputCount() != 2 {
		t.Errorf("full cut pseudo inputs = %d, want 2", pFull.PseudoInputCount())
	}
	if !(pa.PseudoInputCount() < pFull.PseudoInputCount()) {
		t.Error("MFVS-style cut should use fewer pseudo inputs than full cut")
	}
	// And the MFVS cut picks exactly one.
	if cut := c.Cut(sgraph.DefaultOptions()); len(cut) != 1 {
		t.Errorf("MFVS cut = %v, want one FF", cut)
	}
}

func TestFromModel(t *testing.T) {
	m, err := blif.ParseString(`
.model seq
.inputs x
.outputs y
.latch n1 q1 0
.latch n2 q2 0
.names q2 x n1
11 1
.names q1 n2
1 1
.names q1 q2 y
11 1
.end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := FromModel(m)
	if err != nil {
		t.Fatalf("FromModel: %v", err)
	}
	if len(c.FFs) != 2 {
		t.Fatalf("FFs = %d, want 2", len(c.FFs))
	}
	if len(c.RealInputs) != 1 || len(c.RealOutputs) != 1 {
		t.Errorf("real interface = %d in, %d out; want 1, 1", len(c.RealInputs), len(c.RealOutputs))
	}
	g := c.SGraph()
	// q1 -> q2 (n2 = q1) and q2 -> q1 (n1 = q2·x): a 2-cycle.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("expected 2-cycle in s-graph")
	}
	cut := c.Cut(sgraph.DefaultOptions())
	if len(cut) != 1 {
		t.Errorf("cut = %v, want one FF", cut)
	}
	probs := make([]float64, c.Comb.NumInputs())
	for _, pos := range c.RealInputs {
		probs[pos] = 0.5
	}
	if _, _, err := c.SteadyStateProbs(SteadyOptions{InputProbs: probs, Cut: cut}); err != nil {
		t.Fatalf("SteadyStateProbs: %v", err)
	}
}

func TestSteadyStateConvergence(t *testing.T) {
	// q' = q·x + ¬q·¬x (XNOR feedback): fixed point depends on p(x);
	// at p(x)=0.5 the iteration must converge to 0.5.
	n := logic.New("xnorfb")
	q := n.AddInput("q")
	x := n.AddInput("x")
	nq := n.AddNot(q)
	nx := n.AddNot(x)
	n.MarkOutput("d", n.AddOr(n.AddAnd(q, x), n.AddAnd(nq, nx)))
	c, err := New(n, []int{0}, []int{0}, []string{"q"})
	if err != nil {
		t.Fatal(err)
	}
	p, probs, err := c.SteadyStateProbs(SteadyOptions{InputProbs: []float64{0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	oi := p.Block.OutputByName("ns_q")
	got := probs[p.Block.Outputs()[oi].Driver]
	if math.Abs(got-0.5) > 1e-6 {
		t.Errorf("fixed point = %v, want 0.5", got)
	}
}

func TestSteadyStateProbsInRange(t *testing.T) {
	// Probabilities stay in [0,1] across random sequential circuits and
	// iteration counts.
	for seed := int64(0); seed < 8; seed++ {
		c, err := buildRandomSeq(seed)
		if err != nil {
			t.Fatal(err)
		}
		probs := make([]float64, c.Comb.NumInputs())
		for _, pos := range c.RealInputs {
			probs[pos] = 0.3
		}
		_, nodeProbs, err := c.SteadyStateProbs(SteadyOptions{InputProbs: probs, Iterations: 5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range nodeProbs {
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("seed %d: node %d probability %v out of range", seed, i, p)
			}
		}
	}
}

// buildRandomSeq assembles a small random sequential circuit without
// depending on the gen package (import cycle: gen imports seq).
func buildRandomSeq(seed int64) (*Circuit, error) {
	n := logic.New("rnd")
	q0 := n.AddInput("q0")
	q1 := n.AddInput("q1")
	x := n.AddInput("x")
	var a, b logic.NodeID
	switch seed % 4 {
	case 0:
		a, b = n.AddAnd(q1, x), n.AddOr(q0, x)
	case 1:
		a, b = n.AddOr(q1, n.AddNot(x)), n.AddAnd(q0, q1)
	case 2:
		a, b = n.AddNot(q1), n.AddNot(q0)
	default:
		a, b = n.AddAnd(q0, q1, x), n.AddOr(q0, q1, x)
	}
	n.MarkOutput("d0", a)
	n.MarkOutput("d1", b)
	n.MarkOutput("z", n.AddOr(q0, q1))
	return New(n, []int{0, 1}, []int{0, 1}, []string{"q0", "q1"})
}
