// Package seq models sequential circuits (combinational core + D
// flip-flops) and implements the partitioning step of the paper's power
// estimator (Section 4.2.1, Figure 7): feedback flip-flops found by the
// enhanced MFVS are cut and become pseudo primary inputs, the remaining
// flip-flops are substituted by their next-state functions, and the
// result is a combinational block whose node probabilities the BDD engine
// can evaluate — with as few BDD variables as the cut allows.
package seq

import (
	"fmt"
	"math"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/prob"
	"repro/internal/sgraph"
)

// FF describes one D flip-flop of a circuit.
type FF struct {
	// Name is the flip-flop's output signal name.
	Name string
	// NextState is the index (in Comb.Outputs()) of the pseudo-output
	// computing the flip-flop's next state.
	NextState int
	// Output is the input position (in Comb.Inputs()) of the pseudo-input
	// carrying the flip-flop's current state.
	Output int
	// Init is the initial value.
	Init int
}

// Circuit is a sequential circuit in the standard combinational view:
// flip-flop outputs are pseudo-inputs of Comb and next-state functions are
// pseudo-outputs.
type Circuit struct {
	Comb *logic.Network
	FFs  []FF
	// RealInputs lists input positions of Comb that are true primary
	// inputs; RealOutputs lists output indexes that are true primary
	// outputs.
	RealInputs  []int
	RealOutputs []int
}

// FromModel builds a Circuit from a parsed BLIF model.
func FromModel(m *blif.Model) (*Circuit, error) {
	c := &Circuit{Comb: m.Network}
	ffByOut := make(map[string]bool)
	ffByIn := make(map[string]bool)
	for _, l := range m.Latches {
		outPos := -1
		for pos, id := range m.Network.Inputs() {
			if m.Network.Node(id).Name == l.Output {
				outPos = pos
			}
		}
		nsIdx := m.Network.OutputByName(l.Input)
		if outPos < 0 || nsIdx < 0 {
			return nil, fmt.Errorf("seq: latch %s->%s not wired through network", l.Input, l.Output)
		}
		c.FFs = append(c.FFs, FF{Name: l.Output, NextState: nsIdx, Output: outPos, Init: l.Init})
		ffByOut[l.Output] = true
		ffByIn[l.Input] = true
	}
	for pos, id := range m.Network.Inputs() {
		if !ffByOut[m.Network.Node(id).Name] {
			c.RealInputs = append(c.RealInputs, pos)
		}
	}
	for idx, o := range m.Network.Outputs() {
		if !ffByIn[o.Name] {
			c.RealOutputs = append(c.RealOutputs, idx)
		}
	}
	return c, nil
}

// New assembles a Circuit directly from a combinational network and FF
// descriptions (used by the generators). ffOutputs and ffNextStates are
// parallel: input position / output index per flip-flop.
func New(comb *logic.Network, ffOutputs []int, ffNextStates []int, names []string) (*Circuit, error) {
	if len(ffOutputs) != len(ffNextStates) {
		return nil, fmt.Errorf("seq: %d outputs vs %d next-states", len(ffOutputs), len(ffNextStates))
	}
	c := &Circuit{Comb: comb}
	isFFIn := make(map[int]bool)
	isFFOut := make(map[int]bool)
	for i := range ffOutputs {
		name := comb.Node(comb.Inputs()[ffOutputs[i]]).Name
		if names != nil && i < len(names) {
			name = names[i]
		}
		c.FFs = append(c.FFs, FF{Name: name, NextState: ffNextStates[i], Output: ffOutputs[i]})
		isFFIn[ffOutputs[i]] = true
		isFFOut[ffNextStates[i]] = true
	}
	for pos := range comb.Inputs() {
		if !isFFIn[pos] {
			c.RealInputs = append(c.RealInputs, pos)
		}
	}
	for idx := range comb.Outputs() {
		if !isFFOut[idx] {
			c.RealOutputs = append(c.RealOutputs, idx)
		}
	}
	return c, nil
}

// SGraph builds the structural dependency graph among flip-flops: an edge
// u -> v when flip-flop u's output lies in the transitive fanin of
// flip-flop v's next-state function.
func (c *Circuit) SGraph() *sgraph.Graph {
	names := make([]string, len(c.FFs))
	for i, ff := range c.FFs {
		names[i] = ff.Name
	}
	g := sgraph.New(len(c.FFs), names)
	inputNodeOfFF := make(map[logic.NodeID]int)
	for i, ff := range c.FFs {
		inputNodeOfFF[c.Comb.Inputs()[ff.Output]] = i
	}
	for vi, ff := range c.FFs {
		cone := c.Comb.FaninCone(c.Comb.Outputs()[ff.NextState].Driver)
		for id, in := range cone {
			if !in {
				continue
			}
			if ui, ok := inputNodeOfFF[logic.NodeID(id)]; ok {
				g.AddEdge(ui, vi)
			}
		}
	}
	return g
}

// Cut computes the set of flip-flops to cut using the enhanced MFVS.
func (c *Circuit) Cut(opts sgraph.Options) []int {
	sol := sgraph.MFVS(c.SGraph(), opts)
	return sol.Vertices
}

// Partition expands the circuit into a single combinational block:
// flip-flops in cut keep their outputs as pseudo primary inputs, all
// other flip-flop outputs are substituted by a copy of their next-state
// cone (one time-frame back). The cut must break every s-graph cycle or
// an error is returned.
//
// The returned PseudoInputs lists, for every input position of Block,
// the source: either a real primary input (FF < 0) or a cut flip-flop
// index.
type Partition struct {
	Block *logic.Network
	// Inputs describes Block's inputs: OrigInput is the position in the
	// original Comb inputs, FF is the cut flip-flop index (or -1 for a
	// real primary input).
	Inputs []PartitionInput
}

// PartitionInput maps one Block input to its source.
type PartitionInput struct {
	OrigInput int
	FF        int
}

// Partition builds the expanded combinational block for a given cut.
func (c *Circuit) Partition(cut []int) (*Partition, error) {
	cutSet := make(map[int]bool, len(cut))
	for _, f := range cut {
		cutSet[f] = true
	}
	ffOfInputNode := make(map[logic.NodeID]int)
	for i, ff := range c.FFs {
		ffOfInputNode[c.Comb.Inputs()[ff.Output]] = i
	}
	out := logic.New(c.Comb.Name + "_partitioned")
	p := &Partition{Block: out}

	// state tracks the expansion status of each FF's substituted cone to
	// detect cycles not broken by the cut.
	const (
		unvisited = 0
		expanding = 1
		done      = 2
	)
	ffState := make([]int, len(c.FFs))
	ffRoot := make([]logic.NodeID, len(c.FFs))

	blockInput := make(map[string]logic.NodeID)
	addInput := func(name string, origPos, ffIdx int) logic.NodeID {
		if id, ok := blockInput[name]; ok {
			return id
		}
		id := out.AddInput(name)
		blockInput[name] = id
		p.Inputs = append(p.Inputs, PartitionInput{OrigInput: origPos, FF: ffIdx})
		return id
	}

	// copyCone clones the cone of a node, substituting FF outputs.
	// Memoization must be per-expansion-context-free: node copies are
	// context independent because substitution is name-free and global.
	memo := make(map[logic.NodeID]logic.NodeID)
	var expandFF func(ffIdx int) (logic.NodeID, error)
	var copyNode func(id logic.NodeID) (logic.NodeID, error)
	copyNode = func(id logic.NodeID) (logic.NodeID, error) {
		if v, ok := memo[id]; ok {
			return v, nil
		}
		node := c.Comb.Node(id)
		var res logic.NodeID
		switch node.Kind {
		case logic.KindInput:
			if ffIdx, isFF := ffOfInputNode[id]; isFF {
				if cutSet[ffIdx] {
					res = addInput(node.Name, c.ffInputPos(ffIdx), ffIdx)
				} else {
					r, err := expandFF(ffIdx)
					if err != nil {
						return logic.InvalidNode, err
					}
					res = r
				}
			} else {
				pos := c.inputPos(id)
				res = addInput(node.Name, pos, -1)
			}
		case logic.KindConst0:
			res = out.AddConst(false)
		case logic.KindConst1:
			res = out.AddConst(true)
		default:
			fs := make([]logic.NodeID, len(node.Fanins))
			for i, f := range node.Fanins {
				r, err := copyNode(f)
				if err != nil {
					return logic.InvalidNode, err
				}
				fs[i] = r
			}
			res = out.AddGate(node.Kind, fs...)
		}
		memo[id] = res
		return res, nil
	}
	expandFF = func(ffIdx int) (logic.NodeID, error) {
		switch ffState[ffIdx] {
		case done:
			return ffRoot[ffIdx], nil
		case expanding:
			return logic.InvalidNode, fmt.Errorf("seq: cut does not break cycle through flip-flop %s", c.FFs[ffIdx].Name)
		}
		ffState[ffIdx] = expanding
		root, err := copyNode(c.Comb.Outputs()[c.FFs[ffIdx].NextState].Driver)
		if err != nil {
			return logic.InvalidNode, err
		}
		ffState[ffIdx] = done
		ffRoot[ffIdx] = root
		return root, nil
	}

	for _, oi := range c.RealOutputs {
		o := c.Comb.Outputs()[oi]
		root, err := copyNode(o.Driver)
		if err != nil {
			return nil, err
		}
		out.MarkOutput(o.Name, root)
	}
	// Cut flip-flops' next-state functions are outputs of the block too:
	// the estimator needs their probabilities for fixed-point iteration.
	for _, ffIdx := range cut {
		ff := c.FFs[ffIdx]
		root, err := copyNode(c.Comb.Outputs()[ff.NextState].Driver)
		if err != nil {
			return nil, err
		}
		name := "ns_" + ff.Name
		if out.OutputByName(name) < 0 {
			out.MarkOutput(name, root)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("seq: partition produced invalid block: %w", err)
	}
	return p, nil
}

func (c *Circuit) inputPos(id logic.NodeID) int {
	for pos, in := range c.Comb.Inputs() {
		if in == id {
			return pos
		}
	}
	return -1
}

func (c *Circuit) ffInputPos(ffIdx int) int { return c.FFs[ffIdx].Output }

// PseudoInputCount returns how many of the partition's block inputs are
// cut flip-flops — the quantity the paper's Figure 7 argues should be
// minimized.
func (p *Partition) PseudoInputCount() int {
	n := 0
	for _, in := range p.Inputs {
		if in.FF >= 0 {
			n++
		}
	}
	return n
}

// SteadyOptions configures SteadyStateProbs.
type SteadyOptions struct {
	// InputProbs gives probabilities of the real primary inputs, indexed
	// by Comb input position (entries for FF positions are ignored).
	InputProbs []float64
	// Cut is the flip-flop cut (nil = compute via enhanced MFVS).
	Cut []int
	// Iterations bounds the fixed-point iteration on cut flip-flop
	// probabilities (default 20).
	Iterations int
	// Tolerance stops iteration early when no cut probability moves more
	// than this (default 1e-9).
	Tolerance float64
	// MaxExactInputs bounds the exact BDD engine; larger blocks use
	// approximate propagation (default 24).
	MaxExactInputs int
}

// SteadyStateProbs estimates steady-state signal probabilities of the
// expanded block: cut flip-flops start at probability 0.5 and are
// iterated to a fixed point of their next-state probabilities. It
// returns the final probabilities of every Block node together with the
// partition used.
func (c *Circuit) SteadyStateProbs(opts SteadyOptions) (*Partition, []float64, error) {
	cut := opts.Cut
	if cut == nil {
		cut = c.Cut(sgraph.DefaultOptions())
	}
	p, err := c.Partition(cut)
	if err != nil {
		return nil, nil, err
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	maxExact := opts.MaxExactInputs
	if maxExact <= 0 {
		maxExact = 24
	}
	block := p.Block
	inProbs := make([]float64, block.NumInputs())
	ffProb := make(map[int]float64)
	for pos, in := range p.Inputs {
		if in.FF >= 0 {
			inProbs[pos] = 0.5
			ffProb[in.FF] = 0.5
		} else {
			inProbs[pos] = opts.InputProbs[in.OrigInput]
		}
	}
	var nodeProbs []float64
	for it := 0; it < iters; it++ {
		if block.NumInputs() <= maxExact {
			nodeProbs, err = prob.Exact(block, inProbs, nil)
			if err != nil {
				return nil, nil, err
			}
		} else {
			nodeProbs = prob.Approximate(block, inProbs)
		}
		delta := 0.0
		for _, ffIdx := range cut {
			name := "ns_" + c.FFs[ffIdx].Name
			oi := block.OutputByName(name)
			if oi < 0 {
				continue
			}
			newP := nodeProbs[block.Outputs()[oi].Driver]
			delta = math.Max(delta, math.Abs(newP-ffProb[ffIdx]))
			ffProb[ffIdx] = newP
		}
		for pos, in := range p.Inputs {
			if in.FF >= 0 {
				inProbs[pos] = ffProb[in.FF]
			}
		}
		if delta < tol {
			break
		}
	}
	return p, nodeProbs, nil
}
