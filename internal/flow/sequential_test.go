package flow

import (
	"testing"

	"repro/internal/gen"
)

func TestRunSequential(t *testing.T) {
	c, err := gen.Sequential(gen.SeqParams{
		Name: "seqflow", Inputs: 8, FFs: 10, Gates: 60, Seed: 17, TwinProb: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSequential(c, Config{SimVectors: 2048})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if row.FFs != 10 {
		t.Errorf("FFs = %d, want 10", row.FFs)
	}
	if row.Cut <= 0 || row.Cut > 10 {
		t.Errorf("cut = %d", row.Cut)
	}
	if row.PseudoInputs != row.Cut {
		t.Errorf("pseudo inputs %d != cut %d", row.PseudoInputs, row.Cut)
	}
	if row.MA.Size <= 0 || row.MP.Size <= 0 {
		t.Errorf("sizes: MA %d MP %d", row.MA.Size, row.MP.Size)
	}
	if row.MP.Size < row.MA.Size {
		t.Errorf("MP size %d beat MA size %d", row.MP.Size, row.MA.Size)
	}
	if row.MA.SimPower <= 0 || row.MP.SimPower <= 0 {
		t.Errorf("powers: MA %v MP %v", row.MA.SimPower, row.MP.SimPower)
	}
	if row.MP.EstPower > row.MA.EstPower+1e-9 {
		t.Errorf("MP estimate %v worse than MA estimate %v", row.MP.EstPower, row.MA.EstPower)
	}
}

func TestRunSequentialDeterministic(t *testing.T) {
	mk := func() *SequentialRow {
		c, err := gen.Sequential(gen.SeqParams{
			Name: "det", Inputs: 6, FFs: 8, Gates: 40, Seed: 23, TwinProb: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		row, err := RunSequential(c, Config{SimVectors: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	a, b := mk(), mk()
	if a.MA.SimPower != b.MA.SimPower || a.MP.SimPower != b.MP.SimPower || a.Cut != b.Cut {
		t.Error("sequential flow is not deterministic")
	}
}

func TestRunSequentialAcyclic(t *testing.T) {
	// A feed-forward FF pipeline: empty cut, still synthesizable.
	c, err := gen.Sequential(gen.SeqParams{
		Name: "ff", Inputs: 6, FFs: 5, Gates: 30, Seed: 29, TwinProb: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSequential(c, Config{SimVectors: 512})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if row.PseudoInputs != row.Cut {
		t.Errorf("pseudo inputs %d != cut %d", row.PseudoInputs, row.Cut)
	}
}
