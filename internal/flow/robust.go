package flow

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/seq"
	"repro/internal/sim"
)

// Validate rejects configurations that no flow can execute, naming the
// offending field in the error so API boundaries (internal/serve) can
// turn it into a structured 400 instead of a mid-job failure. It checks
// ranges only — it does not apply defaults, so the zero value validates.
func (c Config) Validate() error {
	switch {
	case c.InputProb < 0 || c.InputProb > 1:
		return fmt.Errorf("flow: config field InputProb: %v out of range [0,1]", c.InputProb)
	case c.SimVectors < 0:
		return fmt.Errorf("flow: config field SimVectors: %d is negative", c.SimVectors)
	case c.MaxPairs < 0:
		return fmt.Errorf("flow: config field MaxPairs: %d is negative", c.MaxPairs)
	case c.ExhaustiveLimit < 0:
		return fmt.Errorf("flow: config field ExhaustiveLimit: %d is negative", c.ExhaustiveLimit)
	case c.Slack < 0:
		return fmt.Errorf("flow: config field Slack: %v is negative", c.Slack)
	case c.MaxCollapseSupport < 0:
		return fmt.Errorf("flow: config field MaxCollapseSupport: %d is negative", c.MaxCollapseSupport)
	case c.Workers < 0:
		return fmt.Errorf("flow: config field Workers: %d is negative", c.Workers)
	case c.SimShards < 0:
		return fmt.Errorf("flow: config field SimShards: %d is negative", c.SimShards)
	case c.SimKernel < 0 || c.SimKernel > sim.KernelBlocked:
		return fmt.Errorf("flow: config field SimKernel: unknown kernel %d", int(c.SimKernel))
	case c.SimBlockWords < 0 || c.SimBlockWords > logic.MaxBlockWords:
		return fmt.Errorf("flow: config field SimBlockWords: %d out of range [0,%d]", c.SimBlockWords, logic.MaxBlockWords)
	case c.PhaseScoring < 0 || c.PhaseScoring > ScoreNaive:
		return fmt.Errorf("flow: config field PhaseScoring: unknown scoring mode %d", int(c.PhaseScoring))
	case c.SearchStrategy < 0 || c.SearchStrategy > phase.StrategyGreedy:
		return fmt.Errorf("flow: config field SearchStrategy: unknown strategy %d", int(c.SearchStrategy))
	case c.SearchRestarts < 0:
		return fmt.Errorf("flow: config field SearchRestarts: %d is negative", c.SearchRestarts)
	case c.AnnealSteps < 0:
		return fmt.Errorf("flow: config field AnnealSteps: %d is negative", c.AnnealSteps)
	case c.BDDNodeBudget < 0:
		return fmt.Errorf("flow: config field BDDNodeBudget: %d is negative", c.BDDNodeBudget)
	case c.SimVectorBudget < 0:
		return fmt.Errorf("flow: config field SimVectorBudget: %d is negative", c.SimVectorBudget)
	case c.BDDReorder < 0 || c.BDDReorder > ReorderOff:
		return fmt.Errorf("flow: config field BDDReorder: unknown mode %d", int(c.BDDReorder))
	case c.EstOpts.Method < 0 || c.EstOpts.Method > power.MonteCarlo:
		return fmt.Errorf("flow: config field EstOpts.Method: unknown method %d", int(c.EstOpts.Method))
	case c.EstOpts.Depth < 0:
		return fmt.Errorf("flow: config field EstOpts.Depth: %d is negative", c.EstOpts.Depth)
	case c.EstOpts.MaxFrontier < 0:
		return fmt.Errorf("flow: config field EstOpts.MaxFrontier: %d is negative", c.EstOpts.MaxFrontier)
	case c.EstOpts.MCVectors < 0:
		return fmt.Errorf("flow: config field EstOpts.MCVectors: %d is negative", c.EstOpts.MCVectors)
	}
	return nil
}

// Engine names recorded per corpus row when the degradation chain
// replaced the configured probability engine.
const (
	// EngineDepthWeighted marks a row whose probabilities came from the
	// limited-depth engine after the configured engine blew the BDD node
	// budget.
	EngineDepthWeighted = "depth-weighted"
	// EngineMonteCarlo marks a row that fell all the way to Monte-Carlo
	// probability estimation, which builds no BDDs and so cannot trip
	// the node budget.
	EngineMonteCarlo = "monte-carlo"
	// EngineExactSifted marks a row whose configured engine blew the BDD
	// node budget but whose retry with in-place dynamic reordering
	// (Config.BDDReorder = ReorderAuto, the default) completed exactly —
	// full-accuracy probabilities, merely under a sifted variable order.
	EngineExactSifted = "exact-sifted"
)

// degradeStage is one rung of the engine-degradation chain: an engine
// name for the row record plus the configuration rewrite that selects
// the cheaper engine.
type degradeStage struct {
	engine string
	apply  func(*Config)
}

// degradeStages returns the chain for a configuration: just the
// configured engine when no BDD node budget is set (nothing can trip),
// otherwise configured → [exact-sifted] → limited-depth → Monte-Carlo.
// The reorder-and-retry stage appears only in the default ReorderAuto
// mode: it reruns the configured engine with in-place dynamic
// reordering armed, which rescues exact rows whose unsifted build blows
// the budget. (If the configured engine builds no reorderable BDDs the
// stage trips identically and the chain falls through — wasted work only
// on the rare row that was already degrading.) Under ReorderAlways the
// configured stage itself reorders, and under ReorderOff the chain is
// the plain PR-8 one. The chain is a pure function of the
// configuration, so which stage a circuit lands on is deterministic —
// independent of Workers, shard geometry, or scheduling.
func degradeStages(cfg Config) []degradeStage {
	stages := []degradeStage{{engine: ""}}
	if cfg.BDDNodeBudget > 0 {
		if cfg.BDDReorder == ReorderAuto {
			stages = append(stages,
				degradeStage{EngineExactSifted, func(c *Config) { c.BDDReorder = ReorderAlways }},
			)
		}
		stages = append(stages,
			degradeStage{EngineDepthWeighted, func(c *Config) { c.EstOpts.Method = power.LimitedDepth }},
			degradeStage{EngineMonteCarlo, func(c *Config) { c.EstOpts.Method = power.MonteCarlo }},
		)
	}
	return stages
}

// runDegraded drives one circuit down the degradation chain: each stage
// runs under a fresh budget token attached to ctx, and only a BDD
// node-budget trip advances to the next (cheaper) stage — cancellation
// and real failures surface immediately. It returns the stage's result,
// the engine name of the stage that produced it ("" = the configured
// engine, untouched), and the total number of budget trips accumulated
// across every attempted stage.
func runDegraded[T any](ctx context.Context, cfg Config, run func(Config, *budget.T) (T, error)) (result T, engine string, trips int, err error) {
	var zero T
	stages := degradeStages(cfg)
	for _, st := range stages {
		scfg := cfg
		if st.apply != nil {
			st.apply(&scfg)
		}
		tok := budget.New(scfg.BDDNodeBudget, scfg.SimVectorBudget)
		stop := tok.AttachContext(ctx)
		result, err = run(scfg, tok)
		stop()
		trips += tok.Trips()
		if err == nil {
			return result, st.engine, trips, nil
		}
		if !errors.Is(err, budget.ErrBDDNodes) {
			return zero, st.engine, trips, err
		}
	}
	return zero, stages[len(stages)-1].engine, trips, err
}

// runCircuitDegraded executes the untimed or timed combinational flow on
// one benchmark under ctx with the configured budgets and the
// degradation chain.
func runCircuitDegraded(ctx context.Context, c gen.NamedCircuit, cfg Config, timed bool) (*Row, string, int, error) {
	cfg.defaults()
	return runDegraded(ctx, cfg, func(scfg Config, tok *budget.T) (*Row, error) {
		if timed {
			return runCircuitTimed(c, scfg, tok)
		}
		return runCircuit(c, scfg, tok)
	})
}

// runSequentialDegraded is runCircuitDegraded for the sequential flow.
func runSequentialDegraded(ctx context.Context, c *seq.Circuit, cfg Config) (*SequentialRow, string, int, error) {
	cfg.defaults()
	return runDegraded(ctx, cfg, func(scfg Config, tok *budget.T) (*SequentialRow, error) {
		return runSequential(c, scfg, tok)
	})
}
