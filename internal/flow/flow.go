// Package flow wires the substrates into the paper's experimental flows
// (Section 5):
//
//	technology-independent optimization
//	  → phase assignment (minimum-area baseline "MA" [15], or the
//	    paper's minimum-power heuristic "MP")
//	  → domino technology mapping
//	  → (Table 2 only) transistor resizing to a timing target
//	  → power measurement by Monte-Carlo simulation (PowerMill stand-in)
//
// RunTable1 and RunTable2 regenerate the paper's two result tables on the
// synthetic benchmark twins of internal/gen.
package flow

import (
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sop"
	"repro/internal/timing"
)

// PhaseScoring selects how power-driven phase searches (MP and the
// exhaustive power objective) score candidate assignments.
type PhaseScoring int

// Phase-scoring modes.
const (
	// ScoreConeTable — the default — precomputes a power.ConeTable (both
	// phases of every output cone synthesized and priced once) and scores
	// each candidate assignment by cached-term summation; Apply runs only
	// on assignments the search keeps. Results match ScoreNaive's up to
	// float summation order. Every probability engine is supported.
	ScoreConeTable PhaseScoring = iota
	// ScoreNaive synthesizes and estimates every candidate from scratch —
	// the pre-cone-table behavior, kept as the reference oracle.
	ScoreNaive
)

// BDDReorderMode selects how budgeted exact-BDD builds use in-place
// dynamic variable reordering (bdd.Manager sifting). Reordering is
// deterministic — the trigger and every sift decision are pure
// functions of table state — but semantic: the probability summation
// order follows the DAG shape, so the mode is part of a configuration's
// canonical (content-addressed) form.
type BDDReorderMode int

// BDD reordering modes.
const (
	// ReorderAuto — the default — runs the configured engine without
	// reordering first; when a build trips the BDD node budget, a
	// reorder-and-retry stage (the exact engine with auto-reordering)
	// runs before the chain degrades to cheaper engines. Rows rescued by
	// that stage record Engine = "exact-sifted".
	ReorderAuto BDDReorderMode = iota
	// ReorderAlways arms auto-reordering in the configured stage itself;
	// the chain has no separate sifted stage (a trip falls straight to
	// depth-weighted).
	ReorderAlways
	// ReorderOff disables reordering everywhere, reproducing the plain
	// exact → depth-weighted → Monte-Carlo chain exactly.
	ReorderOff
)

// Config parameterizes the flows. The zero value is completed by
// defaults().
//
// Every field carries two pieces of cache-key bookkeeping, enforced at
// build time by the dominolint cachekey analyzer (internal/lint):
//
//   - a `Cache-key: semantic.` or `Cache-key: wall-clock` doc marker —
//     semantic fields are part of the content-addressed cache key,
//     wall-clock fields by contract never change any result and are
//     erased by Canonical;
//   - a json tag equal to the field name, pinning the wire name of the
//     canonical JSON that serve.CacheKey hashes.
type Config struct {
	// Lib is the domino cell library (default domino.DefaultLibrary).
	// Cache-key: semantic.
	Lib *domino.Library `json:"Lib"`
	// InputProb is the signal probability applied to every primary input
	// (the paper's tables use 0.5).
	// Cache-key: semantic.
	InputProb float64 `json:"InputProb"`
	// SimVectors is the Monte-Carlo cycle count for final measurement
	// (default 4096).
	// Cache-key: semantic.
	SimVectors int `json:"SimVectors"`
	// SimSeed drives the measurement vectors.
	// Cache-key: semantic.
	SimSeed int64 `json:"SimSeed"`
	// EstOpts selects the probability engine for the optimization loop.
	// Cache-key: semantic.
	EstOpts power.Options `json:"EstOpts"`
	// MaxPairs caps the MinPower candidate pair set (0 = all pairs).
	// Cache-key: semantic.
	MaxPairs int `json:"MaxPairs"`
	// ExhaustiveLimit is the output count up to which MinArea searches
	// exhaustively (default 12).
	// Cache-key: semantic.
	ExhaustiveLimit int `json:"ExhaustiveLimit"`
	// Timing is the delay model for the timed flow (default
	// timing.DefaultParams).
	// Cache-key: semantic.
	Timing *timing.Params `json:"Timing"`
	// Slack scales the Table 2 clock target over the fastest achievable
	// minimum-area implementation (default 1.10).
	// Cache-key: semantic.
	Slack float64 `json:"Slack"`
	// Resynthesize enables collapse-and-refactor before phase
	// assignment: outputs with support up to MaxCollapseSupport are
	// rebuilt from factored irredundant covers (internal/sop).
	// Cache-key: semantic.
	Resynthesize bool `json:"Resynthesize"`
	// MaxCollapseSupport bounds the resynthesis collapse (default 14).
	// Cache-key: semantic.
	MaxCollapseSupport int `json:"MaxCollapseSupport"`
	// Workers bounds the worker pool of the exhaustive phase search and
	// the Monte-Carlo measurement (0 = GOMAXPROCS, 1 = sequential). It
	// never changes results.
	// Cache-key: wall-clock (erased by Canonical).
	Workers int `json:"Workers"`
	// SimShards splits the measurement vectors into independently seeded
	// concurrent streams (see sim.Config.Shards); 0 keeps the
	// single-stream measurement.
	// Cache-key: semantic.
	SimShards int `json:"SimShards"`
	// SimKernel selects the measurement engine (see sim.Kernel); the
	// zero value is the bit-parallel one. Like Workers, it never changes
	// results — only wall-clock.
	// Cache-key: wall-clock (erased by Canonical).
	SimKernel sim.Kernel `json:"SimKernel"`
	// SimBlockWords sets the blocked kernel's block size in 64-lane
	// words (see sim.Config.BlockWords); 0 means the kernel default.
	// Like SimKernel, it never changes results — only wall-clock.
	// Cache-key: wall-clock (erased by Canonical).
	SimBlockWords int `json:"SimBlockWords"`
	// PhaseScoring selects the candidate-scoring engine of the
	// power-driven phase searches (zero value: the cone table).
	// Cache-key: semantic.
	PhaseScoring PhaseScoring `json:"PhaseScoring"`
	// SearchStrategy, when not StrategyAuto, replaces the paper's
	// pairwise MinPower heuristic with the selected phase-search
	// strategy (gray-code exhaustive, exact branch-and-bound, annealing,
	// or multi-restart greedy) over the configured scorer. It applies to
	// the power-driven search of SynthesizeMP and the sequential flow;
	// the MA baseline keeps its own dispatch.
	// Cache-key: semantic.
	SearchStrategy phase.SearchStrategy `json:"SearchStrategy"`
	// SearchRestarts, SearchSeed, and AnnealSteps parameterize the
	// strategy path (see phase.SearchOptions).
	// Cache-key: semantic.
	SearchRestarts int `json:"SearchRestarts"`
	// SearchSeed seeds the randomized strategies (annealing, restarts).
	// Cache-key: semantic.
	SearchSeed int64 `json:"SearchSeed"`
	// AnnealSteps bounds the annealing schedule (0 = calibrated).
	// Cache-key: semantic.
	AnnealSteps int `json:"AnnealSteps"`
	// BDDNodeBudget caps the live node count of every BDD build run on
	// behalf of this configuration (0 = unlimited). When a build exceeds
	// it the circuit is retried down the degradation chain — exact BDD →
	// depth-weighted → Monte-Carlo probability estimation — and the
	// fallback stage is recorded per row (CorpusRow.Engine). The cap is
	// checked per build, so whether it trips is a pure function of the
	// configuration and circuit — never of Workers or scheduling.
	// Cache-key: semantic.
	BDDNodeBudget int `json:"BDDNodeBudget"`
	// SimVectorBudget caps the Monte-Carlo measurement vectors per sim
	// run (0 = unlimited). The clamp applies before sharding, so it is
	// deterministic for every Workers/SimShards setting.
	// Cache-key: semantic.
	SimVectorBudget int `json:"SimVectorBudget"`
	// BDDReorder selects the dynamic-reordering mode for budgeted exact
	// builds (see BDDReorderMode; the zero value, ReorderAuto, inserts a
	// reorder-and-retry stage into the degradation chain).
	// Cache-key: semantic.
	BDDReorder BDDReorderMode `json:"BDDReorder"`
}

// estOptions returns the probability-engine options bound to a budget
// token and the configured reorder mode. Every flow site building
// power.Options goes through it, so EstOpts.Reorder is always derived
// from Config.BDDReorder — the knob the content-addressed cache key
// covers — never from caller-set Options state.
func (c Config) estOptions(tok *budget.T) power.Options {
	o := c.EstOpts
	o.Budget = tok
	o.Reorder = c.BDDReorder == ReorderAlways
	return o
}

func (c *Config) defaults() {
	if c.Lib == nil {
		lib := domino.DefaultLibrary()
		c.Lib = &lib
	}
	if c.InputProb == 0 {
		c.InputProb = 0.5
	}
	if c.SimVectors == 0 {
		c.SimVectors = 4096
	}
	if c.ExhaustiveLimit == 0 {
		c.ExhaustiveLimit = 12
	}
	if c.Timing == nil {
		p := timing.DefaultParams()
		c.Timing = &p
	}
	if c.Slack == 0 {
		c.Slack = 1.25
	}
	if c.MaxCollapseSupport == 0 {
		c.MaxCollapseSupport = 14
	}
}

// Canonical returns the configuration's content-addressing form: every
// defaulted field is filled with its default (so the zero value and an
// explicitly spelled-out default hash identically) and the pure
// wall-clock knobs — Workers, SimKernel, and SimBlockWords, which by
// contract never
// change any result — are zeroed. Two configurations with equal
// Canonical() forms produce bit-identical flow rows for the same input;
// the converse is deliberately conservative (two configs that happen to
// behave identically may still canonicalize differently — a cache miss,
// never a wrong answer). internal/serve hashes the canonical form's
// JSON together with the submitted file bytes to content-address cached
// corpus rows.
func (c Config) Canonical() Config {
	c.defaults()
	// Deeper zero-value defaults applied by the engines themselves
	// (power.Options, phase.SearchOptions) are mirrored here so
	// zero-vs-default spellings of those knobs also key identically.
	if c.EstOpts.Depth == 0 {
		c.EstOpts.Depth = 4
	}
	if c.EstOpts.MaxFrontier == 0 {
		c.EstOpts.MaxFrontier = 16
	}
	if c.EstOpts.MCVectors == 0 {
		c.EstOpts.MCVectors = 2048
	}
	if c.SearchRestarts == 0 {
		c.SearchRestarts = 3
	}
	// Pure wall-clock knobs: no result anywhere depends on them.
	c.Workers = 0
	c.SimKernel = 0
	c.SimBlockWords = 0
	return c
}

// Synthesis is one synthesized implementation (MA or MP) with its
// measurements.
type Synthesis struct {
	Assignment phase.Assignment
	Block      *domino.Block
	// Size is the standard-cell count (domino cells + boundary
	// inverters), the paper's "Size" column.
	Size int
	// EstPower is the model estimate used during optimization.
	EstPower float64
	// SimPower is the Monte-Carlo measured power (the paper's "Pwr"
	// column, in switched-capacitance units).
	SimPower float64
	// Critical is the post-flow critical delay; ResizeSteps and
	// MetTiming are populated by the timed flow.
	Critical    float64
	ResizeSteps int
	MetTiming   bool
}

// Row is one benchmark's result pair, mirroring a row of Table 1/2.
type Row struct {
	Name, Desc string
	PIs, POs   int
	MA, MP     Synthesis
	// AreaPenaltyPct and PowerSavingPct are the paper's "% Area Pen."
	// and "% Pwr Sav." columns computed from the measured values.
	AreaPenaltyPct float64
	PowerSavingPct float64
	// Paper*: the original paper's numbers for side-by-side reporting.
	PaperAreaPenaltyPct float64
	PaperPowerSavingPct float64
}

// Prepare runs technology-independent cleanup and XOR decomposition,
// returning a phase-ready network.
func Prepare(net *logic.Network) *logic.Network {
	n := net.Optimize()
	if n.CountKind(logic.KindXor) > 0 {
		n = n.DecomposeXor().Optimize()
	}
	return n
}

// prepare applies the configured technology-independent pipeline,
// optionally including collapse-and-refactor resynthesis.
func prepare(net *logic.Network, cfg Config) (*logic.Network, error) {
	n := Prepare(net)
	if cfg.Resynthesize {
		f, err := sop.FactorNetwork(n, cfg.MaxCollapseSupport)
		if err != nil {
			return nil, fmt.Errorf("flow: resynthesis: %w", err)
		}
		if f.CountKind(logic.KindXor) > 0 {
			f = f.DecomposeXor().Optimize()
		}
		n = f
	}
	return n, nil
}

// uniformProbs builds the input probability vector.
func uniformProbs(n *logic.Network, p float64) []float64 {
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = p
	}
	return probs
}

// mapCellCountEvaluator scores a phase result by mapped cell count — the
// MA objective.
func mapCellCountEvaluator(lib domino.Library) phase.Evaluator {
	return func(r *phase.Result) (float64, error) {
		b, err := domino.Map(r, lib)
		if err != nil {
			return 0, err
		}
		return float64(b.CellCount()), nil
	}
}

// synthesizeMAAssignment runs the MA phase search on a prepared network
// — the single assignment-selection path shared by the combinational and
// sequential flows. tok (nil = never cancelled) is polled by the search
// at a bounded interval.
func synthesizeMAAssignment(net *logic.Network, cfg Config, tok *budget.T) (phase.Assignment, *phase.Result, error) {
	asg, res, _, err := phase.MinArea(net, phase.SearchOptions{
		ExhaustiveLimit: cfg.ExhaustiveLimit,
		Eval:            mapCellCountEvaluator(*cfg.Lib),
		Workers:         cfg.Workers,
		Budget:          tok,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("flow: MinArea: %w", err)
	}
	return asg, res, nil
}

// SynthesizeMA runs the minimum-area baseline on a prepared network.
func SynthesizeMA(net *logic.Network, cfg Config) (*Synthesis, error) {
	cfg.defaults()
	return synthesizeMA(net, cfg, nil)
}

func synthesizeMA(net *logic.Network, cfg Config, tok *budget.T) (*Synthesis, error) {
	asg, res, err := synthesizeMAAssignment(net, cfg, tok)
	if err != nil {
		return nil, err
	}
	return finishSynthesis(asg, res, net, cfg, tok)
}

// phaseScorer builds the candidate scorer of the configured scoring
// mode: the cone table by default, nil (meaning: use an Evaluate
// fallback) under ScoreNaive.
func phaseScorer(net *logic.Network, probs []float64, cfg Config, tok *budget.T) (phase.AssignmentScorer, error) {
	if cfg.PhaseScoring == ScoreNaive {
		return nil, nil
	}
	table, err := power.NewConeTable(net, *cfg.Lib, probs, cfg.estOptions(tok))
	if err != nil {
		return nil, fmt.Errorf("flow: cone table: %w", err)
	}
	return table, nil
}

// synthesizeMPAssignment runs the configured power-driven phase search
// on a prepared network with explicit per-input probabilities — the
// single scorer/strategy wiring shared by the combinational and
// sequential flows: cone-table scoring by default (naive estimator
// under ScoreNaive), the pairwise heuristic by default, or the
// cfg.SearchStrategy strategy.
func synthesizeMPAssignment(net *logic.Network, probs []float64, cfg Config, tok *budget.T) (phase.Assignment, *phase.Result, float64, error) {
	popts := phase.PowerOptions{
		InputProbs:     probs,
		MaxPairs:       cfg.MaxPairs,
		Strategy:       cfg.SearchStrategy,
		SearchWorkers:  cfg.Workers,
		SearchSeed:     cfg.SearchSeed,
		SearchRestarts: cfg.SearchRestarts,
		AnnealSteps:    cfg.AnnealSteps,
		Budget:         tok,
	}
	scorer, err := phaseScorer(net, probs, cfg, tok)
	if err != nil {
		return nil, nil, 0, err
	}
	if scorer != nil {
		popts.Scorer = scorer
	} else {
		// Sequential heuristic: the estimator's reusable BDD manager
		// saves a forest allocation per candidate, bit-identically.
		popts.Evaluate = power.NewEstimator(*cfg.Lib, probs, cfg.estOptions(tok)).Evaluate
	}
	asg, res, est, _, err := phase.MinPower(net, popts)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("flow: MinPower: %w", err)
	}
	return asg, res, est, nil
}

// SynthesizeMP runs the paper's minimum-power heuristic (or the
// configured search strategy) on a prepared network.
func SynthesizeMP(net *logic.Network, cfg Config) (*Synthesis, error) {
	cfg.defaults()
	return synthesizeMP(net, cfg, nil)
}

func synthesizeMP(net *logic.Network, cfg Config, tok *budget.T) (*Synthesis, error) {
	probs := uniformProbs(net, cfg.InputProb)
	asg, res, est, err := synthesizeMPAssignment(net, probs, cfg, tok)
	if err != nil {
		return nil, err
	}
	s, err := finishSynthesis(asg, res, net, cfg, tok)
	if err != nil {
		return nil, err
	}
	s.EstPower = est
	return s, nil
}

// mapBlock maps a phase result with the configured library.
func mapBlock(res *phase.Result, cfg Config) (*domino.Block, error) {
	b, err := domino.Map(res, *cfg.Lib)
	if err != nil {
		return nil, fmt.Errorf("flow: Map: %w", err)
	}
	return b, nil
}

func finishSynthesis(asg phase.Assignment, res *phase.Result, net *logic.Network, cfg Config, tok *budget.T) (*Synthesis, error) {
	b, err := mapBlock(res, cfg)
	if err != nil {
		return nil, err
	}
	probs := uniformProbs(net, cfg.InputProb)
	est, err := power.Estimate(b, probs, cfg.estOptions(tok))
	if err != nil {
		return nil, fmt.Errorf("flow: Estimate: %w", err)
	}
	rep, err := sim.Run(b, sim.Config{
		Vectors: cfg.SimVectors, Seed: cfg.SimSeed, InputProbs: probs,
		Shards: cfg.SimShards, Workers: cfg.Workers, Kernel: cfg.SimKernel,
		BlockWords: cfg.SimBlockWords, Budget: tok,
	})
	if err != nil {
		return nil, fmt.Errorf("flow: sim: %w", err)
	}
	a := timing.Analyze(b, *cfg.Timing)
	return &Synthesis{
		Assignment: asg,
		Block:      b,
		Size:       b.CellCount(),
		EstPower:   est.Total,
		SimPower:   rep.Total,
		Critical:   a.Critical,
		MetTiming:  true,
	}, nil
}

// RunCircuit executes the untimed (Table 1) flow on one benchmark.
func RunCircuit(c gen.NamedCircuit, cfg Config) (*Row, error) {
	cfg.defaults()
	return runCircuit(c, cfg, nil)
}

// runCircuit is RunCircuit under an optional cancellation/budget token.
func runCircuit(c gen.NamedCircuit, cfg Config, tok *budget.T) (*Row, error) {
	net, err := prepare(c.Net, cfg)
	if err != nil {
		return nil, err
	}
	ma, err := synthesizeMA(net, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	mp, err := synthesizeMP(net, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	return assembleRow(c, ma, mp), nil
}

// RunCircuitTimed executes the Table 2 flow: both syntheses are resized
// to a shared clock target derived from the fastest achievable
// minimum-area implementation times the configured slack.
func RunCircuitTimed(c gen.NamedCircuit, cfg Config) (*Row, error) {
	cfg.defaults()
	return runCircuitTimed(c, cfg, nil)
}

// runCircuitTimed is RunCircuitTimed under an optional
// cancellation/budget token.
func runCircuitTimed(c gen.NamedCircuit, cfg Config, tok *budget.T) (*Row, error) {
	net, err := prepare(c.Net, cfg)
	if err != nil {
		return nil, err
	}
	ma, err := synthesizeMA(net, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	mp, err := synthesizeMP(net, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}

	// Derive a realistic, feasible target: the fastest the MA circuit
	// can be driven, relaxed by the slack factor.
	maRes, err := phase.Apply(net, ma.Assignment)
	if err != nil {
		return nil, err
	}
	probe, err := domino.Map(maRes, *cfg.Lib)
	if err != nil {
		return nil, err
	}
	best, _ := timing.Tighten(probe, *cfg.Timing)
	target := timing.TargetFromBaseline(best.Critical, cfg.Slack)

	probs := uniformProbs(net, cfg.InputProb)
	resizeAndMeasure := func(s *Synthesis) error {
		a, steps, err := timing.Resize(s.Block, *cfg.Timing, target)
		s.Critical = a.Critical
		s.ResizeSteps = steps
		s.MetTiming = err == nil
		rep, simErr := sim.Run(s.Block, sim.Config{
			Vectors: cfg.SimVectors, Seed: cfg.SimSeed, InputProbs: probs,
			Shards: cfg.SimShards, Workers: cfg.Workers, Kernel: cfg.SimKernel,
			BlockWords: cfg.SimBlockWords, Budget: tok,
		})
		if simErr != nil {
			return simErr
		}
		s.SimPower = rep.Total
		est, estErr := power.Estimate(s.Block, probs, cfg.estOptions(tok))
		if estErr != nil {
			return estErr
		}
		s.EstPower = est.Total
		// The timed flow reports *sized area* rather than cell count:
		// resizing changes transistor widths, and the area cost of
		// meeting timing is the quantity Table 2's Size column tracks.
		s.Size = int(math.Round(s.Block.Area()))
		return nil
	}
	if err := resizeAndMeasure(ma); err != nil {
		return nil, fmt.Errorf("%s: MA resize: %w", c.Name, err)
	}
	if err := resizeAndMeasure(mp); err != nil {
		return nil, fmt.Errorf("%s: MP resize: %w", c.Name, err)
	}
	return assembleRow(c, ma, mp), nil
}

func assembleRow(c gen.NamedCircuit, ma, mp *Synthesis) *Row {
	row := &Row{
		Name: c.Name, Desc: c.Desc,
		PIs: c.Net.NumInputs(), POs: c.Net.NumOutputs(),
		MA: *ma, MP: *mp,
		PaperAreaPenaltyPct: c.PaperAreaPen,
		PaperPowerSavingPct: c.PaperPwrSav,
	}
	if ma.Size > 0 {
		row.AreaPenaltyPct = 100 * float64(mp.Size-ma.Size) / float64(ma.Size)
	}
	if ma.SimPower > 0 {
		row.PowerSavingPct = 100 * (ma.SimPower - mp.SimPower) / ma.SimPower
	}
	return row
}

// RunTable1 regenerates Table 1 (untimed flow, PI probability 0.5) over
// the seven benchmark twins.
func RunTable1(cfg Config) ([]*Row, error) {
	var rows []*Row
	for _, c := range gen.Table1Circuits() {
		row, err := RunCircuit(c, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable2 regenerates Table 2 (timed flow with resizing) over the four
// public benchmark twins.
func RunTable2(cfg Config) ([]*Row, error) {
	var rows []*Row
	for _, c := range gen.Table2Circuits() {
		row, err := RunCircuitTimed(c, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Averages returns the mean area penalty and power saving of a row set —
// the paper's "Average" line.
func Averages(rows []*Row) (areaPen, pwrSav float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		areaPen += r.AreaPenaltyPct
		pwrSav += r.PowerSavingPct
	}
	n := float64(len(rows))
	return areaPen / n, pwrSav / n
}
