package flow_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/report"
	"repro/internal/sim"
)

// Small hand-written corpus members: fast to synthesize (<= 3 outputs
// keeps every search exhaustive-feasible) yet covering both formats and
// the sequential path.
const corpusCombBLIF = `.model comb
.inputs a b c d
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names c d g
10 1
01 1
.end
`

const corpusSeqBLIF = `.model counter
.inputs en
.outputs q0
.latch n0 q0 0
.names en q0 n0
10 1
01 1
.end
`

const corpusPLA = `.i 3
.o 2
.ilb x y z
.ob p q
11- 10
-11 01
1-1 11
.e
`

func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func testCorpusConfig() flow.Config {
	return flow.Config{SimVectors: 128, SimShards: 2, Workers: 1}
}

func runTestCorpus(t *testing.T, dir string, cc flow.CorpusConfig) []*flow.CorpusRow {
	t.Helper()
	entries, err := corpus.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := flow.RunCorpus(context.Background(), entries, cc)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestRunCorpusWorkerInvariance(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"comb.blif":    corpusCombBLIF,
		"counter.blif": corpusSeqBLIF,
		"twolevel.pla": corpusPLA,
	})
	var reference []*flow.CorpusRow
	for _, workers := range []int{1, 2, 8} {
		rows := runTestCorpus(t, dir, flow.CorpusConfig{Base: testCorpusConfig(), Workers: workers})
		for _, r := range rows {
			if r.Err != "" {
				t.Fatalf("workers=%d: %s failed: %s", workers, r.Name, r.Err)
			}
			r.WallSec = 0 // wall-clock is exempt from the determinism contract
		}
		if reference == nil {
			reference = rows
			continue
		}
		if !reflect.DeepEqual(reference, rows) {
			for i := range rows {
				if !reflect.DeepEqual(reference[i], rows[i]) {
					t.Errorf("workers=%d: row %d (%s) differs from workers=1", workers, i, rows[i].Name)
				}
			}
		}
	}
	// The latched model must have gone through the sequential flow.
	for _, r := range reference {
		if r.Name == "counter" && (!r.Sequential || r.SeqRow == nil || r.SeqRow.FFs != 1) {
			t.Errorf("latched model not routed through the sequential flow: %+v", r)
		}
		if r.Name != "counter" && r.Row == nil {
			t.Errorf("combinational row %s missing Table-1 result", r.Name)
		}
	}
}

func TestRunCorpusErrorIsolation(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"a_good.blif":  corpusCombBLIF,
		"b_bad.blif":   ".model broken\n.inputs a\n.outputs f\n.names g f\n.banana\n.end",
		"c_empty.blif": "",
		"d_good.pla":   corpusPLA,
	})
	rows := runTestCorpus(t, dir, flow.CorpusConfig{Base: testCorpusConfig(), Workers: 4})
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Err != "" || rows[0].Row == nil {
		t.Errorf("good row sunk by corrupt neighbors: %+v", rows[0])
	}
	if rows[1].Err == "" || !strings.Contains(rows[1].Err, "b_bad.blif") {
		t.Errorf("corrupt file error not isolated: %q", rows[1].Err)
	}
	if rows[2].Err == "" {
		t.Error("empty file did not error")
	}
	if rows[3].Err != "" || rows[3].Row == nil {
		t.Errorf("good PLA row sunk: %+v", rows[3])
	}
}

func TestRunCorpusStreamsInIndexOrder(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"a.blif": corpusCombBLIF,
		"b.pla":  corpusPLA,
		"c.blif": corpusCombBLIF,
		"d.pla":  corpusPLA,
	})
	entries, err := corpus.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []int
	rows, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
		Base:    testCorpusConfig(),
		Workers: 4,
		OnRow:   func(r *flow.CorpusRow) { streamed = append(streamed, r.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(rows) {
		t.Fatalf("streamed %d of %d rows", len(streamed), len(rows))
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("stream order %v is not index order", streamed)
		}
	}
}

func TestRunCorpusTimeout(t *testing.T) {
	dir := writeCorpus(t, map[string]string{"slow.blif": corpusCombBLIF})
	entries, err := corpus.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
		Base:    testCorpusConfig(),
		Timeout: 20 * time.Millisecond,
		Configure: func(c *corpus.Circuit, base flow.Config) flow.Config {
			time.Sleep(500 * time.Millisecond) // stand-in for a hung circuit
			return base
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err == "" || !strings.Contains(rows[0].Err, "timeout") {
		t.Errorf("overlong circuit not timed out: %+v", rows[0])
	}
}

// TestRunCorpusTimeoutLeaksNoGoroutines is the regression test for the
// goroutine-abandonment bug: before cooperative cancellation, a timed
// out circuit's flow goroutine kept running (pinned in the sim loop) and
// RunCorpus simply stopped waiting for it. Each of the N timed-out jobs
// below leaked one goroutine under the old scheme; now the timeout
// cancels the budget token, the kernel observes it at the next poll
// window, and the goroutine count returns to baseline.
func TestRunCorpusTimeoutLeaksNoGoroutines(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"s1.blif": corpusCombBLIF,
		"s2.pla":  corpusPLA,
	})
	entries, err := corpus.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	const runs = 4
	for i := 0; i < runs; i++ {
		rows, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
			Base:    testCorpusConfig(),
			Workers: 2,
			Timeout: 30 * time.Millisecond,
			Configure: func(c *corpus.Circuit, base flow.Config) flow.Config {
				// Pin the circuit in the scalar sim loop so only
				// cancellation can end it.
				base.SimVectors = 1 << 28
				base.SimKernel = sim.KernelScalar
				return base
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !r.TimedOut {
				t.Fatalf("run %d: pinned circuit %s did not time out: %+v", i, r.Name, r)
			}
		}
	}
	// Cancellation is cooperative, so allow the workers a few poll
	// windows to unwind before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d after %d timed-out corpus runs",
				baseline, runtime.NumGoroutine(), runs)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestRunCorpusPerCircuitOverrides(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"a.blif": corpusCombBLIF,
		"b.pla":  corpusPLA,
	})
	entries, err := corpus.Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	_, err = flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
		Base: testCorpusConfig(),
		Configure: func(c *corpus.Circuit, base flow.Config) flow.Config {
			seen[c.Entry.Name] = true
			if c.Entry.Format == corpus.FormatPLA {
				base.SimVectors = 64
			}
			return base
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("Configure not called per circuit: %v", seen)
	}
}

func TestCorpusRecordProjection(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"comb.blif":    corpusCombBLIF,
		"counter.blif": corpusSeqBLIF,
		"nope.blif":    ".model x\n.outputs f\n.end",
	})
	rows := runTestCorpus(t, dir, flow.CorpusConfig{Base: testCorpusConfig()})
	var b strings.Builder
	for _, r := range rows {
		if err := report.WriteCorpusJSONL(&b, r); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"ma_size"`) || !strings.Contains(lines[0], `"name":"comb"`) {
		t.Errorf("combinational record wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"sequential":true`) || !strings.Contains(lines[1], `"ffs":1`) {
		t.Errorf("sequential record wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"error"`) {
		t.Errorf("error record wrong: %s", lines[2])
	}
	table := report.CorpusTable("corpus", rows)
	for _, want := range []string{"comb", "counter", "failed", "nope.blif"} {
		if !strings.Contains(table, want) {
			t.Errorf("corpus table missing %q:\n%s", want, table)
		}
	}
}
