package flow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/corpus"
	"repro/internal/par"
)

// CorpusRow is one corpus member's outcome. Exactly one of Row, SeqRow,
// and Err is populated: combinational circuits yield a Table 1/2 Row,
// latched BLIF models route through the partitioned sequential flow and
// yield a SeqRow, and a parse or flow failure is isolated into Err
// without sinking the batch.
//
// Everything except WallSec is a pure function of (entry content,
// configuration): RunCorpus collects rows by entry index on the shared
// par pool, so a fixed corpus produces bit-identical rows at any worker
// count — the same contract as the sharded searches.
type CorpusRow struct {
	Index  int
	Name   string
	Path   string
	Format string
	// Sequential reports that the source declared latches and the row
	// came from the partitioned sequential flow.
	Sequential bool
	Row        *Row
	SeqRow     *SequentialRow
	Err        string
	// TimedOut marks rows whose error came from the per-circuit Timeout
	// or from caller cancellation rather than from the circuit itself.
	// Such rows depend on machine speed — they are the documented
	// exception to the deterministic row contract — so result caches
	// (internal/serve) must never store them.
	TimedOut bool
	// Engine names the degradation-chain stage that produced the row
	// ("" = the configured engine; see EngineExactSifted,
	// EngineDepthWeighted, EngineMonteCarlo). Like the row values it is
	// a pure function of (entry content, configuration) — budget trips
	// are decided per BDD build, never by scheduling.
	Engine string
	// BudgetTrips counts how many resource-budget trips (BDD node caps,
	// sim vector clamps) occurred across every degradation stage this
	// row attempted.
	BudgetTrips int
	// WallSec is wall-clock and therefore NOT part of the deterministic
	// row contract. The JSONL serialization lives in
	// report.CorpusRecord, not here.
	WallSec float64
}

// CorpusConfig parameterizes RunCorpus.
type CorpusConfig struct {
	// Base is the flow configuration every circuit starts from.
	Base Config
	// Timed selects the Table 2 flow (resize to a slack-derived clock
	// target) instead of the untimed Table 1 flow for combinational
	// circuits. Latched models always use the sequential flow.
	Timed bool
	// Workers bounds how many circuits run concurrently (0 = GOMAXPROCS,
	// 1 = sequential). Parallelism lives at the circuit grain: callers
	// normally pin Base.Workers to 1 so concurrent circuits don't
	// oversubscribe the CPU. Neither knob changes results.
	Workers int
	// Timeout caps one circuit's wall-clock (0 = none). A circuit that
	// exceeds it yields an error row via cooperative cancellation: the
	// flow polls a budget token at bounded intervals (BDD inserts, sim
	// windows, search candidates), so the worker goroutine exits and its
	// memory is reclaimed before the next circuit starts. Whether a
	// given circuit times out depends on machine speed, so determinism
	// holds only for runs in which no row reports a timeout.
	Timeout time.Duration
	// Configure, when non-nil, derives the per-circuit configuration
	// from the base after parsing — per-circuit overrides for vector
	// budgets, search strategies, probability engines, and so on.
	Configure func(c *corpus.Circuit, base Config) Config
	// OnRow, when non-nil, streams rows in index order as they are
	// finalized, while later circuits are still running. It is called
	// from worker goroutines but never concurrently with itself.
	OnRow func(*CorpusRow)
}

// RunCorpus parses and runs every entry through the configured flow on
// the shared worker pool. Per-circuit failures (parse errors, flow
// errors, panics, timeouts) are isolated into their rows; the returned
// error is non-nil only when ctx is cancelled.
func RunCorpus(ctx context.Context, entries []corpus.Entry, cc CorpusConfig) ([]*CorpusRow, error) {
	rows := make([]*CorpusRow, len(entries))
	var mu sync.Mutex
	nextEmit := 0
	emit := func(i int, row *CorpusRow) {
		mu.Lock()
		defer mu.Unlock()
		rows[i] = row
		if cc.OnRow == nil {
			return
		}
		for nextEmit < len(rows) && rows[nextEmit] != nil {
			cc.OnRow(rows[nextEmit])
			nextEmit++
		}
	}
	err := par.Do(ctx, len(entries), cc.Workers, func(ctx context.Context, i int) error {
		emit(i, cc.runOne(ctx, i, entries[i]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runOne executes one corpus entry end to end, trapping every failure
// mode into the row. The flow runs inline on the worker goroutine under
// a timeout-derived context: a timeout or caller cancellation cancels
// the budget token the flow polls, so the goroutine unwinds and returns
// — nothing is abandoned, and repeated timed-out batches hold the
// goroutine count at its baseline.
func (cc *CorpusConfig) runOne(ctx context.Context, i int, e corpus.Entry) *CorpusRow {
	row := &CorpusRow{Index: i, Name: e.Name, Path: e.Path, Format: e.Format.String()}
	start := time.Now() //dominolint:walltime-ok WallSec is the one documented wall-clock row field; the cache key and all row comparisons exempt it
	runCtx := ctx
	if cc.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cc.Timeout)
		defer cancel()
	}
	cc.fillRow(runCtx, ctx, row, e)
	row.WallSec = time.Since(start).Seconds() //dominolint:walltime-ok WallSec is the one documented wall-clock row field; the cache key and all row comparisons exempt it
	return row
}

// fillRow runs the parse + flow pipeline for one entry, classifying the
// outcome into the row: panics become error rows, cancellation errors
// become timeout/cancellation rows (TimedOut set, never cached), and
// everything else is either a flow error or a result.
func (cc *CorpusConfig) fillRow(runCtx, ctx context.Context, row *CorpusRow, e corpus.Entry) {
	defer func() {
		if p := recover(); p != nil {
			row.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	c, err := corpus.Load(e)
	if err != nil {
		row.Err = err.Error()
		return
	}
	cfg := cc.Base
	if cc.Configure != nil {
		cfg = cc.Configure(c, cfg)
	}
	if c.Seq != nil {
		row.Sequential = true
		sr, engine, trips, err := runSequentialDegraded(runCtx, c.Seq, cfg)
		row.Engine, row.BudgetTrips = engine, trips
		if err != nil {
			cc.classifyErr(ctx, row, err)
			return
		}
		row.SeqRow = sr
		return
	}
	r, engine, trips, err := runCircuitDegraded(runCtx, c.Named, cfg, cc.Timed)
	row.Engine, row.BudgetTrips = engine, trips
	if err != nil {
		cc.classifyErr(ctx, row, err)
		return
	}
	row.Row = r
}

// classifyErr splits cancellation from genuine flow failures: an error
// caused by the parent context marks caller cancellation, any other
// cancellation came from the per-circuit timeout. Both set TimedOut so
// caches refuse the row.
func (cc *CorpusConfig) classifyErr(ctx context.Context, row *CorpusRow, err error) {
	if errors.Is(err, budget.ErrCancelled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		row.TimedOut = true
		if ctx.Err() != nil {
			row.Err = ctx.Err().Error()
		} else {
			row.Err = fmt.Sprintf("timeout after %v", cc.Timeout)
		}
		return
	}
	row.Err = err.Error()
}
