package flow

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/power"
)

// TestConfigValidate: the zero config and the defaults validate; every
// out-of-range field is rejected with an error naming that field.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate, got %v", err)
	}
	def := Config{}
	def.defaults()
	if err := def.Validate(); err != nil {
		t.Fatalf("default config must validate, got %v", err)
	}
	cases := []struct {
		field string
		cfg   Config
	}{
		{"InputProb", Config{InputProb: 1.5}},
		{"InputProb", Config{InputProb: -0.1}},
		{"SimVectors", Config{SimVectors: -1}},
		{"MaxPairs", Config{MaxPairs: -1}},
		{"ExhaustiveLimit", Config{ExhaustiveLimit: -1}},
		{"Slack", Config{Slack: -0.5}},
		{"MaxCollapseSupport", Config{MaxCollapseSupport: -1}},
		{"Workers", Config{Workers: -1}},
		{"SimShards", Config{SimShards: -1}},
		{"SimKernel", Config{SimKernel: 99}},
		{"SimBlockWords", Config{SimBlockWords: 1 << 20}},
		{"PhaseScoring", Config{PhaseScoring: 99}},
		{"SearchStrategy", Config{SearchStrategy: 99}},
		{"SearchRestarts", Config{SearchRestarts: -1}},
		{"AnnealSteps", Config{AnnealSteps: -1}},
		{"BDDNodeBudget", Config{BDDNodeBudget: -1}},
		{"SimVectorBudget", Config{SimVectorBudget: -1}},
		{"BDDReorder", Config{BDDReorder: 99}},
		{"BDDReorder", Config{BDDReorder: -1}},
		{"EstOpts.Method", Config{EstOpts: power.Options{Method: 99}}},
		{"EstOpts.Depth", Config{EstOpts: power.Options{Depth: -1}}},
		{"EstOpts.MaxFrontier", Config{EstOpts: power.Options{MaxFrontier: -1}}},
		{"EstOpts.MCVectors", Config{EstOpts: power.Options{MCVectors: -1}}},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("field %s: invalid config validated", c.field)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("field %s: error %q does not name the field", c.field, err)
		}
	}
}

// TestDegradeStages: the chain exists only when a BDD node budget is
// set, its shape is a pure function of the config, and the reorder mode
// controls whether the exact-sifted retry stage appears.
func TestDegradeStages(t *testing.T) {
	if got := degradeStages(Config{}); len(got) != 1 || got[0].engine != "" {
		t.Errorf("no budget should mean a single configured-engine stage, got %d stages", len(got))
	}
	cases := []struct {
		name string
		mode BDDReorderMode
		want []string
	}{
		{"auto", ReorderAuto, []string{"", EngineExactSifted, EngineDepthWeighted, EngineMonteCarlo}},
		{"always", ReorderAlways, []string{"", EngineDepthWeighted, EngineMonteCarlo}},
		{"off", ReorderOff, []string{"", EngineDepthWeighted, EngineMonteCarlo}},
	}
	for _, c := range cases {
		got := degradeStages(Config{BDDNodeBudget: 100, BDDReorder: c.mode})
		if len(got) != len(c.want) {
			t.Fatalf("%s: budgeted chain has %d stages, want %d", c.name, len(got), len(c.want))
		}
		for i, st := range got {
			if st.engine != c.want[i] {
				t.Errorf("%s: stage %d engine = %q, want %q", c.name, i, st.engine, c.want[i])
			}
		}
	}
	// The sifted stage arms reordering by rewriting the mode.
	st := degradeStages(Config{BDDNodeBudget: 100})[1]
	var cfg Config
	st.apply(&cfg)
	if cfg.BDDReorder != ReorderAlways {
		t.Errorf("exact-sifted stage rewrote BDDReorder to %d, want ReorderAlways", cfg.BDDReorder)
	}
}

// TestDegradationChainCompletes is the headline robustness property: a
// circuit whose exact-BDD probability engine blows the node budget still
// completes with a non-error row, the row records which fallback engine
// produced it, and the outcome is byte-identical across worker counts —
// degradation is deterministic, not a race artifact.
func TestDegradationChainCompletes(t *testing.T) {
	c := smallCircuit()
	base := Config{
		SimVectors:    256,
		EstOpts:       power.Options{Method: power.Exact},
		BDDNodeBudget: 8, // far below what exact BDDs for 12 inputs need
	}

	type outcome struct {
		row    *Row
		engine string
		trips  int
	}
	run := func(workers int) outcome {
		cfg := base
		cfg.Workers = workers
		row, engine, trips, err := runCircuitDegraded(context.Background(), c, cfg, false)
		if err != nil {
			t.Fatalf("workers=%d: degraded run failed: %v", workers, err)
		}
		return outcome{row, engine, trips}
	}

	first := run(1)
	if first.engine != EngineDepthWeighted && first.engine != EngineMonteCarlo {
		t.Fatalf("expected a fallback engine, got %q", first.engine)
	}
	if first.trips == 0 {
		t.Fatal("degraded run reports zero budget trips")
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if got.engine != first.engine || got.trips != first.trips {
			t.Errorf("workers=%d: engine/trips (%q, %d) differ from workers=1 (%q, %d)",
				workers, got.engine, got.trips, first.engine, first.trips)
		}
		if !reflect.DeepEqual(got.row, first.row) {
			t.Errorf("workers=%d: degraded row differs from workers=1:\n%+v\nvs\n%+v",
				workers, got.row, first.row)
		}
	}
}

// TestExactSiftedRescue: a circuit whose unsifted exact build blows the
// node budget but fits once the manager reorders itself lands on the
// exact-sifted stage — full-accuracy probabilities under a sifted
// variable order — and the rescued row is byte-identical across worker
// counts. Under ReorderOff the same circuit/budget degrades to
// depth-weighted, pinning down exactly what the new stage buys.
func TestExactSiftedRescue(t *testing.T) {
	c := gen.NamedCircuit{
		Name: "sifted", Desc: "Test",
		Net: gen.Generate(gen.Params{Name: "sifted", Inputs: 20, Outputs: 4, Gates: 100, Seed: 0x5AA11}),
	}
	base := Config{
		SimVectors:    256,
		EstOpts:       power.Options{Method: power.Exact},
		BDDNodeBudget: 200, // between the sifted and unsifted peak node counts
	}
	run := func(workers int, mode BDDReorderMode) (*Row, string, int) {
		cfg := base
		cfg.Workers = workers
		cfg.BDDReorder = mode
		row, engine, trips, err := runCircuitDegraded(context.Background(), c, cfg, false)
		if err != nil {
			t.Fatalf("workers=%d mode=%d: %v", workers, mode, err)
		}
		return row, engine, trips
	}
	row1, engine, trips := run(1, ReorderAuto)
	if engine != EngineExactSifted {
		t.Fatalf("engine = %q, want %q", engine, EngineExactSifted)
	}
	if trips != 1 {
		t.Errorf("trips = %d, want 1 (only the unsifted stage trips)", trips)
	}
	for _, workers := range []int{2, 8} {
		row, eng, tr := run(workers, ReorderAuto)
		if eng != engine || tr != trips {
			t.Errorf("workers=%d: engine/trips (%q, %d) differ from workers=1 (%q, %d)", workers, eng, tr, engine, trips)
		}
		if !reflect.DeepEqual(row, row1) {
			t.Errorf("workers=%d: rescued row differs from workers=1:\n%+v\nvs\n%+v", workers, row, row1)
		}
	}
	// Without reordering the same circuit/budget must degrade.
	_, offEngine, _ := run(1, ReorderOff)
	if offEngine != EngineDepthWeighted && offEngine != EngineMonteCarlo {
		t.Errorf("ReorderOff engine = %q, want a degraded engine", offEngine)
	}
}

// TestUntrippedBudgetIsInvisible: with budgets far above what the
// circuit needs, the degraded runner must produce exactly the row the
// plain flow produces — engine empty, zero trips. This is the guarantee
// that lets budgets default on without perturbing existing corpora.
func TestUntrippedBudgetIsInvisible(t *testing.T) {
	c := smallCircuit()
	cfg := Config{SimVectors: 256}

	plain, err := RunCircuit(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.BDDNodeBudget = 1 << 30
	bcfg.SimVectorBudget = 1 << 30
	row, engine, trips, err := runCircuitDegraded(context.Background(), c, bcfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if engine != "" || trips != 0 {
		t.Errorf("untripped budget changed the engine: engine=%q trips=%d", engine, trips)
	}
	if !reflect.DeepEqual(row, plain) {
		t.Errorf("untripped budgeted row differs from the plain flow:\n%+v\nvs\n%+v", row, plain)
	}
}

// TestDegradedRunCancellation: a cancelled context beats the degradation
// chain — the run surfaces the cancellation instead of retrying cheaper
// engines forever.
func TestDegradedRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{SimVectors: 256, BDDNodeBudget: 8, EstOpts: power.Options{Method: power.Exact}}
	_, _, _, err := runCircuitDegraded(ctx, smallCircuit(), cfg, false)
	if err == nil {
		t.Fatal("cancelled degraded run returned no error")
	}
}
