package flow

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/seq"
	"repro/internal/sgraph"
	"repro/internal/sim"
)

// SequentialRow is the result of the sequential flow: the paper's full
// Section 4.2 pipeline — enhanced-MFVS partitioning, steady-state
// probability estimation, then MA/MP phase assignment of the resulting
// combinational domino block.
type SequentialRow struct {
	Name string
	// FFs is the flip-flop count; Cut how many the enhanced MFVS cut;
	// PseudoInputs how many pseudo primary inputs the partition has.
	FFs, Cut, PseudoInputs int
	MA, MP                 Synthesis
	AreaPenaltyPct         float64
	PowerSavingPct         float64
}

// RunSequential executes the sequential flow on a circuit: partition with
// the enhanced MFVS, iterate cut-flip-flop probabilities to a fixed
// point, then run both phase assignments on the partitioned block using
// the steady-state probabilities as block input probabilities.
func RunSequential(c *seq.Circuit, cfg Config) (*SequentialRow, error) {
	cfg.defaults()
	return runSequential(c, cfg, nil)
}

// runSequential is RunSequential under an optional cancellation/budget
// token.
func runSequential(c *seq.Circuit, cfg Config, tok *budget.T) (*SequentialRow, error) {
	cut := c.Cut(sgraph.DefaultOptions())
	part, err := c.Partition(cut)
	if err != nil {
		return nil, fmt.Errorf("flow: partition: %w", err)
	}

	// Steady-state probabilities of the cut flip-flops become the
	// pseudo-input probabilities of the block.
	inputProbs := make([]float64, c.Comb.NumInputs())
	for _, pos := range c.RealInputs {
		inputProbs[pos] = cfg.InputProb
	}
	_, nodeProbs, err := c.SteadyStateProbs(seq.SteadyOptions{InputProbs: inputProbs, Cut: cut})
	if err != nil {
		return nil, fmt.Errorf("flow: steady state: %w", err)
	}
	blockProbs := make([]float64, part.Block.NumInputs())
	for pos, in := range part.Inputs {
		if in.FF >= 0 {
			name := "ns_" + c.FFs[in.FF].Name
			oi := part.Block.OutputByName(name)
			if oi >= 0 {
				blockProbs[pos] = nodeProbs[part.Block.Outputs()[oi].Driver]
			} else {
				blockProbs[pos] = 0.5
			}
		} else {
			blockProbs[pos] = cfg.InputProb
		}
	}

	net := Prepare(part.Block)
	// Prepare preserves the input interface (inputs are never dropped),
	// so blockProbs stays aligned.
	row := &SequentialRow{
		Name:         c.Comb.Name,
		FFs:          len(c.FFs),
		Cut:          len(cut),
		PseudoInputs: part.PseudoInputCount(),
	}

	// Both phase searches route through the same scorer/strategy wiring
	// as the combinational flow (synthesizeMAAssignment /
	// synthesizeMPAssignment), so sequential rows pick up cone-table
	// scoring and the pluggable strategies with no duplicated logic.
	maAsg, maRes, err := synthesizeMAAssignment(net, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("flow: sequential MA: %w", err)
	}
	ma, err := finishSynthesisProbs(maAsg, maRes, blockProbs, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("flow: sequential MA: %w", err)
	}
	mpAsg, mpRes, _, err := synthesizeMPAssignment(net, blockProbs, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("flow: sequential MP: %w", err)
	}
	mp, err := finishSynthesisProbs(mpAsg, mpRes, blockProbs, cfg, tok)
	if err != nil {
		return nil, fmt.Errorf("flow: sequential MP: %w", err)
	}
	row.MA, row.MP = *ma, *mp
	if ma.Size > 0 {
		row.AreaPenaltyPct = 100 * float64(mp.Size-ma.Size) / float64(ma.Size)
	}
	if ma.SimPower > 0 {
		row.PowerSavingPct = 100 * (ma.SimPower - mp.SimPower) / ma.SimPower
	}
	return row, nil
}

// finishSynthesisProbs is finishSynthesis with explicit per-input
// probabilities (the sequential flow's pseudo-inputs are not uniform).
func finishSynthesisProbs(asg phase.Assignment, res *phase.Result, probs []float64, cfg Config, tok *budget.T) (*Synthesis, error) {
	b, err := mapBlock(res, cfg)
	if err != nil {
		return nil, err
	}
	est, err := power.Estimate(b, probs, cfg.estOptions(tok))
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run(b, sim.Config{
		Vectors: cfg.SimVectors, Seed: cfg.SimSeed, InputProbs: probs,
		Shards: cfg.SimShards, Workers: cfg.Workers, Kernel: cfg.SimKernel,
		BlockWords: cfg.SimBlockWords, Budget: tok,
	})
	if err != nil {
		return nil, err
	}
	return &Synthesis{
		Assignment: asg,
		Block:      b,
		Size:       b.CellCount(),
		EstPower:   est.Total,
		SimPower:   rep.Total,
		MetTiming:  true,
	}, nil
}
