package flow

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
)

// smallCircuit is a miniature benchmark for fast flow tests.
func smallCircuit() gen.NamedCircuit {
	return gen.NamedCircuit{
		Name: "small", Desc: "Test",
		Net: gen.Generate(gen.Params{Name: "small", Inputs: 12, Outputs: 4, Gates: 60, Seed: 0x5AA11}),
	}
}

func TestPrepare(t *testing.T) {
	n := logic.New("x")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddXor(a, b))
	p := Prepare(n)
	if p.CountKind(logic.KindXor) != 0 {
		t.Error("Prepare left XOR gates")
	}
	eq, err := logic.Equivalent(n, p)
	if err != nil || !eq {
		t.Errorf("Prepare changed function: %v %v", eq, err)
	}
}

func TestRunCircuitUntimed(t *testing.T) {
	row, err := RunCircuit(smallCircuit(), Config{SimVectors: 2048})
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	if row.MA.Size <= 0 || row.MP.Size <= 0 {
		t.Fatalf("sizes: MA %d MP %d", row.MA.Size, row.MP.Size)
	}
	if row.MA.SimPower <= 0 || row.MP.SimPower <= 0 {
		t.Fatalf("powers: MA %v MP %v", row.MA.SimPower, row.MP.SimPower)
	}
	// MA must be the area optimum among the two.
	if row.MP.Size < row.MA.Size {
		t.Errorf("MP size %d smaller than MA size %d in untimed flow", row.MP.Size, row.MA.Size)
	}
	// Functional correctness of both syntheses.
	net := Prepare(smallCircuit().Net)
	for _, s := range []*Synthesis{&row.MA, &row.MP} {
		res, err := phase.Apply(net, s.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := logic.Equivalent(net, res.Reconstructed())
		if err != nil || !eq {
			t.Errorf("synthesis %s not equivalent: %v %v", s.Assignment, eq, err)
		}
	}
}

func TestMPNoWorseThanAllPositiveInEstimate(t *testing.T) {
	c := smallCircuit()
	cfg := Config{SimVectors: 1024}
	cfg.defaults()
	net := Prepare(c.Net)
	mp, err := SynthesizeMP(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate of all-positive assignment.
	probs := uniformProbs(net, cfg.InputProb)
	evaluate := func(asg phase.Assignment) float64 {
		res, err := phase.Apply(net, asg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := finishSynthesis(asg, res, net, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = probs
		return s.EstPower
	}
	allPos := evaluate(phase.AllPositive(net.NumOutputs()))
	if mp.EstPower > allPos+1e-9 {
		t.Errorf("MP estimate %v worse than all-positive %v", mp.EstPower, allPos)
	}
}

func TestRunCircuitTimed(t *testing.T) {
	row, err := RunCircuitTimed(smallCircuit(), Config{SimVectors: 2048})
	if err != nil {
		t.Fatalf("RunCircuitTimed: %v", err)
	}
	if !row.MA.MetTiming {
		t.Error("MA failed its own slack-relaxed timing target")
	}
	if row.MA.Critical <= 0 || row.MP.Critical <= 0 {
		t.Error("missing criticals")
	}
	// Resizing must not shrink cell count and generally raises power.
	if row.MA.Size < row.MA.Block.DominoCellCount() {
		t.Error("size accounting broken")
	}
}

func TestAverages(t *testing.T) {
	rows := []*Row{
		{AreaPenaltyPct: 10, PowerSavingPct: 20},
		{AreaPenaltyPct: 20, PowerSavingPct: 40},
	}
	a, p := Averages(rows)
	if a != 15 || p != 30 {
		t.Errorf("Averages = %v, %v", a, p)
	}
	if a, p := Averages(nil); a != 0 || p != 0 {
		t.Errorf("Averages(nil) = %v, %v", a, p)
	}
}

func TestDeterministicFlow(t *testing.T) {
	r1, err := RunCircuit(smallCircuit(), Config{SimVectors: 512})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCircuit(smallCircuit(), Config{SimVectors: 512})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MA.Size != r2.MA.Size || r1.MP.Size != r2.MP.Size ||
		r1.MA.SimPower != r2.MA.SimPower || r1.MP.SimPower != r2.MP.SimPower {
		t.Error("flow is not deterministic")
	}
}

func TestResynthesizeFlow(t *testing.T) {
	c := smallCircuit()
	plain, err := RunCircuit(c, Config{SimVectors: 1024})
	if err != nil {
		t.Fatal(err)
	}
	resyn, err := RunCircuit(c, Config{SimVectors: 1024, Resynthesize: true, MaxCollapseSupport: 12})
	if err != nil {
		t.Fatalf("resynthesis flow: %v", err)
	}
	if resyn.MA.Size <= 0 || resyn.MP.Size <= 0 {
		t.Fatal("resynthesis produced empty synthesis")
	}
	// Both flows synthesize the same functions; sizes may differ, power
	// must be positive in both.
	if plain.MA.SimPower <= 0 || resyn.MA.SimPower <= 0 {
		t.Error("missing measurements")
	}
}

func TestSynthesizeMPWithStrategy(t *testing.T) {
	c := gen.Frg1()
	net := Prepare(c.Net)
	// frg1 has 3 outputs: the default MP heuristic and the exact
	// branch-and-bound strategy both search a space the exhaustive scan
	// covers, so the strategy's estimate can never be worse.
	def, err := SynthesizeMP(net, Config{SimVectors: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SimVectors: 512, SearchStrategy: phase.StrategyBranchBound}
	bb, err := SynthesizeMP(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bb.EstPower > def.EstPower+1e-9 {
		t.Errorf("branch-and-bound MP estimate %v worse than heuristic %v", bb.EstPower, def.EstPower)
	}
}

func TestRunSequentialWithStrategy(t *testing.T) {
	c, err := gen.Sequential(gen.SeqParams{
		Name: "seqstrat", Inputs: 6, FFs: 8, Gates: 40, Seed: 29, TwinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSequential(c, Config{SimVectors: 1024, SearchStrategy: phase.StrategyGreedy})
	if err != nil {
		t.Fatalf("RunSequential with greedy strategy: %v", err)
	}
	if row.MA.Size <= 0 || row.MP.Size <= 0 || row.MP.SimPower <= 0 {
		t.Errorf("malformed row: %+v", row)
	}
}
