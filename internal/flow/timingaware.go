package flow

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/timing"
)

// The paper's conclusion proposes "integrating the choice of phase
// assignment with timing optimization" as future work, and its power
// model already carries the hook: the gate-type penalty P_i, set to zero
// in the paper's experiments. Negative phases rewrite OR cones into AND
// stacks over complemented rails (De Morgan), and AND stacks are the
// slow domino structures; a nonzero P_i makes the MinPower objective
// timing-aware by taxing exactly those cells.
//
// RunCircuitTimingAware implements that integration: the MP search runs
// with the penalized objective, and the resulting circuit goes through
// the same timed flow as Table 2. Compare with RunCircuitTimed at
// penalty 0 via BenchmarkAblationPenalty.

// TimingAwareResult reports the penalized-MP timed flow next to the
// plain-MP one.
type TimingAwareResult struct {
	Name string
	// Plain is the Table 2 row with penalty 0; Penalized the row with
	// the AND penalty applied during phase assignment.
	Plain, Penalized *Row
	// PenalizedAndCells / PlainAndCells count AND-type domino cells in
	// the MP blocks — the structural quantity the penalty steers.
	PlainAndCells, PenalizedAndCells int
	// PlainResizeSteps / PenalizedResizeSteps show how much timing
	// repair each MP circuit needed.
	PlainResizeSteps, PenalizedResizeSteps int
}

// RunCircuitTimingAware runs the timed flow twice — with and without the
// AND-stack penalty in the MP objective — and reports both.
func RunCircuitTimingAware(c gen.NamedCircuit, cfg Config, andPenalty float64) (*TimingAwareResult, error) {
	cfg.defaults()
	if andPenalty <= 0 {
		return nil, fmt.Errorf("flow: andPenalty must be positive")
	}
	plain, err := RunCircuitTimed(c, cfg)
	if err != nil {
		return nil, err
	}
	pcfg := cfg
	lib := *cfg.Lib
	lib.AndPenalty = andPenalty
	pcfg.Lib = &lib
	penalized, err := RunCircuitTimed(c, pcfg)
	if err != nil {
		return nil, err
	}
	out := &TimingAwareResult{
		Name:                 c.Name,
		Plain:                plain,
		Penalized:            penalized,
		PlainResizeSteps:     plain.MP.ResizeSteps,
		PenalizedResizeSteps: penalized.MP.ResizeSteps,
	}
	out.PlainAndCells = andCellCount(&plain.MP)
	out.PenalizedAndCells = andCellCount(&penalized.MP)
	return out, nil
}

func andCellCount(s *Synthesis) int {
	n := 0
	for i := range s.Block.Cells {
		if s.Block.Cells[i].Kind == logic.KindAnd {
			n++
		}
	}
	return n
}

// CriticalOfAssignment maps an assignment and reports the minimum-size
// critical delay — a helper for timing-aware experiments and tests.
func CriticalOfAssignment(c gen.NamedCircuit, asg phase.Assignment, cfg Config) (float64, error) {
	cfg.defaults()
	net := Prepare(c.Net)
	res, err := phase.Apply(net, asg)
	if err != nil {
		return 0, err
	}
	b, err := mapBlock(res, cfg)
	if err != nil {
		return 0, err
	}
	return timing.Analyze(b, *cfg.Timing).Critical, nil
}

// PenalizedEvaluator exposes the penalized MP objective for callers that
// want to drive phase.MinPower directly.
func PenalizedEvaluator(cfg Config, andPenalty float64, probs []float64) phase.Evaluator {
	cfg.defaults()
	lib := *cfg.Lib
	lib.AndPenalty = andPenalty
	return power.Evaluator(lib, probs, cfg.estOptions(nil))
}

// PenalizedScorer is PenalizedEvaluator's cone-table counterpart: the
// penalized objective precomputed for scored searches (the AND-stack tax
// is cached per cell in the table's 1+P_i terms, so the timing-aware
// objective scores as cheaply as the plain one).
func PenalizedScorer(net *logic.Network, cfg Config, andPenalty float64, probs []float64) (phase.AssignmentScorer, error) {
	cfg.defaults()
	lib := *cfg.Lib
	lib.AndPenalty = andPenalty
	return power.NewConeTable(net, lib, probs, cfg.estOptions(nil))
}
