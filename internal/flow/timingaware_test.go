package flow

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/phase"
)

func smallOrHeavy() gen.NamedCircuit {
	return gen.NamedCircuit{
		Name: "orheavy", Desc: "Test",
		Net: gen.Generate(gen.Params{Name: "orheavy", Inputs: 12, Outputs: 4, Gates: 70, Seed: 0x7A11, OrProb: 0.8}),
	}
}

func TestRunCircuitTimingAware(t *testing.T) {
	res, err := RunCircuitTimingAware(smallOrHeavy(), Config{SimVectors: 1024}, 0.4)
	if err != nil {
		t.Fatalf("RunCircuitTimingAware: %v", err)
	}
	if res.Plain == nil || res.Penalized == nil {
		t.Fatal("missing rows")
	}
	// The penalty must not *increase* AND-cell count in the chosen MP
	// synthesis (it taxes AND stacks; ties keep the same assignment).
	if res.PenalizedAndCells > res.PlainAndCells {
		t.Errorf("penalized MP has more AND cells (%d) than plain (%d)",
			res.PenalizedAndCells, res.PlainAndCells)
	}
	if res.Plain.MP.SimPower <= 0 || res.Penalized.MP.SimPower <= 0 {
		t.Error("missing measurements")
	}
}

func TestRunCircuitTimingAwareRejectsZeroPenalty(t *testing.T) {
	if _, err := RunCircuitTimingAware(smallOrHeavy(), Config{SimVectors: 256}, 0); err == nil {
		t.Error("accepted zero penalty")
	}
}

func TestCriticalOfAssignment(t *testing.T) {
	c := smallOrHeavy()
	net := Prepare(c.Net)
	d, err := CriticalOfAssignment(c, phase.AllPositive(net.NumOutputs()), Config{})
	if err != nil {
		t.Fatalf("CriticalOfAssignment: %v", err)
	}
	if d <= 0 {
		t.Errorf("critical = %v", d)
	}
}

func TestPenalizedEvaluatorTaxesAnds(t *testing.T) {
	c := smallOrHeavy()
	net := Prepare(c.Net)
	probs := uniformProbs(net, 0.5)
	cfg := Config{}
	cfg.defaults()
	plain := PenalizedEvaluator(cfg, 1e-9, probs)
	taxed := PenalizedEvaluator(cfg, 0.5, probs)
	// An all-negative assignment of an OR-heavy circuit is AND-heavy; the
	// taxed evaluator must score it strictly worse.
	asg := make(phase.Assignment, net.NumOutputs())
	for i := range asg {
		asg[i] = true
	}
	res, err := phase.Apply(net, asg)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := plain(res)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := taxed(res)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Errorf("taxed evaluator (%v) not above plain (%v) on AND-heavy block", p1, p0)
	}
}

// TestPenalizedScorerMatchesEvaluator pins the cone-table counterpart:
// for every assignment of the OR-heavy circuit, the penalized scorer
// reproduces the penalized evaluator's score (the AND-stack tax is
// cached in the table's 1+P_i terms), and the tax ordering carries over.
func TestPenalizedScorerMatchesEvaluator(t *testing.T) {
	c := smallOrHeavy()
	net := Prepare(c.Net)
	probs := uniformProbs(net, 0.5)
	cfg := Config{}
	cfg.defaults()
	const tax = 0.5
	eval := PenalizedEvaluator(cfg, tax, probs)
	scorer, err := PenalizedScorer(net, cfg, tax, probs)
	if err != nil {
		t.Fatal(err)
	}
	k := net.NumOutputs()
	asg := make(phase.Assignment, k)
	for mask := 0; mask < 1<<uint(k); mask++ {
		for i := 0; i < k; i++ {
			asg[i] = mask&(1<<uint(i)) != 0
		}
		got, err := scorer.ScoreAssignment(asg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := phase.Apply(net, asg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval(res)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("mask %d: penalized scorer %v != evaluator %v", mask, got, want)
		}
	}
}
