package flow

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/phase"
)

func smallOrHeavy() gen.NamedCircuit {
	return gen.NamedCircuit{
		Name: "orheavy", Desc: "Test",
		Net: gen.Generate(gen.Params{Name: "orheavy", Inputs: 12, Outputs: 4, Gates: 70, Seed: 0x7A11, OrProb: 0.8}),
	}
}

func TestRunCircuitTimingAware(t *testing.T) {
	res, err := RunCircuitTimingAware(smallOrHeavy(), Config{SimVectors: 1024}, 0.4)
	if err != nil {
		t.Fatalf("RunCircuitTimingAware: %v", err)
	}
	if res.Plain == nil || res.Penalized == nil {
		t.Fatal("missing rows")
	}
	// The penalty must not *increase* AND-cell count in the chosen MP
	// synthesis (it taxes AND stacks; ties keep the same assignment).
	if res.PenalizedAndCells > res.PlainAndCells {
		t.Errorf("penalized MP has more AND cells (%d) than plain (%d)",
			res.PenalizedAndCells, res.PlainAndCells)
	}
	if res.Plain.MP.SimPower <= 0 || res.Penalized.MP.SimPower <= 0 {
		t.Error("missing measurements")
	}
}

func TestRunCircuitTimingAwareRejectsZeroPenalty(t *testing.T) {
	if _, err := RunCircuitTimingAware(smallOrHeavy(), Config{SimVectors: 256}, 0); err == nil {
		t.Error("accepted zero penalty")
	}
}

func TestCriticalOfAssignment(t *testing.T) {
	c := smallOrHeavy()
	net := Prepare(c.Net)
	d, err := CriticalOfAssignment(c, phase.AllPositive(net.NumOutputs()), Config{})
	if err != nil {
		t.Fatalf("CriticalOfAssignment: %v", err)
	}
	if d <= 0 {
		t.Errorf("critical = %v", d)
	}
}

func TestPenalizedEvaluatorTaxesAnds(t *testing.T) {
	c := smallOrHeavy()
	net := Prepare(c.Net)
	probs := uniformProbs(net, 0.5)
	cfg := Config{}
	cfg.defaults()
	plain := PenalizedEvaluator(cfg, 1e-9, probs)
	taxed := PenalizedEvaluator(cfg, 0.5, probs)
	// An all-negative assignment of an OR-heavy circuit is AND-heavy; the
	// taxed evaluator must score it strictly worse.
	asg := make(phase.Assignment, net.NumOutputs())
	for i := range asg {
		asg[i] = true
	}
	res, err := phase.Apply(net, asg)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := plain(res)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := taxed(res)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Errorf("taxed evaluator (%v) not above plain (%v) on AND-heavy block", p1, p0)
	}
}
