package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got < 1 {
		t.Errorf("Workers(-5) = %d, want >= 1", got)
	}
}

func TestDoVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 100
		var counts [n]atomic.Int64
		err := Do(context.Background(), n, workers, func(_ context.Context, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestDoReturnsLowestShardError(t *testing.T) {
	// Sequential: every shard runs in order, so the reported error is
	// exactly the first failing shard.
	err := Do(context.Background(), 50, 1, func(_ context.Context, i int) error {
		if i >= 7 {
			return fmt.Errorf("shard %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "shard 7 failed" {
		t.Errorf("workers=1: err = %v, want shard 7 failed", err)
	}
	// Parallel: cancellation may skip some failing shards before they
	// run, but the reported error must be a real shard failure (>= 7),
	// never the cancellation noise of a sibling that observed ctx.
	for _, workers := range []int{4, 16} {
		err := Do(context.Background(), 50, workers, func(ctx context.Context, i int) error {
			if i >= 7 {
				return fmt.Errorf("shard %d failed", i)
			}
			return ctx.Err() // low shards surface cancellation, like a real scan loop
		})
		if err == nil || !strings.HasPrefix(err.Error(), "shard ") {
			t.Errorf("workers=%d: err = %v, want a real shard failure", workers, err)
		}
		if errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: cancellation masked the root cause: %v", workers, err)
		}
	}
}

func TestDoParallelReportsCallerCancellation(t *testing.T) {
	// A caller cancelling mid-run must get an error, not nil with shards
	// silently skipped (and Map must not hand back zero-valued results).
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := Map(ctx, 1000, 4, func(ctx context.Context, i int) (int, error) {
		once.Do(cancel)
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDoCancelsOnError(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("boom")
	err := Do(context.Background(), 10_000, 2, func(ctx context.Context, i int) error {
		started.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// The first failure cancels the pool: nearly all shards are skipped.
	if s := started.Load(); s > 100 {
		t.Errorf("%d shards ran after first error", s)
	}
}

func TestDoHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Do(ctx, 5, 1, func(context.Context, int) error { ran = true; return nil })
	if err == nil {
		t.Error("expected context error")
	}
	if ran {
		t.Error("shard ran under cancelled context")
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got, err := Map(context.Background(), 64, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSplitRange(t *testing.T) {
	cases := []struct {
		total, shards int
		want          [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // shards capped at total
		{5, 1, [][2]int{{0, 5}}},
		{0, 4, nil},
	}
	for _, c := range cases {
		got := SplitRange(c.total, c.shards)
		if len(got) != len(c.want) {
			t.Errorf("SplitRange(%d,%d) = %v, want %v", c.total, c.shards, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitRange(%d,%d)[%d] = %v, want %v", c.total, c.shards, i, got[i], c.want[i])
			}
		}
	}
}
