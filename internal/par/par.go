// Package par is the repository's concurrency substrate: a bounded
// worker pool with deterministic, index-ordered results.
//
// Every parallel path in the reproduction (exhaustive phase search,
// sharded Monte-Carlo simulation, the benchsuite sweep) is built on the
// same contract:
//
//   - work is split into numbered shards [0, n);
//   - shards execute on at most `workers` goroutines, claimed dynamically
//     so uneven shards load-balance;
//   - results are collected BY SHARD INDEX, never by completion order, so
//     any reduction over them is deterministic regardless of the worker
//     count or scheduling;
//   - the first failure cancels the shared context and the error reported
//     is the one from the lowest-numbered failing shard, again independent
//     of scheduling.
//
// Determinism therefore rests on shard numbering alone: a caller that
// fixes its shard count gets bit-identical reductions at any worker
// count.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values greater than zero are
// returned unchanged, anything else defaults to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines (resolved via Workers). The first failure cancels ctx for
// the remaining shards; the returned error is the lowest-numbered
// non-cancellation error recorded — shards that merely observed the
// cancellation (returning ctx.Err()) never mask the root cause, and
// shards skipped by the cancellation before running don't count as
// failures. If the caller's own ctx is cancelled mid-run, Do reports
// that instead of returning nil with work silently skipped.
//
// With workers resolved to 1 — or n < 2 — fn runs inline on the calling
// goroutine, so sequential callers pay no synchronization.
func Do(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	if cancelErr != nil {
		return cancelErr
	}
	// No shard recorded anything, yet the derived ctx may be done: only
	// the caller's own cancellation can cause that (our internal cancel
	// always follows an errs write), so surface it rather than reporting
	// skipped work as success.
	return ctx.Err()
}

// Map runs fn over every index in [0, n) under the Do contract and
// returns the results in index order. On error the partial slice is
// discarded and only the (lowest-shard) error is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SplitRange divides [0, total) into `shards` contiguous half-open
// ranges whose sizes differ by at most one (earlier shards take the
// remainder). It is the canonical shard geometry: both the exhaustive
// phase search and the sharded simulator use it, so a fixed shard count
// always means the same partition.
func SplitRange(total, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	if shards > total {
		shards = total
	}
	if total <= 0 {
		return nil
	}
	out := make([][2]int, shards)
	base, rem := total/shards, total%shards
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}
