package domino

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/phase"
)

func mustApply(t testing.TB, n *logic.Network, asg phase.Assignment) *phase.Result {
	t.Helper()
	r, err := phase.Apply(n, asg)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return r
}

func figure5Network() *logic.Network {
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	f := n.AddOr(n.AddNot(x), n.AddNot(y))
	g := n.AddOr(x, y)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	return n
}

func TestMapFigure5(t *testing.T) {
	n := figure5Network()
	r := mustApply(t, n, phase.Assignment{true, false})
	b, err := Map(r, DefaultLibrary())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if got := b.DominoCellCount(); got != 4 {
		t.Errorf("domino cells = %d, want 4", got)
	}
	if got := b.InverterCount(); got != 1 {
		t.Errorf("inverters = %d, want 1", got)
	}
	if got := b.CellCount(); got != 5 {
		t.Errorf("cell count = %d, want 5", got)
	}
	h := b.WidthHistogram()
	if h["or2"] != 2 || h["and2"] != 2 {
		t.Errorf("width histogram = %v, want 2×or2 + 2×and2", h)
	}
}

func TestMapRejectsInverters(t *testing.T) {
	n := logic.New("inv")
	a := n.AddInput("a")
	n.MarkOutput("f", n.AddNot(a))
	r := &phase.Result{Original: n, Block: n}
	if _, err := Map(r, DefaultLibrary()); err == nil {
		t.Error("Map accepted a block with inverters")
	}
}

func TestLegalizeWidths(t *testing.T) {
	n := logic.New("wide")
	var ins []logic.NodeID
	for i := 0; i < 10; i++ {
		ins = append(ins, n.AddInput(name(i)))
	}
	n.MarkOutput("wideAnd", n.AddAnd(ins...))
	n.MarkOutput("wideOr", n.AddOr(ins...))
	r := mustApply(t, n, phase.AllPositive(2))
	lib := DefaultLibrary() // 4-series, 8-parallel
	b, err := Map(r, lib)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for _, c := range b.Cells {
		limit := lib.MaxSeries
		if c.Kind == logic.KindOr {
			limit = lib.MaxParallel
		}
		if c.Width > limit {
			t.Errorf("cell %s%d exceeds limit %d", c.Kind, c.Width, limit)
		}
	}
	// Function must be preserved through legalization.
	eq, err := logic.Equivalent(r.Block, b.Net)
	if err != nil || !eq {
		t.Errorf("legalize changed function: %v %v", eq, err)
	}
	// 10-input AND with 4-series: 10 -> 3 cells + root = ceil(10/4)=3 then
	// 3<=4 one root: 4 cells total for the AND tree.
	h := b.WidthHistogram()
	if h["and4"] != 2 || h["and2"] != 1 || h["and3"] != 1 {
		t.Errorf("AND tree histogram = %v", h)
	}
}

func TestLoadsAndArea(t *testing.T) {
	n := figure5Network()
	r := mustApply(t, n, phase.Assignment{true, false})
	lib := DefaultLibrary()
	b, err := Map(r, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Block: X=a+b, Y=cd feed both f̄=X·Y and g=X+Y, so each has load
	// 2×InputCap. The outputs drive OutputCap each.
	for _, c := range b.Cells {
		nodeName := b.Net.Node(c.Node).Name
		isOutput := false
		for _, o := range b.Net.Outputs() {
			if o.Driver == c.Node {
				isOutput = true
			}
		}
		if isOutput {
			if c.Load != lib.OutputCap {
				t.Errorf("output cell load = %v, want %v", c.Load, lib.OutputCap)
			}
		} else {
			if c.Load != 2*lib.InputCap {
				t.Errorf("internal cell %q load = %v, want %v", nodeName, c.Load, 2*lib.InputCap)
			}
		}
	}
	// Area: 4 cells of width 2 (base 2 + 2) + 1 inverter = 4*4+1 = 17.
	if got := b.Area(); got != 17 {
		t.Errorf("Area = %v, want 17", got)
	}
}

func TestResizeAffectsLoads(t *testing.T) {
	n := figure5Network()
	r := mustApply(t, n, phase.Assignment{false, false})
	b, err := Map(r, DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	// Upsize the g-output cell; its drivers' loads must grow.
	var gCell int = -1
	for ci, c := range b.Cells {
		for _, o := range b.Net.Outputs() {
			if o.Name == "g" && o.Driver == c.Node {
				gCell = ci
			}
		}
	}
	if gCell < 0 {
		t.Fatal("no g cell")
	}
	loadsBefore := b.NodeLoads()
	b.Cells[gCell].Size = 2
	b.RecomputeLoads()
	loadsAfter := b.NodeLoads()
	grew := 0
	for _, f := range b.Net.Fanins(b.Cells[gCell].Node) {
		if loadsAfter[f] > loadsBefore[f] {
			grew++
		}
	}
	if grew != len(b.Net.Fanins(b.Cells[gCell].Node)) {
		t.Errorf("upsizing did not grow driver loads: %v -> %v", loadsBefore, loadsAfter)
	}
}

func TestAndPenalty(t *testing.T) {
	n := logic.New("pen")
	a := n.AddInput("a")
	b0 := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	n.MarkOutput("and4", n.AddAnd(a, b0, c, d))
	n.MarkOutput("or4", n.AddOr(a, b0, c, d))
	r := mustApply(t, n, phase.AllPositive(2))
	lib := DefaultLibrary()
	lib.AndPenalty = 0.2
	b, err := Map(r, lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range b.Cells {
		switch cell.Kind {
		case logic.KindAnd:
			if math.Abs(cell.Penalty-0.6) > 1e-12 {
				t.Errorf("AND4 penalty = %v, want 0.6", cell.Penalty)
			}
		case logic.KindOr:
			if cell.Penalty != 0 {
				t.Errorf("OR penalty = %v, want 0", cell.Penalty)
			}
		}
	}
}

func TestMapPreservesFunctionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := randomNet(rng, 3+rng.Intn(4), 10+rng.Intn(40), 2)
		asg := make(phase.Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		r := mustApply(t, n, asg)
		lib := DefaultLibrary()
		lib.MaxSeries = 2 + rng.Intn(3)
		lib.MaxParallel = 2 + rng.Intn(5)
		b, err := Map(r, lib)
		if err != nil {
			t.Fatalf("trial %d: Map: %v", trial, err)
		}
		eq, err := logic.Equivalent(r.Block, b.Net)
		if err != nil || !eq {
			t.Fatalf("trial %d: mapping changed function: %v %v", trial, eq, err)
		}
		for _, c := range b.Cells {
			limit := lib.MaxSeries
			if c.Kind == logic.KindOr {
				limit = lib.MaxParallel
			}
			if c.Width > limit || c.Width < 1 {
				t.Fatalf("trial %d: illegal width %d", trial, c.Width)
			}
		}
	}
}

func randomNet(rng *rand.Rand, numInputs, numGates, numOutputs int) *logic.Network {
	n := logic.New("rand")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(name(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(5) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddAnd(pick(), pick(), pick(), pick(), pick()))
		case 2:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 3:
			ids = append(ids, n.AddOr(pick(), pick(), pick()))
		default:
			ids = append(ids, n.AddOr(pick(), pick()))
		}
	}
	for i := 0; i < numOutputs; i++ {
		n.MarkOutput(name(100+i), ids[len(ids)-1-i])
	}
	return n
}

func name(i int) string {
	return "s" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

func BenchmarkMap(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	n := randomNet(rng, 20, 1500, 10)
	asg := make(phase.Assignment, n.NumOutputs())
	r, err := phase.Apply(n, asg)
	if err != nil {
		b.Fatal(err)
	}
	lib := DefaultLibrary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(r, lib); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSharedDriverOutputLoads(t *testing.T) {
	// Two outputs driven by the same cell: the cell sees OutputCap twice.
	n := logic.New("shared")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddAnd(a, b)
	n.MarkOutput("f1", g)
	n.MarkOutput("f2", g)
	r := mustApply(t, n, phase.AllPositive(2))
	lib := DefaultLibrary()
	blk, err := Map(r, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(blk.Cells))
	}
	if got, want := blk.Cells[0].Load, 2*lib.OutputCap; got != want {
		t.Errorf("shared driver load = %v, want %v", got, want)
	}
}
