// Package domino maps an inverter-free logic block onto domino cells and
// provides the area, capacitance and gate-type-penalty models the paper's
// power estimate Σ Si·Ci·Pi is built on (Sections 2 and 4.2).
//
// A domino cell (Figure 1 of the paper) is a dynamic NMOS pull-down
// network with a precharge/evaluate clock and a static output buffer. AND
// cells stack their inputs in series — which bounds usable fanin (the
// MaxSeries limit) and makes wide ANDs slower, motivating the penalty Pi.
// OR cells place inputs in parallel, bounded by MaxParallel.
package domino

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/phase"
)

// Library describes the domino cell family available to the mapper and
// the technology cost parameters.
type Library struct {
	// MaxSeries bounds AND-cell fanin (series NMOS stack height).
	MaxSeries int
	// MaxParallel bounds OR-cell fanin (parallel branch count).
	MaxParallel int
	// AndPenalty is the additional per-series-transistor penalty Pi of
	// AND-type cells beyond the first; OR cells have penalty 0. The
	// paper's experiments set the penalty to zero (pure switching
	// minimization); timing-aware flows raise it.
	AndPenalty float64
	// BaseCellArea is the area of a minimum domino cell (dynamic stage +
	// output buffer) in standard-cell units; each additional input adds
	// PerInputArea.
	BaseCellArea float64
	PerInputArea float64
	// InverterArea is the area of a boundary static inverter.
	InverterArea float64
	// InputCap is the capacitance one cell input presents to its driver;
	// WireCap is a fixed per-net wiring capacitance; OutputCap is the
	// load a primary output or boundary inverter presents.
	InputCap  float64
	WireCap   float64
	OutputCap float64
}

// DefaultLibrary returns the cost model used throughout the reproduction:
// unit input caps, the paper's experimental setting of zero AND penalty,
// and a 4-series / 8-parallel cell family typical of domino libraries.
func DefaultLibrary() Library {
	return Library{
		MaxSeries:    4,
		MaxParallel:  8,
		AndPenalty:   0,
		BaseCellArea: 2,
		PerInputArea: 1,
		InverterArea: 1,
		InputCap:     1,
		WireCap:      0,
		OutputCap:    1,
	}
}

// Cell is one mapped domino cell.
type Cell struct {
	// Node is the mapped network node this cell drives.
	Node logic.NodeID
	// Kind is logic.KindAnd or logic.KindOr.
	Kind logic.Kind
	// Width is the cell fanin (series stack height for AND, parallel
	// branch count for OR).
	Width int
	// Area in standard-cell units.
	Area float64
	// Load is the output capacitance Ci the cell drives (fanin pins of
	// consumers plus wire and output loads).
	Load float64
	// Penalty is the gate-type penalty Pi.
	Penalty float64
	// Size is the drive-strength multiplier assigned by timing resizing
	// (1 = minimum size). Upsizing scales the cell's area and the input
	// capacitance it presents to its drivers.
	Size float64
}

// Block is a technology-mapped domino block.
type Block struct {
	// Phase carries the boundary metadata (which inputs are inverted,
	// which outputs carry boundary inverters).
	Phase *phase.Result
	// Net is the width-legalized inverter-free network the cells
	// implement. Its interface matches Phase.Block's.
	Net *logic.Network
	// Cells lists the domino cells; CellOf maps a Net node to its index
	// in Cells, or -1.
	Cells  []Cell
	CellOf []int

	lib Library
}

// Library returns the library the block was mapped with.
func (b *Block) Library() Library { return b.lib }

// Map legalizes the block network against the library's width limits and
// assigns one domino cell per gate. Buffers are absorbed (domino cells
// already buffer their outputs).
func Map(r *phase.Result, lib Library) (*Block, error) {
	if lib.MaxSeries < 2 || lib.MaxParallel < 2 {
		return nil, fmt.Errorf("domino: library width limits must be >= 2")
	}
	if r.Block.HasInverters() {
		return nil, fmt.Errorf("domino: block contains inverters; phase assignment incomplete")
	}
	net, err := legalize(r.Block, lib)
	if err != nil {
		return nil, err
	}
	b := &Block{Phase: r, Net: net, lib: lib, CellOf: make([]int, net.NumNodes())}
	for i := range b.CellOf {
		b.CellOf[i] = -1
	}
	for i := 0; i < net.NumNodes(); i++ {
		id := logic.NodeID(i)
		kind := net.Kind(id)
		if kind != logic.KindAnd && kind != logic.KindOr {
			continue
		}
		width := len(net.Fanins(id))
		cell := Cell{
			Node:  id,
			Kind:  kind,
			Width: width,
			Area:  lib.BaseCellArea + float64(width)*lib.PerInputArea,
			Size:  1,
		}
		if kind == logic.KindAnd {
			cell.Penalty = lib.AndPenalty * float64(width-1)
		}
		b.CellOf[i] = len(b.Cells)
		b.Cells = append(b.Cells, cell)
	}
	b.RecomputeLoads()
	return b, nil
}

// legalize decomposes gates wider than the library limits into balanced
// trees of legal-width gates of the same kind.
func legalize(n *logic.Network, lib Library) (*logic.Network, error) {
	out := logic.New(n.Name + "_mapped")
	remap := make([]logic.NodeID, n.NumNodes())
	for _, id := range n.Inputs() {
		remap[id] = out.AddInput(n.Node(id).Name)
	}
	var split func(kind logic.Kind, fs []logic.NodeID, limit int) logic.NodeID
	split = func(kind logic.Kind, fs []logic.NodeID, limit int) logic.NodeID {
		if len(fs) == 1 {
			return fs[0]
		}
		if len(fs) <= limit {
			return out.AddGate(kind, fs...)
		}
		var groups []logic.NodeID
		for start := 0; start < len(fs); start += limit {
			end := start + limit
			if end > len(fs) {
				end = len(fs)
			}
			chunk := fs[start:end]
			if len(chunk) == 1 {
				groups = append(groups, chunk[0])
			} else {
				groups = append(groups, out.AddGate(kind, chunk...))
			}
		}
		return split(kind, groups, limit)
	}
	for i := 0; i < n.NumNodes(); i++ {
		id := logic.NodeID(i)
		node := n.Node(id)
		switch node.Kind {
		case logic.KindInput:
			continue
		case logic.KindConst0:
			remap[i] = out.AddConst(false)
		case logic.KindConst1:
			remap[i] = out.AddConst(true)
		case logic.KindBuf:
			remap[i] = remap[node.Fanins[0]]
		case logic.KindAnd, logic.KindOr:
			limit := lib.MaxSeries
			if node.Kind == logic.KindOr {
				limit = lib.MaxParallel
			}
			fs := make([]logic.NodeID, len(node.Fanins))
			for j, f := range node.Fanins {
				fs[j] = remap[f]
			}
			remap[i] = split(node.Kind, fs, limit)
		case logic.KindNot, logic.KindXor:
			return nil, fmt.Errorf("domino: illegal %s in inverter-free block", node.Kind)
		}
		if node.Name != "" && remap[i] != logic.InvalidNode {
			if out.Node(remap[i]).Name == "" {
				out.SetName(remap[i], node.Name)
			}
		}
	}
	for _, o := range n.Outputs() {
		out.MarkOutput(o.Name, remap[o.Driver])
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("domino: legalize produced invalid network: %w", err)
	}
	return out, nil
}

// RecomputeLoads refreshes every cell's Load from the current cell sizes:
// a cell's output drives one InputCap × consumer-size per consuming pin,
// plus WireCap, plus OutputCap per primary output (or boundary inverter)
// it feeds.
func (b *Block) RecomputeLoads() {
	lib := b.lib
	load := make([]float64, b.Net.NumNodes())
	for i := range load {
		load[i] = lib.WireCap
	}
	for i := 0; i < b.Net.NumNodes(); i++ {
		id := logic.NodeID(i)
		consumerSize := 1.0
		if ci := b.CellOf[i]; ci >= 0 {
			consumerSize = b.Cells[ci].Size
		}
		for _, f := range b.Net.Fanins(id) {
			load[f] += lib.InputCap * consumerSize
		}
	}
	for _, o := range b.Net.Outputs() {
		load[o.Driver] += lib.OutputCap
	}
	for ci := range b.Cells {
		b.Cells[ci].Load = load[b.Cells[ci].Node]
	}
}

// NodeLoads returns the capacitive load on every Net node under current
// sizing (used by the power estimator for boundary inverters and
// input-driven nets).
func (b *Block) NodeLoads() []float64 {
	lib := b.lib
	load := make([]float64, b.Net.NumNodes())
	for i := range load {
		load[i] = lib.WireCap
	}
	for i := 0; i < b.Net.NumNodes(); i++ {
		id := logic.NodeID(i)
		consumerSize := 1.0
		if ci := b.CellOf[i]; ci >= 0 {
			consumerSize = b.Cells[ci].Size
		}
		for _, f := range b.Net.Fanins(id) {
			load[f] += lib.InputCap * consumerSize
		}
	}
	for _, o := range b.Net.Outputs() {
		load[o.Driver] += lib.OutputCap
	}
	return load
}

// DominoCellCount returns the number of domino cells.
func (b *Block) DominoCellCount() int { return len(b.Cells) }

// InverterCount returns the number of boundary static inverters.
func (b *Block) InverterCount() int {
	return b.Phase.InputInverterCount() + b.Phase.OutputInverterCount()
}

// CellCount returns the total standard-cell count: domino cells plus
// boundary inverters. This is the "Size" column of the paper's tables.
func (b *Block) CellCount() int { return b.DominoCellCount() + b.InverterCount() }

// Area returns the total area in standard-cell units under current
// sizing.
func (b *Block) Area() float64 {
	a := 0.0
	for i := range b.Cells {
		a += b.Cells[i].Area * b.Cells[i].Size
	}
	a += float64(b.InverterCount()) * b.lib.InverterArea
	return a
}

// WidthHistogram returns cell counts keyed by (kind, width), a quick
// structural fingerprint used in tests and reports.
func (b *Block) WidthHistogram() map[string]int {
	h := make(map[string]int)
	for i := range b.Cells {
		key := fmt.Sprintf("%s%d", b.Cells[i].Kind, b.Cells[i].Width)
		h[key]++
	}
	return h
}
