package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestRngCloneMatchesMathRand locks the devirtualized generator to the
// stdlib sequence the scalar oracle draws from: for a spread of seeds —
// including zero, negatives, and values beyond int32 that exercise the
// seed reduction — every draw of a long run must match
// rand.New(rand.NewSource(seed)).Uint64() exactly. The run length
// crosses the 607-word register boundary several times so the feedback
// wrap-around is covered, not just the freshly seeded prefix.
func TestRngCloneMatchesMathRand(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, 42, 89482311,
		int64(int32max), int64(int32max) + 1, -int64(int32max),
		math.MaxInt64, math.MinInt64, 0x51DE, -987654321,
	}
	for _, seed := range seeds {
		want := rand.New(rand.NewSource(seed))
		got := newRngClone(seed)
		for i := 0; i < 3*rngLen; i++ {
			w, g := want.Uint64(), got.uint64n()
			if w != g {
				t.Fatalf("seed %d draw %d: clone %#x, math/rand %#x", seed, i, g, w)
			}
		}
	}
}
