package sim

import (
	"context"
	"math/bits"

	"repro/internal/domino"
	"repro/internal/logic"
)

// fastBlockWords is the block size with a hand-unrolled kernel; it is
// also the default, so KernelAuto lands here.
const fastBlockWords = 8

// The [8]uint64 block primitives below are the unrolled counterparts of
// logic's blocked word helpers: each recomputes one gate's 8-word block
// in place and returns the OR of the changed destination bits. Writing
// the eight lanes out longhand matters — gc does not unroll loops, and
// the straight-line form keeps the eight independent word chains in
// flight instead of paying loop control per word.

func and8(dst, a, b *[8]uint64) uint64 {
	v0, v1, v2, v3 := a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
	v4, v5, v6, v7 := a[4]&b[4], a[5]&b[5], a[6]&b[6], a[7]&b[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func or8(dst, a, b *[8]uint64) uint64 {
	v0, v1, v2, v3 := a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
	v4, v5, v6, v7 := a[4]|b[4], a[5]|b[5], a[6]|b[6], a[7]|b[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func xor8(dst, a, b *[8]uint64) uint64 {
	v0, v1, v2, v3 := a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
	v4, v5, v6, v7 := a[4]^b[4], a[5]^b[5], a[6]^b[6], a[7]^b[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func not8(dst, a *[8]uint64) uint64 {
	v0, v1, v2, v3 := ^a[0], ^a[1], ^a[2], ^a[3]
	v4, v5, v6, v7 := ^a[4], ^a[5], ^a[6], ^a[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func copy8(dst, a *[8]uint64) uint64 {
	d := (dst[0] ^ a[0]) | (dst[1] ^ a[1]) | (dst[2] ^ a[2]) | (dst[3] ^ a[3]) |
		(dst[4] ^ a[4]) | (dst[5] ^ a[5]) | (dst[6] ^ a[6]) | (dst[7] ^ a[7])
	*dst = *a
	return d
}

// store8 diff-stores an accumulated n-ary result.
func store8(dst, t *[8]uint64) uint64 {
	d := (dst[0] ^ t[0]) | (dst[1] ^ t[1]) | (dst[2] ^ t[2]) | (dst[3] ^ t[3]) |
		(dst[4] ^ t[4]) | (dst[5] ^ t[5]) | (dst[6] ^ t[6]) | (dst[7] ^ t[7])
	*dst = *t
	return d
}

// and38/or38/and48/or48 specialize the common narrow wide-gate widths
// (domino cells are mostly 2–4 inputs), skipping the tmp-accumulate +
// diff-store round trip of the general n-ary path.

func and38(dst, a, b, c *[8]uint64) uint64 {
	v0, v1, v2, v3 := a[0]&b[0]&c[0], a[1]&b[1]&c[1], a[2]&b[2]&c[2], a[3]&b[3]&c[3]
	v4, v5, v6, v7 := a[4]&b[4]&c[4], a[5]&b[5]&c[5], a[6]&b[6]&c[6], a[7]&b[7]&c[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func or38(dst, a, b, c *[8]uint64) uint64 {
	v0, v1, v2, v3 := a[0]|b[0]|c[0], a[1]|b[1]|c[1], a[2]|b[2]|c[2], a[3]|b[3]|c[3]
	v4, v5, v6, v7 := a[4]|b[4]|c[4], a[5]|b[5]|c[5], a[6]|b[6]|c[6], a[7]|b[7]|c[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func and48(dst, a, b, c, e *[8]uint64) uint64 {
	v0, v1 := a[0]&b[0]&c[0]&e[0], a[1]&b[1]&c[1]&e[1]
	v2, v3 := a[2]&b[2]&c[2]&e[2], a[3]&b[3]&c[3]&e[3]
	v4, v5 := a[4]&b[4]&c[4]&e[4], a[5]&b[5]&c[5]&e[5]
	v6, v7 := a[6]&b[6]&c[6]&e[6], a[7]&b[7]&c[7]&e[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

func or48(dst, a, b, c, e *[8]uint64) uint64 {
	v0, v1 := a[0]|b[0]|c[0]|e[0], a[1]|b[1]|c[1]|e[1]
	v2, v3 := a[2]|b[2]|c[2]|e[2], a[3]|b[3]|c[3]|e[3]
	v4, v5 := a[4]|b[4]|c[4]|e[4], a[5]|b[5]|c[5]|e[5]
	v6, v7 := a[6]|b[6]|c[6]|e[6], a[7]|b[7]|c[7]|e[7]
	d := (dst[0] ^ v0) | (dst[1] ^ v1) | (dst[2] ^ v2) | (dst[3] ^ v3) |
		(dst[4] ^ v4) | (dst[5] ^ v5) | (dst[6] ^ v6) | (dst[7] ^ v7)
	dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	dst[4], dst[5], dst[6], dst[7] = v4, v5, v6, v7
	return d
}

// count8 folds one full block of a counted node into the per-window
// weighted sums and returns the block's total transition count. The
// adds into sums[j] happen in the caller's source order (cells
// ascending, then input inverters, then negated outputs) — the float
// sequence window.fold produces per window. fold skips zero counts,
// but the adds here are unconditional: the sums only ever accumulate
// non-negative products, so they are never −0.0, and adding a zero
// product to a non-negative IEEE double in round-to-nearest is a
// bit-exact identity — the branchless form produces the same bits
// while letting the eight popcount chains pipeline.
func count8(w *[8]uint64, weight float64, sums *[8]float64) int64 {
	c0, c1 := bits.OnesCount64(w[0]), bits.OnesCount64(w[1])
	c2, c3 := bits.OnesCount64(w[2]), bits.OnesCount64(w[3])
	c4, c5 := bits.OnesCount64(w[4]), bits.OnesCount64(w[5])
	c6, c7 := bits.OnesCount64(w[6]), bits.OnesCount64(w[7])
	sums[0] += weight * float64(c0)
	sums[1] += weight * float64(c1)
	sums[2] += weight * float64(c2)
	sums[3] += weight * float64(c3)
	sums[4] += weight * float64(c4)
	sums[5] += weight * float64(c5)
	sums[6] += weight * float64(c6)
	sums[7] += weight * float64(c7)
	return int64(c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7)
}

// count8d is count8 over eight freshly computed diff words, passed in
// registers so the caller skips materializing a block on the stack.
func count8d(d0, d1, d2, d3, d4, d5, d6, d7 uint64, weight float64, sums *[8]float64) int64 {
	c0, c1 := bits.OnesCount64(d0), bits.OnesCount64(d1)
	c2, c3 := bits.OnesCount64(d2), bits.OnesCount64(d3)
	c4, c5 := bits.OnesCount64(d4), bits.OnesCount64(d5)
	c6, c7 := bits.OnesCount64(d6), bits.OnesCount64(d7)
	sums[0] += weight * float64(c0)
	sums[1] += weight * float64(c1)
	sums[2] += weight * float64(c2)
	sums[3] += weight * float64(c3)
	sums[4] += weight * float64(c4)
	sums[5] += weight * float64(c5)
	sums[6] += weight * float64(c6)
	sums[7] += weight * float64(c7)
	return int64(c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7)
}

// Gate opcodes for the precompiled gate table, ordered so that every op
// ≤ opBuf reads at most the two inline fanins f0/f1. Widths 3 and 4 of
// And/Or — the domino cell widths — get dedicated ops; opAndN/opOrN/
// opXorN cover the rest via the flat fanin array.
const (
	opAnd2 = iota
	opOr2
	opXor2
	opNot
	opBuf
	opAnd3
	opOr3
	opAnd4
	opOr4
	opAndN
	opOrN
	opXorN
)

// fastGate is one row of the blocked kernel's precompiled gate table: a
// flat, cache-friendly encoding of (node, kind, fanins, cell index)
// that replaces the per-node Node()/Kind()/CellOf lookups in the hot
// loop. For unary ops f1 == f0 so the two-flag gating test is uniform;
// wide gates (> 2 fanins) index the shared flat fanin array.
type fastGate struct {
	dst    int32
	f0, f1 int32
	f2, f3 int32 // third/fourth fanin for opAnd3..opOr4 (else f0)
	cell   int32 // index into Cells, or -1
	fanOff int32 // into blockedPrecomp.fanins, gates wider than 2 only
	nfan   int32
	op     uint8
}

// blockedPrecomp is the read-only, shard-independent state of the
// blocked kernel, built once per Run and shared by every shard
// goroutine: the compiled Bernoulli plans, the phase input mapping, and
// the gate table. cellsMonotone records that domino.Map emitted Cells
// in ascending node order — the property that lets the fast path fold
// cell counting into the gate pass without breaking fold's float order
// (it always holds for Map's output; the generic path stays the
// fallback if it ever stops holding).
type blockedPrecomp struct {
	plans         []bernoulliPlan
	allSimple     bool // every input draws exactly one word (e.g. p = 0.5)
	srcIdx        []int32
	invMask       []uint64
	inputNode     []int32
	gates         []fastGate
	fanins        []int32
	cellsMonotone bool
	fastOK        bool // cellsMonotone and every InputPos is in range
}

func newBlockedPrecomp(b *domino.Block, probs []float64) *blockedPrecomp {
	net := b.Net
	pc := &blockedPrecomp{
		plans:         makeBernoulliPlans(probs),
		allSimple:     true,
		cellsMonotone: true,
	}
	for i := range pc.plans {
		if pc.plans[i].n != 1 {
			pc.allSimple = false
			break
		}
	}
	for ci := 1; ci < len(b.Cells); ci++ {
		if b.Cells[ci].Node <= b.Cells[ci-1].Node {
			pc.cellsMonotone = false
			break
		}
	}
	inputIDs := net.Inputs()
	pc.srcIdx = make([]int32, len(inputIDs))
	pc.invMask = make([]uint64, len(inputIDs))
	pc.inputNode = make([]int32, len(inputIDs))
	inputOK := true
	for pos, bi := range b.Phase.Inputs {
		pc.srcIdx[pos] = int32(bi.InputPos)
		if bi.Inverted {
			pc.invMask[pos] = ^uint64(0)
		}
		pc.inputNode[pos] = int32(inputIDs[pos])
		if bi.InputPos < 0 || bi.InputPos >= len(probs) {
			inputOK = false
		}
	}
	pc.fastOK = pc.cellsMonotone && inputOK
	numGates, wideFanins := 0, 0
	for i := 0; i < net.NumNodes(); i++ {
		node := net.Node(logic.NodeID(i))
		if node.Kind.IsGate() {
			numGates++
			if len(node.Fanins) > 2 {
				wideFanins += len(node.Fanins)
			}
		}
	}
	pc.gates = make([]fastGate, 0, numGates)
	pc.fanins = make([]int32, 0, wideFanins)
	for i := 0; i < net.NumNodes(); i++ {
		node := net.Node(logic.NodeID(i))
		if !node.Kind.IsGate() {
			continue
		}
		fan := node.Fanins
		g := fastGate{dst: int32(i), cell: int32(b.CellOf[i]), nfan: int32(len(fan))}
		g.f0 = int32(fan[0])
		g.f1, g.f2, g.f3 = g.f0, g.f0, g.f0
		if len(fan) > 1 {
			g.f1 = int32(fan[1])
		}
		if len(fan) > 2 {
			g.f2 = int32(fan[2])
		}
		if len(fan) > 3 {
			g.f3 = int32(fan[3])
		}
		switch node.Kind {
		case logic.KindNot:
			g.op = opNot
		case logic.KindBuf:
			g.op = opBuf
		case logic.KindAnd:
			switch len(fan) {
			case 3:
				g.op = opAnd3
			case 4:
				g.op = opAnd4
			default:
				g.op = opAnd2
				if len(fan) > 2 {
					g.op = opAndN
				}
			}
		case logic.KindOr:
			switch len(fan) {
			case 3:
				g.op = opOr3
			case 4:
				g.op = opOr4
			default:
				g.op = opOr2
				if len(fan) > 2 {
					g.op = opOrN
				}
			}
		default:
			g.op = opXor2
			if len(fan) > 2 {
				g.op = opXorN
			}
		}
		if len(fan) > 2 {
			// All wide gates — including the specialized widths — keep a
			// flat fanin list for the gating scan and the tail path.
			g.fanOff = int32(len(pc.fanins))
			for _, f := range fan {
				pc.fanins = append(pc.fanins, int32(f))
			}
		}
		pc.gates = append(pc.gates, g)
	}
	return pc
}

// runShardBlocked8 is the production blocked kernel: the 8-word block
// path with every per-window loop fused and unrolled. Relative to the
// generic path it additionally
//
//   - applies the phase mapping as a branch-free unrolled copy: each
//     position's block is its source input's staged block XOR an
//     all-ones/all-zeros inversion mask, diffed against the previous
//     contents to seed the gating flags;
//   - draws p=0.5 inputs (one digit) with a single inlined generator
//     call, and when every input is p=0.5 drops the per-draw plan
//     dispatch entirely;
//   - walks the precompiled gate table (pc.gates) instead of the
//     Network's node array, so the hot loop reads flat rows — opcode,
//     up to four inline fanins, cell index — with no per-gate pointer
//     chasing, and the node state is a [][8]uint64 so every block access
//     is one bounds check on a scaled index;
//   - counts each domino cell inside the gate pass, right after (or
//     instead of, when gated) its evaluation, while its block is hot —
//     legal because domino.Map appends Cells in ascending node order,
//     so the fused pass meets fold's cells-ascending float order for
//     every window (pc.fastOK asserts this; the dispatcher falls back
//     to the generic path if it ever stops holding);
//   - keeps eight independent per-window float accumulators, so the
//     batch-means sums pipeline instead of serializing on FP-add
//     latency as the one-window fold does.
//
// Gating follows logic.BlockedEval exactly: a gate whose fanin blocks
// all carry an unchanged flag is skipped (its stored words are provably
// the correct value), and skipped cells are still counted from their
// stored words — gating elides evaluation, never measurement. Blocks
// that are not full (a tail shorter than eight windows, or a partial
// last window) take a scalar-loop variant of the same passes over live
// windows only; both produce the shard totals, Welford samples, and
// gating counters that runShardBlockedGeneric produces, byte for byte
// (TestBlockedFastMatchesGeneric).
func runShardBlocked8(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, pc *blockedPrecomp, seed int64, vectors int) (*shardResult, error) {
	const bw = fastBlockWords
	net := b.Net
	numNodes := net.NumNodes()
	plans := pc.plans
	nIn := len(plans)

	rng := newRngClone(seed)

	// ws[id] is node id's block.
	ws := make([][bw]uint64, numNodes)
	changed := make([]bool, numNodes)
	origWords := make([]uint64, nIn*bw)
	prevBit := make([]uint64, len(pc.inputNode))
	sr := newShardResult(b)
	var evals, skips int64
	var sums [bw]float64

	// Constant blocks are set once; their change flags stay false (the
	// first block evaluates every gate regardless, exactly as
	// BlockedEval's warm-up call does).
	for i := 0; i < numNodes; i++ {
		if net.Kind(logic.NodeID(i)) == logic.KindConst1 {
			for j := range ws[i] {
				ws[i][j] = ^uint64(0)
			}
		}
	}

	numWin := (vectors + simWindow - 1) / simWindow
	for base := 0; base < numWin; base += bw {
		if err := pollCancel(ctx, cfg.Budget); err != nil {
			return nil, err
		}
		nw := numWin - base
		if nw > bw {
			nw = bw
		}
		first := base == 0

		// Stage 1: draw window-major, inputs in order within each window
		// — the exact packInputs consumption order — into the staging
		// buffer (input-major rows, so the apply pass reads each source
		// block contiguously). Drawing p=0.5 inputs (one digit) with a
		// single inlined generator call skips the plan dispatch; when
		// every input is p=0.5 the dispatch disappears entirely.
		if pc.allSimple {
			for j := 0; j < nw; j++ {
				for i := 0; i < nIn; i++ {
					origWords[i*bw+j] = rng.uint64n()
				}
			}
		} else {
			for j := 0; j < nw; j++ {
				for i := 0; i < nIn; i++ {
					pl := &plans[i]
					switch pl.n {
					case 1:
						origWords[i*bw+j] = rng.uint64n()
					case 0:
						origWords[i*bw+j] = pl.constW
					default:
						origWords[i*bw+j] = pl.draw(rng)
					}
				}
			}
		}

		// Stage 2: phase apply — each block position copies its source
		// input's block with the inversion folded in as an XOR mask
		// (branch-free), diffing against the previous contents to seed
		// the gating flags. One PI may fan out to two positions after
		// phase separation, so this runs per position, not per input.
		if nw == bw {
			for pos, id := range pc.inputNode {
				src := (*[bw]uint64)(origWords[int(pc.srcIdx[pos])*bw:])
				m := pc.invMask[pos]
				w := &ws[id]
				v0, v1, v2, v3 := src[0]^m, src[1]^m, src[2]^m, src[3]^m
				v4, v5, v6, v7 := src[4]^m, src[5]^m, src[6]^m, src[7]^m
				d := (w[0] ^ v0) | (w[1] ^ v1) | (w[2] ^ v2) | (w[3] ^ v3) |
					(w[4] ^ v4) | (w[5] ^ v5) | (w[6] ^ v6) | (w[7] ^ v7)
				w[0], w[1], w[2], w[3] = v0, v1, v2, v3
				w[4], w[5], w[6], w[7] = v4, v5, v6, v7
				changed[id] = d != 0 || first
			}
		} else {
			// Tail: only live words are written; dead slots keep the
			// previous block's values, exactly like the generic path.
			for pos, id := range pc.inputNode {
				src := origWords[int(pc.srcIdx[pos])*bw:]
				m := pc.invMask[pos]
				w := &ws[id]
				var d uint64
				for j := 0; j < nw; j++ {
					v := src[j] ^ m
					d |= w[j] ^ v
					w[j] = v
				}
				changed[id] = d != 0 || first
			}
		}

		if nw == bw && vectors >= (base+bw)*simWindow {
			// ---- Full block: eight complete 64-lane windows. ----

			// Gate-table walk, ascending by node, cells counted in place.
			sums = [bw]float64{}
			var tmp [bw]uint64
			for gi := range pc.gates {
				g := &pc.gates[gi]
				dst := &ws[g.dst]
				eval := first || changed[g.f0] || changed[g.f1]
				if !eval && g.nfan > 2 {
					for _, f := range pc.fanins[g.fanOff+2 : g.fanOff+g.nfan] {
						if changed[f] {
							eval = true
							break
						}
					}
				}
				if eval {
					evals++
					var d uint64
					switch g.op {
					case opAnd2:
						d = and8(dst, &ws[g.f0], &ws[g.f1])
					case opOr2:
						d = or8(dst, &ws[g.f0], &ws[g.f1])
					case opXor2:
						d = xor8(dst, &ws[g.f0], &ws[g.f1])
					case opNot:
						d = not8(dst, &ws[g.f0])
					case opBuf:
						d = copy8(dst, &ws[g.f0])
					case opAnd3:
						d = and38(dst, &ws[g.f0], &ws[g.f1], &ws[g.f2])
					case opOr3:
						d = or38(dst, &ws[g.f0], &ws[g.f1], &ws[g.f2])
					case opAnd4:
						d = and48(dst, &ws[g.f0], &ws[g.f1], &ws[g.f2], &ws[g.f3])
					case opOr4:
						d = or48(dst, &ws[g.f0], &ws[g.f1], &ws[g.f2], &ws[g.f3])
					default: // opAndN, opOrN, opXorN
						fans := pc.fanins[g.fanOff : g.fanOff+g.nfan]
						tmp = ws[fans[0]]
						switch g.op {
						case opAndN:
							for _, f := range fans[1:] {
								a := &ws[f]
								tmp[0] &= a[0]
								tmp[1] &= a[1]
								tmp[2] &= a[2]
								tmp[3] &= a[3]
								tmp[4] &= a[4]
								tmp[5] &= a[5]
								tmp[6] &= a[6]
								tmp[7] &= a[7]
							}
						case opOrN:
							for _, f := range fans[1:] {
								a := &ws[f]
								tmp[0] |= a[0]
								tmp[1] |= a[1]
								tmp[2] |= a[2]
								tmp[3] |= a[3]
								tmp[4] |= a[4]
								tmp[5] |= a[5]
								tmp[6] |= a[6]
								tmp[7] |= a[7]
							}
						default:
							for _, f := range fans[1:] {
								a := &ws[f]
								tmp[0] ^= a[0]
								tmp[1] ^= a[1]
								tmp[2] ^= a[2]
								tmp[3] ^= a[3]
								tmp[4] ^= a[4]
								tmp[5] ^= a[5]
								tmp[6] ^= a[6]
								tmp[7] ^= a[7]
							}
						}
						d = store8(dst, &tmp)
					}
					changed[g.dst] = d != 0
				} else {
					skips++
					changed[g.dst] = false
				}
				if ci := g.cell; ci >= 0 {
					// count8's body, inlined by hand: one call per cell
					// per block is measurable at this loop's density.
					weight := p.weights[ci]
					c0, c1 := bits.OnesCount64(dst[0]), bits.OnesCount64(dst[1])
					c2, c3 := bits.OnesCount64(dst[2]), bits.OnesCount64(dst[3])
					c4, c5 := bits.OnesCount64(dst[4]), bits.OnesCount64(dst[5])
					c6, c7 := bits.OnesCount64(dst[6]), bits.OnesCount64(dst[7])
					sums[0] += weight * float64(c0)
					sums[1] += weight * float64(c1)
					sums[2] += weight * float64(c2)
					sums[3] += weight * float64(c3)
					sums[4] += weight * float64(c4)
					sums[5] += weight * float64(c5)
					sums[6] += weight * float64(c6)
					sums[7] += weight * float64(c7)
					sr.cellTrans[ci] += int64(c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7)
				}
			}

			// Input inverters: toggle words with the carry chained
			// across words and blocks; the shard's very first lane has
			// no history.
			for _, pos := range p.invPos {
				w := &ws[pc.inputNode[pos]]
				d0 := w[0] ^ (w[0]<<1 | prevBit[pos])
				d1 := w[1] ^ (w[1]<<1 | w[0]>>63)
				d2 := w[2] ^ (w[2]<<1 | w[1]>>63)
				d3 := w[3] ^ (w[3]<<1 | w[2]>>63)
				d4 := w[4] ^ (w[4]<<1 | w[3]>>63)
				d5 := w[5] ^ (w[5]<<1 | w[4]>>63)
				d6 := w[6] ^ (w[6]<<1 | w[5]>>63)
				d7 := w[7] ^ (w[7]<<1 | w[6]>>63)
				prevBit[pos] = w[7] >> 63
				if first {
					d0 &^= 1
				}
				sr.inputInvTrans[pos] += count8d(d0, d1, d2, d3, d4, d5, d6, d7, p.invLoad[pos], &sums)
			}

			for _, oi := range p.negOut {
				sr.outputInvTrans[oi] += count8(&ws[p.drivers[oi]], p.outCap, &sums)
			}

			for j := 0; j < bw; j++ {
				sr.perCycle.Add(sums[j] / float64(simWindow))
			}
		} else {
			// ---- Tail block: fewer than eight windows and/or a
			// partial last window. At most one per shard; scalar loops
			// over the live windows, same passes, same order. ----
			var masksA [bw]uint64
			var laneA [bw]int
			for j := 0; j < nw; j++ {
				lanes := vectors - (base+j)*simWindow
				if lanes > simWindow {
					lanes = simWindow
				}
				laneA[j] = lanes
				masksA[j] = ^uint64(0) >> (64 - uint(lanes))
			}

			var tmp [bw]uint64
			for gi := range pc.gates {
				g := &pc.gates[gi]
				dst := ws[g.dst][:]
				eval := first || changed[g.f0] || changed[g.f1]
				if !eval && g.nfan > 2 {
					for _, f := range pc.fanins[g.fanOff+2 : g.fanOff+g.nfan] {
						if changed[f] {
							eval = true
							break
						}
					}
				}
				if !eval {
					skips++
					changed[g.dst] = false
					continue
				}
				evals++
				var d uint64
				switch g.op {
				case opNot:
					a := ws[g.f0][:]
					for j := 0; j < nw; j++ {
						v := ^a[j]
						d |= dst[j] ^ v
						dst[j] = v
					}
				case opBuf:
					a := ws[g.f0][:]
					for j := 0; j < nw; j++ {
						v := a[j]
						d |= dst[j] ^ v
						dst[j] = v
					}
				case opAnd2:
					a, bb := ws[g.f0][:], ws[g.f1][:]
					for j := 0; j < nw; j++ {
						v := a[j] & bb[j]
						d |= dst[j] ^ v
						dst[j] = v
					}
				case opOr2:
					a, bb := ws[g.f0][:], ws[g.f1][:]
					for j := 0; j < nw; j++ {
						v := a[j] | bb[j]
						d |= dst[j] ^ v
						dst[j] = v
					}
				case opXor2:
					a, bb := ws[g.f0][:], ws[g.f1][:]
					for j := 0; j < nw; j++ {
						v := a[j] ^ bb[j]
						d |= dst[j] ^ v
						dst[j] = v
					}
				default: // all wide ops, specialized widths included
					fans := pc.fanins[g.fanOff : g.fanOff+g.nfan]
					a := ws[fans[0]][:]
					copy(tmp[:nw], a[:nw])
					for _, f := range fans[1:] {
						wf := ws[f][:]
						switch g.op {
						case opAndN, opAnd3, opAnd4:
							for j := 0; j < nw; j++ {
								tmp[j] &= wf[j]
							}
						case opOrN, opOr3, opOr4:
							for j := 0; j < nw; j++ {
								tmp[j] |= wf[j]
							}
						default:
							for j := 0; j < nw; j++ {
								tmp[j] ^= wf[j]
							}
						}
					}
					for j := 0; j < nw; j++ {
						d |= dst[j] ^ tmp[j]
						dst[j] = tmp[j]
					}
				}
				changed[g.dst] = d != 0
			}

			for j := 0; j < nw; j++ {
				sums[j] = 0
			}
			for ci := range b.Cells {
				w := ws[b.Cells[ci].Node][:]
				var tot int64
				for j := 0; j < nw; j++ {
					if v := w[j] & masksA[j]; v != 0 {
						c := bits.OnesCount64(v)
						sums[j] += p.weights[ci] * float64(c)
						tot += int64(c)
					}
				}
				sr.cellTrans[ci] += tot
			}
			for _, pos := range p.invPos {
				w := ws[pc.inputNode[pos]][:]
				carry := prevBit[pos]
				load := p.invLoad[pos]
				var tot int64
				for j := 0; j < nw; j++ {
					v := w[j]
					diff := (v ^ (v<<1 | carry)) & masksA[j]
					if first && j == 0 {
						diff &^= 1
					}
					carry = (v >> uint(laneA[j]-1)) & 1
					if diff != 0 {
						c := bits.OnesCount64(diff)
						sums[j] += load * float64(c)
						tot += int64(c)
					}
				}
				prevBit[pos] = carry
				sr.inputInvTrans[pos] += tot
			}
			for _, oi := range p.negOut {
				w := ws[p.drivers[oi]][:]
				var tot int64
				for j := 0; j < nw; j++ {
					if v := w[j] & masksA[j]; v != 0 {
						c := bits.OnesCount64(v)
						sums[j] += p.outCap * float64(c)
						tot += int64(c)
					}
				}
				sr.outputInvTrans[oi] += tot
			}
			for j := 0; j < nw; j++ {
				if laneA[j] == simWindow {
					sr.perCycle.Add(sums[j] / float64(simWindow))
				}
			}
		}
	}
	sr.gateEvals = evals
	sr.gateSkips = skips
	return sr, nil
}
