package sim

import (
	"context"
	"math/bits"

	"repro/internal/domino"
	"repro/internal/logic"
)

// defaultBlockWords is the block size the blocked kernel uses when
// Config.BlockWords is zero: 8 words × 64 lanes = 512 packed cycles per
// evaluation step, the largest block logic.EvalWideBlocked supports.
const defaultBlockWords = logic.MaxBlockWords

// blockWordsOf resolves Config.BlockWords to a legal block size.
func blockWordsOf(cfg Config) int {
	bw := cfg.BlockWords
	if bw == 0 {
		bw = defaultBlockWords
	}
	if bw < 1 {
		bw = 1
	}
	if bw > logic.MaxBlockWords {
		bw = logic.MaxBlockWords
	}
	return bw
}

// KernelStats reports the blocked kernel's cumulative activity-gating
// counters: how many per-gate block evaluations ran and how many were
// skipped because no fanin block changed. They are deterministic for a
// fixed (Seed, Shards, BlockWords) — the gating decision is a pure
// function of the generated vector stream — and always zero for the
// scalar and wide kernels.
type KernelStats struct {
	GateEvals int64
	GateSkips int64
}

// SkipRate returns the fraction of gate-block evaluations the activity
// gate removed (0 when nothing was counted).
func (s KernelStats) SkipRate() float64 {
	if t := s.GateEvals + s.GateSkips; t > 0 {
		return float64(s.GateSkips) / float64(t)
	}
	return 0
}

// bernoulliPlan is the per-input compilation of bernoulliWord: the
// probability's dyadic digits are extracted once per shard instead of
// once per window, so the hot packing loop does no float work. n is the
// number of rng draws (bernoulliBits − trailing zeros of the quantized
// probability, exactly bernoulliWord's count — the plans must consume
// the shared generator in lockstep with the other kernels); digits holds
// the remaining digits LSB-first (the lowest is always 1). n == 0 marks
// a constant input, where the word is constW and the rng is untouched.
type bernoulliPlan struct {
	digits uint32
	n      uint8
	constW uint64
}

func makeBernoulliPlans(probs []float64) []bernoulliPlan {
	plans := make([]bernoulliPlan, len(probs))
	for i, p := range probs {
		if p >= 1 {
			plans[i] = bernoulliPlan{constW: ^uint64(0)}
			continue
		}
		q := uint32(p*(1<<bernoulliBits) + 0.5)
		if p <= 0 || q == 0 {
			continue // all-zero word, no draws
		}
		if q >= 1<<bernoulliBits {
			plans[i] = bernoulliPlan{constW: ^uint64(0)}
			continue
		}
		tz := uint(bits.TrailingZeros32(q))
		plans[i] = bernoulliPlan{digits: q >> tz, n: uint8(bernoulliBits - tz)}
	}
	return plans
}

// draw produces the next 64-lane Bernoulli word, bit-identical to
// bernoulliWord on the same generator state.
func (pl *bernoulliPlan) draw(rng *rngClone) uint64 {
	n := int(pl.n)
	if n == 0 {
		return pl.constW
	}
	// The lowest digit is always 1, so the first fold w|=r of w=0 is
	// just w=r.
	w := rng.uint64n()
	q := pl.digits
	for j := 1; j < n; j++ {
		r := rng.uint64n()
		if q>>uint(j)&1 == 1 {
			w |= r
		} else {
			w &= r
		}
	}
	return w
}

// runShardBlocked dispatches between the two blocked implementations:
// the hand-unrolled 8-word fast path (runShardBlocked8) for the default
// block size in batch-means mode, and the generic path below for other
// block sizes and the per-cycle CI fallback (plus the never-expected
// case of a cell list out of node order, which the fused fast path
// cannot count). Both are byte-identical to each other and to the
// scalar oracle (TestBlockedFastMatchesGeneric,
// TestBlockedMatchesScalarAndWideKernels), including the gating
// counters. pc is built once per Run and shared read-only across
// shards.
func runShardBlocked(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, pc *blockedPrecomp, perCycleCI bool, seed int64, vectors int) (*shardResult, error) {
	if blockWordsOf(cfg) == fastBlockWords && !perCycleCI && pc.fastOK {
		return runShardBlocked8(ctx, b, cfg, p, pc, seed, vectors)
	}
	return runShardBlockedGeneric(ctx, b, cfg, p, perCycleCI, seed, vectors)
}

// runShardBlockedGeneric simulates `vectors` cycles in blocks of bw
// 64-lane words: window base+j of the shard lives in word j of a
// bw-word block per net (logic.EvalWideBlocked layout), evaluated with
// activity gating (logic.BlockedEval). Inputs are drawn window-major
// with the per-input bernoulliPlans on the devirtualized generator
// clone, which consumes the exact rng stream of packInputs — so the
// block's words are the same words the wide kernel computes one at a
// time, and every count below folds into the shard totals in the same
// order fold uses (per window: cells ascending, then input inverters,
// then negated outputs). That makes the blocked kernel's Reports
// byte-identical to both other kernels for any (Seed, Shards), with or
// without gating.
//
// A tail block shorter than bw words only draws and counts its live
// windows; the dead word slots keep the previous block's values, which
// is deterministic and invisible to the Report. With perCycleCI the
// per-window event words scatter weights into a per-lane power vector
// exactly as runShardWide does, one Welford sample per lane.
func runShardBlockedGeneric(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, perCycleCI bool, seed int64, vectors int) (*shardResult, error) {
	net := b.Net
	bw := blockWordsOf(cfg)
	rng := newRngClone(seed)
	plans := makeBernoulliPlans(cfg.InputProbs)

	origWords := make([]uint64, len(cfg.InputProbs)*bw)
	blockWords := make([]uint64, net.NumInputs()*bw)
	invDiff := make([]uint64, net.NumInputs()*bw)
	prevBit := make([]uint64, net.NumInputs())
	ev := net.NewBlockedEval(bw)
	sr := newShardResult(b)

	var sums [logic.MaxBlockWords]float64
	var masks [logic.MaxBlockWords]uint64
	var laneCnt [logic.MaxBlockWords]int
	var lanePower [simWindow]float64
	scatter := func(word uint64, weight float64) {
		for t := word; t != 0; t &= t - 1 {
			lanePower[bits.TrailingZeros64(t)] += weight
		}
	}

	numWin := (vectors + simWindow - 1) / simWindow
	for base := 0; base < numWin; base += bw {
		if err := pollCancel(ctx, cfg.Budget); err != nil {
			return nil, err
		}
		nw := numWin - base
		if nw > bw {
			nw = bw
		}
		for j := 0; j < nw; j++ {
			lanes := vectors - (base+j)*simWindow
			if lanes > simWindow {
				lanes = simWindow
			}
			laneCnt[j] = lanes
			masks[j] = ^uint64(0) >> (64 - uint(lanes))
		}

		// Draw window-major, inputs in order within each window — the
		// exact packInputs consumption order, bw windows at a time.
		for j := 0; j < nw; j++ {
			for i := range plans {
				origWords[i*bw+j] = plans[i].draw(rng)
			}
		}
		for pos, bi := range b.Phase.Inputs {
			src := origWords[bi.InputPos*bw:]
			dst := blockWords[pos*bw:]
			if bi.Inverted {
				for j := 0; j < nw; j++ {
					dst[j] = ^src[j]
				}
			} else {
				for j := 0; j < nw; j++ {
					dst[j] = src[j]
				}
			}
		}

		values := ev.Eval(blockWords)

		// Input-inverter toggle words: lane k vs lane k−1 via shift,
		// carrying the last live lane across words and blocks; bit 0 of
		// the shard's first window has no history.
		for _, pos := range p.invPos {
			w := blockWords[pos*bw:]
			d := invDiff[pos*bw:]
			carry := prevBit[pos]
			for j := 0; j < nw; j++ {
				v := w[j]
				diff := (v ^ (v<<1 | carry)) & masks[j]
				if base == 0 && j == 0 {
					diff &^= 1
				}
				d[j] = diff
				carry = (v >> uint(laneCnt[j]-1)) & 1
			}
			prevBit[pos] = carry
		}

		if !perCycleCI {
			// Fused counting: one pass per event source accumulates the
			// integer totals and all nw per-window weighted sums at once.
			// For any fixed window j the float adds arrive cells → input
			// inverters → negated outputs, each index ascending and
			// skipping zero counts — fold's exact order — so the batch
			// means match the other kernels bit for bit. Interleaving nw
			// independent sums is also what hides the FP add latency the
			// one-window fold is bound by.
			for j := 0; j < nw; j++ {
				sums[j] = 0
			}
			for ci := range b.Cells {
				w := values[int(b.Cells[ci].Node)*bw:]
				var tot int64
				for j := 0; j < nw; j++ {
					if v := w[j] & masks[j]; v != 0 {
						c := bits.OnesCount64(v)
						sums[j] += p.weights[ci] * float64(c)
						tot += int64(c)
					}
				}
				sr.cellTrans[ci] += tot
			}
			for _, pos := range p.invPos {
				d := invDiff[pos*bw:]
				var tot int64
				for j := 0; j < nw; j++ {
					if v := d[j]; v != 0 {
						c := bits.OnesCount64(v)
						sums[j] += p.invLoad[pos] * float64(c)
						tot += int64(c)
					}
				}
				sr.inputInvTrans[pos] += tot
			}
			for _, oi := range p.negOut {
				w := values[int(p.drivers[oi])*bw:]
				var tot int64
				for j := 0; j < nw; j++ {
					if v := w[j] & masks[j]; v != 0 {
						c := bits.OnesCount64(v)
						sums[j] += p.outCap * float64(c)
						tot += int64(c)
					}
				}
				sr.outputInvTrans[oi] += tot
			}
			for j := 0; j < nw; j++ {
				if laneCnt[j] == simWindow {
					sr.perCycle.Add(sums[j] / float64(simWindow))
				}
			}
		} else {
			// Per-cycle CI mode (shards under two windows): replicate the
			// wide kernel's per-window scatter, one word at a time.
			for j := 0; j < nw; j++ {
				mask := masks[j]
				for k := range lanePower {
					lanePower[k] = 0
				}
				for ci := range b.Cells {
					if v := values[int(b.Cells[ci].Node)*bw+j] & mask; v != 0 {
						sr.cellTrans[ci] += int64(bits.OnesCount64(v))
						scatter(v, p.weights[ci])
					}
				}
				for _, pos := range p.invPos {
					if v := invDiff[pos*bw+j]; v != 0 {
						sr.inputInvTrans[pos] += int64(bits.OnesCount64(v))
						scatter(v, p.invLoad[pos])
					}
				}
				for _, oi := range p.negOut {
					if v := values[int(p.drivers[oi])*bw+j] & mask; v != 0 {
						sr.outputInvTrans[oi] += int64(bits.OnesCount64(v))
						scatter(v, p.outCap)
					}
				}
				for k := 0; k < laneCnt[j]; k++ {
					sr.perCycle.Add(lanePower[k])
				}
			}
		}
	}
	sr.gateEvals = ev.GateEvals()
	sr.gateSkips = ev.GateSkips()
	return sr, nil
}
