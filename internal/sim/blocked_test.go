package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
)

// TestBlockedMatchesScalarAndWideKernels is the cross-check harness for
// the blocked/gated engine: over the PR 2 matrix of random circuits,
// seeds, shard counts, and worker counts — including Vectors < Shards,
// where the clamp leaves shards far smaller than one block — the
// blocked kernel's Report must be byte-identical to both the scalar
// oracle and the wide kernel, at every supported block size.
func TestBlockedMatchesScalarAndWideKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB10C5))
	for trial := 0; trial < 6; trial++ {
		n := gen.Generate(gen.Params{
			Name:    "blkchk",
			Inputs:  4 + rng.Intn(12),
			Outputs: 2 + rng.Intn(6),
			Gates:   20 + rng.Intn(120),
			Seed:    rng.Int63(),
			OrProb:  0.3 + 0.5*rng.Float64(),
		})
		asg := make(phase.Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		res, err := phase.Apply(n, asg)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := domino.Map(res, domino.DefaultLibrary())
		if err != nil {
			t.Fatal(err)
		}
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = rng.Float64()
		}
		// The PR 2 grid plus the degenerate-sizing cases: {1,64} and
		// {5,1000} clamp to one-vector shards, {100,64} leaves shards of
		// one to two cycles — all far below a single block.
		for _, c := range []struct{ vectors, shards, workers int }{
			{1, 1, 2}, {63, 1, 2}, {64, 1, 2}, {65, 1, 2}, {1000, 1, 2},
			{1000, 3, 1}, {2048, 8, 8}, {777, 16, 2}, {100, 64, 4},
			{1, 64, 8}, {5, 1000, 2},
		} {
			cfg := Config{
				Vectors: c.vectors, Seed: int64(trial*1000 + c.shards),
				InputProbs: probs, Shards: c.shards, Workers: c.workers,
			}
			cfg.Kernel = KernelScalar
			scalar, err := Run(blk, cfg)
			if err != nil {
				t.Fatalf("trial %d scalar %+v: %v", trial, c, err)
			}
			cfg.Kernel = KernelWide
			wide, err := Run(blk, cfg)
			if err != nil {
				t.Fatalf("trial %d wide %+v: %v", trial, c, err)
			}
			for _, bw := range []int{1, 2, 4, 5, 8} {
				cfg.Kernel = KernelBlocked
				cfg.BlockWords = bw
				blocked, err := Run(blk, cfg)
				if err != nil {
					t.Fatalf("trial %d blocked bw=%d %+v: %v", trial, bw, c, err)
				}
				if !reflect.DeepEqual(blocked, scalar) {
					t.Fatalf("trial %d bw=%d %+v: blocked differs from scalar oracle\nblocked: %+v\nscalar:  %+v",
						trial, bw, c, blocked, scalar)
				}
				if !reflect.DeepEqual(blocked, wide) {
					t.Fatalf("trial %d bw=%d %+v: blocked differs from wide", trial, bw, c)
				}
			}
			// KernelAuto must be the blocked engine at the default block
			// size — same Report, and it populates gating stats.
			var stats KernelStats
			cfg.Kernel = KernelAuto
			cfg.BlockWords = 0
			cfg.Stats = &stats
			auto, err := Run(blk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(auto, scalar) {
				t.Fatalf("trial %d %+v: KernelAuto differs from scalar oracle", trial, c)
			}
			if stats.GateEvals == 0 {
				t.Fatalf("trial %d %+v: KernelAuto reported no gate evaluations — not the blocked engine?", trial, c)
			}
			cfg.Stats = nil
		}
	}
}

// TestBlockedFastMatchesGeneric pins the hand-unrolled 8-word path to
// the generic logic.BlockedEval-based path at shard level: for vector
// counts hitting full blocks, short tails, and partial last windows —
// and for dense and low-activity inputs, where gating decisions differ
// block by block — the two shard implementations must produce identical
// counts, Welford state, and gating counters.
func TestBlockedFastMatchesGeneric(t *testing.T) {
	blk, probs := shardTestBlock(t)
	low := make([]float64, len(probs))
	for i := range low {
		low[i] = 1.0 / 4096
	}
	ctx := context.Background()
	p := newBlockParams(blk)
	for _, pr := range [][]float64{probs, low} {
		pc := newBlockedPrecomp(blk, pr)
		for _, vectors := range []int{128, 200, 511, 512, 513, 576, 4096, 5000} {
			cfg := Config{Vectors: vectors, Seed: 0, InputProbs: pr, BlockWords: 8}
			for _, seed := range []int64{1, 77} {
				fast, err := runShardBlocked8(ctx, blk, cfg, p, pc, seed, vectors)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := runShardBlockedGeneric(ctx, blk, cfg, p, false, seed, vectors)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, gen) {
					t.Errorf("vectors=%d seed=%d: fast shard result differs from generic\nfast:    %+v\ngeneric: %+v",
						vectors, seed, fast, gen)
				}
			}
		}
	}
}

// TestBlockedGatingStatsContract pins the KernelStats out-parameter:
// counters are deterministic for fixed (Seed, Shards, BlockWords),
// invariant under Workers, account for every gate × block, and stay
// zero under the scalar and wide kernels.
func TestBlockedGatingStatsContract(t *testing.T) {
	blk, probs := shardTestBlock(t)
	gates := 0
	for id := 0; id < blk.Net.NumNodes(); id++ {
		if blk.Net.Kind(logic.NodeID(id)).IsGate() {
			gates++
		}
	}
	const vectors, shards, bw = 3000, 4, 8
	// Every shard runs ceil(ceil(vectors_s/64)/bw) blocks; SplitRange
	// gives 750-vector shards → 12 windows → 2 blocks each.
	wantDecisions := int64(shards * 2 * gates)

	var base KernelStats
	cfg := Config{Vectors: vectors, Seed: 3, InputProbs: probs,
		Shards: shards, Workers: 2, Kernel: KernelBlocked, BlockWords: bw, Stats: &base}
	if _, err := Run(blk, cfg); err != nil {
		t.Fatal(err)
	}
	if got := base.GateEvals + base.GateSkips; got != wantDecisions {
		t.Errorf("evals %d + skips %d = %d decisions, want %d",
			base.GateEvals, base.GateSkips, got, wantDecisions)
	}
	for _, workers := range []int{1, 3, 8} {
		var s KernelStats
		cfg.Workers, cfg.Stats = workers, &s
		if _, err := Run(blk, cfg); err != nil {
			t.Fatal(err)
		}
		if s != base {
			t.Errorf("workers=%d: stats %+v differ from workers=2 baseline %+v", workers, s, base)
		}
	}
	for _, k := range []Kernel{KernelScalar, KernelWide} {
		var s KernelStats
		cfg.Workers, cfg.Kernel, cfg.Stats = 2, k, &s
		if _, err := Run(blk, cfg); err != nil {
			t.Fatal(err)
		}
		if s != (KernelStats{}) {
			t.Errorf("kernel=%d: non-blocked kernel reported gating stats %+v", k, s)
		}
	}
}

// TestBlockedSkipRateOnLowActivity checks that activity gating pays off
// where it is designed to: with near-constant inputs (small dyadic
// probabilities, so most packed words are all-zero and repeat block
// over block) well over half the gate evaluations must be skipped,
// while the Report still matches the scalar oracle exactly.
func TestBlockedSkipRateOnLowActivity(t *testing.T) {
	blk, probs := shardTestBlock(t)
	for i := range probs {
		probs[i] = 1.0 / 8192 // dyadic: quantization-exact, 13 rng draws/word
	}
	var stats KernelStats
	cfg := Config{Vectors: 8192, Seed: 17, InputProbs: probs,
		Shards: 4, Workers: 2, Kernel: KernelBlocked, Stats: &stats}
	blocked, err := Run(blk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate := stats.SkipRate(); rate <= 0.5 {
		t.Errorf("low-activity skip rate %.3f (evals %d, skips %d), want > 0.5",
			rate, stats.GateEvals, stats.GateSkips)
	}
	cfg.Kernel = KernelScalar
	cfg.Stats = nil
	scalar, err := Run(blk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blocked, scalar) {
		t.Errorf("gated low-activity report differs from scalar oracle")
	}
}

// TestBlockedKernelAllocRegression is the alloc-regression assertion on
// the blocked kernel: allocations per Run must stay O(shards) setup
// cost — scratch reuse means nothing allocates per block or per window.
// The bound is loose (setup is ~20 slices per shard plus report
// assembly) but catches any per-window allocation immediately: 64
// windows would blow through it.
func TestBlockedKernelAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion")
	}
	blk, probs := shardTestBlock(t)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(blk, Config{
				Vectors: 4096, Seed: 1, InputProbs: probs, Kernel: KernelBlocked,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs > 120 {
		t.Errorf("blocked kernel run: %d allocs/op, want ≤ 120 (per-block allocation regression?)", allocs)
	}
}

// BenchmarkSimKernels compares all three engines on the shard test
// block; the blocked/wide ratio here is an in-package preview of the
// BENCH_7 saturation gate.
func BenchmarkSimKernels(b *testing.B) {
	blk, probs := shardTestBlock(b)
	for _, k := range []struct {
		name   string
		kernel Kernel
	}{{"scalar", KernelScalar}, {"wide", KernelWide}, {"blocked", KernelBlocked}} {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(blk, Config{
					Vectors: 4096, Seed: 1, InputProbs: probs, Kernel: k.kernel,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
