package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

func figure5Network() *logic.Network {
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	f := n.AddOr(n.AddNot(x), n.AddNot(y))
	g := n.AddOr(x, y)
	n.MarkOutput("f", f)
	n.MarkOutput("g", g)
	return n
}

func mapNet(t testing.TB, n *logic.Network, asg phase.Assignment) *domino.Block {
	t.Helper()
	r, err := phase.Apply(n, asg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunConvergesToEstimate(t *testing.T) {
	// The Monte-Carlo measurement must converge to the BDD-exact model
	// values — the simulator and estimator implement the same physics.
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	for _, asg := range []phase.Assignment{{true, false}, {false, true}, {false, false}, {true, true}} {
		blk := mapNet(t, n, asg)
		est, err := power.Estimate(blk, probs, power.Options{Method: power.Exact})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(blk, Config{Vectors: 200000, Seed: 1, InputProbs: probs})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rep.Total-est.Total) / est.Total; rel > 0.05 {
			t.Errorf("asg %s: simulated %v vs estimated %v (rel err %.3f)", asg, rep.Total, est.Total, rel)
		}
		if math.Abs(rep.DominoPower-est.Domino)/est.Domino > 0.05 {
			t.Errorf("asg %s: domino component %v vs %v", asg, rep.DominoPower, est.Domino)
		}
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.5)
	blk := mapNet(t, n, phase.Assignment{false, true})
	r1, err := Run(blk, Config{Vectors: 1000, Seed: 42, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(blk, Config{Vectors: 1000, Seed: 42, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r2.Total || r1.DominoTransitions != r2.DominoTransitions {
		t.Error("same seed produced different measurements")
	}
	r3, err := Run(blk, Config{Vectors: 1000, Seed: 43, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DominoTransitions == r3.DominoTransitions {
		t.Error("different seeds produced identical transition counts (suspicious)")
	}
}

func TestPerCellFrequencyMatchesProbability(t *testing.T) {
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	blk := mapNet(t, n, phase.Assignment{false, true})
	rep, err := Run(blk, Config{Vectors: 200000, Seed: 7, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := power.CellSwitching(blk, probs, power.Options{Method: power.Exact})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range blk.Cells {
		if diff := math.Abs(rep.PerCellFreq[ci] - sw[ci]); diff > 0.01 {
			t.Errorf("cell %d: measured freq %v vs exact %v", ci, rep.PerCellFreq[ci], sw[ci])
		}
	}
}

func TestExtremeProbabilities(t *testing.T) {
	// Left realization of Figure 5: block is X=a+b, Y=cd, X·Y, X+Y over
	// positive rails only.
	n := figure5Network()
	blk := mapNet(t, n, phase.Assignment{true, false})
	// All inputs pinned to 1: every cell evaluates high every cycle.
	rep, err := Run(blk, Config{Vectors: 100, Seed: 3, InputProbs: []float64{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	wantTrans := int64(100 * blk.DominoCellCount())
	if rep.DominoTransitions != wantTrans {
		t.Errorf("transitions at p=1: %d, want %d", rep.DominoTransitions, wantTrans)
	}
	// All inputs pinned to 0: nothing ever discharges — zero power.
	rep0, err := Run(blk, Config{Vectors: 100, Seed: 3, InputProbs: []float64{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Total != 0 {
		t.Errorf("power at p=0: %v, want 0", rep0.Total)
	}
}

func TestTotalCIBracketsModel(t *testing.T) {
	// The 95% interval of the measured total must bracket the exact model
	// value at moderate vector counts (up to statistical bad luck; the
	// fixed seed makes this deterministic).
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	blk := mapNet(t, n, phase.Assignment{false, true})
	est, err := power.Estimate(blk, probs, power.Options{Method: power.Exact})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(blk, Config{Vectors: 20000, Seed: 5, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCI.Low > est.Total || est.Total > rep.TotalCI.High {
		t.Errorf("model %v outside CI [%v, %v]", est.Total, rep.TotalCI.Low, rep.TotalCI.High)
	}
	if rep.TotalCI.Low > rep.Total || rep.Total > rep.TotalCI.High {
		t.Error("CI does not bracket its own mean")
	}
	// More vectors, tighter interval.
	rep2, err := Run(blk, Config{Vectors: 200000, Seed: 5, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	if (rep2.TotalCI.High - rep2.TotalCI.Low) >= (rep.TotalCI.High - rep.TotalCI.Low) {
		t.Error("CI did not shrink with more vectors")
	}
}

func TestRunRejectsBadProbs(t *testing.T) {
	n := figure5Network()
	blk := mapNet(t, n, phase.Assignment{false, false})
	if _, err := Run(blk, Config{InputProbs: []float64{0.5}}); err == nil {
		t.Error("Run accepted wrong-length probs")
	}
}

func TestStaticGlitchesDetectsGlitching(t *testing.T) {
	// A classic glitch generator: f = a·ā through different path depths.
	// Static unit-delay simulation must show glitches; the domino
	// counterpart (Property 2.2) cannot, since cells switch at most once
	// per cycle by construction of Run.
	n := logic.New("glitchy")
	a := n.AddInput("a")
	b := n.AddInput("b")
	// Path-length imbalance: x = a·b, y = (a·b)·b ... chain, f = x ⊕ deep(x)
	x := n.AddAnd(a, b)
	d1 := n.AddAnd(x, b)
	d2 := n.AddAnd(d1, b)
	d3 := n.AddAnd(d2, b)
	f := n.AddXor(x, d3)
	n.MarkOutput("f", f)
	total, glitches, err := StaticGlitches(n, []float64{0.5, 0.5}, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("static sim recorded no transitions at all")
	}
	if glitches == 0 {
		t.Error("expected glitches in unbalanced static network, got none")
	}
}

func TestStaticGlitchesBalancedTreeIsCleanish(t *testing.T) {
	// A fanout-free tree has no reconvergence, hence no glitches under
	// unit delay with single-input-change... but we change all inputs at
	// once, so some glitching is still possible through depth skew. Use a
	// depth-1 circuit where no glitch is possible.
	n := logic.New("flat")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput("f", n.AddAnd(a, b))
	_, glitches, err := StaticGlitches(n, []float64{0.5, 0.5}, 2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if glitches != 0 {
		t.Errorf("depth-1 network glitched %d times", glitches)
	}
}

func TestRunOnRandomNetworksMatchesEstimateLoosely(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := randomNet(rng, 4+rng.Intn(4), 15+rng.Intn(25), 2)
		asg := make(phase.Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		blk := mapNet(t, n, asg)
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = 0.1 + 0.8*rng.Float64()
		}
		est, err := power.Estimate(blk, probs, power.Options{Method: power.Exact})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(blk, Config{Vectors: 60000, Seed: int64(trial), InputProbs: probs})
		if err != nil {
			t.Fatal(err)
		}
		if est.Total == 0 {
			if rep.Total != 0 {
				t.Errorf("trial %d: estimate 0 but sim %v", trial, rep.Total)
			}
			continue
		}
		if rel := math.Abs(rep.Total-est.Total) / est.Total; rel > 0.08 {
			t.Errorf("trial %d: sim %v vs est %v (rel %.3f)", trial, rep.Total, est.Total, rel)
		}
	}
}

func randomNet(rng *rand.Rand, numInputs, numGates, numOutputs int) *logic.Network {
	n := logic.New("rand")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(sname(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(4) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 2:
			ids = append(ids, n.AddOr(pick(), pick(), pick()))
		default:
			ids = append(ids, n.AddOr(pick(), pick()))
		}
	}
	for i := 0; i < numOutputs; i++ {
		n.MarkOutput(sname(100+i), ids[len(ids)-1-i])
	}
	return n
}

func sname(i int) string {
	return "v" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

func BenchmarkRun(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	n := randomNet(rng, 20, 800, 8)
	asg := make(phase.Assignment, n.NumOutputs())
	r, err := phase.Apply(n, asg)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(r, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	probs := prob.Uniform(n, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(blk, Config{Vectors: 1024, Seed: 5, InputProbs: probs}); err != nil {
			b.Fatal(err)
		}
	}
}
