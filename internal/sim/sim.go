// Package sim is the measurement back-end of the reproduction: a
// Monte-Carlo gate-level power simulator standing in for the EPIC
// PowerMill runs of the paper's Section 5.
//
// The paper measures power by simulating statistically generated input
// vectors with the appropriate signal probabilities. We do the same:
// vectors are drawn as independent Bernoullis per primary input, each
// cycle is a precharge/evaluate pair, and transitions are counted with
// domino semantics — a domino cell transitions exactly when its output
// evaluates to 1 (Property 2.1) and never glitches (Property 2.2), so a
// zero-delay sweep per cycle is exact for the block. Boundary static
// inverters toggle on input value changes (input side) or together with
// their driving domino output (output side).
//
// Three kernels implement the same measurement. The default blocked
// kernel packs up to 512 cycles into a block of 8 uint64 words per net
// (logic.EvalWideBlocked), skips gates whose inputs did not change
// between blocks (activity gating, logic.BlockedEval), and fuses the
// per-window statistics folds so their float chains interleave; the
// 64-lane bit-parallel kernel evaluates one word at a time
// (logic.EvalWide), counting transitions with popcounts; the scalar
// kernel evaluates one []bool vector per cycle and is kept as the
// reference oracle. All three draw their Bernoulli inputs in the same
// rng order and fold the same counts in the same order, so for every
// (Seed, Shards) they produce byte-identical Reports.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/budget"
	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/stats"
)

// Kernel selects the simulation engine. All kernels produce
// byte-identical Reports; the choice affects wall-clock only.
type Kernel uint8

const (
	// KernelAuto picks the fast engine (currently the blocked
	// multi-word one, KernelBlocked).
	KernelAuto Kernel = iota
	// KernelWide forces the 64-lane bit-parallel engine.
	KernelWide
	// KernelScalar forces the one-vector-per-cycle reference engine.
	KernelScalar
	// KernelBlocked forces the blocked multi-word engine: BlockWords
	// 64-lane words per net per step (logic.EvalWideBlocked) with
	// activity gating — gates whose fanin words did not change since the
	// previous block are skipped (logic.BlockedEval) — and fused
	// counting that interleaves the per-window statistics folds.
	KernelBlocked
)

// simWindow is the statistics window: transition counts fold into the
// shard totals and the batch-means variance accumulator every simWindow
// cycles. It equals the uint64 lane count so the bit-parallel kernel
// closes exactly one window per machine word.
const simWindow = 64

// perCycleCIThreshold selects the confidence-interval sampling mode:
// when the smallest shard has fewer than two full windows, the batch
// sample would be too small (or empty) for a meaningful variance, so
// both kernels fall back to genuine per-cycle samples — cheap there,
// since such runs are at most a couple of words per shard.
const perCycleCIThreshold = 2 * simWindow

// bernoulliBits is the resolution of the Bernoulli input generator:
// probabilities are rounded to this many binary digits (quantization
// error ≤ 2^-31, far below Monte-Carlo noise at any realistic vector
// count; exact for dyadic probabilities such as 0, 0.25, 0.5, 1).
const bernoulliBits = 30

// bernoulliWord draws 64 independent Bernoulli(p) lanes as one uint64
// using the dyadic-expansion trick: with p = 0.b1b2…bK in binary,
// fold one uniform word per digit from least to most significant —
// w = r|w for a 1 digit, r&w for a 0 digit — which halves the lane
// probability per step and adds ½ at every 1 digit. Trailing zero digits
// are skipped (they cannot change an all-zero word), so the rng
// consumption is a pure function of p: one draw for p = 0.5, at most
// bernoulliBits draws in general. Compared with 64 Float64 draws per
// word this is what keeps the bit-parallel kernel from being rng-bound.
func bernoulliWord(rng *rand.Rand, p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	q := uint32(p*(1<<bernoulliBits) + 0.5)
	if p <= 0 || q == 0 {
		return 0
	}
	if q >= 1<<bernoulliBits {
		return ^uint64(0)
	}
	tz := uint(bits.TrailingZeros32(q))
	q >>= tz
	w := uint64(0)
	for j := uint(0); j < bernoulliBits-tz; j++ {
		r := rng.Uint64()
		if q&1 == 1 {
			w |= r
		} else {
			w &= r
		}
		q >>= 1
	}
	return w
}

// packInputs fills words[i] with one window's packed Bernoulli draws for
// every input: bit k of words[i] is input i's value in cycle k of the
// window. Both kernels call exactly this, in the same window order, so
// they simulate the same vector sequence for a given seed.
func packInputs(rng *rand.Rand, probs []float64, words []uint64) {
	for i, p := range probs {
		words[i] = bernoulliWord(rng, p)
	}
}

// pollCancel is the kernels' shared cancellation poll: the shard
// context (par.Map's first-error propagation) plus the run's budget
// token (external cancellation: per-circuit timeouts, client
// disconnects). Both are one cheap atomic check.
func pollCancel(ctx context.Context, tok *budget.T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return tok.Err()
}

// Config parameterizes a simulation run.
type Config struct {
	// Vectors is the number of evaluate cycles (default 4096).
	Vectors int
	// Seed drives the vector generator.
	Seed int64
	// InputProbs gives the Bernoulli probability of each original
	// primary input. Required.
	InputProbs []float64
	// Shards splits the vector budget into independent streams, each with
	// its own rng seeded Seed+shard. The report is a pure function of
	// (Vectors, Seed, Shards, InputProbs): shard sizes and the merge order
	// are fixed by shard index, so reruns are bit-identical. 0 or 1 means
	// a single shard. Each shard starts without input history, so its
	// first cycle counts no input-inverter toggles — different shard
	// counts are therefore distinct (equally valid) sample estimates.
	// Shards beyond Vectors are clamped so no shard ever simulates zero
	// vectors.
	//
	// Compatibility: PR 2 replaced the per-cycle Float64 draws with the
	// packed dyadic-expansion generator (see bernoulliWord), so a given
	// (Seed, Shards) simulates a different — equally valid — vector
	// sequence than pre-PR-2 releases did. Absolute measured values are
	// therefore not comparable across that boundary; determinism within
	// a build is unaffected.
	Shards int
	// Workers bounds the goroutines simulating shards (0 = GOMAXPROCS,
	// 1 = sequential). Workers affects wall-clock only, never the report.
	Workers int
	// Kernel selects the engine (see Kernel); the zero value picks the
	// fastest one. Reports do not depend on it.
	Kernel Kernel
	// BlockWords sets the blocked kernel's words-per-block (64 lanes
	// each): 0 means the default (8, i.e. 512 lanes), other values are
	// clamped to 1..logic.MaxBlockWords. Like Kernel and Workers it is
	// a pure wall-clock knob — Reports do not depend on it.
	BlockWords int
	// Stats, when non-nil, receives the blocked kernel's cumulative
	// activity-gating counters, summed over shards in index order. They
	// are deterministic for a fixed (Seed, Shards, BlockWords) and stay
	// zero under the scalar and wide kernels. Stats is an out-parameter
	// only; it never influences the Report.
	Stats *KernelStats
	// Budget is the cancellation/resource token the run honors: the
	// vector count is clamped to the token's sim vector budget before
	// sharding (a pure min, so the clamp is independent of Workers and
	// Shards), and every kernel polls the token for cancellation at its
	// existing context poll sites. Nil means unlimited.
	Budget *budget.T
}

// Report summarizes measured activity. Power figures are in switched-
// capacitance units per cycle (load-weighted transition counts divided by
// cycles), directly comparable to power.Estimate's model values.
type Report struct {
	Cycles int
	// Transition counts (unweighted).
	DominoTransitions    int64
	InputInvTransitions  int64
	OutputInvTransitions int64
	// Load- and penalty-weighted per-cycle power. These are exact
	// functions of the integer transition counts (count × weight), so
	// they are identical for both kernels.
	DominoPower    float64
	InputInvPower  float64
	OutputInvPower float64
	Total          float64
	// TotalCI is the 95% confidence interval of Total: centered on the
	// exact count-derived Total, with the half-width estimated by the
	// batch-means method over full 64-cycle windows (partial tail
	// windows are excluded from the variance sample), or from genuine
	// per-cycle samples when shards are shorter than two windows —
	// Monte-Carlo numbers come with error bars.
	TotalCI stats.Interval
	// PerCellFreq is each domino cell's measured switching frequency
	// (transitions per cycle), parallel to Block.Cells.
	PerCellFreq []float64
}

// blockParams is the precomputed per-block weighting shared by both
// kernels and the final report assembly, so every float in the Report is
// derived from one set of weights.
type blockParams struct {
	// weights[ci] = Load·(1+Penalty) of cell ci.
	weights []float64
	// invPos lists the inverted block-input positions in ascending order;
	// invLoad[pos] is the boundary inverter load at that position.
	invPos  []int
	invLoad []float64
	// negOut lists the negated output indexes in ascending order;
	// drivers[i] is output i's driver node.
	negOut  []int
	drivers []logic.NodeID
	outCap  float64
}

func newBlockParams(b *domino.Block) *blockParams {
	net := b.Net
	loads := b.NodeLoads()
	inputNodeOf := net.Inputs()
	p := &blockParams{
		weights: make([]float64, len(b.Cells)),
		invLoad: make([]float64, len(b.Phase.Inputs)),
		drivers: make([]logic.NodeID, len(net.Outputs())),
		outCap:  b.Library().OutputCap,
	}
	for ci := range b.Cells {
		cell := &b.Cells[ci]
		p.weights[ci] = cell.Load * (1 + cell.Penalty)
	}
	for pos, bi := range b.Phase.Inputs {
		if bi.Inverted {
			p.invPos = append(p.invPos, pos)
			p.invLoad[pos] = loads[inputNodeOf[pos]]
		}
	}
	for i, o := range net.Outputs() {
		p.drivers[i] = o.Driver
	}
	for i, bo := range b.Phase.Outputs {
		if bo.Negated {
			p.negOut = append(p.negOut, i)
		}
	}
	return p
}

// shardResult accumulates one shard's raw (undivided) activity counts;
// the merge step folds shards in index order and weights once at the
// end. All floats derive from integer counts, so the merge is exact.
type shardResult struct {
	cellTrans      []int64
	inputInvTrans  []int64 // per block-input position
	outputInvTrans []int64 // per output index
	perCycle       stats.Running
	// Activity-gating counters (blocked kernel only; see KernelStats).
	gateEvals int64
	gateSkips int64
}

func newShardResult(b *domino.Block) *shardResult {
	return &shardResult{
		cellTrans:      make([]int64, len(b.Cells)),
		inputInvTrans:  make([]int64, len(b.Phase.Inputs)),
		outputInvTrans: make([]int64, len(b.Phase.Outputs)),
	}
}

// window holds one simWindow-cycle window's transition counts. The
// scalar kernel increments them cycle by cycle; the bit-parallel kernel
// writes popcounts. fold is the single place counts become floats.
type window struct {
	cell []int32
	inv  []int32
	out  []int32
}

func newWindow(b *domino.Block) *window {
	return &window{
		cell: make([]int32, len(b.Cells)),
		inv:  make([]int32, len(b.Phase.Inputs)),
		out:  make([]int32, len(b.Phase.Outputs)),
	}
}

// fold closes a window of `lanes` cycles: counts roll into the shard
// totals and, when addBatch is set (batch-means mode, full windows
// only — a partial tail would feed a skewed sample), the window's mean
// per-cycle power feeds the variance accumulator. Both kernels call
// exactly this function with the same counts in the same order, which
// is what makes their Reports byte-identical.
func (w *window) fold(sr *shardResult, p *blockParams, lanes int, addBatch bool) {
	sum := 0.0
	for ci, c := range w.cell {
		if c != 0 {
			sum += p.weights[ci] * float64(c)
			sr.cellTrans[ci] += int64(c)
			w.cell[ci] = 0
		}
	}
	for _, pos := range p.invPos {
		if c := w.inv[pos]; c != 0 {
			sum += p.invLoad[pos] * float64(c)
			sr.inputInvTrans[pos] += int64(c)
			w.inv[pos] = 0
		}
	}
	for _, oi := range p.negOut {
		if c := w.out[oi]; c != 0 {
			sum += p.outCap * float64(c)
			sr.outputInvTrans[oi] += int64(c)
			w.out[oi] = 0
		}
	}
	if addBatch {
		sr.perCycle.Add(sum / float64(lanes))
	}
}

// runShardScalar simulates `vectors` cycles one bool vector at a time
// with a dedicated rng seeded `seed`, checking ctx between windows so a
// sibling shard's failure aborts early. It is the reference oracle for
// the bit-parallel kernel: it unpacks the same per-window input words
// (packInputs) lane by lane and closes the same window folds. With
// perCycleCI it feeds the variance accumulator one genuine per-cycle
// power sample per cycle instead of batch means.
func runShardScalar(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, perCycleCI bool, seed int64, vectors int) (*shardResult, error) {
	net := b.Net
	rng := rand.New(rand.NewSource(seed))

	origWords := make([]uint64, len(cfg.InputProbs))
	origVals := make([]bool, len(cfg.InputProbs))
	blockVals := make([]bool, net.NumInputs())
	prevBlockVals := make([]bool, net.NumInputs())
	havePrev := false

	scratch := make([]bool, net.NumNodes())
	sr := newShardResult(b)
	win := newWindow(b)

	for done := 0; done < vectors; done += simWindow {
		if done%1024 == 0 {
			if err := pollCancel(ctx, cfg.Budget); err != nil {
				return nil, err
			}
		}
		lanes := vectors - done
		if lanes > simWindow {
			lanes = simWindow
		}
		packInputs(rng, cfg.InputProbs, origWords)
		for k := 0; k < lanes; k++ {
			for i := range origVals {
				origVals[i] = origWords[i]>>uint(k)&1 == 1
			}
			for pos, bi := range b.Phase.Inputs {
				v := origVals[bi.InputPos]
				if bi.Inverted {
					v = !v
				}
				blockVals[pos] = v
			}
			values := net.Eval(blockVals, scratch)

			cyclePower := 0.0
			// Domino cells: one transition pair per evaluate-high cycle.
			for ci := range b.Cells {
				if values[b.Cells[ci].Node] {
					win.cell[ci]++
					if perCycleCI {
						cyclePower += p.weights[ci]
					}
				}
			}
			// Input-boundary inverters: static gates, toggle on change.
			if havePrev {
				for _, pos := range p.invPos {
					if blockVals[pos] != prevBlockVals[pos] {
						win.inv[pos]++
						if perCycleCI {
							cyclePower += p.invLoad[pos]
						}
					}
				}
			}
			// Output-boundary inverters: driven by domino outputs, they
			// switch whenever the driver evaluates high (and precharges).
			for _, oi := range p.negOut {
				if values[p.drivers[oi]] {
					win.out[oi]++
					if perCycleCI {
						cyclePower += p.outCap
					}
				}
			}
			if perCycleCI {
				sr.perCycle.Add(cyclePower)
			}
			copy(prevBlockVals, blockVals)
			havePrev = true
		}
		win.fold(sr, p, lanes, !perCycleCI && lanes == simWindow)
	}
	return sr, nil
}

// runShardWide simulates `vectors` cycles 64 at a time: cycle base+k of
// the shard lives in bit k of one uint64 per net. Inputs are drawn with
// the shared window generator (packInputs, same rng order as the scalar
// oracle), each gate is evaluated once per word (logic.EvalWide), and
// transitions are counted with popcounts. Input-inverter toggles compare
// lane k against lane k−1 via shift, carrying the last lane of the
// previous word; bit 0 of the shard's first word is masked out because
// the shard starts without input history. With perCycleCI the event
// words additionally scatter weights into a per-lane power vector
// (cells, then inverters, then outputs — the scalar oracle's
// within-cycle order), one Welford sample per lane.
func runShardWide(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, perCycleCI bool, seed int64, vectors int) (*shardResult, error) {
	net := b.Net
	rng := rand.New(rand.NewSource(seed))

	origWords := make([]uint64, len(cfg.InputProbs))
	blockWords := make([]uint64, net.NumInputs())
	prevBit := make([]uint64, net.NumInputs())
	scratch := make([]uint64, net.NumNodes())
	sr := newShardResult(b)
	win := newWindow(b)
	first := true
	var lanePower [simWindow]float64
	scatter := func(word uint64, weight float64) {
		for t := word; t != 0; t &= t - 1 {
			lanePower[bits.TrailingZeros64(t)] += weight
		}
	}

	for done := 0; done < vectors; done += simWindow {
		if done%1024 == 0 {
			if err := pollCancel(ctx, cfg.Budget); err != nil {
				return nil, err
			}
		}
		lanes := vectors - done
		if lanes > simWindow {
			lanes = simWindow
		}
		mask := ^uint64(0) >> (64 - uint(lanes))

		packInputs(rng, cfg.InputProbs, origWords)
		for pos, bi := range b.Phase.Inputs {
			v := origWords[bi.InputPos]
			if bi.Inverted {
				v = ^v
			}
			blockWords[pos] = v
		}
		values := net.EvalWide(blockWords, scratch)

		if perCycleCI {
			for k := range lanePower {
				lanePower[k] = 0
			}
		}
		for ci := range b.Cells {
			if w := values[b.Cells[ci].Node] & mask; w != 0 {
				win.cell[ci] = int32(bits.OnesCount64(w))
				if perCycleCI {
					scatter(w, p.weights[ci])
				}
			}
		}
		for _, pos := range p.invPos {
			v := blockWords[pos]
			diff := (v ^ (v<<1 | prevBit[pos])) & mask
			if first {
				diff &^= 1
			}
			if diff != 0 {
				win.inv[pos] = int32(bits.OnesCount64(diff))
				if perCycleCI {
					scatter(diff, p.invLoad[pos])
				}
			}
			prevBit[pos] = (v >> uint(lanes-1)) & 1
		}
		for _, oi := range p.negOut {
			if w := values[p.drivers[oi]] & mask; w != 0 {
				win.out[oi] = int32(bits.OnesCount64(w))
				if perCycleCI {
					scatter(w, p.outCap)
				}
			}
		}
		if perCycleCI {
			for k := 0; k < lanes; k++ {
				sr.perCycle.Add(lanePower[k])
			}
		}
		first = false
		win.fold(sr, p, lanes, !perCycleCI && lanes == simWindow)
	}
	return sr, nil
}

// runShard dispatches to the configured kernel; zero-vector shards (which
// the sizing logic never produces, but belt and braces) return an empty
// result rather than feeding the merge degenerate statistics. p — and pc,
// for the blocked kernel — are built once per Run and shared read-only by
// all shard goroutines.
func runShard(ctx context.Context, b *domino.Block, cfg Config, p *blockParams, pc *blockedPrecomp, perCycleCI bool, seed int64, vectors int) (*shardResult, error) {
	if vectors <= 0 {
		return newShardResult(b), nil
	}
	switch cfg.Kernel {
	case KernelScalar:
		return runShardScalar(ctx, b, cfg, p, perCycleCI, seed, vectors)
	case KernelWide:
		return runShardWide(ctx, b, cfg, p, perCycleCI, seed, vectors)
	default: // KernelAuto, KernelBlocked
		return runShardBlocked(ctx, b, cfg, p, pc, perCycleCI, seed, vectors)
	}
}

// Run simulates the mapped block for cfg.Vectors cycles and returns the
// measured activity. With cfg.Shards > 1 the vector budget is split into
// contiguous shards simulated concurrently on cfg.Workers goroutines;
// see Config for the determinism contract.
func Run(b *domino.Block, cfg Config) (*Report, error) {
	if len(cfg.InputProbs) != len(b.Phase.Original.Inputs()) {
		return nil, fmt.Errorf("sim: %d input probs for %d original inputs",
			len(cfg.InputProbs), len(b.Phase.Original.Inputs()))
	}
	vectors := cfg.Vectors
	if vectors <= 0 {
		vectors = 4096
	}
	vectors = cfg.Budget.CapSimVectors(vectors)
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// Degenerate sizing: never create zero-vector shards. SplitRange
	// clamps the same way; this keeps Run's shard count and the range
	// list in lockstep.
	if shards > vectors {
		shards = vectors
	}
	ranges := par.SplitRange(vectors, shards)
	p := newBlockParams(b)
	var pc *blockedPrecomp
	if cfg.Kernel != KernelScalar && cfg.Kernel != KernelWide {
		pc = newBlockedPrecomp(b, cfg.InputProbs)
	}
	// CI sampling mode is a run-level decision (all shards agree, so the
	// merged Welford samples are homogeneous): batch means over full
	// 64-cycle windows normally, genuine per-cycle samples when the
	// smallest shard is too short to yield two full windows.
	perCycleCI := vectors/shards < perCycleCIThreshold
	results, err := par.Map(context.Background(), len(ranges), cfg.Workers,
		func(ctx context.Context, s int) (*shardResult, error) {
			return runShard(ctx, b, cfg, p, pc, perCycleCI, cfg.Seed+int64(s), ranges[s][1]-ranges[s][0])
		})
	if err != nil {
		return nil, err
	}

	// Reduce in shard order: integer counts are order-free and the
	// Welford merge is fixed by the index order, so the reduction is
	// reproducible at any worker count.
	rep := &Report{Cycles: vectors, PerCellFreq: make([]float64, len(b.Cells))}
	cellTrans := make([]int64, len(b.Cells))
	invTrans := make([]int64, len(b.Phase.Inputs))
	outTrans := make([]int64, len(b.Phase.Outputs))
	var perCycle stats.Running
	var gating KernelStats
	for _, sr := range results {
		for ci, t := range sr.cellTrans {
			cellTrans[ci] += t
		}
		for pos, t := range sr.inputInvTrans {
			invTrans[pos] += t
		}
		for oi, t := range sr.outputInvTrans {
			outTrans[oi] += t
		}
		gating.GateEvals += sr.gateEvals
		gating.GateSkips += sr.gateSkips
		perCycle = stats.Merge(perCycle, sr.perCycle)
	}
	if cfg.Stats != nil {
		*cfg.Stats = gating
	}
	// Weight the merged integer counts once, in fixed index order — the
	// power figures are exact functions of the counts, independent of
	// kernel, shard execution order, and worker count.
	for ci, t := range cellTrans {
		rep.DominoTransitions += t
		rep.PerCellFreq[ci] = float64(t) / float64(vectors)
		rep.DominoPower += p.weights[ci] * float64(t)
	}
	for _, pos := range p.invPos {
		rep.InputInvTransitions += invTrans[pos]
		rep.InputInvPower += p.invLoad[pos] * float64(invTrans[pos])
	}
	for _, oi := range p.negOut {
		rep.OutputInvTransitions += outTrans[oi]
		rep.OutputInvPower += p.outCap * float64(outTrans[oi])
	}
	inv := 1.0 / float64(vectors)
	rep.DominoPower *= inv
	rep.InputInvPower *= inv
	rep.OutputInvPower *= inv
	rep.Total = rep.DominoPower + rep.InputInvPower + rep.OutputInvPower
	// Batch means estimate the sampling error; their plain average would
	// over-weight a partial tail window, so the interval is centered on
	// the exact count-derived Total instead.
	ci := perCycle.Confidence(stats.Z95)
	rep.TotalCI = stats.Interval{
		Mean: rep.Total,
		Low:  rep.Total - (ci.High - ci.Mean),
		High: rep.Total + (ci.High - ci.Mean),
	}
	return rep, nil
}

// StaticGlitches simulates a combinational network as *static* CMOS under
// a unit-delay model for a sequence of random vector pairs and returns
// (totalTransitions, glitchTransitions): transitions beyond the first per
// node per cycle are glitches. Domino blocks, by Property 2.2, never
// glitch; this function exists to demonstrate the contrast (and is used
// by the Figure 2 discussion in EXPERIMENTS.md).
func StaticGlitches(net *logic.Network, inputProbs []float64, vectors int, seed int64) (total, glitches int64, err error) {
	if len(inputProbs) != net.NumInputs() {
		return 0, 0, fmt.Errorf("sim: %d input probs for %d inputs", len(inputProbs), net.NumInputs())
	}
	if vectors <= 0 {
		vectors = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	numNodes := net.NumNodes()
	cur := make([]bool, numNodes)
	next := make([]bool, numNodes)
	inVals := make([]bool, net.NumInputs())
	transitions := make([]int, numNodes)

	// Settle the initial vector.
	for i := range inVals {
		inVals[i] = rng.Float64() < inputProbs[i]
	}
	settled := net.Eval(inVals, cur)
	copy(cur, settled)

	step := func() bool {
		changed := false
		for i := 0; i < numNodes; i++ {
			id := logic.NodeID(i)
			node := net.Node(id)
			var v bool
			switch node.Kind {
			case logic.KindInput:
				v = cur[i]
			case logic.KindConst0:
				v = false
			case logic.KindConst1:
				v = true
			case logic.KindBuf:
				v = cur[node.Fanins[0]]
			case logic.KindNot:
				v = !cur[node.Fanins[0]]
			case logic.KindAnd:
				v = true
				for _, f := range node.Fanins {
					v = v && cur[f]
				}
			case logic.KindOr:
				v = false
				for _, f := range node.Fanins {
					v = v || cur[f]
				}
			case logic.KindXor:
				v = false
				for _, f := range node.Fanins {
					v = v != cur[f]
				}
			}
			next[i] = v
			if v != cur[i] {
				changed = true
				transitions[i]++
			}
		}
		cur, next = next, cur
		return changed
	}

	inputPos := make(map[logic.NodeID]int, net.NumInputs())
	for pos, id := range net.Inputs() {
		inputPos[id] = pos
	}
	depth := net.Depth() + 2
	for cycle := 0; cycle < vectors; cycle++ {
		for i := range transitions {
			transitions[i] = 0
		}
		// New input vector applied at once; gates update with unit delay.
		for i := range inVals {
			inVals[i] = rng.Float64() < inputProbs[i]
		}
		for id, pos := range inputPos {
			cur[id] = inVals[pos]
		}
		for step() {
			// A combinational network under unit delay settles within
			// its depth; guard against miscounted loops anyway.
			depth--
			if depth < -10_000_000 {
				return 0, 0, fmt.Errorf("sim: static simulation did not settle")
			}
		}
		depth = net.Depth() + 2
		for i := 0; i < numNodes; i++ {
			if net.Kind(logic.NodeID(i)).IsGate() {
				t := int64(transitions[i])
				total += t
				if t > 1 {
					glitches += t - 1
				}
			}
		}
	}
	return total, glitches, nil
}
