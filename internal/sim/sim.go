// Package sim is the measurement back-end of the reproduction: a
// Monte-Carlo gate-level power simulator standing in for the EPIC
// PowerMill runs of the paper's Section 5.
//
// The paper measures power by simulating statistically generated input
// vectors with the appropriate signal probabilities. We do the same:
// vectors are drawn as independent Bernoullis per primary input, each
// cycle is a precharge/evaluate pair, and transitions are counted with
// domino semantics — a domino cell transitions exactly when its output
// evaluates to 1 (Property 2.1) and never glitches (Property 2.2), so a
// zero-delay sweep per cycle is exact for the block. Boundary static
// inverters toggle on input value changes (input side) or together with
// their driving domino output (output side).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/stats"
)

// Config parameterizes a simulation run.
type Config struct {
	// Vectors is the number of evaluate cycles (default 4096).
	Vectors int
	// Seed drives the vector generator.
	Seed int64
	// InputProbs gives the Bernoulli probability of each original
	// primary input. Required.
	InputProbs []float64
}

// Report summarizes measured activity. Power figures are in switched-
// capacitance units per cycle (load-weighted transition counts divided by
// cycles), directly comparable to power.Estimate's model values.
type Report struct {
	Cycles int
	// Transition counts (unweighted).
	DominoTransitions    int64
	InputInvTransitions  int64
	OutputInvTransitions int64
	// Load- and penalty-weighted per-cycle power.
	DominoPower    float64
	InputInvPower  float64
	OutputInvPower float64
	Total          float64
	// TotalCI is the 95% confidence interval of Total over cycles —
	// Monte-Carlo numbers come with error bars.
	TotalCI stats.Interval
	// PerCellFreq is each domino cell's measured switching frequency
	// (transitions per cycle), parallel to Block.Cells.
	PerCellFreq []float64
}

// Run simulates the mapped block for cfg.Vectors cycles and returns the
// measured activity.
func Run(b *domino.Block, cfg Config) (*Report, error) {
	net := b.Net
	if len(cfg.InputProbs) != len(b.Phase.Original.Inputs()) {
		return nil, fmt.Errorf("sim: %d input probs for %d original inputs",
			len(cfg.InputProbs), len(b.Phase.Original.Inputs()))
	}
	vectors := cfg.Vectors
	if vectors <= 0 {
		vectors = 4096
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	numOrigIn := len(cfg.InputProbs)
	origVals := make([]bool, numOrigIn)
	blockVals := make([]bool, net.NumInputs())
	prevBlockVals := make([]bool, net.NumInputs())
	havePrev := false

	scratch := make([]bool, net.NumNodes())
	loads := b.NodeLoads()
	lib := b.Library()

	cellTrans := make([]int64, len(b.Cells))
	rep := &Report{Cycles: vectors, PerCellFreq: make([]float64, len(b.Cells))}
	var perCycle stats.Running

	inputNodeOf := net.Inputs()
	for cycle := 0; cycle < vectors; cycle++ {
		cyclePower := 0.0
		for i := range origVals {
			origVals[i] = rng.Float64() < cfg.InputProbs[i]
		}
		for pos, bi := range b.Phase.Inputs {
			v := origVals[bi.InputPos]
			if bi.Inverted {
				v = !v
			}
			blockVals[pos] = v
		}
		values := net.Eval(blockVals, scratch)

		// Domino cells: one transition pair per evaluate-high cycle.
		for ci := range b.Cells {
			cell := &b.Cells[ci]
			if values[cell.Node] {
				cellTrans[ci]++
				w := cell.Load * (1 + cell.Penalty)
				rep.DominoPower += w
				cyclePower += w
			}
		}
		// Input-boundary inverters: static gates, toggle on change.
		if havePrev {
			for pos, bi := range b.Phase.Inputs {
				if !bi.Inverted {
					continue
				}
				if blockVals[pos] != prevBlockVals[pos] {
					rep.InputInvTransitions++
					rep.InputInvPower += loads[inputNodeOf[pos]]
					cyclePower += loads[inputNodeOf[pos]]
				}
			}
		}
		// Output-boundary inverters: driven by domino outputs, they
		// switch whenever the driver evaluates high (and precharges).
		for i, bo := range b.Phase.Outputs {
			if !bo.Negated {
				continue
			}
			if values[net.Outputs()[i].Driver] {
				rep.OutputInvTransitions++
				rep.OutputInvPower += lib.OutputCap
				cyclePower += lib.OutputCap
			}
		}
		copy(prevBlockVals, blockVals)
		havePrev = true
		perCycle.Add(cyclePower)
	}

	for ci, t := range cellTrans {
		rep.DominoTransitions += t
		rep.PerCellFreq[ci] = float64(t) / float64(vectors)
	}
	inv := 1.0 / float64(vectors)
	rep.DominoPower *= inv
	rep.InputInvPower *= inv
	rep.OutputInvPower *= inv
	rep.Total = rep.DominoPower + rep.InputInvPower + rep.OutputInvPower
	rep.TotalCI = perCycle.Confidence(stats.Z95)
	return rep, nil
}

// StaticGlitches simulates a combinational network as *static* CMOS under
// a unit-delay model for a sequence of random vector pairs and returns
// (totalTransitions, glitchTransitions): transitions beyond the first per
// node per cycle are glitches. Domino blocks, by Property 2.2, never
// glitch; this function exists to demonstrate the contrast (and is used
// by the Figure 2 discussion in EXPERIMENTS.md).
func StaticGlitches(net *logic.Network, inputProbs []float64, vectors int, seed int64) (total, glitches int64, err error) {
	if len(inputProbs) != net.NumInputs() {
		return 0, 0, fmt.Errorf("sim: %d input probs for %d inputs", len(inputProbs), net.NumInputs())
	}
	if vectors <= 0 {
		vectors = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	numNodes := net.NumNodes()
	cur := make([]bool, numNodes)
	next := make([]bool, numNodes)
	inVals := make([]bool, net.NumInputs())
	transitions := make([]int, numNodes)

	// Settle the initial vector.
	for i := range inVals {
		inVals[i] = rng.Float64() < inputProbs[i]
	}
	settled := net.Eval(inVals, cur)
	copy(cur, settled)

	step := func() bool {
		changed := false
		for i := 0; i < numNodes; i++ {
			id := logic.NodeID(i)
			node := net.Node(id)
			var v bool
			switch node.Kind {
			case logic.KindInput:
				v = cur[i]
			case logic.KindConst0:
				v = false
			case logic.KindConst1:
				v = true
			case logic.KindBuf:
				v = cur[node.Fanins[0]]
			case logic.KindNot:
				v = !cur[node.Fanins[0]]
			case logic.KindAnd:
				v = true
				for _, f := range node.Fanins {
					v = v && cur[f]
				}
			case logic.KindOr:
				v = false
				for _, f := range node.Fanins {
					v = v || cur[f]
				}
			case logic.KindXor:
				v = false
				for _, f := range node.Fanins {
					v = v != cur[f]
				}
			}
			next[i] = v
			if v != cur[i] {
				changed = true
				transitions[i]++
			}
		}
		cur, next = next, cur
		return changed
	}

	inputPos := make(map[logic.NodeID]int, net.NumInputs())
	for pos, id := range net.Inputs() {
		inputPos[id] = pos
	}
	depth := net.Depth() + 2
	for cycle := 0; cycle < vectors; cycle++ {
		for i := range transitions {
			transitions[i] = 0
		}
		// New input vector applied at once; gates update with unit delay.
		for i := range inVals {
			inVals[i] = rng.Float64() < inputProbs[i]
		}
		for id, pos := range inputPos {
			cur[id] = inVals[pos]
		}
		for step() {
			// A combinational network under unit delay settles within
			// its depth; guard against miscounted loops anyway.
			depth--
			if depth < -10_000_000 {
				return 0, 0, fmt.Errorf("sim: static simulation did not settle")
			}
		}
		depth = net.Depth() + 2
		for i := 0; i < numNodes; i++ {
			if net.Kind(logic.NodeID(i)).IsGate() {
				t := int64(transitions[i])
				total += t
				if t > 1 {
					glitches += t - 1
				}
			}
		}
	}
	return total, glitches, nil
}
