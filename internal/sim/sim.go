// Package sim is the measurement back-end of the reproduction: a
// Monte-Carlo gate-level power simulator standing in for the EPIC
// PowerMill runs of the paper's Section 5.
//
// The paper measures power by simulating statistically generated input
// vectors with the appropriate signal probabilities. We do the same:
// vectors are drawn as independent Bernoullis per primary input, each
// cycle is a precharge/evaluate pair, and transitions are counted with
// domino semantics — a domino cell transitions exactly when its output
// evaluates to 1 (Property 2.1) and never glitches (Property 2.2), so a
// zero-delay sweep per cycle is exact for the block. Boundary static
// inverters toggle on input value changes (input side) or together with
// their driving domino output (output side).
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/stats"
)

// Config parameterizes a simulation run.
type Config struct {
	// Vectors is the number of evaluate cycles (default 4096).
	Vectors int
	// Seed drives the vector generator.
	Seed int64
	// InputProbs gives the Bernoulli probability of each original
	// primary input. Required.
	InputProbs []float64
	// Shards splits the vector budget into independent streams, each with
	// its own rng seeded Seed+shard. The report is a pure function of
	// (Vectors, Seed, Shards, InputProbs): shard sizes and the merge order
	// are fixed by shard index, so reruns are bit-identical. 0 or 1 means
	// a single shard, which reproduces the historical sequential run for a
	// given Seed exactly. Each shard starts without input history, so its
	// first cycle counts no input-inverter toggles — different shard
	// counts are therefore distinct (equally valid) sample estimates.
	Shards int
	// Workers bounds the goroutines simulating shards (0 = GOMAXPROCS,
	// 1 = sequential). Workers affects wall-clock only, never the report.
	Workers int
}

// Report summarizes measured activity. Power figures are in switched-
// capacitance units per cycle (load-weighted transition counts divided by
// cycles), directly comparable to power.Estimate's model values.
type Report struct {
	Cycles int
	// Transition counts (unweighted).
	DominoTransitions    int64
	InputInvTransitions  int64
	OutputInvTransitions int64
	// Load- and penalty-weighted per-cycle power.
	DominoPower    float64
	InputInvPower  float64
	OutputInvPower float64
	Total          float64
	// TotalCI is the 95% confidence interval of Total over cycles —
	// Monte-Carlo numbers come with error bars.
	TotalCI stats.Interval
	// PerCellFreq is each domino cell's measured switching frequency
	// (transitions per cycle), parallel to Block.Cells.
	PerCellFreq []float64
}

// shardResult accumulates one shard's raw (undivided) activity sums; the
// merge step folds shards in index order and normalizes once at the end,
// so a single shard reproduces the historical sequential arithmetic
// exactly.
type shardResult struct {
	cellTrans            []int64
	inputInvTransitions  int64
	outputInvTransitions int64
	dominoPowerSum       float64
	inputInvPowerSum     float64
	outputInvPowerSum    float64
	perCycle             stats.Running
}

// runShard simulates `vectors` cycles with a dedicated rng seeded `seed`,
// checking ctx between cycles so a sibling shard's failure aborts early.
func runShard(ctx context.Context, b *domino.Block, cfg Config, seed int64, vectors int) (*shardResult, error) {
	net := b.Net
	rng := rand.New(rand.NewSource(seed))

	origVals := make([]bool, len(cfg.InputProbs))
	blockVals := make([]bool, net.NumInputs())
	prevBlockVals := make([]bool, net.NumInputs())
	havePrev := false

	scratch := make([]bool, net.NumNodes())
	loads := b.NodeLoads()
	lib := b.Library()

	sr := &shardResult{cellTrans: make([]int64, len(b.Cells))}

	inputNodeOf := net.Inputs()
	for cycle := 0; cycle < vectors; cycle++ {
		if cycle%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cyclePower := 0.0
		for i := range origVals {
			origVals[i] = rng.Float64() < cfg.InputProbs[i]
		}
		for pos, bi := range b.Phase.Inputs {
			v := origVals[bi.InputPos]
			if bi.Inverted {
				v = !v
			}
			blockVals[pos] = v
		}
		values := net.Eval(blockVals, scratch)

		// Domino cells: one transition pair per evaluate-high cycle.
		for ci := range b.Cells {
			cell := &b.Cells[ci]
			if values[cell.Node] {
				sr.cellTrans[ci]++
				w := cell.Load * (1 + cell.Penalty)
				sr.dominoPowerSum += w
				cyclePower += w
			}
		}
		// Input-boundary inverters: static gates, toggle on change.
		if havePrev {
			for pos, bi := range b.Phase.Inputs {
				if !bi.Inverted {
					continue
				}
				if blockVals[pos] != prevBlockVals[pos] {
					sr.inputInvTransitions++
					sr.inputInvPowerSum += loads[inputNodeOf[pos]]
					cyclePower += loads[inputNodeOf[pos]]
				}
			}
		}
		// Output-boundary inverters: driven by domino outputs, they
		// switch whenever the driver evaluates high (and precharges).
		for i, bo := range b.Phase.Outputs {
			if !bo.Negated {
				continue
			}
			if values[net.Outputs()[i].Driver] {
				sr.outputInvTransitions++
				sr.outputInvPowerSum += lib.OutputCap
				cyclePower += lib.OutputCap
			}
		}
		copy(prevBlockVals, blockVals)
		havePrev = true
		sr.perCycle.Add(cyclePower)
	}
	return sr, nil
}

// Run simulates the mapped block for cfg.Vectors cycles and returns the
// measured activity. With cfg.Shards > 1 the vector budget is split into
// contiguous shards simulated concurrently on cfg.Workers goroutines;
// see Config for the determinism contract.
func Run(b *domino.Block, cfg Config) (*Report, error) {
	if len(cfg.InputProbs) != len(b.Phase.Original.Inputs()) {
		return nil, fmt.Errorf("sim: %d input probs for %d original inputs",
			len(cfg.InputProbs), len(b.Phase.Original.Inputs()))
	}
	vectors := cfg.Vectors
	if vectors <= 0 {
		vectors = 4096
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > vectors {
		shards = vectors
	}
	ranges := par.SplitRange(vectors, shards)
	results, err := par.Map(context.Background(), len(ranges), cfg.Workers,
		func(ctx context.Context, s int) (*shardResult, error) {
			return runShard(ctx, b, cfg, cfg.Seed+int64(s), ranges[s][1]-ranges[s][0])
		})
	if err != nil {
		return nil, err
	}

	// Reduce in shard order: integer sums are order-free, the float sums
	// and the Welford merge are fixed by the index order, so the reduction
	// is reproducible at any worker count.
	rep := &Report{Cycles: vectors, PerCellFreq: make([]float64, len(b.Cells))}
	cellTrans := make([]int64, len(b.Cells))
	var perCycle stats.Running
	for _, sr := range results {
		for ci, t := range sr.cellTrans {
			cellTrans[ci] += t
		}
		rep.InputInvTransitions += sr.inputInvTransitions
		rep.OutputInvTransitions += sr.outputInvTransitions
		rep.DominoPower += sr.dominoPowerSum
		rep.InputInvPower += sr.inputInvPowerSum
		rep.OutputInvPower += sr.outputInvPowerSum
		perCycle = stats.Merge(perCycle, sr.perCycle)
	}
	for ci, t := range cellTrans {
		rep.DominoTransitions += t
		rep.PerCellFreq[ci] = float64(t) / float64(vectors)
	}
	inv := 1.0 / float64(vectors)
	rep.DominoPower *= inv
	rep.InputInvPower *= inv
	rep.OutputInvPower *= inv
	rep.Total = rep.DominoPower + rep.InputInvPower + rep.OutputInvPower
	rep.TotalCI = perCycle.Confidence(stats.Z95)
	return rep, nil
}

// StaticGlitches simulates a combinational network as *static* CMOS under
// a unit-delay model for a sequence of random vector pairs and returns
// (totalTransitions, glitchTransitions): transitions beyond the first per
// node per cycle are glitches. Domino blocks, by Property 2.2, never
// glitch; this function exists to demonstrate the contrast (and is used
// by the Figure 2 discussion in EXPERIMENTS.md).
func StaticGlitches(net *logic.Network, inputProbs []float64, vectors int, seed int64) (total, glitches int64, err error) {
	if len(inputProbs) != net.NumInputs() {
		return 0, 0, fmt.Errorf("sim: %d input probs for %d inputs", len(inputProbs), net.NumInputs())
	}
	if vectors <= 0 {
		vectors = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	numNodes := net.NumNodes()
	cur := make([]bool, numNodes)
	next := make([]bool, numNodes)
	inVals := make([]bool, net.NumInputs())
	transitions := make([]int, numNodes)

	// Settle the initial vector.
	for i := range inVals {
		inVals[i] = rng.Float64() < inputProbs[i]
	}
	settled := net.Eval(inVals, cur)
	copy(cur, settled)

	step := func() bool {
		changed := false
		for i := 0; i < numNodes; i++ {
			id := logic.NodeID(i)
			node := net.Node(id)
			var v bool
			switch node.Kind {
			case logic.KindInput:
				v = cur[i]
			case logic.KindConst0:
				v = false
			case logic.KindConst1:
				v = true
			case logic.KindBuf:
				v = cur[node.Fanins[0]]
			case logic.KindNot:
				v = !cur[node.Fanins[0]]
			case logic.KindAnd:
				v = true
				for _, f := range node.Fanins {
					v = v && cur[f]
				}
			case logic.KindOr:
				v = false
				for _, f := range node.Fanins {
					v = v || cur[f]
				}
			case logic.KindXor:
				v = false
				for _, f := range node.Fanins {
					v = v != cur[f]
				}
			}
			next[i] = v
			if v != cur[i] {
				changed = true
				transitions[i]++
			}
		}
		cur, next = next, cur
		return changed
	}

	inputPos := make(map[logic.NodeID]int, net.NumInputs())
	for pos, id := range net.Inputs() {
		inputPos[id] = pos
	}
	depth := net.Depth() + 2
	for cycle := 0; cycle < vectors; cycle++ {
		for i := range transitions {
			transitions[i] = 0
		}
		// New input vector applied at once; gates update with unit delay.
		for i := range inVals {
			inVals[i] = rng.Float64() < inputProbs[i]
		}
		for id, pos := range inputPos {
			cur[id] = inVals[pos]
		}
		for step() {
			// A combinational network under unit delay settles within
			// its depth; guard against miscounted loops anyway.
			depth--
			if depth < -10_000_000 {
				return 0, 0, fmt.Errorf("sim: static simulation did not settle")
			}
		}
		depth = net.Depth() + 2
		for i := 0; i < numNodes; i++ {
			if net.Kind(logic.NodeID(i)).IsGate() {
				t := int64(transitions[i])
				total += t
				if t > 1 {
					glitches += t - 1
				}
			}
		}
	}
	return total, glitches, nil
}
