package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/prob"
)

// shardTestBlock maps a mid-size synthetic network with a mixed-phase
// assignment so all three activity classes (domino cells, input and
// output boundary inverters) are exercised.
func shardTestBlock(t testing.TB) (*domino.Block, []float64) {
	t.Helper()
	n := gen.Generate(gen.Params{Name: "shard", Inputs: 12, Outputs: 6, Gates: 90, Seed: 97, OrProb: 0.6})
	n = n.Optimize()
	if n.CountKind(logic.KindXor) > 0 {
		n = n.DecomposeXor().Optimize()
	}
	asg := phase.AllPositive(n.NumOutputs())
	for i := range asg {
		asg[i] = i%2 == 1
	}
	res, err := phase.Apply(n, asg)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return blk, prob.Uniform(n, 0.5)
}

func TestRunShardedIsDeterministic(t *testing.T) {
	blk, probs := shardTestBlock(t)
	for _, shards := range []int{1, 2, 7, 16} {
		cfg := Config{Vectors: 2048, Seed: 5, InputProbs: probs, Shards: shards, Workers: 4}
		a, err := Run(blk, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := Run(blk, cfg)
		if err != nil {
			t.Fatalf("shards=%d rerun: %v", shards, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: two runs with identical (seed, shards) differ:\n%+v\n%+v", shards, a, b)
		}
	}
}

func TestRunShardedIndependentOfWorkers(t *testing.T) {
	blk, probs := shardTestBlock(t)
	var want *Report
	for _, workers := range []int{1, 2, 3, 8} {
		rep, err := Run(blk, Config{Vectors: 3000, Seed: 9, InputProbs: probs, Shards: 8, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("workers=%d: report differs from workers=1 at fixed (seed, shards)", workers)
		}
	}
}

func TestRunSingleShardMatchesLegacySequential(t *testing.T) {
	// Shards 0 (default) and 1 must reproduce the pre-sharding sequential
	// report bit-for-bit: one rng stream seeded Seed, one Welford pass.
	blk, probs := shardTestBlock(t)
	legacy, err := Run(blk, Config{Vectors: 1500, Seed: 21, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(blk, Config{Vectors: 1500, Seed: 21, InputProbs: probs, Shards: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, one) {
		t.Errorf("Shards=1 differs from default config:\n%+v\n%+v", legacy, one)
	}
}

func TestRunShardedEstimatesAgree(t *testing.T) {
	// Different shard counts are different samples of the same process:
	// totals must agree within overlapping confidence intervals.
	blk, probs := shardTestBlock(t)
	seq, err := Run(blk, Config{Vectors: 8192, Seed: 1, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Run(blk, Config{Vectors: 8192, Seed: 1, InputProbs: probs, Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Cycles != seq.Cycles {
		t.Errorf("cycles %d != %d", sh.Cycles, seq.Cycles)
	}
	if math.Abs(sh.Total-seq.Total) > (seq.TotalCI.High-seq.TotalCI.Low)+(sh.TotalCI.High-sh.TotalCI.Low) {
		t.Errorf("sharded total %v too far from sequential %v (CIs %+v vs %+v)",
			sh.Total, seq.Total, sh.TotalCI, seq.TotalCI)
	}
}

// TestWideMatchesScalarKernel is the cross-check harness for the
// bit-parallel engine: over random circuits, seeds, and shard counts, the
// 64-lane kernel's Report must be byte-identical to the scalar reference
// oracle — including every float (power sums, confidence interval,
// per-cell frequencies).
func TestWideMatchesScalarKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51DE))
	for trial := 0; trial < 8; trial++ {
		n := gen.Generate(gen.Params{
			Name:    "xchk",
			Inputs:  4 + rng.Intn(12),
			Outputs: 2 + rng.Intn(6),
			Gates:   20 + rng.Intn(120),
			Seed:    rng.Int63(),
			OrProb:  0.3 + 0.5*rng.Float64(),
		})
		asg := make(phase.Assignment, n.NumOutputs())
		for i := range asg {
			asg[i] = rng.Intn(2) == 1
		}
		res, err := phase.Apply(n, asg)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := domino.Map(res, domino.DefaultLibrary())
		if err != nil {
			t.Fatal(err)
		}
		probs := make([]float64, n.NumInputs())
		for i := range probs {
			probs[i] = rng.Float64()
		}
		// Vector counts off the 64-lane grid exercise the tail-word
		// masking; shard counts exercise per-shard history restarts.
		for _, c := range []struct{ vectors, shards int }{
			{1, 1}, {63, 1}, {64, 1}, {65, 1}, {1000, 1},
			{1000, 3}, {2048, 8}, {777, 16}, {100, 64},
		} {
			cfg := Config{
				Vectors: c.vectors, Seed: int64(trial*100 + c.shards),
				InputProbs: probs, Shards: c.shards, Workers: 2,
			}
			cfg.Kernel = KernelScalar
			scalar, err := Run(blk, cfg)
			if err != nil {
				t.Fatalf("trial %d scalar %+v: %v", trial, c, err)
			}
			cfg.Kernel = KernelWide
			wide, err := Run(blk, cfg)
			if err != nil {
				t.Fatalf("trial %d wide %+v: %v", trial, c, err)
			}
			if !reflect.DeepEqual(scalar, wide) {
				t.Fatalf("trial %d %+v: kernels disagree\nscalar: %+v\nwide:   %+v",
					trial, c, scalar, wide)
			}
			cfg.Kernel = KernelAuto
			auto, err := Run(blk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(auto, wide) {
				t.Fatalf("trial %d %+v: KernelAuto differs from KernelWide", trial, c)
			}
		}
	}
}

// TestRunDegenerateShardSizing is the regression test for Vectors <
// Shards: the budget must clamp to one vector per shard — no zero-vector
// shards, no NaNs from empty Welford accumulators in the merge.
func TestRunDegenerateShardSizing(t *testing.T) {
	blk, probs := shardTestBlock(t)
	for _, c := range []struct{ vectors, shards int }{
		{1, 64}, {2, 64}, {3, 64}, {5, 1000}, {63, 64},
	} {
		for _, k := range []Kernel{KernelScalar, KernelWide} {
			rep, err := Run(blk, Config{
				Vectors: c.vectors, Seed: 2, InputProbs: probs,
				Shards: c.shards, Workers: 8, Kernel: k,
			})
			if err != nil {
				t.Fatalf("%+v kernel=%d: %v", c, k, err)
			}
			if rep.Cycles != c.vectors {
				t.Errorf("%+v: cycles = %d, want %d", c, rep.Cycles, c.vectors)
			}
			for name, v := range map[string]float64{
				"DominoPower":    rep.DominoPower,
				"InputInvPower":  rep.InputInvPower,
				"OutputInvPower": rep.OutputInvPower,
				"Total":          rep.Total,
				"CI.Mean":        rep.TotalCI.Mean,
				"CI.Low":         rep.TotalCI.Low,
				"CI.High":        rep.TotalCI.High,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%+v kernel=%d: %s = %v", c, k, name, v)
				}
			}
			for ci, f := range rep.PerCellFreq {
				if math.IsNaN(f) {
					t.Errorf("%+v kernel=%d: PerCellFreq[%d] is NaN", c, k, ci)
				}
			}
		}
	}
}

// TestTotalCINotDegenerate guards the error bar itself: short runs fall
// back to per-cycle variance samples and long runs use batch means, but
// in both regimes (and in both kernels) the 95% interval must have
// positive width on a block with varying cycle power.
func TestTotalCINotDegenerate(t *testing.T) {
	blk, probs := shardTestBlock(t)
	for _, c := range []struct{ vectors, shards int }{
		{50, 1},   // < one window: per-cycle samples
		{65, 1},   // one full window + 1-cycle tail: per-cycle samples
		{200, 4},  // 50-cycle shards: per-cycle samples
		{4096, 8}, // batch means, 8 full windows per shard
		{2000, 3}, // batch means with partial tail windows per shard
	} {
		for _, k := range []Kernel{KernelScalar, KernelWide} {
			rep, err := Run(blk, Config{
				Vectors: c.vectors, Seed: 11, InputProbs: probs,
				Shards: c.shards, Workers: 2, Kernel: k,
			})
			if err != nil {
				t.Fatalf("%+v kernel=%d: %v", c, k, err)
			}
			if !(rep.TotalCI.Low < rep.TotalCI.High) {
				t.Errorf("%+v kernel=%d: degenerate CI [%v, %v]", c, k, rep.TotalCI.Low, rep.TotalCI.High)
			}
			if rep.TotalCI.Mean != rep.Total {
				t.Errorf("%+v kernel=%d: CI centered on %v, want Total %v", c, k, rep.TotalCI.Mean, rep.Total)
			}
			if rep.TotalCI.Low > rep.Total || rep.Total > rep.TotalCI.High {
				t.Errorf("%+v kernel=%d: CI [%v, %v] does not bracket Total %v",
					c, k, rep.TotalCI.Low, rep.TotalCI.High, rep.Total)
			}
		}
	}
}

func TestRunShardsCappedByVectors(t *testing.T) {
	blk, probs := shardTestBlock(t)
	rep, err := Run(blk, Config{Vectors: 3, Seed: 2, InputProbs: probs, Shards: 64, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", rep.Cycles)
	}
}
