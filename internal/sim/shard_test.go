package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/domino"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/prob"
)

// shardTestBlock maps a mid-size synthetic network with a mixed-phase
// assignment so all three activity classes (domino cells, input and
// output boundary inverters) are exercised.
func shardTestBlock(t testing.TB) (*domino.Block, []float64) {
	t.Helper()
	n := gen.Generate(gen.Params{Name: "shard", Inputs: 12, Outputs: 6, Gates: 90, Seed: 97, OrProb: 0.6})
	n = n.Optimize()
	if n.CountKind(logic.KindXor) > 0 {
		n = n.DecomposeXor().Optimize()
	}
	asg := phase.AllPositive(n.NumOutputs())
	for i := range asg {
		asg[i] = i%2 == 1
	}
	res, err := phase.Apply(n, asg)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return blk, prob.Uniform(n, 0.5)
}

func TestRunShardedIsDeterministic(t *testing.T) {
	blk, probs := shardTestBlock(t)
	for _, shards := range []int{1, 2, 7, 16} {
		cfg := Config{Vectors: 2048, Seed: 5, InputProbs: probs, Shards: shards, Workers: 4}
		a, err := Run(blk, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := Run(blk, cfg)
		if err != nil {
			t.Fatalf("shards=%d rerun: %v", shards, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: two runs with identical (seed, shards) differ:\n%+v\n%+v", shards, a, b)
		}
	}
}

func TestRunShardedIndependentOfWorkers(t *testing.T) {
	blk, probs := shardTestBlock(t)
	var want *Report
	for _, workers := range []int{1, 2, 3, 8} {
		rep, err := Run(blk, Config{Vectors: 3000, Seed: 9, InputProbs: probs, Shards: 8, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("workers=%d: report differs from workers=1 at fixed (seed, shards)", workers)
		}
	}
}

func TestRunSingleShardMatchesLegacySequential(t *testing.T) {
	// Shards 0 (default) and 1 must reproduce the pre-sharding sequential
	// report bit-for-bit: one rng stream seeded Seed, one Welford pass.
	blk, probs := shardTestBlock(t)
	legacy, err := Run(blk, Config{Vectors: 1500, Seed: 21, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(blk, Config{Vectors: 1500, Seed: 21, InputProbs: probs, Shards: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, one) {
		t.Errorf("Shards=1 differs from default config:\n%+v\n%+v", legacy, one)
	}
}

func TestRunShardedEstimatesAgree(t *testing.T) {
	// Different shard counts are different samples of the same process:
	// totals must agree within overlapping confidence intervals.
	blk, probs := shardTestBlock(t)
	seq, err := Run(blk, Config{Vectors: 8192, Seed: 1, InputProbs: probs})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Run(blk, Config{Vectors: 8192, Seed: 1, InputProbs: probs, Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Cycles != seq.Cycles {
		t.Errorf("cycles %d != %d", sh.Cycles, seq.Cycles)
	}
	if math.Abs(sh.Total-seq.Total) > (seq.TotalCI.High-seq.TotalCI.Low)+(sh.TotalCI.High-sh.TotalCI.Low) {
		t.Errorf("sharded total %v too far from sequential %v (CIs %+v vs %+v)",
			sh.Total, seq.Total, sh.TotalCI, seq.TotalCI)
	}
}

func TestRunShardsCappedByVectors(t *testing.T) {
	blk, probs := shardTestBlock(t)
	rep, err := Run(blk, Config{Vectors: 3, Seed: 2, InputProbs: probs, Shards: 64, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", rep.Cycles)
	}
}
