package report

import (
	"strings"
	"testing"

	"repro/internal/flow"
)

func sampleRows() []*flow.Row {
	return []*flow.Row{
		{
			Name: "frg1", Desc: "Public Domain", PIs: 31, POs: 3,
			MA:             flow.Synthesis{Size: 69, SimPower: 84.59},
			MP:             flow.Synthesis{Size: 73, SimPower: 54.03},
			AreaPenaltyPct: 5.8, PowerSavingPct: 36.1,
			PaperAreaPenaltyPct: 48.0, PaperPowerSavingPct: 34.1,
		},
		{
			Name: "x1", Desc: "Public Domain", PIs: 87, POs: 28,
			MA:             flow.Synthesis{Size: 203, SimPower: 174.26},
			MP:             flow.Synthesis{Size: 212, SimPower: 160.74},
			AreaPenaltyPct: 4.4, PowerSavingPct: 7.8,
			PaperAreaPenaltyPct: 4.2, PaperPowerSavingPct: 8.9,
		},
	}
}

func TestTableContainsRowsAndAverage(t *testing.T) {
	out := Table("Table 1", sampleRows())
	for _, want := range []string{"Table 1", "frg1", "x1", "Average", "36.1", "48.0", "84.59"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Average of 36.1 and 7.8 is 21.95, which rounds down in binary
	// floating point.
	if !strings.Contains(out, "21.9") {
		t.Errorf("average power saving not rendered:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sampleRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,desc,") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "frg1,Public Domain,31,3,69,") {
		t.Errorf("bad row: %s", lines[1])
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("header has %d fields, row has %d", len(header), len(row))
	}
}

func TestCurve(t *testing.T) {
	out := Curve("demo", []float64{0, 0.5, 1}, []float64{0, 0.5, 0})
	if !strings.Contains(out, "demo") || !strings.Contains(out, "0.500") {
		t.Errorf("curve output wrong:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("curve lines = %d, want 5 (title + header + 3 samples)", got)
	}
}
