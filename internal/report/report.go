// Package report renders flow results in the layout of the paper's
// tables, with the paper's own numbers alongside for comparison.
package report

import (
	"fmt"
	"strings"

	"repro/internal/flow"
)

// Table renders rows in the paper's column layout. title is printed as a
// caption; the average line mirrors the paper's.
func Table(title string, rows []*flow.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %-14s %5s %5s | %6s %9s | %6s %9s | %10s %10s | %10s %10s\n",
		"Ckt", "Desc.", "#PIs", "#POs", "MA sz", "MA pwr", "MP sz", "MP pwr",
		"%AreaPen", "%PwrSav", "paper%AP", "paper%PS")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 132))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %5d %5d | %6d %9.2f | %6d %9.2f | %10.1f %10.1f | %10.1f %10.1f\n",
			r.Name, r.Desc, r.PIs, r.POs,
			r.MA.Size, r.MA.SimPower,
			r.MP.Size, r.MP.SimPower,
			r.AreaPenaltyPct, r.PowerSavingPct,
			r.PaperAreaPenaltyPct, r.PaperPowerSavingPct)
	}
	areaPen, pwrSav := flow.Averages(rows)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 132))
	fmt.Fprintf(&b, "%-12s %-14s %5s %5s | %6s %9s | %6s %9s | %10.1f %10.1f |\n",
		"Average", "", "", "", "", "", "", "", areaPen, pwrSav)
	return b.String()
}

// CSV renders rows as comma-separated values with a header, for
// downstream plotting.
func CSV(rows []*flow.Row) string {
	var b strings.Builder
	b.WriteString("name,desc,pis,pos,ma_size,ma_power,mp_size,mp_power,area_penalty_pct,power_saving_pct,paper_area_penalty_pct,paper_power_saving_pct,ma_critical,mp_critical,mp_met_timing\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.4f,%d,%.4f,%.2f,%.2f,%.2f,%.2f,%.3f,%.3f,%v\n",
			r.Name, r.Desc, r.PIs, r.POs,
			r.MA.Size, r.MA.SimPower, r.MP.Size, r.MP.SimPower,
			r.AreaPenaltyPct, r.PowerSavingPct,
			r.PaperAreaPenaltyPct, r.PaperPowerSavingPct,
			r.MA.Critical, r.MP.Critical, r.MP.MetTiming)
	}
	return b.String()
}

// Curve renders (p, S) samples as a two-column table, used for the
// Figure 2 reproduction.
func Curve(title string, ps, ss []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%8s %10s\n", title, "p", "S")
	for i := range ps {
		fmt.Fprintf(&b, "%8.3f %10.4f\n", ps[i], ss[i])
	}
	return b.String()
}
