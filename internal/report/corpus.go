package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/flow"
)

// SequentialTable renders sequential-flow rows in the layout dominoflow
// -seq prints (shared by the generated-circuit path and the corpus
// engine for latched models).
func SequentialTable(title string, rows []*flow.SequentialRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %5s %5s %7s | %6s %9s | %6s %9s | %9s %9s\n",
		"circuit", "#FFs", "cut", "pseudo", "MA sz", "MA pwr", "MP sz", "MP pwr", "%AreaPen", "%PwrSav")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5d %5d %7d | %6d %9.3f | %6d %9.3f | %9.1f %9.1f\n",
			r.Name, r.FFs, r.Cut, r.PseudoInputs,
			r.MA.Size, r.MA.SimPower, r.MP.Size, r.MP.SimPower,
			r.AreaPenaltyPct, r.PowerSavingPct)
	}
	return b.String()
}

// CorpusTable renders a corpus batch: combinational rows in the paper's
// table layout, latched rows in the sequential layout, and failed rows
// listed last with their isolated errors.
func CorpusTable(title string, rows []*flow.CorpusRow) string {
	var comb []*flow.Row
	var seqRows []*flow.SequentialRow
	var failed []*flow.CorpusRow
	for _, r := range rows {
		switch {
		case r.Err != "":
			failed = append(failed, r)
		case r.SeqRow != nil:
			seqRows = append(seqRows, r.SeqRow)
		case r.Row != nil:
			comb = append(comb, r.Row)
		}
	}
	var b strings.Builder
	if len(comb) > 0 {
		b.WriteString(Table(title, comb))
	}
	if len(seqRows) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(SequentialTable("Sequential circuits (enhanced-MFVS partition + steady-state probabilities)", seqRows))
	}
	if len(failed) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%d circuit(s) failed:\n", len(failed))
		for _, r := range failed {
			fmt.Fprintf(&b, "  %-24s %s\n", r.Path, r.Err)
		}
	}
	return b.String()
}

// CorpusSchemaVersion identifies the CorpusRecord JSONL schema. Version
// history:
//
//	1 — PR 5: the original corpus record.
//	2 — adds timed_out (present only on rows whose error came from the
//	    per-circuit timeout or from cancellation — the documented
//	    non-deterministic rows, which internal/serve never caches).
//	3 — adds engine and budget_trips (present only on rows the
//	    resource-budget degradation chain touched: engine names the
//	    fallback probability engine that produced the row, budget_trips
//	    counts the BDD node-cap and sim vector-clamp trips across its
//	    attempted stages). Rows no budget touched serialize byte-for-byte
//	    as in version 2.
//	4 — engine may now also be "exact-sifted": the configured exact
//	    engine blew the BDD node budget but the retry with in-place
//	    dynamic reordering (Rudell sifting) completed — full-accuracy
//	    probabilities under a sifted variable order. No field changes;
//	    rows untouched by reordering serialize byte-for-byte as in
//	    version 3.
//
// dominod reports the version in the X-Dominod-Schema-Version response
// header of its row streams; README.md documents the field list.
const CorpusSchemaVersion = 4

// CorpusRecord is the flat JSONL projection of one corpus row — one
// line per circuit, streamed while the batch runs. Size/power fields
// come from the Table 1/2 flow for combinational circuits and from the
// partitioned sequential flow (sequential=true) for latched ones; both
// emit every measurement field explicitly (zero is a valid value), so
// failed rows are recognizable only by a non-empty error — their
// measurement fields read zero. met_timing is present only on
// combinational rows (the sequential flow has no timing target).
// wall_seconds is wall-clock and not part of the deterministic row
// contract; timed_out marks the rows whose *error* is equally
// non-deterministic.
type CorpusRecord struct {
	Index          int     `json:"index"`
	Name           string  `json:"name"`
	Path           string  `json:"path"`
	Format         string  `json:"format"`
	Sequential     bool    `json:"sequential"`
	Error          string  `json:"error,omitempty"`
	TimedOut       bool    `json:"timed_out,omitempty"`
	Engine         string  `json:"engine,omitempty"`
	BudgetTrips    int     `json:"budget_trips,omitempty"`
	PIs            int     `json:"pis"`
	POs            int     `json:"pos"`
	FFs            int     `json:"ffs"`
	Cut            int     `json:"cut"`
	PseudoInputs   int     `json:"pseudo_inputs"`
	MASize         int     `json:"ma_size"`
	MAPower        float64 `json:"ma_power"`
	MACritical     float64 `json:"ma_critical"`
	MPSize         int     `json:"mp_size"`
	MPPower        float64 `json:"mp_power"`
	MPCritical     float64 `json:"mp_critical"`
	AreaPenaltyPct float64 `json:"area_penalty_pct"`
	PowerSavingPct float64 `json:"power_saving_pct"`
	MetTiming      *bool   `json:"met_timing,omitempty"`
	WallSec        float64 `json:"wall_seconds"`
}

// NewCorpusRecord projects a corpus row onto its JSONL schema.
func NewCorpusRecord(r *flow.CorpusRow) CorpusRecord {
	rec := CorpusRecord{
		Index:       r.Index,
		Name:        r.Name,
		Path:        r.Path,
		Format:      r.Format,
		Sequential:  r.Sequential,
		Error:       r.Err,
		TimedOut:    r.TimedOut,
		Engine:      r.Engine,
		BudgetTrips: r.BudgetTrips,
		WallSec:     r.WallSec,
	}
	switch {
	case r.Row != nil:
		rec.PIs, rec.POs = r.Row.PIs, r.Row.POs
		rec.MASize, rec.MAPower, rec.MACritical = r.Row.MA.Size, r.Row.MA.SimPower, r.Row.MA.Critical
		rec.MPSize, rec.MPPower, rec.MPCritical = r.Row.MP.Size, r.Row.MP.SimPower, r.Row.MP.Critical
		rec.AreaPenaltyPct = r.Row.AreaPenaltyPct
		rec.PowerSavingPct = r.Row.PowerSavingPct
		met := r.Row.MP.MetTiming
		rec.MetTiming = &met
	case r.SeqRow != nil:
		rec.FFs, rec.Cut, rec.PseudoInputs = r.SeqRow.FFs, r.SeqRow.Cut, r.SeqRow.PseudoInputs
		rec.MASize, rec.MAPower = r.SeqRow.MA.Size, r.SeqRow.MA.SimPower
		rec.MPSize, rec.MPPower = r.SeqRow.MP.Size, r.SeqRow.MP.SimPower
		rec.AreaPenaltyPct = r.SeqRow.AreaPenaltyPct
		rec.PowerSavingPct = r.SeqRow.PowerSavingPct
	}
	return rec
}

// WriteCorpusJSONL appends one row's record to w as a single JSON line.
// Feeding it from flow.CorpusConfig.OnRow streams the batch in index
// order while it runs.
func WriteCorpusJSONL(w io.Writer, r *flow.CorpusRow) error {
	line, err := json.Marshal(NewCorpusRecord(r))
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}
