package bdd

import (
	"fmt"
	"sort"
)

// In-place dynamic variable reordering — Rudell's sifting (ICCAD'93, the
// CUDD/BuDDy lineage) — on the open-addressed unique table.
//
// The reordering contract:
//
//   - SwapLevels and Reorder preserve the *slots* (Refs) of every node
//     reachable from a protected root. A swap of adjacent levels l/l+1
//     touches only the nodes at those two levels: nodes at level l not
//     depending on the level-l+1 variable keep their triple and move to
//     l+1; level-l+1 nodes are rekeyed to l in place; level-l nodes that
//     do depend on the other variable are rewritten in place as deciders
//     of it (F = y ? (x?f11:f01) : (x?f10:f00)). External Refs into the
//     protected forest therefore stay valid across any number of swaps.
//   - Every Ref *not* reachable from a protected root is invalidated:
//     reorder-state setup garbage-collects unreachable interned nodes and
//     reuses their slots for swap-created nodes.
//   - Every decision — garbage-collection order, sift order, tie-breaks,
//     slot assignment, growth aborts, the auto-reorder trigger — is a
//     pure function of the table state, so a build+reorder sequence is
//     bit-identical across processes and worker counts, and dominod may
//     cache its results.
//
// The budget token is polled per swap (cancellation) and per created
// node (node cap + cancellation), so both land inside a reorder as the
// usual CUDD-style interrupt panic; the build boundary (or Reorder's own
// CatchInterrupt) converts it to an error and the manager is left
// unusable-but-not-corrupt — a Reset* restores it.

// reorderState is the ephemeral bookkeeping a reorder needs: reference
// counts, a per-level node index (swap cost proportional to the two
// levels' populations), and a free list of collected slots. It is built
// on demand from the protected roots and dropped when a reorder ends or
// any ordinary mk interns a node the state doesn't know about.
type reorderState struct {
	// refcnt[r] = number of live parents of r plus one pin per protected
	// occurrence. Terminals accumulate counts but are never collected.
	refcnt []int32
	// pos[r] = index of r in levels[nodes[r].level].
	pos []int32
	// levels[l] lists the live nodes at level l in deterministic order.
	levels [][]Ref
	// free holds collected slots for reuse by swap-created nodes, popped
	// from the end.
	free []Ref
	// dead is the deferred death worklist shared across swaps.
	dead []Ref
}

const (
	// autoReorderFloor is the smallest live-node count an automatic
	// reorder can trigger at (unless a budget fraction point is lower) —
	// tiny per-cone builds never pay a sift.
	autoReorderFloor = 4096
	// defaultReorderFraction of MaxBDDNodes at which an automatic
	// reorder fires even before live nodes double.
	defaultReorderFraction = 0.5
)

// Protect registers roots as protected across reorders: nodes reachable
// from any registered slice survive SwapLevels/Reorder with their Refs
// intact. The slice is aliased, not copied — its *current* contents are
// re-read whenever reorder state is built, so a caller may register a
// result slice up front and fill it as a build progresses
// (BuildNetworkLitsIn does exactly that). Reset and ResetWithOrder clear
// the registrations.
func (m *Manager) Protect(roots []Ref) {
	m.protected = append(m.protected, roots)
	m.rs = nil
}

// LiveNodes returns the number of interned non-terminal nodes. Before
// any reorder this equals Size()-2; after a reorder it counts only live
// nodes (collected slots are excluded).
func (m *Manager) LiveNodes() int { return m.uniqueCount }

// Reorders returns the number of completed in-place reorders over the
// manager's lifetime (Reset does not clear it, matching the budget
// attachment's lifetime).
func (m *Manager) Reorders() int { return m.reorders }

// SetAutoReorder enables or disables automatic reordering at safe points
// during BuildNetwork* builds. When enabled, a reorder fires once live
// nodes double since the last reorder (with a floor of 4096) or cross
// the configured fraction (default 0.5) of the budget's MaxBDDNodes.
// Both triggers are pure functions of table state, so enabling
// auto-reorder keeps builds deterministic. Reset keeps the setting.
func (m *Manager) SetAutoReorder(on bool) {
	m.autoReorder = on
	if on {
		m.scheduleNextReorder()
	}
}

// SetAutoReorderFraction overrides the fraction of MaxBDDNodes at which
// auto-reorder fires (0 restores the default 0.5).
func (m *Manager) SetAutoReorderFraction(f float64) {
	m.reorderFraction = f
	if m.autoReorder {
		m.scheduleNextReorder()
	}
}

// scheduleNextReorder fixes the live-node count the next automatic
// reorder triggers at: double the current live count (floored), pulled
// down to the budget-fraction point when that lies ahead of the current
// size.
func (m *Manager) scheduleNextReorder() {
	next := 2 * m.uniqueCount
	if next < autoReorderFloor {
		next = autoReorderFloor
	}
	if m.budget != nil {
		if mx := m.budget.MaxBDDNodes(); mx > 0 {
			frac := m.reorderFraction
			if frac <= 0 {
				frac = defaultReorderFraction
			}
			if fp := int(frac * float64(mx)); fp > m.uniqueCount && fp < next {
				next = fp
			}
		}
	}
	m.nextReorderAt = next
}

// maybeReorder runs an automatic reorder when the trigger point is
// reached. It must only be called at safe points — between node
// operations, never from inside an apply/ITE recursion — and panics
// with the usual typed interrupt on budget trip or cancellation.
func (m *Manager) maybeReorder() {
	if !m.autoReorder || m.uniqueCount < m.nextReorderAt {
		return
	}
	m.reorderNow()
	m.scheduleNextReorder()
}

// Reorder runs one full sifting pass in place: variables are sifted
// largest-level-first (ties by lower variable index) through every
// position, each left at the position minimizing the live node count
// (first position found on a strict improvement — deterministic), with
// a 1.2× growth abort per direction. Refs reachable from protected
// roots remain valid; all others are invalidated. A budget trip or
// cancellation mid-reorder returns an error and leaves the manager
// unusable until the next Reset*.
func (m *Manager) Reorder() error { return CatchInterrupt(m.reorderNow) }

// SwapLevels exchanges adjacent levels l and l+1 in place, rewriting
// only the nodes at those two levels. It is the primitive Reorder is
// built from, exported for direct order surgery and property tests; the
// same protected-root contract applies.
func (m *Manager) SwapLevels(l int) error {
	if l < 0 || l+1 >= m.NumVars() {
		return fmt.Errorf("bdd: swap level %d out of range [0,%d)", l, m.NumVars()-1)
	}
	return CatchInterrupt(func() {
		if m.rs == nil {
			m.buildReorderState()
		}
		m.swapLevels(l)
	})
}

// reorderNow is the panicking core of Reorder, also invoked by the
// auto-reorder trigger inside builds.
func (m *Manager) reorderNow() {
	if m.NumVars() < 2 {
		return
	}
	if m.rs == nil {
		m.buildReorderState()
	}
	defer func() { m.rs = nil }()
	// Sift order: start-population descending, variable index ascending.
	type cand struct{ v, pop int }
	cands := make([]cand, 0, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		if pop := len(m.rs.levels[m.levelOfVar[v]]); pop > 0 {
			cands = append(cands, cand{v, pop})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pop != cands[j].pop {
			return cands[i].pop > cands[j].pop
		}
		return cands[i].v < cands[j].v
	})
	for _, c := range cands {
		m.siftVar(c.v)
	}
	m.reorders++
}

// siftVar moves variable v through every level — down to the bottom,
// then up to the top — tracking the live node count after each swap,
// then parks it at the best position found. A direction aborts once the
// count exceeds 1.2× the size at sift start.
func (m *Manager) siftVar(v int) {
	start := m.uniqueCount
	limit := start + start/5
	n := m.NumVars()
	pos := int(m.levelOfVar[v])
	bestSize, bestPos := start, pos
	size := start
	for pos < n-1 {
		m.swapLevels(pos)
		pos++
		size = m.uniqueCount
		if size < bestSize {
			bestSize, bestPos = size, pos
		}
		if size > limit {
			break
		}
	}
	for pos > 0 {
		m.swapLevels(pos - 1)
		pos--
		size = m.uniqueCount
		if size < bestSize {
			bestSize, bestPos = size, pos
		}
		if size > limit {
			break
		}
	}
	for pos < bestPos {
		m.swapLevels(pos)
		pos++
	}
	for pos > bestPos {
		m.swapLevels(pos - 1)
		pos--
	}
}

// buildReorderState marks the protected forest, builds the per-level
// index and reference counts, garbage-collects unreachable interned
// nodes (their slots seed the free list), and drops the operation
// caches (their entries may name collected slots).
func (m *Manager) buildReorderState() {
	numVars := m.NumVars()
	rs := &reorderState{
		refcnt: make([]int32, len(m.nodes)),
		pos:    make([]int32, len(m.nodes)),
		levels: make([][]Ref, numVars),
	}
	seen := make([]bool, len(m.nodes))
	seen[False], seen[True] = true, true
	var mark func(Ref)
	mark = func(r Ref) {
		if seen[r] {
			return
		}
		seen[r] = true
		n := &m.nodes[r]
		mark(n.lo)
		mark(n.hi)
		rs.refcnt[n.lo]++
		rs.refcnt[n.hi]++
	}
	for _, roots := range m.protected {
		for _, r := range roots {
			mark(r)
			rs.refcnt[r]++ // pin: protected nodes never die
		}
	}
	// Garbage collection: interned nodes unreachable from any protected
	// root leave the table; their slots are freed in ascending order so
	// slot reuse is independent of hash-table layout.
	var garbage []Ref
	for _, r := range m.unique {
		if r != False && !seen[r] {
			garbage = append(garbage, r)
		}
	}
	sort.Slice(garbage, func(i, j int) bool { return garbage[i] < garbage[j] })
	for _, r := range garbage {
		m.uniqueDelete(r)
	}
	rs.free = garbage
	for r := 2; r < len(m.nodes); r++ {
		if !seen[r] {
			continue
		}
		lvl := m.nodes[r].level
		rs.pos[r] = int32(len(rs.levels[lvl]))
		rs.levels[lvl] = append(rs.levels[lvl], Ref(r))
	}
	// The lossy caches may hold entries naming collected slots; they are
	// advisory for results but must not resolve to reused slots.
	for i := range m.ite {
		m.ite[i] = iteEntry{}
	}
	for i := range m.binop {
		m.binop[i] = binopEntry{}
	}
	m.rs = rs
}

// swapLevels is the in-place adjacent swap. Phase order matters for
// canonicity: classification snapshots the four grandchildren while
// child levels are still old; both levels leave the unique table while
// triples still match their entries; level-l+1 nodes rekey to l and
// movers to l+1 *before* dependents intern their new children, so
// swap-created deciders share with movers; deaths cascade last.
func (m *Manager) swapLevels(l int) {
	if m.budget != nil {
		if err := m.budget.Err(); err != nil {
			panic(buildInterrupt{err})
		}
	}
	rs := m.rs
	lx, ly := int32(l), int32(l+1)
	levL := rs.levels[l]
	levY := rs.levels[l+1]
	if len(levL) == 0 {
		// No level-l nodes: level-l+1 nodes just rekey one level up.
		for _, r := range levY {
			m.uniqueDelete(r)
		}
		for _, r := range levY {
			m.nodes[r].level = lx
			m.uniqueInsert(r)
		}
		rs.levels[l], rs.levels[l+1] = levY, levL
		m.swapVarMaps(l)
		return
	}
	// Classify level-l nodes: movers keep their children; dependents
	// snapshot the grandchildren quadruple before any level changes.
	type depNode struct {
		r                  Ref
		f00, f01, f10, f11 Ref
	}
	var movers []Ref
	var deps []depNode
	for _, r := range levL {
		n := &m.nodes[r]
		f0, f1 := n.lo, n.hi
		d := depNode{r: r, f00: f0, f01: f0, f10: f1, f11: f1}
		isDep := false
		if c := &m.nodes[f0]; c.level == ly {
			d.f00, d.f01 = c.lo, c.hi
			isDep = true
		}
		if c := &m.nodes[f1]; c.level == ly {
			d.f10, d.f11 = c.lo, c.hi
			isDep = true
		}
		if isDep {
			deps = append(deps, d)
		} else {
			movers = append(movers, r)
		}
	}
	// Unkey both levels while triples still match their table entries.
	for _, r := range levL {
		m.uniqueDelete(r)
	}
	for _, r := range levY {
		m.uniqueDelete(r)
	}
	// Rekey: old level-l+1 nodes decide their variable at level l now;
	// movers decide theirs at l+1. Slots and children are untouched, so
	// external Refs keep their meaning.
	newL := make([]Ref, 0, len(deps)+len(levY))
	for _, d := range deps {
		newL = append(newL, d.r)
	}
	for _, r := range levY {
		m.nodes[r].level = lx
		m.uniqueInsert(r)
		newL = append(newL, r)
	}
	newL1 := make([]Ref, 0, len(movers)+len(deps))
	for _, r := range movers {
		m.nodes[r].level = ly
		m.uniqueInsert(r)
		newL1 = append(newL1, r)
	}
	rs.levels[l] = newL
	rs.levels[l+1] = newL1
	for i, r := range newL {
		rs.pos[r] = int32(i)
	}
	for i, r := range newL1 {
		rs.pos[r] = int32(i)
	}
	// Rewrite dependents in place as deciders of the other variable:
	// F = y ? (x?f11:f01) : (x?f10:f00). Distinct canonical functions
	// produce distinct triples, so the in-place reinsertions never
	// collide; mkSwap interns the two new cofactors with full sharing.
	for _, d := range deps {
		g0 := m.mkSwap(ly, d.f00, d.f10)
		g1 := m.mkSwap(ly, d.f01, d.f11)
		n := &m.nodes[d.r]
		of0, of1 := n.lo, n.hi
		n.level, n.lo, n.hi = lx, g0, g1
		m.uniqueInsert(d.r)
		rs.refcnt[g0]++
		rs.refcnt[g1]++
		m.deferDecRef(of0)
		m.deferDecRef(of1)
	}
	m.collectDead()
	m.swapVarMaps(l)
}

// mkSwap interns (level, lo, hi) during a swap: unique-table sharing
// with movers and previously created nodes, slot reuse from the free
// list, level index and refcount maintenance, and a budget poll. It
// bypasses the operation caches entirely.
func (m *Manager) mkSwap(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	idx := tripleHash(level, lo, hi) & mask
	for {
		r := m.unique[idx]
		if r == False {
			break
		}
		n := &m.nodes[r]
		if n.level == level && n.lo == lo && n.hi == hi {
			return r
		}
		idx = (idx + 1) & mask
	}
	rs := m.rs
	var r Ref
	if k := len(rs.free); k > 0 {
		r = rs.free[k-1]
		rs.free = rs.free[:k-1]
		m.nodes[r] = node{level: level, lo: lo, hi: hi}
	} else {
		if len(m.nodes) == cap(m.nodes) {
			step := cap(m.nodes) / 2
			if step < nodeChunk {
				step = nodeChunk
			}
			ns := make([]node, len(m.nodes), cap(m.nodes)+step)
			copy(ns, m.nodes)
			m.nodes = ns
		}
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
		rs.refcnt = append(rs.refcnt, 0)
		rs.pos = append(rs.pos, 0)
	}
	m.uniqueInsert(r)
	rs.refcnt[r] = 0
	rs.refcnt[lo]++
	rs.refcnt[hi]++
	rs.pos[r] = int32(len(rs.levels[level]))
	rs.levels[level] = append(rs.levels[level], r)
	if m.budget != nil {
		m.pollBudget()
	}
	return r
}

// deferDecRef decrements a reference count and queues the node for
// collection when it reaches zero. Terminals never queue.
func (m *Manager) deferDecRef(r Ref) {
	rs := m.rs
	rs.refcnt[r]--
	if r > True && rs.refcnt[r] == 0 {
		rs.dead = append(rs.dead, r)
	}
}

// collectDead drains the death worklist: each dead node leaves the
// unique table and its level list, releases its children (cascading),
// and frees its slot for reuse.
func (m *Manager) collectDead() {
	rs := m.rs
	for len(rs.dead) > 0 {
		r := rs.dead[len(rs.dead)-1]
		rs.dead = rs.dead[:len(rs.dead)-1]
		if rs.refcnt[r] != 0 {
			continue
		}
		n := &m.nodes[r]
		m.uniqueDelete(r)
		list := rs.levels[n.level]
		p := rs.pos[r]
		last := list[len(list)-1]
		list[p] = last
		rs.pos[last] = p
		rs.levels[n.level] = list[:len(list)-1]
		m.deferDecRef(n.lo)
		m.deferDecRef(n.hi)
		rs.free = append(rs.free, r)
	}
}

// swapVarMaps exchanges the variable↔level maps for levels l and l+1.
func (m *Manager) swapVarMaps(l int) {
	x, y := m.varAtLevel[l], m.varAtLevel[l+1]
	m.varAtLevel[l], m.varAtLevel[l+1] = y, x
	m.levelOfVar[x], m.levelOfVar[y] = int32(l+1), int32(l)
}

// uniqueInsert places an already-built node into the unique table (no
// lookup — the caller guarantees the triple is absent), growing at 3/4
// load like mk.
func (m *Manager) uniqueInsert(r Ref) {
	if 4*(m.uniqueCount+1) > 3*len(m.unique) {
		m.growUnique()
	}
	n := &m.nodes[r]
	mask := uint64(len(m.unique) - 1)
	idx := tripleHash(n.level, n.lo, n.hi) & mask
	for m.unique[idx] != False {
		idx = (idx + 1) & mask
	}
	m.unique[idx] = r
	m.uniqueCount++
}

// uniqueDelete removes a node from the open-addressed table with
// backward-shift rehoming, preserving every other entry's probe chain.
// The node's triple must still match its entry (delete before mutate).
func (m *Manager) uniqueDelete(r Ref) {
	n := &m.nodes[r]
	mask := uint64(len(m.unique) - 1)
	idx := tripleHash(n.level, n.lo, n.hi) & mask
	for m.unique[idx] != r {
		if m.unique[idx] == False {
			return // not interned (already deleted)
		}
		idx = (idx + 1) & mask
	}
	m.unique[idx] = False
	m.uniqueCount--
	// Backward shift: walk the cluster, pulling entries whose home slot
	// lies at or cyclically before the hole back into it.
	hole := idx
	j := idx
	for {
		j = (j + 1) & mask
		s := m.unique[j]
		if s == False {
			return
		}
		sn := &m.nodes[s]
		home := tripleHash(sn.level, sn.lo, sn.hi) & mask
		if ((j - home) & mask) >= ((j - hole) & mask) {
			m.unique[hole] = s
			m.unique[j] = False
			hole = j
		}
	}
}
