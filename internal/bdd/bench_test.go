package bdd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// bddBenchNet is a mid-size synthetic network built locally (the gen
// package transitively imports bdd, so the shared generators are off
// limits here). The BDD build cost is dominated by unique-table and
// memo-cache traffic, which is exactly what the open-addressed engine
// targets.
func bddBenchNet() *logic.Network {
	rng := rand.New(rand.NewSource(77))
	n := logic.New("bddbench")
	var ids []logic.NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, n.AddInput(fmt.Sprintf("x%d", i)))
	}
	pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
	for g := 0; g < 260; g++ {
		switch rng.Intn(5) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1, 2:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 3:
			ids = append(ids, n.AddOr(pick(), pick(), pick()))
		default:
			ids = append(ids, n.AddOr(pick(), pick()))
		}
	}
	for i := 0; i < 8; i++ {
		n.MarkOutput(fmt.Sprintf("f%d", i), ids[len(ids)-1-i])
	}
	return n
}

// BenchmarkBDDBuild measures a full shared-forest construction over every
// network node — the hot loop of prob.Exact and power.Estimate.
func BenchmarkBDDBuild(b *testing.B) {
	n := bddBenchNet()
	b.ReportAllocs()
	var nodes int
	for i := 0; i < b.N; i++ {
		nb, err := BuildNetwork(n, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = nb.Manager.Size()
	}
	b.ReportMetric(float64(nodes), "bdd_nodes")
}

// BenchmarkBDDBuildReset is BenchmarkBDDBuild with one manager recycled
// via Reset across iterations — the per-cone reuse pattern of the
// cone-table precompute. Compare allocs/op against BenchmarkBDDBuild:
// table, cache, and chunk allocations are paid once, not per build.
func BenchmarkBDDBuildReset(b *testing.B) {
	n := bddBenchNet()
	m := New(n.NumInputs())
	// Prime the manager so steady-state iterations re-use full-size tables.
	if _, err := BuildNetworkLitsIn(m, n, n.NumInputs(), nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		nb, err := BuildNetworkLitsIn(m, n, n.NumInputs(), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = nb.Manager.Size()
	}
	b.ReportMetric(float64(nodes), "bdd_nodes")
}

// BenchmarkBDDProbability measures the linear-pass probability evaluation
// over a prebuilt forest (the per-candidate cost inside phase.MinPower).
func BenchmarkBDDProbability(b *testing.B) {
	n := bddBenchNet()
	nb, err := BuildNetwork(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Manager.ProbabilityMany(nb.NodeRefs, probs)
	}
}
