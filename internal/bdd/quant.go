package bdd

// Exists returns ∃v. f = f|v=0 ∨ f|v=1.
func (m *Manager) Exists(f Ref, v int) Ref {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// Forall returns ∀v. f = f|v=0 ∧ f|v=1.
func (m *Manager) Forall(f Ref, v int) Ref {
	return m.And(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsMany quantifies a set of variables existentially.
func (m *Manager) ExistsMany(f Ref, vars []int) Ref {
	for _, v := range vars {
		f = m.Exists(f, v)
	}
	return f
}

// ForallMany quantifies a set of variables universally.
func (m *Manager) ForallMany(f Ref, vars []int) Ref {
	for _, v := range vars {
		f = m.Forall(f, v)
	}
	return f
}

// Compose substitutes function g for variable v in f:
// f[v := g] = ITE(g, f|v=1, f|v=0).
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	return m.ITE(g, m.Restrict(f, v, true), m.Restrict(f, v, false))
}

// Implies reports whether f ≤ g (f implies g) — canonical check
// f ∧ ¬g = 0.
func (m *Manager) Implies(f, g Ref) bool {
	return m.And(f, m.Not(g)) == False
}

// AnySat returns a satisfying assignment of f (nil when f is False). The
// assignment fixes every variable; variables outside the support default
// to false.
func (m *Manager) AnySat(f Ref) []bool {
	if f == False {
		return nil
	}
	assignment := make([]bool, m.NumVars())
	r := f
	for r != True {
		n := &m.nodes[r]
		v := int(m.varAtLevel[n.level])
		if n.hi != False {
			assignment[v] = true
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return assignment
}
