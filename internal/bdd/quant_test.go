package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExistsForallBasics(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if got := m.Exists(f, 0); got != b {
		t.Errorf("∃a. a∧b = %s, want b", m.String(got))
	}
	if got := m.Forall(f, 0); got != False {
		t.Errorf("∀a. a∧b = %s, want 0", m.String(got))
	}
	g := m.Or(a, b)
	if got := m.Forall(g, 0); got != b {
		t.Errorf("∀a. a∨b = %s, want b", m.String(got))
	}
	if got := m.Exists(g, 0); got != True {
		t.Errorf("∃a. a∨b = %s, want 1", m.String(got))
	}
}

func TestQuantifierDuality(t *testing.T) {
	// ¬∃v.f = ∀v.¬f
	rng := rand.New(rand.NewSource(41))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(5)
		f := randomRef(r, m)
		v := r.Intn(5)
		return m.Not(m.Exists(f, v)) == m.Forall(m.Not(f), v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuantifiedResultIndependentOfVar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		m := New(5)
		f := randomRef(rng, m)
		v := rng.Intn(5)
		e := m.Exists(f, v)
		for _, s := range m.Support(e) {
			if s == v {
				t.Fatalf("trial %d: ∃x%d f still depends on x%d", trial, v, v)
			}
		}
	}
}

func TestExistsManyOrder(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.And(m.Var(1), m.Var(2)))
	a := m.ExistsMany(f, []int{0, 1})
	b := m.ExistsMany(f, []int{1, 0})
	if a != b {
		t.Error("quantification order changed the result")
	}
	if a != m.Var(2) {
		t.Errorf("∃ab. abc = %s, want c", m.String(a))
	}
}

func TestCompose(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(a, b)
	// f[a := b∨c] = (b∨c)∧b = b.
	got := m.Compose(f, 0, m.Or(b, c))
	if got != b {
		t.Errorf("compose = %s, want b", m.String(got))
	}
}

func TestComposeSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		m := New(5)
		f := randomRef(rng, m)
		g := randomRef(rng, m)
		v := rng.Intn(5)
		h := m.Compose(f, v, g)
		assignment := make([]bool, 5)
		for mask := 0; mask < 32; mask++ {
			for i := range assignment {
				assignment[i] = mask&(1<<uint(i)) != 0
			}
			// Evaluate f with v replaced by g's value.
			modified := append([]bool(nil), assignment...)
			modified[v] = m.Eval(g, assignment)
			if m.Eval(h, assignment) != m.Eval(f, modified) {
				t.Fatalf("trial %d: compose wrong at %v", trial, assignment)
			}
		}
	}
}

func TestImplies(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	if !m.Implies(m.And(a, b), a) {
		t.Error("a∧b must imply a")
	}
	if m.Implies(a, m.And(a, b)) {
		t.Error("a must not imply a∧b")
	}
	if !m.Implies(False, a) || !m.Implies(a, True) {
		t.Error("terminal implications wrong")
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(1), m.Not(m.Var(3)))
	asg := m.AnySat(f)
	if asg == nil {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, asg) {
		t.Errorf("AnySat returned non-satisfying %v", asg)
	}
	if m.AnySat(False) != nil {
		t.Error("False reported satisfiable")
	}
	if asg := m.AnySat(True); asg == nil || !m.Eval(True, asg) {
		t.Error("True must be satisfiable")
	}
}
