package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if m.NumVars() != 3 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	x := m.Var(0)
	if x == True || x == False {
		t.Fatal("Var returned terminal")
	}
	if m.Var(0) != x {
		t.Error("unique table failed: Var(0) not canonical")
	}
	if m.Not(m.Not(x)) != x {
		t.Error("double negation not canonical")
	}
	if m.NVar(1) != m.Not(m.Var(1)) {
		t.Error("NVar != Not(Var)")
	}
	if Const(true) != True || Const(false) != False {
		t.Error("Const wrong")
	}
}

func TestBasicIdentities(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		name string
		got  Ref
		want Ref
	}{
		{"a∧a", m.And(a, a), a},
		{"a∨a", m.Or(a, a), a},
		{"a⊕a", m.Xor(a, a), False},
		{"a∧¬a", m.And(a, m.Not(a)), False},
		{"a∨¬a", m.Or(a, m.Not(a)), True},
		{"a∧1", m.And(a, True), a},
		{"a∧0", m.And(a, False), False},
		{"a∨0", m.Or(a, False), a},
		{"a∨1", m.Or(a, True), True},
		{"a⊕0", m.Xor(a, False), a},
		{"a⊕1", m.Xor(a, True), m.Not(a)},
		{"commutative and", m.And(a, b), m.And(b, a)},
		{"associative and", m.And(m.And(a, b), c), m.And(a, m.And(b, c))},
		{"demorgan", m.Not(m.And(a, b)), m.Or(m.Not(a), m.Not(b))},
		{"ite as mux", m.ITE(a, b, c), m.Or(m.And(a, b), m.And(m.Not(a), c))},
		{"andn", m.AndN(a, b, c), m.And(a, m.And(b, c))},
		{"orn", m.OrN(a, b, c), m.Or(a, m.Or(b, c))},
		{"andn empty", m.AndN(), True},
		{"orn empty", m.OrN(), False},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

// evalTruth compares a BDD against a reference function over all
// assignments.
func evalTruth(t *testing.T, m *Manager, f Ref, ref func([]bool) bool) {
	t.Helper()
	n := m.NumVars()
	assignment := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			assignment[i] = mask&(1<<uint(i)) != 0
		}
		if got, want := m.Eval(f, assignment), ref(assignment); got != want {
			t.Fatalf("Eval(%v) = %v, want %v", assignment, got, want)
		}
	}
}

func TestEvalAgainstTruthTables(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
	f := m.Or(m.And(a, b), m.Xor(c, d))
	evalTruth(t, m, f, func(v []bool) bool {
		return (v[0] && v[1]) || (v[2] != v[3])
	})
}

func TestPropertyRandomExpressions(t *testing.T) {
	// Build random expressions simultaneously as BDDs and as closures,
	// then compare over all 2^n assignments.
	rng := rand.New(rand.NewSource(42))
	const vars = 6
	for trial := 0; trial < 200; trial++ {
		m := New(vars)
		type pair struct {
			r  Ref
			fn func([]bool) bool
		}
		pool := make([]pair, 0, 40)
		for v := 0; v < vars; v++ {
			v := v
			pool = append(pool, pair{m.Var(v), func(a []bool) bool { return a[v] }})
		}
		for i := 0; i < 20; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			switch rng.Intn(4) {
			case 0:
				pool = append(pool, pair{m.And(x.r, y.r), func(a []bool) bool { return x.fn(a) && y.fn(a) }})
			case 1:
				pool = append(pool, pair{m.Or(x.r, y.r), func(a []bool) bool { return x.fn(a) || y.fn(a) }})
			case 2:
				pool = append(pool, pair{m.Xor(x.r, y.r), func(a []bool) bool { return x.fn(a) != y.fn(a) }})
			case 3:
				pool = append(pool, pair{m.Not(x.r), func(a []bool) bool { return !x.fn(a) }})
			}
		}
		last := pool[len(pool)-1]
		assignment := make([]bool, vars)
		for mask := 0; mask < 1<<vars; mask++ {
			for i := 0; i < vars; i++ {
				assignment[i] = mask&(1<<uint(i)) != 0
			}
			if m.Eval(last.r, assignment) != last.fn(assignment) {
				t.Fatalf("trial %d: mismatch at %v", trial, assignment)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if got := m.Restrict(f, 0, true); got != m.Or(b, c) {
		t.Errorf("Restrict(f, a=1) wrong: %s", m.String(got))
	}
	if got := m.Restrict(f, 0, false); got != c {
		t.Errorf("Restrict(f, a=0) wrong: %s", m.String(got))
	}
	if got := m.Restrict(f, 2, false); got != m.And(a, b) {
		t.Errorf("Restrict(f, c=0) wrong: %s", m.String(got))
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.Var(4))
	got := m.Support(f)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if s := m.Support(True); len(s) != 0 {
		t.Errorf("Support(True) = %v", s)
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 2 { // a∧b free c: 2 of 8
		t.Errorf("SatCount(a∧b) = %v, want 2", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("SatCount(1) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(0) = %v, want 0", got)
	}
}

func TestProbability(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	probs := []float64{0.9, 0.9}
	cases := []struct {
		name string
		f    Ref
		want float64
	}{
		{"a", a, 0.9},
		{"¬a", m.Not(a), 0.1},
		{"a∧b", m.And(a, b), 0.81},
		{"a∨b", m.Or(a, b), 0.99},
		{"a⊕b", m.Xor(a, b), 0.18},
	}
	for _, c := range cases {
		if got := m.Probability(c.f, probs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P[%s] = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestProbabilityComplementInvariant(t *testing.T) {
	// Property 4.1 foundation: P[¬f] = 1 − P[f] for random functions and
	// probabilities.
	rng := rand.New(rand.NewSource(7))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(5)
		f := randomRef(r, m)
		probs := make([]float64, 5)
		for i := range probs {
			probs[i] = r.Float64()
		}
		return math.Abs(m.Probability(m.Not(f), probs)-(1-m.Probability(f, probs))) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func randomRef(r *rand.Rand, m *Manager) Ref {
	refs := []Ref{}
	for v := 0; v < m.NumVars(); v++ {
		refs = append(refs, m.Var(v))
	}
	for i := 0; i < 15; i++ {
		x := refs[r.Intn(len(refs))]
		y := refs[r.Intn(len(refs))]
		switch r.Intn(4) {
		case 0:
			refs = append(refs, m.And(x, y))
		case 1:
			refs = append(refs, m.Or(x, y))
		case 2:
			refs = append(refs, m.Xor(x, y))
		default:
			refs = append(refs, m.Not(x))
		}
	}
	return refs[len(refs)-1]
}

func TestProbabilityManyMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(6)
	var roots []Ref
	for i := 0; i < 10; i++ {
		roots = append(roots, randomRef(rng, m))
	}
	probs := make([]float64, 6)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	many := m.ProbabilityMany(roots, probs)
	for i, r := range roots {
		if single := m.Probability(r, probs); math.Abs(single-many[i]) > 1e-12 {
			t.Errorf("root %d: many=%v single=%v", i, many[i], single)
		}
	}
}

func TestNodeCountSharing(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	// f alone: two decision nodes.
	if got := m.NodeCount(f); got != 2 {
		t.Errorf("NodeCount(a∧b) = %d, want 2", got)
	}
	// Shared counting: {a, a∧b} shares the a-node? The AND's top node
	// decides a with hi pointing at the b-node, so counting both roots
	// gives 3 distinct nodes (var-a node, and-top, b-node)... verify via
	// distinctness rather than hard-coding intuition:
	count := m.NodeCount(f, a, b)
	if count != 3 {
		t.Errorf("NodeCount(f,a,b) = %d, want 3", count)
	}
}

func TestBuildNetwork(t *testing.T) {
	n := logic.New("net")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	and := n.AddAnd(a, b)
	or := n.AddOr(and, c)
	inv := n.AddNot(or)
	n.MarkOutput("f", inv)
	nb, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	m := nb.Manager
	want := m.Not(m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2)))
	if got := nb.NodeRefs[inv]; got != want {
		t.Errorf("network BDD mismatch: %s vs %s", m.String(got), m.String(want))
	}
	outs := nb.OutputRefs(n)
	if len(outs) != 1 || outs[0] != want {
		t.Errorf("OutputRefs wrong")
	}
}

func TestBuildNetworkMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := randomNetwork(rng, 5, 20)
		nb, err := BuildNetwork(n, nil)
		if err != nil {
			t.Fatalf("BuildNetwork: %v", err)
		}
		assignment := make([]bool, 5)
		for mask := 0; mask < 32; mask++ {
			for i := range assignment {
				assignment[i] = mask&(1<<uint(i)) != 0
			}
			values := n.Eval(assignment, nil)
			for _, o := range n.Outputs() {
				if got := nb.Manager.Eval(nb.NodeRefs[o.Driver], assignment); got != values[o.Driver] {
					t.Fatalf("trial %d output %s: BDD %v, eval %v at %v", trial, o.Name, got, values[o.Driver], assignment)
				}
			}
		}
	}
}

func randomNetwork(rng *rand.Rand, numInputs, numGates int) *logic.Network {
	n := logic.New("rand")
	ids := make([]logic.NodeID, 0, numInputs+numGates)
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(string(rune('a'+i))))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		var id logic.NodeID
		switch rng.Intn(4) {
		case 0:
			id = n.AddNot(pick())
		case 1:
			id = n.AddAnd(pick(), pick())
		case 2:
			id = n.AddOr(pick(), pick())
		default:
			id = n.AddXor(pick(), pick())
		}
		ids = append(ids, id)
	}
	n.MarkOutput("f", ids[len(ids)-1])
	n.MarkOutput("g", ids[len(ids)-2])
	return n
}

func TestTransferPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		src := New(5)
		f := randomRef(rng, src)
		order := rng.Perm(5)
		dst := NewWithOrder(5, order)
		g := Transfer(src, f, dst, nil)
		assignment := make([]bool, 5)
		for mask := 0; mask < 32; mask++ {
			for i := range assignment {
				assignment[i] = mask&(1<<uint(i)) != 0
			}
			if src.Eval(f, assignment) != dst.Eval(g, assignment) {
				t.Fatalf("trial %d: transfer changed function at %v", trial, assignment)
			}
		}
	}
}

func TestCountUnderOrderKnownCase(t *testing.T) {
	// The textbook order-sensitivity example: f = x1·x2 + x3·x4 + x5·x6.
	// Under (x1,x2,x3,x4,x5,x6) the BDD has 6 decision nodes; under the
	// interleaved order (x1,x3,x5,x2,x4,x6) it has 14.
	m := New(6)
	f := m.OrN(
		m.And(m.Var(0), m.Var(1)),
		m.And(m.Var(2), m.Var(3)),
		m.And(m.Var(4), m.Var(5)),
	)
	good := CountUnderOrder(m, []Ref{f}, []int{0, 1, 2, 3, 4, 5})
	bad := CountUnderOrder(m, []Ref{f}, []int{0, 2, 4, 1, 3, 5})
	if good != 6 {
		t.Errorf("good order node count = %d, want 6", good)
	}
	if bad != 14 {
		t.Errorf("bad order node count = %d, want 14", bad)
	}
}

func TestSiftImprovesBadOrder(t *testing.T) {
	// Start from the interleaved order; sifting must find something no
	// worse than the good order's 6 nodes.
	m := NewWithOrder(6, []int{0, 2, 4, 1, 3, 5})
	f := m.OrN(
		m.And(m.Var(0), m.Var(1)),
		m.And(m.Var(2), m.Var(3)),
		m.And(m.Var(4), m.Var(5)),
	)
	if before := m.NodeCount(f); before != 14 {
		t.Fatalf("precondition: bad order count = %d, want 14", before)
	}
	order, count := Sift(m, []Ref{f})
	if count > 6 {
		t.Errorf("Sift result = %d nodes under %v, want <= 6", count, order)
	}
	if got := CountUnderOrder(m, []Ref{f}, order); got != count {
		t.Errorf("Sift count %d inconsistent with rebuild %d", count, got)
	}
}

func BenchmarkBuildNetwork(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	n := randomNetwork(rng, 16, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildNetwork(n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbability(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	n := randomNetwork(rng, 16, 500)
	nb, err := BuildNetwork(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	probs := make([]float64, 16)
	for i := range probs {
		probs[i] = 0.5
	}
	roots := nb.NodeRefs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Manager.ProbabilityMany(roots, probs)
	}
}
