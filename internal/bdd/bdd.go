// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs, Bryant [1]) sized for the signal-probability computations the
// paper's power estimator performs (Section 4.2.2).
//
// The manager uses index-based nodes (no complement edges) with a unique
// table for canonicity and memo caches for ITE and the binary operators.
// Signal probability evaluation is a single linear pass over the DAG,
// which is what makes BDD-based probability estimation attractive for the
// iterative phase-assignment loop.
//
// The engine is map-free on every hot path, following the BuDDy/CUDD
// design: the unique table is an open-addressed (linear-probe) hash table
// over packed (level, lo, hi) triples that grows at 3/4 load, the ITE and
// binary-operator memos are fixed-size lossy direct-mapped caches, and
// node storage grows in chunks. Lossy caches never change results — a
// missed memo merely recomputes the same canonical node — so Ref identity
// and node counts are exactly those of an unbounded-memo build.
package bdd

import (
	"fmt"
	"sort"

	"repro/internal/budget"
)

// Ref is a reference to a BDD node within one Manager. The terminals are
// False (0) and True (1).
type Ref int32

// Terminal node references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // position of the decision variable in the current order
	lo, hi Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
)

// iteEntry is one direct-mapped ITE cache slot. A zeroed entry is empty:
// cached calls always have a non-terminal f (terminal cases return before
// the cache), so f == False never collides with a live entry.
type iteEntry struct {
	f, g, h, r Ref
}

// binopEntry is one direct-mapped binary-operator cache slot. As with
// iteEntry, cached operands are non-terminal, so a == False means empty.
type binopEntry struct {
	a, b, r Ref
	op      uint8
}

const (
	// nodeChunk is the minimum node-storage growth step: capacity grows
	// by max(nodeChunk, cap/2), i.e. whole chunks while small and 1.5×
	// geometric beyond two chunks.
	nodeChunk = 4096
	// maxCacheSize bounds the lossy memo caches (entries, power of two).
	// Caches are rescaled together with the unique table so big builds
	// keep a useful hit rate without per-node bookkeeping.
	maxCacheSize = 1 << 16
	// defaultSizeHint is the node-count hint used when the caller gives
	// none, chosen so circuit-scale builds (~1.5k nodes) never regrow
	// their tables.
	defaultSizeHint = 1536
	// minUniqueSize is the smallest unique-table/cache size (power of
	// two) a size hint can produce — tiny cone managers stay tiny.
	minUniqueSize = 1 << 6
)

// Manager owns a shared ROBDD forest over a fixed number of variables.
// Variables are identified by index 0..NumVars-1; the variable order is
// fixed at construction (level i holds variable order[i]).
type Manager struct {
	nodes []node

	// unique is the open-addressed table interning (level, lo, hi)
	// triples; slots hold a Ref into nodes (False = empty). Keys live in
	// the nodes slice itself, so the table is a bare []Ref.
	unique      []Ref
	uniqueCount int

	// ite and binop are lossy direct-mapped operation caches.
	ite   []iteEntry
	binop []binopEntry

	// varAtLevel[l] = variable index decided at level l;
	// levelOfVar[v] = level of variable v.
	varAtLevel []int32
	levelOfVar []int32

	// budget, when non-nil, is polled on the fresh-node intern path:
	// node-cap compare every insert, cancellation check every
	// cancelPollInterval inserts (see interrupt.go).
	budget *budget.T

	// Reordering state (see reorder.go): rs is the ephemeral swap
	// bookkeeping (dropped whenever an ordinary mk interns a node it
	// doesn't know about), protected holds the registered root slices,
	// and nextReorderAt is the live-node count the next automatic
	// reorder triggers at.
	rs              *reorderState
	protected       [][]Ref
	autoReorder     bool
	reorderFraction float64
	nextReorderAt   int
	reorders        int
}

// New creates a manager over numVars variables in natural order
// (variable i at level i).
func New(numVars int) *Manager {
	return NewSized(numVars, defaultSizeHint)
}

// NewSized is New with an expected-node-count hint: storage and tables
// start sized for roughly sizeHint nodes, so callers building many tiny
// BDDs (per-cone probability estimation, say) don't pay circuit-scale
// preallocation per manager. The hint affects memory only, never
// results.
func NewSized(numVars, sizeHint int) *Manager {
	order := make([]int, numVars)
	for i := range order {
		order[i] = i
	}
	return NewWithOrderSized(numVars, order, sizeHint)
}

// NewWithOrder creates a manager whose level l decides variable order[l].
// order must be a permutation of 0..numVars-1.
func NewWithOrder(numVars int, order []int) *Manager {
	return NewWithOrderSized(numVars, order, defaultSizeHint)
}

// NewWithOrderSized is NewWithOrder with NewSized's node-count hint.
func NewWithOrderSized(numVars int, order []int, sizeHint int) *Manager {
	if len(order) != numVars {
		panic(orderError(fmt.Sprintf("bdd: order length %d != numVars %d", len(order), numVars)))
	}
	if sizeHint < 2 {
		sizeHint = 2
	}
	tab := minUniqueSize
	for 3*tab/4 < sizeHint && tab < maxCacheSize {
		tab *= 2
	}
	nodeCap := sizeHint + 2
	m := &Manager{
		nodes:      make([]node, 2, nodeCap),
		unique:     make([]Ref, tab),
		ite:        make([]iteEntry, tab),
		binop:      make([]binopEntry, tab),
		varAtLevel: make([]int32, numVars),
		levelOfVar: make([]int32, numVars),
	}
	seen := make([]bool, numVars)
	for l, v := range order {
		if v < 0 || v >= numVars || seen[v] {
			panic(orderError(fmt.Sprintf("bdd: order is not a permutation at position %d", l)))
		}
		seen[v] = true
		m.varAtLevel[l] = int32(v)
		m.levelOfVar[v] = int32(l)
	}
	// Terminal sentinels: level beyond all variables.
	m.nodes[False] = node{level: int32(numVars), lo: False, hi: False}
	m.nodes[True] = node{level: int32(numVars), lo: True, hi: True}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return len(m.varAtLevel) }

// Reset clears the manager in place — node storage is truncated to the
// two terminals, the unique table is emptied and the operation caches are
// invalidated — while every allocation (node chunks, tables, caches) is
// retained for reuse. A reset manager behaves exactly like a freshly
// constructed one over the same variables and order: because builds are
// deterministic, re-running the same construction yields the same Refs,
// node counts, and probabilities, without re-paying the allocations.
// This is what lets per-cone probability passes recycle one manager
// instead of allocating a fresh forest per cone.
func (m *Manager) Reset() {
	m.nodes = m.nodes[:2]
	numVars := int32(m.NumVars())
	m.nodes[False] = node{level: numVars, lo: False, hi: False}
	m.nodes[True] = node{level: numVars, lo: True, hi: True}
	for i := range m.unique {
		m.unique[i] = False
	}
	m.uniqueCount = 0
	for i := range m.ite {
		m.ite[i] = iteEntry{}
	}
	for i := range m.binop {
		m.binop[i] = binopEntry{}
	}
	m.rs = nil
	m.protected = nil
	if m.autoReorder {
		m.scheduleNextReorder()
	}
}

// ResetWithOrder is Reset with a new variable order (a permutation of the
// manager's 0..NumVars-1 variables) installed, so one manager can serve a
// sequence of builds that each want their own order.
func (m *Manager) ResetWithOrder(order []int) {
	if len(order) != m.NumVars() {
		panic(orderError(fmt.Sprintf("bdd: order length %d != numVars %d", len(order), m.NumVars())))
	}
	m.Reset()
	for v := range m.levelOfVar {
		m.levelOfVar[v] = -1
	}
	for l, v := range order {
		if v < 0 || v >= m.NumVars() || m.levelOfVar[v] >= 0 {
			panic(orderError(fmt.Sprintf("bdd: order is not a permutation at position %d", l)))
		}
		m.varAtLevel[l] = int32(v)
		m.levelOfVar[v] = int32(l)
	}
}

// Size returns the total number of allocated nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Order returns the current variable order (level -> variable index).
func (m *Manager) Order() []int {
	o := make([]int, len(m.varAtLevel))
	for l, v := range m.varAtLevel {
		o[l] = int(v)
	}
	return o
}

// LevelOf returns the level at which variable v is decided.
func (m *Manager) LevelOf(v int) int { return int(m.levelOfVar[v]) }

// tripleHash mixes a (level, lo, hi) triple into a table index seed
// (Fibonacci-style multiplicative hashing over the packed key).
func tripleHash(level int32, lo, hi Ref) uint64 {
	h := uint64(uint32(level))*0x9E3779B97F4A7C15 ^
		uint64(uint32(lo))*0xBF58476D1CE4E5B9 ^
		uint64(uint32(hi))*0x94D049BB133111EB
	h ^= h >> 29
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 32
	return h
}

// growUnique doubles the open-addressed table and reinserts every interned
// node (keys are read back from the nodes slice). The lossy operation
// caches are rescaled alongside; dropping their contents is sound (the
// caches are advisory) and keeps resizing O(1) amortized.
func (m *Manager) growUnique() {
	old := m.unique
	grown := make([]Ref, 2*len(old))
	mask := uint64(len(grown) - 1)
	for _, r := range old {
		if r == False {
			continue
		}
		n := &m.nodes[r]
		idx := tripleHash(n.level, n.lo, n.hi) & mask
		for grown[idx] != False {
			idx = (idx + 1) & mask
		}
		grown[idx] = r
	}
	m.unique = grown
	if size := len(grown); size <= maxCacheSize && size > len(m.ite) {
		m.ite = make([]iteEntry, size)
		m.binop = make([]binopEntry, size)
	}
}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	idx := tripleHash(level, lo, hi) & mask
	for {
		r := m.unique[idx]
		if r == False {
			break
		}
		n := &m.nodes[r]
		if n.level == level && n.lo == lo && n.hi == hi {
			return r
		}
		idx = (idx + 1) & mask
	}
	// Miss: intern a fresh node, growing storage chunk-wise and the table
	// at 3/4 load. Any reorder state becomes stale the moment a node it
	// has no books for appears.
	if m.rs != nil {
		m.rs = nil
	}
	if len(m.nodes) == cap(m.nodes) {
		step := cap(m.nodes) / 2
		if step < nodeChunk {
			step = nodeChunk
		}
		ns := make([]node, len(m.nodes), cap(m.nodes)+step)
		copy(ns, m.nodes)
		m.nodes = ns
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	if 4*(m.uniqueCount+1) > 3*len(m.unique) {
		m.growUnique()
		mask = uint64(len(m.unique) - 1)
		idx = tripleHash(level, lo, hi) & mask
		for m.unique[idx] != False {
			idx = (idx + 1) & mask
		}
	}
	m.unique[idx] = r
	m.uniqueCount++
	if m.budget != nil {
		m.pollBudget()
	}
	return r
}

// Var returns the BDD for the single variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.NumVars() {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(m.levelOfVar[v], False, True)
}

// NVar returns the BDD for the complemented variable v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(m.levelOfVar[v], True, False)
}

// Const returns the terminal for a boolean value.
func Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// cofactors returns the (lo, hi) cofactors of r with respect to the
// variable at the given level.
func (m *Manager) cofactors(r Ref, level int32) (Ref, Ref) {
	n := &m.nodes[r]
	if n.level == level {
		return n.lo, n.hi
	}
	return r, r
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := True
	for _, f := range fs {
		acc = m.And(acc, f)
	}
	return acc
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Or(acc, f)
	}
	return acc
}

func (m *Manager) apply(op uint8, f, g Ref) Ref {
	// Terminal rules.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
		if g == True {
			return m.Not(f)
		}
	}
	// Normalize operand order for the commutative cache.
	if f > g {
		f, g = g, f
	}
	slot := &m.binop[tripleHash(int32(op), f, g)&uint64(len(m.binop)-1)]
	if slot.op == op && slot.a == f && slot.b == g {
		return slot.r
	}
	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	r := m.mk(top, m.apply(op, f0, g0), m.apply(op, f1, g1))
	// Re-resolve the slot: recursion may have rescaled the cache.
	slot = &m.binop[tripleHash(int32(op), f, g)&uint64(len(m.binop)-1)]
	*slot = binopEntry{a: f, b: g, r: r, op: op}
	return r
}

// ITE computes if-then-else(f, g, h) = f·g + f̄·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	slot := &m.ite[tripleHash(int32(f), g, h)&uint64(len(m.ite)-1)]
	if slot.f == f && slot.g == g && slot.h == h {
		return slot.r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	slot = &m.ite[tripleHash(int32(f), g, h)&uint64(len(m.ite)-1)]
	*slot = iteEntry{f: f, g: g, h: h, r: r}
	return r
}

// Restrict returns f with variable v fixed to val.
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	lv := m.levelOfVar[v]
	memo := make([]Ref, len(m.nodes))
	seen := make([]bool, len(m.nodes))
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := &m.nodes[r]
		if n.level > lv {
			return r
		}
		if seen[r] {
			return memo[r]
		}
		var res Ref
		if n.level == lv {
			if val {
				res = n.hi
			} else {
				res = n.lo
			}
		} else {
			res = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		// memo/seen are sized for the pre-call node count; mk may have
		// appended nodes since, but only pre-existing refs are memoized
		// (rec is called on subgraphs of f only).
		memo[r] = res
		seen[r] = true
		return res
	}
	return rec(f)
}

// Eval evaluates f under a complete variable assignment.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	if len(assignment) != m.NumVars() {
		panic(fmt.Sprintf("bdd: assignment length %d != %d vars", len(assignment), m.NumVars()))
	}
	r := f
	for r != True && r != False {
		n := &m.nodes[r]
		if assignment[m.varAtLevel[n.level]] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Support returns the sorted variable indexes f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make([]bool, len(m.nodes))
	vars := make([]bool, m.NumVars())
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := &m.nodes[r]
		vars[m.varAtLevel[n.level]] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	var out []int
	for v, in := range vars {
		if in {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// NodeCount returns the number of distinct non-terminal nodes reachable
// from the given roots. This is the "non-leaf BDD nodes" measure the
// paper's Figure 10 compares variable orders with.
func (m *Manager) NodeCount(roots ...Ref) int {
	seen := make([]bool, len(m.nodes))
	count := 0
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		count++
		n := &m.nodes[r]
		rec(n.lo)
		rec(n.hi)
	}
	for _, r := range roots {
		rec(r)
	}
	return count
}

// Probability returns P[f = 1] when variable v is an independent Bernoulli
// with P[v=1] = probs[v]. For a BDD this is exact and linear in the number
// of nodes:
//
//	P(node) = (1−p)·P(lo) + p·P(hi)
//
// which is precisely why the paper computes signal probabilities on BDDs.
func (m *Manager) Probability(f Ref, probs []float64) float64 {
	if len(probs) != m.NumVars() {
		panic(fmt.Sprintf("bdd: probs length %d != %d vars", len(probs), m.NumVars()))
	}
	memo := make([]float64, len(m.nodes))
	seen := make([]bool, len(m.nodes))
	return m.probability(f, probs, memo, seen)
}

// ProbabilityMany evaluates P[f=1] for many roots sharing one memo table,
// which matters when the roots share structure (they do: the paper's
// variable ordering heuristic is designed to maximize that sharing).
func (m *Manager) ProbabilityMany(roots []Ref, probs []float64) []float64 {
	if len(probs) != m.NumVars() {
		panic(fmt.Sprintf("bdd: probs length %d != %d vars", len(probs), m.NumVars()))
	}
	memo := make([]float64, len(m.nodes))
	seen := make([]bool, len(m.nodes))
	out := make([]float64, len(roots))
	for i, r := range roots {
		out[i] = m.probability(r, probs, memo, seen)
	}
	return out
}

func (m *Manager) probability(f Ref, probs []float64, memo []float64, seen []bool) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if seen[f] {
		return memo[f]
	}
	n := &m.nodes[f]
	p := probs[m.varAtLevel[n.level]]
	res := (1-p)*m.probability(n.lo, probs, memo, seen) + p*m.probability(n.hi, probs, memo, seen)
	memo[f] = res
	seen[f] = true
	return res
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables.
func (m *Manager) SatCount(f Ref) float64 {
	probs := make([]float64, m.NumVars())
	for i := range probs {
		probs[i] = 0.5
	}
	frac := m.Probability(f, probs)
	total := 1.0
	for i := 0; i < m.NumVars(); i++ {
		total *= 2
	}
	return frac * total
}

// String renders a node for debugging.
func (m *Manager) String(f Ref) string {
	switch f {
	case False:
		return "0"
	case True:
		return "1"
	}
	n := &m.nodes[f]
	return fmt.Sprintf("node(%d: var x%d, lo=%s, hi=%s)", f, m.varAtLevel[n.level], m.String(n.lo), m.String(n.hi))
}
