// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs, Bryant [1]) sized for the signal-probability computations the
// paper's power estimator performs (Section 4.2.2).
//
// The manager uses index-based nodes (no complement edges) with a unique
// table for canonicity and memo caches for ITE and the binary operators.
// Signal probability evaluation is a single linear pass over the DAG,
// which is what makes BDD-based probability estimation attractive for the
// iterative phase-assignment loop.
package bdd

import (
	"fmt"
	"sort"
)

// Ref is a reference to a BDD node within one Manager. The terminals are
// False (0) and True (1).
type Ref int32

// Terminal node references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // position of the decision variable in the current order
	lo, hi Ref
}

type nodeKey struct {
	level  int32
	lo, hi Ref
}

type opKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
)

// Manager owns a shared ROBDD forest over a fixed number of variables.
// Variables are identified by index 0..NumVars-1; the variable order is
// fixed at construction (level i holds variable order[i]).
type Manager struct {
	nodes  []node
	unique map[nodeKey]Ref
	ite    map[[3]Ref]Ref
	binop  map[opKey]Ref

	// varAtLevel[l] = variable index decided at level l;
	// levelOfVar[v] = level of variable v.
	varAtLevel []int32
	levelOfVar []int32
}

// New creates a manager over numVars variables in natural order
// (variable i at level i).
func New(numVars int) *Manager {
	order := make([]int, numVars)
	for i := range order {
		order[i] = i
	}
	return NewWithOrder(numVars, order)
}

// NewWithOrder creates a manager whose level l decides variable order[l].
// order must be a permutation of 0..numVars-1.
func NewWithOrder(numVars int, order []int) *Manager {
	if len(order) != numVars {
		panic(fmt.Sprintf("bdd: order length %d != numVars %d", len(order), numVars))
	}
	m := &Manager{
		nodes:      make([]node, 2, 1024),
		unique:     make(map[nodeKey]Ref),
		ite:        make(map[[3]Ref]Ref),
		binop:      make(map[opKey]Ref),
		varAtLevel: make([]int32, numVars),
		levelOfVar: make([]int32, numVars),
	}
	seen := make([]bool, numVars)
	for l, v := range order {
		if v < 0 || v >= numVars || seen[v] {
			panic(fmt.Sprintf("bdd: order is not a permutation at position %d", l))
		}
		seen[v] = true
		m.varAtLevel[l] = int32(v)
		m.levelOfVar[v] = int32(l)
	}
	// Terminal sentinels: level beyond all variables.
	m.nodes[False] = node{level: int32(numVars), lo: False, hi: False}
	m.nodes[True] = node{level: int32(numVars), lo: True, hi: True}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return len(m.varAtLevel) }

// Size returns the total number of allocated nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Order returns the current variable order (level -> variable index).
func (m *Manager) Order() []int {
	o := make([]int, len(m.varAtLevel))
	for l, v := range m.varAtLevel {
		o[l] = int(v)
	}
	return o
}

// LevelOf returns the level at which variable v is decided.
func (m *Manager) LevelOf(v int) int { return int(m.levelOfVar[v]) }

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := nodeKey{level, lo, hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	return r
}

// Var returns the BDD for the single variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.NumVars() {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(m.levelOfVar[v], False, True)
}

// NVar returns the BDD for the complemented variable v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(m.levelOfVar[v], True, False)
}

// Const returns the terminal for a boolean value.
func Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// cofactors returns the (lo, hi) cofactors of r with respect to the
// variable at the given level.
func (m *Manager) cofactors(r Ref, level int32) (Ref, Ref) {
	n := &m.nodes[r]
	if n.level == level {
		return n.lo, n.hi
	}
	return r, r
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := True
	for _, f := range fs {
		acc = m.And(acc, f)
	}
	return acc
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Or(acc, f)
	}
	return acc
}

func (m *Manager) apply(op uint8, f, g Ref) Ref {
	// Terminal rules.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return m.Not(g)
		}
		if g == True {
			return m.Not(f)
		}
	}
	// Normalize operand order for the commutative cache.
	if f > g {
		f, g = g, f
	}
	key := opKey{op, f, g}
	if r, ok := m.binop[key]; ok {
		return r
	}
	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	r := m.mk(top, m.apply(op, f0, g0), m.apply(op, f1, g1))
	m.binop[key] = r
	return r
}

// ITE computes if-then-else(f, g, h) = f·g + f̄·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.ite[key] = r
	return r
}

// Restrict returns f with variable v fixed to val.
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	lv := m.levelOfVar[v]
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := &m.nodes[r]
		if n.level > lv {
			return r
		}
		if got, ok := memo[r]; ok {
			return got
		}
		var res Ref
		if n.level == lv {
			if val {
				res = n.hi
			} else {
				res = n.lo
			}
		} else {
			res = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = res
		return res
	}
	return rec(f)
}

// Eval evaluates f under a complete variable assignment.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	if len(assignment) != m.NumVars() {
		panic(fmt.Sprintf("bdd: assignment length %d != %d vars", len(assignment), m.NumVars()))
	}
	r := f
	for r != True && r != False {
		n := &m.nodes[r]
		if assignment[m.varAtLevel[n.level]] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Support returns the sorted variable indexes f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int]bool)
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := &m.nodes[r]
		vars[int(m.varAtLevel[n.level])] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NodeCount returns the number of distinct non-terminal nodes reachable
// from the given roots. This is the "non-leaf BDD nodes" measure the
// paper's Figure 10 compares variable orders with.
func (m *Manager) NodeCount(roots ...Ref) int {
	seen := make(map[Ref]bool)
	count := 0
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		count++
		n := &m.nodes[r]
		rec(n.lo)
		rec(n.hi)
	}
	for _, r := range roots {
		rec(r)
	}
	return count
}

// Probability returns P[f = 1] when variable v is an independent Bernoulli
// with P[v=1] = probs[v]. For a BDD this is exact and linear in the number
// of nodes:
//
//	P(node) = (1−p)·P(lo) + p·P(hi)
//
// which is precisely why the paper computes signal probabilities on BDDs.
func (m *Manager) Probability(f Ref, probs []float64) float64 {
	if len(probs) != m.NumVars() {
		panic(fmt.Sprintf("bdd: probs length %d != %d vars", len(probs), m.NumVars()))
	}
	memo := make(map[Ref]float64)
	return m.probability(f, probs, memo)
}

// ProbabilityMany evaluates P[f=1] for many roots sharing one memo table,
// which matters when the roots share structure (they do: the paper's
// variable ordering heuristic is designed to maximize that sharing).
func (m *Manager) ProbabilityMany(roots []Ref, probs []float64) []float64 {
	if len(probs) != m.NumVars() {
		panic(fmt.Sprintf("bdd: probs length %d != %d vars", len(probs), m.NumVars()))
	}
	memo := make(map[Ref]float64, len(roots)*4)
	out := make([]float64, len(roots))
	for i, r := range roots {
		out[i] = m.probability(r, probs, memo)
	}
	return out
}

func (m *Manager) probability(f Ref, probs []float64, memo map[Ref]float64) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if p, ok := memo[f]; ok {
		return p
	}
	n := &m.nodes[f]
	p := probs[m.varAtLevel[n.level]]
	res := (1-p)*m.probability(n.lo, probs, memo) + p*m.probability(n.hi, probs, memo)
	memo[f] = res
	return res
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables.
func (m *Manager) SatCount(f Ref) float64 {
	probs := make([]float64, m.NumVars())
	for i := range probs {
		probs[i] = 0.5
	}
	frac := m.Probability(f, probs)
	total := 1.0
	for i := 0; i < m.NumVars(); i++ {
		total *= 2
	}
	return frac * total
}

// String renders a node for debugging.
func (m *Manager) String(f Ref) string {
	switch f {
	case False:
		return "0"
	case True:
		return "1"
	}
	n := &m.nodes[f]
	return fmt.Sprintf("node(%d: var x%d, lo=%s, hi=%s)", f, m.varAtLevel[n.level], m.String(n.lo), m.String(n.hi))
}
