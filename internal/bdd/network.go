package bdd

import (
	"fmt"

	"repro/internal/logic"
)

// NetworkBDDs holds the result of building BDDs for a combinational
// network: one root per network node, over variables indexed by primary
// input position.
type NetworkBDDs struct {
	Manager *Manager
	// NodeRefs[i] is the BDD of network node i in terms of the primary
	// inputs.
	NodeRefs []Ref
	// InputVar maps a primary-input NodeID to its BDD variable index
	// (position in Network.Inputs()).
	InputVar map[logic.NodeID]int
}

// InputLit maps one network input onto a literal of a shared variable
// space: variable Var, complemented when Neg. It lets callers express
// that two inputs of a block are the true and complemented rails of the
// same physical signal, which matters for exact probabilities.
type InputLit struct {
	Var int
	Neg bool
}

// BuildNetwork constructs BDDs for every node of the network. order gives
// the variable order as a permutation of input positions (level l decides
// input order[l]); pass nil for natural input order. The network must not
// contain cycles (guaranteed by logic.Network construction).
func BuildNetwork(n *logic.Network, order []int) (*NetworkBDDs, error) {
	return BuildNetworkLits(n, n.NumInputs(), nil, order)
}

// BuildNetworkLits constructs BDDs for every node of the network over an
// external variable space of numVars variables; input position p of the
// network is the literal lits[p]. A nil lits means the identity mapping
// (input position p is the positive literal of variable p, requiring
// numVars == NumInputs). order is a permutation of the numVars variables
// (nil for natural).
func BuildNetworkLits(n *logic.Network, numVars int, lits []InputLit, order []int) (*NetworkBDDs, error) {
	return BuildNetworkLitsIn(nil, n, numVars, lits, order)
}

// BuildNetworkLitsIn is BuildNetworkLits building into an existing
// manager: m is Reset (with the requested order installed) and reused,
// so a caller constructing BDDs for many networks over the same variable
// space — per-cone probability passes, the per-mask exact estimator —
// recycles one manager's storage instead of allocating a forest per
// build. m must have exactly numVars variables; a nil m allocates a
// fresh manager, making this a drop-in superset of BuildNetworkLits.
//
// BuildNetworkLitsIn is the build boundary: a malformed order (wrong
// length, not a permutation) and a budget/cancellation interrupt from
// the manager's token both come back as errors here, never as panics.
func BuildNetworkLitsIn(m *Manager, n *logic.Network, numVars int, lits []InputLit, order []int) (nb *NetworkBDDs, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e := recoveredBuildErr(p); e != nil {
				nb, err = nil, e
				return
			}
			panic(p)
		}
	}()
	if lits != nil && len(lits) != n.NumInputs() {
		return nil, fmt.Errorf("bdd: %d literals for %d inputs", len(lits), n.NumInputs())
	}
	if lits == nil && numVars != n.NumInputs() {
		return nil, fmt.Errorf("bdd: identity literals need %d vars, got %d", n.NumInputs(), numVars)
	}
	if order == nil {
		order = make([]int, numVars)
		for i := range order {
			order[i] = i
		}
	}
	if m == nil {
		m = NewWithOrder(numVars, order)
	} else {
		if m.NumVars() != numVars {
			return nil, fmt.Errorf("bdd: manager has %d vars, build needs %d", m.NumVars(), numVars)
		}
		m.ResetWithOrder(order)
	}
	// One cancellation check per build, so builds too small to reach the
	// insert-interval poll still observe a cancelled token promptly.
	if err := m.budget.Err(); err != nil {
		return nil, err
	}
	refs := make([]Ref, n.NumNodes())
	// The result slice is protected for the manager's reorderer: refs
	// filled so far (unfilled entries are the False terminal, a harmless
	// pin) survive any automatic or explicit reorder with their slots
	// intact, so the returned NodeRefs stay valid however often the
	// table is sifted. ResetWithOrder above cleared prior registrations.
	m.Protect(refs)
	inputVar := make(map[logic.NodeID]int, n.NumInputs())
	var inputNeg []bool
	for pos, id := range n.Inputs() {
		if lits == nil {
			inputVar[id] = pos
			continue
		}
		inputVar[id] = lits[pos].Var
		if lits[pos].Neg {
			if inputNeg == nil {
				inputNeg = make([]bool, n.NumNodes())
			}
			inputNeg[id] = true
		}
	}
	for i := 0; i < n.NumNodes(); i++ {
		// Safe point for automatic reordering: no apply/ITE recursion is
		// live, every ref built so far is protected. The trigger is a
		// pure function of table state, so builds stay deterministic.
		m.maybeReorder()
		id := logic.NodeID(i)
		nd := n.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			if inputNeg != nil && inputNeg[id] {
				refs[i] = m.NVar(inputVar[id])
			} else {
				refs[i] = m.Var(inputVar[id])
			}
		case logic.KindConst0:
			refs[i] = False
		case logic.KindConst1:
			refs[i] = True
		case logic.KindBuf:
			refs[i] = refs[nd.Fanins[0]]
		case logic.KindNot:
			refs[i] = m.Not(refs[nd.Fanins[0]])
		case logic.KindAnd:
			acc := True
			for _, f := range nd.Fanins {
				acc = m.And(acc, refs[f])
			}
			refs[i] = acc
		case logic.KindOr:
			acc := False
			for _, f := range nd.Fanins {
				acc = m.Or(acc, refs[f])
			}
			refs[i] = acc
		case logic.KindXor:
			acc := False
			for _, f := range nd.Fanins {
				acc = m.Xor(acc, refs[f])
			}
			refs[i] = acc
		default:
			return nil, fmt.Errorf("bdd: unsupported node kind %s", nd.Kind)
		}
	}
	return &NetworkBDDs{Manager: m, NodeRefs: refs, InputVar: inputVar}, nil
}

// OutputRefs returns the BDD roots of the network's primary outputs in
// output order.
func (nb *NetworkBDDs) OutputRefs(n *logic.Network) []Ref {
	outs := make([]Ref, n.NumOutputs())
	for i, o := range n.Outputs() {
		outs[i] = nb.NodeRefs[o.Driver]
	}
	return outs
}

// Transfer rebuilds the function rooted at f in a destination manager with
// a possibly different variable order. varMap maps source variable index
// to destination variable index (nil for identity).
func Transfer(src *Manager, f Ref, dst *Manager, varMap []int) Ref {
	if varMap == nil {
		varMap = make([]int, src.NumVars())
		for i := range varMap {
			varMap[i] = i
		}
	}
	memo := make([]Ref, len(src.nodes))
	seen := make([]bool, len(src.nodes))
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		if r == False {
			return False
		}
		if r == True {
			return True
		}
		if seen[r] {
			return memo[r]
		}
		n := &src.nodes[r]
		v := varMap[src.varAtLevel[n.level]]
		lo := rec(n.lo)
		hi := rec(n.hi)
		res := dst.ITE(dst.Var(v), hi, lo)
		memo[r] = res
		seen[r] = true
		return res
	}
	return rec(f)
}

// CountUnderOrder reports the shared non-terminal node count of the given
// roots when rebuilt under a different variable order. It is the
// comparison primitive behind the Figure 10 experiment and the sifting
// reorderer.
func CountUnderOrder(src *Manager, roots []Ref, order []int) int {
	dst := NewWithOrder(src.NumVars(), order)
	newRoots := make([]Ref, len(roots))
	for i, r := range roots {
		newRoots[i] = Transfer(src, r, dst, nil)
	}
	return dst.NodeCount(newRoots...)
}

// Sift performs a rebuild-based variant of Rudell's sifting: each
// variable in turn is tried at every position (keeping the relative order
// of the others) and left at the position minimizing the shared node
// count of roots. Returns the best order found and its node count.
//
// Manager.Reorder is the in-place production path; this rebuild-per-
// candidate variant visits every (variable, position) pair without
// growth aborts, which makes it the correctness oracle the in-place
// reorderer is property-tested against. A position index replaces the
// former per-variable linear rescan, and candidate orders are produced
// by in-place rotation into one scratch slice instead of a fresh copy
// per candidate.
func Sift(src *Manager, roots []Ref) ([]int, int) {
	order := src.Order()
	best := CountUnderOrder(src, roots, order)
	n := len(order)
	// posOf[v] = current position of variable v in order.
	posOf := make([]int, n)
	for i, v := range order {
		posOf[v] = i
	}
	cand := make([]int, n)
	for v := 0; v < n; v++ {
		pos := posOf[v]
		bestPos, bestCount := pos, best
		for p := 0; p < n; p++ {
			if p == pos {
				continue
			}
			copy(cand, order)
			moveVar(cand, pos, p)
			c := CountUnderOrder(src, roots, cand)
			if c < bestCount {
				bestCount, bestPos = c, p
			}
		}
		if bestPos != pos {
			moveVar(order, pos, bestPos)
			lo, hi := pos, bestPos
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo; i <= hi; i++ {
				posOf[order[i]] = i
			}
			best = bestCount
		}
	}
	return order, best
}

// moveVar rotates order in place so the element at position from lands
// at position to, shifting the elements between them by one.
func moveVar(order []int, from, to int) {
	v := order[from]
	if from < to {
		copy(order[from:], order[from+1:to+1])
	} else {
		copy(order[to+1:], order[to:from])
	}
	order[to] = v
}
