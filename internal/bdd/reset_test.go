package bdd

import (
	"testing"
)

// TestResetReproducesBuild pins the Reset contract: a reset manager must
// reproduce a fresh manager's build exactly — same Refs, same node
// counts, same probabilities — because the cone-table precompute and the
// reusable estimator rely on Reset being observationally identical to
// constructing a new manager.
func TestResetReproducesBuild(t *testing.T) {
	n := bddBenchNet()
	probs := make([]float64, n.NumInputs())
	for i := range probs {
		probs[i] = 0.3 + 0.4*float64(i)/float64(len(probs))
	}

	fresh, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantProbs := fresh.Manager.ProbabilityMany(fresh.NodeRefs, probs)
	wantSize := fresh.Manager.Size()

	m := New(n.NumInputs())
	// Dirty the manager with an unrelated build, then reset and rebuild.
	if _, err := BuildNetworkLitsIn(m, n, n.NumInputs(), nil, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		nb, err := BuildNetworkLitsIn(m, n, n.NumInputs(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if nb.Manager != m {
			t.Fatal("BuildNetworkLitsIn did not reuse the manager")
		}
		if got := m.Size(); got != wantSize {
			t.Fatalf("round %d: reset build has %d nodes, fresh build %d", round, got, wantSize)
		}
		for i, r := range nb.NodeRefs {
			if r != fresh.NodeRefs[i] {
				t.Fatalf("round %d: node %d Ref %d != fresh Ref %d", round, i, r, fresh.NodeRefs[i])
			}
		}
		got := m.ProbabilityMany(nb.NodeRefs, probs)
		for i := range got {
			if got[i] != wantProbs[i] {
				t.Fatalf("round %d: node %d probability %v != fresh %v", round, i, got[i], wantProbs[i])
			}
		}
	}
}

// TestResetWithOrderInstallsOrder checks that ResetWithOrder both clears
// the forest and re-levels the variables.
func TestResetWithOrderInstallsOrder(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(3)))
	if f == False || f == True {
		t.Fatal("expected a non-terminal build")
	}
	rev := []int{3, 2, 1, 0}
	m.ResetWithOrder(rev)
	if m.Size() != 2 {
		t.Fatalf("reset manager has %d nodes, want 2 terminals", m.Size())
	}
	for l, v := range rev {
		if m.LevelOf(v) != l {
			t.Fatalf("variable %d at level %d, want %d", v, m.LevelOf(v), l)
		}
	}
	want := NewWithOrder(4, rev)
	got := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(3)))
	ref := want.And(want.Var(0), want.Or(want.Var(1), want.NVar(3)))
	if got != ref {
		t.Fatalf("rebuild under new order: Ref %d != fresh manager's %d", got, ref)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ResetWithOrder accepted a non-permutation")
		}
	}()
	m.ResetWithOrder([]int{0, 0, 1, 2})
}
