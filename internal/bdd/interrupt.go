package bdd

import (
	"errors"
	"fmt"

	"repro/internal/budget"
)

// The manager polls its budget token from the innermost hot path —
// unique-table interning in mk — which sits under arbitrarily deep
// apply/ITE recursions. Returning an error from there would thread an
// error path through every recursive operator, so the engine follows
// the CUDD convention instead: a trip raises a typed panic that unwinds
// the whole build, and the BuildNetwork* boundary (or CatchInterrupt)
// converts it back into an ordinary error. The manager's state stays
// consistent across the unwind — mk polls only after an insert
// completes — so a Reset*-based retry on the same manager is sound.

// buildInterrupt is the typed panic carrying a budget/cancellation trip
// out of a build.
type buildInterrupt struct{ err error }

// orderError is the typed panic raised by order validation
// (NewWithOrder*, ResetWithOrder) on a malformed variable order, so the
// BuildNetwork* boundary can hand a bad order from a config knob back
// as an error row instead of a trapped panic.
type orderError string

// cancelPollInterval is how many unique-table inserts pass between
// cancellation polls (one atomic load each). The node-budget compare is
// checked on every insert; it is two plain loads.
const cancelPollInterval = 256

// SetBudget attaches a cancellation/budget token to the manager; every
// subsequent build polls it at bounded intervals. A nil token detaches.
// Reset and ResetWithOrder keep the attachment.
func (m *Manager) SetBudget(t *budget.T) { m.budget = t }

// pollBudget enforces the node cap and cancellation on the fresh-node
// intern path. Caller guarantees m.budget != nil.
func (m *Manager) pollBudget() {
	if max := m.budget.MaxBDDNodes(); max > 0 && m.uniqueCount > max {
		panic(buildInterrupt{m.budget.TripBDD()})
	}
	if m.uniqueCount%cancelPollInterval == 0 {
		if err := m.budget.Err(); err != nil {
			panic(buildInterrupt{err})
		}
	}
}

// recoveredBuildErr maps a recovered panic value to the error the build
// boundary should return, or nil when the panic is not one of the
// manager's typed interrupts (the caller must re-panic).
func recoveredBuildErr(p any) error {
	switch v := p.(type) {
	case buildInterrupt:
		return v.err
	case orderError:
		return errors.New(string(v))
	}
	return nil
}

// CatchInterrupt runs build, converting a budget/cancellation interrupt
// or order-validation panic raised by manager operations inside it into
// the returned error. Any other panic propagates unchanged. Callers
// constructing BDDs outside BuildNetwork* (per-cone local builds, say)
// use it to get the same error-not-panic contract.
func CatchInterrupt(build func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e := recoveredBuildErr(p); e != nil {
				err = e
				return
			}
			panic(p)
		}
	}()
	build()
	return nil
}

// Interrupt trips an explicit build interrupt carrying err from inside
// a CatchInterrupt/BuildNetwork* region. It exists for callers that
// poll the token themselves between manager operations.
func Interrupt(err error) {
	if err == nil {
		err = fmt.Errorf("bdd: build interrupted")
	}
	panic(buildInterrupt{err})
}
