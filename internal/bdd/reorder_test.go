package bdd

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/logic"
)

// andOrPairs builds f = (a0·b0) + (a1·b1) + ... + (a_{k-1}·b_{k-1}),
// the textbook order-sensitive function: ~3k nodes when the pairs are
// adjacent in the order, ~2^k when the a's all precede the b's.
func andOrPairs(k int) *logic.Network {
	n := logic.New("andorpairs")
	as := make([]logic.NodeID, k)
	bs := make([]logic.NodeID, k)
	for i := 0; i < k; i++ {
		as[i] = n.AddInput("a" + string(rune('0'+i%10)) + string(rune('0'+i/10)))
	}
	for i := 0; i < k; i++ {
		bs[i] = n.AddInput("b" + string(rune('0'+i%10)) + string(rune('0'+i/10)))
	}
	acc := n.AddAnd(as[0], bs[0])
	for i := 1; i < k; i++ {
		acc = n.AddOr(acc, n.AddAnd(as[i], bs[i]))
	}
	n.MarkOutput("f", acc)
	return n
}

// checkAgainstNetwork verifies every protected network-node BDD still
// computes its gate function under random assignments.
func checkAgainstNetwork(t *testing.T, n *logic.Network, nb *NetworkBDDs, rng *rand.Rand, trials int) {
	t.Helper()
	numVars := nb.Manager.NumVars()
	assignment := make([]bool, numVars)
	for trial := 0; trial < trials; trial++ {
		for i := range assignment {
			assignment[i] = rng.Intn(2) == 0
		}
		values := n.Eval(assignment, nil)
		for i, ref := range nb.NodeRefs {
			if got := nb.Manager.Eval(ref, assignment); got != values[i] {
				t.Fatalf("node %d: BDD %v, network %v under %v", i, got, values[i], assignment)
			}
		}
	}
}

// TestSwapLevelsPropertyRandom: arbitrary SwapLevels sequences preserve
// protected-root semantics — every network-node BDD still evaluates
// correctly, the live-node count equals a fresh reachability count, and
// a canonical rebuild under the final order yields an identical shared
// node count (the table stayed reduced and canonical).
func TestSwapLevelsPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(rng, 7, 30)
		nb, err := BuildNetwork(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := nb.Manager
		for s := 0; s < 40; s++ {
			if err := m.SwapLevels(rng.Intn(m.NumVars() - 1)); err != nil {
				t.Fatalf("trial %d swap %d: %v", trial, s, err)
			}
		}
		checkAgainstNetwork(t, n, nb, rng, 32)
		if got, want := m.LiveNodes(), m.NodeCount(nb.NodeRefs...); got != want {
			t.Fatalf("trial %d: LiveNodes = %d, reachable = %d", trial, got, want)
		}
		if got, want := m.NodeCount(nb.NodeRefs...), CountUnderOrder(m, nb.NodeRefs, m.Order()); got != want {
			t.Fatalf("trial %d: in-place count %d != canonical rebuild %d under same order", trial, got, want)
		}
	}
}

// TestSwapLevelsOutOfRange: the primitive rejects bad levels.
func TestSwapLevelsOutOfRange(t *testing.T) {
	m := New(4)
	for _, l := range []int{-1, 3, 7} {
		if err := m.SwapLevels(l); err == nil {
			t.Errorf("SwapLevels(%d) accepted on 4 variables", l)
		}
	}
}

// TestReorderAgainstSiftOracle: the in-place reorderer must preserve
// semantics, never end larger than it started, and agree exactly with
// the rebuild-based oracle's count for the order it picked. The oracle
// (Sift) itself bounds how good a single sifting pass can be; the
// in-place pass must land within it and the start size.
func TestReorderAgainstSiftOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 15; trial++ {
		n := randomNetwork(rng, 8, 40)
		nb, err := BuildNetwork(n, rng.Perm(8))
		if err != nil {
			t.Fatal(err)
		}
		m := nb.Manager
		before := m.NodeCount(nb.NodeRefs...)
		if err := m.Reorder(); err != nil {
			t.Fatalf("trial %d: Reorder: %v", trial, err)
		}
		after := m.NodeCount(nb.NodeRefs...)
		if after > before {
			t.Fatalf("trial %d: reorder grew the forest %d -> %d", trial, before, after)
		}
		if got := CountUnderOrder(m, nb.NodeRefs, m.Order()); got != after {
			t.Fatalf("trial %d: oracle rebuild under sifted order = %d, in-place = %d", trial, got, after)
		}
		checkAgainstNetwork(t, n, nb, rng, 32)
		if m.Reorders() != 1 {
			t.Fatalf("trial %d: Reorders = %d, want 1", trial, m.Reorders())
		}
	}
}

// TestReorderShrinksPathologicalOrder: under the a's-then-b's order the
// pairs function needs ~2^k nodes; one in-place sifting pass must
// recover an order within 2× of the known-good interleaved size.
func TestReorderShrinksPathologicalOrder(t *testing.T) {
	const k = 8
	n := andOrPairs(k)
	nb, err := BuildNetwork(n, nil) // natural order: a0..a7 b0..b7 — pathological
	if err != nil {
		t.Fatal(err)
	}
	m := nb.Manager
	before := m.NodeCount(nb.OutputRefs(n)...)
	if before < 1<<k {
		t.Fatalf("setup: pathological order built only %d nodes, want >= %d", before, 1<<k)
	}
	if err := m.Reorder(); err != nil {
		t.Fatal(err)
	}
	after := m.NodeCount(nb.OutputRefs(n)...)
	if after > 6*k {
		t.Fatalf("reorder left %d output nodes, want <= %d (pairs order ~3k)", after, 6*k)
	}
	rng := rand.New(rand.NewSource(7))
	checkAgainstNetwork(t, n, nb, rng, 64)
}

// TestReorderDeterministic: two identical build+reorder runs agree on
// the final order, node count, and slot-level state (orders and counts
// are pure functions of table state).
func TestReorderDeterministic(t *testing.T) {
	run := func() ([]int, int) {
		n := andOrPairs(6)
		nb, err := BuildNetwork(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := nb.Manager.Reorder(); err != nil {
			t.Fatal(err)
		}
		return nb.Manager.Order(), nb.Manager.LiveNodes()
	}
	o1, c1 := run()
	o2, c2 := run()
	if c1 != c2 {
		t.Fatalf("node counts differ across identical runs: %d vs %d", c1, c2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders differ at level %d: %v vs %v", i, o1, o2)
		}
	}
}

// TestReorderBudgetTripMidReorder: a node-cap trip inside a reorder is
// the usual CUDD-style interrupt — Reorder returns ErrBDDNodes, and the
// manager, while unusable, is not corrupt: a Reset* fully restores it.
func TestReorderBudgetTripMidReorder(t *testing.T) {
	n := andOrPairs(6)
	nb, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := nb.Manager
	live := m.LiveNodes()
	// Cap below the current live count: the first swap-created node
	// trips mid-reorder.
	m.SetBudget(budget.New(live/2, 0))
	if err := m.Reorder(); !errors.Is(err, budget.ErrBDDNodes) {
		t.Fatalf("Reorder under tiny cap: err = %v, want ErrBDDNodes", err)
	}
	// Unusable-but-not-corrupt: the standard retry path (Reset under a
	// looser budget) rebuilds the same forest as a fresh manager.
	m.SetBudget(budget.New(0, 0))
	nb2, err := BuildNetworkLitsIn(m, n, m.NumVars(), nil, nil)
	if err != nil {
		t.Fatalf("rebuild after tripped reorder: %v", err)
	}
	fresh, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nb2.Manager.NodeCount(nb2.NodeRefs...), fresh.Manager.NodeCount(fresh.NodeRefs...); got != want {
		t.Fatalf("post-trip rebuild count %d != fresh build %d", got, want)
	}
}

// TestReorderCancellationLandsInside: a cancelled token is observed by
// the per-swap poll, so cancellation lands inside a reorder promptly.
func TestReorderCancellationLandsInside(t *testing.T) {
	n := andOrPairs(6)
	nb, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	tok := budget.New(0, 0)
	nb.Manager.SetBudget(tok)
	tok.Cancel(nil)
	if err := nb.Manager.Reorder(); !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("Reorder on cancelled token: err = %v, want ErrCancelled", err)
	}
}

// TestAutoReorderDuringBuild: with auto-reorder enabled and a budget
// fraction point below the pathological peak, the build reorders itself
// mid-flight and completes under a node cap the plain build blows —
// deterministically, with exact probabilities intact.
func TestAutoReorderDuringBuild(t *testing.T) {
	const k = 8
	n := andOrPairs(k)
	// Plain build under the cap must trip...
	capped := New(2 * k)
	capped.SetBudget(budget.New(150, 0))
	if _, err := BuildNetworkLitsIn(capped, n, 2*k, nil, nil); !errors.Is(err, budget.ErrBDDNodes) {
		t.Fatalf("plain build under cap: err = %v, want ErrBDDNodes", err)
	}
	// ...while the auto-reordering build completes.
	build := func() *NetworkBDDs {
		m := New(2 * k)
		m.SetBudget(budget.New(150, 0))
		m.SetAutoReorder(true)
		nb, err := BuildNetworkLitsIn(m, n, 2*k, nil, nil)
		if err != nil {
			t.Fatalf("auto-reorder build: %v", err)
		}
		if m.Reorders() == 0 {
			t.Fatal("auto-reorder build finished without reordering")
		}
		return nb
	}
	nb1 := build()
	nb2 := build()
	// Deterministic: identical orders and node counts across runs.
	o1, o2 := nb1.Manager.Order(), nb2.Manager.Order()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("auto-reorder orders differ at level %d: %v vs %v", i, o1, o2)
		}
	}
	if nb1.Manager.LiveNodes() != nb2.Manager.LiveNodes() {
		t.Fatalf("auto-reorder live counts differ: %d vs %d", nb1.Manager.LiveNodes(), nb2.Manager.LiveNodes())
	}
	// Exactness: probabilities match an unbudgeted, unreordered build.
	probs := make([]float64, 2*k)
	for i := range probs {
		probs[i] = 0.5
	}
	ref, err := BuildNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := nb1.Manager.ProbabilityMany(nb1.OutputRefs(n), probs)
	want := ref.Manager.ProbabilityMany(ref.OutputRefs(n), probs)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output %d probability: sifted %v, reference %v", i, got[i], want[i])
		}
	}
	rng := rand.New(rand.NewSource(3))
	checkAgainstNetwork(t, n, nb1, rng, 64)
}

// TestSiftOracleUnchangedByIndexFix: the position-indexed Sift must
// behave exactly as the original rescanning implementation — improving
// the known pathological case to the interleaved-order count.
func TestSiftOracleUnchangedByIndexFix(t *testing.T) {
	m := New(6)
	f := m.OrN(
		m.And(m.Var(0), m.Var(1)),
		m.And(m.Var(2), m.Var(3)),
		m.And(m.Var(4), m.Var(5)),
	)
	// Interleave badly first.
	bad := NewWithOrder(6, []int{0, 2, 4, 1, 3, 5})
	g := Transfer(m, f, bad, nil)
	order, count := Sift(bad, []Ref{g})
	if count != 6 {
		t.Fatalf("Sift count = %d, want 6", count)
	}
	if got := CountUnderOrder(bad, []Ref{g}, order); got != count {
		t.Fatalf("Sift order recount = %d, want %d", got, count)
	}
}
