package bdd

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/logic"
)

// xorChain builds an n-input XOR chain, whose BDD has 2n-1 internal
// nodes under any order — a predictable node count for budget tests.
func xorChain(inputs int) *logic.Network {
	n := logic.New("xorchain")
	acc := n.AddInput("x0")
	for i := 1; i < inputs; i++ {
		acc = n.AddXor(acc, n.AddInput("x"+string(rune('0'+i))))
	}
	n.MarkOutput("f", acc)
	return n
}

// TestBuildNetworkBadOrderReturnsError: a malformed order from a future
// config knob must come back as an error row, not a trapped panic.
func TestBuildNetworkBadOrderReturnsError(t *testing.T) {
	n := xorChain(4)
	cases := map[string][]int{
		"wrong length":      {0, 1, 2},
		"repeated variable": {0, 1, 1, 3},
		"out of range":      {0, 1, 2, 9},
		"negative":          {0, -1, 2, 3},
	}
	for name, order := range cases {
		nb, err := BuildNetwork(n, order)
		if err == nil || nb != nil {
			t.Errorf("%s: BuildNetwork accepted order %v", name, order)
			continue
		}
		if !strings.Contains(err.Error(), "order") {
			t.Errorf("%s: error %q does not mention the order", name, err)
		}
	}
	// And via the reused-manager path, which validates in ResetWithOrder.
	m := New(4)
	if _, err := BuildNetworkLitsIn(m, n, 4, nil, []int{2, 2, 2, 2}); err == nil {
		t.Error("BuildNetworkLitsIn accepted a non-permutation order on a reused manager")
	}
	// The manager stays usable after the failed validation.
	if _, err := BuildNetworkLitsIn(m, n, 4, nil, nil); err != nil {
		t.Fatalf("manager unusable after rejected order: %v", err)
	}
}

// TestBuildNetworkNodeBudget: a build exceeding the node budget returns
// an error matching budget.ErrBDDNodes, and a generous budget does not
// perturb the build.
func TestBuildNetworkNodeBudget(t *testing.T) {
	n := xorChain(8) // 15 internal nodes
	tok := budget.New(4, 0)
	m := New(8)
	m.SetBudget(tok)
	if _, err := BuildNetworkLitsIn(m, n, 8, nil, nil); !errors.Is(err, budget.ErrBDDNodes) {
		t.Fatalf("tiny budget: err = %v, want ErrBDDNodes", err)
	}
	if tok.BDDTrips() != 1 {
		t.Fatalf("BDDTrips = %d, want 1", tok.BDDTrips())
	}
	// A budget trip does not cancel the token; the same manager retries
	// under a looser budget (the degradation chain's contract).
	m.SetBudget(budget.New(1000, 0))
	nb, err := BuildNetworkLitsIn(m, n, 8, nil, nil)
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	ref, err2 := BuildNetwork(n, nil)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got, want := m.NodeCount(nb.OutputRefs(n)...), ref.Manager.NodeCount(ref.OutputRefs(n)...); got != want {
		t.Fatalf("budgeted build node count %d != unbudgeted %d", got, want)
	}
}

// TestBuildNetworkCancellation: a cancelled token aborts the build with
// an error matching budget.ErrCancelled.
func TestBuildNetworkCancellation(t *testing.T) {
	n := xorChain(8)
	tok := budget.New(0, 0)
	tok.Cancel(nil)
	m := New(8)
	m.SetBudget(tok)
	// The cancellation poll fires every cancelPollInterval inserts; a
	// 15-node build may finish under it, so loop builds until observed.
	for i := 0; i < cancelPollInterval; i++ {
		if _, err := BuildNetworkLitsIn(m, n, 8, nil, nil); err != nil {
			if !errors.Is(err, budget.ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			return
		}
	}
	t.Fatal("cancelled token never aborted a build")
}

// TestCatchInterrupt: the helper converts typed interrupts to errors
// and lets foreign panics through.
func TestCatchInterrupt(t *testing.T) {
	if err := CatchInterrupt(func() {}); err != nil {
		t.Fatalf("clean build: %v", err)
	}
	want := errors.New("boom")
	if err := CatchInterrupt(func() { Interrupt(want) }); !errors.Is(err, want) {
		t.Fatalf("Interrupt: err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	_ = CatchInterrupt(func() { panic("foreign") })
}
