package order

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// figure10 reconstructs the circuit of the paper's Figure 10: gates P, Q,
// R over inputs x1..x5 where P = x1·x2·x3, Q = x3·x4 and R = P + Q + x5.
// (The figure's exact gate functions are ambiguous in the published
// scan; this reconstruction matches the reported node counts for the
// reverse-topological and topological orders exactly — see
// EXPERIMENTS.md.)
func figure10() *logic.Network {
	n := logic.New("fig10")
	x1 := n.AddInput("x1")
	x2 := n.AddInput("x2")
	x3 := n.AddInput("x3")
	x4 := n.AddInput("x4")
	x5 := n.AddInput("x5")
	p := n.AddAnd(x1, x2, x3)
	n.SetName(p, "P")
	q := n.AddAnd(x3, x4)
	n.SetName(q, "Q")
	r := n.AddOr(p, q, x5)
	n.SetName(r, "R")
	n.MarkOutput("P", p)
	n.MarkOutput("Q", q)
	n.MarkOutput("R", r)
	return n
}

func TestFirstVisitSequenceFigure10(t *testing.T) {
	n := figure10()
	topo := Topological(n)
	// P (larger fanout cone than Q at the same level) is visited first:
	// x1, x2, x3, then Q adds x4, then R adds x5.
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if topo[i] != want[i] {
			t.Fatalf("Topological = %v, want %v", topo, want)
		}
	}
	rev := ReverseTopological(n)
	wantRev := []int{4, 3, 2, 1, 0}
	for i := range wantRev {
		if rev[i] != wantRev[i] {
			t.Fatalf("ReverseTopological = %v, want %v", rev, wantRev)
		}
	}
}

func TestFigure10NodeCounts(t *testing.T) {
	n := figure10()
	count := func(ord []int) int {
		nb, err := bdd.BuildNetwork(n, ord)
		if err != nil {
			t.Fatalf("BuildNetwork: %v", err)
		}
		return nb.Manager.NodeCount(nb.OutputRefs(n)...)
	}
	rev := count(ReverseTopological(n))
	topo := count(Topological(n))
	disturbed := count([]int{4, 0, 3, 2, 1}) // x5,x1,x4,x3,x2 of Figure 10
	if rev != 7 {
		t.Errorf("reverse-topological node count = %d, want 7 (paper Figure 10)", rev)
	}
	if topo != 11 {
		t.Errorf("topological node count = %d, want 11 (paper Figure 10)", topo)
	}
	if !(rev < disturbed && disturbed < topo) {
		t.Errorf("ordering ranking violated: rev=%d disturbed=%d topo=%d", rev, disturbed, topo)
	}
}

func TestOrdersArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := randomNetwork(rng, 3+rng.Intn(10), 5+rng.Intn(40))
		for name, ord := range map[string][]int{
			"Topological":        Topological(n),
			"ReverseTopological": ReverseTopological(n),
			"Natural":            Natural(n),
			"Random":             Random(n, int64(trial)),
			"DFS":                DFS(n),
		} {
			if len(ord) != n.NumInputs() {
				t.Fatalf("%s: length %d, want %d", name, len(ord), n.NumInputs())
			}
			seen := make([]bool, len(ord))
			for _, v := range ord {
				if v < 0 || v >= len(ord) || seen[v] {
					t.Fatalf("%s: not a permutation: %v", name, ord)
				}
				seen[v] = true
			}
		}
	}
}

func TestUnusedInputsAppended(t *testing.T) {
	n := logic.New("unused")
	a := n.AddInput("a")
	n.AddInput("dangling")
	n.MarkOutput("f", n.AddBuf(a))
	for name, ord := range map[string][]int{
		"Topological": Topological(n),
		"DFS":         DFS(n),
	} {
		if len(ord) != 2 {
			t.Fatalf("%s: missing unused input: %v", name, ord)
		}
	}
}

func TestReverseTopologicalBeatsNaturalOnConvergentCircuits(t *testing.T) {
	// The paper's claim: on convergent, high-fanout circuits the
	// reverse-topological order is much better than arbitrary ones. Use a
	// multiplexer-tree-like convergent circuit and compare on average.
	rng := rand.New(rand.NewSource(23))
	better := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := convergentNetwork(rng, 8, 40)
		nbRev, err := bdd.BuildNetwork(n, ReverseTopological(n))
		if err != nil {
			t.Fatal(err)
		}
		nbRand, err := bdd.BuildNetwork(n, Random(n, int64(trial*7+1)))
		if err != nil {
			t.Fatal(err)
		}
		r := nbRev.Manager.NodeCount(nbRev.OutputRefs(n)...)
		x := nbRand.Manager.NodeCount(nbRand.OutputRefs(n)...)
		if r <= x {
			better++
		}
	}
	if better < trials*6/10 {
		t.Errorf("reverse-topological no better than random in %d/%d trials", trials-better, trials)
	}
}

func randomNetwork(rng *rand.Rand, numInputs, numGates int) *logic.Network {
	n := logic.New("rand")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(inputName(i)))
	}
	for g := 0; g < numGates; g++ {
		pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
		switch rng.Intn(4) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1:
			ids = append(ids, n.AddAnd(pick(), pick()))
		case 2:
			ids = append(ids, n.AddOr(pick(), pick()))
		default:
			ids = append(ids, n.AddXor(pick(), pick()))
		}
	}
	n.MarkOutput("f", ids[len(ids)-1])
	return n
}

// convergentNetwork builds a circuit whose early gates have large fanout
// cones, mimicking the flattened convergent structure of domino control
// blocks.
func convergentNetwork(rng *rand.Rand, numInputs, numGates int) *logic.Network {
	n := logic.New("conv")
	var ids []logic.NodeID
	for i := 0; i < numInputs; i++ {
		ids = append(ids, n.AddInput(inputName(i)))
	}
	for g := 0; g < numGates; g++ {
		// Prefer recent nodes as fanins to build convergence.
		pick := func() logic.NodeID {
			k := len(ids)
			return ids[k-1-rng.Intn(min(k, 6))]
		}
		if rng.Intn(2) == 0 {
			ids = append(ids, n.AddAnd(pick(), pick()))
		} else {
			ids = append(ids, n.AddOr(pick(), pick()))
		}
	}
	n.MarkOutput("f", ids[len(ids)-1])
	n.MarkOutput("g", ids[len(ids)-2])
	return n
}

func inputName(i int) string {
	return "i" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func BenchmarkReverseTopological(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	n := randomNetwork(rng, 30, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReverseTopological(n)
	}
}
