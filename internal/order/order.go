// Package order implements BDD variable-ordering heuristics, including
// the one the paper proposes for domino blocks (Section 4.2.2):
//
//  1. variables are ordered in the reverse of the order in which circuit
//     inputs are first visited during a topological traversal of the
//     gates, and
//  2. gates at the same topological level are traversed in decreasing
//     order of the cardinality of their fanout cones.
//
// These two principles place a variable low in the BDD (near the
// terminals) when it is close to the primary inputs or feeds a large
// fanout cone, which maximizes node sharing in the highly convergent
// cone-heavy networks domino synthesis produces.
//
// All functions return a permutation of input *positions* suitable for
// bdd.NewWithOrder / bdd.BuildNetwork: level l of the BDD decides input
// order[l].
package order

import (
	"math/rand"
	"sort"

	"repro/internal/logic"
)

// Topological returns the first-visit order of the primary inputs under
// the paper's gate traversal (level by level, ties broken by decreasing
// fanout-cone cardinality). This is the "topological ordering" row of
// Figure 10 — the baseline the paper improves on by reversing.
func Topological(n *logic.Network) []int {
	firstVisit := firstVisitSequence(n)
	return firstVisit
}

// ReverseTopological returns the paper's proposed order: the reverse of
// the first-visit sequence, so the earliest-visited input (nearest the
// primary inputs, largest cones) sits lowest in the BDD.
func ReverseTopological(n *logic.Network) []int {
	fv := firstVisitSequence(n)
	for i, j := 0, len(fv)-1; i < j; i, j = i+1, j-1 {
		fv[i], fv[j] = fv[j], fv[i]
	}
	return fv
}

// firstVisitSequence performs the traversal shared by Topological and
// ReverseTopological and returns input positions in first-visit order.
func firstVisitSequence(n *logic.Network) []int {
	levels := n.Levels()
	coneSizes := n.FanoutConeSizes()
	posOf := make(map[logic.NodeID]int, n.NumInputs())
	for pos, id := range n.Inputs() {
		posOf[id] = pos
	}

	type gateRec struct {
		id    logic.NodeID
		level int
		cone  int
	}
	var gates []gateRec
	for i := 0; i < n.NumNodes(); i++ {
		id := logic.NodeID(i)
		if n.Kind(id).IsGate() {
			gates = append(gates, gateRec{id, levels[i], coneSizes[i]})
		}
	}
	sort.SliceStable(gates, func(a, b int) bool {
		if gates[a].level != gates[b].level {
			return gates[a].level < gates[b].level
		}
		return gates[a].cone > gates[b].cone
	})

	visited := make([]bool, n.NumInputs())
	seq := make([]int, 0, n.NumInputs())
	visitInput := func(id logic.NodeID) {
		if pos, ok := posOf[id]; ok && !visited[pos] {
			visited[pos] = true
			seq = append(seq, pos)
		}
	}
	for _, g := range gates {
		for _, f := range n.Fanins(g.id) {
			if n.Kind(f) == logic.KindInput {
				visitInput(f)
			}
		}
	}
	// Inputs never feeding a gate (e.g. direct input→output wires or
	// unused inputs) come last in declaration order.
	for pos := range visited {
		if !visited[pos] {
			seq = append(seq, pos)
		}
	}
	return seq
}

// Natural returns the identity order (inputs in declaration order).
func Natural(n *logic.Network) []int {
	o := make([]int, n.NumInputs())
	for i := range o {
		o[i] = i
	}
	return o
}

// Random returns a seeded random permutation, used as an ordering
// baseline in the ablation benchmarks.
func Random(n *logic.Network, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n.NumInputs())
}

// DFS returns inputs in depth-first first-visit order from the outputs,
// a common structural ordering baseline (Malik-style) that ignores the
// paper's level/fanout refinements.
func DFS(n *logic.Network) []int {
	posOf := make(map[logic.NodeID]int, n.NumInputs())
	for pos, id := range n.Inputs() {
		posOf[id] = pos
	}
	visited := make([]bool, n.NumNodes())
	taken := make([]bool, n.NumInputs())
	seq := make([]int, 0, n.NumInputs())
	var rec func(logic.NodeID)
	rec = func(id logic.NodeID) {
		if visited[id] {
			return
		}
		visited[id] = true
		if pos, ok := posOf[id]; ok {
			if !taken[pos] {
				taken[pos] = true
				seq = append(seq, pos)
			}
			return
		}
		for _, f := range n.Fanins(id) {
			rec(f)
		}
	}
	for _, o := range n.Outputs() {
		rec(o.Driver)
	}
	for pos := range taken {
		if !taken[pos] {
			seq = append(seq, pos)
		}
	}
	return seq
}
