package sgraph

import (
	"math/rand"
	"testing"
)

// figure9 builds the 5-vertex strongly connected s-graph of the paper's
// Figure 9: A, B, E have identical fanins {C, D} and fanouts {C, D};
// C and D have fanins {A,B,E} and fanouts {A,B,E}.
func figure9() *Graph {
	g := New(5, []string{"A", "B", "C", "D", "E"})
	const (
		A = 0
		B = 1
		C = 2
		D = 3
		E = 4
	)
	for _, u := range []int{A, B, E} {
		for _, v := range []int{C, D} {
			g.AddEdge(u, v)
			g.AddEdge(v, u)
		}
	}
	return g
}

func TestFigure9ClassicalTransformsStuck(t *testing.T) {
	g := figure9()
	var sol Solution
	w := g.Clone()
	w.Reduce(&sol)
	if len(sol.Vertices) != 0 || w.NumAlive() != 5 {
		t.Fatalf("classical reductions should not reduce Figure 9: took %v, %d alive",
			sol.Vertices, w.NumAlive())
	}
}

func TestFigure9Symmetrize(t *testing.T) {
	g := figure9()
	merges := g.Symmetrize()
	if merges != 3 {
		t.Errorf("merges = %d, want 3 (A,B,E -> ABE; C,D -> CD)", merges)
	}
	if g.NumAlive() != 2 {
		t.Fatalf("alive after symmetrization = %d, want 2", g.NumAlive())
	}
	// Find the two supervertices and check weights 3 and 2.
	var weights []int
	for v := 0; v < 5; v++ {
		if g.Alive(v) {
			weights = append(weights, g.Weight(v))
		}
	}
	if len(weights) != 2 || weights[0]+weights[1] != 5 {
		t.Fatalf("supervertex weights = %v", weights)
	}
	if !(weights[0] == 3 && weights[1] == 2 || weights[0] == 2 && weights[1] == 3) {
		t.Errorf("supervertex weights = %v, want {3,2}", weights)
	}
}

func TestFigure9MFVSPicksCD(t *testing.T) {
	g := figure9()
	sol := MFVS(g, DefaultOptions())
	// The optimum cuts C and D (weight 2), not A, B, E (weight 3).
	if sol.Weight != 2 {
		t.Fatalf("MFVS weight = %d, want 2 (cut {C,D})", sol.Weight)
	}
	want := map[int]bool{2: true, 3: true}
	for _, v := range sol.Vertices {
		if !want[v] {
			t.Errorf("unexpected FVS vertex %s", g.Name(v))
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Errorf("FVS missing vertices: %v", want)
	}
	if !g.IsFeedbackSet(sol.Vertices) {
		t.Error("returned set is not a feedback set")
	}
}

func TestFigure9WithoutSymmetry(t *testing.T) {
	// The classical baseline (no symmetry transform) must still return a
	// valid feedback set; the enhanced version should never be worse.
	g := figure9()
	base := MFVS(g, Options{Symmetry: false, ExactLimit: 0})
	enh := MFVS(g, DefaultOptions())
	if !g.IsFeedbackSet(base.Vertices) {
		t.Error("baseline not a feedback set")
	}
	if enh.Weight > base.Weight {
		t.Errorf("enhanced (%d) worse than baseline (%d)", enh.Weight, base.Weight)
	}
}

func TestFigure8SelfLoop(t *testing.T) {
	// Figure 8(b): a self-loop vertex is taken into the FVS.
	g := New(3, []string{"X", "U", "V"})
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(0, 2)
	var sol Solution
	g.Reduce(&sol)
	if len(sol.Vertices) != 1 || sol.Vertices[0] != 0 {
		t.Errorf("self-loop reduction took %v, want [X]", sol.Vertices)
	}
	if g.NumAlive() != 0 {
		t.Errorf("residue after reduction: %d alive (U, V are then source/sink)", g.NumAlive())
	}
}

func TestFigure8SourceSink(t *testing.T) {
	// Figure 8(a)/(c): sources and sinks can be ignored.
	g := New(3, []string{"X", "Y", "Z"})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var sol Solution
	g.Reduce(&sol)
	if len(sol.Vertices) != 0 || g.NumAlive() != 0 {
		t.Errorf("acyclic chain should vanish: sol %v, %d alive", sol.Vertices, g.NumAlive())
	}
}

func TestFigure8Bypass(t *testing.T) {
	// A vertex with a single predecessor is bypassed; the cycle collapses
	// onto the neighbor.
	g := New(2, []string{"X", "Y"})
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	var sol Solution
	g.Reduce(&sol)
	if len(sol.Vertices) != 1 {
		t.Fatalf("2-cycle must cost exactly one vertex, got %v", sol.Vertices)
	}
}

func TestMFVSValidityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(15)
		g := New(n, nil)
		edges := 1 + rng.Intn(3*n)
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for _, opts := range []Options{DefaultOptions(), {Symmetry: false, ExactLimit: 0}, {Symmetry: true, ExactLimit: 0}} {
			sol := MFVS(g, opts)
			if !g.IsFeedbackSet(sol.Vertices) {
				t.Fatalf("trial %d opts %+v: not a feedback set: %v", trial, opts, sol.Vertices)
			}
			if sol.Weight != len(sol.Vertices) {
				t.Fatalf("trial %d: weight %d != |set| %d for unit weights", trial, sol.Weight, len(sol.Vertices))
			}
		}
	}
}

func TestMFVSExactOptimalOnKnownGraphs(t *testing.T) {
	// Complete digraph K4 (all ordered pairs): MFVS must remove all but
	// one vertex.
	g := New(4, nil)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	sol := MFVS(g, DefaultOptions())
	if sol.Weight != 3 {
		t.Errorf("K4 MFVS weight = %d, want 3", sol.Weight)
	}
	// Two disjoint 3-cycles: weight 2.
	g2 := New(6, nil)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 0)
	g2.AddEdge(3, 4)
	g2.AddEdge(4, 5)
	g2.AddEdge(5, 3)
	sol2 := MFVS(g2, DefaultOptions())
	if sol2.Weight != 2 {
		t.Errorf("two 3-cycles MFVS weight = %d, want 2", sol2.Weight)
	}
}

func TestEnhancedNeverWorseThanBaselineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		g := New(n, nil)
		// Bias toward symmetric structure: duplicate some vertices'
		// connectivity, as domino duplication does.
		for e := 0; e < 2*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for v := 1; v < n; v += 3 {
			// Make v a twin of v-1.
			for u := 0; u < n; u++ {
				if g.HasEdge(v-1, u) && u != v {
					g.AddEdge(v, u)
				}
				if g.HasEdge(u, v-1) && u != v {
					g.AddEdge(u, v)
				}
			}
		}
		base := MFVS(g, Options{Symmetry: false, ExactLimit: 0})
		enh := MFVS(g, Options{Symmetry: true, ExactLimit: 0})
		if !g.IsFeedbackSet(enh.Vertices) || !g.IsFeedbackSet(base.Vertices) {
			t.Fatalf("trial %d: invalid feedback set", trial)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := figure9()
	c := g.Clone()
	var sol Solution
	c.Reduce(&sol)
	c.Symmetrize()
	if g.NumAlive() != 5 {
		t.Error("mutating the clone changed the original")
	}
}

func BenchmarkMFVSEnhanced(b *testing.B) {
	rng := rand.New(rand.NewSource(107))
	g := New(60, nil)
	for e := 0; e < 200; e++ {
		g.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	for v := 1; v < 60; v += 2 {
		for u := 0; u < 60; u++ {
			if g.HasEdge(v-1, u) && u != v {
				g.AddEdge(v, u)
			}
			if g.HasEdge(u, v-1) && u != v {
				g.AddEdge(u, v)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MFVS(g, Options{Symmetry: true, ExactLimit: 0})
	}
}

func BenchmarkMFVSBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(107))
	g := New(60, nil)
	for e := 0; e < 200; e++ {
		g.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	for v := 1; v < 60; v += 2 {
		for u := 0; u < 60; u++ {
			if g.HasEdge(v-1, u) && u != v {
				g.AddEdge(v, u)
			}
			if g.HasEdge(u, v-1) && u != v {
				g.AddEdge(u, v)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MFVS(g, Options{Symmetry: false, ExactLimit: 0})
	}
}

func TestSymmetrizeWithSelfLoops(t *testing.T) {
	// Vertices with identical neighborhoods plus self-loops must merge
	// without losing the self-loop.
	g := New(3, []string{"A", "B", "C"})
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	merges := g.Symmetrize()
	if merges != 1 {
		t.Fatalf("merges = %d, want 1 (A,B)", merges)
	}
	// The merged supervertex keeps a self-loop, so MFVS must take it.
	sol := MFVS(g, DefaultOptions())
	if !g.IsFeedbackSet(sol.Vertices) {
		t.Error("not a feedback set after self-loop merge")
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g := New(0, nil)
	sol := MFVS(g, DefaultOptions())
	if len(sol.Vertices) != 0 {
		t.Error("empty graph has nonempty MFVS")
	}
	g1 := New(1, nil)
	if sol := MFVS(g1, DefaultOptions()); len(sol.Vertices) != 0 {
		t.Error("edgeless vertex in MFVS")
	}
	g1.AddEdge(0, 0)
	if sol := MFVS(g1, DefaultOptions()); sol.Weight != 1 {
		t.Error("self-loop singleton must be cut")
	}
}
