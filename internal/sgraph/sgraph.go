// Package sgraph implements the s-graph machinery the paper uses to
// partition sequential domino circuits for power estimation (Section
// 4.2.1): a directed graph of structural dependencies among flip-flops,
// the classical minimum-feedback-vertex-set (MFVS) reductions of
// Chakradhar et al. [2] (Figure 8), and the paper's fourth,
// symmetry-based transformation that merges flip-flops with identical
// fanins and fanouts into weighted supervertices (Figure 9) — a pattern
// domino phase duplication makes common.
package sgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a mutable directed graph over weighted supervertices. Vertex
// identity is the index into the vertex table; dead vertices stay in the
// table with alive=false.
type Graph struct {
	names   []string
	weight  []int
	members [][]int // original vertex indexes merged into this vertex
	out     []map[int]bool
	in      []map[int]bool
	alive   []bool
}

// New creates a graph with n vertices named by names (nil for v<i>
// defaults), each of weight 1.
func New(n int, names []string) *Graph {
	g := &Graph{
		names:   make([]string, n),
		weight:  make([]int, n),
		members: make([][]int, n),
		out:     make([]map[int]bool, n),
		in:      make([]map[int]bool, n),
		alive:   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		if names != nil && i < len(names) && names[i] != "" {
			g.names[i] = names[i]
		} else {
			g.names[i] = fmt.Sprintf("v%d", i)
		}
		g.weight[i] = 1
		g.members[i] = []int{i}
		g.out[i] = make(map[int]bool)
		g.in[i] = make(map[int]bool)
		g.alive[i] = true
	}
	return g
}

// AddEdge inserts the directed edge u -> v (idempotent).
func (g *Graph) AddEdge(u, v int) {
	if !g.alive[u] || !g.alive[v] {
		panic("sgraph: edge on dead vertex")
	}
	g.out[u][v] = true
	g.in[v][u] = true
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names:   append([]string(nil), g.names...),
		weight:  append([]int(nil), g.weight...),
		members: make([][]int, len(g.members)),
		out:     make([]map[int]bool, len(g.out)),
		in:      make([]map[int]bool, len(g.in)),
		alive:   append([]bool(nil), g.alive...),
	}
	for i := range g.members {
		c.members[i] = append([]int(nil), g.members[i]...)
		c.out[i] = make(map[int]bool, len(g.out[i]))
		for v := range g.out[i] {
			c.out[i][v] = true
		}
		c.in[i] = make(map[int]bool, len(g.in[i]))
		for v := range g.in[i] {
			c.in[i][v] = true
		}
	}
	return c
}

// NumAlive returns the number of live vertices.
func (g *Graph) NumAlive() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

// Alive reports whether vertex v is live.
func (g *Graph) Alive(v int) bool { return g.alive[v] }

// Name returns the display name of vertex v.
func (g *Graph) Name(v int) string { return g.names[v] }

// Weight returns the supervertex weight of v.
func (g *Graph) Weight(v int) int { return g.weight[v] }

// Members returns the original vertex indexes merged into v.
func (g *Graph) Members(v int) []int { return g.members[v] }

// HasEdge reports whether the edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool { return g.alive[u] && g.alive[v] && g.out[u][v] }

func (g *Graph) remove(v int) {
	for u := range g.in[v] {
		delete(g.out[u], v)
	}
	for w := range g.out[v] {
		delete(g.in[w], v)
	}
	g.in[v] = make(map[int]bool)
	g.out[v] = make(map[int]bool)
	g.alive[v] = false
}

// Solution is an MFVS result in terms of the graph's *original* vertices.
type Solution struct {
	// Vertices lists original vertex indexes in the feedback set.
	Vertices []int
	// Weight is the total weight removed (= len(Vertices) for unit
	// weights).
	Weight int
}

func (g *Graph) take(v int, sol *Solution) {
	sol.Vertices = append(sol.Vertices, g.members[v]...)
	sol.Weight += g.weight[v]
	g.remove(v)
}

// Reduce applies the three classical transformations of Figure 8
// exhaustively:
//
//	(a) a source or sink vertex can never lie on a cycle — drop it;
//	(b) a vertex with a self-loop must be in every FVS — take it;
//	(c) a vertex with a single predecessor (or single successor) can be
//	    bypassed, since any cycle through it also passes the neighbor.
//
// Bypassing is the weighted-safe variant: v is contracted into its sole
// neighbor u only when weight(u) <= weight(v), which preserves
// optimality for weighted supervertices. Taken vertices accumulate into
// sol.
func (g *Graph) Reduce(sol *Solution) {
	changed := true
	for changed {
		changed = false
		for v := range g.alive {
			if !g.alive[v] {
				continue
			}
			switch {
			case g.out[v][v]:
				g.take(v, sol)
				changed = true
			case len(g.in[v]) == 0 || len(g.out[v]) == 0:
				g.remove(v)
				changed = true
			case len(g.in[v]) == 1:
				u := anyKey(g.in[v])
				if g.weight[u] <= g.weight[v] {
					g.bypass(v)
					changed = true
				}
			case len(g.out[v]) == 1:
				u := anyKey(g.out[v])
				if g.weight[u] <= g.weight[v] {
					g.bypass(v)
					changed = true
				}
			}
		}
	}
}

// bypass removes v, connecting all predecessors to all successors.
func (g *Graph) bypass(v int) {
	preds := keys(g.in[v])
	succs := keys(g.out[v])
	g.remove(v)
	for _, u := range preds {
		for _, w := range succs {
			g.AddEdge(u, w)
		}
	}
}

// Symmetrize applies the paper's fourth transformation: live vertices
// with identical fanin sets and identical fanout sets (self-edges
// excluded from the comparison) are merged into one supervertex whose
// weight is the sum of the group. Returns the number of merges
// performed.
func (g *Graph) Symmetrize() int {
	sig := make(map[string][]int)
	for v := range g.alive {
		if !g.alive[v] {
			continue
		}
		key := neighborSignature(g.in[v], v) + "|" + neighborSignature(g.out[v], v)
		sig[key] = append(sig[key], v)
	}
	merges := 0
	for _, group := range sig {
		if len(group) < 2 {
			continue
		}
		sort.Ints(group)
		head := group[0]
		var nameParts []string
		for _, v := range group {
			nameParts = append(nameParts, g.names[v])
		}
		for _, v := range group[1:] {
			g.weight[head] += g.weight[v]
			g.members[head] = append(g.members[head], g.members[v]...)
			// Self-loops within the group become self-loops of the head.
			if g.out[v][head] || g.in[v][head] || g.out[head][v] {
				g.AddEdge(head, head)
			}
			g.remove(v)
			merges++
		}
		g.names[head] = strings.Join(nameParts, "")
	}
	return merges
}

func neighborSignature(set map[int]bool, self int) string {
	ks := make([]int, 0, len(set))
	for k := range set {
		if k == self {
			continue
		}
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, ",")
}

// Options configures MFVS.
type Options struct {
	// Symmetry enables the paper's supervertex transformation between
	// reduction rounds (the "enhanced" MFVS). Disabling it gives the
	// classical baseline for the ablation benchmark.
	Symmetry bool
	// ExactLimit: below this many live vertices after reduction, an exact
	// branch-and-bound finishes the job (default 16; 0 disables).
	ExactLimit int
}

// DefaultOptions enables the paper's enhancements.
func DefaultOptions() Options { return Options{Symmetry: true, ExactLimit: 16} }

// MFVS computes a feedback vertex set of the graph (destructively on a
// clone) using reductions, optional symmetrization, exact search on small
// remainders and a greedy fallback. The solution is reported in original
// vertex indexes.
func MFVS(g *Graph, opts Options) Solution {
	w := g.Clone()
	var sol Solution
	for {
		w.Reduce(&sol)
		if opts.Symmetry {
			if w.Symmetrize() > 0 {
				continue
			}
		}
		break
	}
	if w.NumAlive() == 0 {
		sortInts(sol.Vertices)
		return sol
	}
	if opts.ExactLimit > 0 && w.NumAlive() <= opts.ExactLimit {
		exact := exactMFVS(w)
		for _, v := range exact {
			sol.Vertices = append(sol.Vertices, w.members[v]...)
			sol.Weight += w.weight[v]
		}
		sortInts(sol.Vertices)
		return sol
	}
	// Greedy: repeatedly take the vertex with the best cycle-breaking
	// score per unit weight, processing heavier supervertices first on
	// ties (the paper's descending-weight rule), then re-reduce.
	for w.NumAlive() > 0 {
		best, bestScore := -1, -1.0
		for v := range w.alive {
			if !w.alive[v] {
				continue
			}
			score := float64(len(w.in[v])*len(w.out[v])) / float64(w.weight[v])
			if score > bestScore || (score == bestScore && best >= 0 && w.weight[v] > w.weight[best]) {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			break
		}
		w.take(best, &sol)
		w.Reduce(&sol)
		if opts.Symmetry {
			w.Symmetrize()
		}
	}
	sortInts(sol.Vertices)
	return sol
}

// exactMFVS finds a minimum-weight FVS of the live subgraph by
// branch-and-bound on cycles, returning live vertex indexes.
func exactMFVS(g *Graph) []int {
	bestWeight := 1 << 30
	var best []int
	var rec func(cur *Graph, taken []int, weight int)
	rec = func(cur *Graph, taken []int, weight int) {
		if weight >= bestWeight {
			return
		}
		reduced := cur.Clone()
		var rsol Solution
		reduced.Reduce(&rsol)
		// Reduction-taken vertices are supervertices of `cur`; they are
		// accounted by weight but we need their cur-level identity: the
		// Reduce path stores original members, so translate via member
		// heads. Simpler: track weight and member list directly.
		weight += rsol.Weight
		if weight >= bestWeight {
			return
		}
		cyc := findCycle(reduced)
		if cyc == nil {
			total := append(append([]int(nil), taken...), rsol.Vertices...)
			bestWeight = weight
			best = total
			return
		}
		for _, v := range cyc {
			next := reduced.Clone()
			w2 := weight + next.weight[v]
			t2 := append(append([]int(nil), taken...), append([]int(nil), rsol.Vertices...)...)
			t2 = append(t2, next.members[v]...)
			next.remove(v)
			rec(next, t2, w2)
		}
	}
	rec(g, nil, 0)
	// Translate original member indexes back to live vertex heads of g.
	headOf := make(map[int]int)
	for v := range g.alive {
		if g.alive[v] {
			for _, m := range g.members[v] {
				headOf[m] = v
			}
		}
	}
	seen := make(map[int]bool)
	var out []int
	for _, m := range best {
		if h, ok := headOf[m]; ok && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// findCycle returns the vertices of one directed cycle in the live
// subgraph, or nil if acyclic.
func findCycle(g *Graph) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.alive))
	parent := make([]int, len(g.alive))
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for w := range g.out[v] {
			if !g.alive[w] {
				continue
			}
			if color[w] == gray {
				// Found a back edge; reconstruct v -> ... -> w.
				cycle = []int{w}
				for x := v; x != w; x = parent[x] {
					cycle = append(cycle, x)
				}
				return true
			}
			if color[w] == white {
				parent[w] = v
				if dfs(w) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := range g.alive {
		if g.alive[v] && color[v] == white {
			if dfs(v) {
				return cycle
			}
		}
	}
	return nil
}

// IsFeedbackSet verifies that removing the given original vertices from
// the graph leaves it acyclic — the correctness predicate for every MFVS
// test.
func (g *Graph) IsFeedbackSet(original []int) bool {
	removed := make(map[int]bool, len(original))
	for _, v := range original {
		removed[v] = true
	}
	w := g.Clone()
	for v := range w.alive {
		if !w.alive[v] {
			continue
		}
		for _, m := range w.members[v] {
			if removed[m] {
				w.remove(v)
				break
			}
		}
	}
	return findCycle(w) == nil
}

func anyKey(m map[int]bool) int {
	for k := range m {
		return k
	}
	return -1
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sortInts(s []int) { sort.Ints(s) }
