// Package corpus discovers circuit files on disk and parses them into
// the circuit types the synthesis flows consume. It is the bridge from
// real benchmark directories (BLIF and PLA, the MCNC suite's formats) to
// the batch engine: Discover expands files, directories, and glob
// patterns into a deterministic entry list, and Load parses one entry —
// combinational models become gen.NamedCircuit values, latched BLIF
// models additionally carry a seq.Circuit so the partitioned sequential
// flow (internal/seq) can run on them, exactly like the generated -seq
// path.
//
// The package does no flow work itself; internal/flow's RunCorpus drives
// entries through the concurrent pipeline with per-circuit error
// isolation (a corrupt file yields an error row, never a failed batch).
package corpus

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/blif"
	"repro/internal/gen"
	"repro/internal/pla"
	"repro/internal/seq"
)

// Format identifies a circuit file format.
type Format int

// Supported formats, keyed by file extension.
const (
	FormatBLIF Format = iota
	FormatPLA
)

func (f Format) String() string {
	switch f {
	case FormatBLIF:
		return "blif"
	case FormatPLA:
		return "pla"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// FormatOf maps a file name to its format by extension (.blif or .pla,
// case-insensitive).
func FormatOf(path string) (Format, bool) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".blif":
		return FormatBLIF, true
	case ".pla":
		return FormatPLA, true
	}
	return 0, false
}

// SplitList splits a comma-separated flag value into trimmed, non-empty
// elements — the parsing every corpus-taking CLI flag shares.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Entry is one discovered circuit file.
type Entry struct {
	Path string
	// Name is the file's base name without extension — the circuit name
	// result rows report.
	Name   string
	Format Format
}

// Discover expands paths — files, directories (walked recursively), or
// glob patterns — into a deduplicated entry list sorted by path.
// Directories and globs pick up only .blif/.pla files; naming a file
// with another extension explicitly is an error, as is a path that
// matches nothing. The sorted order is the batch's deterministic row
// order, independent of filesystem iteration.
func Discover(paths ...string) ([]Entry, error) {
	seen := make(map[string]bool)
	var entries []Entry
	add := func(path string, explicit bool) error {
		path = filepath.Clean(path) // so "./x.blif" and "x.blif" dedup
		f, ok := FormatOf(path)
		if !ok {
			if explicit {
				return fmt.Errorf("corpus: %s: unrecognized extension (want .blif or .pla)", path)
			}
			return nil
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		base := filepath.Base(path)
		entries = append(entries, Entry{
			Path:   path,
			Name:   strings.TrimSuffix(base, filepath.Ext(base)),
			Format: f,
		})
		return nil
	}
	addTree := func(root string) error {
		return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			return add(path, false)
		})
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		switch {
		case err == nil && info.IsDir():
			if err := addTree(p); err != nil {
				return nil, fmt.Errorf("corpus: walking %s: %w", p, err)
			}
		case err == nil:
			if err := add(p, true); err != nil {
				return nil, err
			}
		default:
			matches, gerr := filepath.Glob(p)
			if gerr != nil {
				return nil, fmt.Errorf("corpus: bad pattern %q: %v", p, gerr)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("corpus: %s: no such file, directory, or glob match", p)
			}
			for _, m := range matches {
				mi, merr := os.Stat(m)
				if merr != nil {
					return nil, fmt.Errorf("corpus: %s: %w", m, merr)
				}
				if mi.IsDir() {
					if err := addTree(m); err != nil {
						return nil, fmt.Errorf("corpus: walking %s: %w", m, err)
					}
					continue
				}
				if err := add(m, false); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	return entries, nil
}

// Circuit is one parsed corpus member.
type Circuit struct {
	Entry Entry
	// Named is the combinational view, ready for the Table 1/2 flows.
	// For a latched BLIF model the network is the standard combinational
	// view (latch outputs as pseudo-inputs, next-state functions as
	// pseudo-outputs).
	Named gen.NamedCircuit
	// Seq is non-nil when the source BLIF declared latches; it carries
	// the sequential structure for the partitioned flow.
	Seq *seq.Circuit
}

// Load parses one entry from disk.
func Load(e Entry) (*Circuit, error) {
	f, err := os.Open(e.Path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return Read(e, f)
}

// Read parses an entry's content from r (the path is used only in
// diagnostics and row metadata).
func Read(e Entry, r io.Reader) (*Circuit, error) {
	switch e.Format {
	case FormatBLIF:
		m, err := blif.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", e.Path, err)
		}
		c := &Circuit{Entry: e, Named: gen.FromNetwork(e.Name, "BLIF", m.Network)}
		if len(m.Latches) > 0 {
			s, err := seq.FromModel(m)
			if err != nil {
				return nil, fmt.Errorf("corpus: %s: %w", e.Path, err)
			}
			c.Seq = s
			c.Named.Desc = fmt.Sprintf("BLIF (%d FFs)", len(m.Latches))
		}
		return c, nil
	case FormatPLA:
		p, err := pla.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", e.Path, err)
		}
		net, err := p.ToNetwork()
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", e.Path, err)
		}
		net.Name = e.Name
		return &Circuit{Entry: e, Named: gen.FromNetwork(e.Name, "PLA", net)}, nil
	}
	return nil, fmt.Errorf("corpus: %s: unknown format", e.Path)
}
