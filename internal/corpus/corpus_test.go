package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBLIF = `.model comb
.inputs a b
.outputs f
.names a b f
11 1
.end
`

const testSeqBLIF = `.model seq
.inputs x
.outputs y
.latch ns q 0
.names x q ns
11 1
.names q y
1 1
.end
`

const testPLA = `.i 2
.o 1
.ilb a b
.ob f
11 1
.e
`

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDiscoverDirectory(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"b.blif":        testBLIF,
		"a.pla":         testPLA,
		"sub/c.blif":    testSeqBLIF,
		"notes.txt":     "ignored",
		"README.md":     "ignored",
		"upper/D.BLIF":  testBLIF,
		"upper/ignored": "no extension",
	})
	entries, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		rel, _ := filepath.Rel(dir, e.Path)
		got = append(got, rel)
	}
	want := []string{"a.pla", "b.blif", "sub/c.blif", "upper/D.BLIF"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Discover = %v, want %v", got, want)
	}
	if entries[0].Format != FormatPLA || entries[1].Format != FormatBLIF {
		t.Errorf("formats wrong: %v %v", entries[0].Format, entries[1].Format)
	}
	if entries[3].Name != "D" {
		t.Errorf("name = %q, want D", entries[3].Name)
	}
}

func TestDiscoverGlobAndDedup(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"x.blif": testBLIF,
		"y.blif": testBLIF,
	})
	// Directory + overlapping glob + explicit file must deduplicate.
	entries, err := Discover(dir, filepath.Join(dir, "*.blif"), filepath.Join(dir, "x.blif"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
}

func TestDiscoverErrors(t *testing.T) {
	dir := writeFiles(t, map[string]string{"notes.txt": "x"})
	if _, err := Discover(filepath.Join(dir, "notes.txt")); err == nil {
		t.Error("explicit non-circuit file accepted")
	}
	if _, err := Discover(filepath.Join(dir, "missing.blif")); err == nil {
		t.Error("missing path accepted")
	}
	if _, err := Discover(filepath.Join(dir, "*.pla")); err == nil {
		t.Error("matchless glob accepted")
	}
}

func TestLoadBLIF(t *testing.T) {
	dir := writeFiles(t, map[string]string{"and2.blif": testBLIF})
	entries, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != nil {
		t.Error("combinational model produced a seq circuit")
	}
	if c.Named.Name != "and2" || c.Named.Net.NumInputs() != 2 || c.Named.Net.NumOutputs() != 1 {
		t.Errorf("loaded %q with %d in / %d out", c.Named.Name, c.Named.Net.NumInputs(), c.Named.Net.NumOutputs())
	}
}

func TestLoadLatchedBLIF(t *testing.T) {
	dir := writeFiles(t, map[string]string{"counter.blif": testSeqBLIF})
	entries, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq == nil {
		t.Fatal("latched model did not produce a seq circuit")
	}
	if len(c.Seq.FFs) != 1 {
		t.Errorf("FFs = %d, want 1", len(c.Seq.FFs))
	}
	if !strings.Contains(c.Named.Desc, "1 FFs") {
		t.Errorf("desc = %q", c.Named.Desc)
	}
}

func TestLoadPLA(t *testing.T) {
	dir := writeFiles(t, map[string]string{"and2.pla": testPLA})
	entries, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Named.Net.Name != "and2" {
		t.Errorf("network name = %q", c.Named.Net.Name)
	}
	outs := c.Named.Net.EvalOutputs([]bool{true, true})
	if !outs[0] {
		t.Error("PLA semantics lost: f(1,1) = false")
	}
}

func TestLoadParseErrorMentionsPath(t *testing.T) {
	dir := writeFiles(t, map[string]string{"bad.blif": ".model m\n.banana\n.end"})
	entries, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(entries[0])
	if err == nil {
		t.Fatal("corrupt file parsed")
	}
	if !strings.Contains(err.Error(), "bad.blif") {
		t.Errorf("error %q does not name the file", err)
	}
}
