package gen

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/sgraph"
)

func TestGenerateInterface(t *testing.T) {
	n := Generate(Params{Name: "t", Inputs: 10, Outputs: 5, Gates: 50, Seed: 1})
	if n.NumInputs() != 10 {
		t.Errorf("inputs = %d, want 10", n.NumInputs())
	}
	if n.NumOutputs() != 5 {
		t.Errorf("outputs = %d, want 5", n.NumOutputs())
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n.GateCount() == 0 {
		t.Error("no gates generated")
	}
	if !n.HasInverters() {
		t.Error("generator should leave inverters for phase assignment to remove")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Name: "d", Inputs: 20, Outputs: 8, Gates: 100, Seed: 7})
	b := Generate(Params{Name: "d", Inputs: 20, Outputs: 8, Gates: 100, Seed: 7})
	if a.String() != b.String() {
		t.Error("same seed produced different networks")
	}
	c := Generate(Params{Name: "d", Inputs: 20, Outputs: 8, Gates: 100, Seed: 8})
	if a.String() == c.String() {
		t.Error("different seeds produced identical networks")
	}
}

func TestTable1CircuitInterfaces(t *testing.T) {
	for _, c := range Table1Circuits() {
		if c.Net.NumInputs() != c.PaperPIs {
			t.Errorf("%s: inputs = %d, paper says %d", c.Name, c.Net.NumInputs(), c.PaperPIs)
		}
		if c.Net.NumOutputs() != c.PaperPOs {
			t.Errorf("%s: outputs = %d, paper says %d", c.Name, c.Net.NumOutputs(), c.PaperPOs)
		}
		if err := c.Net.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", c.Name, err)
		}
		if c.Net.CountKind(logic.KindXor) != 0 {
			t.Errorf("%s: generator must not emit XOR (phase assignment requires AND/OR/NOT)", c.Name)
		}
	}
}

func TestTable1PaperNumbersPresent(t *testing.T) {
	cs := Table1Circuits()
	if len(cs) != 7 {
		t.Fatalf("Table 1 has %d circuits, want 7", len(cs))
	}
	// Spot-check the frg1 row against the paper.
	frg1 := cs[4]
	if frg1.Name != "frg1" || frg1.PaperMASize != 98 || frg1.PaperPwrSav != 34.1 || frg1.PaperAreaPen != 48.0 {
		t.Errorf("frg1 paper row wrong: %+v", frg1)
	}
	// Industry 2 is the paper's one negative-savings row.
	if cs[1].PaperPwrSav >= 0 {
		t.Error("Industry 2 must carry the paper's negative savings")
	}
}

func TestTable2PaperNumbers(t *testing.T) {
	cs := Table2Circuits()
	if len(cs) != 4 {
		t.Fatalf("Table 2 has %d circuits, want 4", len(cs))
	}
	// x3's Table 2 row: MP smaller than MA (negative area penalty).
	x3 := cs[3]
	if x3.Name != "x3" || x3.PaperAreaPen != -20.0 || x3.PaperPwrSav != 62.0 {
		t.Errorf("x3 Table 2 row wrong: %+v", x3)
	}
}

func TestGeneratedConesOverlap(t *testing.T) {
	// The phase heuristic's pair interactions only matter when output
	// cones overlap; the generator must produce overlapping cones.
	n := Frg1().Net
	cones := n.OutputCones()
	anyOverlap := false
	for i := 0; i < len(cones); i++ {
		for j := i + 1; j < len(cones); j++ {
			if logic.ConeOverlap(cones[i], cones[j]) > 0 {
				anyOverlap = true
			}
		}
	}
	if !anyOverlap {
		t.Error("frg1 twin has disjoint output cones; phase interactions would be trivial")
	}
}

func TestSequentialGenerator(t *testing.T) {
	c, err := Sequential(SeqParams{Name: "s", Inputs: 8, FFs: 12, Gates: 60, Seed: 5})
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	if len(c.FFs) != 12 {
		t.Fatalf("FFs = %d, want 12", len(c.FFs))
	}
	if err := c.Comb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := c.SGraph()
	if g.NumAlive() != 12 {
		t.Errorf("s-graph vertices = %d, want 12", g.NumAlive())
	}
	cut := c.Cut(sgraph.DefaultOptions())
	if !g.IsFeedbackSet(cut) {
		t.Error("generated circuit's cut is not a feedback set")
	}
	if _, err := c.Partition(cut); err != nil {
		t.Errorf("Partition with MFVS cut failed: %v", err)
	}
}

func TestSequentialTwinsCreateSymmetry(t *testing.T) {
	// With high TwinProb the s-graph should contain mergeable vertices.
	c, err := Sequential(SeqParams{Name: "tw", Inputs: 6, FFs: 16, Gates: 40, Seed: 9, TwinProb: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	g := c.SGraph()
	merges := g.Clone().Symmetrize()
	if merges == 0 {
		t.Error("twin-heavy sequential circuit produced no symmetric supervertices")
	}
}

func BenchmarkGenerateIndustry1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Industry1()
	}
}
