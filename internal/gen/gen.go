// Package gen generates the benchmark circuits of the reproduction.
//
// The paper evaluates on four MCNC benchmarks (apex7, frg1, x1, x3) and
// three proprietary Intel control blocks (Industry 1-3). Neither the MCNC
// BLIF files nor the Intel blocks are available in this offline
// environment, so this package builds deterministic *synthetic twins*:
// multi-level AND/OR/NOT control-logic-like networks with exactly the
// primary input and output counts Table 1 reports and comparable gate
// counts. The phase-assignment algorithms only interact with network
// structure (cones, overlaps, probabilities), so twins with matched
// interfaces and scale preserve the experimental shape; see DESIGN.md for
// the substitution rationale.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/logic"
	"repro/internal/seq"
)

// Params controls the synthetic network generator.
type Params struct {
	Name    string
	Inputs  int
	Outputs int
	// Gates is the approximate number of logic gates to create.
	Gates int
	Seed  int64
	// NotProb is the probability a generated gate is an inverter
	// (default 0.18 when zero) — technology-independent synthesis leaves
	// inverters at arbitrary points, which is what phase assignment
	// removes.
	NotProb float64
	// WideProb is the probability an AND/OR gate takes a third or fourth
	// fanin (default 0.3).
	WideProb float64
	// Locality biases fanin selection toward recently created nodes,
	// producing the deep convergent cones typical of control logic
	// (default 0.7).
	Locality float64
	// OrProb is the probability a non-inverter gate is an OR (default
	// 0.5). Control logic skews OR-heavy, which drives internal signal
	// probabilities toward 1 — the asymmetry (Figure 2) that makes the
	// minimum-power phase assignment diverge from the minimum-area one.
	OrProb float64
}

func (p *Params) defaults() {
	if p.NotProb == 0 {
		p.NotProb = 0.18
	}
	if p.WideProb == 0 {
		p.WideProb = 0.3
	}
	if p.Locality == 0 {
		p.Locality = 0.7
	}
	if p.OrProb == 0 {
		p.OrProb = 0.5
	}
}

// Generate builds a deterministic pseudo-random multi-level network.
func Generate(p Params) *logic.Network {
	p.defaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)
	ids := make([]logic.NodeID, 0, p.Inputs+p.Gates)
	for i := 0; i < p.Inputs; i++ {
		ids = append(ids, n.AddInput(fmt.Sprintf("pi%03d", i)))
	}
	pick := func() logic.NodeID {
		if rng.Float64() < p.Locality && len(ids) > p.Inputs {
			// Recent window: the last quarter of created nodes.
			w := len(ids) / 4
			if w < 4 {
				w = 4
			}
			lo := len(ids) - w
			if lo < 0 {
				lo = 0
			}
			return ids[lo+rng.Intn(len(ids)-lo)]
		}
		return ids[rng.Intn(len(ids))]
	}
	distinct := func(k int) []logic.NodeID {
		fs := make([]logic.NodeID, 0, k)
		seen := make(map[logic.NodeID]bool, k)
		for len(fs) < k {
			f := pick()
			if seen[f] {
				// Collisions are fine to resolve uniformly.
				f = ids[rng.Intn(len(ids))]
			}
			if !seen[f] {
				seen[f] = true
				fs = append(fs, f)
			}
		}
		return fs
	}
	for g := 0; g < p.Gates; g++ {
		r := rng.Float64()
		switch {
		case r < p.NotProb:
			ids = append(ids, n.AddNot(pick()))
		default:
			width := 2
			if rng.Float64() < p.WideProb {
				width += 1 + rng.Intn(2)
			}
			fs := distinct(width)
			if rng.Float64() < p.OrProb {
				ids = append(ids, n.AddOr(fs...))
			} else {
				ids = append(ids, n.AddAnd(fs...))
			}
		}
	}
	// Outputs: prefer late (deep) distinct gate drivers.
	gateStart := p.Inputs
	candidates := ids[gateStart:]
	if len(candidates) == 0 {
		candidates = ids
	}
	used := make(map[logic.NodeID]bool)
	for o := 0; o < p.Outputs; o++ {
		var driver logic.NodeID = logic.InvalidNode
		// Bias toward the deepest third, fall back to anything unused,
		// and finally accept reuse through a buffer.
		for attempt := 0; attempt < 50; attempt++ {
			lo := len(candidates) * 2 / 3
			c := candidates[lo+rng.Intn(len(candidates)-lo)]
			if !used[c] {
				driver = c
				break
			}
		}
		if driver == logic.InvalidNode {
			for _, c := range candidates {
				if !used[c] {
					driver = c
					break
				}
			}
		}
		if driver == logic.InvalidNode {
			driver = n.AddBuf(candidates[rng.Intn(len(candidates))])
		}
		used[driver] = true
		n.MarkOutput(fmt.Sprintf("po%03d", o), driver)
	}
	return n.Rebuild()
}

// NamedCircuit pairs a benchmark name with its network and the paper's
// reported interface, for table reports.
type NamedCircuit struct {
	Name string
	Desc string
	Net  *logic.Network
	// PaperPIs/PaperPOs are the interface sizes Table 1 reports (they
	// equal the generated interface by construction).
	PaperPIs, PaperPOs int
	// PaperMASize/PaperMPSize/PaperAreaPen/PaperPwrSav record Table 1's
	// results for EXPERIMENTS.md comparison.
	PaperMASize, PaperMPSize int
	PaperAreaPen             float64
	PaperPwrSav              float64
}

// The seven Table 1 circuits. Gate budgets are tuned so the synthesized
// cell counts land in the same regime as the paper's "Size" column.

// Industry1 is the twin of the paper's "Industry 1" control block
// (127 PIs, 122 POs, MA size 1849).
func Industry1() NamedCircuit {
	return NamedCircuit{
		Name: "Industry 1", Desc: "Control Logic",
		Net:      Generate(Params{Name: "industry1", Inputs: 127, Outputs: 122, Gates: 1300, Seed: 0xD0A11, OrProb: 0.68}),
		PaperPIs: 127, PaperPOs: 122,
		PaperMASize: 1849, PaperMPSize: 1970, PaperAreaPen: 6.5, PaperPwrSav: 22.6,
	}
}

// Industry2 is the twin of "Industry 2" (97 PIs, 86 POs, MA size 2272).
func Industry2() NamedCircuit {
	return NamedCircuit{
		Name: "Industry 2", Desc: "Control Logic",
		Net:      Generate(Params{Name: "industry2", Inputs: 97, Outputs: 86, Gates: 1650, Seed: 0xD0A12, OrProb: 0.55}),
		PaperPIs: 97, PaperPOs: 86,
		PaperMASize: 2272, PaperMPSize: 2348, PaperAreaPen: 3.3, PaperPwrSav: -2.8,
	}
}

// Industry3 is the twin of "Industry 3" (117 PIs, 199 POs, MA size 1589).
func Industry3() NamedCircuit {
	return NamedCircuit{
		Name: "Industry 3", Desc: "Control Logic",
		Net:      Generate(Params{Name: "industry3", Inputs: 117, Outputs: 199, Gates: 1150, Seed: 0xD0A13, OrProb: 0.70}),
		PaperPIs: 117, PaperPOs: 199,
		PaperMASize: 1589, PaperMPSize: 1699, PaperAreaPen: 6.9, PaperPwrSav: 27.3,
	}
}

// Apex7 is the twin of MCNC apex7 (79 PIs, 36 POs, MA size 394).
func Apex7() NamedCircuit {
	return NamedCircuit{
		Name: "apex7", Desc: "Public Domain",
		Net:      Generate(Params{Name: "apex7", Inputs: 79, Outputs: 36, Gates: 270, Seed: 0xA9E07, OrProb: 0.72}),
		PaperPIs: 79, PaperPOs: 36,
		PaperMASize: 394, PaperMPSize: 443, PaperAreaPen: 12.4, PaperPwrSav: 19.5,
	}
}

// Frg1 is the twin of MCNC frg1 (31 PIs, 3 POs, MA size 98). Its tiny
// 2^3 phase space makes exhaustive search feasible, mirroring the
// paper's observation.
func Frg1() NamedCircuit {
	return NamedCircuit{
		Name: "frg1", Desc: "Public Domain",
		Net:      Generate(Params{Name: "frg1", Inputs: 31, Outputs: 3, Gates: 70, Seed: 0xF1261, Locality: 0.85, OrProb: 0.85}),
		PaperPIs: 31, PaperPOs: 3,
		PaperMASize: 98, PaperMPSize: 145, PaperAreaPen: 48.0, PaperPwrSav: 34.1,
	}
}

// X1 is the twin of MCNC x1 (87 PIs, 28 POs, MA size 404).
func X1() NamedCircuit {
	return NamedCircuit{
		Name: "x1", Desc: "Public Domain",
		Net:      Generate(Params{Name: "x1", Inputs: 87, Outputs: 28, Gates: 280, Seed: 0x0A007, OrProb: 0.70}),
		PaperPIs: 87, PaperPOs: 28,
		PaperMASize: 404, PaperMPSize: 421, PaperAreaPen: 4.2, PaperPwrSav: 8.9,
	}
}

// X3 is the twin of MCNC x3 (235 PIs, 99 POs, MA size 1372).
func X3() NamedCircuit {
	return NamedCircuit{
		Name: "x3", Desc: "Public Domain",
		Net:      Generate(Params{Name: "x3", Inputs: 235, Outputs: 99, Gates: 950, Seed: 0x0A003, OrProb: 0.67}),
		PaperPIs: 235, PaperPOs: 99,
		PaperMASize: 1372, PaperMPSize: 1390, PaperAreaPen: 1.3, PaperPwrSav: 16.6,
	}
}

// X4 is a synthetic beyond-Table-1 twin: an x3-shaped control block
// scaled past the paper's largest circuit (288 PIs vs x3's 235), with
// the deep convergent cones of control logic (high Locality). It is
// the reordering benchmark's frontier circuit: its exact BDD forest
// blows the default node budget under the static build order but fits
// once in-place sifting reorders the table, so it completes
// exact-sifted where the PR-8 chain had to degrade (BENCH_9.json).
func X4() NamedCircuit {
	return NamedCircuit{
		Name: "x4", Desc: "Synthetic (beyond Table 1)",
		Net: Generate(Params{Name: "x4", Inputs: 288, Outputs: 96, Gates: 900, Seed: 0x0A404, OrProb: 0.70, Locality: 0.85}),
	}
}

// The wide twins exercise the beyond-exhaustive regime: 24, 32, and 48
// outputs put 2^k enumeration out of reach (or at its edge), which is
// the workload class the branch-and-bound and annealing search
// strategies open up. Interfaces and gate budgets follow the same
// control-logic shape as the Table 1 twins.

// Wide24 is a 24-output twin — just beyond the paper's 2^20 exhaustive
// ceiling, still reachable by exact branch-and-bound.
func Wide24() NamedCircuit {
	return NamedCircuit{
		Name: "wide24", Desc: "Synthetic (beyond-exhaustive)",
		Net: Generate(Params{Name: "wide24", Inputs: 36, Outputs: 24, Gates: 260, Seed: 0x824, OrProb: 0.66}),
	}
}

// Wide32 is the 32-output twin the annealing acceptance gate runs on:
// 2^32 assignments are infeasible to enumerate, so only the heuristic
// strategies (and the pairwise MinPower baseline) apply.
func Wide32() NamedCircuit {
	return NamedCircuit{
		Name: "wide32", Desc: "Synthetic (beyond-exhaustive)",
		Net: Generate(Params{Name: "wide32", Inputs: 48, Outputs: 32, Gates: 360, Seed: 0x832, OrProb: 0.68}),
	}
}

// Wide48 is the widest twin — 48 outputs, the stress case for the
// incremental score state's per-bit group index.
func Wide48() NamedCircuit {
	return NamedCircuit{
		Name: "wide48", Desc: "Synthetic (beyond-exhaustive)",
		Net: Generate(Params{Name: "wide48", Inputs: 64, Outputs: 48, Gates: 520, Seed: 0x848, OrProb: 0.64}),
	}
}

// WideCircuits returns the beyond-exhaustive twins in width order.
func WideCircuits() []NamedCircuit {
	return []NamedCircuit{Wide24(), Wide32(), Wide48()}
}

// FromNetwork wraps an arbitrary network as a NamedCircuit so external
// circuits (parsed benchmark files, hand-built networks) flow through
// the same table machinery as the synthetic twins.
func FromNetwork(name, desc string, net *logic.Network) NamedCircuit {
	return NamedCircuit{Name: name, Desc: desc, Net: net}
}

// KnownCircuits returns every named synthetic twin — the Table 1 set,
// the beyond-Table-1 x4 twin, plus the beyond-exhaustive wide set.
// This is the set genbench can emit to disk and the corpus smoke gate
// compares file-parsed rows against.
func KnownCircuits() []NamedCircuit {
	return append(append(Table1Circuits(), X4()), WideCircuits()...)
}

// FileName is the twin's on-disk base name (lowercase, spaces removed)
// — the one genbench emits and the corpus smoke gate matches rows by.
func (c NamedCircuit) FileName() string {
	return strings.ReplaceAll(strings.ToLower(c.Name), " ", "")
}

// Table1Circuits returns the seven benchmarks of Table 1 in the paper's
// row order.
func Table1Circuits() []NamedCircuit {
	return []NamedCircuit{Industry1(), Industry2(), Industry3(), Apex7(), Frg1(), X1(), X3()}
}

// Table2Circuits returns the four public benchmarks of Table 2 with the
// timed-flow paper numbers.
func Table2Circuits() []NamedCircuit {
	cs := []NamedCircuit{Apex7(), Frg1(), X1(), X3()}
	paper := []struct {
		maSize, mpSize int
		areaPen, sav   float64
	}{
		{452, 485, 7.3, 18.3},
		{98, 147, 50.0, 40.3},
		{406, 433, 6.7, 20.5},
		{2005, 1601, -20.0, 62.0},
	}
	for i := range cs {
		cs[i].PaperMASize = paper[i].maSize
		cs[i].PaperMPSize = paper[i].mpSize
		cs[i].PaperAreaPen = paper[i].areaPen
		cs[i].PaperPwrSav = paper[i].sav
	}
	return cs
}

// SeqParams controls sequential circuit generation for the MFVS
// experiments.
type SeqParams struct {
	Name   string
	Inputs int
	FFs    int
	Gates  int
	Seed   int64
	// TwinProb makes a new flip-flop a connectivity twin of an earlier
	// one with this probability, recreating the identical-fanin/fanout
	// symmetry domino duplication produces (Section 4.2.1).
	TwinProb float64
}

// Sequential generates a random sequential circuit: a combinational core
// plus FFs whose next-state functions draw from the core and other FFs.
func Sequential(p SeqParams) (*seq.Circuit, error) {
	if p.TwinProb == 0 {
		p.TwinProb = 0.3
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := logic.New(p.Name)
	var ffIn []logic.NodeID
	ffPos := make([]int, p.FFs)
	for i := 0; i < p.Inputs; i++ {
		n.AddInput(fmt.Sprintf("x%03d", i))
	}
	for i := 0; i < p.FFs; i++ {
		ffPos[i] = p.Inputs + i
		ffIn = append(ffIn, n.AddInput(fmt.Sprintf("q%03d", i)))
	}
	ids := append([]logic.NodeID(nil), n.Inputs()...)
	pick := func() logic.NodeID { return ids[rng.Intn(len(ids))] }
	for g := 0; g < p.Gates; g++ {
		switch rng.Intn(5) {
		case 0:
			ids = append(ids, n.AddNot(pick()))
		case 1, 2:
			ids = append(ids, n.AddAnd(pick(), pick()))
		default:
			ids = append(ids, n.AddOr(pick(), pick()))
		}
	}
	// Next-state functions: either a fresh random node combined with FF
	// outputs, or (with TwinProb) a function reusing the exact fanin
	// structure of an earlier FF to create s-graph twins.
	nsIdx := make([]int, p.FFs)
	type twin struct{ a, b logic.NodeID }
	var prevNS []twin
	for i := 0; i < p.FFs; i++ {
		var root logic.NodeID
		if len(prevNS) > 0 && rng.Float64() < p.TwinProb {
			tw := prevNS[rng.Intn(len(prevNS))]
			// Same fanins, same structure: an OR where the twin had one,
			// to keep functions distinct but connectivity identical.
			root = n.AddOr(tw.a, tw.b)
		} else {
			a := pick()
			b := ffIn[rng.Intn(len(ffIn))]
			root = n.AddAnd(a, b)
			prevNS = append(prevNS, twin{a, b})
		}
		nsIdx[i] = n.NumOutputs()
		n.MarkOutput(fmt.Sprintf("ns%03d", i), root)
	}
	// A couple of real outputs over FF state.
	n.MarkOutput("out0", n.AddOr(ffIn[0], ffIn[len(ffIn)-1]))
	if p.FFs > 2 {
		n.MarkOutput("out1", n.AddAnd(ffIn[1], ffIn[2]))
	}
	names := make([]string, p.FFs)
	for i := range names {
		names[i] = fmt.Sprintf("q%03d", i)
	}
	return seq.New(n, ffPos, nsIdx, names)
}
