// Command genbench writes the synthetic benchmark twins to BLIF files so
// they can be inspected or fed to other tools (and back into powerest /
// bddorder).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/blif"
	"repro/internal/corpus"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genbench: ")
	dir := flag.String("dir", "benchmarks", "output directory")
	only := flag.String("only", "", "comma-separated twin names to emit (e.g. apex7,frg1,x1); empty = all")
	flag.Parse()

	filter := make(map[string]bool)
	for _, n := range corpus.SplitList(strings.ToLower(*only)) {
		filter[n] = true
	}
	filtering := len(filter) > 0

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, c := range gen.KnownCircuits() {
		name := c.FileName()
		if filtering && !filter[name] {
			continue
		}
		delete(filter, name)
		path := filepath.Join(*dir, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := blif.Write(f, &blif.Model{Network: c.Net}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %4d PIs %4d POs %5d gates\n", path,
			c.Net.NumInputs(), c.Net.NumOutputs(), c.Net.GateCount())
	}
	// Unmatched names are errors, not silent coverage shrink — the
	// corpussmoke gate relies on every requested twin being emitted.
	if len(filter) > 0 {
		var missing []string
		for n := range filter {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		log.Fatalf("-only names match no twin: %s", strings.Join(missing, ", "))
	}
}
