// Command genbench writes the synthetic benchmark twins to BLIF files so
// they can be inspected or fed to other tools (and back into powerest /
// bddorder).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/blif"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genbench: ")
	dir := flag.String("dir", "benchmarks", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, c := range append(gen.Table1Circuits(), gen.WideCircuits()...) {
		name := strings.ReplaceAll(strings.ToLower(c.Name), " ", "")
		path := filepath.Join(*dir, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := blif.Write(f, &blif.Model{Network: c.Net}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %4d PIs %4d POs %5d gates\n", path,
			c.Net.NumInputs(), c.Net.NumOutputs(), c.Net.GateCount())
	}
}
