// Command dominod is the synthesis-as-a-service daemon: a long-running
// HTTP front-end over the corpus engine (internal/serve). Clients POST
// BLIF/PLA files or tar/zip archives plus a JSON flow.Config to
// /v1/jobs, poll job status, and stream deterministic JSONL result rows;
// identical submissions are answered from a content-addressed cache
// without re-running the flow. See docs/api.md for the endpoint
// reference.
//
// Besides the daemon mode it bundles three self-driving harnesses:
//
//	dominod -smoke DIR       end-to-end service smoke over real HTTP
//	                         (the CI servesmoke gate): submits DIR's
//	                         circuits as an archive, byte-compares the
//	                         streamed rows against a direct
//	                         flow.RunCorpus run, proves a repeat
//	                         submission is served from cache, and
//	                         exercises 429 backpressure and a graceful
//	                         drain.
//	dominod -loadtest        sustained-throughput harness: measures
//	                         cached-path and cold-path jobs/min against
//	                         a live server and fails below -loadtest-min.
//	dominod -faultsmoke      chaos smoke (the CI faultsmoke gate, run
//	                         under -race): hostile traffic — panicking
//	                         configures, circuits pinned until the
//	                         per-circuit timeout, blown BDD budgets,
//	                         client cancellations — must leave the
//	                         daemon live, draining clean, and at its
//	                         baseline goroutine count; writes the
//	                         BENCH_8.json degradation/throughput report.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dominod: ")

	addr := flag.String("addr", ":8157", "listen address")
	queue := flag.Int("queue", 64, "bounded job queue depth; submissions beyond it get 429 + Retry-After")
	jobWorkers := flag.Int("job-workers", 1, "concurrent jobs (parallelism within a job is -flow-workers)")
	flowWorkers := flag.Int("flow-workers", 0, "circuits run concurrently per job (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-circuit wall-clock cap (0 = none); timed-out rows are never cached")
	cacheEntries := flag.Int("cache", 4096, "content-addressed result cache entries (negative disables)")
	maxUpload := flag.Int64("max-upload", 64<<20, "submission body size cap in bytes")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "HTTP shutdown grace after the job queue drains")

	smokeDir := flag.String("smoke", "", "run the service smoke harness over the circuits in this directory, then exit")
	smokeOut := flag.String("smoke-out", "", "smoke: write the HTTP-streamed JSONL rows to this file")
	smokeVectors := flag.Int("smoke-vectors", 512, "smoke: Monte-Carlo vectors per measurement")

	loadtest := flag.Bool("loadtest", false, "run the load-test harness against an in-process server, then exit")
	ltOut := flag.String("loadtest-out", "", "loadtest: write the JSON report to this file")
	ltJobs := flag.Int("loadtest-jobs", 3000, "loadtest: cached-path submissions")
	ltClients := flag.Int("loadtest-clients", 8, "loadtest: concurrent HTTP clients")
	ltCold := flag.Int("loadtest-cold", 24, "loadtest: cold-path submissions (distinct configs)")
	ltMin := flag.Float64("loadtest-min", 1000, "loadtest: minimum sustained cached-path jobs/min (0 disables the gate)")
	ltPayload := flag.String("loadtest-payload", "", "loadtest: BLIF file to submit as the job payload (default: a generated 24-PI/12-PO synthetic twin; size and PI/PO counts are recorded in the report)")

	faultsmoke := flag.Bool("faultsmoke", false, "run the chaos smoke harness against an in-process fault-injecting server, then exit")
	fsOut := flag.String("faultsmoke-out", "", "faultsmoke: write the JSON report (BENCH_8.json) to this file")
	flag.Parse()

	opts := serve.Options{
		QueueDepth:     *queue,
		JobWorkers:     *jobWorkers,
		FlowWorkers:    *flowWorkers,
		CircuitTimeout: *timeout,
		CacheEntries:   *cacheEntries,
		MaxUploadBytes: *maxUpload,
		RetryAfter:     *retryAfter,
	}

	switch {
	case *smokeDir != "":
		if err := runSmoke(*smokeDir, *smokeOut, *smokeVectors, opts); err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		log.Print("smoke: PASS")
	case *faultsmoke:
		if err := runFaultsmoke(*fsOut, opts); err != nil {
			log.Fatalf("faultsmoke: FAIL: %v", err)
		}
		log.Print("faultsmoke: PASS")
	case *loadtest:
		if err := runLoadtest(loadtestOptions{
			jobs:    *ltJobs,
			clients: *ltClients,
			cold:    *ltCold,
			minRate: *ltMin,
			payload: *ltPayload,
			outPath: *ltOut,
		}); err != nil {
			log.Fatalf("loadtest: FAIL: %v", err)
		}
	default:
		runDaemon(*addr, opts, *drainTimeout)
	}
}

// runDaemon serves until SIGTERM/SIGINT, then drains gracefully: stop
// accepting (503 / readyz not-ready), finish every queued and running
// job, and only then shut the HTTP server down so the final row streams
// complete.
func runDaemon(addr string, opts serve.Options, drainTimeout time.Duration) {
	s := serve.NewServer(opts)
	s.Start()
	hs := &http.Server{Addr: addr, Handler: s.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (queue %d, job workers %d)", addr, opts.QueueDepth, opts.JobWorkers)

	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining (finishing queued and running jobs, rejecting new ones)", got)
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		log.Print("drained, exiting")
	}
}
