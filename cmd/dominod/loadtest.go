package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blif"
	"repro/internal/gen"
	"repro/internal/serve"
)

type loadtestOptions struct {
	jobs    int     // cached-path submissions
	clients int     // concurrent HTTP clients
	cold    int     // cold-path submissions (distinct configs)
	minRate float64 // gate: minimum cached-path jobs/min (0 disables)
	payload string  // BLIF file to submit ("" = generated mid-size twin)
	outPath string
}

// loadtestPayload resolves the submission payload: a BLIF file from
// disk when -loadtest-payload names one, else a generated mid-size
// synthetic twin (24 PIs, 12 POs, ~200 gates) — large enough that the
// cold path measures a representative synthesis, small enough that a
// cold job stays in the seconds. Earlier revisions used a 4-PI/2-PO
// toy, which measured queue overhead only. The returned counts and
// byte size go into the report so BENCH_6.json records what was
// actually measured.
func loadtestPayload(path string) (name string, data []byte, pis, pos int, err error) {
	if path != "" {
		data, err = os.ReadFile(path)
		if err != nil {
			return "", nil, 0, 0, err
		}
		m, perr := blif.ParseString(string(data))
		if perr != nil {
			return "", nil, 0, 0, fmt.Errorf("parse %s: %w", path, perr)
		}
		return filepath.Base(path), data, m.Network.NumInputs(), m.Network.NumOutputs(), nil
	}
	net := gen.Generate(gen.Params{
		Name: "loadtest", Inputs: 24, Outputs: 12, Gates: 200, Seed: 0x10AD, OrProb: 0.6,
	})
	s, werr := blif.WriteString(&blif.Model{Network: net})
	if werr != nil {
		return "", nil, 0, 0, werr
	}
	return "loadtest.blif", []byte(s), net.NumInputs(), net.NumOutputs(), nil
}

// loadtestReport is the persisted result shape (BENCH_6.json in CI).
type loadtestReport struct {
	Payload          string  `json:"payload"`
	PayloadBytes     int     `json:"payload_bytes"`
	PayloadPIs       int     `json:"payload_pis"`
	PayloadPOs       int     `json:"payload_pos"`
	Clients          int     `json:"clients"`
	CachedJobs       int     `json:"cached_jobs"`
	CachedWallSec    float64 `json:"cached_wall_sec"`
	CachedJobsPerMin float64 `json:"cached_jobs_per_min"`
	ColdJobs         int     `json:"cold_jobs"`
	ColdWallSec      float64 `json:"cold_wall_sec"`
	ColdJobsPerMin   float64 `json:"cold_jobs_per_min"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	FlowRuns         int64   `json:"flow_runs"`
	GateJobsPerMin   float64 `json:"gate_jobs_per_min"`
}

// runLoadtest stands a server up on a loopback listener and measures
// sustained jobs/min over real HTTP: first the cached path (identical
// submissions after one priming run — every job must complete at submit
// time from the content-addressed cache), then the cold path (distinct
// SimSeed per job forces a distinct cache key, so every job runs the
// flow). Fails when the cached path falls below minRate.
func runLoadtest(o loadtestOptions) error {
	s := serve.NewServer(serve.Options{
		QueueDepth:  4 * runtime.NumCPU(),
		JobWorkers:  runtime.NumCPU(),
		FlowWorkers: 1, // one mid-size circuit per job; parallelism lives at the job grain
	})
	s.Start()
	defer s.Drain()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.clients * 2,
		MaxIdleConnsPerHost: o.clients * 2,
	}}

	payloadName, payload, pis, pos, err := loadtestPayload(o.payload)
	if err != nil {
		return fmt.Errorf("payload: %w", err)
	}
	cfgJSON := `{"SimVectors":256}`

	// Prime: one cold run fills the cache.
	st, err := submit(client, base, payloadName, payload, cfgJSON, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("prime: %w", err)
	}
	if err := waitDone(client, base, st.ID, 2*time.Minute); err != nil {
		return fmt.Errorf("prime: %w", err)
	}
	if st, err = submit(client, base, payloadName, payload, cfgJSON, http.StatusOK); err != nil {
		return fmt.Errorf("prime verify: %w", err)
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("prime verify: state %s, want done", st.State)
	}

	// Cached path: o.jobs identical submissions across o.clients
	// concurrent clients; every response must be 200/done (no queueing,
	// no flow).
	var next atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(o.jobs) {
				st, err := submit(client, base, payloadName, payload, cfgJSON, http.StatusOK)
				if err != nil || st.State != serve.StateDone {
					failures.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	cachedWall := time.Since(start).Seconds()
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("cached path: %d submissions did not complete from cache", n)
	}
	cachedPerMin := float64(o.jobs) / cachedWall * 60

	// Cold path: distinct SimSeed per job -> distinct cache key -> the
	// flow runs every time. Clients retry on 429 (the queue is small by
	// design), which is exactly what a real producer does.
	next.Store(0)
	var coldErr atomic.Value
	start = time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(o.cold) {
					return
				}
				cfg := fmt.Sprintf(`{"SimVectors":256,"SimSeed":%d}`, i)
				var st *jobStatusMin
				for {
					resp, err := rawSubmit(client, base, payloadName, payload, cfg)
					if err != nil {
						coldErr.Store(err)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						resp.Body.Close()
						time.Sleep(50 * time.Millisecond)
						continue
					}
					var js jobStatusMin
					err = json.NewDecoder(resp.Body).Decode(&js)
					resp.Body.Close()
					if err != nil {
						coldErr.Store(err)
						return
					}
					st = &js
					break
				}
				if err := waitDone(client, base, st.ID, 2*time.Minute); err != nil {
					coldErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	coldWall := time.Since(start).Seconds()
	if err, _ := coldErr.Load().(error); err != nil {
		return fmt.Errorf("cold path: %w", err)
	}
	coldPerMin := float64(o.cold) / coldWall * 60

	rep := loadtestReport{
		Payload:          payloadName,
		PayloadBytes:     len(payload),
		PayloadPIs:       pis,
		PayloadPOs:       pos,
		Clients:          o.clients,
		CachedJobs:       o.jobs,
		CachedWallSec:    cachedWall,
		CachedJobsPerMin: cachedPerMin,
		ColdJobs:         o.cold,
		ColdWallSec:      coldWall,
		ColdJobsPerMin:   coldPerMin,
		FlowRuns:         s.FlowRuns(),
		GateJobsPerMin:   o.minRate,
	}
	// Hit rate from the server's own counters: cached jobs hit, prime +
	// cold jobs missed.
	hits := float64(o.jobs + 1) // cached jobs + the prime verify
	misses := float64(1 + o.cold)
	rep.CacheHitRate = hits / (hits + misses)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	log.Printf("loadtest: cached %.0f jobs/min (%d jobs, %d clients), cold %.0f jobs/min (%d jobs)",
		cachedPerMin, o.jobs, o.clients, coldPerMin, o.cold)
	if o.minRate > 0 && cachedPerMin < o.minRate {
		return fmt.Errorf("sustained cached-path rate %.0f jobs/min below the %.0f gate", cachedPerMin, o.minRate)
	}
	return nil
}
