package main

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/blif"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/serve"
)

// faultsmokeReport is the BENCH_8.json artifact: proof that the daemon
// survives hostile traffic (panics, pinned circuits, blown budgets,
// client cancellations) without wedging or leaking, plus the headline
// budgeted-throughput numbers.
type faultsmokeReport struct {
	LargestCircuitCompleted string  `json:"largest_circuit_completed"`
	LargestCircuitPIs       int     `json:"largest_circuit_pis"`
	LargestCircuitPOs       int     `json:"largest_circuit_pos"`
	BudgetedRows            int     `json:"budgeted_rows"`
	BudgetedWallSec         float64 `json:"budgeted_wall_sec"`
	BudgetedRowsPerSec      float64 `json:"budgeted_rows_per_sec"`
	DegradedRows            int     `json:"degraded_rows"`
	BudgetTrips             int     `json:"budget_trips"`
	PanicRows               int     `json:"panic_rows"`
	TimedOutRows            int     `json:"timed_out_rows"`
	CancelledJobs           int     `json:"cancelled_jobs"`
	GoroutinesBaseline      int     `json:"goroutines_baseline"`
	GoroutinesAfterDrain    int     `json:"goroutines_after_drain"`
}

// genBLIF serializes a small generated circuit. Every payload gets a
// distinct seed so no two submissions share file bytes: fault behavior
// keys on the circuit NAME while the result cache keys on the BYTES, and
// the harness must not let a degraded or hostile row alias a healthy one.
func genBLIF(name string, inputs, outputs, gates int, seed int64) ([]byte, error) {
	net := gen.Generate(gen.Params{Name: name, Inputs: inputs, Outputs: outputs, Gates: gates, Seed: seed})
	s, err := blif.WriteString(&blif.Model{Network: net})
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// runFaultsmoke is the chaos gate (make faultsmoke, run under -race).
// Against an in-process server with fault injection enabled it:
//
//  1. submits a mix of healthy circuits and fault-injected ones —
//     configure-time panics, circuits pinned in the sim loop until the
//     per-circuit timeout cancels them, and exact-BDD runs under an
//     impossible node budget — and checks every job completes with the
//     expected row shape while /healthz stays live;
//  2. cancels a pinned job via DELETE and checks it finishes as
//     cancelled with timed-out rows instead of wedging its worker;
//  3. on a second server with no per-circuit timeout, runs the Table-1
//     twin corpus under a real BDD node budget and records which
//     circuits degraded, the largest circuit completed, and rows/sec
//     with budgets on;
//  4. drains both servers gracefully and checks the goroutine count
//     returns to the pre-traffic baseline — the regression guard for
//     the old abandon-on-timeout scheme, which leaked one goroutine per
//     timed-out circuit.
//
// The hostile mix and the budgeted corpus run on separate servers
// because the pinned-circuit scenarios want a tight per-circuit timeout
// while the big budgeted circuits legitimately need tens of seconds
// under the race detector.
func runFaultsmoke(outPath string, opts serve.Options) error {
	opts.FaultInjection = true
	opts.QueueDepth = 32
	opts.JobWorkers = 2
	if opts.FlowWorkers == 0 {
		opts.FlowWorkers = 2
	}
	if opts.CircuitTimeout == 0 {
		opts.CircuitTimeout = 2 * time.Second
	}
	baseline := runtime.NumGoroutine()
	s := serve.NewServer(opts)
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	var rep faultsmokeReport
	rep.GoroutinesBaseline = baseline

	cfgJSON := `{"SimVectors":256,"SimShards":2}`

	// 1. Hostile mix: healthy + panicking + pinned + budget-blowing, all
	// in flight together.
	type expect struct {
		id   string
		kind string // healthy | panic | slow | bddblow
	}
	var jobs []expect
	seed := int64(0xFA157)
	for i := 0; i < 3; i++ {
		for _, kind := range []string{"healthy", "panic", "slow", "bddblow"} {
			name := fmt.Sprintf("%s-%d.blif", kind, i)
			if kind != "healthy" {
				name = fmt.Sprintf("fault-%s-%d.blif", kind, i)
			}
			seed++
			// bddblow circuits must be dense enough that even their
			// optimized form needs real BDDs, or the budget has nothing
			// to trip on.
			inputs, outputs, gates := 8, 3, 30
			if kind == "bddblow" {
				inputs, outputs, gates = 12, 4, 60
			}
			data, err := genBLIF(strings.TrimSuffix(name, ".blif"), inputs, outputs, gates, seed)
			if err != nil {
				return err
			}
			st, err := submit(client, base, name, data, cfgJSON, http.StatusAccepted)
			if err != nil {
				return fmt.Errorf("submit %s: %w", name, err)
			}
			jobs = append(jobs, expect{st.ID, kind})
		}
	}
	if err := checkHealthz(client, base); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := waitDone(client, base, j.id, 2*time.Minute); err != nil {
			return fmt.Errorf("%s job: %w", j.kind, err)
		}
		lines, err := streamRows(client, base, j.id)
		if err != nil {
			return fmt.Errorf("%s rows: %w", j.kind, err)
		}
		if len(lines) != 1 {
			return fmt.Errorf("%s job: %d rows, want 1", j.kind, len(lines))
		}
		var rec report.CorpusRecord
		if err := json.Unmarshal(lines[0], &rec); err != nil {
			return err
		}
		switch j.kind {
		case "healthy":
			if rec.Error != "" {
				return fmt.Errorf("healthy circuit failed amid hostile traffic: %s", rec.Error)
			}
		case "panic":
			if !strings.Contains(rec.Error, "panic") {
				return fmt.Errorf("panic row not isolated as an error: %+v", rec)
			}
			rep.PanicRows++
		case "slow":
			if !rec.TimedOut {
				return fmt.Errorf("pinned circuit was not timed out: %+v", rec)
			}
			rep.TimedOutRows++
		case "bddblow":
			if rec.Error != "" {
				return fmt.Errorf("budget-blown circuit errored instead of degrading: %s", rec.Error)
			}
			if rec.Engine == "" || rec.BudgetTrips == 0 {
				return fmt.Errorf("budget-blown row lacks degradation metadata: %+v", rec)
			}
		}
	}
	log.Printf("faultsmoke: %d-job hostile mix done: panics isolated, pinned circuits timed out, blown budgets degraded", len(jobs))

	// 2. Client cancellation of a pinned job: DELETE must end it well
	// before the per-circuit timeout would.
	seed++
	data, err := genBLIF("fault-slow-cancel", 8, 3, 30, seed)
	if err != nil {
		return err
	}
	st, err := submit(client, base, "fault-slow-cancel.blif", data, cfgJSON, http.StatusAccepted)
	if err != nil {
		return err
	}
	req, err := http.NewRequest("DELETE", base+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE: status %d", resp.StatusCode)
	}
	if err := waitDone(client, base, st.ID, time.Minute); err != nil {
		return fmt.Errorf("cancelled job: %w", err)
	}
	fin, err := getStatus(client, base, st.ID)
	if err != nil {
		return err
	}
	if !fin.Cancelled {
		return fmt.Errorf("DELETE did not mark the job cancelled: %+v", fin)
	}
	rep.CancelledJobs++
	log.Print("faultsmoke: DELETE cancelled a pinned job without wedging its worker")

	// The hostile server's metrics must reflect what just happened, and
	// its drain must leave no goroutines behind.
	counters, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	for counter, min := range map[string]float64{
		"dominod_jobs_cancelled_total": 1,
		"dominod_rows_timed_out_total": float64(rep.TimedOutRows),
		"dominod_budget_trips_total":   1,
		"dominod_rows_failed_total":    float64(rep.PanicRows),
	} {
		v, ok := counters[counter]
		if !ok {
			return fmt.Errorf("/metrics missing %s", counter)
		}
		if v < min {
			return fmt.Errorf("%s = %g, want >= %g", counter, v, min)
		}
	}
	if err := checkHealthz(client, base); err != nil {
		return err
	}
	s.Drain()
	// The leak check counts total goroutines, so the HTTP plumbing
	// (accept loop, keep-alive conns) must be gone first — only the
	// serve-layer's own hygiene is under test.
	client.CloseIdleConnections()
	hs.Close()
	if err := waitGoroutineBaseline(baseline, &rep); err != nil {
		return fmt.Errorf("after hostile-mix drain: %w", err)
	}
	log.Printf("faultsmoke: hostile server drained clean, goroutines back to baseline (%d)", baseline)

	// 3. Budgeted throughput on a fresh server with no per-circuit
	// timeout: the Table-1 twin corpus under exact-BDD probabilities and
	// a node budget small enough that the big circuits must degrade —
	// every row must still complete.
	bOpts := opts
	bOpts.CircuitTimeout = 0
	bs := serve.NewServer(bOpts)
	bs.Start()
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	bhs := &http.Server{Handler: bs.Handler()}
	go bhs.Serve(bln)
	defer bhs.Close()
	base = "http://" + bln.Addr().String()

	budgetCfg := flow.Config{
		SimVectors: 256,
		SimShards:  2,
		// MaxPairs and a shallow depth-weighted estimator keep the
		// degraded big circuits to seconds each under -race; the budget
		// semantics are what's under test, not search breadth.
		MaxPairs:      24,
		EstOpts:       power.Options{Method: power.Exact, Depth: 3, MaxFrontier: 8},
		BDDNodeBudget: 20000,
	}
	budgetCfgJSON, err := json.Marshal(budgetCfg)
	if err != nil {
		return err
	}
	circuits := gen.Table1Circuits()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, c := range circuits {
		m, err := blif.WriteString(&blif.Model{Network: c.Net})
		if err != nil {
			return err
		}
		if err := tw.WriteHeader(&tar.Header{Name: c.FileName() + ".blif", Mode: 0o644, Size: int64(len(m))}); err != nil {
			return err
		}
		if _, err := io.WriteString(tw, m); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	budgetStart := time.Now()
	bst, err := submit(client, base, "table1.tar", buf.Bytes(), string(budgetCfgJSON), http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("budgeted corpus: %w", err)
	}
	lines, err := streamRows(client, base, bst.ID)
	if err != nil {
		return err
	}
	rep.BudgetedWallSec = time.Since(budgetStart).Seconds()
	rep.BudgetedRows = len(lines)
	if len(lines) != len(circuits) {
		return fmt.Errorf("budgeted corpus: %d rows, want %d", len(lines), len(circuits))
	}
	byName := make(map[string]gen.NamedCircuit, len(circuits))
	for _, c := range circuits {
		byName[c.Name] = c
	}
	for _, line := range lines {
		var rec report.CorpusRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.Error != "" {
			return fmt.Errorf("budgeted circuit %s failed instead of degrading: %s", rec.Name, rec.Error)
		}
		if rec.Engine != "" {
			rep.DegradedRows++
		}
		rep.BudgetTrips += rec.BudgetTrips
		c, ok := byName[rec.Name]
		if ok && c.Net.NumInputs() >= rep.LargestCircuitPIs {
			rep.LargestCircuitCompleted = rec.Name
			rep.LargestCircuitPIs = c.Net.NumInputs()
			rep.LargestCircuitPOs = c.Net.NumOutputs()
		}
	}
	if rep.BudgetedWallSec > 0 {
		rep.BudgetedRowsPerSec = float64(rep.BudgetedRows) / rep.BudgetedWallSec
	}
	if rep.DegradedRows == 0 {
		return fmt.Errorf("no budgeted circuit degraded — the node budget never bit, lower it")
	}
	log.Printf("faultsmoke: budgeted corpus: %d rows in %.2fs (%.1f rows/s), %d degraded, %d budget trips, largest completed: %s (%d PIs)",
		rep.BudgetedRows, rep.BudgetedWallSec, rep.BudgetedRowsPerSec, rep.DegradedRows, rep.BudgetTrips, rep.LargestCircuitCompleted, rep.LargestCircuitPIs)

	// The budgeted server's metrics must carry the degradation counters.
	bcounters, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	if bcounters["dominod_budget_trips_total"] < 1 {
		return fmt.Errorf("budgeted server reports no budget trips")
	}
	if bcounters["dominod_rows_degraded_depth_total"]+bcounters["dominod_rows_degraded_mc_total"] < float64(rep.DegradedRows) {
		return fmt.Errorf("degradation counters below observed degraded rows (%d)", rep.DegradedRows)
	}

	// 4. Final drain, then the goroutine count must return to baseline.
	if err := checkHealthz(client, base); err != nil {
		return err
	}
	bs.Drain()
	client.CloseIdleConnections()
	bhs.Close()
	if err := waitGoroutineBaseline(baseline, &rep); err != nil {
		return fmt.Errorf("after budgeted drain: %w", err)
	}
	log.Printf("faultsmoke: drained clean, goroutines back to baseline (%d -> %d)", rep.GoroutinesAfterDrain, baseline)

	if outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("faultsmoke: wrote %s", outPath)
	}
	return nil
}

// waitGoroutineBaseline polls until the goroutine count unwinds to the
// pre-traffic baseline (small tolerance for runtime helpers), recording
// the final count in the report.
func waitGoroutineBaseline(baseline int, rep *faultsmokeReport) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep.GoroutinesAfterDrain = runtime.NumGoroutine()
		if rep.GoroutinesAfterDrain <= baseline+2 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutines leaked: baseline %d, now %d", baseline, rep.GoroutinesAfterDrain)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getStatus(client *http.Client, base, id string) (*jobStatusMin, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st jobStatusMin
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func checkHealthz(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: daemon unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// scrapeMetrics parses the Prometheus text exposition into name → value.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, nil
}
