package main

import (
	"archive/tar"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/report"
	"repro/internal/serve"
)

// runSmoke is the CI service gate (make servesmoke). Against a real
// HTTP listener it checks, in order:
//
//  1. an archive of DIR's circuits submitted over HTTP streams JSONL
//     rows that byte-match a direct flow.RunCorpus run on the same
//     files (wall_seconds — documented as non-deterministic — is the
//     only field excluded, by copying it before comparing);
//  2. resubmitting the identical archive completes at submit time from
//     the content-addressed cache, without re-entering the flow;
//  3. overfilling the 1-deep queue draws a 429 with a Retry-After hint;
//  4. a graceful drain finishes the in-flight job, rejects new
//     submissions with 503, and flips /readyz to not-ready.
func runSmoke(dir, outPath string, vectors int, opts serve.Options) error {
	entries, err := corpus.Discover(dir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no circuits in %s", dir)
	}
	baseline := runtime.NumGoroutine()

	// A 1-deep queue and one job worker make backpressure exercisable.
	opts.QueueDepth = 1
	opts.JobWorkers = 1
	if opts.FlowWorkers == 0 {
		opts.FlowWorkers = 4
	}
	s := serve.NewServer(opts)
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	cfg := flow.Config{SimVectors: vectors}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return err
	}

	archive, err := tarArchive(entries)
	if err != nil {
		return err
	}

	// 1. Submit the archive and stream rows while the job runs.
	st, err := submit(client, base, "smoke.tar", archive, string(cfgJSON), http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("submit archive: %w", err)
	}
	lines, err := streamRows(client, base, st.ID)
	if err != nil {
		return err
	}
	if len(lines) != len(entries) {
		return fmt.Errorf("streamed %d rows, want %d", len(lines), len(entries))
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, bytes.Join(lines, nil), 0o644); err != nil {
			return err
		}
	}
	log.Printf("smoke: streamed %d rows over HTTP", len(lines))

	// Direct run on the same files for the byte-match.
	direct, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
		Base:    withOneWorker(cfg),
		Workers: opts.FlowWorkers,
	})
	if err != nil {
		return err
	}
	for i, row := range direct {
		var got report.CorpusRecord
		if err := json.Unmarshal(lines[i], &got); err != nil {
			return fmt.Errorf("row %d: bad JSONL: %w", i, err)
		}
		want := report.NewCorpusRecord(row)
		// The served row's path is the submitted archive-relative name;
		// normalize the direct row the same way. wall_seconds is the
		// schema's one non-deterministic field — copy it across so the
		// rest of the line must match byte for byte.
		want.Path = filepath.Base(want.Path)
		want.WallSec = got.WallSec
		wb, err := json.Marshal(want)
		if err != nil {
			return err
		}
		gb, err := json.Marshal(got)
		if err != nil {
			return err
		}
		if !bytes.Equal(wb, gb) {
			return fmt.Errorf("row %d mismatch:\n  http:   %s\n  direct: %s", i, gb, wb)
		}
	}
	log.Printf("smoke: %d HTTP rows byte-match the direct flow.RunCorpus rows", len(direct))

	// 2. The identical resubmission must be served entirely from cache:
	// it completes at submit time and the flow is not re-entered.
	runsBefore := s.FlowRuns()
	st2, err := submit(client, base, "smoke.tar", archive, string(cfgJSON), http.StatusOK)
	if err != nil {
		return fmt.Errorf("cached resubmit: %w", err)
	}
	if st2.State != serve.StateDone || st2.CacheHits != len(entries) {
		return fmt.Errorf("cached resubmit: state %s with %d hits, want done with %d", st2.State, st2.CacheHits, len(entries))
	}
	if runs := s.FlowRuns(); runs != runsBefore {
		return fmt.Errorf("cached resubmit re-entered the flow (%d -> %d runs)", runsBefore, runs)
	}
	lines2, err := streamRows(client, base, st2.ID)
	if err != nil {
		return err
	}
	if err := sameRowsModuloWall(lines, lines2); err != nil {
		return fmt.Errorf("cached rows: %w", err)
	}
	log.Print("smoke: identical resubmission served from cache without re-entering the flow")

	// 3. Backpressure: distinct configs force cold jobs; with a busy
	// worker and a 1-deep queue the third submission must draw a 429.
	coldCfg := func(seed int64) string {
		c := cfg
		c.SimSeed = seed
		b, _ := json.Marshal(c)
		return string(b)
	}
	single, err := os.ReadFile(entries[0].Path)
	if err != nil {
		return err
	}
	singleName := filepath.Base(entries[0].Path)
	var accepted []string
	saw429 := false
	for i := 0; i < 4 && !saw429; i++ {
		resp, err := rawSubmit(client, base, singleName, single, coldCfg(int64(1000+i)))
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var js jobStatusMin
			if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
				resp.Body.Close()
				return err
			}
			accepted = append(accepted, js.ID)
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				resp.Body.Close()
				return fmt.Errorf("429 without Retry-After")
			}
			saw429 = true
		default:
			resp.Body.Close()
			return fmt.Errorf("backpressure submit %d: unexpected status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		return fmt.Errorf("no 429 after overfilling the 1-deep queue")
	}
	log.Printf("smoke: 429 + Retry-After after %d accepted cold jobs", len(accepted))
	for _, id := range accepted {
		if err := waitDone(client, base, id, 5*time.Minute); err != nil {
			return err
		}
	}

	// 4. Graceful drain: one more in-flight job, then drain — it must
	// finish while new submissions bounce with 503.
	st3, err := submit(client, base, singleName, single, coldCfg(2000), http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("drain-phase submit: %w", err)
	}
	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	if err := waitNotReady(client, base, 10*time.Second); err != nil {
		return err
	}
	resp, err := rawSubmit(client, base, singleName, single, coldCfg(2001))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("submission during drain: status %d, want 503", resp.StatusCode)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("drain did not complete")
	}
	if err := waitDone(client, base, st3.ID, time.Minute); err != nil {
		return fmt.Errorf("in-flight job after drain: %w", err)
	}
	log.Print("smoke: graceful drain finished the in-flight job and rejected new submissions with 503")

	// 5. Goroutine hygiene: after the drain every worker and per-job
	// resource must be gone; allow the runtime a moment to unwind. The
	// HTTP plumbing (accept loop, keep-alive conns) is shut down first —
	// the serve layer's own hygiene is what's under test.
	client.CloseIdleConnections()
	hs.Close()
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			log.Printf("smoke: goroutines back to baseline after drain (%d, baseline %d)", n, baseline)
			return nil
		}
		if time.Now().After(leakDeadline) {
			return fmt.Errorf("goroutines leaked: baseline %d, after drain %d", baseline, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func withOneWorker(cfg flow.Config) flow.Config {
	cfg.Workers = 1
	return cfg
}

// tarArchive packs the discovered files (by base name) into a tar.
func tarArchive(entries []corpus.Entry) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, e := range entries {
		data, err := os.ReadFile(e.Path)
		if err != nil {
			return nil, err
		}
		if err := tw.WriteHeader(&tar.Header{
			Name: filepath.Base(e.Path),
			Mode: 0o644,
			Size: int64(len(data)),
		}); err != nil {
			return nil, err
		}
		if _, err := tw.Write(data); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// jobStatusMin mirrors the status fields the harnesses consume.
type jobStatusMin struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	CacheHits int    `json:"cache_hits"`
	Failed    int    `json:"failed"`
	Cancelled bool   `json:"cancelled"`
}

func rawSubmit(client *http.Client, base, name string, data []byte, cfgJSON string) (*http.Response, error) {
	req, err := http.NewRequest("POST", base+"/v1/jobs?name="+name, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if cfgJSON != "" {
		req.Header.Set("X-Dominod-Config", cfgJSON)
	}
	return client.Do(req)
}

func submit(client *http.Client, base, name string, data []byte, cfgJSON string, wantStatus int) (*jobStatusMin, error) {
	resp, err := rawSubmit(client, base, name, data, cfgJSON)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		return nil, fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantStatus, strings.TrimSpace(string(body)))
	}
	var st jobStatusMin
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// streamRows reads the whole JSONL stream (it blocks until the job
// completes — the handler holds the connection open).
func streamRows(client *http.Client, base, id string) ([][]byte, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/rows")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rows: status %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Dominod-Schema-Version"); v != fmt.Sprint(report.CorpusSchemaVersion) {
		return nil, fmt.Errorf("rows: schema version header %q, want %d", v, report.CorpusSchemaVersion)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var lines [][]byte
	for _, l := range bytes.SplitAfter(body, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// sameRowsModuloWall demands two row sets be byte-identical after
// copying the (non-deterministic) wall_seconds field across.
func sameRowsModuloWall(a, b [][]byte) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d rows", len(a), len(b))
	}
	for i := range a {
		var ra, rb report.CorpusRecord
		if err := json.Unmarshal(a[i], &ra); err != nil {
			return err
		}
		if err := json.Unmarshal(b[i], &rb); err != nil {
			return err
		}
		rb.WallSec = ra.WallSec
		ba, err := json.Marshal(ra)
		if err != nil {
			return err
		}
		bb, err := json.Marshal(rb)
		if err != nil {
			return err
		}
		if !bytes.Equal(ba, bb) {
			return fmt.Errorf("row %d mismatch:\n  first:  %s\n  second: %s", i, ba, bb)
		}
	}
	return nil
}

func waitDone(client *http.Client, base, id string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st jobStatusMin
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.State == serve.StateDone {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s not done within %v (state %s)", id, limit, st.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func waitNotReady(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("readyz still ready %v after drain started", limit)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
