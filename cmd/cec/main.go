// Command cec performs BDD-based combinational equivalence checking of
// two BLIF circuits (matched by input/output names). Exit status 0 means
// equivalent, 1 means different (a counterexample is printed), 2 means
// usage or parse failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cec: ")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Println("usage: cec a.blif b.blif")
		os.Exit(2)
	}
	a := load(flag.Arg(0))
	b := load(flag.Arg(1))
	res, err := verify.Equivalent(a, b)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if res.Equivalent {
		fmt.Printf("EQUIVALENT (%d BDD nodes)\n", res.Nodes)
		return
	}
	fmt.Printf("DIFFERENT at output %q\n", res.FailingOutput)
	fmt.Print("counterexample:")
	for pos, id := range a.Inputs() {
		v := 0
		if res.Counterexample[pos] {
			v = 1
		}
		fmt.Printf(" %s=%d", a.Node(id).Name, v)
	}
	fmt.Println()
	os.Exit(1)
}

func load(path string) *logic.Network {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := blif.Parse(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if len(m.Latches) > 0 {
		log.Fatalf("%s: cec handles combinational models only", path)
	}
	return m.Network
}
