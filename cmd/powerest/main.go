// Command powerest estimates and measures the power of a circuit under a
// phase assignment, searches for a low-power assignment, or prints the
// Figure 2 switching curves.
//
// Usage:
//
//	powerest -blif circuit.blif [-phases +-+...] [-p 0.5] [-vectors 4096]
//	powerest -blif circuit.blif -search STRATEGY [-workers N] [-seed S]
//	powerest -curve [-steps 20]
//
// With -blif it reads a combinational BLIF model, applies the given
// phases (all-positive when omitted), maps it to domino cells and prints
// the model estimate next to the Monte-Carlo measurement. With -search
// it instead picks the phases by searching with the given strategy
// (exhaustive, bb, anneal, greedy, or auto) over the cone-table scorer —
// bb stays exact past the 2^20 enumeration ceiling, anneal and greedy
// handle any output count. With -curve it prints the domino (S=p) and
// static (S=2p(1−p)) switching curves of the paper's Figure 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/blif"
	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerest: ")
	blifPath := flag.String("blif", "", "BLIF file to analyze")
	phases := flag.String("phases", "", "phase string, one +/- per output (default all +)")
	p := flag.Float64("p", 0.5, "primary input signal probability")
	vectors := flag.Int("vectors", 4096, "Monte-Carlo vectors")
	curve := flag.Bool("curve", false, "print the Figure 2 switching curves and exit")
	steps := flag.Int("steps", 20, "curve sample count")
	search := flag.String("search", "", "search for a minimum-power assignment with this strategy (auto, exhaustive, bb, anneal, greedy) instead of applying -phases")
	workers := flag.Int("workers", 0, "search worker pool (0 = GOMAXPROCS); never changes the result")
	seed := flag.Int64("seed", 1, "seed for the anneal/greedy search strategies")
	flag.Parse()

	if *curve {
		dom, sta := prob.Figure2Curves(*steps)
		ps := make([]float64, len(dom))
		ds := make([]float64, len(dom))
		ss := make([]float64, len(sta))
		for i := range dom {
			ps[i] = dom[i].P
			ds[i] = dom[i].S
			ss[i] = sta[i].S
		}
		fmt.Print(report.Curve("Figure 2: domino switching S = p", ps, ds))
		fmt.Println()
		fmt.Print(report.Curve("Figure 2: static switching S = 2p(1-p)", ps, ss))
		return
	}
	if *blifPath == "" {
		log.Fatal("need -blif FILE or -curve")
	}
	f, err := os.Open(*blifPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := blif.Parse(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(m.Latches) > 0 {
		log.Fatal("powerest handles combinational models; use mfvspart for sequential circuits")
	}
	net := flow.Prepare(m.Network)

	asg := phase.AllPositive(net.NumOutputs())
	if *search != "" {
		if *phases != "" {
			log.Fatal("-search and -phases are mutually exclusive")
		}
		strat, err := phase.ParseStrategy(*search)
		if err != nil {
			log.Fatal(err)
		}
		probs := prob.Uniform(net, *p)
		table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{})
		if err != nil {
			log.Fatal(err)
		}
		found, _, score, err := phase.Search(net, phase.SearchOptions{
			Strategy: strat,
			Scorer:   table,
			Workers:  *workers,
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search       %s strategy over %d outputs (%d signature groups)\n",
			strat, net.NumOutputs(), table.Groups())
		fmt.Printf("found        %s  (cone-table score %.6f)\n", found, score)
		asg = found
	}
	if *phases != "" {
		if len(*phases) != net.NumOutputs() {
			log.Fatalf("phase string has %d entries, circuit has %d outputs", len(*phases), net.NumOutputs())
		}
		for i, ch := range *phases {
			switch ch {
			case '+':
			case '-':
				asg[i] = true
			default:
				log.Fatalf("bad phase char %q (want + or -)", ch)
			}
		}
	}
	res, err := phase.Apply(net, asg)
	if err != nil {
		log.Fatal(err)
	}
	lib := domino.DefaultLibrary()
	blk, err := domino.Map(res, lib)
	if err != nil {
		log.Fatal(err)
	}
	probs := prob.Uniform(net, *p)
	est, err := power.Estimate(blk, probs, power.Options{})
	if err != nil {
		log.Fatal(err)
	}
	meas, err := sim.Run(blk, sim.Config{Vectors: *vectors, InputProbs: probs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit      %s (%d PIs, %d POs)\n", net.Name, net.NumInputs(), net.NumOutputs())
	fmt.Printf("phases       %s\n", asg)
	fmt.Printf("cells        %d domino + %d boundary inverters = %d\n",
		blk.DominoCellCount(), blk.InverterCount(), blk.CellCount())
	fmt.Printf("est power    %.4f  (domino %.4f, in-inv %.4f, out-inv %.4f; %s probabilities)\n",
		est.Total, est.Domino, est.InputInverters, est.OutputInverters, engine(est.ExactProbs))
	fmt.Printf("sim power    %.4f  (%d vectors)\n", meas.Total, meas.Cycles)
}

func engine(exact bool) string {
	if exact {
		return "exact"
	}
	return "approximate"
}
